package graphspar_test

// API-surface snapshot check: the exported surface of the root graphspar
// package is rendered from its AST and compared against the checked-in
// golden file api/graphspar.txt. An unintended breaking change (removed
// function, changed signature, renamed option) fails this test; an
// intended change is recorded by re-running with UPDATE_API=1 and
// reviewing the golden diff. Rendering from the AST (instead of `go doc
// -all`) keeps the snapshot independent of toolchain formatting changes.

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"sort"
	"strings"
	"testing"
)

const apiGoldenPath = "api/graphspar.txt"

// renderDecl prints a declaration with go/printer using a throwaway
// fset-consistent node.
func renderDecl(t *testing.T, fset *token.FileSet, node any) string {
	t.Helper()
	var buf bytes.Buffer
	if err := (&printer.Config{Mode: printer.UseSpaces | printer.TabIndent, Tabwidth: 8}).Fprint(&buf, fset, node); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// apiSurface renders every exported top-level declaration of the root
// package, sorted, one blank line apart.
func apiSurface(t *testing.T) string {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	pkg, ok := pkgs["graphspar"]
	if !ok {
		t.Fatalf("root package graphspar not found (got %v)", pkgs)
	}

	var entries []string
	add := func(s string) { entries = append(entries, strings.TrimSpace(s)) }

	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() {
					continue
				}
				if d.Recv != nil {
					// Methods count only on exported receivers.
					recv := renderDecl(t, fset, d.Recv.List[0].Type)
					base := strings.TrimPrefix(recv, "*")
					if !ast.IsExported(base) {
						continue
					}
				}
				d.Body = nil
				d.Doc = nil
				add("func " + strings.TrimPrefix(renderDecl(t, fset, d), "func "))
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch sp := spec.(type) {
					case *ast.TypeSpec:
						if !sp.Name.IsExported() {
							continue
						}
						sp.Doc, sp.Comment = nil, nil
						add("type " + renderDecl(t, fset, sp))
					case *ast.ValueSpec:
						sp.Doc, sp.Comment = nil, nil
						var names []string
						for _, n := range sp.Names {
							if n.IsExported() {
								names = append(names, n.Name)
							}
						}
						if len(names) == 0 {
							continue
						}
						kw := "var"
						if d.Tok == token.CONST {
							kw = "const"
						}
						add(fmt.Sprintf("%s %s", kw, renderDecl(t, fset, sp)))
					}
				}
			}
		}
	}
	sort.Strings(entries)
	return strings.Join(entries, "\n\n") + "\n"
}

func TestAPISurfaceSnapshot(t *testing.T) {
	got := apiSurface(t)
	if os.Getenv("UPDATE_API") != "" {
		if err := os.MkdirAll("api", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(apiGoldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", apiGoldenPath, len(got))
		return
	}
	want, err := os.ReadFile(apiGoldenPath)
	if err != nil {
		t.Fatalf("missing API golden (run UPDATE_API=1 go test -run APISurface .): %v", err)
	}
	if got != string(want) {
		t.Errorf("public API surface drifted from %s.\n"+
			"If this change is intentional, regenerate with:\n\tUPDATE_API=1 go test -run APISurface .\n"+
			"and review the golden diff in the PR.\n--- got ---\n%s", apiGoldenPath, diffHint(string(want), got))
	}
}

// diffHint returns a compact line-level diff (enough to locate the drift
// without pulling in a diff library).
func diffHint(want, got string) string {
	w, g := strings.Split(want, "\n"), strings.Split(got, "\n")
	var out []string
	seen := make(map[string]bool, len(w))
	for _, l := range w {
		seen[l] = true
	}
	gotSet := make(map[string]bool, len(g))
	for _, l := range g {
		gotSet[l] = true
		if !seen[l] && strings.TrimSpace(l) != "" {
			out = append(out, "+ "+l)
		}
	}
	for _, l := range w {
		if !gotSet[l] && strings.TrimSpace(l) != "" {
			out = append(out, "- "+l)
		}
	}
	if len(out) == 0 {
		return "(ordering/whitespace drift)"
	}
	return strings.Join(out, "\n")
}
