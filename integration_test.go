package graphspar_test

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"graphspar/internal/cholesky"
	"graphspar/internal/cluster"
	"graphspar/internal/core"
	"graphspar/internal/eig"
	"graphspar/internal/gen"
	"graphspar/internal/graph"
	"graphspar/internal/gsp"
	"graphspar/internal/lsst"
	"graphspar/internal/mm"
	"graphspar/internal/multigrid"
	"graphspar/internal/partition"
	"graphspar/internal/pcg"
	"graphspar/internal/resistance"
	"graphspar/internal/vecmath"
)

// TestPipelineSparsifySolvePartitionCluster drives the full stack on one
// graph: sparsify → precondition PCG → partition → cluster, checking
// cross-module consistency rather than any single module in isolation.
func TestPipelineSparsifySolvePartitionCluster(t *testing.T) {
	g, err := gen.TriMesh(24, 24, gen.UniformWeights, 101)
	if err != nil {
		t.Fatal(err)
	}
	n := g.N()

	res, err := core.Sparsify(g, core.Options{SigmaSq: 60, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if res.SigmaSqAchieved > 60 {
		t.Fatalf("σ² %v > 60", res.SigmaSqAchieved)
	}

	// 1. Preconditioned solve must beat plain CG in iterations.
	m, err := pcg.NewCholPrecond(res.Sparsifier)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, n)
	vecmath.NewRNG(7).FillNormal(b)
	vecmath.Deflate(b)
	x1 := make([]float64, n)
	r1, err := pcg.SolveLaplacian(g, m, x1, append([]float64(nil), b...), 1e-8, 10*n)
	if err != nil {
		t.Fatal(err)
	}
	x2 := make([]float64, n)
	r2, err := pcg.SolveLaplacian(g, nil, x2, append([]float64(nil), b...), 1e-8, 20*n)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Iterations >= r2.Iterations {
		t.Fatalf("preconditioning not helping: %d vs %d", r1.Iterations, r2.Iterations)
	}
	// Both solvers agree on the solution.
	for i := range x1 {
		if math.Abs(x1[i]-x2[i]) > 1e-5*(1+math.Abs(x2[i])) {
			t.Fatalf("solutions diverge at %d", i)
		}
	}

	// 2. Partition signs from direct and sparsifier-accelerated backends
	// must agree almost everywhere.
	dir, err := partition.SpectralBisect(g, partition.Options{Method: partition.Direct, Seed: 5, MaxIter: 60, Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	it, err := partition.SpectralBisect(g, partition.Options{Method: partition.Iterative, SigmaSq: 60, Seed: 5, MaxIter: 60, Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	re, err := partition.SignError(dir.Signs, it.Signs)
	if err != nil {
		t.Fatal(err)
	}
	if re > 0.05 {
		t.Fatalf("partition disagreement %v", re)
	}

	// 3. The sparsifier Laplacian solver drives clustering on the mesh
	// without error (smoke-level sanity; quality asserted in cluster tests).
	chol, err := pcg.NewCholPrecond(res.Sparsifier)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cluster.SpectralKMeans(res.Sparsifier, chol.S, cluster.Options{K: 4, Seed: 3}); err != nil {
		t.Fatal(err)
	}
}

// TestMTXRoundTripThroughSparsifier writes a sparsifier to MatrixMarket,
// reads it back, and checks spectral quantities survive the round trip.
func TestMTXRoundTripThroughSparsifier(t *testing.T) {
	g, err := gen.Grid2D(14, 14, gen.UniformWeights, 33)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Sparsify(g, core.Options{SigmaSq: 40, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := mm.WriteGraph(&buf, res.Sparsifier); err != nil {
		t.Fatal(err)
	}
	parsed, err := mm.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	back, err := parsed.ToGraph()
	if err != nil {
		t.Fatal(err)
	}
	if back.M() != res.Sparsifier.M() || back.N() != res.Sparsifier.N() {
		t.Fatal("round trip changed the sparsifier's shape")
	}
	// Quadratic forms identical for random vectors.
	rng := vecmath.NewRNG(3)
	x := make([]float64, g.N())
	for trial := 0; trial < 5; trial++ {
		rng.FillNormal(x)
		a := res.Sparsifier.LapQuadForm(x)
		bq := back.LapQuadForm(x)
		if math.Abs(a-bq) > 1e-9*(1+math.Abs(a)) {
			t.Fatalf("quadratic form changed: %v vs %v", a, bq)
		}
	}
}

// TestExtremeWeightRobustness pushes a 12-decade dynamic range of edge
// weights through tree extraction, sparsification and solving.
func TestExtremeWeightRobustness(t *testing.T) {
	rng := vecmath.NewRNG(5)
	rows, cols := 12, 12
	id := func(r, c int) int { return r*cols + c }
	var es []graph.Edge
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			w := math.Pow(10, -6+12*rng.Float64()) // 1e-6 .. 1e6
			if c+1 < cols {
				es = append(es, graph.Edge{U: id(r, c), V: id(r, c+1), W: w})
			}
			if r+1 < rows {
				es = append(es, graph.Edge{U: id(r, c), V: id(r+1, c), W: w * (0.5 + rng.Float64())})
			}
		}
	}
	g, err := graph.New(rows*cols, es)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Sparsify(g, core.Options{SigmaSq: 100, Seed: 7})
	if err != nil && !errors.Is(err, core.ErrNoTarget) {
		t.Fatalf("extreme weights broke sparsification: %v", err)
	}
	if !res.Sparsifier.IsConnected() {
		t.Fatal("sparsifier disconnected")
	}
	// Solve a system against the original graph with the sparsifier
	// preconditioner; residual must actually converge.
	m, err := pcg.NewCholPrecond(res.Sparsifier)
	if err != nil {
		t.Fatal(err)
	}
	n := g.N()
	b := make([]float64, n)
	rng.FillNormal(b)
	vecmath.Deflate(b)
	x := make([]float64, n)
	r, err := pcg.SolveLaplacian(g, m, x, b, 1e-6, 20*n)
	if err != nil {
		t.Fatalf("solve failed: %v (%+v)", err, r)
	}
}

// TestSolversAgreeOnPseudoinverse cross-checks every L⁺ implementation in
// the repo (tree on trees; Cholesky, PCG, AMG on general graphs) against
// each other.
func TestSolversAgreeOnPseudoinverse(t *testing.T) {
	g, err := gen.Grid2D(11, 13, gen.UniformWeights, 21)
	if err != nil {
		t.Fatal(err)
	}
	n := g.N()
	b := make([]float64, n)
	vecmath.NewRNG(9).FillNormal(b)
	vecmath.Deflate(b)

	direct, err := cholesky.NewLapSolver(g)
	if err != nil {
		t.Fatal(err)
	}
	xDirect := make([]float64, n)
	direct.Solve(xDirect, b)

	iter := &eig.PCGSolver{G: g, M: pcg.NewJacobi(g), Tol: 1e-12, MaxIter: 20 * n}
	xIter := make([]float64, n)
	iter.Solve(xIter, b)

	h, err := multigrid.New(g, multigrid.Options{})
	if err != nil {
		t.Fatal(err)
	}
	xAMG := make([]float64, n)
	if _, err := h.Solve(xAMG, append([]float64(nil), b...), 1e-12, 500); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < n; i++ {
		if math.Abs(xDirect[i]-xIter[i]) > 1e-6*(1+math.Abs(xDirect[i])) {
			t.Fatalf("direct vs PCG diverge at %d: %v vs %v", i, xDirect[i], xIter[i])
		}
		if math.Abs(xDirect[i]-xAMG[i]) > 1e-6*(1+math.Abs(xDirect[i])) {
			t.Fatalf("direct vs AMG diverge at %d: %v vs %v", i, xDirect[i], xAMG[i])
		}
	}
}

// TestStretchConsistencyWithResistance ties two modules together: the
// stretch of an off-tree edge (lsst/tree) must equal w·R_tree where R_tree
// comes from solving on the tree graph (resistance).
func TestStretchConsistencyWithResistance(t *testing.T) {
	g, err := gen.Grid2D(8, 8, gen.UniformWeights, 17)
	if err != nil {
		t.Fatal(err)
	}
	tr, _, offIDs, err := lsst.Extract(g, lsst.MaxWeight, 1)
	if err != nil {
		t.Fatal(err)
	}
	treeSolver, err := cholesky.NewLapSolver(tr.Graph())
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range offIDs[:10] {
		e := g.Edge(id)
		rTree, err := resistance.PointToPoint(tr.Graph(), treeSolver, e.U, e.V)
		if err != nil {
			t.Fatal(err)
		}
		want := e.W * rTree
		got := tr.Stretch(e)
		if math.Abs(got-want) > 1e-8*(1+want) {
			t.Fatalf("stretch mismatch for edge %d: %v vs %v", id, got, want)
		}
	}
}

// TestSparsifierEigenvaluesInterlace verifies the spectral-similarity
// guarantee the whole paper is about, using an independent Lanczos
// estimate: 1 ≤ λ(L_P⁺L_G) ≤ σ² for all Ritz values.
func TestSparsifierEigenvaluesInterlace(t *testing.T) {
	g, err := gen.TriMesh(16, 16, gen.UniformWeights, 71)
	if err != nil {
		t.Fatal(err)
	}
	target := 50.0
	res, err := core.Sparsify(g, core.Options{SigmaSq: target, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	solver, err := cholesky.NewLapSolver(res.Sparsifier)
	if err != nil {
		t.Fatal(err)
	}
	vals, err := eig.GeneralizedLanczos(g, res.Sparsifier, solver, 60, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range vals {
		if v < 1-1e-6 {
			t.Fatalf("Ritz value %v < 1 violates interlacing", v)
		}
		if v > target*1.3 {
			t.Fatalf("Ritz value %v far above the σ²=%v guarantee", v, target)
		}
	}
}

// TestGSPFilterThroughSparsifierPipeline: heat-kernel filtering through
// the sparsifier approximates filtering through the original.
func TestGSPFilterThroughSparsifierPipeline(t *testing.T) {
	g, err := gen.Grid2D(12, 12, gen.UniformWeights, 81)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Sparsify(g, core.Options{SigmaSq: 5, Seed: 5})
	if err != nil && !errors.Is(err, core.ErrNoTarget) {
		t.Fatal(err)
	}
	lub := gsp.LambdaUpperBound(g)
	n := g.N()
	x := make([]float64, n)
	vecmath.NewRNG(11).FillNormal(x)
	fg, err := gsp.HeatKernel(g, 2.0, 40, lub)
	if err != nil {
		t.Fatal(err)
	}
	yg := make([]float64, n)
	fg.Apply(yg, x)

	relOf := func(p *graph.Graph) float64 {
		fp, err := gsp.HeatKernel(p, 2.0, 40, lub)
		if err != nil {
			t.Fatal(err)
		}
		yp := make([]float64, n)
		fp.Apply(yp, x)
		diff := make([]float64, n)
		vecmath.Sub(diff, yg, yp)
		return vecmath.Norm2(diff) / vecmath.Norm2(yg)
	}
	relSpar := relOf(res.Sparsifier)
	relTree := relOf(res.Tree.Graph())
	// A σ² guarantee bounds eigenvalue *ratios*, so mid-band responses
	// shift; the checkable claims are comparative: the sparsifier tracks
	// the original's diffusion better than its bare backbone, and does not
	// diverge outright.
	if relSpar >= relTree {
		t.Fatalf("sparsifier (%v) should beat bare tree (%v)", relSpar, relTree)
	}
	if relSpar > 1 {
		t.Fatalf("sparsifier heat kernel diverged: rel %v", relSpar)
	}
}
