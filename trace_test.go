package graphspar_test

// Phase-trace coverage of the facade: both execution paths must return a
// populated Result.Phases, the single-shot Timings must be span-derived
// (Verify > 0 under WithVerification), and a caller-attached trace
// (NewTraceContext) must see the same spans the Result reports.

import (
	"context"
	"testing"

	"graphspar"
	"graphspar/internal/gen"
)

// phaseNames collects the distinct phase names of a trace.
func phaseNames(phases []graphspar.Phase) map[string]int {
	names := make(map[string]int)
	for _, p := range phases {
		names[p.Name]++
	}
	return names
}

func TestRunPhasesSingleShot(t *testing.T) {
	g, err := gen.Grid2D(20, 20, gen.UniformWeights, 9)
	if err != nil {
		t.Fatal(err)
	}
	s, err := graphspar.New(
		graphspar.WithSigma2(60),
		graphspar.WithSeed(7),
		graphspar.WithShards(1),
		graphspar.WithVerification(0),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	names := phaseNames(res.Phases)
	for _, want := range []string{"sparsify", "embed", "verify"} {
		if names[want] == 0 {
			t.Errorf("Phases missing %q (got %v)", want, names)
		}
	}
	if res.Timings.Sparsify <= 0 {
		t.Errorf("Timings.Sparsify = %v, want > 0", res.Timings.Sparsify)
	}
	if res.Timings.Verify <= 0 {
		t.Errorf("Timings.Verify = %v, want > 0 with WithVerification", res.Timings.Verify)
	}
	// The Verify timing is the verify span itself.
	for _, p := range res.Phases {
		if p.Name == "verify" && p.Duration != res.Timings.Verify {
			t.Errorf("verify phase duration %v != Timings.Verify %v", p.Duration, res.Timings.Verify)
		}
	}
}

func TestRunPhasesSharded(t *testing.T) {
	g, _, err := gen.SBM(4, 60, 0.2, 0.02, 13)
	if err != nil {
		t.Fatal(err)
	}
	s, err := graphspar.New(
		graphspar.WithSigma2(60),
		graphspar.WithSeed(7),
		graphspar.WithShards(3),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	names := phaseNames(res.Phases)
	for _, want := range []string{"partition", "shard", "stitch", "refilter", "verify"} {
		if names[want] == 0 {
			t.Errorf("Phases missing %q (got %v)", want, names)
		}
	}
	if res.Timings.Verify <= 0 {
		t.Errorf("Timings.Verify = %v, want > 0 (sharded default verification)", res.Timings.Verify)
	}
}

// TestRunPhasesMultilevel: a multilevel run must emit the hierarchy
// phases — coarsen, the coarse sparsify, one interpolate +
// uncoarsen_refilter pair per finer level, and the per-level verify —
// into Result.Phases (and through them the shared phase histogram).
func TestRunPhasesMultilevel(t *testing.T) {
	// 32×32 ≈ 1k vertices: two levels of coarsening before the default
	// coarsest-size floor stops the hierarchy.
	g, err := gen.Grid2D(32, 32, gen.UniformWeights, 9)
	if err != nil {
		t.Fatal(err)
	}
	s, err := graphspar.New(
		graphspar.WithSigma2(60),
		graphspar.WithSeed(7),
		graphspar.WithMode(graphspar.ModeMultilevel),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Multilevel || res.Sharded {
		t.Fatalf("expected the multilevel path (Multilevel=%v Sharded=%v)", res.Multilevel, res.Sharded)
	}
	if res.CoarsenDepth < 2 {
		t.Fatalf("expected a real hierarchy, got depth %d", res.CoarsenDepth)
	}
	names := phaseNames(res.Phases)
	for _, want := range []string{"coarsen", "sparsify", "interpolate", "uncoarsen_refilter", "verify"} {
		if names[want] == 0 {
			t.Errorf("Phases missing %q (got %v)", want, names)
		}
	}
	finer := res.CoarsenDepth - 1
	if names["interpolate"] != finer {
		t.Errorf("got %d interpolate phases for depth %d, want %d", names["interpolate"], res.CoarsenDepth, finer)
	}
	if names["uncoarsen_refilter"] < finer {
		t.Errorf("got %d uncoarsen_refilter phases, want ≥ %d", names["uncoarsen_refilter"], finer)
	}
	if res.Timings.Coarsen <= 0 || res.Timings.Refilter <= 0 {
		t.Errorf("Timings.Coarsen = %v, Timings.Refilter = %v, want both > 0", res.Timings.Coarsen, res.Timings.Refilter)
	}
	if res.Timings.Verify <= 0 {
		t.Errorf("Timings.Verify = %v, want > 0 (multilevel default verification)", res.Timings.Verify)
	}
}

// TestNewTraceContextShared: a caller-attached trace collects the same
// spans Run reports, so a serving layer can observe phases without
// touching the Result.
func TestNewTraceContextShared(t *testing.T) {
	g, err := gen.Grid2D(12, 12, gen.UniformWeights, 3)
	if err != nil {
		t.Fatal(err)
	}
	s, err := graphspar.New(graphspar.WithSigma2(80), graphspar.WithShards(1))
	if err != nil {
		t.Fatal(err)
	}
	ctx, tr := graphspar.NewTraceContext(context.Background())
	res, err := s.Run(ctx, g)
	if err != nil {
		t.Fatal(err)
	}
	got := tr.Phases()
	if len(got) == 0 || len(got) != len(res.Phases) {
		t.Fatalf("caller trace has %d phases, result has %d", len(got), len(res.Phases))
	}
	for i := range got {
		if got[i] != res.Phases[i] {
			t.Errorf("phase %d: trace %+v != result %+v", i, got[i], res.Phases[i])
		}
	}
}
