package graphspar_test

import (
	"context"
	"errors"
	"fmt"
	"log"

	"graphspar"
)

// The facade is built with functional options; WithSigma2 is the only
// required one, and validation errors are typed.
func ExampleNew() {
	// A σ² target is required — the zero value cannot certify anything.
	_, err := graphspar.New()
	fmt.Println(errors.Is(err, graphspar.ErrBadSigma2))

	// A minimal valid configuration.
	s, err := graphspar.New(graphspar.WithSigma2(100), graphspar.WithSeed(7))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(s.Sigma2())
	// Output:
	// true
	// 100
}

// Run sparsifies a graph to the configured σ² target and returns the
// unified Result: the sparsifier subgraph plus its similarity
// certificate.
func ExampleSparsifier_Run() {
	g, err := graphspar.LoadGraph("grid:10x10:unit", 1)
	if err != nil {
		log.Fatal(err)
	}
	s, err := graphspar.New(graphspar.WithSigma2(50), graphspar.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	res, err := s.Run(context.Background(), g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("vertices:", res.Sparsifier.N())
	fmt.Println("connected:", res.Sparsifier.IsConnected())
	fmt.Println("target met:", res.TargetMet && res.SigmaSqAchieved <= 50)
	// Output:
	// vertices: 100
	// connected: true
	// target met: true
}

// WithMode pins the execution path — here the multilevel hierarchy
// engine, which coarsens the graph, sparsifies the coarsest level with
// the full pipeline, and interpolates + re-filters the selection back
// level by level. The certificate is verified on the original graph.
func ExampleWithMode() {
	g, err := graphspar.LoadGraph("grid:32x32:unit", 1)
	if err != nil {
		log.Fatal(err)
	}
	s, err := graphspar.New(
		graphspar.WithSigma2(50),
		graphspar.WithSeed(1),
		graphspar.WithMode(graphspar.ModeMultilevel),
	)
	if err != nil {
		log.Fatal(err)
	}
	res, err := s.Run(context.Background(), g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("multilevel:", res.Multilevel)
	fmt.Println("levels:", res.CoarsenDepth > 1)
	fmt.Println("certified:", res.TargetMet && res.VerifiedCond <= 50)
	// Output:
	// multilevel: true
	// levels: true
	// certified: true
}

// Maintain returns a live Stream: apply batched edge updates and the
// sparsifier's σ² certificate is kept valid incrementally instead of
// re-running the pipeline per mutation.
func ExampleSparsifier_Maintain() {
	g, err := graphspar.LoadGraph("grid:8x8:unit", 1)
	if err != nil {
		log.Fatal(err)
	}
	s, err := graphspar.New(graphspar.WithSigma2(60), graphspar.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	st, err := s.Maintain(context.Background(), g)
	if err != nil {
		log.Fatal(err)
	}
	batch := []graphspar.Update{
		graphspar.Insert(0, 63, 1.5),
		graphspar.Reweight(0, 1, 2.0),
	}
	if err := st.Apply(context.Background(), batch); err != nil {
		log.Fatal(err)
	}
	fmt.Println("graph edges:", st.Graph().M())
	fmt.Println("certificate holds:", st.TargetMet())
	// Output:
	// graph edges: 113
	// certificate holds: true
}
