package graphspar

import (
	"context"
	"io"

	"graphspar/internal/dynamic"
	"graphspar/internal/sessions"
)

// Update is one edge mutation applied through a Stream. Endpoints may be
// given in either orientation; W is ignored for deletes.
type Update = dynamic.Update

// UpdateOp is the kind of one edge mutation.
type UpdateOp = dynamic.Op

// Supported mutations.
const (
	OpInsert   = dynamic.OpInsert
	OpDelete   = dynamic.OpDelete
	OpReweight = dynamic.OpReweight
)

// Insert builds an insert update.
func Insert(u, v int, w float64) Update { return dynamic.Insert(u, v, w) }

// Delete builds a delete update.
func Delete(u, v int) Update { return dynamic.Delete(u, v) }

// Reweight builds a reweight update.
func Reweight(u, v int, w float64) Update { return dynamic.Reweight(u, v, w) }

// ParseUpdateOp resolves an op name ("insert"/"+", "delete"/"-",
// "reweight"/"=") for flags and wire formats.
func ParseUpdateOp(s string) (UpdateOp, error) { return dynamic.ParseOp(s) }

// ParseEvents reads a line-oriented edge-event stream ("+ u v w",
// "- u v", "= u v w", batches separated by "commit" lines) into update
// batches for Stream.Apply.
func ParseEvents(r io.Reader) ([][]Update, error) { return dynamic.ParseEvents(r) }

// WriteEvents writes update batches in the ParseEvents format.
func WriteEvents(w io.Writer, batches [][]Update) error { return dynamic.WriteEvents(w, batches) }

// BinaryEventsContentType is the MIME type of the compact binary
// edge-event framing (one op byte, uvarint endpoints, little-endian
// float64 weight bits per record). The serving daemon's stream endpoint
// negotiates it by Content-Type as a peer of NDJSON.
const BinaryEventsContentType = dynamic.BinaryContentType

// ReadBinaryEvents reads a binary edge-event stream (see
// BinaryEventsContentType) into update batches, exactly mirroring
// ParseEvents' batch semantics: commit records separate batches, empty
// batches are dropped, and a trailing unterminated batch is kept.
func ReadBinaryEvents(r io.Reader) ([][]Update, error) { return dynamic.ReadBinaryEvents(r) }

// WriteBinaryEvents writes update batches in the binary edge-event
// framing; ReadBinaryEvents(WriteBinaryEvents(b)) round-trips exactly.
func WriteBinaryEvents(w io.Writer, batches [][]Update) error {
	return dynamic.WriteBinaryEvents(w, batches)
}

// ApplyUpdates returns a copy of g with one batch of updates applied
// (validating the batch exactly like Stream.Apply, including the
// connectivity check), without touching any sparsifier state.
func ApplyUpdates(g *Graph, batch []Update) (*Graph, error) { return dynamic.ApplyToGraph(g, batch) }

// StreamStats counts a Stream's maintenance work since construction.
type StreamStats = dynamic.Stats

// Stream is a live sparsifier: a graph together with its maintained
// sparsifier and σ² certificate, advanced by batches of edge updates
// without re-running the full pipeline per batch (probe-vector re-scoring
// against the last filter pass, backbone repair, localized re-filter
// rounds, churn-budgeted full rebuilds). Obtain one with
// Sparsifier.Maintain or Sparsifier.Resume. Not safe for concurrent use.
type Stream struct {
	m *dynamic.Maintainer
}

// Apply validates and applies one batch of updates atomically: a
// validation or connectivity error (ErrWouldDisconnect for bridge
// deletes) rejects the whole batch with the stream unchanged. On success
// the sparsifier has been maintained and its certificate re-verified;
// check TargetMet for the rare best-effort case where even a full rebuild
// cannot certify σ².
func (s *Stream) Apply(ctx context.Context, batch []Update) error {
	return s.m.Apply(ctx, batch)
}

// Rebuild discards all incremental state and re-sparsifies from scratch.
func (s *Stream) Rebuild(ctx context.Context) error { return s.m.Rebuild(ctx) }

// Graph returns the current graph.
func (s *Stream) Graph() *Graph { return s.m.Graph() }

// Sparsifier returns the current sparsifier. Callers must not mutate it;
// it stays live until the next Apply replaces it.
func (s *Stream) Sparsifier() *Graph { return s.m.Sparsifier() }

// Cond returns the latest independently verified condition number
// κ(L_G, L_P).
func (s *Stream) Cond() float64 { return s.m.Cond() }

// TargetMet reports whether the latest certificate meets σ².
func (s *Stream) TargetMet() bool { return s.m.TargetMet() }

// Stats snapshots the maintenance counters.
func (s *Stream) Stats() StreamStats { return s.m.Stats() }

// SessionStats is the resident-session telemetry shared by library
// streams and the HTTP service's persistent sessions: estimated resident
// bytes, batches/updates applied, rebuilds forced, re-filter rounds and
// the current certificate. A Stream held in a library process and a
// session resident in sparsifyd report the same numbers for the same
// maintenance work.
type SessionStats = sessions.Stats

// SessionStats snapshots the stream's session telemetry.
func (s *Stream) SessionStats() SessionStats { return sessions.Snapshot(s.m) }

// ResidentBytes estimates the heap the stream keeps resident between
// applies (both graphs, the sparsifier's factorization, the retained
// probe embedding). Session managers budget memory with it.
func (s *Stream) ResidentBytes() int64 { return s.m.ResidentBytes() }
