// Package graphspar_test hosts the benchmark harness: one benchmark per
// table and figure of the paper (regenerating the corresponding rows via
// internal/exp) plus the ablation benches A1–A6 listed in DESIGN.md.
// Benchmarks report qualitative metrics (achieved σ², edges kept, PCG
// iterations) through b.ReportMetric so `go test -bench` output doubles as
// an experiment log.
package graphspar_test

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"sync"
	"testing"
	"time"

	"graphspar/internal/cholesky"
	"graphspar/internal/core"
	"graphspar/internal/eig"
	"graphspar/internal/engine"
	"graphspar/internal/exp"
	"graphspar/internal/gen"
	"graphspar/internal/graph"
	"graphspar/internal/lsst"
	"graphspar/internal/multilevel"
	"graphspar/internal/pcg"
	"graphspar/internal/resistance"
	"graphspar/internal/vecmath"
)

// benchScale keeps the full -bench=. run in CI time; cmd/experiments runs
// bigger instances.
const benchScale = 0.12

// ------------------------------------------------------------ paper tables

func BenchmarkTable1EigEstimation(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := exp.Table1(benchScale, uint64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		var maxMinErr, maxMaxErr float64
		for _, r := range rows {
			if r.LMinRelErr > maxMinErr {
				maxMinErr = r.LMinRelErr
			}
			if r.LMaxRelErr > maxMaxErr {
				maxMaxErr = r.LMaxRelErr
			}
		}
		b.ReportMetric(100*maxMinErr, "max-λmin-err-%")
		b.ReportMetric(100*maxMaxErr, "max-λmax-err-%")
	}
}

func BenchmarkTable2PCG(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := exp.Table2(benchScale, uint64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		var n50, n200, dens50 float64
		for _, r := range rows {
			n50 += float64(r.Iters50)
			n200 += float64(r.Iters200)
			dens50 += r.Density50
		}
		k := float64(len(rows))
		b.ReportMetric(n50/k, "avg-N50")
		b.ReportMetric(n200/k, "avg-N200")
		b.ReportMetric(dens50/k, "avg-density50")
	}
}

func BenchmarkTable3Partition(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := exp.Table3(benchScale, uint64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		var worstErr, memRatio float64
		for _, r := range rows {
			if r.RelErr > worstErr {
				worstErr = r.RelErr
			}
			memRatio += float64(r.DirectMem) / float64(r.IterativeMem)
		}
		b.ReportMetric(worstErr, "worst-sign-err")
		b.ReportMetric(memRatio/float64(len(rows)), "avg-MD/MI")
	}
}

func BenchmarkTable4Networks(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := exp.Table4(benchScale, uint64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		var red, lam float64
		for _, r := range rows {
			red += r.EdgeReduction
			lam += r.LambdaReduce
		}
		k := float64(len(rows))
		b.ReportMetric(red/k, "avg-edge-reduction-x")
		b.ReportMetric(lam/k, "avg-λ1-reduction-x")
	}
}

func BenchmarkFig1Drawing(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := exp.Fig1(benchScale*2, uint64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Correlation, "layout-correlation")
	}
}

func BenchmarkFig2HeatSpectrum(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		series, err := exp.Fig2(benchScale, uint64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(series[0].AboveTh["sigma2=100"]), "edges-above-θ100")
	}
}

// --------------------------------------------------------------- ablations

func ablationGraph(b *testing.B, seed uint64) *graph.Graph {
	b.Helper()
	g, err := gen.Grid2D(48, 48, gen.UniformWeights, seed)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func sparsifyMetrics(b *testing.B, g *graph.Graph, opt core.Options) *core.Result {
	b.Helper()
	res, err := core.Sparsify(g, opt)
	if err != nil && !errors.Is(err, core.ErrNoTarget) {
		b.Fatal(err)
	}
	return res
}

// A1: power-iteration depth t — the paper says t = 2 suffices.
func BenchmarkAblationPowerSteps(b *testing.B) {
	for _, t := range []int{1, 2, 3} {
		b.Run(map[int]string{1: "t=1", 2: "t=2", 3: "t=3"}[t], func(b *testing.B) {
			g := ablationGraph(b, 1)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res := sparsifyMetrics(b, g, core.Options{SigmaSq: 80, T: t, Seed: uint64(i + 1)})
				b.ReportMetric(float64(res.Sparsifier.M()), "edges")
				b.ReportMetric(res.SigmaSqAchieved, "σ²-achieved")
			}
		})
	}
}

// A2: number of random probe vectors r.
func BenchmarkAblationRandomVectors(b *testing.B) {
	for _, r := range []int{1, 6, 12} {
		name := map[int]string{1: "r=1", 6: "r=logn", 12: "r=2logn"}[r]
		b.Run(name, func(b *testing.B) {
			g := ablationGraph(b, 2)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res := sparsifyMetrics(b, g, core.Options{SigmaSq: 80, NumVectors: r, Seed: uint64(i + 1)})
				b.ReportMetric(float64(res.Sparsifier.M()), "edges")
				b.ReportMetric(res.SigmaSqAchieved, "σ²-achieved")
			}
		})
	}
}

// A3: backbone tree construction.
func BenchmarkAblationTreeChoice(b *testing.B) {
	for _, alg := range []lsst.Algorithm{lsst.MaxWeight, lsst.Dijkstra, lsst.AKPW} {
		b.Run(alg.String(), func(b *testing.B) {
			g, err := gen.Grid2D(48, 48, gen.LogUniform, 3)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res := sparsifyMetrics(b, g, core.Options{SigmaSq: 80, TreeAlg: alg, Seed: uint64(i + 1)})
				b.ReportMetric(float64(res.Sparsifier.M()), "edges")
				b.ReportMetric(res.TotalStretch, "tree-stretch")
			}
		})
	}
}

// A4: similarity check on/off.
func BenchmarkAblationSimilarityCheck(b *testing.B) {
	for _, disable := range []bool{false, true} {
		name := "on"
		if disable {
			name = "off"
		}
		b.Run(name, func(b *testing.B) {
			g := ablationGraph(b, 4)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res := sparsifyMetrics(b, g, core.Options{SigmaSq: 80, DisableSimilarity: disable, Seed: uint64(i + 1)})
				b.ReportMetric(float64(res.Sparsifier.M()), "edges")
				b.ReportMetric(res.SigmaSqAchieved, "σ²-achieved")
			}
		})
	}
}

// A5: condition number vs baselines at an equal *final* edge budget.
// Lower κ at the same edge count means a better sparsifier. The workload
// has heterogeneous (log-uniform) weights so leverage scores are
// non-trivial; resistances for the SS baseline are exact.
func BenchmarkAblationBaselines(b *testing.B) {
	g, err := gen.TriMesh(36, 36, gen.LogUniform, 5)
	if err != nil {
		b.Fatal(err)
	}
	// Our sparsifier fixes the budget.
	ours := sparsifyMetrics(b, g, core.Options{SigmaSq: 80, Seed: 1})
	budgetEdges := ours.Sparsifier.M()
	_, treeIDs, _, err := lsst.Extract(g, lsst.MaxWeight, 1)
	if err != nil {
		b.Fatal(err)
	}

	condOf := func(b *testing.B, p *graph.Graph) float64 {
		b.Helper()
		solver := &eig.PCGSolver{G: p, M: pcg.NewJacobi(p), Tol: 1e-8, MaxIter: 4 * p.N()}
		lmax, err := core.EstimateLambdaMax(g, p, solver, 30, 7)
		if err != nil {
			b.Fatal(err)
		}
		return lmax / core.EstimateLambdaMin(g, p)
	}

	// sampleToBudget binary-searches the draw count so the *final* edge
	// count (unique draws ∪ backbone) matches budgetEdges within 2%.
	sampleToBudget := func(b *testing.B, mk func(q int, seed uint64) (*graph.Graph, error), seed uint64) *graph.Graph {
		b.Helper()
		lo, hi := budgetEdges/8, budgetEdges*64
		var best *graph.Graph
		for iter := 0; iter < 40 && lo < hi; iter++ {
			mid := (lo + hi) / 2
			sp, err := mk(mid, seed)
			if err != nil {
				b.Fatal(err)
			}
			best = sp
			diff := sp.M() - budgetEdges
			if diff < 0 {
				diff = -diff
			}
			if diff*50 <= budgetEdges {
				return sp
			}
			if sp.M() < budgetEdges {
				lo = mid + 1
			} else {
				hi = mid - 1
			}
		}
		return best
	}

	b.Run("similarity-aware", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res := sparsifyMetrics(b, g, core.Options{SigmaSq: 80, Seed: uint64(i + 1)})
			b.ReportMetric(float64(res.Sparsifier.M()), "edges")
			b.ReportMetric(res.SigmaSqAchieved, "κ-est")
		}
	})
	b.Run("effective-resistance", func(b *testing.B) {
		ls, err := cholesky.NewLapSolver(g)
		if err != nil {
			b.Fatal(err)
		}
		rs, err := resistance.AllEdgesExact(g, ls)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			sp := sampleToBudget(b, func(q int, seed uint64) (*graph.Graph, error) {
				return resistance.SpielmanSrivastava(g, rs, resistance.SampleOptions{
					Samples: q, Seed: seed, Backbone: treeIDs,
				})
			}, uint64(i+1))
			b.ReportMetric(float64(sp.M()), "edges")
			b.ReportMetric(condOf(b, sp), "κ-est")
		}
	})
	b.Run("uniform", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sp := sampleToBudget(b, func(q int, seed uint64) (*graph.Graph, error) {
				return resistance.UniformSample(g, resistance.SampleOptions{
					Samples: q, Seed: seed, Backbone: treeIDs,
				})
			}, uint64(i+1))
			b.ReportMetric(float64(sp.M()), "edges")
			b.ReportMetric(condOf(b, sp), "κ-est")
		}
	})
}

// A6: inner L_P⁺ solver inside the densification loop.
func BenchmarkAblationInnerSolver(b *testing.B) {
	for _, kind := range []core.SolverKind{core.Direct, core.TreePCG, core.AMG} {
		b.Run(kind.String(), func(b *testing.B) {
			g := ablationGraph(b, 6)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res := sparsifyMetrics(b, g, core.Options{SigmaSq: 80, Solver: kind, Seed: uint64(i + 1)})
				b.ReportMetric(res.SigmaSqAchieved, "σ²-achieved")
			}
		})
	}
}

// ------------------------------------------------ sharded engine benchmark

// shardedRef is the lazily measured single-shot reference for one bench
// graph: plain core.Sparsify wall time and the independently verified κ.
type shardedRef struct {
	once sync.Once
	dur  time.Duration
	cond float64
}

var shardedRefs sync.Map // graph name → *shardedRef

func shardedReference(b *testing.B, name string, g *graph.Graph) *shardedRef {
	b.Helper()
	v, _ := shardedRefs.LoadOrStore(name, &shardedRef{})
	ref := v.(*shardedRef)
	ref.once.Do(func() {
		t0 := time.Now()
		res, err := core.Sparsify(g, core.Options{SigmaSq: 100, Seed: 1})
		if err != nil && !errors.Is(err, core.ErrNoTarget) {
			b.Fatal(err)
		}
		ref.dur = time.Since(t0)
		solver, err := cholesky.NewLapSolver(res.Sparsifier)
		if err != nil {
			b.Fatal(err)
		}
		_, _, cond, err := core.VerifySimilarity(g, res.Sparsifier, solver, 30, 1)
		if err != nil {
			b.Fatal(err)
		}
		ref.cond = cond
	})
	return ref
}

// BenchmarkShardedSparsify compares the shard-parallel engine at 1/2/4/8
// shards against single-shot core.Sparsify on a 256×256 grid (the
// mesh-like regime sharding targets) and an SBM community graph (whose
// big BFS cut stresses the global re-filter). Reported metrics:
// compute-s excludes the engine's verification phase (the single-shot
// baseline does not verify), speedup-vs-single = T(single core.Sparsify)
// / compute, and κ-ratio = verified κ / single-shot verified κ — the
// acceptance bar is speedup ≥ 1.5 at 4 shards with κ-ratio ≤ 2 on the
// grid. The shard phase parallelizes across cores, so speedup scales
// with GOMAXPROCS; on a single core only the shards' smaller superlinear
// costs (fill-reducing ordering, factorization) remain and the ratio
// hovers near 1.
func BenchmarkShardedSparsify(b *testing.B) {
	graphs := []struct {
		name  string
		build func() (*graph.Graph, error)
	}{
		{"grid256", func() (*graph.Graph, error) { return gen.Grid2D(256, 256, gen.UniformWeights, 1) }},
		{"sbm", func() (*graph.Graph, error) {
			g, _, err := gen.SBM(8, 256, 0.04, 0.001, 2)
			return g, err
		}},
	}
	for _, gc := range graphs {
		g, err := gc.build()
		if err != nil {
			b.Fatal(err)
		}
		b.Run(gc.name+"/single", func(b *testing.B) {
			ref := shardedReference(b, gc.name, g)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := core.Sparsify(g, core.Options{SigmaSq: 100, Seed: 1})
				if err != nil && !errors.Is(err, core.ErrNoTarget) {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Sparsifier.M()), "edges")
			}
			b.ReportMetric(ref.cond, "verified-κ")
		})
		for _, shards := range []int{1, 2, 4, 8} {
			name := map[int]string{1: "shards=1", 2: "shards=2", 4: "shards=4", 8: "shards=8"}[shards]
			b.Run(gc.name+"/"+name, func(b *testing.B) {
				ref := shardedReference(b, gc.name, g)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res, err := engine.Run(context.Background(), g, engine.Options{
						Shards:   shards,
						Sparsify: core.Options{SigmaSq: 100},
						Seed:     1,
					})
					if err != nil {
						b.Fatal(err)
					}
					compute := res.WallTime - res.VerifyTime
					b.ReportMetric(compute.Seconds(), "compute-s")
					b.ReportMetric(float64(ref.dur)/float64(compute), "speedup-vs-single")
					b.ReportMetric(res.VerifiedCond, "verified-κ")
					b.ReportMetric(res.VerifiedCond/ref.cond, "κ-ratio")
					b.ReportMetric(res.Speedup(), "shard-parallelism")
					b.ReportMetric(float64(res.Sparsifier.M()), "edges")
				}
			})
		}
	}
}

// --------------------------------------------- multilevel engine benchmark

// multilevelBench accumulates sub-benchmark metrics for the
// BENCH_multilevel.json artifact (written when BENCH_MULTILEVEL_JSON
// names a path, the way CI's bench smoke step does).
var (
	multilevelBenchMu      sync.Mutex
	multilevelBenchResults = map[string]map[string]float64{}
)

func publishMultilevelBench(b *testing.B, name string, metrics map[string]float64) {
	b.Helper()
	multilevelBenchMu.Lock()
	defer multilevelBenchMu.Unlock()
	multilevelBenchResults[name] = metrics
	path := os.Getenv("BENCH_MULTILEVEL_JSON")
	if path == "" {
		return
	}
	out := map[string]any{
		"benchmark": "BenchmarkMultilevel",
		"graph":     "sbm4x2048",
		"sigma2":    float64(multilevelBenchSigma),
		"results":   multilevelBenchResults,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

const multilevelBenchSigma = 100

// multilevelBenchState shares the benchmark graph across arms and lets
// the multilevel arm compare against whatever the sharded arm measured
// (the arms run in declaration order; each engine runs only in its own
// arm, because a full run takes minutes at this size).
var multilevelBenchState struct {
	once     sync.Once
	g        *graph.Graph
	buildErr error
	shardDur time.Duration
	cond     float64
}

func multilevelBenchGraph(b *testing.B) *graph.Graph {
	b.Helper()
	s := &multilevelBenchState
	s.once.Do(func() {
		// 4 communities of 2048 vertices: ≈545k edges (4.2× grid256's
		// 130,560), with a BFS-bisect cut of ≈399k edges (73%) — the
		// cut-heavy regime where the flat engine's global re-filter must
		// re-densify most of the graph at full size.
		s.g, _, s.buildErr = gen.SBM(4, 2048, 0.04, 0.008, 3)
	})
	if s.buildErr != nil {
		b.Fatal(s.buildErr)
	}
	return s.g
}

// BenchmarkMultilevel races the coarsen → sparsify-coarse → interpolate →
// refilter hierarchy against the flat 4-shard engine on a cut-heavy SBM
// (≈545k edges, 4.2× grid256). Both paths end with a generalized-Lanczos
// certificate on the original fine graph; compute-s excludes that shared
// verification. The acceptance bar is speedup-vs-sharded ≥ 1 (multilevel
// no slower than flat sharding) with κ-ratio ≤ 2; measured single-core
// the hierarchy wins both axes at once (≈5× compute, ≈9× tighter κ),
// because coarsening sidesteps the bisector's enormous cut instead of
// re-filtering across it.
func BenchmarkMultilevel(b *testing.B) {
	b.Run("sharded=4", func(b *testing.B) {
		g := multilevelBenchGraph(b)
		s := &multilevelBenchState
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := engine.Run(context.Background(), g, engine.Options{
				Shards:   4,
				Sparsify: core.Options{SigmaSq: multilevelBenchSigma},
				Seed:     1,
			})
			if err != nil {
				b.Fatal(err)
			}
			compute := res.WallTime - res.VerifyTime
			s.shardDur, s.cond = compute, res.VerifiedCond
			b.ReportMetric(compute.Seconds(), "compute-s")
			b.ReportMetric(res.VerifiedCond, "verified-κ")
			b.ReportMetric(float64(res.Sparsifier.M()), "edges")
			publishMultilevelBench(b, "sharded=4", map[string]float64{
				"compute_s":  compute.Seconds(),
				"verified_k": res.VerifiedCond,
				"edges":      float64(res.Sparsifier.M()),
			})
		}
	})
	b.Run("multilevel", func(b *testing.B) {
		g := multilevelBenchGraph(b)
		s := &multilevelBenchState
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := multilevel.Run(context.Background(), g, multilevel.Options{
				Sparsify: core.Options{SigmaSq: multilevelBenchSigma, Seed: 1},
			})
			if err != nil {
				b.Fatal(err)
			}
			if res.VerifiedCond <= 0 {
				b.Fatal("missing fine-graph Lanczos certificate")
			}
			compute := res.WallTime - res.VerifyTime
			b.ReportMetric(compute.Seconds(), "compute-s")
			b.ReportMetric(float64(res.Depth), "levels")
			b.ReportMetric(res.VerifiedCond, "verified-κ")
			b.ReportMetric(float64(res.Sparsifier.M()), "edges")
			metrics := map[string]float64{
				"compute_s":  compute.Seconds(),
				"levels":     float64(res.Depth),
				"verified_k": res.VerifiedCond,
				"edges":      float64(res.Sparsifier.M()),
			}
			// Comparison metrics only when the sharded arm ran this process.
			if s.shardDur > 0 {
				b.ReportMetric(float64(s.shardDur)/float64(compute), "speedup-vs-sharded")
				b.ReportMetric(res.VerifiedCond/s.cond, "κ-ratio")
				metrics["speedup_vs_sharded"] = float64(s.shardDur) / float64(compute)
				metrics["k_ratio"] = res.VerifiedCond / s.cond
			}
			publishMultilevelBench(b, "multilevel", metrics)
		}
	})
}

// ------------------------------------------------- end-to-end sanity bench

// BenchmarkEndToEndPreconditioning measures the full pipeline the library
// exists for: sparsify once, then repeatedly solve (the multiple-RHS PCG
// scenario of §1).
func BenchmarkEndToEndPreconditioning(b *testing.B) {
	g, err := gen.Grid2D(64, 64, gen.UniformWeights, 1)
	if err != nil {
		b.Fatal(err)
	}
	res := sparsifyMetrics(b, g, core.Options{SigmaSq: 100, Seed: 1})
	m, err := pcg.NewCholPrecond(res.Sparsifier)
	if err != nil {
		b.Fatal(err)
	}
	n := g.N()
	rhs := make([]float64, n)
	vecmath.NewRNG(3).FillNormal(rhs)
	vecmath.Deflate(rhs)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x := make([]float64, n)
		r, err := pcg.SolveLaplacian(g, m, x, append([]float64(nil), rhs...), 1e-6, 10*n)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.Iterations), "pcg-iters")
	}
}
