package graphspar

import (
	"io"

	"graphspar/internal/cli"
	"graphspar/internal/graph"
	"graphspar/internal/mm"
)

// Graph is a weighted undirected graph with a fixed vertex count and an
// immutable edge list. All pipelines require it to be connected.
type Graph = graph.Graph

// Edge is one weighted undirected edge (U < V after normalization).
type Edge = graph.Edge

// NewGraph builds a graph on n vertices from an edge list, validating
// endpoints, weights (> 0) and duplicates.
func NewGraph(n int, edges []Edge) (*Graph, error) { return graph.New(n, edges) }

// SpecHelp describes the generator/file syntax LoadGraph accepts, for
// tool usage strings.
const SpecHelp = cli.SpecHelp

// LoadGraph resolves a graph spec: a path to a MatrixMarket .mtx file, or
// a generator expression such as "grid:200x200:uniform" (see SpecHelp for
// the full list). The seed drives the generators' random choices.
func LoadGraph(spec string, seed uint64) (*Graph, error) { return cli.LoadGraph(spec, seed) }

// SaveGraph writes g to path as a symmetric Laplacian MatrixMarket file.
func SaveGraph(path string, g *Graph) error { return cli.SaveGraph(path, g) }

// ReadMatrixMarket parses a MatrixMarket stream (a symmetric Laplacian or
// adjacency/edge-list matrix) into a graph.
func ReadMatrixMarket(r io.Reader) (*Graph, error) {
	m, err := mm.Read(r)
	if err != nil {
		return nil, err
	}
	return m.ToGraph()
}

// WriteMatrixMarket writes g as a symmetric Laplacian MatrixMarket
// stream (the inverse of ReadMatrixMarket).
func WriteMatrixMarket(w io.Writer, g *Graph) error { return mm.WriteGraph(w, g) }
