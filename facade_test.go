package graphspar_test

// Equivalence tests for the public facade: for fixed seeds, a facade Run
// must be bit-identical to the direct core.Sparsify / engine.Run call it
// wraps — same sparsifier edge list (ids, endpoints, weights), same
// certificate estimates, same round traces. These tests are the contract
// that migrating a consumer onto the facade can never change its output.

import (
	"context"
	"errors"
	"testing"

	"graphspar"
	"graphspar/internal/core"
	"graphspar/internal/dynamic"
	"graphspar/internal/engine"
	"graphspar/internal/gen"
	"graphspar/internal/graph"
	"graphspar/internal/partition"
)

// facadeTestGraphs builds the grid / SBM / barbell trio the equivalence
// suite runs on.
func facadeTestGraphs(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	grid, err := gen.Grid2D(20, 20, gen.UniformWeights, 9)
	if err != nil {
		t.Fatal(err)
	}
	sbm, _, err := gen.SBM(4, 60, 0.2, 0.02, 13)
	if err != nil {
		t.Fatal(err)
	}
	barbell, err := gen.Barbell(10, 5, gen.UniformWeights, 5)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*graph.Graph{"grid": grid, "sbm": sbm, "barbell": barbell}
}

// sameGraph asserts two graphs are bit-identical: same vertex count and
// the same edge list in the same order with exactly equal weights.
func sameGraph(t *testing.T, name string, got, want *graph.Graph) {
	t.Helper()
	if got.N() != want.N() || got.M() != want.M() {
		t.Fatalf("%s: graph shape (n=%d m=%d), want (n=%d m=%d)",
			name, got.N(), got.M(), want.N(), want.M())
	}
	for i, we := range want.Edges() {
		ge := got.Edge(i)
		if ge.U != we.U || ge.V != we.V || ge.W != we.W {
			t.Fatalf("%s: edge %d = (%d,%d,%v), want (%d,%d,%v)",
				name, i, ge.U, ge.V, ge.W, we.U, we.V, we.W)
		}
	}
}

func sameInts(t *testing.T, name string, got, want []int) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: len %d, want %d", name, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: [%d] = %d, want %d", name, i, got[i], want[i])
		}
	}
}

func TestFacadeSingleShotBitIdentical(t *testing.T) {
	const sigma2, seed = 60.0, 7
	for name, g := range facadeTestGraphs(t) {
		t.Run(name, func(t *testing.T) {
			want, wantErr := core.Sparsify(g, core.Options{SigmaSq: sigma2, Seed: seed})
			if wantErr != nil && !errors.Is(wantErr, core.ErrNoTarget) {
				t.Fatal(wantErr)
			}

			s, err := graphspar.New(
				graphspar.WithSigma2(sigma2),
				graphspar.WithSeed(seed),
				graphspar.WithShards(1),
			)
			if err != nil {
				t.Fatal(err)
			}
			got, gotErr := s.Run(context.Background(), g)
			if gotErr != nil && !errors.Is(gotErr, graphspar.ErrNoTarget) {
				t.Fatal(gotErr)
			}
			if errors.Is(gotErr, graphspar.ErrNoTarget) != errors.Is(wantErr, core.ErrNoTarget) {
				t.Fatalf("target errors diverge: facade %v, core %v", gotErr, wantErr)
			}

			sameGraph(t, "sparsifier", got.Sparsifier, want.Sparsifier)
			sameInts(t, "tree ids", got.TreeEdgeIDs, want.TreeEdgeIDs)
			sameInts(t, "off-tree ids", got.OffTreeAddedIDs, want.OffTreeAddedIDs)
			if got.LambdaMax != want.LambdaMax || got.LambdaMin != want.LambdaMin ||
				got.SigmaSqAchieved != want.SigmaSqAchieved {
				t.Errorf("certificate: (%v, %v, %v), want (%v, %v, %v)",
					got.LambdaMax, got.LambdaMin, got.SigmaSqAchieved,
					want.LambdaMax, want.LambdaMin, want.SigmaSqAchieved)
			}
			if got.TotalStretch != want.TotalStretch {
				t.Errorf("total stretch %v, want %v", got.TotalStretch, want.TotalStretch)
			}
			if len(got.Rounds) != len(want.Rounds) {
				t.Fatalf("rounds %d, want %d", len(got.Rounds), len(want.Rounds))
			}
			for i := range want.Rounds {
				if got.Rounds[i] != want.Rounds[i] {
					t.Errorf("round %d: %+v, want %+v", i, got.Rounds[i], want.Rounds[i])
				}
			}
			if got.Sharded {
				t.Error("WithShards(1) must run the single-shot pipeline")
			}
		})
	}
}

func TestFacadeShardedBitIdentical(t *testing.T) {
	const sigma2, seed, shards = 60.0, 7, 3
	for name, g := range facadeTestGraphs(t) {
		t.Run(name, func(t *testing.T) {
			want, err := engine.Run(context.Background(), g, engine.Options{
				Shards:    shards,
				Workers:   2,
				Sparsify:  core.Options{SigmaSq: sigma2, Seed: seed},
				Partition: &partition.Options{Method: partition.BFS, SigmaSq: sigma2, Seed: seed},
				Seed:      seed,
			})
			if err != nil {
				t.Fatal(err)
			}

			s, err := graphspar.New(
				graphspar.WithSigma2(sigma2),
				graphspar.WithSeed(seed),
				graphspar.WithShards(shards),
				graphspar.WithWorkers(2),
				graphspar.WithPartition(graphspar.PartitionBFS),
			)
			if err != nil {
				t.Fatal(err)
			}
			got, gotErr := s.Run(context.Background(), g)
			if gotErr != nil && !errors.Is(gotErr, graphspar.ErrNoTarget) {
				t.Fatal(gotErr)
			}

			sameGraph(t, "sparsifier", got.Sparsifier, want.Sparsifier)
			if got.Parts != want.Parts || got.CutEdges != want.CutEdges ||
				got.StitchedCut != want.StitchedCut || got.RecoveredCut != want.RecoveredCut {
				t.Errorf("cut bookkeeping (%d,%d,%d,%d), want (%d,%d,%d,%d)",
					got.Parts, got.CutEdges, got.StitchedCut, got.RecoveredCut,
					want.Parts, want.CutEdges, want.StitchedCut, want.RecoveredCut)
			}
			if got.SigmaSqAchieved != want.SigmaSqEst {
				t.Errorf("σ² estimate %v, want %v", got.SigmaSqAchieved, want.SigmaSqEst)
			}
			if !got.Verified || got.VerifiedCond != want.VerifiedCond ||
				got.VerifiedLambdaMax != want.VerifiedLambdaMax ||
				got.VerifiedLambdaMin != want.VerifiedLambdaMin {
				t.Errorf("verified (%v,%v,%v), want (%v,%v,%v)",
					got.VerifiedLambdaMax, got.VerifiedLambdaMin, got.VerifiedCond,
					want.VerifiedLambdaMax, want.VerifiedLambdaMin, want.VerifiedCond)
			}
			if got.TargetMet != want.TargetMet {
				t.Errorf("target met %v, want %v", got.TargetMet, want.TargetMet)
			}
			if len(got.Shards) != len(want.Shards) {
				t.Fatalf("shard stats %d, want %d", len(got.Shards), len(want.Shards))
			}
			for i := range want.Shards {
				if got.Shards[i].Kept != want.Shards[i].Kept ||
					got.Shards[i].SigmaSqAchieved != want.Shards[i].SigmaSqAchieved {
					t.Errorf("shard %d: kept=%d σ²=%v, want kept=%d σ²=%v",
						i, got.Shards[i].Kept, got.Shards[i].SigmaSqAchieved,
						want.Shards[i].Kept, want.Shards[i].SigmaSqAchieved)
				}
			}
			if !got.Sharded {
				t.Error("WithShards(>1) must run the sharded engine")
			}
		})
	}
}

// TestFacadeMaintainBitIdentical checks Maintain + Apply against a direct
// dynamic.Maintainer under the same updates.
func TestFacadeMaintainBitIdentical(t *testing.T) {
	const sigma2, seed = 60.0, 7
	g, err := gen.Grid2D(12, 12, gen.UniformWeights, 3)
	if err != nil {
		t.Fatal(err)
	}
	batch := []graphspar.Update{
		graphspar.Insert(0, 143, 1.3),
		graphspar.Delete(0, 1),
		graphspar.Reweight(1, 2, 2.5),
	}

	m, err := dynamic.New(context.Background(), g, dynamic.Options{
		Sparsify: core.Options{SigmaSq: sigma2, Seed: seed},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Apply(context.Background(), batch); err != nil {
		t.Fatal(err)
	}

	s, err := graphspar.New(graphspar.WithSigma2(sigma2), graphspar.WithSeed(seed))
	if err != nil {
		t.Fatal(err)
	}
	st, err := s.Maintain(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Apply(context.Background(), batch); err != nil {
		t.Fatal(err)
	}

	sameGraph(t, "maintained sparsifier", st.Sparsifier(), m.Sparsifier())
	if st.Cond() != m.Cond() || st.TargetMet() != m.TargetMet() {
		t.Errorf("certificate (κ=%v met=%v), want (κ=%v met=%v)",
			st.Cond(), st.TargetMet(), m.Cond(), m.TargetMet())
	}
	if st.Stats() != m.Stats() {
		t.Errorf("stats %+v, want %+v", st.Stats(), m.Stats())
	}
}

// TestFacadeStreamIncrementalKnobs pins the pass-through of the stream
// maintenance knobs: WithLocalRefresh and WithFactorUpdateBudget must
// yield bit-identical state to a direct dynamic.Maintainer configured the
// same way, and a zero budget must disable rank-1 factor updates.
func TestFacadeStreamIncrementalKnobs(t *testing.T) {
	const sigma2, seed = 60.0, 7
	g, err := gen.Grid2D(12, 12, gen.UniformWeights, 3)
	if err != nil {
		t.Fatal(err)
	}
	batch := []graphspar.Update{
		graphspar.Reweight(1, 2, 2.5),
		graphspar.Reweight(12, 13, 0.4),
	}

	m, err := dynamic.New(context.Background(), g, dynamic.Options{
		Sparsify:           core.Options{SigmaSq: sigma2, Seed: seed},
		LocalRefreshRadius: 2,
		FactorUpdateBudget: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Apply(context.Background(), batch); err != nil {
		t.Fatal(err)
	}

	s, err := graphspar.New(graphspar.WithSigma2(sigma2), graphspar.WithSeed(seed),
		graphspar.WithLocalRefresh(2), graphspar.WithFactorUpdateBudget(64))
	if err != nil {
		t.Fatal(err)
	}
	st, err := s.Maintain(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Apply(context.Background(), batch); err != nil {
		t.Fatal(err)
	}
	sameGraph(t, "maintained sparsifier", st.Sparsifier(), m.Sparsifier())
	if st.Stats() != m.Stats() {
		t.Errorf("stats %+v, want %+v", st.Stats(), m.Stats())
	}

	// Budget 0 turns incremental factor updates off entirely.
	s0, err := graphspar.New(graphspar.WithSigma2(sigma2), graphspar.WithSeed(seed),
		graphspar.WithFactorUpdateBudget(0))
	if err != nil {
		t.Fatal(err)
	}
	st0, err := s0.Maintain(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if err := st0.Apply(context.Background(), batch); err != nil {
		t.Fatal(err)
	}
	if got := st0.Stats(); got.FactorUpdates+got.FactorDowndates != 0 {
		t.Errorf("WithFactorUpdateBudget(0) still did %d updates/%d downdates",
			got.FactorUpdates, got.FactorDowndates)
	}

	if _, err := graphspar.New(graphspar.WithSigma2(sigma2), graphspar.WithFactorUpdateBudget(-1)); !errors.Is(err, graphspar.ErrInvalidOptions) {
		t.Errorf("negative budget: err = %v, want ErrInvalidOptions", err)
	}
}

func TestFacadeValidation(t *testing.T) {
	if _, err := graphspar.New(); !errors.Is(err, graphspar.ErrBadSigma2) {
		t.Errorf("missing σ²: err = %v, want ErrBadSigma2", err)
	}
	if _, err := graphspar.New(graphspar.WithSigma2(0.5)); !errors.Is(err, graphspar.ErrInvalidOptions) {
		t.Errorf("bad σ²: err = %v, want ErrInvalidOptions", err)
	}
	if _, err := graphspar.New(graphspar.WithSigma2(50), graphspar.WithShards(-1)); !errors.Is(err, graphspar.ErrBadShards) {
		t.Errorf("negative shards: err = %v, want ErrBadShards", err)
	}
	if _, err := graphspar.New(graphspar.WithSigma2(50)); err != nil {
		t.Errorf("minimal valid options rejected: %v", err)
	}
	// MaxEdges is a single-shot knob: it does not compose with a sharded
	// pin (the engine would apply the cap per shard)...
	if _, err := graphspar.New(graphspar.WithSigma2(50), graphspar.WithShards(4), graphspar.WithMaxEdges(100)); !errors.Is(err, graphspar.ErrInvalidOptions) {
		t.Errorf("MaxEdges+shards: err = %v, want ErrInvalidOptions", err)
	}
	// ...nor with streams (re-filter rounds cannot honor an edge budget).
	s, err := graphspar.New(graphspar.WithSigma2(50), graphspar.WithMaxEdges(100))
	if err != nil {
		t.Fatal(err)
	}
	g, err := gen.Grid2D(4, 4, gen.UnitWeights, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Maintain(context.Background(), g); !errors.Is(err, graphspar.ErrInvalidOptions) {
		t.Errorf("MaxEdges+Maintain: err = %v, want ErrInvalidOptions", err)
	}
}

// TestFacadeVerificationMatchesServiceContract pins the single-shot
// verification path: WithVerification must report the same independent
// Lanczos estimate the service's job runner historically attached.
func TestFacadeVerificationSingleShot(t *testing.T) {
	g, err := gen.Grid2D(15, 15, gen.UniformWeights, 7)
	if err != nil {
		t.Fatal(err)
	}
	s, err := graphspar.New(
		graphspar.WithSigma2(50),
		graphspar.WithSeed(7),
		graphspar.WithShards(1),
		graphspar.WithVerification(0),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified {
		t.Fatal("WithVerification must run the independent check")
	}
	if res.VerifiedCond <= 0 || res.VerifiedCond > 50 {
		t.Errorf("verified κ = %v outside (0, 50]", res.VerifiedCond)
	}
	// Without the option, the single-shot path skips verification.
	s2, err := graphspar.New(graphspar.WithSigma2(50), graphspar.WithSeed(7), graphspar.WithShards(1))
	if err != nil {
		t.Fatal(err)
	}
	res2, err := s2.Run(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Verified || res2.VerifiedCond != 0 {
		t.Errorf("default single-shot run must not verify: %+v", res2)
	}
}
