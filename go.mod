module graphspar

go 1.24
