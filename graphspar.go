// Package graphspar is the public API of the similarity-aware spectral
// sparsification toolkit (Feng, DAC 2018): given a weighted undirected
// connected graph G and a similarity target σ², it computes an
// ultra-sparse subgraph P whose relative condition number κ(L_G, L_P) is
// at most σ², and can keep that certificate valid while the graph mutates.
//
// One Sparsifier value fronts all three execution paths of the
// repository:
//
//   - single-shot edge filtering (spanning-tree backbone plus iterative
//     Joule-heat recovery of off-tree edges),
//   - the shard-parallel engine (k-way partition, concurrent per-shard
//     sparsification, cut stitching with a global re-filter pass), and
//   - incremental maintenance under edge insertions, deletions and
//     reweights.
//
// Construct it once with functional options and reuse it across graphs:
//
//	s, err := graphspar.New(graphspar.WithSigma2(100), graphspar.WithSeed(7))
//	res, err := s.Run(ctx, g)        // one-off sparsifier + certificate
//	st, err := s.Maintain(ctx, g)    // live sparsifier for update batches
//
// Run picks the execution path automatically — single-shot for small
// graphs, the sharded engine beyond AutoShardEdges edges — unless
// WithShards pins it. Results are deterministic for a fixed seed and
// independent of worker counts.
package graphspar

import (
	"context"
	"errors"
	"fmt"
	"time"

	"graphspar/internal/cholesky"
	"graphspar/internal/core"
	"graphspar/internal/dynamic"
	"graphspar/internal/engine"
	"graphspar/internal/multilevel"
	"graphspar/internal/obs"
	"graphspar/internal/partition"
)

// Auto path policy: with no explicit WithMode/WithShards choice, Run uses
// the single-shot pipeline below AutoShardEdges edges and a parallel path
// at or above it — the sharded engine by default, or the multilevel
// hierarchy for inputs the flat partition handles badly: graphs at or
// beyond AutoMultilevelEdges edges (too big for the per-shard single-shot
// core) and ill-partitioned graphs, where a cheap O(n+m) BFS bisection
// probe finds at least AutoIllCutFraction of the edges crossing a
// balanced cut (stitching would degrade into global re-filter passes over
// that cut). The thresholds are where each path's fixed costs start
// paying for themselves; the policy depends only on the graph, never on
// the machine, so results stay reproducible across hosts.
const (
	AutoShardEdges      = 200_000
	AutoShards          = 4
	AutoMultilevelEdges = 1_000_000
	AutoIllCutFraction  = 0.10
)

// Sparsifier is a reusable, immutable sparsification configuration. The
// zero value is not usable; build one with New. A Sparsifier is safe for
// concurrent use: Run and Maintain never mutate it.
type Sparsifier struct {
	cfg config
}

// New builds a Sparsifier from functional options. WithSigma2 is
// required; everything else defaults as documented on the option.
// Validation errors are typed: errors.Is(err, ErrInvalidOptions) matches
// any of them, ErrBadSigma2 the missing/bad target specifically.
func New(opts ...Option) (*Sparsifier, error) {
	cfg := defaultConfig()
	for _, opt := range opts {
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	cfg.workspace = core.NewWorkspace()
	return &Sparsifier{cfg: cfg}, nil
}

// Sigma2 reports the configured similarity target.
func (s *Sparsifier) Sigma2() float64 { return s.cfg.sigma2 }

// Run sparsifies g to the configured σ² target and returns the unified
// Result. The execution path is chosen per the WithShards documentation
// (auto below/above AutoShardEdges unless pinned). Cancellation of ctx
// stops the densification rounds at their next checkpoint.
//
// When the round budget is exhausted with the target unmet, Run returns
// the best sparsifier found together with ErrNoTarget (Result.TargetMet
// is false); every other error returns a nil Result.
func (s *Sparsifier) Run(ctx context.Context, g *Graph) (*Result, error) {
	// Every Run carries a phase trace: pipeline spans (partition, shard,
	// stitch, embed, verify, ...) land in Result.Phases and aggregate
	// into the process-wide phase histograms. A trace already attached by
	// the caller (NewTraceContext) is reused, so a serving layer sees the
	// same spans it would collect itself.
	tr := obs.FromContext(ctx)
	if tr == nil {
		tr = obs.NewTrace()
		ctx = obs.WithTrace(ctx, tr)
	}
	switch s.modeFor(g) {
	case ModeMultilevel:
		return s.runMultilevel(ctx, g, tr)
	case ModeSharded:
		return s.runSharded(ctx, g, tr)
	}
	return s.runSingle(ctx, g, tr)
}

// modeFor resolves the execution path for a graph: the explicit WithMode
// choice when set, a WithShards pin next, then the auto policy documented
// on the Auto* constants.
func (s *Sparsifier) modeFor(g *Graph) Mode {
	if s.cfg.mode != ModeAuto {
		return s.cfg.mode
	}
	if s.cfg.shards == 1 {
		return ModeSingleShot
	}
	if s.cfg.shards > 1 {
		return ModeSharded
	}
	if s.cfg.maxEdges > 0 || g.M() < AutoShardEdges {
		return ModeSingleShot
	}
	if g.M() >= AutoMultilevelEdges || s.illPartitioned(g) {
		return ModeMultilevel
	}
	return ModeSharded
}

// illPartitioned probes whether flat sharding would fight the topology:
// it runs the engine's own solver-free BFS level-set bisector and reports
// whether the balanced cut crosses at least AutoIllCutFraction of the
// edges. On such graphs (dense blocks the partition must slice through)
// stitching degrades into global re-filter passes over the cut, which is
// exactly the work the multilevel hierarchy avoids. O(n+m), deterministic.
func (s *Sparsifier) illPartitioned(g *Graph) bool {
	pr, err := partition.SpectralBisect(g, partition.Options{Method: partition.BFS, Seed: s.cfg.effectiveSeed()})
	if err != nil {
		return false
	}
	cut := 0
	for _, e := range g.Edges() {
		if pr.Signs[e.U] != pr.Signs[e.V] {
			cut++
		}
	}
	return float64(cut) >= AutoIllCutFraction*float64(g.M())
}

// NewTraceContext attaches a fresh phase trace to ctx. Run records its
// per-phase spans there (the same list it returns in Result.Phases);
// Stream.Apply records its maintenance phases (settle, refilter, embed,
// verify) there too, which is the only way to get a per-batch breakdown
// out of a stream.
func NewTraceContext(ctx context.Context) (context.Context, *Trace) {
	tr := obs.NewTrace()
	return obs.WithTrace(ctx, tr), tr
}

// shardsFor resolves the effective shard count for a graph: the explicit
// WithShards choice when set, then the WithMode pin (ModeSharded defaults
// to AutoShards; the other pinned modes never shard), otherwise the auto
// policy. An edge budget (WithMaxEdges) pins auto to single-shot — the
// engine would apply the cap per shard, silently inflating it.
func (s *Sparsifier) shardsFor(g *Graph) int {
	if s.cfg.shards != 0 {
		return s.cfg.shards
	}
	switch s.cfg.mode {
	case ModeSharded:
		return AutoShards
	case ModeSingleShot, ModeMultilevel:
		return 1
	}
	if s.cfg.maxEdges == 0 && g.M() >= AutoShardEdges {
		return AutoShards
	}
	return 1
}

// runSingle executes the single-shot pipeline (plus the optional
// independent verification).
func (s *Sparsifier) runSingle(ctx context.Context, g *Graph, tr *obs.Trace) (*Result, error) {
	start := time.Now()
	spSpan := obs.StartSpan(ctx, "sparsify")
	sp, err := core.SparsifyCtx(ctx, g, s.cfg.coreOptions())
	sparsifyDur := spSpan.End()
	if err != nil && !errors.Is(err, core.ErrNoTarget) {
		return nil, err
	}
	res := &Result{
		Sparsifier:      sp.Sparsifier,
		LambdaMax:       sp.LambdaMax,
		LambdaMin:       sp.LambdaMin,
		SigmaSqAchieved: sp.SigmaSqAchieved,
		TargetMet:       err == nil,
		TotalStretch:    sp.TotalStretch,
		TreeEdgeIDs:     sp.TreeEdgeIDs,
		OffTreeAddedIDs: sp.OffTreeAddedIDs,
		Rounds:          sp.Rounds,
		Parts:           1,
	}
	res.Timings.Sparsify = sparsifyDur
	if s.cfg.verify == verifyOn {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		vSpan := obs.StartSpan(ctx, "verify")
		solver, err := cholesky.NewLapSolver(sp.Sparsifier)
		if err != nil {
			vSpan.End()
			return nil, err
		}
		lmax, lmin, cond, err := core.VerifySimilarity(g, sp.Sparsifier, solver, s.cfg.verifyStepsFor(g.N()), s.cfg.effectiveSeed())
		if err != nil {
			vSpan.End()
			return nil, err
		}
		res.Verified = true
		res.VerifiedLambdaMax, res.VerifiedLambdaMin, res.VerifiedCond = lmax, lmin, cond
		// Span-derived, so the single-shot path reports Verify exactly the
		// way the engine path does.
		res.Timings.Verify = vSpan.End()
	}
	res.Timings.Wall = time.Since(start)
	res.Phases = tr.Phases()
	if !res.TargetMet {
		return res, ErrNoTarget
	}
	return res, nil
}

// runSharded executes the shard-parallel engine.
func (s *Sparsifier) runSharded(ctx context.Context, g *Graph, tr *obs.Trace) (*Result, error) {
	er, err := engine.Run(ctx, g, s.cfg.engineOptions(s.shardsFor(g)))
	if err != nil {
		return nil, err
	}
	res := &Result{
		Sparsifier:      er.Sparsifier,
		Sharded:         true,
		LambdaMax:       er.LambdaMax,
		LambdaMin:       er.LambdaMin,
		SigmaSqAchieved: er.SigmaSqEst,
		TargetMet:       er.TargetMet,
		Parts:           er.Parts,
		Shards:          er.Shards,
		CutEdges:        er.CutEdges,
		StitchedCut:     er.StitchedCut,
		RecoveredCut:    er.RecoveredCut,
		Verified:        s.cfg.verify != verifyOff,
		Timings: Timings{
			Partition: er.PartitionTime,
			Shard:     er.ShardWall,
			ShardCPU:  er.ShardCPU,
			Stitch:    er.StitchTime,
			Sparsify:  er.WallTime - er.VerifyTime,
			Verify:    er.VerifyTime,
			Wall:      er.WallTime,
		},
	}
	if res.Verified {
		res.VerifiedLambdaMax = er.VerifiedLambdaMax
		res.VerifiedLambdaMin = er.VerifiedLambdaMin
		res.VerifiedCond = er.VerifiedCond
	}
	res.Phases = tr.Phases()
	if !res.TargetMet {
		return res, ErrNoTarget
	}
	return res, nil
}

// runMultilevel executes the coarsen → sparsify-coarse → interpolate →
// refilter hierarchy engine.
func (s *Sparsifier) runMultilevel(ctx context.Context, g *Graph, tr *obs.Trace) (*Result, error) {
	mr, err := multilevel.Run(ctx, g, s.cfg.multilevelOptions())
	if err != nil {
		return nil, err
	}
	res := &Result{
		Sparsifier:      mr.Sparsifier,
		Multilevel:      true,
		CoarsenDepth:    mr.Depth,
		Levels:          mr.Levels,
		LambdaMax:       mr.LambdaMax,
		LambdaMin:       mr.LambdaMin,
		SigmaSqAchieved: mr.SigmaSqEst,
		TargetMet:       mr.TargetMet,
		Parts:           1,
		Verified:        s.cfg.verify != verifyOff,
		Timings: Timings{
			Coarsen:     mr.CoarsenTime,
			Interpolate: mr.InterpolateTime,
			Refilter:    mr.RefilterTime,
			Sparsify:    mr.WallTime - mr.VerifyTime,
			Verify:      mr.VerifyTime,
			Wall:        mr.WallTime,
		},
	}
	if res.Verified {
		res.VerifiedLambdaMax = mr.VerifiedLambdaMax
		res.VerifiedLambdaMin = mr.VerifiedLambdaMin
		res.VerifiedCond = mr.VerifiedCond
	}
	res.Phases = tr.Phases()
	if !res.TargetMet {
		return res, ErrNoTarget
	}
	return res, nil
}

// Maintain sparsifies g from scratch and returns a Stream that keeps the
// sparsifier's σ² certificate valid under batched edge updates (see
// Stream.Apply). The stream's full builds and rebuilds route through the
// sharded engine exactly when Run would on the same graph (WithShards
// pin, or the auto policy). WithMaxEdges does not compose with streams:
// the maintainer's re-filter rounds admit whatever the certificate
// needs, so an edge budget cannot be honored.
func (s *Sparsifier) Maintain(ctx context.Context, g *Graph) (*Stream, error) {
	if err := s.maintainable(); err != nil {
		return nil, err
	}
	m, err := dynamic.New(ctx, g, s.cfg.dynamicOptions(s.shardsFor(g)))
	if err != nil {
		return nil, err
	}
	return &Stream{m: m}, nil
}

// maintainable rejects configurations the maintainer cannot honor.
func (s *Sparsifier) maintainable() error {
	if s.cfg.maxEdges > 0 {
		return fmt.Errorf("%w: WithMaxEdges does not compose with Maintain/Resume", ErrInvalidOptions)
	}
	if s.cfg.mode == ModeMultilevel {
		// The maintainer's rebuilds route through single-shot or the
		// sharded engine; a pinned hierarchy mode cannot be honored.
		return fmt.Errorf("%w: WithMode(ModeMultilevel) does not compose with Maintain/Resume", ErrInvalidOptions)
	}
	return nil
}

// HeatSpectrum supports the paper's Fig. 2 reproduction: it extracts a
// backbone tree, runs a single Joule-heat embedding round (t steps, r
// vectors; non-positive values default as in Run) and returns all
// off-tree heats normalized by the max, sorted descending, together with
// the similarity-aware thresholds θσ for the requested σ² values.
func HeatSpectrum(g *Graph, t, r int, sigmaSqs []float64, alg TreeAlgorithm, seed uint64) (norm, thresholds []float64, err error) {
	return core.HeatSpectrum(g, t, r, sigmaSqs, alg, seed)
}

// Resume warm-starts a Stream from an existing sparsifier of a nearby
// version of g (typically a prior Run's Result.Sparsifier, possibly for a
// graph that has since mutated). The warm edges are reconciled against g
// and the certificate is re-established with re-filter rounds — much
// cheaper than Maintain when warm is close. The warm graph must cover the
// same vertex set.
func (s *Sparsifier) Resume(ctx context.Context, g, warm *Graph) (*Stream, error) {
	if err := s.maintainable(); err != nil {
		return nil, err
	}
	m, err := dynamic.Resume(ctx, g, warm, s.cfg.dynamicOptions(s.shardsFor(g)))
	if err != nil {
		return nil, err
	}
	return &Stream{m: m}, nil
}
