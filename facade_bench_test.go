package graphspar_test

// BenchmarkFacadeOverhead measures the cost of the graphspar facade's
// dispatch layer against direct core.Sparsify / engine.Run calls on
// grid256 (the repo's standard bench graph). The facade only assembles an
// options struct and copies result fields, so the acceptance bar is
// overhead < 1% of the underlying pipeline; the reported metrics make
// that visible per run. When BENCH_FACADE_JSON names a path (the CI bench
// step does), the metrics are published as a JSON artifact alongside the
// existing bench outputs.

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"sync"
	"testing"
	"time"

	"graphspar"
	"graphspar/internal/core"
	"graphspar/internal/engine"
	"graphspar/internal/gen"
	"graphspar/internal/graph"
)

const facadeBenchSigma2 = 100

var facadeBenchGraph struct {
	once sync.Once
	g    *graph.Graph
	err  error
}

func benchGrid256(b *testing.B) *graph.Graph {
	b.Helper()
	facadeBenchGraph.once.Do(func() {
		facadeBenchGraph.g, facadeBenchGraph.err = gen.Grid2D(256, 256, gen.UniformWeights, 1)
	})
	if facadeBenchGraph.err != nil {
		b.Fatal(facadeBenchGraph.err)
	}
	return facadeBenchGraph.g
}

var (
	facadeBenchMu      sync.Mutex
	facadeBenchResults = map[string]any{}
)

func publishFacadeBench(b *testing.B, name string, metrics map[string]float64) {
	b.Helper()
	facadeBenchMu.Lock()
	defer facadeBenchMu.Unlock()
	facadeBenchResults[name] = metrics
	path := os.Getenv("BENCH_FACADE_JSON")
	if path == "" {
		return
	}
	out := map[string]any{
		"benchmark": "BenchmarkFacadeOverhead",
		"graph":     "grid256",
		"sigma2":    facadeBenchSigma2,
		"results":   facadeBenchResults,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkFacadeOverhead(b *testing.B) {
	b.Run("single-shot", func(b *testing.B) {
		g := benchGrid256(b)
		s, err := graphspar.New(
			graphspar.WithSigma2(facadeBenchSigma2),
			graphspar.WithSeed(1),
			graphspar.WithShards(1),
		)
		if err != nil {
			b.Fatal(err)
		}
		var direct, facade time.Duration
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			t0 := time.Now()
			if _, err := core.Sparsify(g, core.Options{SigmaSq: facadeBenchSigma2, Seed: 1}); err != nil &&
				!errors.Is(err, core.ErrNoTarget) {
				b.Fatal(err)
			}
			direct += time.Since(t0)

			t1 := time.Now()
			if _, err := s.Run(context.Background(), g); err != nil &&
				!errors.Is(err, graphspar.ErrNoTarget) {
				b.Fatal(err)
			}
			facade += time.Since(t1)
		}
		b.StopTimer()
		reportOverhead(b, "single-shot", direct, facade)
	})

	b.Run("sharded-4", func(b *testing.B) {
		g := benchGrid256(b)
		s, err := graphspar.New(
			graphspar.WithSigma2(facadeBenchSigma2),
			graphspar.WithSeed(1),
			graphspar.WithShards(4),
		)
		if err != nil {
			b.Fatal(err)
		}
		var direct, facade time.Duration
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			t0 := time.Now()
			if _, err := engine.Run(context.Background(), g, engine.Options{
				Shards:   4,
				Sparsify: core.Options{SigmaSq: facadeBenchSigma2, Seed: 1},
				Seed:     1,
			}); err != nil {
				b.Fatal(err)
			}
			direct += time.Since(t0)

			t1 := time.Now()
			if _, err := s.Run(context.Background(), g); err != nil &&
				!errors.Is(err, graphspar.ErrNoTarget) {
				b.Fatal(err)
			}
			facade += time.Since(t1)
		}
		b.StopTimer()
		reportOverhead(b, "sharded-4", direct, facade)
	})
}

// reportOverhead publishes direct vs facade wall time and the dispatch
// overhead percentage ((facade - direct) / direct; negative values are
// run-to-run noise and clamp to 0 in the pass/fail reading).
func reportOverhead(b *testing.B, name string, direct, facade time.Duration) {
	b.Helper()
	if direct <= 0 {
		return
	}
	directMs := float64(direct.Milliseconds()) / float64(b.N)
	facadeMs := float64(facade.Milliseconds()) / float64(b.N)
	overheadPct := 100 * (float64(facade) - float64(direct)) / float64(direct)
	b.ReportMetric(directMs, "direct-ms")
	b.ReportMetric(facadeMs, "facade-ms")
	b.ReportMetric(overheadPct, "overhead-%")
	publishFacadeBench(b, name, map[string]float64{
		"direct-ms":  directMs,
		"facade-ms":  facadeMs,
		"overhead-%": overheadPct,
	})
}
