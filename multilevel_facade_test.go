package graphspar_test

// Equivalence and validation coverage of the facade's multilevel path:
// WithMode(ModeMultilevel) must be bit-identical to the direct
// multilevel.Run call it wraps, the degenerate coarsening settings must
// reproduce the single-shot pipeline, and the mode/shards/budget
// combination rules must reject contradictions with typed errors.

import (
	"context"
	"errors"
	"testing"

	"graphspar"
	"graphspar/internal/core"
	"graphspar/internal/gen"
	"graphspar/internal/multilevel"
)

func TestFacadeMultilevelBitIdentical(t *testing.T) {
	g, err := gen.Grid2D(32, 32, gen.UniformWeights, 9)
	if err != nil {
		t.Fatal(err)
	}
	s, err := graphspar.New(
		graphspar.WithSigma2(60),
		graphspar.WithSeed(7),
		graphspar.WithMode(graphspar.ModeMultilevel),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	want, err := multilevel.Run(context.Background(), g, multilevel.Options{
		Sparsify: core.Options{SigmaSq: 60, Seed: 7},
	})
	if err != nil {
		t.Fatal(err)
	}
	sameGraph(t, "multilevel", res.Sparsifier, want.Sparsifier)
	if res.CoarsenDepth != want.Depth {
		t.Errorf("CoarsenDepth = %d, direct run used %d", res.CoarsenDepth, want.Depth)
	}
	if len(res.Levels) != len(want.Levels) {
		t.Errorf("Levels has %d entries, direct run %d", len(res.Levels), len(want.Levels))
	}
	if res.VerifiedCond != want.VerifiedCond {
		t.Errorf("VerifiedCond = %v, direct run %v", res.VerifiedCond, want.VerifiedCond)
	}
	if !res.Verified || !res.TargetMet {
		t.Errorf("Verified=%v TargetMet=%v, want both true", res.Verified, res.TargetMet)
	}
}

// TestFacadeMultilevelDegenerateSingleShot pins the documented
// equivalence: one hierarchy level, or a coarsen ratio of 1, must yield
// the single-shot sparsifier bit for bit.
func TestFacadeMultilevelDegenerateSingleShot(t *testing.T) {
	for name, g := range facadeTestGraphs(t) {
		single, err := graphspar.New(
			graphspar.WithSigma2(50),
			graphspar.WithSeed(11),
			graphspar.WithShards(1),
		)
		if err != nil {
			t.Fatal(err)
		}
		want, err := single.Run(context.Background(), g)
		if err != nil {
			t.Fatal(err)
		}
		for variant, opt := range map[string]graphspar.Option{
			"one-level": graphspar.WithCoarsenLevels(1),
			"ratio-1":   graphspar.WithCoarsenRatio(1),
		} {
			s, err := graphspar.New(
				graphspar.WithSigma2(50),
				graphspar.WithSeed(11),
				graphspar.WithMode(graphspar.ModeMultilevel),
				opt,
			)
			if err != nil {
				t.Fatal(err)
			}
			res, err := s.Run(context.Background(), g)
			if err != nil {
				t.Fatal(err)
			}
			if res.CoarsenDepth != 1 {
				t.Errorf("%s/%s: depth %d, want 1", name, variant, res.CoarsenDepth)
			}
			sameGraph(t, name+"/"+variant, res.Sparsifier, want.Sparsifier)
		}
	}
}

// TestFacadeModePins: WithMode forces the path regardless of graph size.
func TestFacadeModePins(t *testing.T) {
	g, err := gen.Grid2D(12, 12, gen.UniformWeights, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		mode              graphspar.Mode
		sharded, multilvl bool
	}{
		{graphspar.ModeSingleShot, false, false},
		{graphspar.ModeSharded, true, false},
		{graphspar.ModeMultilevel, false, true},
	} {
		s, err := graphspar.New(graphspar.WithSigma2(80), graphspar.WithMode(tc.mode))
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(context.Background(), g)
		if err != nil {
			t.Fatal(err)
		}
		if res.Sharded != tc.sharded || res.Multilevel != tc.multilvl {
			t.Errorf("mode %v: Sharded=%v Multilevel=%v, want %v/%v",
				tc.mode, res.Sharded, res.Multilevel, tc.sharded, tc.multilvl)
		}
	}
}

func TestFacadeModeValidation(t *testing.T) {
	base := graphspar.WithSigma2(50)
	for name, opts := range map[string][]graphspar.Option{
		"single+shards":       {base, graphspar.WithMode(graphspar.ModeSingleShot), graphspar.WithShards(4)},
		"sharded+shards1":     {base, graphspar.WithMode(graphspar.ModeSharded), graphspar.WithShards(1)},
		"multilevel+shards":   {base, graphspar.WithMode(graphspar.ModeMultilevel), graphspar.WithShards(4)},
		"multilevel+shards1":  {base, graphspar.WithMode(graphspar.ModeMultilevel), graphspar.WithShards(1)},
		"multilevel+maxedges": {base, graphspar.WithMode(graphspar.ModeMultilevel), graphspar.WithMaxEdges(100)},
		"negative-levels":     {base, graphspar.WithCoarsenLevels(-1)},
		"ratio-above-1":       {base, graphspar.WithCoarsenRatio(1.5)},
		"ratio-negative":      {base, graphspar.WithCoarsenRatio(-0.2)},
		"unknown-mode-value":  {base, graphspar.WithMode(graphspar.Mode(42))},
	} {
		if _, err := graphspar.New(opts...); !errors.Is(err, graphspar.ErrInvalidOptions) {
			t.Errorf("%s: err = %v, want ErrInvalidOptions", name, err)
		}
	}
	// Compatible pins pass.
	if _, err := graphspar.New(base, graphspar.WithMode(graphspar.ModeSharded), graphspar.WithShards(8)); err != nil {
		t.Errorf("sharded+shards8: %v", err)
	}
	if _, err := graphspar.New(base, graphspar.WithMode(graphspar.ModeMultilevel),
		graphspar.WithCoarsenLevels(3), graphspar.WithCoarsenRatio(0.5)); err != nil {
		t.Errorf("multilevel+coarsen knobs: %v", err)
	}

	// ModeMultilevel is a Run-only path: streams cannot honor it.
	s, err := graphspar.New(base, graphspar.WithMode(graphspar.ModeMultilevel))
	if err != nil {
		t.Fatal(err)
	}
	g, err := gen.Grid2D(4, 4, gen.UnitWeights, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Maintain(context.Background(), g); !errors.Is(err, graphspar.ErrInvalidOptions) {
		t.Errorf("multilevel+Maintain: err = %v, want ErrInvalidOptions", err)
	}
}

func TestParseMode(t *testing.T) {
	for name, want := range map[string]graphspar.Mode{
		"":           graphspar.ModeAuto,
		"auto":       graphspar.ModeAuto,
		"single":     graphspar.ModeSingleShot,
		"sharded":    graphspar.ModeSharded,
		"multilevel": graphspar.ModeMultilevel,
	} {
		got, err := graphspar.ParseMode(name)
		if err != nil || got != want {
			t.Errorf("ParseMode(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := graphspar.ParseMode("bogus"); !errors.Is(err, graphspar.ErrInvalidOptions) {
		t.Errorf("ParseMode(bogus): err = %v, want ErrInvalidOptions", err)
	}
	if got := graphspar.ModeMultilevel.String(); got != "multilevel" {
		t.Errorf("ModeMultilevel.String() = %q", got)
	}
}
