// Command sparsify computes a similarity-aware spectral sparsifier of a
// graph and reports the similarity trace of the densification loop. It is
// a thin shell over the public graphspar package — every flag maps to one
// facade option.
//
// Usage:
//
//	sparsify -graph grid:300x300:uniform -sigma2 100 [-out sparsifier.mtx]
//	sparsify -graph problem.mtx -sigma2 50 -tree akpw -t 2
//	sparsify -graph grid:512x512:uniform -sigma2 100 -shards 8 -workers 4
//	sparsify -graph grid:1024x1024:unit -sigma2 100 -mode multilevel -coarsen-ratio 0.6
//	sparsify -graph grid:200x200 -sigma2 100 -update-stream events.txt
//	sparsify -remote http://localhost:8080 -graph mygraph -sigma2 100 -update-stream events.txt
//
// With -update-stream, the graph is sparsified once and the edge-event
// file (lines "+ u v w" / "- u v" / "= u v w", batches separated by
// "commit") is replayed through the incremental maintainer, reporting the
// certificate after every batch and comparing the total incremental cost
// against one from-scratch re-sparsification of the final graph.
//
// With -remote URL, the event file is instead replayed against a live
// sparsifyd server: the body is streamed to POST
// /v1/graphs/{name}/stream (-graph names the registered graph) and the
// server's per-batch certificate lines are relayed to stdout. The
// server keeps the maintainer resident between requests, so consecutive
// replays — and interleaved PATCHes or incremental jobs — all reuse the
// same live session.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"strconv"
	"strings"
	"time"

	"graphspar"
)

func main() {
	var (
		spec      = flag.String("graph", "", graphspar.SpecHelp)
		sigmaSq   = flag.Float64("sigma2", 100, "target spectral similarity σ² (relative condition number bound)")
		out       = flag.String("out", "", "optional output .mtx path for the sparsifier Laplacian")
		treeAlg   = flag.String("tree", "maxweight", "backbone tree: maxweight | dijkstra | akpw")
		tSteps    = flag.Int("t", 2, "generalized power iteration steps for edge embedding")
		rVecs     = flag.Int("r", 0, "random probe vectors (0 = O(log n))")
		mode      = flag.String("mode", "auto", "execution path: auto | single | sharded | multilevel")
		shards    = flag.Int("shards", 1, "k-way shards for the parallel engine (1 = single-shot, 0 = auto by graph size)")
		workers   = flag.Int("workers", 0, "concurrent shard sparsifications (0 = all cores)")
		partAlg   = flag.String("partition", "bfs", "engine bisector: bfs | direct | iterative | sparsifier-only")
		coarsenLv = flag.Int("coarsen-levels", 0, "multilevel hierarchy depth cap (0 = until the coarsest-size floor)")
		coarsenRt = flag.Float64("coarsen-ratio", 0, "multilevel coarsening progress floor in (0,1] (0 = default 0.7; 1 disables coarsening)")
		embedWork = flag.Int("embed-workers", 0, "goroutines for the probe-vector solves (0 = sequential; any value is bit-identical)")
		stream    = flag.String("update-stream", "", "edge-event file to replay through the incremental maintainer after the initial sparsification")
		remote    = flag.String("remote", "", "base URL of a sparsifyd server; -update-stream replays the event file against its /stream endpoint (-graph names the registered graph)")
		wireFmt   = flag.String("wire", "text", "wire format for -remote streaming: text (NDJSON) | binary")
		seed      = flag.Uint64("seed", 1, "random seed")
		verbose   = flag.Bool("v", false, "print per-round densification stats (per shard in sharded mode)")
	)
	flag.Parse()

	if *remote != "" {
		if *stream == "" {
			fatal(errors.New("-remote requires -update-stream (it replays an event file against a live server)"))
		}
		if *spec == "" {
			fatal(errors.New("-remote requires -graph naming a graph registered on the server"))
		}
		if *wireFmt != "text" && *wireFmt != "binary" {
			fatal(fmt.Errorf("bad -wire %q (want text or binary)", *wireFmt))
		}
		runRemoteStream(*remote, *spec, *stream, *wireFmt, remoteQuery(*sigmaSq, *tSteps, *rVecs, *treeAlg, *partAlg, *shards, *workers, *seed))
		return
	}

	alg, err := graphspar.ParseTreeAlgorithm(*treeAlg)
	if err != nil {
		fatal(err)
	}
	method, err := graphspar.ParsePartitionMethod(*partAlg)
	if err != nil {
		fatal(err)
	}
	execMode, err := graphspar.ParseMode(*mode)
	if err != nil {
		fatal(err)
	}
	g, err := graphspar.LoadGraph(*spec, *seed)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("input: |V|=%d |E|=%d\n", g.N(), g.M())

	// -shards 1 is the flag default, not an explicit single-shot pin: it
	// must not contradict -mode multilevel unless the user actually typed
	// it (in which case the facade reports the contradiction).
	shardsSet := false
	flag.Visit(func(f *flag.Flag) { shardsSet = shardsSet || f.Name == "shards" })

	opts := []graphspar.Option{
		graphspar.WithSigma2(*sigmaSq),
		graphspar.WithEmbedSteps(*tSteps),
		graphspar.WithProbeVectors(*rVecs),
		graphspar.WithTreeAlgorithm(alg),
		graphspar.WithSeed(*seed),
		graphspar.WithEmbedWorkers(*embedWork),
		graphspar.WithWorkers(*workers),
	}
	if execMode != graphspar.ModeAuto {
		opts = append(opts, graphspar.WithMode(execMode))
	}
	if execMode == graphspar.ModeAuto || shardsSet {
		opts = append(opts, graphspar.WithShards(*shards))
	}
	if *shards != 1 {
		opts = append(opts, graphspar.WithPartition(method))
	}
	if *coarsenLv != 0 {
		opts = append(opts, graphspar.WithCoarsenLevels(*coarsenLv))
	}
	if *coarsenRt != 0 {
		opts = append(opts, graphspar.WithCoarsenRatio(*coarsenRt))
	}
	s, err := graphspar.New(opts...)
	if err != nil {
		fatal(err)
	}

	if *stream != "" {
		runUpdateStream(g, s, *stream, *out)
		return
	}

	res, err := s.Run(context.Background(), g)
	if err != nil && !errors.Is(err, graphspar.ErrNoTarget) {
		fatal(err)
	}
	report(g, res, alg, method, *sigmaSq, *verbose)
	if errors.Is(err, graphspar.ErrNoTarget) {
		fmt.Println("warning: similarity target not reached within round budget")
	}
	save(*out, res.Sparsifier)
}

// report prints the unified Result, with the extra sharding phases when
// the engine ran.
func report(g *graphspar.Graph, res *graphspar.Result, alg graphspar.TreeAlgorithm, method graphspar.PartitionMethod, sigmaSq float64, verbose bool) {
	fmt.Printf("sparsifier: |Es|=%d  density |Es|/|V| = %.3f  (%.1fx edge reduction)\n",
		res.Sparsifier.M(), res.Density(), float64(g.M())/float64(res.Sparsifier.M()))
	if res.Multilevel {
		fmt.Printf("hierarchy: %d levels (coarsest |V|=%d |E|=%d)\n",
			res.CoarsenDepth, res.Levels[len(res.Levels)-1].Vertices, res.Levels[len(res.Levels)-1].Edges)
		fmt.Printf("similarity: σ² estimate=%.1f, verified κ=%.1f (target %.1f, met=%v)\n",
			res.SigmaSqAchieved, res.VerifiedCond, sigmaSq, res.TargetMet)
		fmt.Printf("time: %s total  (coarsen %s, interpolate %s, refilter %s, verify %s)\n",
			res.Timings.Wall.Round(time.Millisecond),
			res.Timings.Coarsen.Round(time.Millisecond),
			res.Timings.Interpolate.Round(time.Millisecond),
			res.Timings.Refilter.Round(time.Millisecond),
			res.Timings.Verify.Round(time.Millisecond))
		if verbose {
			fmt.Println("level  |V|      |E|      tree   inherit  recov  kept     σ²est  κver")
			for _, lv := range res.Levels {
				fmt.Printf("%5d  %7d  %7d  %5d  %7d  %5d  %7d  %5.1f  %.1f\n",
					lv.Level, lv.Vertices, lv.Edges, lv.TreeEdges, lv.Inherited, lv.Recovered,
					lv.Kept, lv.SigmaSqEst, lv.VerifiedCond)
			}
		}
		return
	}
	if !res.Sharded {
		fmt.Printf("similarity: λmax=%.3f λmin=%.3f  σ² achieved=%.1f (target %.1f)\n",
			res.LambdaMax, res.LambdaMin, res.SigmaSqAchieved, sigmaSq)
		fmt.Printf("backbone: %s tree, total stretch %.3e\n", alg, res.TotalStretch)
		fmt.Printf("time: %s in %d densification rounds\n",
			res.Timings.Sparsify.Round(time.Millisecond), len(res.Rounds))
		if verbose {
			printRounds(res.Rounds)
		}
		return
	}
	fmt.Printf("sharding: %d parts (%s bisector), cut=%d edges (%d stitched, %d recovered)\n",
		res.Parts, method, res.CutEdges, res.StitchedCut, res.RecoveredCut)
	fmt.Printf("similarity: σ² estimate=%.1f, verified κ=%.1f (target %.1f, met=%v)\n",
		res.SigmaSqAchieved, res.VerifiedCond, sigmaSq, res.TargetMet)
	fmt.Printf("time: %s total  (partition %s, shards %s wall / %s cpu = %.2fx parallel, stitch %s, verify %s)\n",
		res.Timings.Wall.Round(time.Millisecond),
		res.Timings.Partition.Round(time.Millisecond),
		res.Timings.Shard.Round(time.Millisecond), res.Timings.ShardCPU.Round(time.Millisecond), res.Speedup(),
		res.Timings.Stitch.Round(time.Millisecond), res.Timings.Verify.Round(time.Millisecond))
	if verbose {
		for _, sh := range res.Shards {
			fmt.Printf("shard %d: |V|=%d |E|=%d kept=%d σ²=%.1f met=%v in %s\n",
				sh.Shard, sh.Vertices, sh.Edges, sh.Kept, sh.SigmaSqAchieved, sh.TargetMet,
				sh.Duration.Round(time.Millisecond))
			printRounds(sh.Rounds)
		}
	}
}

// runUpdateStream replays an edge-event file through a maintenance Stream
// and compares the cumulative incremental cost against one from-scratch
// re-sparsification of the final graph. Both the stream's rebuilds and
// the final reference run go through the same facade Sparsifier, so
// -shards/-workers/-partition apply uniformly.
func runUpdateStream(g *graphspar.Graph, s *graphspar.Sparsifier, path, out string) {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	batches, err := graphspar.ParseEvents(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	if len(batches) == 0 {
		fatal(errors.New("update stream holds no events"))
	}

	t0 := time.Now()
	st, err := s.Maintain(context.Background(), g)
	if err != nil {
		fatal(err)
	}
	buildDur := time.Since(t0)
	fmt.Printf("initial sparsifier: |Es|=%d  κ=%.1f (target %.1f) in %s\n",
		st.Sparsifier().M(), st.Cond(), s.Sigma2(), buildDur.Round(time.Millisecond))

	var incDur time.Duration
	applied, rejected := 0, 0
	for i, batch := range batches {
		tb := time.Now()
		err := st.Apply(context.Background(), batch)
		d := time.Since(tb)
		incDur += d
		if errors.Is(err, graphspar.ErrWouldDisconnect) {
			rejected++
			fmt.Printf("batch %3d: %3d updates REJECTED (would disconnect) in %s\n", i+1, len(batch), d.Round(time.Microsecond))
			continue
		}
		if err != nil {
			fatal(fmt.Errorf("batch %d: %w", i+1, err))
		}
		applied++
		fmt.Printf("batch %3d: %3d updates  |E|=%d |Es|=%d  κ=%.1f  %s\n",
			i+1, len(batch), st.Graph().M(), st.Sparsifier().M(), st.Cond(), d.Round(time.Microsecond))
	}
	stats := st.Stats()
	fmt.Printf("stream: %d batches applied, %d rejected; %d inserts admitted, %d tree repairs, %d refilter rounds, %d rebuilds\n",
		applied, rejected, stats.InsertsAdmitted, stats.TreeRepairs, stats.Refilters, stats.Rebuilds)
	if !st.TargetMet() {
		fmt.Printf("warning: final certificate κ=%.1f exceeds the σ² target %.1f (best effort)\n", st.Cond(), s.Sigma2())
	}
	fmt.Printf("incremental time: %s total (%s/batch)\n",
		incDur.Round(time.Millisecond), (incDur / time.Duration(len(batches))).Round(time.Microsecond))

	// Reference: one from-scratch sparsification of the final graph,
	// through the same facade configuration (so sharding flags apply here
	// exactly as they did to the stream's rebuilds).
	tf := time.Now()
	res, err := s.Run(context.Background(), st.Graph())
	if err != nil && !errors.Is(err, graphspar.ErrNoTarget) {
		fatal(err)
	}
	fullDur := time.Since(tf)
	perBatch := incDur / time.Duration(len(batches))
	fmt.Printf("full re-sparsify of final graph: |Es|=%d in %s  (%.1fx the per-batch incremental cost)\n",
		res.Sparsifier.M(), fullDur.Round(time.Millisecond), float64(fullDur)/float64(perBatch))
	save(out, st.Sparsifier())
}

// remoteQuery assembles the stream endpoint's query string from the
// local flags, so a remote replay is parameterized exactly like a local
// one.
func remoteQuery(sigmaSq float64, t, r int, tree, part string, shards, workers int, seed uint64) url.Values {
	q := url.Values{}
	q.Set("sigma2", strconv.FormatFloat(sigmaSq, 'g', -1, 64))
	q.Set("t", strconv.Itoa(t))
	if r > 0 {
		q.Set("r", strconv.Itoa(r))
	}
	q.Set("tree", tree)
	q.Set("seed", strconv.FormatUint(seed, 10))
	if shards > 1 {
		q.Set("shards", strconv.Itoa(shards))
		q.Set("workers", strconv.Itoa(workers))
		q.Set("partition", part)
	}
	return q
}

// runRemoteStream streams an event file to a live server's
// POST /v1/graphs/{name}/stream and relays the NDJSON result lines,
// exiting non-zero if the server reports an error. With wire "binary"
// the text event file is transcoded to the compact binary framing and
// sent under its Content-Type; the response is NDJSON either way.
func runRemoteStream(base, name, path, wire string, q url.Values) {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	var body io.Reader = f
	contentType := "application/x-ndjson"
	if wire == "binary" {
		batches, err := graphspar.ParseEvents(f)
		if err != nil {
			fatal(err)
		}
		var buf bytes.Buffer
		if err := graphspar.WriteBinaryEvents(&buf, batches); err != nil {
			fatal(err)
		}
		body = &buf
		contentType = graphspar.BinaryEventsContentType
	}
	endpoint := strings.TrimSuffix(base, "/") + "/v1/graphs/" + url.PathEscape(name) + "/stream?" + q.Encode()
	resp, err := http.Post(endpoint, contentType, body)
	if err != nil {
		fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		fatal(fmt.Errorf("server returned %s: %s", resp.Status, strings.TrimSpace(string(body))))
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	failed := false
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		fmt.Println(line)
		var probe struct {
			Error    string `json:"error"`
			Rejected bool   `json:"rejected"`
		}
		if json.Unmarshal([]byte(line), &probe) == nil && probe.Error != "" && !probe.Rejected {
			failed = true
		}
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	if failed {
		fatal(errors.New("remote stream reported a fatal error (see output above)"))
	}
}

func printRounds(rounds []graphspar.RoundStats) {
	fmt.Println("round  λmax     λmin   σ²est   θσ         cand  added  |Es|")
	for _, r := range rounds {
		fmt.Printf("%5d  %7.2f  %5.3f  %6.1f  %9.3e  %4d  %5d  %d\n",
			r.Round, r.LambdaMax, r.LambdaMin, r.SigmaSqEst, r.Threshold, r.Candidates, r.Added, r.EdgesTotal)
	}
}

func save(out string, g *graphspar.Graph) {
	if out == "" {
		return
	}
	if err := graphspar.SaveGraph(out, g); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sparsify:", err)
	os.Exit(1)
}
