// Command sparsify computes a similarity-aware spectral sparsifier of a
// graph and reports the similarity trace of the densification loop.
//
// Usage:
//
//	sparsify -graph grid:300x300:uniform -sigma2 100 [-out sparsifier.mtx]
//	sparsify -graph problem.mtx -sigma2 50 -tree akpw -t 2
//	sparsify -graph grid:512x512:uniform -sigma2 100 -shards 8 -workers 4
//	sparsify -graph grid:200x200 -sigma2 100 -update-stream events.txt
//
// With -update-stream, the graph is sparsified once and the edge-event
// file (lines "+ u v w" / "- u v" / "= u v w", batches separated by
// "commit") is replayed through the incremental maintainer, reporting the
// certificate after every batch and comparing the total incremental cost
// against one from-scratch re-sparsification of the final graph.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"graphspar/internal/cli"
	"graphspar/internal/core"
	"graphspar/internal/dynamic"
	"graphspar/internal/engine"
	"graphspar/internal/graph"
	"graphspar/internal/lsst"
	"graphspar/internal/partition"
)

func main() {
	var (
		spec      = flag.String("graph", "", cli.SpecHelp)
		sigmaSq   = flag.Float64("sigma2", 100, "target spectral similarity σ² (relative condition number bound)")
		out       = flag.String("out", "", "optional output .mtx path for the sparsifier Laplacian")
		treeAlg   = flag.String("tree", "maxweight", "backbone tree: maxweight | dijkstra | akpw")
		tSteps    = flag.Int("t", 2, "generalized power iteration steps for edge embedding")
		rVecs     = flag.Int("r", 0, "random probe vectors (0 = O(log n))")
		shards    = flag.Int("shards", 1, "k-way shards for the parallel engine (1 = single-shot)")
		workers   = flag.Int("workers", 0, "concurrent shard sparsifications (0 = all cores)")
		partAlg   = flag.String("partition", "bfs", "engine bisector: bfs | direct | iterative | sparsifier-only")
		embedWork = flag.Int("embed-workers", 0, "goroutines for the probe-vector solves (0 = sequential; any value is bit-identical)")
		stream    = flag.String("update-stream", "", "edge-event file to replay through the incremental maintainer after the initial sparsification")
		seed      = flag.Uint64("seed", 1, "random seed")
		verbose   = flag.Bool("v", false, "print per-round densification stats (per shard in sharded mode)")
	)
	flag.Parse()

	alg, err := lsst.Parse(*treeAlg)
	if err != nil {
		fatal(err)
	}
	g, err := cli.LoadGraph(*spec, *seed)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("input: |V|=%d |E|=%d\n", g.N(), g.M())

	opts := core.Options{
		SigmaSq: *sigmaSq, T: *tSteps, NumVectors: *rVecs,
		TreeAlg: alg, Seed: *seed, EmbedWorkers: *embedWork,
	}
	if *stream != "" {
		runUpdateStream(g, opts, *stream, *shards, *workers, *out)
		return
	}
	if *shards > 1 {
		runSharded(g, opts, *shards, *workers, *partAlg, *seed, *verbose, *out)
		return
	}

	t0 := time.Now()
	res, err := core.Sparsify(g, opts)
	if err != nil && !errors.Is(err, core.ErrNoTarget) {
		fatal(err)
	}
	dur := time.Since(t0)

	fmt.Printf("sparsifier: |Es|=%d  density |Es|/|V| = %.3f  (%.1fx edge reduction)\n",
		res.Sparsifier.M(), res.Density(), float64(g.M())/float64(res.Sparsifier.M()))
	fmt.Printf("similarity: λmax=%.3f λmin=%.3f  σ² achieved=%.1f (target %.1f)\n",
		res.LambdaMax, res.LambdaMin, res.SigmaSqAchieved, *sigmaSq)
	fmt.Printf("backbone: %s tree, total stretch %.3e\n", alg, res.TotalStretch)
	fmt.Printf("time: %s in %d densification rounds\n", dur.Round(time.Millisecond), len(res.Rounds))
	if errors.Is(err, core.ErrNoTarget) {
		fmt.Println("warning: similarity target not reached within round budget")
	}
	if *verbose {
		printRounds(res.Rounds)
	}
	save(*out, res.Sparsifier)
}

// runSharded drives the shard-parallel engine and reports its phases.
func runSharded(g *graph.Graph, opts core.Options, shards, workers int, partAlg string, seed uint64, verbose bool, out string) {
	method, err := partition.ParseMethod(partAlg)
	if err != nil {
		fatal(err)
	}
	res, err := engine.Run(context.Background(), g, engine.Options{
		Shards:    shards,
		Workers:   workers,
		Sparsify:  opts,
		Partition: &partition.Options{Method: method, SigmaSq: opts.SigmaSq, Seed: seed},
		Seed:      seed,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("sparsifier: |Es|=%d  density |Es|/|V| = %.3f  (%.1fx edge reduction)\n",
		res.Sparsifier.M(), res.Density(), float64(g.M())/float64(res.Sparsifier.M()))
	fmt.Printf("sharding: %d parts (%s bisector), cut=%d edges (%d stitched, %d recovered)\n",
		res.Parts, method, res.CutEdges, res.StitchedCut, res.RecoveredCut)
	fmt.Printf("similarity: σ² estimate=%.1f, verified κ=%.1f (target %.1f, met=%v)\n",
		res.SigmaSqEst, res.VerifiedCond, opts.SigmaSq, res.TargetMet)
	fmt.Printf("time: %s total  (partition %s, shards %s wall / %s cpu = %.2fx parallel, stitch %s, verify %s)\n",
		res.WallTime.Round(time.Millisecond),
		res.PartitionTime.Round(time.Millisecond),
		res.ShardWall.Round(time.Millisecond), res.ShardCPU.Round(time.Millisecond), res.Speedup(),
		res.StitchTime.Round(time.Millisecond), res.VerifyTime.Round(time.Millisecond))
	if verbose {
		for _, s := range res.Shards {
			fmt.Printf("shard %d: |V|=%d |E|=%d kept=%d σ²=%.1f met=%v in %s\n",
				s.Shard, s.Vertices, s.Edges, s.Kept, s.SigmaSqAchieved, s.TargetMet,
				s.Duration.Round(time.Millisecond))
			printRounds(s.Rounds)
		}
	}
	save(out, res.Sparsifier)
}

// runUpdateStream replays an edge-event file through the incremental
// maintainer and compares the cumulative incremental cost against one
// from-scratch re-sparsification of the final graph.
func runUpdateStream(g *graph.Graph, opts core.Options, path string, shards, workers int, out string) {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	batches, err := dynamic.ParseEvents(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	if len(batches) == 0 {
		fatal(errors.New("update stream holds no events"))
	}

	t0 := time.Now()
	m, err := dynamic.New(context.Background(), g, dynamic.Options{
		Sparsify:       opts,
		RebuildShards:  shards,
		RebuildWorkers: workers,
	})
	if err != nil {
		fatal(err)
	}
	buildDur := time.Since(t0)
	fmt.Printf("initial sparsifier: |Es|=%d  κ=%.1f (target %.1f) in %s\n",
		m.Sparsifier().M(), m.Cond(), opts.SigmaSq, buildDur.Round(time.Millisecond))

	var incDur time.Duration
	applied, rejected := 0, 0
	for i, batch := range batches {
		tb := time.Now()
		err := m.Apply(context.Background(), batch)
		d := time.Since(tb)
		incDur += d
		if errors.Is(err, dynamic.ErrWouldDisconnect) {
			rejected++
			fmt.Printf("batch %3d: %3d updates REJECTED (would disconnect) in %s\n", i+1, len(batch), d.Round(time.Microsecond))
			continue
		}
		if err != nil {
			fatal(fmt.Errorf("batch %d: %w", i+1, err))
		}
		applied++
		fmt.Printf("batch %3d: %3d updates  |E|=%d |Es|=%d  κ=%.1f  %s\n",
			i+1, len(batch), m.Graph().M(), m.Sparsifier().M(), m.Cond(), d.Round(time.Microsecond))
	}
	st := m.Stats()
	fmt.Printf("stream: %d batches applied, %d rejected; %d inserts admitted, %d tree repairs, %d refilter rounds, %d rebuilds\n",
		applied, rejected, st.InsertsAdmitted, st.TreeRepairs, st.Refilters, st.Rebuilds)
	if !m.TargetMet() {
		fmt.Printf("warning: final certificate κ=%.1f exceeds the σ² target %.1f (best effort)\n", m.Cond(), opts.SigmaSq)
	}
	fmt.Printf("incremental time: %s total (%s/batch)\n",
		incDur.Round(time.Millisecond), (incDur / time.Duration(len(batches))).Round(time.Microsecond))

	// Reference: one from-scratch sparsification of the final graph.
	tf := time.Now()
	res, err := core.Sparsify(m.Graph(), opts)
	if err != nil && !errors.Is(err, core.ErrNoTarget) {
		fatal(err)
	}
	fullDur := time.Since(tf)
	perBatch := incDur / time.Duration(len(batches))
	fmt.Printf("full re-sparsify of final graph: |Es|=%d in %s  (%.1fx the per-batch incremental cost)\n",
		res.Sparsifier.M(), fullDur.Round(time.Millisecond), float64(fullDur)/float64(perBatch))
	save(out, m.Sparsifier())
}

func printRounds(rounds []core.RoundStats) {
	fmt.Println("round  λmax     λmin   σ²est   θσ         cand  added  |Es|")
	for _, r := range rounds {
		fmt.Printf("%5d  %7.2f  %5.3f  %6.1f  %9.3e  %4d  %5d  %d\n",
			r.Round, r.LambdaMax, r.LambdaMin, r.SigmaSqEst, r.Threshold, r.Candidates, r.Added, r.EdgesTotal)
	}
}

func save(out string, g *graph.Graph) {
	if out == "" {
		return
	}
	if err := cli.SaveGraph(out, g); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sparsify:", err)
	os.Exit(1)
}
