// Command sparsify computes a similarity-aware spectral sparsifier of a
// graph and reports the similarity trace of the densification loop.
//
// Usage:
//
//	sparsify -graph grid:300x300:uniform -sigma2 100 [-out sparsifier.mtx]
//	sparsify -graph problem.mtx -sigma2 50 -tree akpw -t 2
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"graphspar/internal/cli"
	"graphspar/internal/core"
	"graphspar/internal/lsst"
)

func main() {
	var (
		spec    = flag.String("graph", "", cli.SpecHelp)
		sigmaSq = flag.Float64("sigma2", 100, "target spectral similarity σ² (relative condition number bound)")
		out     = flag.String("out", "", "optional output .mtx path for the sparsifier Laplacian")
		treeAlg = flag.String("tree", "maxweight", "backbone tree: maxweight | dijkstra | akpw")
		tSteps  = flag.Int("t", 2, "generalized power iteration steps for edge embedding")
		rVecs   = flag.Int("r", 0, "random probe vectors (0 = O(log n))")
		seed    = flag.Uint64("seed", 1, "random seed")
		verbose = flag.Bool("v", false, "print per-round densification stats")
	)
	flag.Parse()

	alg, err := lsst.Parse(*treeAlg)
	if err != nil {
		fatal(err)
	}
	g, err := cli.LoadGraph(*spec, *seed)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("input: |V|=%d |E|=%d\n", g.N(), g.M())

	t0 := time.Now()
	res, err := core.Sparsify(g, core.Options{
		SigmaSq: *sigmaSq, T: *tSteps, NumVectors: *rVecs,
		TreeAlg: alg, Seed: *seed,
	})
	if err != nil && !errors.Is(err, core.ErrNoTarget) {
		fatal(err)
	}
	dur := time.Since(t0)

	fmt.Printf("sparsifier: |Es|=%d  density |Es|/|V| = %.3f  (%.1fx edge reduction)\n",
		res.Sparsifier.M(), res.Density(), float64(g.M())/float64(res.Sparsifier.M()))
	fmt.Printf("similarity: λmax=%.3f λmin=%.3f  σ² achieved=%.1f (target %.1f)\n",
		res.LambdaMax, res.LambdaMin, res.SigmaSqAchieved, *sigmaSq)
	fmt.Printf("backbone: %s tree, total stretch %.3e\n", alg, res.TotalStretch)
	fmt.Printf("time: %s in %d densification rounds\n", dur.Round(time.Millisecond), len(res.Rounds))
	if errors.Is(err, core.ErrNoTarget) {
		fmt.Println("warning: similarity target not reached within round budget")
	}
	if *verbose {
		fmt.Println("round  λmax     λmin   σ²est   θσ         cand  added  |Es|")
		for _, r := range res.Rounds {
			fmt.Printf("%5d  %7.2f  %5.3f  %6.1f  %9.3e  %4d  %5d  %d\n",
				r.Round, r.LambdaMax, r.LambdaMin, r.SigmaSqEst, r.Threshold, r.Candidates, r.Added, r.EdgesTotal)
		}
	}
	if *out != "" {
		if err := cli.SaveGraph(*out, res.Sparsifier); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *out)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sparsify:", err)
	os.Exit(1)
}
