// Command sparsify computes a similarity-aware spectral sparsifier of a
// graph and reports the similarity trace of the densification loop.
//
// Usage:
//
//	sparsify -graph grid:300x300:uniform -sigma2 100 [-out sparsifier.mtx]
//	sparsify -graph problem.mtx -sigma2 50 -tree akpw -t 2
//	sparsify -graph grid:512x512:uniform -sigma2 100 -shards 8 -workers 4
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"graphspar/internal/cli"
	"graphspar/internal/core"
	"graphspar/internal/engine"
	"graphspar/internal/graph"
	"graphspar/internal/lsst"
	"graphspar/internal/partition"
)

func main() {
	var (
		spec      = flag.String("graph", "", cli.SpecHelp)
		sigmaSq   = flag.Float64("sigma2", 100, "target spectral similarity σ² (relative condition number bound)")
		out       = flag.String("out", "", "optional output .mtx path for the sparsifier Laplacian")
		treeAlg   = flag.String("tree", "maxweight", "backbone tree: maxweight | dijkstra | akpw")
		tSteps    = flag.Int("t", 2, "generalized power iteration steps for edge embedding")
		rVecs     = flag.Int("r", 0, "random probe vectors (0 = O(log n))")
		shards    = flag.Int("shards", 1, "k-way shards for the parallel engine (1 = single-shot)")
		workers   = flag.Int("workers", 0, "concurrent shard sparsifications (0 = all cores)")
		partAlg   = flag.String("partition", "bfs", "engine bisector: bfs | direct | iterative | sparsifier-only")
		embedWork = flag.Int("embed-workers", 0, "goroutines for the probe-vector solves (0 = sequential; any value is bit-identical)")
		seed      = flag.Uint64("seed", 1, "random seed")
		verbose   = flag.Bool("v", false, "print per-round densification stats (per shard in sharded mode)")
	)
	flag.Parse()

	alg, err := lsst.Parse(*treeAlg)
	if err != nil {
		fatal(err)
	}
	g, err := cli.LoadGraph(*spec, *seed)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("input: |V|=%d |E|=%d\n", g.N(), g.M())

	opts := core.Options{
		SigmaSq: *sigmaSq, T: *tSteps, NumVectors: *rVecs,
		TreeAlg: alg, Seed: *seed, EmbedWorkers: *embedWork,
	}
	if *shards > 1 {
		runSharded(g, opts, *shards, *workers, *partAlg, *seed, *verbose, *out)
		return
	}

	t0 := time.Now()
	res, err := core.Sparsify(g, opts)
	if err != nil && !errors.Is(err, core.ErrNoTarget) {
		fatal(err)
	}
	dur := time.Since(t0)

	fmt.Printf("sparsifier: |Es|=%d  density |Es|/|V| = %.3f  (%.1fx edge reduction)\n",
		res.Sparsifier.M(), res.Density(), float64(g.M())/float64(res.Sparsifier.M()))
	fmt.Printf("similarity: λmax=%.3f λmin=%.3f  σ² achieved=%.1f (target %.1f)\n",
		res.LambdaMax, res.LambdaMin, res.SigmaSqAchieved, *sigmaSq)
	fmt.Printf("backbone: %s tree, total stretch %.3e\n", alg, res.TotalStretch)
	fmt.Printf("time: %s in %d densification rounds\n", dur.Round(time.Millisecond), len(res.Rounds))
	if errors.Is(err, core.ErrNoTarget) {
		fmt.Println("warning: similarity target not reached within round budget")
	}
	if *verbose {
		printRounds(res.Rounds)
	}
	save(*out, res.Sparsifier)
}

// runSharded drives the shard-parallel engine and reports its phases.
func runSharded(g *graph.Graph, opts core.Options, shards, workers int, partAlg string, seed uint64, verbose bool, out string) {
	method, err := partition.ParseMethod(partAlg)
	if err != nil {
		fatal(err)
	}
	res, err := engine.Run(context.Background(), g, engine.Options{
		Shards:    shards,
		Workers:   workers,
		Sparsify:  opts,
		Partition: &partition.Options{Method: method, SigmaSq: opts.SigmaSq, Seed: seed},
		Seed:      seed,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("sparsifier: |Es|=%d  density |Es|/|V| = %.3f  (%.1fx edge reduction)\n",
		res.Sparsifier.M(), res.Density(), float64(g.M())/float64(res.Sparsifier.M()))
	fmt.Printf("sharding: %d parts (%s bisector), cut=%d edges (%d stitched, %d recovered)\n",
		res.Parts, method, res.CutEdges, res.StitchedCut, res.RecoveredCut)
	fmt.Printf("similarity: σ² estimate=%.1f, verified κ=%.1f (target %.1f, met=%v)\n",
		res.SigmaSqEst, res.VerifiedCond, opts.SigmaSq, res.TargetMet)
	fmt.Printf("time: %s total  (partition %s, shards %s wall / %s cpu = %.2fx parallel, stitch %s, verify %s)\n",
		res.WallTime.Round(time.Millisecond),
		res.PartitionTime.Round(time.Millisecond),
		res.ShardWall.Round(time.Millisecond), res.ShardCPU.Round(time.Millisecond), res.Speedup(),
		res.StitchTime.Round(time.Millisecond), res.VerifyTime.Round(time.Millisecond))
	if verbose {
		for _, s := range res.Shards {
			fmt.Printf("shard %d: |V|=%d |E|=%d kept=%d σ²=%.1f met=%v in %s\n",
				s.Shard, s.Vertices, s.Edges, s.Kept, s.SigmaSqAchieved, s.TargetMet,
				s.Duration.Round(time.Millisecond))
			printRounds(s.Rounds)
		}
	}
	save(out, res.Sparsifier)
}

func printRounds(rounds []core.RoundStats) {
	fmt.Println("round  λmax     λmin   σ²est   θσ         cand  added  |Es|")
	for _, r := range rounds {
		fmt.Printf("%5d  %7.2f  %5.3f  %6.1f  %9.3e  %4d  %5d  %d\n",
			r.Round, r.LambdaMax, r.LambdaMin, r.SigmaSqEst, r.Threshold, r.Candidates, r.Added, r.EdgesTotal)
	}
}

func save(out string, g *graph.Graph) {
	if out == "" {
		return
	}
	if err := cli.SaveGraph(out, g); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sparsify:", err)
	os.Exit(1)
}
