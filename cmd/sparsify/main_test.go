package main

import (
	"testing"

	"graphspar/internal/lsst"
)

func TestParseTree(t *testing.T) {
	cases := map[string]lsst.Algorithm{
		"maxweight": lsst.MaxWeight,
		"dijkstra":  lsst.Dijkstra,
		"akpw":      lsst.AKPW,
	}
	for s, want := range cases {
		got, err := parseTree(s)
		if err != nil || got != want {
			t.Fatalf("parseTree(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := parseTree("bogus"); err == nil {
		t.Fatal("bogus algorithm should fail")
	}
}
