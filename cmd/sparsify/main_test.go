package main

import (
	"os"
	"path/filepath"
	"testing"

	"graphspar"
)

func TestParseTree(t *testing.T) {
	cases := map[string]graphspar.TreeAlgorithm{
		"maxweight": graphspar.TreeMaxWeight,
		"dijkstra":  graphspar.TreeDijkstra,
		"akpw":      graphspar.TreeAKPW,
	}
	for s, want := range cases {
		got, err := graphspar.ParseTreeAlgorithm(s)
		if err != nil || got != want {
			t.Fatalf("ParseTreeAlgorithm(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := graphspar.ParseTreeAlgorithm("bogus"); err == nil {
		t.Fatal("bogus algorithm should fail")
	}
}

// TestRunUpdateStream drives the -update-stream path end to end on a
// small grid: replayed batches, final sparsifier written out.
func TestRunUpdateStream(t *testing.T) {
	dir := t.TempDir()
	events := filepath.Join(dir, "events.txt")
	if err := os.WriteFile(events, []byte(
		"+ 0 63 1.5\ncommit\n= 0 1 2.5\n- 62 63\ncommit\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	g, err := graphspar.LoadGraph("grid:8x8:uniform", 1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := graphspar.New(graphspar.WithSigma2(60), graphspar.WithSeed(1), graphspar.WithShards(1))
	if err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "sparsifier.mtx")
	runUpdateStream(g, s, events, out)
	g2, err := graphspar.LoadGraph(out, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != g.N() {
		t.Fatalf("output sparsifier has %d vertices, want %d", g2.N(), g.N())
	}
	if !g2.IsConnected() {
		t.Fatal("output sparsifier must be connected")
	}
}

// TestRunUpdateStreamSharded pins the satellite fix: with a sharded
// facade, the -update-stream path (rebuilds and the final reference
// re-sparsify) must run through the engine without error, honoring the
// sharding flags instead of silently ignoring them.
func TestRunUpdateStreamSharded(t *testing.T) {
	dir := t.TempDir()
	events := filepath.Join(dir, "events.txt")
	if err := os.WriteFile(events, []byte("+ 0 99 1.5\ncommit\n- 0 1\ncommit\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	g, err := graphspar.LoadGraph("grid:10x10:uniform", 1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := graphspar.New(
		graphspar.WithSigma2(60),
		graphspar.WithSeed(1),
		graphspar.WithShards(2),
		graphspar.WithWorkers(2),
		graphspar.WithPartition(graphspar.PartitionBFS),
	)
	if err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "sparsifier.mtx")
	runUpdateStream(g, s, events, out)
	g2, err := graphspar.LoadGraph(out, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !g2.IsConnected() {
		t.Fatal("output sparsifier must be connected")
	}
}
