package main

import (
	"os"
	"path/filepath"
	"testing"

	"graphspar/internal/cli"
	"graphspar/internal/core"
	"graphspar/internal/lsst"
)

func TestParseTree(t *testing.T) {
	cases := map[string]lsst.Algorithm{
		"maxweight": lsst.MaxWeight,
		"dijkstra":  lsst.Dijkstra,
		"akpw":      lsst.AKPW,
	}
	for s, want := range cases {
		got, err := lsst.Parse(s)
		if err != nil || got != want {
			t.Fatalf("lsst.Parse(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := lsst.Parse("bogus"); err == nil {
		t.Fatal("bogus algorithm should fail")
	}
}

// TestRunUpdateStream drives the -update-stream path end to end on a
// small grid: replayed batches, one rejected bridge delete is impossible
// on a grid, final sparsifier written out.
func TestRunUpdateStream(t *testing.T) {
	dir := t.TempDir()
	events := filepath.Join(dir, "events.txt")
	if err := os.WriteFile(events, []byte(
		"+ 0 63 1.5\ncommit\n= 0 1 2.5\n- 62 63\ncommit\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	g, err := cli.LoadGraph("grid:8x8:uniform", 1)
	if err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "sparsifier.mtx")
	runUpdateStream(g, core.Options{SigmaSq: 60, Seed: 1}, events, 0, 0, out)
	g2, err := cli.LoadGraph(out, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != g.N() {
		t.Fatalf("output sparsifier has %d vertices, want %d", g2.N(), g.N())
	}
	if !g2.IsConnected() {
		t.Fatal("output sparsifier must be connected")
	}
}
