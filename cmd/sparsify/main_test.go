package main

import (
	"testing"

	"graphspar/internal/lsst"
)

func TestParseTree(t *testing.T) {
	cases := map[string]lsst.Algorithm{
		"maxweight": lsst.MaxWeight,
		"dijkstra":  lsst.Dijkstra,
		"akpw":      lsst.AKPW,
	}
	for s, want := range cases {
		got, err := lsst.Parse(s)
		if err != nil || got != want {
			t.Fatalf("lsst.Parse(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := lsst.Parse("bogus"); err == nil {
		t.Fatal("bogus algorithm should fail")
	}
}
