package main

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"graphspar"
)

func TestParseTree(t *testing.T) {
	cases := map[string]graphspar.TreeAlgorithm{
		"maxweight": graphspar.TreeMaxWeight,
		"dijkstra":  graphspar.TreeDijkstra,
		"akpw":      graphspar.TreeAKPW,
	}
	for s, want := range cases {
		got, err := graphspar.ParseTreeAlgorithm(s)
		if err != nil || got != want {
			t.Fatalf("ParseTreeAlgorithm(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := graphspar.ParseTreeAlgorithm("bogus"); err == nil {
		t.Fatal("bogus algorithm should fail")
	}
}

// TestRunUpdateStream drives the -update-stream path end to end on a
// small grid: replayed batches, final sparsifier written out.
func TestRunUpdateStream(t *testing.T) {
	dir := t.TempDir()
	events := filepath.Join(dir, "events.txt")
	if err := os.WriteFile(events, []byte(
		"+ 0 63 1.5\ncommit\n= 0 1 2.5\n- 62 63\ncommit\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	g, err := graphspar.LoadGraph("grid:8x8:uniform", 1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := graphspar.New(graphspar.WithSigma2(60), graphspar.WithSeed(1), graphspar.WithShards(1))
	if err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "sparsifier.mtx")
	runUpdateStream(g, s, events, out)
	g2, err := graphspar.LoadGraph(out, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != g.N() {
		t.Fatalf("output sparsifier has %d vertices, want %d", g2.N(), g.N())
	}
	if !g2.IsConnected() {
		t.Fatal("output sparsifier must be connected")
	}
}

// TestRunUpdateStreamSharded pins the satellite fix: with a sharded
// facade, the -update-stream path (rebuilds and the final reference
// re-sparsify) must run through the engine without error, honoring the
// sharding flags instead of silently ignoring them.
func TestRunUpdateStreamSharded(t *testing.T) {
	dir := t.TempDir()
	events := filepath.Join(dir, "events.txt")
	if err := os.WriteFile(events, []byte("+ 0 99 1.5\ncommit\n- 0 1\ncommit\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	g, err := graphspar.LoadGraph("grid:10x10:uniform", 1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := graphspar.New(
		graphspar.WithSigma2(60),
		graphspar.WithSeed(1),
		graphspar.WithShards(2),
		graphspar.WithWorkers(2),
		graphspar.WithPartition(graphspar.PartitionBFS),
	)
	if err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "sparsifier.mtx")
	runUpdateStream(g, s, events, out)
	g2, err := graphspar.LoadGraph(out, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !g2.IsConnected() {
		t.Fatal("output sparsifier must be connected")
	}
}

// TestRemoteQuery checks the flag → query-string mapping the -remote
// mode ships to the server's stream endpoint.
func TestRemoteQuery(t *testing.T) {
	q := remoteQuery(100, 2, 0, "maxweight", "bfs", 1, 0, 7)
	if q.Get("sigma2") != "100" || q.Get("t") != "2" || q.Get("seed") != "7" {
		t.Fatalf("query = %v", q)
	}
	if q.Get("shards") != "" || q.Get("partition") != "" {
		t.Fatalf("single-shot must not ship engine knobs: %v", q)
	}
	q = remoteQuery(50, 3, 8, "akpw", "direct", 4, 2, 1)
	if q.Get("shards") != "4" || q.Get("workers") != "2" || q.Get("partition") != "direct" || q.Get("r") != "8" {
		t.Fatalf("sharded query = %v", q)
	}
}

// TestRunRemoteStream replays an event file against a stub server and
// checks the body reaches the right endpoint and the NDJSON result
// lines are relayed.
func TestRunRemoteStream(t *testing.T) {
	dir := t.TempDir()
	events := filepath.Join(dir, "events.txt")
	if err := os.WriteFile(events, []byte("= 0 1 2.5\ncommit\n= 0 1 1.0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var gotPath, gotBody, gotSigma string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotPath = r.URL.Path
		gotSigma = r.URL.Query().Get("sigma2")
		b, _ := io.ReadAll(r.Body)
		gotBody = string(b)
		w.Header().Set("Content-Type", "application/x-ndjson")
		fmt.Fprintln(w, `{"batch":1,"updates":1,"applied":true,"condition_number":12.5,"target_met":true}`)
		fmt.Fprintln(w, `{"batch":2,"updates":1,"applied":true,"condition_number":12.5,"target_met":true}`)
		fmt.Fprintln(w, `{"done":true,"batches":2,"applied_total":2}`)
	}))
	defer srv.Close()

	runRemoteStream(srv.URL, "mygraph", events, "text", remoteQuery(75, 2, 0, "maxweight", "bfs", 1, 0, 1))
	if gotPath != "/v1/graphs/mygraph/stream" {
		t.Fatalf("path = %q", gotPath)
	}
	if gotSigma != "75" {
		t.Fatalf("sigma2 = %q", gotSigma)
	}
	if !strings.Contains(gotBody, "= 0 1 2.5") || !strings.Contains(gotBody, "commit") {
		t.Fatalf("body = %q", gotBody)
	}
}
