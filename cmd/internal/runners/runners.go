// Package runners binds the service's transport/scheduling layer to the
// public graphspar facade: the queue's SparsifyFunc/IncrementalFunc are
// the only places job parameters become sparsification options.
// internal/service cannot import the root package (the facade sits on
// top of the internal pipelines), so the wiring lives here, shared by
// cmd/serve and cmd/loadgen's self-serve mode.
package runners

import (
	"context"
	"errors"

	"graphspar"
	"graphspar/internal/graph"
	"graphspar/internal/service"
	"graphspar/internal/sessions"
)

// facadeFor translates canonicalized wire params into a facade
// Sparsifier. withVerification adds the independent certificate check
// from-scratch jobs report; incremental jobs skip it because the
// maintainer's own per-batch verification IS the certificate.
func facadeFor(p service.SparsifyParams, withVerification bool) (*graphspar.Sparsifier, error) {
	alg, err := graphspar.ParseTreeAlgorithm(p.TreeAlg)
	if err != nil {
		return nil, err
	}
	opts := []graphspar.Option{
		graphspar.WithSigma2(p.SigmaSq),
		graphspar.WithEmbedSteps(p.T),
		graphspar.WithProbeVectors(p.NumVectors),
		graphspar.WithTreeAlgorithm(alg),
		graphspar.WithSeed(p.Seed),
	}
	if withVerification {
		opts = append(opts, graphspar.WithVerification(0))
	}
	if p.MaxEdges > 0 {
		opts = append(opts, graphspar.WithMaxEdges(p.MaxEdges))
	}
	if p.Mode == graphspar.ModeMultilevel.String() {
		// Canon left "multilevel" as the only surviving mode string and
		// already zeroed Shards; the coarsen knobs ride along (0 keeps the
		// library defaults) and Workers bounds the per-level embedding.
		opts = append(opts, graphspar.WithMode(graphspar.ModeMultilevel))
		if p.CoarsenLevels > 0 {
			opts = append(opts, graphspar.WithCoarsenLevels(p.CoarsenLevels))
		}
		if p.CoarsenRatio > 0 {
			opts = append(opts, graphspar.WithCoarsenRatio(p.CoarsenRatio))
		}
		if p.Workers > 0 {
			opts = append(opts, graphspar.WithWorkers(p.Workers))
		}
		return graphspar.New(opts...)
	}
	if p.Shards > 1 {
		opts = append(opts, graphspar.WithShards(p.Shards), graphspar.WithWorkers(p.Workers))
		if p.Partition != "" {
			m, err := graphspar.ParsePartitionMethod(p.Partition)
			if err != nil {
				return nil, err
			}
			opts = append(opts, graphspar.WithPartition(m))
		}
	} else {
		// The wire contract is explicit: shards ≤ 1 is the single-shot
		// pipeline, never the facade's auto-sharding policy.
		opts = append(opts, graphspar.WithShards(1))
	}
	return graphspar.New(opts...)
}

// Sparsify is the production SparsifyFunc: facade Run (single-shot or
// sharded per the params) plus the independent Lanczos verification.
func Sparsify(ctx context.Context, g *graph.Graph, p service.SparsifyParams) (*service.JobResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s, err := facadeFor(p, true)
	if err != nil {
		return nil, err
	}
	res, err := s.Run(ctx, g)
	if err != nil && !errors.Is(err, graphspar.ErrNoTarget) {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	out := &service.JobResult{
		EdgesKept:         res.Sparsifier.M(),
		EdgesInput:        g.M(),
		Density:           res.Density(),
		Reduction:         float64(g.M()) / float64(res.Sparsifier.M()),
		SigmaSqAchieved:   res.SigmaSqAchieved,
		TargetMet:         res.TargetMet,
		Connected:         res.Sparsifier.IsConnected(),
		VerifiedLambdaMax: res.VerifiedLambdaMax,
		VerifiedLambdaMin: res.VerifiedLambdaMin,
		VerifiedCond:      res.VerifiedCond,
		Sparsifier:        res.Sparsifier,
	}
	switch {
	case res.Sharded:
		for _, sh := range res.Shards {
			out.Rounds += len(sh.Rounds)
		}
		out.Shards = res.Parts
		out.CutEdges = res.CutEdges
		out.RecoveredCut = res.RecoveredCut
		out.ShardSpeedup = res.Speedup()
	case res.Multilevel:
		out.Multilevel = true
		out.CoarsenDepth = res.CoarsenDepth
		for _, lv := range res.Levels {
			out.LevelRecovered += lv.Recovered
		}
	default:
		out.Rounds = len(res.Rounds)
		out.TotalStretch = res.TotalStretch
	}
	return out, nil
}

// Maintain is the production MaintainFunc: it builds a live facade
// Stream from scratch for the stream endpoint's cold path. The returned
// *graphspar.Stream satisfies sessions.Maintainer (its methods alias the
// internal types), so the service's session manager drives the exact
// object a library user would hold.
func Maintain(ctx context.Context, g *graph.Graph, p service.SparsifyParams) (sessions.Maintainer, error) {
	s, err := facadeFor(p, false)
	if err != nil {
		return nil, err
	}
	return s.Maintain(ctx, g)
}

// Resume is the production ResumeFunc: it warm-starts a live facade
// Stream from a prior job's sparsifier. Incremental jobs answer from it
// and then leave it resident as the graph's session, so the next
// PATCH/stream/job skips the reconcile this call just paid.
func Resume(ctx context.Context, g, warm *graph.Graph, p service.SparsifyParams) (sessions.Maintainer, error) {
	s, err := facadeFor(p, false)
	if err != nil {
		return nil, err
	}
	return s.Resume(ctx, g, warm)
}

// Incremental is the production IncrementalFunc: it warm-starts a
// maintenance Stream from a prior job's sparsifier (reconciling it
// against the current graph and re-establishing the certificate with
// re-filter rounds) instead of running the full pipeline. The certificate
// in the result is the stream's independently verified κ.
func Incremental(ctx context.Context, g, warm *graph.Graph, p service.SparsifyParams) (*service.JobResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s, err := facadeFor(p, false)
	if err != nil {
		return nil, err
	}
	st, err := s.Resume(ctx, g, warm)
	if err != nil {
		return nil, err
	}
	sp := st.Sparsifier()
	stats := st.Stats()
	return &service.JobResult{
		EdgesKept:       sp.M(),
		EdgesInput:      g.M(),
		Density:         float64(sp.M()) / float64(sp.N()),
		Reduction:       float64(g.M()) / float64(sp.M()),
		SigmaSqAchieved: st.Cond(),
		TargetMet:       st.TargetMet(),
		Rounds:          stats.Refilters,
		Connected:       sp.IsConnected(),
		// The stream's certificate IS the independent Lanczos check.
		VerifiedCond: st.Cond(),
		Refilters:    stats.Refilters,
		Rebuilds:     stats.Rebuilds,
		Sparsifier:   sp,
	}, nil
}

// Config returns a service.Config with all four runner funcs wired in.
// Callers fill in queue/cache/session sizing on the returned value.
func Config() service.Config {
	return service.Config{
		Sparsify:    Sparsify,
		Incremental: Incremental,
		Maintain:    Maintain,
		Resume:      Resume,
	}
}
