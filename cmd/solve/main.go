// Command solve solves a graph-Laplacian SDD system L_G x = b with PCG
// preconditioned by a similarity-aware sparsifier, and compares against
// unpreconditioned and Jacobi-preconditioned CG — the Table 2 workflow as
// a tool.
//
// Usage:
//
//	solve -graph grid:400x400:uniform -sigma2 50 -tol 1e-3
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"graphspar"
	"graphspar/internal/mm"
	"graphspar/internal/pcg"
	"graphspar/internal/sddm"
	"graphspar/internal/vecmath"
)

func main() {
	var (
		spec    = flag.String("graph", "", graphspar.SpecHelp)
		sigmaSq = flag.Float64("sigma2", 50, "sparsifier similarity target σ²")
		tol     = flag.Float64("tol", 1e-3, "relative residual target")
		seed    = flag.Uint64("seed", 1, "random seed (graph + RHS)")
		compare = flag.Bool("compare", true, "also run unpreconditioned and Jacobi CG")
		sdd     = flag.Bool("sdd", false, "treat a .mtx input as a general SDD matrix (keeps excess diagonal) instead of converting to a Laplacian")
	)
	flag.Parse()

	if *sdd {
		if !strings.HasSuffix(*spec, ".mtx") {
			fatal(errors.New("-sdd requires a .mtx input"))
		}
		solveSDD(*spec, *sigmaSq, *tol, *seed)
		return
	}

	g, err := graphspar.LoadGraph(*spec, *seed)
	if err != nil {
		fatal(err)
	}
	n := g.N()
	fmt.Printf("input: |V|=%d |E|=%d, tol=%g\n", n, g.M(), *tol)

	b := make([]float64, n)
	vecmath.NewRNG(*seed + 1).FillNormal(b)
	vecmath.Deflate(b)

	sp, err := graphspar.New(graphspar.WithSigma2(*sigmaSq), graphspar.WithSeed(*seed), graphspar.WithShards(1))
	if err != nil {
		fatal(err)
	}
	t0 := time.Now()
	res, err := sp.Run(context.Background(), g)
	if err != nil && !errors.Is(err, graphspar.ErrNoTarget) {
		fatal(err)
	}
	tSpar := time.Since(t0)
	fmt.Printf("sparsifier: |Es|/|V|=%.3f  σ²=%.1f  built in %s\n",
		res.Density(), res.SigmaSqAchieved, tSpar.Round(time.Millisecond))

	t1 := time.Now()
	m, err := pcg.NewCholPrecond(res.Sparsifier)
	if err != nil {
		fatal(err)
	}
	tFac := time.Since(t1)

	run := func(name string, m pcg.Preconditioner) {
		x := make([]float64, n)
		bb := append([]float64(nil), b...)
		t := time.Now()
		r, err := pcg.SolveLaplacian(g, m, x, bb, *tol, 20*n)
		d := time.Since(t)
		status := "converged"
		if err != nil {
			status = err.Error()
		}
		fmt.Printf("%-22s iterations=%5d  residual=%.2e  time=%s  (%s)\n",
			name, r.Iterations, r.Residual, d.Round(time.Millisecond), status)
	}
	fmt.Printf("sparsifier factor built in %s\n", tFac.Round(time.Millisecond))
	run("PCG[sparsifier]", m)
	if *compare {
		run("CG[none]", nil)
		run("PCG[jacobi]", pcg.NewJacobi(g))
	}
}

// solveSDD handles the general SDD path: the raw matrix keeps its excess
// diagonal through the ground-vertex augmentation of internal/sddm.
func solveSDD(path string, sigmaSq, tol float64, seed uint64) {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	m, err := mm.Read(f)
	if err != nil {
		fatal(err)
	}
	a := m.CSR()
	fmt.Printf("SDD matrix: %dx%d, nnz=%d\n", a.Rows, a.Cols, a.NNZ())
	t0 := time.Now()
	s, err := sddm.NewSolver(a, sddm.Options{SigmaSq: sigmaSq, Seed: seed})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("sparsifier: |Es|/|V|=%.3f σ²=%.1f, setup %s\n",
		s.Spar.Density(), s.Spar.SigmaSqAchieved, time.Since(t0).Round(time.Millisecond))
	n := a.Rows
	b := make([]float64, n)
	vecmath.NewRNG(seed + 1).FillNormal(b)
	x := make([]float64, n)
	t1 := time.Now()
	res, err := s.Solve(x, b, tol, 0)
	status := "converged"
	if err != nil {
		status = err.Error()
	}
	fmt.Printf("PCG[sparsifier]: iterations=%d residual=%.2e time=%s (%s)\n",
		res.Iterations, res.Residual, time.Since(t1).Round(time.Millisecond), status)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "solve:", err)
	os.Exit(1)
}
