// Command partition bisects a graph spectrally with the sign-cut of an
// approximate Fiedler vector (§4.3), using either a direct Cholesky
// solver or sparsifier-preconditioned PCG.
//
// Usage:
//
//	partition -graph trimesh:300x300:uniform -method iterative -sigma2 200
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"graphspar/internal/cli"
	"graphspar/internal/partition"
)

func main() {
	var (
		spec    = flag.String("graph", "", cli.SpecHelp)
		method  = flag.String("method", "iterative", "direct | iterative | sparsifier-only | bfs")
		sigmaSq = flag.Float64("sigma2", 200, "sparsifier similarity target (iterative methods)")
		seed    = flag.Uint64("seed", 1, "random seed")
		check   = flag.Bool("check", false, "also run the direct method and report the sign disagreement")
	)
	flag.Parse()

	g, err := cli.LoadGraph(*spec, *seed)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("input: |V|=%d |E|=%d\n", g.N(), g.M())

	m, err := parseMethod(*method)
	if err != nil {
		fatal(err)
	}
	res, err := partition.SpectralBisect(g, partition.Options{Method: m, SigmaSq: *sigmaSq, Seed: *seed})
	if err != nil {
		fatal(err)
	}
	cut, err := partition.CutWeight(g, res.Signs)
	if err != nil {
		fatal(err)
	}
	phi, err := partition.Conductance(g, res.Signs)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("method=%s  λ2=%.4e\n", m, res.Lambda2)
	fmt.Printf("partition: |V+|=%d |V-|=%d  balance=%.3f\n", res.Positive, res.Negative, res.Balance())
	fmt.Printf("cut weight=%.4g  conductance=%.4g\n", cut, phi)
	fmt.Printf("setup=%s solve=%s  mem proxy=%s\n",
		res.SetupTime.Round(time.Millisecond), res.SolveTime.Round(time.Millisecond), memStr(res.MemProxyBytes))
	if res.SparsifierEdges > 0 {
		fmt.Printf("sparsifier edges: %d\n", res.SparsifierEdges)
	}
	if *check && m != partition.Direct {
		dir, err := partition.SpectralBisect(g, partition.Options{Method: partition.Direct, Seed: *seed})
		if err != nil {
			fatal(err)
		}
		re, err := partition.SignError(dir.Signs, res.Signs)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("vs direct: Rel.Err.=%.2e  (direct: setup=%s solve=%s mem=%s)\n",
			re, dir.SetupTime.Round(time.Millisecond), dir.SolveTime.Round(time.Millisecond), memStr(dir.MemProxyBytes))
	}
}

func parseMethod(s string) (partition.Method, error) {
	return partition.ParseMethod(s)
}

func memStr(b uint64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
	default:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "partition:", err)
	os.Exit(1)
}
