package main

import (
	"strings"
	"testing"

	"graphspar/internal/partition"
)

func TestParseMethod(t *testing.T) {
	cases := map[string]partition.Method{
		"direct":          partition.Direct,
		"iterative":       partition.Iterative,
		"sparsifier-only": partition.SparsifierOnly,
	}
	for s, want := range cases {
		got, err := parseMethod(s)
		if err != nil || got != want {
			t.Fatalf("parseMethod(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := parseMethod("bogus"); err == nil {
		t.Fatal("bogus method should fail")
	}
}

func TestMemStr(t *testing.T) {
	if got := memStr(2 << 30); !strings.HasSuffix(got, "GiB") {
		t.Fatalf("memStr(2GiB) = %q", got)
	}
	if got := memStr(3 << 20); !strings.HasSuffix(got, "MiB") {
		t.Fatalf("memStr(3MiB) = %q", got)
	}
	if got := memStr(512); !strings.HasSuffix(got, "KiB") {
		t.Fatalf("memStr(512) = %q", got)
	}
}
