package main

import "graphspar/cmd/internal/runners"

// The facade-backed runner funcs live in cmd/internal/runners so that
// cmd/loadgen's self-serve mode boots an identical server. The aliases
// keep this package's call sites (main.go and the e2e tests) reading as
// the service's production wiring.
var (
	runSparsify    = runners.Sparsify
	runIncremental = runners.Incremental
	runMaintain    = runners.Maintain
	runResume      = runners.Resume
)
