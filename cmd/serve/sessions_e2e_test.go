package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"graphspar/internal/dynamic"
	"graphspar/internal/gen"
	"graphspar/internal/graph"
	"graphspar/internal/service"
	"graphspar/internal/sessions"
)

// serialChecker wraps a production maintainer and trips `violations` if
// the session layer ever lets two requests touch it concurrently — the
// single-writer actor-loop guarantee, checked from outside the sessions
// package against the real facade Stream.
type serialChecker struct {
	m          sessions.Maintainer
	busy       atomic.Int32
	violations *atomic.Int64
}

func (c *serialChecker) enter() func() {
	if !c.busy.CompareAndSwap(0, 1) {
		c.violations.Add(1)
	}
	return func() { c.busy.Store(0) }
}

func (c *serialChecker) Apply(ctx context.Context, batch []dynamic.Update) error {
	defer c.enter()()
	return c.m.Apply(ctx, batch)
}
func (c *serialChecker) Rebuild(ctx context.Context) error {
	defer c.enter()()
	return c.m.Rebuild(ctx)
}
func (c *serialChecker) Graph() *graph.Graph      { defer c.enter()(); return c.m.Graph() }
func (c *serialChecker) Sparsifier() *graph.Graph { defer c.enter()(); return c.m.Sparsifier() }
func (c *serialChecker) Cond() float64            { defer c.enter()(); return c.m.Cond() }
func (c *serialChecker) TargetMet() bool          { defer c.enter()(); return c.m.TargetMet() }
func (c *serialChecker) Stats() dynamic.Stats     { defer c.enter()(); return c.m.Stats() }
func (c *serialChecker) ResidentBytes() int64     { defer c.enter()(); return c.m.ResidentBytes() }

// newSessionServer builds the production HTTP stack with session runners
// wrapped in counters and the serial checker.
func newSessionServer(t *testing.T, resumes *atomic.Int64, violations *atomic.Int64) (*service.Server, *httptest.Server) {
	t.Helper()
	cfg := service.Config{
		Workers:     2,
		Sparsify:    runSparsify,
		Incremental: runIncremental,
		Maintain: func(ctx context.Context, g *graph.Graph, p service.SparsifyParams) (sessions.Maintainer, error) {
			m, err := runMaintain(ctx, g, p)
			if err != nil || violations == nil {
				return m, err
			}
			return &serialChecker{m: m, violations: violations}, nil
		},
		Resume: func(ctx context.Context, g, warm *graph.Graph, p service.SparsifyParams) (sessions.Maintainer, error) {
			if resumes != nil {
				resumes.Add(1)
			}
			m, err := runResume(ctx, g, warm, p)
			if err != nil || violations == nil {
				return m, err
			}
			return &serialChecker{m: m, violations: violations}, nil
		},
	}
	srv := service.NewServer(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		_ = srv.Queue().Shutdown(ctx)
		if m := srv.Sessions(); m != nil {
			_ = m.Close(ctx)
		}
	})
	return srv, ts
}

// jobSparsifier fetches a finished job's result graph from the
// in-process queue (the HTTP job view omits it: json:"-").
func jobSparsifier(t *testing.T, srv *service.Server, id string) *graph.Graph {
	t.Helper()
	job, err := srv.Queue().Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if job.Result == nil || job.Result.Sparsifier == nil {
		t.Fatalf("job %s holds no sparsifier", id)
	}
	return job.Result.Sparsifier
}

func submitAndWait(t *testing.T, base string, req submitReq) service.Job {
	t.Helper()
	var job service.Job
	code, raw := doJSON(t, http.MethodPost, base+"/v1/jobs", req, &job)
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("submit: %d %s", code, raw)
	}
	done := pollJob(t, base, job.ID)
	if done.Status != service.StatusDone {
		t.Fatalf("job %s: %s (%s)", job.ID, done.Status, done.Error)
	}
	return done
}

// TestWarmSessionSkipsResumeBitIdentical is the tentpole acceptance
// test: after PATCH traffic lands on a warm session, an incremental job
// is served from the resident maintainer — the Resume runner never runs
// (counter-verified) — and its sparsifier is bit-identical to what the
// cold path (dynamic.Resume from the prior job's sparsifier against the
// current graph) would have produced, on both grid and SBM graphs.
func TestWarmSessionSkipsResumeBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full sparsification runs")
	}
	const sigmaSq = 100
	cases := []struct {
		name     string
		register func(t *testing.T, srv *service.Server) // puts graph "g" in the registry
	}{
		{"grid", func(t *testing.T, srv *service.Server) {
			g, err := gen.Grid2D(12, 12, gen.UniformWeights, 7)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := srv.Registry().Register("g", "grid12", g); err != nil {
				t.Fatal(err)
			}
		}},
		{"sbm", func(t *testing.T, srv *service.Server) {
			g, _, err := gen.SBM(4, 30, 0.25, 0.02, 9)
			if err != nil {
				t.Fatal(err)
			}
			if err := g.RequireConnected(); err != nil {
				t.Fatal(err)
			}
			if _, err := srv.Registry().Register("g", "sbm", g); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var resumes atomic.Int64
			srv, ts := newSessionServer(t, &resumes, nil)
			tc.register(t, srv)

			full := submitAndWait(t, ts.URL, submitReq{Graph: "g", SparsifyParams: service.SparsifyParams{SigmaSq: sigmaSq}})

			// Cold PATCH (no session yet): mutate a couple of weights.
			entry, err := srv.Registry().Get("g")
			if err != nil {
				t.Fatal(err)
			}
			e0 := entry.Graph.Edge(0)
			code, raw := doJSON(t, http.MethodPatch, ts.URL+"/v1/graphs/g/edges", map[string]any{
				"updates": []map[string]any{{"op": "reweight", "u": e0.U, "v": e0.V, "w": e0.W * 1.5}},
			}, nil)
			if code != http.StatusOK {
				t.Fatalf("cold PATCH: %d %s", code, raw)
			}

			// First incremental job: cold Resume builds + installs the session.
			inc1 := submitAndWait(t, ts.URL, submitReq{Graph: "g", SparsifyParams: service.SparsifyParams{SigmaSq: sigmaSq, Incremental: true}})
			if inc1.Result.SessionHit || inc1.Result.WarmSource != full.ID {
				t.Fatalf("first incremental: %+v", inc1.Result)
			}
			if got := resumes.Load(); got != 1 {
				t.Fatalf("resume runner ran %d times, want 1", got)
			}

			// Warm PATCH through the session: gentle reweights of sparsifier
			// edges plus deletes of redundant (off-sparsifier, non-bridge)
			// edges — updates for which the warm Apply and a cold Resume
			// provably produce the same sparsifier edge set.
			p1 := jobSparsifier(t, srv, inc1.ID)
			inP1 := make(map[[2]int]bool, p1.M())
			for _, e := range p1.Edges() {
				inP1[[2]int{e.U, e.V}] = true
			}
			entry, err = srv.Registry().Get("g")
			if err != nil {
				t.Fatal(err)
			}
			g1 := entry.Graph
			var updates []map[string]any
			var trial []dynamic.Update
			reweights, deletes := 0, 0
			for _, e := range g1.Edges() {
				k := [2]int{e.U, e.V}
				switch {
				case inP1[k] && reweights < 4:
					updates = append(updates, map[string]any{"op": "reweight", "u": e.U, "v": e.V, "w": e.W * 1.02})
					trial = append(trial, dynamic.Reweight(e.U, e.V, e.W*1.02))
					reweights++
				case !inP1[k] && deletes < 4:
					cand := append(append([]dynamic.Update(nil), trial...), dynamic.Delete(e.U, e.V))
					if _, err := dynamic.ApplyToGraph(g1, cand); err != nil {
						continue // would disconnect; skip
					}
					updates = append(updates, map[string]any{"op": "delete", "u": e.U, "v": e.V})
					trial = cand
					deletes++
				}
				if reweights == 4 && deletes == 4 {
					break
				}
			}
			if reweights == 0 || deletes == 0 {
				t.Fatalf("could not build a mixed batch (reweights=%d deletes=%d)", reweights, deletes)
			}
			var patch struct {
				Session string `json:"session"`
			}
			code, raw = doJSON(t, http.MethodPatch, ts.URL+"/v1/graphs/g/edges",
				map[string]any{"updates": updates}, &patch)
			if code != http.StatusOK {
				t.Fatalf("warm PATCH: %d %s", code, raw)
			}
			if patch.Session != "hit" {
				t.Fatalf("warm PATCH session = %q, want hit", patch.Session)
			}

			// Second incremental job: served by the session. The Resume
			// runner must NOT run again — the reconcile was skipped.
			inc2 := submitAndWait(t, ts.URL, submitReq{Graph: "g", SparsifyParams: service.SparsifyParams{SigmaSq: sigmaSq, Incremental: true}})
			if !inc2.Result.SessionHit {
				t.Fatalf("second incremental must be a session hit: %+v", inc2.Result)
			}
			if got := resumes.Load(); got != 1 {
				t.Fatalf("resume runner ran %d times after warm PATCH, want still 1 (reconcile skipped)", got)
			}
			if !inc2.Result.TargetMet || inc2.Result.VerifiedCond > sigmaSq {
				t.Fatalf("warm certificate: %+v", inc2.Result)
			}

			// Bit-identical to the cold path: run the legacy per-request
			// Resume (prior job's sparsifier reconciled against the current
			// graph — exactly what this job cost before sessions) and
			// compare content hashes.
			entry, err = srv.Registry().Get("g")
			if err != nil {
				t.Fatal(err)
			}
			ref, err := runIncremental(context.Background(), entry.Graph, p1,
				canon(t, service.SparsifyParams{SigmaSq: sigmaSq, Incremental: true}))
			if err != nil {
				t.Fatal(err)
			}
			warmSpars := jobSparsifier(t, srv, inc2.ID)
			warmHash := service.HashGraph(warmSpars)
			coldHash := service.HashGraph(ref.Sparsifier)
			if warmHash != coldHash {
				t.Fatalf("session sparsifier (m=%d) differs from cold Resume result (m=%d):\nwarm %s\ncold %s",
					warmSpars.M(), ref.Sparsifier.M(), warmHash, coldHash)
			}
		})
	}
}

// TestConcurrentSessionTraffic runs parallel PATCHes, a stream upload
// and from-scratch jobs against one graph with a single session under
// the hood (CI runs this package with -race). Asserts: the maintainer is
// never entered concurrently, every applied stream batch reports a
// verified certificate within σ², and the stored graph survives intact.
func TestConcurrentSessionTraffic(t *testing.T) {
	if testing.Short() {
		t.Skip("full sparsification runs")
	}
	const sigmaSq = 100
	var resumes, violations atomic.Int64
	srv, ts := newSessionServer(t, &resumes, &violations)
	g, err := gen.Grid2D(10, 10, gen.UniformWeights, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Registry().Register("g", "grid10", g); err != nil {
		t.Fatal(err)
	}

	// Seed a warm source and the session.
	submitAndWait(t, ts.URL, submitReq{Graph: "g", SparsifyParams: service.SparsifyParams{SigmaSq: sigmaSq}})
	submitAndWait(t, ts.URL, submitReq{Graph: "g", SparsifyParams: service.SparsifyParams{SigmaSq: sigmaSq, Incremental: true}})

	var wg sync.WaitGroup

	// Stream: several single-update reweight batches on fixed edges.
	wg.Add(1)
	go func() {
		defer wg.Done()
		var body strings.Builder
		for i := 0; i < 6; i++ {
			e := g.Edge(i * 7)
			fmt.Fprintf(&body, "= %d %d %g\ncommit\n", e.U, e.V, e.W*(1+0.01*float64(i+1)))
		}
		resp, err := http.Post(ts.URL+"/v1/graphs/g/stream?sigma2=100", "application/x-ndjson", strings.NewReader(body.String()))
		if err != nil {
			t.Error(err)
			return
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("stream: %d", resp.StatusCode)
			return
		}
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			var line struct {
				Applied   bool    `json:"applied"`
				Rejected  bool    `json:"rejected"`
				Cond      float64 `json:"condition_number"`
				TargetMet bool    `json:"target_met"`
				Error     string  `json:"error"`
				Done      bool    `json:"done"`
			}
			if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
				t.Errorf("bad line %q: %v", sc.Text(), err)
				return
			}
			if line.Applied && (!line.TargetMet || line.Cond > sigmaSq) {
				t.Errorf("stream batch lost the certificate: %+v", line)
			}
		}
	}()

	// PATCH hammering: reweights on a disjoint fixed edge set. Accepted
	// or concurrency-conflicted are both fine; anything else is a bug.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			e := g.Edge(i*3 + 1)
			code, raw := doJSON(t, http.MethodPatch, ts.URL+"/v1/graphs/g/edges", map[string]any{
				"updates": []map[string]any{{"op": "reweight", "u": e.U, "v": e.V, "w": e.W * (1 + 0.005*float64(i+1))}},
			}, nil)
			if code != http.StatusOK && code != http.StatusConflict {
				t.Errorf("PATCH %d: %d %s", i, code, raw)
				return
			}
		}
	}()

	// From-scratch jobs keep the queue busy against the same graph.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 3; i++ {
			submitAndWait(t, ts.URL, submitReq{Graph: "g", SparsifyParams: service.SparsifyParams{SigmaSq: sigmaSq + float64(i)}})
		}
	}()

	wg.Wait()
	if violations.Load() != 0 {
		t.Fatalf("maintainer entered concurrently %d times", violations.Load())
	}

	// The graph survived all interleavings connected, and a final
	// incremental job still certifies.
	entry, err := srv.Registry().Get("g")
	if err != nil {
		t.Fatal(err)
	}
	if !entry.Graph.IsConnected() {
		t.Fatal("stored graph disconnected after concurrent traffic")
	}
	final := submitAndWait(t, ts.URL, submitReq{Graph: "g", SparsifyParams: service.SparsifyParams{SigmaSq: sigmaSq, Incremental: true}})
	if !final.Result.TargetMet || final.Result.VerifiedCond > sigmaSq {
		t.Fatalf("final certificate: %+v", final.Result)
	}
}
