package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"graphspar"
	"graphspar/internal/graph"
	"graphspar/internal/service"
)

// These tests cover the production runners — the only code that turns
// wire params into graphspar facade calls — both directly and through the
// full HTTP stack, the way cmd/serve wires them in production.

func testGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := graphspar.LoadGraph("grid:5x5:uniform", 7)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func canon(t *testing.T, p service.SparsifyParams) service.SparsifyParams {
	t.Helper()
	if err := p.Canon(); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRunSparsifyEndToEnd(t *testing.T) {
	// The production runner on a real (small) graph: target met, result
	// connected, independent verification within the target.
	g := testGraph(t)
	p := canon(t, service.SparsifyParams{SigmaSq: 50})
	res, err := runSparsify(context.Background(), g, p)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Connected {
		t.Error("sparsifier disconnected")
	}
	if !res.TargetMet || res.SigmaSqAchieved > 50 {
		t.Errorf("target: met=%v achieved=%v", res.TargetMet, res.SigmaSqAchieved)
	}
	if res.VerifiedCond <= 0 || res.VerifiedCond > 50 {
		t.Errorf("verified condition number %v outside (0, 50]", res.VerifiedCond)
	}
	if res.EdgesKept != res.Sparsifier.M() || res.EdgesInput != g.M() {
		t.Errorf("edge counts: %+v", res)
	}
	// Canceled context short-circuits.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := runSparsify(ctx, g, p); !errors.Is(err, context.Canceled) {
		t.Errorf("canceled ctx: err = %v", err)
	}
}

func TestRunSparsifyShardedEndToEnd(t *testing.T) {
	g := testGraph(t)
	p := canon(t, service.SparsifyParams{SigmaSq: 50, Shards: 2, Workers: 2})
	res, err := runSparsify(context.Background(), g, p)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Connected {
		t.Error("sharded sparsifier disconnected")
	}
	if res.Shards != 2 {
		t.Errorf("shards = %d, want 2", res.Shards)
	}
	if res.VerifiedCond <= 0 {
		t.Errorf("missing verification: %+v", res)
	}
	if res.ShardSpeedup <= 0 {
		t.Errorf("missing speedup metadata: %+v", res)
	}
	if res.EdgesKept != res.Sparsifier.M() || res.EdgesInput != g.M() {
		t.Errorf("edge counts: %+v", res)
	}
	// Cancellation propagates into the engine.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := runSparsify(ctx, g, p); !errors.Is(err, context.Canceled) {
		t.Errorf("canceled ctx: err = %v", err)
	}
}

func TestRunSparsifyMultilevelEndToEnd(t *testing.T) {
	// 32×32 ≈ 1k vertices: enough to clear the default coarsest-size
	// floor, so the wire request actually exercises the hierarchy.
	g, err := graphspar.LoadGraph("grid:32x32:unit", 1)
	if err != nil {
		t.Fatal(err)
	}
	p := canon(t, service.SparsifyParams{SigmaSq: 50, Mode: "multilevel"})
	res, err := runSparsify(context.Background(), g, p)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Multilevel || res.CoarsenDepth < 2 {
		t.Errorf("multilevel metadata: Multilevel=%v CoarsenDepth=%d", res.Multilevel, res.CoarsenDepth)
	}
	if !res.Connected {
		t.Error("multilevel sparsifier disconnected")
	}
	if !res.TargetMet || res.VerifiedCond <= 0 || res.VerifiedCond > 50 {
		t.Errorf("certificate: met=%v verified κ=%v", res.TargetMet, res.VerifiedCond)
	}
	if res.EdgesKept != res.Sparsifier.M() || res.EdgesInput != g.M() {
		t.Errorf("edge counts: %+v", res)
	}
	// Cancellation propagates into the hierarchy.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := runSparsify(ctx, g, p); !errors.Is(err, context.Canceled) {
		t.Errorf("canceled ctx: err = %v", err)
	}
}

// ------------------------------------------------------- HTTP end to end

type submitReq struct {
	Graph string `json:"graph"`
	service.SparsifyParams
}

type graphInfo struct {
	Name string `json:"name"`
	Hash string `json:"hash"`
	N    int    `json:"n"`
	M    int    `json:"m"`
}

// newProductionServer spins up the HTTP stack exactly as main does, with
// a call counter around the from-scratch runner.
func newProductionServer(t *testing.T, cfg service.Config, calls *atomic.Int64) *httptest.Server {
	t.Helper()
	cfg.Sparsify = func(ctx context.Context, g *graph.Graph, p service.SparsifyParams) (*service.JobResult, error) {
		if calls != nil {
			calls.Add(1)
		}
		return runSparsify(ctx, g, p)
	}
	cfg.Incremental = runIncremental
	srv := service.NewServer(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Queue().Shutdown(ctx)
	})
	return ts
}

func doJSON(t *testing.T, method, url string, body any, out any) (int, string) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode < 300 {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("unmarshal %q: %v", raw, err)
		}
	}
	return resp.StatusCode, string(raw)
}

// pollJob polls the job endpoint until the job is terminal.
func pollJob(t *testing.T, base, id string) service.Job {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		var job service.Job
		code, raw := doJSON(t, http.MethodGet, base+"/v1/jobs/"+id, nil, &job)
		if code != http.StatusOK {
			t.Fatalf("GET job %s: %d %s", id, code, raw)
		}
		switch job.Status {
		case service.StatusDone, service.StatusFailed, service.StatusCanceled:
			return job
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return service.Job{}
}

// TestServiceEndToEnd is the acceptance scenario: register a 40x40 grid,
// run two concurrent jobs at different σ² targets through the production
// runners, poll to completion, check each sparsifier is connected with
// verified condition number within its target, and confirm an identical
// resubmission is a cache hit that does not re-run the sparsifier.
func TestServiceEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full sparsification run")
	}
	var calls atomic.Int64
	ts := newProductionServer(t, service.Config{Workers: 2, Backlog: 8, CacheSize: 16}, &calls)

	var info graphInfo
	code, raw := doJSON(t, http.MethodPost, ts.URL+"/v1/graphs",
		map[string]any{"name": "grid40", "spec": "grid:40x40:uniform", "seed": 7}, &info)
	if code != http.StatusCreated {
		t.Fatalf("register: %d %s", code, raw)
	}
	if info.N != 1600 || info.M != 2*40*39 || info.Hash == "" {
		t.Fatalf("graph info = %+v", info)
	}

	// Two concurrent jobs at different targets, tighter target last: a
	// cached looser-target result can never serve a tighter request, so
	// this stays cache-cold even if the first job finishes very quickly.
	targets := []float64{150, 60}
	jobs := make([]service.Job, len(targets))
	for i, s2 := range targets {
		var job service.Job
		code, raw := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs",
			submitReq{Graph: "grid40", SparsifyParams: service.SparsifyParams{SigmaSq: s2}}, &job)
		if code != http.StatusAccepted {
			t.Fatalf("submit σ²=%v: %d %s", s2, code, raw)
		}
		jobs[i] = job
	}

	for i, job := range jobs {
		done := pollJob(t, ts.URL, job.ID)
		if done.Status != service.StatusDone {
			t.Fatalf("job %s: %s (%s)", job.ID, done.Status, done.Error)
		}
		res := done.Result
		if res == nil {
			t.Fatalf("job %s: no result", job.ID)
		}
		if !res.Connected {
			t.Errorf("σ²=%v sparsifier disconnected", targets[i])
		}
		if res.VerifiedCond <= 0 || res.VerifiedCond > targets[i] {
			t.Errorf("σ²=%v: verified condition number %v outside (0, %v]",
				targets[i], res.VerifiedCond, targets[i])
		}
		if res.EdgesKept >= res.EdgesInput {
			t.Errorf("σ²=%v: no edge reduction (%d >= %d)", targets[i], res.EdgesKept, res.EdgesInput)
		}
	}
	ranBefore := calls.Load()
	if ranBefore != int64(len(targets)) {
		t.Fatalf("sparsify ran %d times, want %d", ranBefore, len(targets))
	}

	// Identical resubmission: served from cache, sparsifier NOT re-run.
	var cached service.Job
	code, raw = doJSON(t, http.MethodPost, ts.URL+"/v1/jobs",
		submitReq{Graph: "grid40", SparsifyParams: service.SparsifyParams{SigmaSq: targets[0]}}, &cached)
	if code != http.StatusOK {
		t.Fatalf("cached submit: %d %s", code, raw)
	}
	if cached.Status != service.StatusDone || cached.CacheHit != service.CacheExact {
		t.Errorf("cached job = status %s cache %q, want done/exact", cached.Status, cached.CacheHit)
	}
	// A coarser target is also served from the σ²=60 certificate.
	var coarser service.Job
	code, raw = doJSON(t, http.MethodPost, ts.URL+"/v1/jobs",
		submitReq{Graph: "grid40", SparsifyParams: service.SparsifyParams{SigmaSq: 5000}}, &coarser)
	if code != http.StatusOK {
		t.Fatalf("coarser submit: %d %s", code, raw)
	}
	if coarser.CacheHit != service.CacheCoarser {
		t.Errorf("coarser job cache = %q, want coarser", coarser.CacheHit)
	}
	if calls.Load() != ranBefore {
		t.Errorf("sparsify re-ran on cached submissions: %d calls", calls.Load())
	}

	// The result downloads round-trip as valid MatrixMarket.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + jobs[0].ID + "/sparsifier.mtx")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	rt, err := graphspar.ReadMatrixMarket(resp.Body)
	if err != nil {
		t.Fatalf("sparsifier.mtx unreadable: %v", err)
	}
	if rt.N() != 1600 || !rt.IsConnected() {
		t.Errorf("downloaded sparsifier: n=%d connected=%v", rt.N(), rt.IsConnected())
	}
}

// TestIncrementalJobWarmStarts runs the full warm-start flow end to end:
// sparsify, PATCH the graph, then submit an incremental job and check it
// reused the prior sparsifier and met the target on the mutated graph.
func TestIncrementalJobWarmStarts(t *testing.T) {
	if testing.Short() {
		t.Skip("full sparsification run")
	}
	var calls atomic.Int64
	ts := newProductionServer(t, service.Config{}, &calls)
	if code, raw := doJSON(t, http.MethodPost, ts.URL+"/v1/graphs",
		map[string]any{"name": "g", "spec": "grid:12x12"}, nil); code != http.StatusCreated {
		t.Fatalf("register: %d %s", code, raw)
	}

	var job service.Job
	code, raw := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs",
		submitReq{Graph: "g", SparsifyParams: service.SparsifyParams{SigmaSq: 60}}, &job)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, raw)
	}
	full := pollJob(t, ts.URL, job.ID)
	if full.Status != service.StatusDone {
		t.Fatalf("full job: %+v", full)
	}

	code, raw = doJSON(t, http.MethodPatch, ts.URL+"/v1/graphs/g/edges", map[string]any{
		"updates": []map[string]any{
			{"op": "insert", "u": 0, "v": 143, "w": 1.2},
			{"op": "delete", "u": 0, "v": 1},
		},
	}, nil)
	if code != http.StatusOK {
		t.Fatalf("PATCH: %d %s", code, raw)
	}

	code, raw = doJSON(t, http.MethodPost, ts.URL+"/v1/jobs",
		submitReq{Graph: "g", SparsifyParams: service.SparsifyParams{SigmaSq: 60, Incremental: true}}, &job)
	if code != http.StatusAccepted {
		t.Fatalf("submit incremental: %d %s", code, raw)
	}
	inc := pollJob(t, ts.URL, job.ID)
	if inc.Status != service.StatusDone {
		t.Fatalf("incremental job: %+v", inc)
	}
	if !inc.Result.Incremental || inc.Result.WarmSource != full.ID {
		t.Fatalf("result = %+v, want warm start from %s", inc.Result, full.ID)
	}
	if !inc.Result.TargetMet || inc.Result.VerifiedCond > 60 {
		t.Fatalf("incremental certificate: %+v", inc.Result)
	}
	// The incremental job must not have invoked the from-scratch runner
	// again (exactly one full sparsify ran in this test).
	if calls.Load() != 1 {
		t.Fatalf("full sparsify ran %d times, want 1", calls.Load())
	}
}
