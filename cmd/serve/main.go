// Command serve runs sparsifyd, the long-running HTTP sparsification
// service: a graph registry (MatrixMarket uploads or generator specs), an
// async job queue bounded by a worker pool, an LRU result cache, and
// persistent maintainer sessions that serve PATCH batches, streamed
// update ingestion and incremental jobs from resident state.
//
// Usage:
//
//	serve -addr :8080 -workers 4 -backlog 64 -cache 128
//	serve -addr :8080 -preload grid40=grid:40x40:uniform -preload road=usroads.mtx
//	serve -addr :8080 -session-max 32 -session-budget-mb 1024 -session-ttl 15m
//
// See README.md for the HTTP API and curl examples.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"graphspar/internal/cli"
	"graphspar/internal/obs"
	"graphspar/internal/service"
)

// preloads collects repeated -preload name=spec flags.
type preloads []string

func (p *preloads) String() string { return strings.Join(*p, ",") }
func (p *preloads) Set(s string) error {
	if !strings.Contains(s, "=") {
		return errors.New("want name=spec")
	}
	*p = append(*p, s)
	return nil
}

func main() {
	var pre preloads
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		workers = flag.Int("workers", 4, "concurrent sparsification jobs")
		backlog = flag.Int("backlog", 64, "queued jobs beyond the running ones")
		cache   = flag.Int("cache", 128, "result-cache capacity (0 disables)")
		seed    = flag.Uint64("seed", 1, "seed for -preload generator specs")

		sessMax    = flag.Int("session-max", 32, "resident maintainer sessions for true-streaming PATCH/incremental serving (0 disables)")
		sessBudget = flag.Int("session-budget-mb", 1024, "memory budget for resident sessions, MiB (estimated)")
		sessTTL    = flag.Duration("session-ttl", 15*time.Minute, "evict sessions idle this long (0 = never expire)")

		admitQueue   = flag.Int("admit-queue-high", 0, "shed job submissions with 429 once this many jobs are queued (0 = 3/4 of backlog, -1 disables)")
		admitStreams = flag.Int("admit-streams-high", 0, "shed stream requests with 429 beyond this many in flight (0 = 4x workers, -1 disables)")
		admitRetry   = flag.Int("admit-retry-after", 1, "Retry-After seconds advertised on 429 responses")

		withPprof = flag.Bool("pprof", false, "expose net/http/pprof profiling handlers under /debug/pprof/")
	)
	flag.Var(&pre, "preload", "register name=SPEC at startup (repeatable); "+cli.SpecHelp)
	flag.Parse()

	// Config treats 0 as "use the default", so translate the flags' "0
	// disables" convention into the explicit negative form.
	disableZero := func(v int) int {
		if v == 0 {
			return -1
		}
		return v
	}
	ttl := *sessTTL
	if ttl == 0 {
		ttl = -1 // sessions.Options: negative = never expire
	}
	// Admission control is on by default in the binary (the library's
	// Config leaves it off): shed with 429 + Retry-After at 3/4 of the
	// backlog rather than queueing into unbounded job_wait_seconds, and
	// bound concurrently held stream requests at 4x the worker pool.
	queueHigh := *admitQueue
	if queueHigh == 0 {
		queueHigh = (disableZero(*backlog) * 3) / 4
		if queueHigh < 1 {
			queueHigh = 1
		}
	}
	streamsHigh := *admitStreams
	if streamsHigh == 0 {
		streamsHigh = 4 * *workers
	}
	srv := service.NewServer(service.Config{
		Workers:             *workers,
		Backlog:             disableZero(*backlog),
		CacheSize:           disableZero(*cache),
		Sparsify:            runSparsify,
		Incremental:         runIncremental,
		Maintain:            runMaintain,
		Resume:              runResume,
		SessionMax:          disableZero(*sessMax),
		SessionBudgetBytes:  int64(*sessBudget) << 20,
		SessionTTL:          ttl,
		AdmissionQueueHigh:  queueHigh,
		AdmissionStreamHigh: streamsHigh,
		AdmissionRetryAfter: *admitRetry,
		// The default registry also carries the pipeline's per-phase
		// histograms, so one /metrics scrape covers HTTP, queue, session
		// and phase telemetry.
		Metrics: obs.Default,
	})
	for _, p := range pre {
		name, spec, _ := strings.Cut(p, "=")
		g, err := cli.LoadGraph(spec, *seed)
		if err != nil {
			fatal(fmt.Errorf("preload %s: %w", name, err))
		}
		// Same gate the HTTP registration paths apply: fail at boot, not
		// on the first job.
		if err := g.RequireConnected(); err != nil {
			fatal(fmt.Errorf("preload %s: %w", name, err))
		}
		entry, err := srv.Registry().Register(name, spec, g)
		if err != nil {
			fatal(fmt.Errorf("preload %s: %w", name, err))
		}
		log.Printf("preloaded %s: |V|=%d |E|=%d hash=%s", name, entry.N, entry.M, entry.Hash[:12])
	}

	handler := srv.Handler()
	if *withPprof {
		// Mount the profiling handlers on an explicit outer mux rather
		// than relying on pprof's DefaultServeMux registration, so they
		// exist only when asked for and bypass the API middleware.
		outer := http.NewServeMux()
		outer.HandleFunc("/debug/pprof/", pprof.Index)
		outer.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		outer.HandleFunc("/debug/pprof/profile", pprof.Profile)
		outer.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		outer.HandleFunc("/debug/pprof/trace", pprof.Trace)
		outer.Handle("/", handler)
		handler = outer
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("sparsifyd listening on %s (workers=%d backlog=%d cache=%d sessions=%d budget=%dMiB ttl=%s admit-queue=%d admit-streams=%d)",
		*addr, *workers, *backlog, *cache, *sessMax, *sessBudget, *sessTTL, queueHigh, streamsHigh)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		fatal(err)
	case s := <-sig:
		log.Printf("received %s, shutting down", s)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	if err := srv.Queue().Shutdown(ctx); err != nil {
		log.Printf("queue shutdown: %v", err)
	}
	// Drain resident sessions last: batches their actors already accepted
	// finish applying (registry and maintainers stay in lockstep), then
	// the maintainers are released.
	if m := srv.Sessions(); m != nil {
		if err := m.Close(ctx); err != nil {
			log.Printf("session drain: %v", err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "serve:", err)
	os.Exit(1)
}
