// Command graphsparlint is graphspar's custom static-analysis suite:
// vet-style analyzers that mechanically enforce the repository's
// determinism, cancellation, error-wrapping and metric-cardinality
// conventions.
//
// Standalone:
//
//	graphsparlint ./...
//	graphsparlint -json -report LINT_report.json ./...
//
// Under the vet harness:
//
//	go build -o "$(go env GOPATH)/bin/graphsparlint" ./cmd/graphsparlint
//	go vet -vettool=$(which graphsparlint) ./...
//
// See the README "Static analysis" section for the analyzer table and
// the //graphspar:* annotation grammar.
package main

import (
	"graphspar/internal/analysis/ctxloop"
	"graphspar/internal/analysis/detrange"
	"graphspar/internal/analysis/driver"
	"graphspar/internal/analysis/errwrapcheck"
	"graphspar/internal/analysis/metriclabel"
	"graphspar/internal/analysis/seedrand"
)

func main() {
	driver.Main(
		detrange.Analyzer,
		seedrand.Analyzer,
		ctxloop.Analyzer,
		errwrapcheck.Analyzer,
		metriclabel.Analyzer,
	)
}
