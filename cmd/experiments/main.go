// Command experiments regenerates the paper's tables and figures on the
// synthetic workloads documented in DESIGN.md.
//
// Usage:
//
//	experiments -all                  # everything at default scale
//	experiments -table 2 -scale 2     # just Table 2, 2x CI size
//	experiments -fig 1 -coords        # Fig 1 with a CSV coordinate dump
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"graphspar/internal/exp"
)

func main() {
	var (
		table  = flag.Int("table", 0, "regenerate one table (1-4)")
		fig    = flag.Int("fig", 0, "regenerate one figure (1-2)")
		all    = flag.Bool("all", false, "regenerate everything")
		scale  = flag.Float64("scale", 0.5, "workload scale factor (1.0 ≈ tens of thousands of vertices)")
		seed   = flag.Uint64("seed", 1, "random seed")
		coords = flag.Bool("coords", false, "dump Fig 1 coordinates as CSV")
	)
	flag.Parse()

	if !*all && *table == 0 && *fig == 0 {
		flag.Usage()
		os.Exit(2)
	}
	run := func(name string, f func() error) {
		t0 := time.Now()
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("[%s took %s]\n\n", name, time.Since(t0).Round(time.Millisecond))
	}

	if *all || *table == 1 {
		run("table1", func() error {
			rows, err := exp.Table1(*scale, *seed)
			if err != nil {
				return err
			}
			exp.RenderTable1(os.Stdout, rows)
			return nil
		})
	}
	if *all || *table == 2 {
		run("table2", func() error {
			rows, err := exp.Table2(*scale, *seed)
			if err != nil {
				return err
			}
			exp.RenderTable2(os.Stdout, rows)
			return nil
		})
	}
	if *all || *table == 3 {
		run("table3", func() error {
			rows, err := exp.Table3(*scale, *seed)
			if err != nil {
				return err
			}
			exp.RenderTable3(os.Stdout, rows)
			return nil
		})
	}
	if *all || *table == 4 {
		run("table4", func() error {
			rows, err := exp.Table4(*scale, *seed)
			if err != nil {
				return err
			}
			exp.RenderTable4(os.Stdout, rows)
			return nil
		})
	}
	if *all || *fig == 1 {
		run("fig1", func() error {
			r, err := exp.Fig1(*scale, *seed)
			if err != nil {
				return err
			}
			exp.RenderFig1(os.Stdout, r, *coords)
			return nil
		})
	}
	if *all || *fig == 2 {
		run("fig2", func() error {
			series, err := exp.Fig2(*scale, *seed)
			if err != nil {
				return err
			}
			exp.RenderFig2(os.Stdout, series)
			return nil
		})
	}
}
