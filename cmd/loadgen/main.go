// Command loadgen drives a running sparsifyd server with a closed-loop
// mix of upload, job, PATCH, stream and read traffic and reports per-op
// latency percentiles and throughput. It exists to answer "what does the
// serving layer do under load" with numbers, and doubles as the CI smoke
// benchmark behind BENCH_serve.json.
//
// Each of -c workers loops until -duration elapses: pick an op class by
// the -mix weights, run it against the server, record the latency. The
// loop is closed — a worker issues its next op only after the previous
// one finishes — so concurrency is bounded and the server is never
// swamped beyond -c in-flight requests (jobs additionally occupy the
// server's own worker pool).
//
// PATCH and stream ops send reweights of edges the generator spec is
// known to contain: loadgen regenerates the same graph locally from
// -graph/-seed, so every mutation is valid by construction and the
// registered graph stays connected for the whole run. The same -seed
// also derives every worker's op-mix RNG, so a run is reproducible from
// its flags alone; the report echoes the seed.
//
// Usage:
//
//	loadgen -addr http://127.0.0.1:8080 -duration 30s -c 8
//	loadgen -selfserve -duration 10s -out BENCH_serve.json
//	loadgen -selfserve -graph grid:40x40 -mode multilevel -mix job=1,read=2
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"graphspar/cmd/internal/runners"
	"graphspar/internal/cli"
	"graphspar/internal/dynamic"
	"graphspar/internal/graph"
	"graphspar/internal/obs"
	"graphspar/internal/service"
)

func main() {
	var (
		addr      = flag.String("addr", "", "base URL of a running server, e.g. http://127.0.0.1:8080")
		selfserve = flag.Bool("selfserve", false, "boot an in-process server on 127.0.0.1:0 and drive that")
		duration  = flag.Duration("duration", 10*time.Second, "how long to generate load")
		conc      = flag.Int("c", 8, "closed-loop worker goroutines")
		spec      = flag.String("graph", "grid:24x24", "generator spec for the target graph; "+cli.SpecHelp)
		seed      = flag.Uint64("seed", 1, "generator seed (must match the server's view of the graph)")
		sigma2    = flag.Float64("sigma2", 50, "similarity threshold for jobs and streams")
		shards    = flag.Int("shards", 0, "submit sharded jobs (0/1 = single-shot)")
		mode      = flag.String("mode", "", "execution mode for job ops: single | sharded | multilevel (empty = let shards decide); jobs report as op class job:<mode>")
		mix       = flag.String("mix", "upload=1,job=2,patch=4,stream=2,read=6", "op-class weights")
		wire      = flag.String("wire", "text", "stream wire format: text (NDJSON) | binary (application/x-graphspar-events)")
		out       = flag.String("out", "", "write a BENCH_serve.json-shaped report to this path")
		serveWork = flag.Int("serve-workers", 4, "job workers for -selfserve")
	)
	flag.Parse()

	if *wire != "text" && *wire != "binary" {
		fatal(fmt.Errorf("bad -wire %q (want text or binary)", *wire))
	}

	ops, err := parseMix(*mix)
	if err != nil {
		fatal(err)
	}
	// Validate the job-op mode up front with the exact combination rules
	// the server's Canon applies, so a bad flag fails fast instead of
	// turning every job op into an HTTP 400.
	jobMode := service.SparsifyParams{SigmaSq: *sigma2, Mode: *mode, Shards: *shards}
	if err := jobMode.Canon(); err != nil {
		fatal(fmt.Errorf("-mode/-shards: %w", err))
	}
	local, err := cli.LoadGraph(*spec, *seed)
	if err != nil {
		fatal(fmt.Errorf("generate %s locally: %w", *spec, err))
	}
	if err := local.RequireConnected(); err != nil {
		fatal(fmt.Errorf("graph %s: %w", *spec, err))
	}

	base := *addr
	var shutdown func()
	if *selfserve {
		base, shutdown, err = bootServer(*serveWork)
		if err != nil {
			fatal(err)
		}
		defer shutdown()
		log.Printf("self-serve server on %s (workers=%d)", base, *serveWork)
	}
	if base == "" {
		fatal(errors.New("need -addr or -selfserve"))
	}

	c := &client{
		base:   strings.TrimSuffix(base, "/"),
		http:   &http.Client{Timeout: 2 * time.Minute},
		name:   "loadgen",
		spec:   *spec,
		seed:   *seed,
		sigma2: *sigma2,
		shards: *shards,
		mode:   *mode,
		wire:   *wire,
		edges:  local.Edges(),
	}
	if err := c.register(); err != nil {
		fatal(err)
	}

	log.Printf("driving %s: graph=%s (|V|=%d |E|=%d) c=%d duration=%s mix=%s",
		c.base, *spec, local.N(), local.M(), *conc, *duration, *mix)

	agg := runLoad(c, ops, *conc, *duration, *seed)
	report := buildReport(agg, *spec, *conc, *duration, *seed)
	printReport(report)
	if *out != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		log.Printf("wrote %s", *out)
	}
	for _, op := range report.Ops {
		if op.Count == 0 && op.Errors > 0 {
			fatal(errors.New("an op class produced only errors"))
		}
	}
}

// opWeight is one entry of the -mix flag.
type opWeight struct {
	name   string
	weight int
}

func parseMix(s string) ([]opWeight, error) {
	known := map[string]bool{"upload": true, "job": true, "patch": true, "stream": true, "read": true}
	var ops []opWeight
	for _, part := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || !known[name] {
			return nil, fmt.Errorf("bad -mix entry %q (want op=weight with op in upload|job|patch|stream|read)", part)
		}
		var w int
		if _, err := fmt.Sscanf(val, "%d", &w); err != nil || w < 0 {
			return nil, fmt.Errorf("bad -mix weight %q", part)
		}
		if w > 0 {
			ops = append(ops, opWeight{name, w})
		}
	}
	if len(ops) == 0 {
		return nil, errors.New("-mix selects no ops")
	}
	return ops, nil
}

// pick returns an op name drawn from the weighted mix.
func pick(ops []opWeight, rng *rand.Rand) string {
	total := 0
	for _, o := range ops {
		total += o.weight
	}
	n := rng.Intn(total)
	for _, o := range ops {
		if n < o.weight {
			return o.name
		}
		n -= o.weight
	}
	return ops[len(ops)-1].name
}

// sampleCap bounds the latency samples kept per worker per op class.
// Long soak runs used to grow the sample slices without bound (hours of
// load ⇒ hundreds of MB and an eventual OOM on the generator side);
// reservoir sampling keeps memory flat while the kept samples remain a
// uniform draw from the full run, so the reported percentiles are
// unbiased estimates rather than exact order statistics.
const sampleCap = 4096

// opStats accumulates one worker's results for one op class.
type opStats struct {
	count    int
	errors   int
	rejected int // 429s from admission control; not errors
	lastErr  string
	samples  []float64 // latency, ms; uniform reservoir of up to sampleCap
}

// rejectedError marks a request the server shed with 429. The worker
// honors the advertised Retry-After (capped so a soak never stalls on a
// hostile header) and the op counts as a rejection, not an error —
// shedding under overload is the admission controller doing its job.
type rejectedError struct{ retryAfter time.Duration }

func (e rejectedError) Error() string {
	return fmt.Sprintf("shed with 429 (retry after %s)", e.retryAfter)
}

// retryAfterOf reads the Retry-After seconds from a 429 response,
// defaulting to one second and capping at two.
func retryAfterOf(resp *http.Response) time.Duration {
	d := time.Second
	if s := resp.Header.Get("Retry-After"); s != "" {
		var secs int
		if _, err := fmt.Sscanf(s, "%d", &secs); err == nil && secs >= 0 {
			d = time.Duration(secs) * time.Second
		}
	}
	if d > 2*time.Second {
		d = 2 * time.Second
	}
	return d
}

// recordSample folds one latency into the reservoir (Algorithm R, with
// st.count as the number of successful ops seen so far).
func (st *opStats) recordSample(ms float64, rng *rand.Rand) {
	if len(st.samples) < sampleCap {
		st.samples = append(st.samples, ms)
		return
	}
	if j := rng.Intn(st.count); j < sampleCap {
		st.samples[j] = ms
	}
}

func runLoad(c *client, ops []opWeight, conc int, d time.Duration, seed uint64) map[string]*opStats {
	deadline := time.Now().Add(d)
	perWorker := make([]map[string]*opStats, conc)
	var wg sync.WaitGroup
	for w := 0; w < conc; w++ {
		stats := map[string]*opStats{}
		perWorker[w] = stats
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			// Each worker gets its own stream derived from -seed, so two
			// runs with the same flags draw the same op sequences and
			// mutate the same edges; the seed is echoed in the report.
			rng := rand.New(rand.NewSource(int64(seed ^ (uint64(id)+1)*0x9e3779b97f4a7c15)))
			n := 0
			for time.Now().Before(deadline) {
				name := pick(ops, rng)
				label := c.opLabel(name)
				st := stats[label]
				if st == nil {
					st = &opStats{}
					stats[label] = st
				}
				t0 := time.Now()
				err := c.do(name, id, n, rng)
				var rej rejectedError
				switch {
				case err == nil:
					st.count++
					st.recordSample(float64(time.Since(t0))/float64(time.Millisecond), rng)
				case errors.As(err, &rej):
					st.rejected++
					time.Sleep(rej.retryAfter)
				default:
					st.errors++
					st.lastErr = err.Error()
				}
				n++
			}
		}(w)
	}
	wg.Wait()

	agg := map[string]*opStats{}
	for _, stats := range perWorker {
		for name, st := range stats {
			a := agg[name]
			if a == nil {
				a = &opStats{}
				agg[name] = a
			}
			a.count += st.count
			a.errors += st.errors
			a.rejected += st.rejected
			if st.lastErr != "" {
				a.lastErr = st.lastErr
			}
			a.samples = append(a.samples, st.samples...)
		}
	}
	return agg
}

// client issues the individual op classes against the server.
type client struct {
	base   string
	http   *http.Client
	name   string
	spec   string
	seed   uint64
	sigma2 float64
	shards int
	mode   string
	wire   string // stream wire format: "text" | "binary"
	edges  []graph.Edge
}

// opLabel names the op class in the report. Job ops are labeled with the
// execution mode they request (job:multilevel, job:sharded, ...), so a
// BENCH_serve.json from a -mode run is never confused with a default one.
func (c *client) opLabel(op string) string {
	if op == "job" && c.mode != "" {
		return "job:" + c.mode
	}
	return op
}

func (c *client) do(op string, worker, n int, rng *rand.Rand) error {
	switch op {
	case "upload":
		return c.upload(worker, n)
	case "job":
		return c.job()
	case "patch":
		return c.patch(rng)
	case "stream":
		return c.stream(rng)
	case "read":
		return c.read()
	}
	return fmt.Errorf("unknown op %q", op)
}

// register installs the target graph, replacing a leftover from a prior
// run against the same server.
func (c *client) register() error {
	body := map[string]any{"name": c.name, "spec": c.spec, "seed": c.seed}
	code, _, err := c.json(http.MethodPost, "/v1/graphs", body, nil)
	if err != nil {
		return fmt.Errorf("register %s: %w", c.name, err)
	}
	if code == http.StatusCreated {
		return nil
	}
	// Name taken (possibly with different content after a mutating run):
	// drop it and retry once.
	if _, _, err := c.json(http.MethodDelete, "/v1/graphs/"+c.name, nil, nil); err != nil {
		return fmt.Errorf("delete stale %s: %w", c.name, err)
	}
	code, raw, err := c.json(http.MethodPost, "/v1/graphs", body, nil)
	if err != nil {
		return err
	}
	if code != http.StatusCreated {
		return fmt.Errorf("register %s: %d %s", c.name, code, raw)
	}
	return nil
}

func (c *client) upload(worker, n int) error {
	name := fmt.Sprintf("lg-up-%d-%d", worker, n)
	code, raw, err := c.json(http.MethodPost, "/v1/graphs",
		map[string]any{"name": name, "spec": "grid:8x8", "seed": c.seed}, nil)
	if err != nil {
		return err
	}
	if code != http.StatusCreated {
		return fmt.Errorf("upload: %d %s", code, raw)
	}
	_, _, err = c.json(http.MethodDelete, "/v1/graphs/"+name, nil, nil)
	return err
}

// job submits a sparsification and polls it to completion; the recorded
// latency is submit-to-done, including queue wait.
func (c *client) job() error {
	req := map[string]any{"graph": c.name, "sigma2": c.sigma2}
	if c.shards > 1 {
		req["shards"] = c.shards
	}
	if c.mode != "" {
		req["mode"] = c.mode
	}
	var job service.Job
	code, raw, err := c.json(http.MethodPost, "/v1/jobs", req, &job)
	if err != nil {
		return err
	}
	// A result-cache hit answers synchronously with the finished job.
	if code == http.StatusOK && job.Status == service.StatusDone {
		return nil
	}
	if code != http.StatusAccepted {
		return fmt.Errorf("submit: %d %s", code, raw)
	}
	for {
		code, raw, err := c.json(http.MethodGet, "/v1/jobs/"+job.ID, nil, &job)
		if err != nil {
			return err
		}
		if code != http.StatusOK {
			return fmt.Errorf("poll: %d %s", code, raw)
		}
		switch job.Status {
		case service.StatusDone:
			return nil
		case service.StatusFailed, service.StatusCanceled:
			return fmt.Errorf("job %s: %s %s", job.ID, job.Status, job.Error)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// randomReweight mutates a known edge's weight within [0.5, 2.0]; edge
// endpoints never change, so the graph stays connected.
func (c *client) randomReweight(rng *rand.Rand) (u, v int, w float64) {
	e := c.edges[rng.Intn(len(c.edges))]
	return e.U, e.V, 0.5 + 1.5*rng.Float64()
}

func (c *client) patch(rng *rand.Rand) error {
	u, v, w := c.randomReweight(rng)
	body := map[string]any{"updates": []map[string]any{{"op": "reweight", "u": u, "v": v, "w": w}}}
	code, raw, err := c.json(http.MethodPatch, "/v1/graphs/"+c.name+"/edges", body, nil)
	if err != nil {
		return err
	}
	if code != http.StatusOK {
		return fmt.Errorf("patch: %d %s", code, raw)
	}
	return nil
}

// stream sends one batch of reweights plus a commit, in the text (NDJSON)
// or binary wire format per -wire. The first stream against a cold server
// installs a maintainer session (a full sparsification); later batches
// ride the resident session.
func (c *client) stream(rng *rand.Rand) error {
	var b bytes.Buffer
	contentType := "application/x-ndjson"
	if c.wire == "binary" {
		buf := make([]byte, 0, 8*16)
		for i := 0; i < 8; i++ {
			u, v, w := c.randomReweight(rng)
			var err error
			buf, err = dynamic.AppendBinaryUpdate(buf, dynamic.Update{Op: dynamic.OpReweight, U: u, V: v, W: w})
			if err != nil {
				return err
			}
		}
		b.Write(dynamic.AppendBinaryCommit(buf))
		contentType = dynamic.BinaryContentType
	} else {
		for i := 0; i < 8; i++ {
			u, v, w := c.randomReweight(rng)
			fmt.Fprintf(&b, "= %d %d %g\n", u, v, w)
		}
		b.WriteString("commit\n")
	}
	url := fmt.Sprintf("%s/v1/graphs/%s/stream?sigma2=%g", c.base, c.name, c.sigma2)
	resp, err := c.http.Post(url, contentType, &b)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode == http.StatusTooManyRequests {
		return rejectedError{retryAfterOf(resp)}
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("stream: %d %s", resp.StatusCode, raw)
	}
	// Response is NDJSON too: one result line per batch, then a summary.
	// A batch the server could not apply reports applied:false.
	for _, line := range bytes.Split(bytes.TrimSpace(raw), []byte("\n")) {
		var res struct {
			Applied *bool  `json:"applied"`
			Error   string `json:"error"`
		}
		if err := json.Unmarshal(line, &res); err != nil {
			return fmt.Errorf("stream response: %w", err)
		}
		if res.Applied != nil && !*res.Applied {
			return fmt.Errorf("stream batch rejected: %s", res.Error)
		}
	}
	return nil
}

func (c *client) read() error {
	code, raw, err := c.json(http.MethodGet, "/v1/graphs/"+c.name, nil, nil)
	if err != nil {
		return err
	}
	if code != http.StatusOK {
		return fmt.Errorf("read: %d %s", code, raw)
	}
	return nil
}

// json issues a request with an optional JSON body, decoding the reply
// into out when non-nil.
func (c *client) json(method, path string, body, out any) (int, string, error) {
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return 0, "", err
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, c.base+path, rd)
	if err != nil {
		return 0, "", err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, "", err
	}
	if resp.StatusCode == http.StatusTooManyRequests {
		return resp.StatusCode, string(raw), rejectedError{retryAfterOf(resp)}
	}
	if out != nil && resp.StatusCode < 300 {
		if err := json.Unmarshal(raw, out); err != nil {
			return resp.StatusCode, string(raw), err
		}
	}
	return resp.StatusCode, string(raw), nil
}

// bootServer starts an in-process sparsifyd on a loopback port using the
// same facade runners cmd/serve wires in.
func bootServer(workers int) (base string, shutdown func(), err error) {
	cfg := runners.Config()
	cfg.Workers = workers
	cfg.Metrics = obs.NewRegistry()
	srv := service.NewServer(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	shutdown = func() {
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		hs.Shutdown(ctx)
		srv.Queue().Shutdown(ctx)
		if m := srv.Sessions(); m != nil {
			m.Close(ctx)
		}
	}
	return "http://" + ln.Addr().String(), shutdown, nil
}

// Report is the BENCH_serve.json shape.
type Report struct {
	Bench       string              `json:"bench"`
	Graph       string              `json:"graph"`
	Seed        uint64              `json:"seed"`
	Concurrency int                 `json:"concurrency"`
	DurationS   float64             `json:"duration_s"`
	Ops         map[string]OpReport `json:"ops"`
}

type OpReport struct {
	Count     int    `json:"count"`
	Errors    int    `json:"errors"`
	LastError string `json:"last_error,omitempty"`
	// Rejected counts 429s from admission control: the server shedding
	// load on purpose, reported separately from errors. RejectedRate is
	// rejected / (count + rejected + errors).
	Rejected     int     `json:"rejected"`
	RejectedRate float64 `json:"rejected_rate"`
	ThroughputPS float64 `json:"throughput_per_s"`
	P50Ms        float64 `json:"p50_ms"`
	P95Ms        float64 `json:"p95_ms"`
	P99Ms        float64 `json:"p99_ms"`
	// Percentiles are computed from a per-worker uniform reservoir of
	// at most SampleCap latencies, not from every op; SamplesKept is
	// the pooled reservoir size they were read from.
	SampleCap   int `json:"sample_cap"`
	SamplesKept int `json:"samples_kept"`
}

func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

func buildReport(agg map[string]*opStats, spec string, conc int, d time.Duration, seed uint64) Report {
	rep := Report{
		Bench:       "serve_loadgen",
		Graph:       spec,
		Seed:        seed,
		Concurrency: conc,
		DurationS:   d.Seconds(),
		Ops:         map[string]OpReport{},
	}
	for name, st := range agg {
		sort.Float64s(st.samples)
		rejRate := 0.0
		if total := st.count + st.rejected + st.errors; total > 0 {
			rejRate = float64(st.rejected) / float64(total)
		}
		rep.Ops[name] = OpReport{
			Count:        st.count,
			Errors:       st.errors,
			LastError:    st.lastErr,
			Rejected:     st.rejected,
			RejectedRate: rejRate,
			ThroughputPS: float64(st.count) / d.Seconds(),
			P50Ms:        percentile(st.samples, 0.50),
			P95Ms:        percentile(st.samples, 0.95),
			P99Ms:        percentile(st.samples, 0.99),
			SampleCap:    sampleCap,
			SamplesKept:  len(st.samples),
		}
	}
	return rep
}

func printReport(rep Report) {
	names := make([]string, 0, len(rep.Ops))
	for name := range rep.Ops {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Printf("%-8s %8s %7s %8s %10s %10s %10s %10s\n",
		"op", "count", "errors", "rejects", "ops/s", "p50 ms", "p95 ms", "p99 ms")
	for _, name := range names {
		op := rep.Ops[name]
		fmt.Printf("%-8s %8d %7d %8d %10.1f %10.2f %10.2f %10.2f\n",
			name, op.Count, op.Errors, op.Rejected, op.ThroughputPS, op.P50Ms, op.P95Ms, op.P99Ms)
		if op.LastError != "" {
			fmt.Printf("         last error: %s\n", op.LastError)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "loadgen:", err)
	os.Exit(1)
}
