package graphspar

import (
	"graphspar/internal/core"
	"graphspar/internal/dynamic"
	"graphspar/internal/graph"
	"graphspar/internal/params"
)

// Sentinel errors. These alias the sentinels of the underlying pipelines,
// so errors.Is works the same whether an error crossed the facade or not.
var (
	// ErrInvalidOptions is the base class of every option-validation
	// error: errors.Is(err, ErrInvalidOptions) matches all of the
	// ErrBad* sentinels below.
	ErrInvalidOptions = params.ErrInvalid
	// ErrBadSigma2 rejects similarity targets σ² ≤ 1 (including the
	// missing-WithSigma2 zero value).
	ErrBadSigma2 = params.ErrBadSigma2
	// ErrBadShards rejects negative shard counts.
	ErrBadShards = params.ErrBadShards
	// ErrNoTarget is returned by Run (with a usable best-effort Result)
	// when the round budget is exhausted before the σ² target is met.
	ErrNoTarget = core.ErrNoTarget
	// ErrDisconnected rejects disconnected input graphs.
	ErrDisconnected = graph.ErrDisconnected
	// ErrWouldDisconnect rejects an update batch whose deletes would
	// disconnect the graph (Stream.Apply, ApplyUpdates).
	ErrWouldDisconnect = dynamic.ErrWouldDisconnect
	// ErrEdgeExists rejects inserting an edge that already exists.
	ErrEdgeExists = dynamic.ErrEdgeExists
	// ErrEdgeMissing rejects deleting or reweighting a missing edge.
	ErrEdgeMissing = dynamic.ErrEdgeMissing
	// ErrBadUpdate rejects malformed updates (self-loops, bad weights,
	// unknown ops).
	ErrBadUpdate = dynamic.ErrBadUpdate
)
