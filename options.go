package graphspar

import (
	"fmt"

	"graphspar/internal/core"
	"graphspar/internal/dynamic"
	"graphspar/internal/engine"
	"graphspar/internal/lsst"
	"graphspar/internal/multilevel"
	"graphspar/internal/params"
	"graphspar/internal/partition"
)

// Mode selects Run's execution path; WithMode pins it.
type Mode = params.Mode

// Execution modes.
const (
	// ModeAuto (the default) picks the path from the graph: single-shot
	// below AutoShardEdges edges, multilevel at or above
	// AutoMultilevelEdges or when a cheap partition probe finds the graph
	// ill-partitioned, sharded otherwise.
	ModeAuto = params.ModeAuto
	// ModeSingleShot pins the plain edge-filter pipeline.
	ModeSingleShot = params.ModeSingleShot
	// ModeSharded pins the shard-parallel engine (WithShards sets the
	// arity; AutoShards otherwise).
	ModeSharded = params.ModeSharded
	// ModeMultilevel pins the coarsen → sparsify-coarse → interpolate →
	// refilter hierarchy engine.
	ModeMultilevel = params.ModeMultilevel
)

// ParseMode resolves an execution-mode name ("auto", "single", "sharded",
// "multilevel"; empty means auto) for flags and wire formats.
func ParseMode(name string) (Mode, error) { return params.ParseMode(name) }

// TreeAlgorithm selects the spanning-tree backbone construction.
type TreeAlgorithm = lsst.Algorithm

// Backbone algorithms.
const (
	// TreeMaxWeight is the maximum-weight spanning tree (the default).
	TreeMaxWeight = lsst.MaxWeight
	// TreeDijkstra grows a shortest-path tree from a high-degree center.
	TreeDijkstra = lsst.Dijkstra
	// TreeAKPW is the low-stretch ball-growing decomposition.
	TreeAKPW = lsst.AKPW
)

// ParseTreeAlgorithm resolves a backbone name ("maxweight", "dijkstra",
// "akpw"; empty means the default) for flags and wire formats.
func ParseTreeAlgorithm(name string) (TreeAlgorithm, error) { return lsst.Parse(name) }

// SolverKind selects how L_P⁺ is applied inside the densification loop.
type SolverKind = core.SolverKind

// Inner solver choices.
const (
	// SolverDirect refactors the sparsifier with sparse Cholesky each
	// round (the default: sparsifiers are ultra-sparse, direct is fastest).
	SolverDirect = core.Direct
	// SolverTreePCG runs PCG preconditioned by the backbone tree.
	SolverTreePCG = core.TreePCG
	// SolverAMG runs aggregation-multigrid-preconditioned PCG.
	SolverAMG = core.AMG
)

// PartitionMethod selects the sharded engine's bisector.
type PartitionMethod = partition.Method

// Bisector backends.
const (
	// PartitionBFS is the solver-free O(n+m) level-set bisector (the
	// engine's default: the partitioner must cost far less than the
	// sparsifications it feeds).
	PartitionBFS = partition.BFS
	// PartitionDirect computes spectral cuts with a direct factorization.
	PartitionDirect = partition.Direct
	// PartitionIterative computes spectral cuts with sparsifier-
	// preconditioned PCG.
	PartitionIterative = partition.Iterative
	// PartitionSparsifierOnly cuts along the sparsifier's own Fiedler
	// vector.
	PartitionSparsifierOnly = partition.SparsifierOnly
)

// ParsePartitionMethod resolves a bisector name ("bfs", "direct",
// "iterative", "sparsifier-only") for flags and wire formats.
func ParsePartitionMethod(name string) (PartitionMethod, error) {
	return partition.ParseMethod(name)
}

// verifyMode is the three-valued verification switch: the zero value
// follows each path's native default (sharded verifies, single-shot does
// not).
type verifyMode int

const (
	verifyAuto verifyMode = iota
	verifyOn
	verifyOff
)

// config is the resolved option set a Sparsifier carries. Zero fields
// defer to the underlying pipeline defaults so that a facade call stays
// bit-identical to the equivalent direct core/engine call.
type config struct {
	sigma2        float64
	t             int
	numVectors    int
	treeAlg       TreeAlgorithm
	solver        SolverKind
	maxRounds     int
	maxEdges      int
	batchFraction float64
	embedWorkers  int
	seed          uint64

	mode         Mode
	shards       int // 0 = auto, 1 = single-shot pinned, >1 = sharded pinned
	workers      int
	partitionSet bool
	partition    PartitionMethod

	coarsenLevels int
	coarsenRatio  float64

	verify      verifyMode
	verifySteps int

	refilterRounds int
	driftFraction  float64

	localRefreshRadius int
	factorBudget       int
	factorBudgetSet    bool

	// workspace pools embedding and factorization scratch across every
	// pipeline run this Sparsifier performs. New installs one per
	// Sparsifier (it is concurrency-safe, so concurrent Runs share it);
	// there is deliberately no public option — pooling never changes
	// results, so there is nothing to configure.
	workspace *core.Workspace
}

func defaultConfig() config {
	return config{}
}

func (c *config) validate() error {
	if err := params.Sigma2(c.sigma2); err != nil {
		return err
	}
	if c.maxEdges > 0 && c.shards > 1 {
		// The engine applies core's edge budget per shard, which would
		// silently inflate the cap ~shards-fold; reject like the service
		// does. (The auto policy respects the budget instead: shardsFor
		// pins single-shot whenever MaxEdges is set.)
		return fmt.Errorf("%w: WithMaxEdges is a single-shot knob; it does not compose with WithShards(%d)", params.ErrBadCombination, c.shards)
	}
	// WithMode and WithShards both pin the execution path; reject
	// contradictions instead of silently preferring one.
	switch c.mode {
	case ModeSingleShot:
		if c.shards > 1 {
			return fmt.Errorf("%w: WithMode(ModeSingleShot) contradicts WithShards(%d)", params.ErrBadCombination, c.shards)
		}
	case ModeSharded:
		if c.shards == 1 {
			return fmt.Errorf("%w: WithMode(ModeSharded) contradicts WithShards(1)", params.ErrBadCombination)
		}
	case ModeMultilevel:
		if c.shards != 0 {
			return fmt.Errorf("%w: WithMode(ModeMultilevel) contradicts WithShards(%d)", params.ErrBadCombination, c.shards)
		}
		if c.maxEdges > 0 {
			// The hierarchy's re-filter passes admit whatever the
			// certificate needs, so an edge budget cannot be honored.
			return fmt.Errorf("%w: WithMaxEdges does not compose with WithMode(ModeMultilevel)", params.ErrBadCombination)
		}
	}
	return nil
}

// effectiveSeed mirrors core.Options' seed defaulting (0 → 1) for the
// places the facade seeds work itself (verification).
func (c *config) effectiveSeed() uint64 {
	if c.seed == 0 {
		return 1
	}
	return c.seed
}

// verifyStepsFor resolves the independent-verification Lanczos depth:
// the explicit WithVerification value, else min(30, n) with a floor of 2.
func (c *config) verifyStepsFor(n int) int {
	if c.verifySteps > 0 {
		return c.verifySteps
	}
	k := 30
	if n < k {
		k = n
	}
	if k < 2 {
		k = 2
	}
	return k
}

// coreOptions assembles the exact core.Options a direct caller would
// write; unset knobs stay zero so core applies its own defaults.
func (c *config) coreOptions() core.Options {
	return core.Options{
		SigmaSq:       c.sigma2,
		T:             c.t,
		NumVectors:    c.numVectors,
		TreeAlg:       c.treeAlg,
		MaxRounds:     c.maxRounds,
		BatchFraction: c.batchFraction,
		Solver:        c.solver,
		MaxEdges:      c.maxEdges,
		EmbedWorkers:  c.embedWorkers,
		Workspace:     c.workspace,
		Seed:          c.seed,
	}
}

// partitionOptions builds the engine's bisector configuration, or nil for
// the engine default when WithPartition was not used.
func (c *config) partitionOptions() *partition.Options {
	if !c.partitionSet {
		return nil
	}
	return &partition.Options{Method: c.partition, SigmaSq: c.sigma2, Seed: c.effectiveSeed()}
}

// engineOptions assembles the engine.Options for a sharded run.
func (c *config) engineOptions(shards int) engine.Options {
	opt := engine.Options{
		Shards:     shards,
		Workers:    c.workers,
		Sparsify:   c.coreOptions(),
		Partition:  c.partitionOptions(),
		SkipVerify: c.verify == verifyOff,
		Seed:       c.effectiveSeed(),
	}
	if c.verifySteps > 0 {
		opt.VerifySteps = c.verifySteps
	}
	return opt
}

// multilevelOptions assembles the multilevel.Options for a hierarchy run.
// The embedding/solver knobs flow through coreOptions, so the coarsest
// pipeline and the per-level re-filters behave exactly like the
// single-shot path configured the same way.
func (c *config) multilevelOptions() multilevel.Options {
	opt := multilevel.Options{
		Sparsify:       c.coreOptions(),
		CoarsenLevels:  c.coarsenLevels,
		CoarsenRatio:   c.coarsenRatio,
		RefilterRounds: c.refilterRounds,
		SkipVerify:     c.verify == verifyOff,
		Workers:        c.workers,
		Seed:           c.effectiveSeed(),
	}
	if c.verifySteps > 0 {
		opt.VerifySteps = c.verifySteps
	}
	return opt
}

// dynamicOptions assembles the maintainer configuration for Maintain and
// Resume. shards is the resolved count from Sparsifier.shardsFor — the
// same policy Run uses — so a stream's full rebuilds route through the
// engine exactly when a Run on the same graph would.
func (c *config) dynamicOptions(shards int) dynamic.Options {
	opt := dynamic.Options{
		Sparsify:           c.coreOptions(),
		RefilterRounds:     c.refilterRounds,
		DriftFraction:      c.driftFraction,
		LocalRefreshRadius: c.localRefreshRadius,
	}
	if c.factorBudgetSet {
		if c.factorBudget == 0 {
			opt.FactorUpdateBudget = -1 // facade 0 = off; dynamic 0 = default
		} else {
			opt.FactorUpdateBudget = c.factorBudget
		}
	}
	if c.verifySteps > 0 {
		opt.VerifySteps = c.verifySteps
	}
	if shards > 1 {
		opt.RebuildShards = shards
		opt.RebuildWorkers = c.workers
		opt.RebuildPartition = c.partitionOptions()
	}
	return opt
}

// Option configures a Sparsifier under construction.
type Option func(*config) error

// WithSigma2 sets the similarity target σ², the upper bound on the
// relative condition number κ(L_G, L_P) the sparsifier must certify
// (e.g. 50, 100, 200; larger is sparser). Required, must be > 1.
func WithSigma2(sigmaSq float64) Option {
	return func(c *config) error {
		c.sigma2 = sigmaSq
		return nil
	}
}

// WithShards pins the execution path of Run: 1 forces the single-shot
// pipeline, k > 1 forces the sharded engine with k shards, and 0 restores
// the default auto policy (single-shot below AutoShardEdges edges,
// AutoShards shards above). With Maintain, k > 1 routes the stream's full
// rebuilds through the engine.
func WithShards(k int) Option {
	return func(c *config) error {
		if k < 0 {
			return fmt.Errorf("%w: got %d", ErrBadShards, k)
		}
		c.shards = k
		return nil
	}
}

// WithMode pins Run's execution path: single-shot, sharded, or the
// multilevel hierarchy engine; ModeAuto (the default) picks per graph as
// documented on the constants. Contradictory combinations with WithShards
// are rejected by New (WithShards(1) pins single-shot, k > 1 sharded).
// ModeMultilevel does not compose with Maintain/Resume or WithMaxEdges.
func WithMode(m Mode) Option {
	return func(c *config) error {
		switch m {
		case ModeAuto, ModeSingleShot, ModeSharded, ModeMultilevel:
			c.mode = m
			return nil
		}
		return fmt.Errorf("%w: %d", params.ErrBadMode, int(m))
	}
}

// WithCoarsenLevels caps the multilevel hierarchy depth, counting the
// input graph as level one: 1 disables coarsening (Run is then
// bit-identical to the single-shot pipeline), 0 restores the default cap.
// Only multilevel runs consult it.
func WithCoarsenLevels(n int) Option {
	return func(c *config) error {
		if err := params.Coarsen(n, 0); err != nil {
			return err
		}
		c.coarsenLevels = n
		return nil
	}
}

// WithCoarsenRatio sets the acceptance ceiling on the per-step vertex
// shrink factor nc/n of the multilevel hierarchy: a coarsening step that
// cannot shrink below this fraction ends the hierarchy. 1 disables
// coarsening entirely (bit-identical to single-shot), 0 restores the
// default. Only multilevel runs consult it.
func WithCoarsenRatio(r float64) Option {
	return func(c *config) error {
		if err := params.Coarsen(0, r); err != nil {
			return err
		}
		c.coarsenRatio = r
		return nil
	}
}

// WithWorkers bounds how many shards sparsify concurrently in the sharded
// engine, and how many goroutines the multilevel engine's per-level
// embedding passes use (0 = all cores). Workers only affect wall-clock
// time, never the result.
func WithWorkers(n int) Option {
	return func(c *config) error {
		c.workers = n
		return nil
	}
}

// WithPartition selects the sharded engine's bisector (default
// PartitionBFS).
func WithPartition(m PartitionMethod) Option {
	return func(c *config) error {
		c.partitionSet = true
		c.partition = m
		return nil
	}
}

// WithSolver selects the inner L_P⁺ solver of the densification loop
// (default SolverDirect).
func WithSolver(kind SolverKind) Option {
	return func(c *config) error {
		c.solver = kind
		return nil
	}
}

// WithEmbedWorkers caps the goroutines used for the probe-vector solves
// of each embedding pass (≤ 1 = sequential). Bit-identical results for
// every worker count; purely a wall-clock knob.
func WithEmbedWorkers(n int) Option {
	return func(c *config) error {
		c.embedWorkers = n
		return nil
	}
}

// WithSeed drives every random choice (backbone, probe vectors, shard
// seeds). Results are deterministic per seed; 0 means the default seed 1.
func WithSeed(seed uint64) Option {
	return func(c *config) error {
		c.seed = seed
		return nil
	}
}

// WithTreeAlgorithm picks the spanning-tree backbone construction
// (default TreeMaxWeight).
func WithTreeAlgorithm(a TreeAlgorithm) Option {
	return func(c *config) error {
		c.treeAlg = a
		return nil
	}
}

// WithEmbedSteps sets t, the generalized power-iteration step count of
// the Joule-heat edge embedding (default 2; the paper shows t = 2
// suffices).
func WithEmbedSteps(t int) Option {
	return func(c *config) error {
		c.t = t
		return nil
	}
}

// WithProbeVectors sets r, the number of random probe vectors of the
// embedding (default O(log |V|)).
func WithProbeVectors(r int) Option {
	return func(c *config) error {
		c.numVectors = r
		return nil
	}
}

// WithMaxRounds caps the densification iterations (default 30). When the
// budget is exhausted with the target unmet, Run returns the best
// sparsifier found together with ErrNoTarget.
func WithMaxRounds(n int) Option {
	return func(c *config) error {
		c.maxRounds = n
		return nil
	}
}

// WithMaxEdges caps the sparsifier size (tree edges included) for
// equal-budget comparisons; 0 means unlimited. Single-shot only.
func WithMaxEdges(n int) Option {
	return func(c *config) error {
		c.maxEdges = n
		return nil
	}
}

// WithBatchFraction caps how many passing candidates are added per
// densification round, as a fraction of the candidate list (default
// 0.25).
func WithBatchFraction(f float64) Option {
	return func(c *config) error {
		c.batchFraction = f
		return nil
	}
}

// WithVerification enables the independent generalized-Lanczos check of
// the final certificate on every Run (it is on by default only for the
// sharded path) and sets its depth; steps ≤ 0 keeps the default depth
// min(30, |V|). With Maintain, a positive steps value sets the per-batch
// certificate depth (default 12).
func WithVerification(steps int) Option {
	return func(c *config) error {
		c.verify = verifyOn
		if steps > 0 {
			c.verifySteps = steps
		}
		return nil
	}
}

// WithoutVerification disables the independent certificate check on Run
// (the sharded path otherwise runs it); the pipeline's own estimates are
// still reported. Maintain ignores this: the maintainer's invariant is
// the verified certificate.
func WithoutVerification() Option {
	return func(c *config) error {
		c.verify = verifyOff
		return nil
	}
}

// WithRefilterRounds caps the certificate-restoration re-filter rounds a
// Stream runs per update batch (default 4).
func WithRefilterRounds(n int) Option {
	return func(c *config) error {
		c.refilterRounds = n
		return nil
	}
}

// WithDriftFraction bounds a Stream's embedding staleness: a full rebuild
// is forced once cumulative churn exceeds this fraction of the edge count
// at the last full build (default 0.25).
func WithDriftFraction(f float64) Option {
	return func(c *config) error {
		c.driftFraction = f
		return nil
	}
}

// WithLocalRefresh makes a Stream refresh its edge-scoring embedding with
// a ball-local relaxation of the given hop radius around the vertices the
// batch touched, instead of a whole-graph warm power step. Per-batch
// embedding cost becomes proportional to the ball volume rather than the
// graph size; the far field stays stale, and half the deferred churn is
// charged against the drift budget so staleness still forces rebuilds.
// radius <= 0 keeps the default full-step refresh.
func WithLocalRefresh(radius int) Option {
	return func(c *config) error {
		if radius < 0 {
			radius = 0
		}
		c.localRefreshRadius = radius
		return nil
	}
}

// WithFactorUpdateBudget caps how many rank-1 Cholesky update/downdates a
// Stream folds into its sparsifier factor between full refactorizations
// (default 256). Each sparsifier edge delta costs one rank-1 pass along
// the factor's elimination-tree path instead of a full refactorization;
// the budget bounds the numerical error such passes can accumulate.
// n == 0 disables incremental updates entirely (every batch refactors).
func WithFactorUpdateBudget(n int) Option {
	return func(c *config) error {
		if n < 0 {
			return fmt.Errorf("%w: factor update budget %d is negative", params.ErrInvalid, n)
		}
		c.factorBudget = n
		c.factorBudgetSet = true
		return nil
	}
}
