package graphspar

import (
	"time"

	"graphspar/internal/core"
	"graphspar/internal/engine"
	"graphspar/internal/multilevel"
	"graphspar/internal/obs"
)

// RoundStats records one densification iteration of the single-shot
// pipeline (or of one shard's pipeline in a sharded run).
type RoundStats = core.RoundStats

// ShardStats reports one shard's sparsification in a sharded run.
type ShardStats = engine.ShardStats

// LevelStats reports one hierarchy level of a multilevel run (level 0 is
// the input graph, the highest level the coarsest).
type LevelStats = multilevel.LevelStats

// Phase is one timed pipeline span (partition, shard, stitch, embed,
// verify, settle, refilter, ...). Start is the offset from the start of
// the trace that collected it.
type Phase = obs.Phase

// Trace collects the Phase spans of one request; obtain one bound to a
// context with NewTraceContext. Run also returns its spans in
// Result.Phases, so an explicit Trace is only needed for Stream.Apply
// (which has no result struct to hang phases on).
type Trace = obs.Trace

// Timings breaks a Run down by phase. Single-shot runs fill only
// Sparsify, Verify and Wall; sharded runs additionally fill Partition,
// Shard, ShardCPU and Stitch; multilevel runs fill Coarsen, Interpolate
// and Refilter (summed over levels). ShardCPU sums the per-shard
// durations, so ShardCPU / Shard is the parallel speedup of the shard
// phase.
type Timings struct {
	Partition   time.Duration
	Shard       time.Duration
	ShardCPU    time.Duration
	Stitch      time.Duration
	Coarsen     time.Duration
	Interpolate time.Duration
	Refilter    time.Duration
	Sparsify    time.Duration // end-to-end compute excluding verification
	Verify      time.Duration
	Wall        time.Duration
}

// Result is the unified output of Sparsifier.Run across both execution
// paths. Fields that only one path produces are documented as such and
// are zero for the other.
type Result struct {
	// Sparsifier is P: a connected subgraph of the input with original
	// edge weights, certified (or best-effort, see TargetMet) to satisfy
	// κ(L_G, L_P) ≤ σ².
	Sparsifier *Graph
	// Sharded/Multilevel report which execution path ran (both false for
	// single-shot).
	Sharded    bool
	Multilevel bool

	// LambdaMax/LambdaMin are the pipeline's own final extreme-eigenvalue
	// estimates of L_P⁺L_G, and SigmaSqAchieved their ratio — the achieved
	// σ² estimate. In a sharded run with a small kept-whole cut these are
	// the exact direct-sum certificate of the worst shard.
	LambdaMax, LambdaMin float64
	SigmaSqAchieved      float64
	// TargetMet reports whether the pipeline met the σ² target (for
	// sharded runs with verification, whether the verified κ met it).
	// When false, Run also returned ErrNoTarget.
	TargetMet bool

	// Single-shot fields: backbone total stretch, tree/off-tree edge ids
	// into the input graph's edge list, and the per-round densification
	// trace.
	TotalStretch    float64
	TreeEdgeIDs     []int
	OffTreeAddedIDs []int
	Rounds          []RoundStats

	// Sharded fields: partition arity, per-shard stats, and cut
	// bookkeeping (CutEdges crossed the partition; StitchedCut were added
	// for connectivity, RecoveredCut more passed the global heat filter).
	Parts        int
	Shards       []ShardStats
	CutEdges     int
	StitchedCut  int
	RecoveredCut int

	// Multilevel fields: hierarchy depth (1 = coarsening never engaged)
	// and per-level stats, indexed by level (0 = finest).
	CoarsenDepth int
	Levels       []LevelStats

	// Verified reports whether the independent generalized-Lanczos check
	// ran (sharded default, or WithVerification); Verified* carry its
	// estimates, with VerifiedCond the authoritative end-to-end κ.
	Verified          bool
	VerifiedLambdaMax float64
	VerifiedLambdaMin float64
	VerifiedCond      float64

	Timings Timings

	// Phases is the ordered span trace of this run: every timed pipeline
	// phase with its offset and duration. Finer-grained than Timings
	// (embed rounds and re-filter passes appear individually) and shared
	// with any trace the caller attached via NewTraceContext.
	Phases []Phase
}

// Density returns |E_P| / |V|, the sparsifier density the paper reports.
func (r *Result) Density() float64 {
	return float64(r.Sparsifier.M()) / float64(r.Sparsifier.N())
}

// Speedup reports the parallel efficiency of a sharded run's shard phase
// (1.0 for single-shot runs).
func (r *Result) Speedup() float64 {
	if r.Timings.Shard <= 0 {
		return 1
	}
	return float64(r.Timings.ShardCPU) / float64(r.Timings.Shard)
}
