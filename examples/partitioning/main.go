// partitioning bisects a FEM-style mesh with the sign cut of the Fiedler
// vector, comparing the direct Cholesky backend against the
// sparsifier-accelerated iterative one (the paper's Table 3 comparison).
package main

import (
	"fmt"
	"log"
	"time"

	"graphspar/internal/gen"
	"graphspar/internal/partition"
)

func main() {
	g, err := gen.TriMesh(180, 180, gen.UniformWeights, 23)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mesh: |V|=%d |E|=%d\n\n", g.N(), g.M())

	// "A few inverse power iterations" (§4.3) suffice for a sign cut.
	dir, err := partition.SpectralBisect(g, partition.Options{
		Method: partition.Direct, Seed: 7, MaxIter: 25, Tol: 1e-8,
	})
	if err != nil {
		log.Fatal(err)
	}
	report("direct (CHOLMOD stand-in)", g, dir)

	it, err := partition.SpectralBisect(g, partition.Options{
		Method: partition.Iterative, SigmaSq: 200, Seed: 7, MaxIter: 25, Tol: 1e-8, PCGTol: 1e-6,
	})
	if err != nil {
		log.Fatal(err)
	}
	report("iterative (σ²≤200 sparsifier PCG)", g, it)

	re, err := partition.SignError(dir.Signs, it.Signs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sign disagreement direct vs iterative: %.2e (paper's Rel.Err. column)\n", re)
	fmt.Printf("memory: direct %s vs iterative %s\n", mem(dir.MemProxyBytes), mem(it.MemProxyBytes))
}

func report(name string, g interface{ N() int }, r *partition.Result) {
	fmt.Printf("%s:\n", name)
	fmt.Printf("  λ2=%.4e  |V+|/|V-|=%.3f  setup=%s solve=%s\n\n",
		r.Lambda2, r.Balance(), r.SetupTime.Round(time.Millisecond), r.SolveTime.Round(time.Millisecond))
}

func mem(b uint64) string {
	if b >= 1<<20 {
		return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
	}
	return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
}
