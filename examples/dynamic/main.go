// Dynamic maintenance walkthrough: sparsify a graph once, then keep the
// sparsifier's σ² certificate valid under a stream of edge insertions,
// deletions and reweights — without re-running the pipeline per batch.
// Compares the incremental per-batch cost against a from-scratch
// re-sparsification at the end. Everything runs through the public
// graphspar facade: Maintain returns the live Stream, Run the reference.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	"graphspar"
	"graphspar/internal/vecmath"
)

// randomBatch samples a mixed update batch against the current graph:
// inserts of random non-edges, reweights and deletes of random existing
// edges, each edge touched at most once per batch. A deliberate sibling
// of testkit.RandomBatch — the testkit package depends on the testing
// framework, which a runnable example should not link. Attempts are
// bounded so a near-complete graph cannot stall the insert branch.
func randomBatch(g *graphspar.Graph, rng *vecmath.RNG, size int) []graphspar.Update {
	used := make(map[[2]int]bool, size)
	var batch []graphspar.Update
	for tries := 0; len(batch) < size && tries < 64*size; tries++ {
		switch r := rng.Float64(); {
		case r < 0.4:
			u, v := rng.Intn(g.N()), rng.Intn(g.N())
			if u == v || g.HasEdge(u, v) {
				continue
			}
			if u > v {
				u, v = v, u
			}
			if used[[2]int{u, v}] {
				continue
			}
			used[[2]int{u, v}] = true
			batch = append(batch, graphspar.Insert(u, v, 0.25+1.5*rng.Float64()))
		case r < 0.7:
			e := g.Edge(rng.Intn(g.M()))
			if used[[2]int{e.U, e.V}] {
				continue
			}
			used[[2]int{e.U, e.V}] = true
			batch = append(batch, graphspar.Reweight(e.U, e.V, e.W*(0.5+rng.Float64())))
		default:
			e := g.Edge(rng.Intn(g.M()))
			if used[[2]int{e.U, e.V}] {
				continue
			}
			used[[2]int{e.U, e.V}] = true
			batch = append(batch, graphspar.Delete(e.U, e.V))
		}
	}
	return batch
}

func main() {
	// 1. A workload: a power-grid-style mesh whose topology evolves
	// (line additions, outages, conductance changes).
	g, err := graphspar.LoadGraph("grid:60x60:uniform", 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d vertices, %d edges\n", g.N(), g.M())

	// 2. Build the stream: one full sparsification plus the retained
	// probe embedding that later batches are scored against.
	const sigmaSq = 80
	s, err := graphspar.New(graphspar.WithSigma2(sigmaSq), graphspar.WithSeed(42))
	if err != nil {
		log.Fatal(err)
	}
	t0 := time.Now()
	st, err := s.Maintain(context.Background(), g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial sparsifier: %d edges, verified κ = %.1f (target %d) in %s\n",
		st.Sparsifier().M(), st.Cond(), sigmaSq, time.Since(t0).Round(time.Millisecond))

	// 3. Replay a random update stream in small batches. After every
	// accepted batch the certificate is re-verified; deletes that would
	// disconnect the graph come back as typed errors and change nothing.
	rng := vecmath.NewRNG(7)
	var incremental time.Duration
	applied, rejected := 0, 0
	for i := 0; i < 20; i++ {
		batch := randomBatch(st.Graph(), rng, 4)
		tb := time.Now()
		err := st.Apply(context.Background(), batch)
		incremental += time.Since(tb)
		switch {
		case errors.Is(err, graphspar.ErrWouldDisconnect):
			rejected++
			continue
		case err != nil:
			log.Fatal(err)
		}
		applied++
	}
	stats := st.Stats()
	fmt.Printf("stream: %d batches applied, %d rejected; %d inserts admitted, %d tree repairs, %d refilter rounds, %d rebuilds\n",
		applied, rejected, stats.InsertsAdmitted, stats.TreeRepairs, stats.Refilters, stats.Rebuilds)
	fmt.Printf("after stream: %d graph edges, %d sparsifier edges, verified κ = %.1f\n",
		st.Graph().M(), st.Sparsifier().M(), st.Cond())
	perBatch := incremental / 20
	fmt.Printf("incremental cost: %s/batch\n", perBatch.Round(time.Microsecond))

	// 4. The alternative: re-sparsifying the final graph from scratch.
	tf := time.Now()
	res, err := s.Run(context.Background(), st.Graph())
	if err != nil && !errors.Is(err, graphspar.ErrNoTarget) {
		log.Fatal(err)
	}
	full := time.Since(tf)
	fmt.Printf("from-scratch re-sparsify: %d edges in %s — %.1fx the per-batch incremental cost\n",
		res.Sparsifier.M(), full.Round(time.Millisecond), float64(full)/float64(perBatch))
}
