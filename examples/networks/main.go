// networks sparsifies complex (social/data) networks at σ² ≈ 100 and
// reports edge reduction, λmax reduction, and eigensolver acceleration —
// the Table 4 workflow on a co-authorship proxy and a dense random graph.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	"graphspar"
	"graphspar/internal/eig"
	"graphspar/internal/gen"
	"graphspar/internal/pcg"
)

func main() {
	coauth, err := gen.Coauthorship(12000, 3, 0.4, 31)
	if err != nil {
		log.Fatal(err)
	}
	dense, err := gen.DenseRandom(4000, 80, 37)
	if err != nil {
		log.Fatal(err)
	}
	for _, c := range []struct {
		name string
		g    *graphspar.Graph
	}{{"coAuthorsDBLP-proxy", coauth}, {"appu-proxy (dense random)", dense}} {
		run(c.name, c.g)
	}
}

func run(name string, g *graphspar.Graph) {
	fmt.Printf("%s: |V|=%d |E|=%d\n", name, g.N(), g.M())
	s, err := graphspar.New(graphspar.WithSigma2(100), graphspar.WithSeed(3))
	if err != nil {
		log.Fatal(err)
	}
	t0 := time.Now()
	res, err := s.Run(context.Background(), g)
	if err != nil && !errors.Is(err, graphspar.ErrNoTarget) {
		log.Fatal(err)
	}
	fmt.Printf("  sparsified in %s: %d edges (%.1fx reduction), σ²=%.1f\n",
		time.Since(t0).Round(time.Millisecond),
		res.Sparsifier.M(), float64(g.M())/float64(res.Sparsifier.M()), res.SigmaSqAchieved)

	// First 10 eigenvectors: original (PCG pseudoinverse) vs sparsifier
	// (direct factorization).
	k := 10
	orig := &eig.PCGSolver{G: g, M: pcg.NewJacobi(g), Tol: 1e-8, MaxIter: 4 * g.N()}
	t1 := time.Now()
	if _, _, err := eig.SmallestPairs(g, k, orig, 40, 5); err != nil {
		log.Fatal(err)
	}
	tOrig := time.Since(t1)

	chol, err := pcg.NewCholPrecond(res.Sparsifier)
	if err != nil {
		log.Fatal(err)
	}
	t2 := time.Now()
	if _, _, err := eig.SmallestPairs(res.Sparsifier, k, chol.S, 40, 5); err != nil {
		log.Fatal(err)
	}
	tSparse := time.Since(t2)
	fmt.Printf("  first %d eigenvectors: original %s vs sparsified %s (%.1fx faster)\n\n",
		k, tOrig.Round(time.Millisecond), tSparse.Round(time.Millisecond),
		float64(tOrig)/float64(tSparse))
}
