// clustering runs k-way spectral clustering on a planted-partition
// (stochastic block model) graph, on the original Laplacian and on
// similarity-aware sparsifiers of decreasing fidelity — showing how the
// σ² knob trades cluster recovery against graph size (§1's data-mining
// motivation combined with §4.4's simplification).
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"os"
	"text/tabwriter"
	"time"

	"graphspar"
	"graphspar/internal/cholesky"
	"graphspar/internal/cluster"
	"graphspar/internal/gen"
	"graphspar/internal/pcg"
)

func main() {
	const k = 5
	g, truth, err := gen.SBM(k, 200, 0.25, 0.01, 13)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SBM: %d blocks x 200 vertices, |E|=%d\n\n", k, g.M())

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "graph\t|E|\tσ² achieved\taccuracy\ttime")

	// Reference: cluster the original graph.
	t0 := time.Now()
	ls, err := cholesky.NewLapSolver(g)
	if err != nil {
		log.Fatal(err)
	}
	ref, err := cluster.SpectralKMeans(g, ls, cluster.Options{K: k, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	accRef, err := cluster.Agreement(ref.Labels, truth, k)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(tw, "original\t%d\t—\t%.3f\t%s\n", g.M(), accRef, time.Since(t0).Round(time.Millisecond))

	for _, s2 := range []float64{5, 20, 100} {
		t1 := time.Now()
		spar, err := graphspar.New(graphspar.WithSigma2(s2), graphspar.WithSeed(3))
		if err != nil {
			log.Fatal(err)
		}
		sp, err := spar.Run(context.Background(), g)
		if err != nil && !errors.Is(err, graphspar.ErrNoTarget) {
			log.Fatal(err)
		}
		chol, err := pcg.NewCholPrecond(sp.Sparsifier)
		if err != nil {
			log.Fatal(err)
		}
		res, err := cluster.SpectralKMeans(sp.Sparsifier, chol.S, cluster.Options{K: k, Seed: 5})
		if err != nil {
			log.Fatal(err)
		}
		acc, err := cluster.Agreement(res.Labels, truth, k)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(tw, "sparsifier σ²=%.0f\t%d\t%.1f\t%.3f\t%s\n",
			s2, sp.Sparsifier.M(), sp.SigmaSqAchieved, acc, time.Since(t1).Round(time.Millisecond))
	}
	tw.Flush()
	fmt.Println("\nTighter σ² keeps more of the spectrum → higher recovery; looser σ² trades accuracy for size.")
}
