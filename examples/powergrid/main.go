// powergrid analyzes IR drop in a multi-layer on-chip power delivery
// network — the VLSI application class ([9, 23]) the paper's introduction
// motivates. Many current-load vectors (workload scenarios) are solved
// against the same grid, which is exactly the multiple-RHS regime where a
// strong sparsifier preconditioner pays off: sparsify once, reuse the
// factorization across all scenarios.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"math"
	"time"

	"graphspar"
	"graphspar/internal/gen"
	"graphspar/internal/pcg"
	"graphspar/internal/vecmath"
)

func main() {
	const (
		rows, cols, layers = 60, 60, 3
		scenarios          = 8
		sigmaSq            = 50.0
	)
	g, err := gen.PowerGrid(rows, cols, layers, 19)
	if err != nil {
		log.Fatal(err)
	}
	n := g.N()
	fmt.Printf("PDN: %d layers of %dx%d, |V|=%d |E|=%d\n", layers, rows, cols, n, g.M())

	// Sparsify once.
	s, err := graphspar.New(graphspar.WithSigma2(sigmaSq), graphspar.WithSeed(7))
	if err != nil {
		log.Fatal(err)
	}
	t0 := time.Now()
	res, err := s.Run(context.Background(), g)
	if err != nil && !errors.Is(err, graphspar.ErrNoTarget) {
		log.Fatal(err)
	}
	m, err := pcg.NewCholPrecond(res.Sparsifier)
	if err != nil {
		log.Fatal(err)
	}
	setup := time.Since(t0)
	fmt.Printf("sparsifier: |Es|/|V|=%.3f σ²=%.1f, setup %s\n\n",
		res.Density(), res.SigmaSqAchieved, setup.Round(time.Millisecond))

	// Each scenario: random current draws on the bottom layer (devices),
	// return through the top layer (pads). Voltage v solves L v = i.
	rng := vecmath.NewRNG(3)
	bottom := rows * cols
	var totalIters int
	var totalPlain int
	var tPre, tPlain time.Duration
	worst := 0.0
	for s := 0; s < scenarios; s++ {
		i := make([]float64, n)
		var drawn float64
		for v := 0; v < bottom; v++ {
			if rng.Float64() < 0.3 {
				c := rng.Float64()
				i[v] = -c
				drawn += c
			}
		}
		// Pads on the top layer supply the drawn current uniformly.
		top := n - bottom
		for v := top; v < n; v++ {
			i[v] = drawn / float64(bottom)
		}
		vecmath.Deflate(i)

		x := make([]float64, n)
		t1 := time.Now()
		r, err := pcg.SolveLaplacian(g, m, x, append([]float64(nil), i...), 1e-8, 10*n)
		if err != nil {
			log.Fatal(err)
		}
		tPre += time.Since(t1)
		totalIters += r.Iterations

		x2 := make([]float64, n)
		t2 := time.Now()
		r2, err := pcg.SolveLaplacian(g, nil, x2, append([]float64(nil), i...), 1e-8, 20*n)
		if err != nil {
			log.Fatal(err)
		}
		tPlain += time.Since(t2)
		totalPlain += r2.Iterations

		// IR drop: worst potential difference between any pad and device.
		minV, maxV := math.Inf(1), math.Inf(-1)
		for v := 0; v < bottom; v++ {
			if x[v] < minV {
				minV = x[v]
			}
		}
		for v := top; v < n; v++ {
			if x[v] > maxV {
				maxV = x[v]
			}
		}
		if drop := maxV - minV; drop > worst {
			worst = drop
		}
	}
	fmt.Printf("%d load scenarios solved to 1e-8:\n", scenarios)
	fmt.Printf("  PCG[sparsifier]: %4d total iterations, %s\n", totalIters, tPre.Round(time.Millisecond))
	fmt.Printf("  CG[plain]:       %4d total iterations, %s\n", totalPlain, tPlain.Round(time.Millisecond))
	fmt.Printf("  speedup: %.1fx iterations, %.1fx time (setup amortizes over scenarios)\n",
		float64(totalPlain)/float64(totalIters), float64(tPlain)/float64(tPre))
	fmt.Printf("worst-case IR drop across scenarios: %.4g (arbitrary units)\n", worst)
}
