// filtering demonstrates the graph-signal-processing view of §3.4: the
// Joule-heat edge ranking with σ² thresholds (Fig. 2), the sparsifier as a
// low-pass filter, and spectral drawings of an airfoil-proxy mesh and its
// sparsifier (Fig. 1).
package main

import (
	"context"
	"errors"
	"fmt"
	"log"

	"graphspar"
	"graphspar/internal/cholesky"
	"graphspar/internal/gsp"
	"graphspar/internal/vecmath"
)

func main() {
	// --- Fig. 2: heat spectrum with similarity-aware thresholds.
	g, err := graphspar.LoadGraph("grid:80x80:uniform", 17)
	if err != nil {
		log.Fatal(err)
	}
	norm, ths, err := graphspar.HeatSpectrum(g, 1, 0, []float64{100, 500}, graphspar.TreeMaxWeight, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("heat spectrum of a G2-circuit-style grid (|E_off|=%d):\n", len(norm))
	fmt.Printf("  top heats: %.3g %.3g %.3g %.3g ...\n", norm[0], norm[1], norm[2], norm[3])
	for i, s2 := range []float64{100, 500} {
		count := 0
		for _, v := range norm {
			if v >= ths[i] {
				count++
			}
		}
		fmt.Printf("  θ(σ²=%.0f) = %.3e → keeps %d off-tree edges\n", s2, ths[i], count)
	}

	// --- §3.4: the sparsifier behaves as a low-pass filter.
	s20, err := graphspar.New(graphspar.WithSigma2(20), graphspar.WithSeed(5))
	if err != nil {
		log.Fatal(err)
	}
	res, err := s20.Run(context.Background(), g)
	if err != nil && !errors.Is(err, graphspar.ErrNoTarget) {
		log.Fatal(err)
	}
	s := make([]float64, g.N())
	vecmath.NewRNG(9).FillNormal(s)
	rel, err := gsp.FilterAgreement(g, res.Sparsifier, s, 10)
	if err != nil {
		log.Fatal(err)
	}
	tree, err := g.SubgraphEdges(res.TreeEdgeIDs)
	if err != nil {
		log.Fatal(err)
	}
	relTree, err := gsp.FilterAgreement(g, tree, s, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nTikhonov low-pass agreement with G (relative L2 error):\n")
	fmt.Printf("  σ²=20 sparsifier: %.3f   bare spanning tree: %.3f\n", rel, relTree)

	// --- Fig. 1: spectral drawings stay aligned.
	air, err := graphspar.LoadGraph("annulus:12x40", 3)
	if err != nil {
		log.Fatal(err)
	}
	s3, err := graphspar.New(graphspar.WithSigma2(20), graphspar.WithSeed(3))
	if err != nil {
		log.Fatal(err)
	}
	ares, err := s3.Run(context.Background(), air)
	if err != nil && !errors.Is(err, graphspar.ErrNoTarget) {
		log.Fatal(err)
	}
	lsG, err := cholesky.NewLapSolver(air)
	if err != nil {
		log.Fatal(err)
	}
	lsP, err := cholesky.NewLapSolver(ares.Sparsifier)
	if err != nil {
		log.Fatal(err)
	}
	dg, err := gsp.SpectralDrawing(air, lsG, 7)
	if err != nil {
		log.Fatal(err)
	}
	dp, err := gsp.SpectralDrawing(ares.Sparsifier, lsP, 7)
	if err != nil {
		log.Fatal(err)
	}
	corr, err := gsp.DrawingCorrelation(dg, dp)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nairfoil-proxy drawings: |E| %d → %d, layout correlation %.3f\n",
		air.M(), ares.Sparsifier.M(), corr)
	fmt.Println("(dump coordinates with: go run ./cmd/experiments -fig 1 -coords)")
}
