// Sharded: sparsify a large mesh shard-parallel through the graphspar
// facade and compare the phases against what a single-shot run would
// cost — the quickstart for scaling sparsification with cores.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"graphspar"
)

func main() {
	// A mesh-like workload: sharding shines on graphs with small balanced
	// cuts (grids, meshes, circuits). See the README for when it hurts.
	g, err := graphspar.LoadGraph("grid:192x192:uniform", 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d vertices, %d edges\n", g.N(), g.M())

	// Single-shot reference: WithShards(1) pins the plain pipeline.
	single, err := graphspar.New(
		graphspar.WithSigma2(100), graphspar.WithSeed(7), graphspar.WithShards(1))
	if err != nil {
		log.Fatal(err)
	}
	sres, err := single.Run(context.Background(), g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("single-shot: %d edges, σ²=%.1f in %s\n",
		sres.Sparsifier.M(), sres.SigmaSqAchieved, sres.Timings.Sparsify.Round(time.Millisecond))

	// Shard-parallel: 4-way partition, concurrent shard sparsification,
	// stitch + cut recovery, independent verification.
	sharded, err := graphspar.New(
		graphspar.WithSigma2(100), graphspar.WithSeed(7), graphspar.WithShards(4))
	if err != nil {
		log.Fatal(err)
	}
	res, err := sharded.Run(context.Background(), g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sharded:     %d edges, verified κ=%.1f in %s\n",
		res.Sparsifier.M(), res.VerifiedCond, res.Timings.Wall.Round(time.Millisecond))
	fmt.Printf("  partition %s | shards %s wall (%s cpu, %.2fx parallel) | stitch %s | verify %s\n",
		res.Timings.Partition.Round(time.Millisecond),
		res.Timings.Shard.Round(time.Millisecond), res.Timings.ShardCPU.Round(time.Millisecond), res.Speedup(),
		res.Timings.Stitch.Round(time.Millisecond), res.Timings.Verify.Round(time.Millisecond))
	fmt.Printf("  cut: %d edges crossed the partition, %d stitched for connectivity, %d recovered\n",
		res.CutEdges, res.StitchedCut, res.RecoveredCut)
	for _, s := range res.Shards {
		fmt.Printf("  shard %d: %d/%d edges kept, σ²=%.1f, %d rounds, %s\n",
			s.Shard, s.Kept, s.Edges, s.SigmaSqAchieved, len(s.Rounds), s.Duration.Round(time.Millisecond))
	}
	compute := res.Timings.Wall - res.Timings.Verify
	fmt.Printf("speedup vs single-shot (excluding verification): %.2fx\n",
		float64(sres.Timings.Sparsify)/float64(compute))
}
