// Sharded: sparsify a large mesh shard-parallel with internal/engine and
// compare the phases against what a single-shot run would cost — the
// quickstart for scaling sparsification with cores.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"graphspar/internal/core"
	"graphspar/internal/engine"
	"graphspar/internal/gen"
)

func main() {
	// A mesh-like workload: sharding shines on graphs with small balanced
	// cuts (grids, meshes, circuits). See the README for when it hurts.
	g, err := gen.Grid2D(192, 192, gen.UniformWeights, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d vertices, %d edges\n", g.N(), g.M())

	// Single-shot reference.
	t0 := time.Now()
	single, err := core.Sparsify(g, core.Options{SigmaSq: 100, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	singleDur := time.Since(t0)
	fmt.Printf("single-shot: %d edges, σ²=%.1f in %s\n",
		single.Sparsifier.M(), single.SigmaSqAchieved, singleDur.Round(time.Millisecond))

	// Shard-parallel: 4-way partition, concurrent shard sparsification,
	// stitch + cut recovery, independent verification.
	res, err := engine.Run(context.Background(), g, engine.Options{
		Shards:   4,
		Sparsify: core.Options{SigmaSq: 100},
		Seed:     7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sharded:     %d edges, verified κ=%.1f in %s\n",
		res.Sparsifier.M(), res.VerifiedCond, res.WallTime.Round(time.Millisecond))
	fmt.Printf("  partition %s | shards %s wall (%s cpu, %.2fx parallel) | stitch %s | verify %s\n",
		res.PartitionTime.Round(time.Millisecond),
		res.ShardWall.Round(time.Millisecond), res.ShardCPU.Round(time.Millisecond), res.Speedup(),
		res.StitchTime.Round(time.Millisecond), res.VerifyTime.Round(time.Millisecond))
	fmt.Printf("  cut: %d edges crossed the partition, %d stitched for connectivity, %d recovered\n",
		res.CutEdges, res.StitchedCut, res.RecoveredCut)
	for _, s := range res.Shards {
		fmt.Printf("  shard %d: %d/%d edges kept, σ²=%.1f, %d rounds, %s\n",
			s.Shard, s.Kept, s.Edges, s.SigmaSqAchieved, len(s.Rounds), s.Duration.Round(time.Millisecond))
	}
	compute := res.WallTime - res.VerifyTime
	fmt.Printf("speedup vs single-shot (excluding verification): %.2fx\n",
		float64(singleDur)/float64(compute))
}
