// sddsolver sweeps the similarity target σ² and shows the Table 2
// trade-off on a circuit-style grid: tighter similarity keeps more edges
// but converges in fewer PCG iterations.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"os"
	"text/tabwriter"
	"time"

	"graphspar"
	"graphspar/internal/pcg"
	"graphspar/internal/vecmath"
)

func main() {
	g, err := graphspar.LoadGraph("grid:150x150:uniform", 11)
	if err != nil {
		log.Fatal(err)
	}
	n := g.N()
	fmt.Printf("G3_circuit-style grid: |V|=%d |E|=%d, solving to 1e-3\n\n", n, g.M())

	b := make([]float64, n)
	vecmath.NewRNG(3).FillNormal(b)
	vecmath.Deflate(b)

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "σ² target\tσ² achieved\t|Es|/|V|\tsparsify\tPCG iters\tsolve time")
	for _, s2 := range []float64{25, 50, 100, 200, 400} {
		s, err := graphspar.New(graphspar.WithSigma2(s2), graphspar.WithSeed(5))
		if err != nil {
			log.Fatal(err)
		}
		t0 := time.Now()
		res, err := s.Run(context.Background(), g)
		if err != nil && !errors.Is(err, graphspar.ErrNoTarget) {
			log.Fatal(err)
		}
		tSpar := time.Since(t0)

		m, err := pcg.NewCholPrecond(res.Sparsifier)
		if err != nil {
			log.Fatal(err)
		}
		x := make([]float64, n)
		t1 := time.Now()
		sol, err := pcg.SolveLaplacian(g, m, x, append([]float64(nil), b...), 1e-3, 10*n)
		if err != nil {
			log.Fatal(err)
		}
		tSolve := time.Since(t1)
		fmt.Fprintf(tw, "%.0f\t%.1f\t%.3f\t%s\t%d\t%s\n",
			s2, res.SigmaSqAchieved, res.Density(),
			tSpar.Round(time.Millisecond), sol.Iterations, tSolve.Round(time.Millisecond))
	}
	tw.Flush()
	fmt.Println("\nSmaller σ² → more edges kept → fewer PCG iterations (the paper's Table 2 trade-off).")
}
