// Quickstart: sparsify a graph to a guaranteed spectral similarity with
// the public graphspar API and use the result as a PCG preconditioner —
// the end-to-end tour in ~60 lines.
package main

import (
	"context"
	"fmt"
	"log"

	"graphspar"
	"graphspar/internal/pcg"
	"graphspar/internal/vecmath"
)

func main() {
	// 1. A workload: a 2D circuit-style grid with random conductances.
	// LoadGraph accepts a generator spec or a MatrixMarket file path.
	g, err := graphspar.LoadGraph("grid:120x120:uniform", 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d vertices, %d edges\n", g.N(), g.M())

	// 2. Sparsify with a guaranteed relative condition number σ² ≤ 100.
	s, err := graphspar.New(graphspar.WithSigma2(100), graphspar.WithSeed(42))
	if err != nil {
		log.Fatal(err)
	}
	res, err := s.Run(context.Background(), g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sparsifier: %d edges (density %.3f), σ² achieved %.1f\n",
		res.Sparsifier.M(), res.Density(), res.SigmaSqAchieved)
	fmt.Printf("backbone tree stretch: %.3e; off-tree edges recovered: %d\n",
		res.TotalStretch, len(res.OffTreeAddedIDs))

	// 3. Solve L_G x = b with the sparsifier as preconditioner. (The PCG
	// solver layer is not part of the facade; any solver that accepts a
	// graph Laplacian works with Result.Sparsifier.)
	precond, err := pcg.NewCholPrecond(res.Sparsifier)
	if err != nil {
		log.Fatal(err)
	}
	b := make([]float64, g.N())
	vecmath.NewRNG(7).FillNormal(b)
	vecmath.Deflate(b)

	x := make([]float64, g.N())
	sol, err := pcg.SolveLaplacian(g, precond, x, append([]float64(nil), b...), 1e-6, 1000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PCG[sparsifier]: %d iterations to 1e-6\n", sol.Iterations)

	// 4. Compare with plain CG on the same system.
	x2 := make([]float64, g.N())
	plain, err := pcg.SolveLaplacian(g, nil, x2, append([]float64(nil), b...), 1e-6, 10*g.N())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CG[none]:        %d iterations to 1e-6 (%.1fx more)\n",
		plain.Iterations, float64(plain.Iterations)/float64(sol.Iterations))
}
