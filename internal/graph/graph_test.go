package graph

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"graphspar/internal/vecmath"
)

// path4 is the path graph 0-1-2-3 with unit weights.
func path4(t *testing.T) *Graph {
	t.Helper()
	g, err := New(4, []Edge{{0, 1, 1}, {1, 2, 1}, {2, 3, 1}})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewNormalizesAndMerges(t *testing.T) {
	g, err := New(3, []Edge{{1, 0, 2}, {0, 1, 3}, {1, 2, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 2 {
		t.Fatalf("M = %d, want 2 (parallel edges merged)", g.M())
	}
	e := g.Edge(0)
	if e.U != 0 || e.V != 1 || e.W != 5 {
		t.Fatalf("merged edge = %+v, want {0 1 5}", e)
	}
}

func TestNewRejectsSelfLoop(t *testing.T) {
	_, err := New(2, []Edge{{1, 1, 1}})
	if !errors.Is(err, ErrSelfLoop) {
		t.Fatalf("err = %v, want ErrSelfLoop", err)
	}
}

func TestNewRejectsOutOfRange(t *testing.T) {
	_, err := New(2, []Edge{{0, 5, 1}})
	if !errors.Is(err, ErrVertexRange) {
		t.Fatalf("err = %v, want ErrVertexRange", err)
	}
}

func TestNewRejectsBadWeights(t *testing.T) {
	for _, w := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := New(2, []Edge{{0, 1, w}}); !errors.Is(err, ErrBadWeight) {
			t.Fatalf("w=%v: err = %v, want ErrBadWeight", w, err)
		}
	}
}

func TestDegreeAndWeightedDegree(t *testing.T) {
	g, _ := New(3, []Edge{{0, 1, 2}, {0, 2, 3}})
	if g.Degree(0) != 2 || g.Degree(1) != 1 {
		t.Fatalf("degrees wrong: %d %d", g.Degree(0), g.Degree(1))
	}
	if g.WeightedDegree(0) != 5 {
		t.Fatalf("WeightedDegree(0) = %v, want 5", g.WeightedDegree(0))
	}
	wd := g.WeightedDegrees()
	if wd[0] != 5 || wd[1] != 2 || wd[2] != 3 {
		t.Fatalf("WeightedDegrees = %v", wd)
	}
}

func TestNeighborsEarlyStop(t *testing.T) {
	g, _ := New(4, []Edge{{0, 1, 1}, {0, 2, 1}, {0, 3, 1}})
	count := 0
	g.Neighbors(0, func(v int, w float64, id int) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Fatalf("early stop failed, visited %d", count)
	}
}

func TestLaplacianMatchesDefinition(t *testing.T) {
	g, _ := New(3, []Edge{{0, 1, 2}, {1, 2, 3}})
	l := g.Laplacian()
	want := [][]float64{
		{2, -2, 0},
		{-2, 5, -3},
		{0, -3, 3},
	}
	d := l.Dense()
	for i := range want {
		for j := range want[i] {
			if d[i][j] != want[i][j] {
				t.Fatalf("L[%d][%d] = %v, want %v", i, j, d[i][j], want[i][j])
			}
		}
	}
	if !l.IsSymmetric(0) {
		t.Fatal("Laplacian must be symmetric")
	}
}

func TestLapMulVecMatchesMatrix(t *testing.T) {
	g, _ := New(5, []Edge{{0, 1, 1}, {1, 2, 2}, {2, 3, 0.5}, {3, 4, 4}, {0, 4, 1.5}})
	l := g.Laplacian()
	x := []float64{1, -2, 3, 0.5, 2}
	y1 := make([]float64, 5)
	y2 := make([]float64, 5)
	g.LapMulVec(y1, x)
	l.MulVec(y2, x)
	for i := range y1 {
		if math.Abs(y1[i]-y2[i]) > 1e-12 {
			t.Fatalf("LapMulVec mismatch at %d: %v vs %v", i, y1[i], y2[i])
		}
	}
}

func TestLapQuadFormEdgeSum(t *testing.T) {
	g := path4(t)
	x := []float64{0, 1, 3, 6}
	// (0-1)² + (1-3)² + (3-6)² = 1 + 4 + 9 = 14
	if got := g.LapQuadForm(x); got != 14 {
		t.Fatalf("LapQuadForm = %v, want 14", got)
	}
}

func TestLaplacianNullSpace(t *testing.T) {
	g := path4(t)
	ones := []float64{1, 1, 1, 1}
	y := make([]float64, 4)
	g.LapMulVec(y, ones)
	for i, v := range y {
		if v != 0 {
			t.Fatalf("L·1 != 0 at %d: %v", i, v)
		}
	}
}

func TestComponents(t *testing.T) {
	g, _ := New(5, []Edge{{0, 1, 1}, {2, 3, 1}})
	labels, c := g.Components()
	if c != 3 {
		t.Fatalf("components = %d, want 3", c)
	}
	if labels[0] != labels[1] || labels[2] != labels[3] || labels[0] == labels[2] || labels[4] == labels[0] {
		t.Fatalf("bad labels %v", labels)
	}
}

func TestIsConnected(t *testing.T) {
	if !path4(t).IsConnected() {
		t.Fatal("path should be connected")
	}
	g, _ := New(3, []Edge{{0, 1, 1}})
	if g.IsConnected() {
		t.Fatal("graph with isolated vertex is not connected")
	}
	empty, _ := New(0, nil)
	if !empty.IsConnected() {
		t.Fatal("empty graph is trivially connected")
	}
}

func TestRequireConnected(t *testing.T) {
	g, _ := New(3, []Edge{{0, 1, 1}})
	if err := g.RequireConnected(); !errors.Is(err, ErrDisconnected) {
		t.Fatalf("err = %v, want ErrDisconnected", err)
	}
	empty, _ := New(0, nil)
	if err := empty.RequireConnected(); !errors.Is(err, ErrEmpty) {
		t.Fatalf("err = %v, want ErrEmpty", err)
	}
	if err := path4(t).RequireConnected(); err != nil {
		t.Fatalf("unexpected err %v", err)
	}
}

func TestSubgraphEdges(t *testing.T) {
	g := path4(t)
	sub, err := g.SubgraphEdges([]int{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if sub.M() != 2 || sub.N() != 4 {
		t.Fatalf("subgraph n=%d m=%d", sub.N(), sub.M())
	}
	if sub.IsConnected() {
		t.Fatal("subgraph {0-1, 2-3} must be disconnected")
	}
	if _, err := g.SubgraphEdges([]int{0, 0}); !errors.Is(err, ErrDuplicateEdge) {
		t.Fatalf("expected ErrDuplicateEdge, got %v", err)
	}
	if _, err := g.SubgraphEdges([]int{99}); err == nil {
		t.Fatal("expected range error")
	}
}

func TestBFSOrder(t *testing.T) {
	g := path4(t)
	order, parent := g.BFSOrder(0)
	if len(order) != 4 || order[0] != 0 {
		t.Fatalf("order = %v", order)
	}
	if parent[0] != -1 || parent[1] != 0 || parent[2] != 1 || parent[3] != 2 {
		t.Fatalf("parent = %v", parent)
	}
}

func TestBFSOrderUnreachable(t *testing.T) {
	g, _ := New(3, []Edge{{0, 1, 1}})
	order, parent := g.BFSOrder(0)
	if len(order) != 2 {
		t.Fatalf("order should only cover reachable vertices, got %v", order)
	}
	if parent[2] != -1 {
		t.Fatalf("unreachable parent = %d, want -1", parent[2])
	}
}

func TestHasEdgeAndIndex(t *testing.T) {
	g := path4(t)
	if !g.HasEdge(1, 0) || g.HasEdge(0, 2) || g.HasEdge(1, 1) {
		t.Fatal("HasEdge wrong")
	}
	idx := g.EdgeIndex()
	if idx[[2]int{1, 2}] != 1 {
		t.Fatalf("EdgeIndex = %v", idx)
	}
}

func TestAddEdges(t *testing.T) {
	g := path4(t)
	g2, err := g.AddEdges([]Edge{{0, 3, 2}, {0, 1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if g2.M() != 4 {
		t.Fatalf("M = %d, want 4", g2.M())
	}
	// Original untouched.
	if g.M() != 3 {
		t.Fatal("AddEdges must not mutate receiver")
	}
	// Parallel edge merged.
	if g2.Edge(0).W != 2 {
		t.Fatalf("merged weight = %v, want 2", g2.Edge(0).W)
	}
}

func TestTotalWeight(t *testing.T) {
	g, _ := New(3, []Edge{{0, 1, 2}, {1, 2, 3.5}})
	if g.TotalWeight() != 5.5 {
		t.Fatalf("TotalWeight = %v", g.TotalWeight())
	}
}

// Property: Laplacian quadratic form is nonnegative (PSD) and zero only
// for constant x on connected graphs.
func TestQuickLaplacianPSD(t *testing.T) {
	f := func(seed uint64) bool {
		rng := vecmath.NewRNG(seed)
		n := 2 + rng.Intn(20)
		// Random connected graph: path + random extra edges.
		var es []Edge
		for i := 0; i+1 < n; i++ {
			es = append(es, Edge{i, i + 1, 0.1 + rng.Float64()})
		}
		for k := 0; k < n; k++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				es = append(es, Edge{u, v, 0.1 + rng.Float64()})
			}
		}
		g, err := New(n, es)
		if err != nil {
			return false
		}
		x := make([]float64, n)
		rng.FillNormal(x)
		if g.LapQuadForm(x) < -1e-12 {
			return false
		}
		c := make([]float64, n)
		for i := range c {
			c[i] = 3.7
		}
		return math.Abs(g.LapQuadForm(c)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: row sums of the Laplacian are zero.
func TestQuickLaplacianRowSums(t *testing.T) {
	f := func(seed uint64) bool {
		rng := vecmath.NewRNG(seed)
		n := 2 + rng.Intn(15)
		var es []Edge
		for k := 0; k < 2*n; k++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				es = append(es, Edge{u, v, 0.5 + rng.Float64()})
			}
		}
		g, err := New(n, es)
		if err != nil {
			return false
		}
		l := g.Laplacian()
		d := l.Dense()
		for i := 0; i < n; i++ {
			var s float64
			for j := 0; j < n; j++ {
				s += d[i][j]
			}
			if math.Abs(s) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
