// Package graph defines the weighted undirected graph representation used
// by every graphspar subsystem, along with its Laplacian export (eq. 1 of
// the paper), adjacency structure, connectivity queries and subgraph
// extraction.
//
// Vertices are dense integers 0..n-1. Edges are stored once (u < v) in an
// edge list; a CSR-style adjacency index is built lazily and cached, so the
// zero-cost path for algorithms that only stream edges stays cheap.
package graph

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"graphspar/internal/sparse"
)

// Common error conditions surfaced by constructors and validators.
var (
	ErrVertexRange   = errors.New("graph: vertex out of range")
	ErrSelfLoop      = errors.New("graph: self loop")
	ErrBadWeight     = errors.New("graph: edge weight must be positive and finite")
	ErrDisconnected  = errors.New("graph: graph is not connected")
	ErrEmpty         = errors.New("graph: graph has no vertices")
	ErrDuplicateEdge = errors.New("graph: duplicate edge")
)

// Edge is an undirected weighted edge with U < V.
type Edge struct {
	U, V int
	W    float64
}

// Graph is an undirected weighted graph. Construct with New or Builder
// functions; the zero value is an empty graph with no vertices. A Graph
// is immutable after construction and safe for concurrent readers: the
// lazily built adjacency index and Laplacian export are each guarded by
// a sync.Once, so one Graph may be shared between the service registry,
// job workers and a resident maintainer session without external
// locking.
//
// Immutability is also what makes sharing cheap: derived graphs
// (AddEdges with no extras, registry snapshots, session views) may
// alias the same backing edge slice instead of copying it. The contract
// is copy-on-write — any operation that would change the edge set
// builds a new slice and a new Graph, never writes through a shared
// one.
type Graph struct {
	n     int
	edges []Edge

	// Lazily built adjacency: for vertex u, neighbors are
	// adjTo[adjPtr[u]:adjPtr[u+1]] with parallel edge ids adjEdge.
	adjOnce sync.Once
	adjPtr  []int
	adjTo   []int
	adjEdge []int

	// Lazily built Laplacian CSR (eq. 1); immutable once published.
	lapOnce sync.Once
	lap     *sparse.CSR
}

// New builds a graph with n vertices from the given edges. Edges may be
// listed in either orientation; they are normalized to U < V. Duplicate
// edges (same endpoints) have their weights summed, matching how parallel
// resistors/conductances combine in the circuit interpretation.
// Self loops and non-positive or non-finite weights are rejected.
func New(n int, edges []Edge) (*Graph, error) {
	if n < 0 {
		return nil, fmt.Errorf("%w: negative vertex count %d", ErrVertexRange, n)
	}
	norm, err := normalizeEdges(n, edges)
	if err != nil {
		return nil, err
	}
	merged := norm[:0]
	for _, e := range norm {
		k := len(merged)
		if k > 0 && merged[k-1].U == e.U && merged[k-1].V == e.V {
			merged[k-1].W += e.W
		} else {
			merged = append(merged, e)
		}
	}
	g := &Graph{n: n, edges: append([]Edge(nil), merged...)}
	return g, nil
}

// normalizeEdges validates every edge against the shared constructor
// rules (range, no self loops, positive finite weight), flips each to
// U < V, and returns a fresh (U,V)-sorted slice. Duplicates survive;
// callers merge them.
func normalizeEdges(n int, edges []Edge) ([]Edge, error) {
	norm := make([]Edge, 0, len(edges))
	for _, e := range edges {
		if e.U == e.V {
			return nil, fmt.Errorf("%w: (%d,%d)", ErrSelfLoop, e.U, e.V)
		}
		if e.U < 0 || e.U >= n || e.V < 0 || e.V >= n {
			return nil, fmt.Errorf("%w: (%d,%d) with n=%d", ErrVertexRange, e.U, e.V, n)
		}
		if !(e.W > 0) || e.W > 1e300 {
			return nil, fmt.Errorf("%w: w(%d,%d)=%v", ErrBadWeight, e.U, e.V, e.W)
		}
		if e.U > e.V {
			e.U, e.V = e.V, e.U
		}
		norm = append(norm, e)
	}
	sort.Slice(norm, func(i, j int) bool {
		if norm[i].U != norm[j].U {
			return norm[i].U < norm[j].U
		}
		return norm[i].V < norm[j].V
	})
	return norm, nil
}

// MustNew is New but panics on error; for tests and generators whose inputs
// are valid by construction.
func MustNew(n int, edges []Edge) *Graph {
	g, err := New(n, edges)
	if err != nil {
		panic(err)
	}
	return g
}

// ContentHash content-addresses the graph: sha256 over the vertex count
// and the normalized edge list (New guarantees U < V and (U,V)-sorted
// order, so structurally equal graphs hash equal regardless of the edge
// order they were supplied in). It is the one canonical fingerprint —
// the service registry and the session manager both compare these, so a
// single encoding must back them all.
func (g *Graph) ContentHash() string {
	h := sha256.New()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(g.n))
	h.Write(buf[:])
	for _, e := range g.edges {
		binary.LittleEndian.PutUint64(buf[:], uint64(e.U))
		h.Write(buf[:])
		binary.LittleEndian.PutUint64(buf[:], uint64(e.V))
		h.Write(buf[:])
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(e.W))
		h.Write(buf[:])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// M returns the number of (undirected) edges.
func (g *Graph) M() int { return len(g.edges) }

// Edges returns the internal edge slice, shared and strictly read-only.
//
// Ownership contract: the slice aliases the Graph's backing storage and
// may simultaneously back other Graphs derived from this one (see the
// immutable-share note on Graph). Callers must not mutate, sort, or
// append through it — doing so would corrupt every aliased view and the
// content hash. Use EdgesCopy when a mutable snapshot is needed.
func (g *Graph) Edges() []Edge { return g.edges }

// EdgesCopy returns a defensive copy of the edge list that the caller
// owns and may freely mutate. Prefer Edges on read-only paths — this
// accessor exists for the rare call site that needs to reorder or edit
// edges in place.
func (g *Graph) EdgesCopy() []Edge {
	return append([]Edge(nil), g.edges...)
}

// Edge returns the i-th edge.
func (g *Graph) Edge(i int) Edge { return g.edges[i] }

// TotalWeight returns the sum of all edge weights.
func (g *Graph) TotalWeight() float64 {
	var s float64
	for _, e := range g.edges {
		s += e.W
	}
	return s
}

// buildAdj constructs the CSR adjacency index once; concurrent callers
// synchronize on the Once so the index is published exactly once.
func (g *Graph) buildAdj() {
	g.adjOnce.Do(g.buildAdjLocked)
}

func (g *Graph) buildAdjLocked() {
	ptr := make([]int, g.n+1)
	for _, e := range g.edges {
		ptr[e.U+1]++
		ptr[e.V+1]++
	}
	for i := 0; i < g.n; i++ {
		ptr[i+1] += ptr[i]
	}
	to := make([]int, 2*len(g.edges))
	eid := make([]int, 2*len(g.edges))
	next := make([]int, g.n)
	copy(next, ptr[:g.n])
	for i, e := range g.edges {
		to[next[e.U]], eid[next[e.U]] = e.V, i
		next[e.U]++
		to[next[e.V]], eid[next[e.V]] = e.U, i
		next[e.V]++
	}
	g.adjPtr, g.adjTo, g.adjEdge = ptr, to, eid
}

// Neighbors calls fn(v, w, edgeID) for every edge incident to u.
// Iteration stops early if fn returns false.
func (g *Graph) Neighbors(u int, fn func(v int, w float64, edgeID int) bool) {
	g.buildAdj()
	for k := g.adjPtr[u]; k < g.adjPtr[u+1]; k++ {
		e := g.edges[g.adjEdge[k]]
		if !fn(g.adjTo[k], e.W, g.adjEdge[k]) {
			return
		}
	}
}

// Degree returns the number of edges incident to u.
func (g *Graph) Degree(u int) int {
	g.buildAdj()
	return g.adjPtr[u+1] - g.adjPtr[u]
}

// WeightedDegree returns the sum of weights of edges incident to u — the
// diagonal entry L(u,u) of the Laplacian.
func (g *Graph) WeightedDegree(u int) float64 {
	g.buildAdj()
	var s float64
	for k := g.adjPtr[u]; k < g.adjPtr[u+1]; k++ {
		s += g.edges[g.adjEdge[k]].W
	}
	return s
}

// WeightedDegrees returns all Laplacian diagonal entries at once.
func (g *Graph) WeightedDegrees() []float64 {
	d := make([]float64, g.n)
	for _, e := range g.edges {
		d[e.U] += e.W
		d[e.V] += e.W
	}
	return d
}

// Laplacian exports L_G as defined by eq. 1:
// off-diagonal (p,q) = -w(p,q), diagonal (p,p) = Σ w(p,·).
//
// The CSR is built once and cached behind a sync.Once (the Graph is
// immutable), so repeat exports on a hot graph — e.g. back-to-back jobs
// against the same registry entry — skip the rebuild entirely. The
// returned matrix is shared: callers must treat it as read-only.
func (g *Graph) Laplacian() *sparse.CSR {
	g.lapOnce.Do(func() {
		b := sparse.NewBuilder(g.n, g.n)
		for _, e := range g.edges {
			b.Add(e.U, e.V, -e.W)
			b.Add(e.V, e.U, -e.W)
			b.Add(e.U, e.U, e.W)
			b.Add(e.V, e.V, e.W)
		}
		g.lap = b.Build()
	})
	return g.lap
}

// LapMulVec computes y = L_G x directly from the edge list, without
// materializing the Laplacian — the hot operation inside power iterations.
func (g *Graph) LapMulVec(y, x []float64) {
	if len(x) != g.n || len(y) != g.n {
		panic("graph: LapMulVec dimension mismatch")
	}
	for i := range y {
		y[i] = 0
	}
	for _, e := range g.edges {
		d := x[e.U] - x[e.V]
		y[e.U] += e.W * d
		y[e.V] -= e.W * d
	}
}

// LapQuadForm returns xᵀ L_G x = Σ_(u,v)∈E w(u,v)·(x(u)−x(v))² — the
// Laplacian quadratic form central to spectral similarity (eq. 2).
func (g *Graph) LapQuadForm(x []float64) float64 {
	if len(x) != g.n {
		panic("graph: LapQuadForm dimension mismatch")
	}
	var s float64
	for _, e := range g.edges {
		d := x[e.U] - x[e.V]
		s += e.W * d * d
	}
	return s
}

// Components labels each vertex with a component id (0-based, in order of
// discovery) and returns the labels along with the number of components.
func (g *Graph) Components() (labels []int, count int) {
	g.buildAdj()
	labels = make([]int, g.n)
	for i := range labels {
		labels[i] = -1
	}
	var stack []int
	for s := 0; s < g.n; s++ {
		if labels[s] != -1 {
			continue
		}
		labels[s] = count
		stack = append(stack[:0], s)
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for k := g.adjPtr[u]; k < g.adjPtr[u+1]; k++ {
				v := g.adjTo[k]
				if labels[v] == -1 {
					labels[v] = count
					stack = append(stack, v)
				}
			}
		}
		count++
	}
	return labels, count
}

// IsConnected reports whether the graph is connected (true for the empty
// and single-vertex graphs).
func (g *Graph) IsConnected() bool {
	if g.n <= 1 {
		return true
	}
	_, c := g.Components()
	return c == 1
}

// RequireConnected returns ErrDisconnected unless the graph is connected
// and non-empty; sparsification and solver entry points call this because
// the whole framework (tree backbone, null space handling) assumes it.
func (g *Graph) RequireConnected() error {
	if g.n == 0 {
		return ErrEmpty
	}
	if !g.IsConnected() {
		return ErrDisconnected
	}
	return nil
}

// SubgraphEdges returns a new graph on the same vertex set containing only
// the edges whose ids are listed. Ids must be valid and distinct.
func (g *Graph) SubgraphEdges(edgeIDs []int) (*Graph, error) {
	seen := make(map[int]bool, len(edgeIDs))
	es := make([]Edge, 0, len(edgeIDs))
	for _, id := range edgeIDs {
		if id < 0 || id >= len(g.edges) {
			return nil, fmt.Errorf("graph: edge id %d out of range", id)
		}
		if seen[id] {
			return nil, fmt.Errorf("%w: id %d", ErrDuplicateEdge, id)
		}
		seen[id] = true
		es = append(es, g.edges[id])
	}
	return New(g.n, es)
}

// BFSOrder returns vertices in breadth-first order from root, together
// with each vertex's BFS parent (-1 for root and unreachable vertices).
func (g *Graph) BFSOrder(root int) (order []int, parent []int) {
	g.buildAdj()
	parent = make([]int, g.n)
	visited := make([]bool, g.n)
	for i := range parent {
		parent[i] = -1
	}
	order = make([]int, 0, g.n)
	queue := []int{root}
	visited[root] = true
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		order = append(order, u)
		for k := g.adjPtr[u]; k < g.adjPtr[u+1]; k++ {
			v := g.adjTo[k]
			if !visited[v] {
				visited[v] = true
				parent[v] = u
				queue = append(queue, v)
			}
		}
	}
	return order, parent
}

// EdgeIndex builds a map from normalized (u,v) keys to edge ids, for
// membership tests such as "is this off-tree edge already in the sparsifier".
func (g *Graph) EdgeIndex() map[[2]int]int {
	idx := make(map[[2]int]int, len(g.edges))
	for i, e := range g.edges {
		idx[[2]int{e.U, e.V}] = i
	}
	return idx
}

// HasEdge reports whether an edge between u and v exists.
func (g *Graph) HasEdge(u, v int) bool {
	if u == v {
		return false
	}
	if u > v {
		u, v = v, u
	}
	g.buildAdj()
	found := false
	g.Neighbors(u, func(nb int, _ float64, _ int) bool {
		if nb == v {
			found = true
			return false
		}
		return true
	})
	return found
}

// AddEdges returns a new graph with extra edges appended (weights of
// coincident edges merge). The receiver is unchanged.
//
// The receiver's edge list is already sorted and deduplicated, so only
// the extras are sorted and the two lists merge in O(m+k log k) — the
// densification loop in core calls this once per round, and the old
// copy-everything-and-resort path dominated its profile. With no extras
// the receiver's edge slice is shared outright (immutable-share, see
// the Graph doc).
func (g *Graph) AddEdges(extra []Edge) (*Graph, error) {
	if len(extra) == 0 {
		return &Graph{n: g.n, edges: g.edges}, nil
	}
	norm, err := normalizeEdges(g.n, extra)
	if err != nil {
		return nil, err
	}
	// Merge duplicates among the extras themselves.
	merged := norm[:0]
	for _, e := range norm {
		k := len(merged)
		if k > 0 && merged[k-1].U == e.U && merged[k-1].V == e.V {
			merged[k-1].W += e.W
		} else {
			merged = append(merged, e)
		}
	}
	// Two-way merge of the sorted lists.
	out := make([]Edge, 0, len(g.edges)+len(merged))
	i, j := 0, 0
	for i < len(g.edges) && j < len(merged) {
		a, b := g.edges[i], merged[j]
		switch {
		case a.U < b.U || (a.U == b.U && a.V < b.V):
			out = append(out, a)
			i++
		case b.U < a.U || (b.U == a.U && b.V < a.V):
			out = append(out, b)
			j++
		default:
			out = append(out, Edge{U: a.U, V: a.V, W: a.W + b.W})
			i++
			j++
		}
	}
	out = append(out, g.edges[i:]...)
	out = append(out, merged[j:]...)
	return &Graph{n: g.n, edges: out}, nil
}

// InducedSubgraph returns the subgraph induced by the given vertex set,
// with vertices renumbered 0..len(vertices)-1 in the given order, plus the
// mapping new→old. Duplicate or out-of-range vertices are rejected.
func (g *Graph) InducedSubgraph(vertices []int) (*Graph, []int, error) {
	toNew := make(map[int]int, len(vertices))
	for newID, old := range vertices {
		if old < 0 || old >= g.n {
			return nil, nil, fmt.Errorf("%w: vertex %d", ErrVertexRange, old)
		}
		if _, dup := toNew[old]; dup {
			return nil, nil, fmt.Errorf("graph: duplicate vertex %d in induced set", old)
		}
		toNew[old] = newID
	}
	var edges []Edge
	for _, e := range g.edges {
		u, okU := toNew[e.U]
		v, okV := toNew[e.V]
		if okU && okV {
			edges = append(edges, Edge{U: u, V: v, W: e.W})
		}
	}
	sub, err := New(len(vertices), edges)
	if err != nil {
		return nil, nil, err
	}
	return sub, append([]int(nil), vertices...), nil
}

// String summarizes the graph for debugging.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{n=%d m=%d}", g.n, len(g.edges))
}
