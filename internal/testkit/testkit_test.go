package testkit

import (
	"errors"
	"testing"

	"graphspar/internal/dynamic"
	"graphspar/internal/vecmath"
)

func TestCasesBuildConnected(t *testing.T) {
	for _, c := range Cases() {
		g, err := c.Build(1)
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		if !g.IsConnected() {
			t.Fatalf("%s: case graphs must be connected", c.Name)
		}
	}
}

func TestRandomBatchIsValidAndDeterministic(t *testing.T) {
	g, err := Cases()[0].Build(1)
	if err != nil {
		t.Fatal(err)
	}
	a := RandomBatch(g, vecmath.NewRNG(9), 5)
	b := RandomBatch(g, vecmath.NewRNG(9), 5)
	if len(a) != len(b) {
		t.Fatalf("determinism: %d vs %d updates", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("determinism: update %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	// Every generated batch must be either applicable or rejected for
	// connectivity only — never for validation reasons.
	if _, err := dynamic.ApplyToGraph(g, a); err != nil && !errors.Is(err, dynamic.ErrWouldDisconnect) {
		t.Fatalf("generated batch invalid: %v", err)
	}
}
