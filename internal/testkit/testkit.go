// Package testkit is the property-test harness shared by the dynamic
// maintainer's randomized suites: a standard set of graph families
// (regular mesh, community-structured, bridge-heavy), a deterministic
// random update-stream generator that tracks the evolving edge set, and
// an independent similarity-certificate check. Tests across packages use
// it to assert the dynamic invariant — after every applied batch the
// verified condition number stays within the σ² target — without each
// re-implementing stream bookkeeping.
package testkit

import (
	"fmt"
	"testing"

	"graphspar/internal/cholesky"
	"graphspar/internal/core"
	"graphspar/internal/dynamic"
	"graphspar/internal/gen"
	"graphspar/internal/graph"
	"graphspar/internal/vecmath"
)

// Case is one graph family instance for property suites.
type Case struct {
	Name  string
	Build func(seed uint64) (*graph.Graph, error)
}

// Cases returns the three families the dynamic suites run over: a 2D
// grid (mesh-like, the paper's main regime), an SBM community graph
// (dense blocks, sparse cuts) and a barbell (every path edge a bridge,
// stressing connectivity handling).
func Cases() []Case {
	return []Case{
		{"grid", func(seed uint64) (*graph.Graph, error) {
			return gen.Grid2D(12, 12, gen.UniformWeights, seed)
		}},
		{"sbm", func(seed uint64) (*graph.Graph, error) {
			g, _, err := gen.SBM(4, 30, 0.25, 0.02, seed)
			return g, err
		}},
		{"barbell", func(seed uint64) (*graph.Graph, error) {
			return gen.Barbell(10, 6, gen.UniformWeights, seed)
		}},
	}
}

// RandomBatch derives one update batch from the *current* graph: a mix of
// inserts (random non-edges), deletes and reweights (random existing
// edges), each edge touched at most once. Deletes may hit bridges — the
// maintainer is expected to reject those batches with ErrWouldDisconnect,
// so streams exercise both the accept and reject paths. Deterministic for
// a given RNG state.
func RandomBatch(g *graph.Graph, rng *vecmath.RNG, size int) []dynamic.Update {
	n := g.N()
	used := make(map[[2]int]bool, size)
	batch := make([]dynamic.Update, 0, size)
	pick := func() (int, int, bool) {
		for tries := 0; tries < 32; tries++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			if u > v {
				u, v = v, u
			}
			if used[[2]int{u, v}] {
				continue
			}
			return u, v, true
		}
		return 0, 0, false
	}
	for len(batch) < size {
		switch r := rng.Float64(); {
		case r < 0.4: // insert a non-edge
			u, v, ok := pick()
			if !ok {
				return batch
			}
			if g.HasEdge(u, v) {
				continue
			}
			used[[2]int{u, v}] = true
			batch = append(batch, dynamic.Insert(u, v, 0.25+1.5*rng.Float64()))
		case r < 0.7: // reweight an existing edge
			e := g.Edge(rng.Intn(g.M()))
			if used[[2]int{e.U, e.V}] {
				continue
			}
			used[[2]int{e.U, e.V}] = true
			batch = append(batch, dynamic.Reweight(e.U, e.V, e.W*(0.5+rng.Float64())))
		default: // delete an existing edge (possibly a bridge)
			e := g.Edge(rng.Intn(g.M()))
			if used[[2]int{e.U, e.V}] {
				continue
			}
			used[[2]int{e.U, e.V}] = true
			batch = append(batch, dynamic.Delete(e.U, e.V))
		}
	}
	return batch
}

// SwitchingSequence derives a deterministic temporal update stream from
// g in the style of power-grid switching sequences (John & Safro,
// arXiv:1601.05527): each batch toggles `size` random edges between
// their base weight and factor×base — breakers opening (weight
// collapses) and re-closing. eligible restricts the toggled edge ids
// (nil = every edge); passing the off-sparsifier ids models switching on
// redundant lines, the regime where a resident maintainer never has to
// refactor. Reweight-only streams never disconnect the graph, so every
// batch applies; the toggle state is tracked per edge so long replays
// keep alternating rather than drifting monotonically.
func SwitchingSequence(g *graph.Graph, rng *vecmath.RNG, batches, size int, factor float64, eligible []int) [][]dynamic.Update {
	if eligible == nil {
		eligible = make([]int, g.M())
		for id := range eligible {
			eligible[id] = id
		}
	} else {
		// Dedupe: the size cap below must count distinct ids or a batch
		// could never fill and the loop would not terminate.
		seen := make(map[int]bool, len(eligible))
		uniq := eligible[:0:0]
		for _, id := range eligible {
			if !seen[id] {
				seen[id] = true
				uniq = append(uniq, id)
			}
		}
		eligible = uniq
	}
	if size > len(eligible) {
		size = len(eligible)
	}
	base := make([]float64, g.M())
	for id := range base {
		base[id] = g.Edge(id).W
	}
	switched := make([]bool, g.M())
	out := make([][]dynamic.Update, 0, batches)
	for b := 0; b < batches; b++ {
		batch := make([]dynamic.Update, 0, size)
		used := make(map[int]bool, size)
		for len(batch) < size {
			id := eligible[rng.Intn(len(eligible))]
			if used[id] {
				continue
			}
			used[id] = true
			e := g.Edge(id)
			w := base[id]
			if !switched[id] {
				w = base[id] * factor
			}
			switched[id] = !switched[id]
			batch = append(batch, dynamic.Reweight(e.U, e.V, w))
		}
		out = append(out, batch)
	}
	return out
}

// VerifyCond independently measures κ(L_G, L_P) with a fresh exact
// factorization of p — the reference check the dynamic invariant is
// stated against.
func VerifyCond(g, p *graph.Graph, seed uint64) (float64, error) {
	solver, err := cholesky.NewLapSolver(p)
	if err != nil {
		return 0, err
	}
	k := 40
	if g.N() < k {
		k = g.N()
	}
	_, _, cond, err := core.VerifySimilarity(g, p, solver, k, seed)
	return cond, err
}

// AssertInvariant fails the test unless the maintained sparsifier is a
// connected subgraph of the graph whose independently verified condition
// number is within sigmaSq.
func AssertInvariant(t *testing.T, m *dynamic.Maintainer, sigmaSq float64) {
	t.Helper()
	g, p := m.Graph(), m.Sparsifier()
	if !p.IsConnected() {
		t.Fatal("testkit: sparsifier must stay connected")
	}
	idx := g.EdgeIndex()
	for _, e := range p.Edges() {
		id, ok := idx[[2]int{e.U, e.V}]
		if !ok || g.Edge(id).W != e.W {
			t.Fatalf("testkit: sparsifier edge (%d,%d,w=%v) is not a graph edge", e.U, e.V, e.W)
		}
	}
	cond, err := VerifyCond(g, p, 0xbeef)
	if err != nil {
		t.Fatalf("testkit: verification failed: %v", err)
	}
	if cond > sigmaSq {
		t.Fatalf("testkit: verified κ = %.2f exceeds σ² = %.1f", cond, sigmaSq)
	}
}

// StreamStats summarizes one randomized stream run.
type StreamStats struct {
	Applied  int // batches accepted
	Rejected int // batches rejected with ErrWouldDisconnect
}

func (s StreamStats) String() string {
	return fmt.Sprintf("applied=%d rejected=%d", s.Applied, s.Rejected)
}
