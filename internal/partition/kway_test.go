package partition

import (
	"testing"

	"graphspar/internal/gen"
	"graphspar/internal/graph"
)

func TestRecursiveBisectFourBlocks(t *testing.T) {
	// Four cliques in a ring with weak bridges: 4-way partition should
	// recover the cliques.
	k := 6
	var es []graph.Edge
	for b := 0; b < 4; b++ {
		base := b * k
		for i := 0; i < k; i++ {
			for j := i + 1; j < k; j++ {
				es = append(es, graph.Edge{U: base + i, V: base + j, W: 1})
			}
		}
	}
	for b := 0; b < 4; b++ {
		es = append(es, graph.Edge{U: b * k, V: ((b+1)%4)*k + 1, W: 0.01})
	}
	g := graph.MustNew(4*k, es)
	res, err := RecursiveBisect(g, 4, Options{Method: Direct, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Parts != 4 {
		t.Fatalf("parts = %d, want 4", res.Parts)
	}
	// Every clique must be monochromatic.
	for b := 0; b < 4; b++ {
		want := res.Labels[b*k]
		for i := 1; i < k; i++ {
			if res.Labels[b*k+i] != want {
				t.Fatalf("clique %d split: labels %v", b, res.Labels[b*k:b*k+k])
			}
		}
	}
	// Cut weight = the 4 weak bridges.
	if res.CutWeight > 0.05 {
		t.Fatalf("cut weight %v, want 0.04", res.CutWeight)
	}
}

func TestRecursiveBisectGridBalance(t *testing.T) {
	g, err := gen.Grid2D(16, 16, gen.UnitWeights, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RecursiveBisect(g, 4, Options{Method: Direct, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, res.Parts)
	for _, l := range res.Labels {
		counts[l]++
	}
	if res.Parts != 4 {
		t.Fatalf("parts = %d", res.Parts)
	}
	for p, c := range counts {
		if c < 32 || c > 128 {
			t.Fatalf("part %d badly unbalanced: %d of 256", p, c)
		}
	}
}

func TestRecursiveBisectOnePart(t *testing.T) {
	g, _ := gen.Path(10)
	res, err := RecursiveBisect(g, 1, Options{Method: Direct})
	if err != nil {
		t.Fatal(err)
	}
	if res.Parts != 1 || res.CutWeight != 0 {
		t.Fatalf("trivial partition wrong: %+v", res)
	}
	for _, l := range res.Labels {
		if l != 0 {
			t.Fatal("all labels must be 0")
		}
	}
}

func TestRecursiveBisectValidation(t *testing.T) {
	g, _ := gen.Path(10)
	if _, err := RecursiveBisect(g, 0, Options{}); err == nil {
		t.Fatal("parts=0 should fail")
	}
	disc, _ := graph.New(4, []graph.Edge{{U: 0, V: 1, W: 1}, {U: 2, V: 3, W: 1}})
	if _, err := RecursiveBisect(disc, 2, Options{}); err == nil {
		t.Fatal("disconnected should fail")
	}
}

func TestRecursiveBisectIterativeBackend(t *testing.T) {
	g, err := gen.TriMesh(14, 14, gen.UniformWeights, 7)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RecursiveBisect(g, 4, Options{Method: Iterative, SigmaSq: 50, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Parts != 4 {
		t.Fatalf("parts = %d", res.Parts)
	}
	seen := map[int]bool{}
	for _, l := range res.Labels {
		seen[l] = true
	}
	if len(seen) != 4 {
		t.Fatalf("labels use %d parts", len(seen))
	}
}

func TestInducedSubgraph(t *testing.T) {
	g, _ := gen.Cycle(6)
	sub, mapping, err := g.InducedSubgraph([]int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if sub.N() != 3 || sub.M() != 2 {
		t.Fatalf("induced shape n=%d m=%d", sub.N(), sub.M())
	}
	if mapping[0] != 0 || mapping[2] != 2 {
		t.Fatalf("mapping %v", mapping)
	}
	if _, _, err := g.InducedSubgraph([]int{0, 0}); err == nil {
		t.Fatal("duplicate vertex should fail")
	}
	if _, _, err := g.InducedSubgraph([]int{99}); err == nil {
		t.Fatal("range error expected")
	}
}
