package partition

import (
	"errors"
	"fmt"

	"graphspar/internal/graph"
)

// KWayResult reports a recursive k-way partition.
type KWayResult struct {
	// Labels assigns each vertex a part id in 0..Parts-1.
	Labels []int
	Parts  int
	// CutWeight is the total weight of edges crossing any part boundary.
	CutWeight float64
}

// RecursiveBisect partitions g into `parts` pieces by recursive spectral
// bisection (the standard multilevel-free k-way scheme built on §4.3's
// bipartitioner). Part sizes are balanced by splitting the part budget
// proportionally at each level. Components that become disconnected by a
// cut are partitioned independently.
func RecursiveBisect(g *graph.Graph, parts int, opt Options) (*KWayResult, error) {
	if parts < 1 {
		return nil, errors.New("partition: parts must be positive")
	}
	if err := g.RequireConnected(); err != nil {
		return nil, err
	}
	labels := make([]int, g.N())
	vertices := make([]int, g.N())
	for i := range vertices {
		vertices[i] = i
	}
	next := 0
	if err := recurse(g, vertices, parts, opt, labels, &next); err != nil {
		return nil, err
	}
	res := &KWayResult{Labels: labels, Parts: next}
	for _, e := range g.Edges() {
		if labels[e.U] != labels[e.V] {
			res.CutWeight += e.W
		}
	}
	return res, nil
}

// recurse assigns part ids to the induced subgraph on `vertices`.
func recurse(g *graph.Graph, vertices []int, parts int, opt Options, labels []int, next *int) error {
	if parts <= 1 || len(vertices) <= 1 {
		id := *next
		*next++
		for _, v := range vertices {
			labels[v] = id
		}
		return nil
	}
	sub, mapping, err := g.InducedSubgraph(vertices)
	if err != nil {
		return err
	}
	// A cut can disconnect the remainder; partition components separately,
	// giving each a budget proportional to its size.
	comps, count := sub.Components()
	if count > 1 {
		groups := make([][]int, count)
		for i, c := range comps {
			groups[c] = append(groups[c], mapping[i])
		}
		remaining := parts
		for ci, grp := range groups {
			share := parts * len(grp) / len(vertices)
			if share < 1 {
				share = 1
			}
			if ci == count-1 {
				share = remaining
				if share < 1 {
					share = 1
				}
			}
			remaining -= share
			if err := recurse(g, grp, share, opt, labels, next); err != nil {
				return err
			}
		}
		return nil
	}

	bis, err := SpectralBisect(sub, opt)
	if err != nil {
		return fmt.Errorf("partition: recursive level failed at %d vertices: %w", len(vertices), err)
	}
	var pos, neg []int
	for i, s := range bis.Signs {
		if s > 0 {
			pos = append(pos, mapping[i])
		} else {
			neg = append(neg, mapping[i])
		}
	}
	// Degenerate cut (all one side): fall back to an even index split so
	// recursion always terminates.
	if len(pos) == 0 || len(neg) == 0 {
		half := len(vertices) / 2
		pos, neg = vertices[:half], vertices[half:]
	}
	pParts := parts / 2
	if pParts < 1 {
		pParts = 1
	}
	if err := recurse(g, pos, parts-pParts, opt, labels, next); err != nil {
		return err
	}
	return recurse(g, neg, pParts, opt, labels, next)
}
