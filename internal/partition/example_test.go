package partition_test

import (
	"fmt"

	"graphspar/internal/gen"
	"graphspar/internal/partition"
)

// ExampleSpectralBisect splits a long grid with the sign cut of the
// Fiedler vector; the natural cut is across the short dimension, giving a
// perfectly balanced partition.
func ExampleSpectralBisect() {
	g, err := gen.Grid2D(8, 32, gen.UnitWeights, 1)
	if err != nil {
		panic(err)
	}
	res, err := partition.SpectralBisect(g, partition.Options{
		Method: partition.Direct, Seed: 3, MaxIter: 200, Tol: 1e-12,
	})
	if err != nil {
		panic(err)
	}
	cut, err := partition.CutWeight(g, res.Signs)
	if err != nil {
		panic(err)
	}
	fmt.Println("balance:", res.Balance())
	fmt.Println("cut edges:", int(cut))
	// Output:
	// balance: 1
	// cut edges: 8
}

// ExampleRecursiveBisect produces a 4-way partition of a mesh.
func ExampleRecursiveBisect() {
	g, err := gen.Grid2D(16, 16, gen.UnitWeights, 1)
	if err != nil {
		panic(err)
	}
	res, err := partition.RecursiveBisect(g, 4, partition.Options{Method: partition.Direct, Seed: 5})
	if err != nil {
		panic(err)
	}
	fmt.Println("parts:", res.Parts)
	fmt.Println("labels cover all vertices:", len(res.Labels) == g.N())
	// Output:
	// parts: 4
	// labels cover all vertices: true
}
