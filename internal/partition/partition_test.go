package partition

import (
	"math"
	"testing"

	"graphspar/internal/gen"
	"graphspar/internal/graph"
)

// dumbbell returns two dense cliques joined by a single weak edge — the
// canonical easy bipartition: the sign cut must separate the cliques.
func dumbbell(k int) *graph.Graph {
	var es []graph.Edge
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			es = append(es, graph.Edge{U: i, V: j, W: 1})
			es = append(es, graph.Edge{U: k + i, V: k + j, W: 1})
		}
	}
	es = append(es, graph.Edge{U: 0, V: k, W: 0.01})
	return graph.MustNew(2*k, es)
}

func TestDirectBisectsDumbbell(t *testing.T) {
	g := dumbbell(8)
	res, err := SpectralBisect(g, Options{Method: Direct, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Each clique must land on one side.
	for i := 1; i < 8; i++ {
		if res.Signs[i] != res.Signs[0] {
			t.Fatalf("clique 1 split at %d", i)
		}
		if res.Signs[8+i] != res.Signs[8] {
			t.Fatalf("clique 2 split at %d", i)
		}
	}
	if res.Signs[0] == res.Signs[8] {
		t.Fatal("cliques not separated")
	}
	if res.Positive+res.Negative != g.N() {
		t.Fatal("signs don't cover all vertices")
	}
	if b := res.Balance(); math.Abs(b-1) > 1e-12 {
		t.Fatalf("balance %v, want 1", b)
	}
	cut, err := CutWeight(g, res.Signs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cut-0.01) > 1e-12 {
		t.Fatalf("cut weight %v, want 0.01", cut)
	}
}

func TestIterativeMatchesDirect(t *testing.T) {
	g, err := gen.Grid2D(12, 20, gen.UniformWeights, 7)
	if err != nil {
		t.Fatal(err)
	}
	dir, err := SpectralBisect(g, Options{Method: Direct, Seed: 5, MaxIter: 200, Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	it, err := SpectralBisect(g, Options{Method: Iterative, SigmaSq: 100, Seed: 5, MaxIter: 200, Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	relErr, err := SignError(dir.Signs, it.Signs)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's Table 3 reports Rel.Err up to ~4e-2; allow 5%.
	if relErr > 0.05 {
		t.Fatalf("sign disagreement %v too high", relErr)
	}
	// λ₂ estimates should agree closely.
	if math.Abs(dir.Lambda2-it.Lambda2) > 0.05*dir.Lambda2 {
		t.Fatalf("λ₂ disagree: %v vs %v", dir.Lambda2, it.Lambda2)
	}
}

func TestSparsifierOnlyMethod(t *testing.T) {
	g, err := gen.Grid2D(10, 18, gen.UniformWeights, 9)
	if err != nil {
		t.Fatal(err)
	}
	dir, err := SpectralBisect(g, Options{Method: Direct, Seed: 5, MaxIter: 200, Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	sp, err := SpectralBisect(g, Options{Method: SparsifierOnly, SigmaSq: 20, Seed: 5, MaxIter: 200, Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	relErr, err := SignError(dir.Signs, sp.Signs)
	if err != nil {
		t.Fatal(err)
	}
	if relErr > 0.10 {
		t.Fatalf("sparsifier-only sign disagreement %v too high", relErr)
	}
	if sp.SparsifierEdges == 0 {
		t.Fatal("sparsifier edge count not reported")
	}
}

func TestMemProxySmallerForIterative(t *testing.T) {
	g, err := gen.Grid2D(40, 40, gen.UniformWeights, 11)
	if err != nil {
		t.Fatal(err)
	}
	dir, err := SpectralBisect(g, Options{Method: Direct, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	it, err := SpectralBisect(g, Options{Method: Iterative, SigmaSq: 200, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if it.MemProxyBytes >= dir.MemProxyBytes {
		t.Fatalf("iterative memory %d should undercut direct %d", it.MemProxyBytes, dir.MemProxyBytes)
	}
}

func TestSignError(t *testing.T) {
	a := []int8{1, 1, -1, -1}
	b := []int8{-1, -1, 1, 1} // global flip: identical partition
	e, err := SignError(a, b)
	if err != nil || e != 0 {
		t.Fatalf("flip-invariant error = %v, err=%v", e, err)
	}
	c := []int8{1, -1, -1, -1}
	e, err = SignError(a, c)
	if err != nil || math.Abs(e-0.25) > 1e-12 {
		t.Fatalf("error = %v, want 0.25", e)
	}
	if _, err := SignError(a, []int8{1}); err == nil {
		t.Fatal("length mismatch should fail")
	}
	if e, err := SignError(nil, nil); err != nil || e != 0 {
		t.Fatal("empty should be 0")
	}
}

func TestCutWeightValidation(t *testing.T) {
	g, _ := gen.Path(3)
	if _, err := CutWeight(g, []int8{1}); err == nil {
		t.Fatal("length mismatch should fail")
	}
	w, err := CutWeight(g, []int8{1, 1, -1})
	if err != nil || w != 1 {
		t.Fatalf("cut = %v", w)
	}
}

func TestConductance(t *testing.T) {
	g := dumbbell(4)
	signs := make([]int8, g.N())
	for i := 0; i < 4; i++ {
		signs[i] = 1
		signs[4+i] = -1
	}
	phi, err := Conductance(g, signs)
	if err != nil {
		t.Fatal(err)
	}
	// cut = 0.01; vol each side = 2*6 + 0.01 = 12.01.
	want := 0.01 / 12.01
	if math.Abs(phi-want) > 1e-12 {
		t.Fatalf("conductance %v, want %v", phi, want)
	}
	all := make([]int8, g.N())
	for i := range all {
		all[i] = 1
	}
	if _, err := Conductance(g, all); err == nil {
		t.Fatal("one-sided partition should error")
	}
}

func TestBisectValidation(t *testing.T) {
	g, _ := graph.New(4, []graph.Edge{{U: 0, V: 1, W: 1}, {U: 2, V: 3, W: 1}})
	if _, err := SpectralBisect(g, Options{Method: Direct}); err == nil {
		t.Fatal("disconnected should fail")
	}
	single, _ := graph.New(1, nil)
	if _, err := SpectralBisect(single, Options{Method: Direct}); err == nil {
		t.Fatal("single vertex should fail")
	}
	p, _ := gen.Path(5)
	if _, err := SpectralBisect(p, Options{Method: Method(42)}); err == nil {
		t.Fatal("unknown method should fail")
	}
}

func TestMethodString(t *testing.T) {
	if Direct.String() != "direct" || Iterative.String() != "iterative" || SparsifierOnly.String() != "sparsifier-only" {
		t.Fatal("method names wrong")
	}
	if Method(9).String() == "" {
		t.Fatal("unknown method should print")
	}
}

func TestGridBalanceNearOne(t *testing.T) {
	// Table 3 reports |V+|/|V-| ≈ 1 for meshes; check on a mesh with random
	// weights.
	g, err := gen.TriMesh(16, 16, gen.UniformWeights, 13)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SpectralBisect(g, Options{Method: Direct, Seed: 7, MaxIter: 300, Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	b := res.Balance()
	if b < 0.7 || b > 1.5 {
		t.Fatalf("mesh balance %v outside [0.7, 1.5]", b)
	}
}

func TestBFSBisectBalancedAndDeterministic(t *testing.T) {
	g, err := gen.Grid2D(10, 9, gen.UniformWeights, 3)
	if err != nil {
		t.Fatal(err)
	}
	a, err := SpectralBisect(g, Options{Method: BFS})
	if err != nil {
		t.Fatal(err)
	}
	if a.Positive != 45 || a.Negative != 45 {
		t.Fatalf("BFS split %d/%d, want 45/45", a.Positive, a.Negative)
	}
	b, err := SpectralBisect(g, Options{Method: BFS})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Signs {
		if a.Signs[i] != b.Signs[i] {
			t.Fatalf("BFS bisection not deterministic at vertex %d", i)
		}
	}
}

func TestBFSBisectSeparatesDumbbell(t *testing.T) {
	// The level-set cut from a peripheral vertex crosses the bridge, so
	// the two cliques land on opposite sides.
	g := dumbbell(8)
	res, err := SpectralBisect(g, Options{Method: BFS})
	if err != nil {
		t.Fatal(err)
	}
	cut, err := CutWeight(g, res.Signs)
	if err != nil {
		t.Fatal(err)
	}
	if cut > 0.011 {
		t.Errorf("BFS cut weight %v, want just the 0.01 bridge", cut)
	}
}

func TestRecursiveBisectBFSMethod(t *testing.T) {
	g, err := gen.Grid2D(16, 16, gen.UniformWeights, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RecursiveBisect(g, 4, Options{Method: BFS})
	if err != nil {
		t.Fatal(err)
	}
	if res.Parts != 4 {
		t.Fatalf("parts = %d, want 4", res.Parts)
	}
	sizes := make(map[int]int)
	for _, l := range res.Labels {
		sizes[l]++
	}
	for part, size := range sizes {
		if size < 32 || size > 96 {
			t.Errorf("part %d badly unbalanced: %d of 256 vertices", part, size)
		}
	}
}

func TestParseMethodRoundTrip(t *testing.T) {
	for _, m := range []Method{Direct, Iterative, SparsifierOnly, BFS} {
		got, err := ParseMethod(m.String())
		if err != nil || got != m {
			t.Errorf("ParseMethod(%q) = %v, %v", m.String(), got, err)
		}
	}
	if got, err := ParseMethod(""); err != nil || got != Direct {
		t.Errorf("ParseMethod(\"\") = %v, %v; want Direct", got, err)
	}
	if _, err := ParseMethod("bogus"); err == nil {
		t.Error("ParseMethod(bogus) should fail")
	}
}
