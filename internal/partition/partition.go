// Package partition implements the spectral graph bipartitioner of §4.3:
// an approximate Fiedler vector is computed by a few inverse power
// iterations, and the graph is split with the sign-cut method [18]. Two
// solver backends mirror Table 3's comparison: a direct sparse Cholesky of
// L_G ("direct"), and PCG on L_G preconditioned by a similarity-aware
// sparsifier ("iterative"). The package also computes the metrics the
// table reports: sign balance |V₊|/|V₋|, relative sign error, cut weight,
// and a memory proxy.
package partition

import (
	"errors"
	"fmt"
	"time"

	"graphspar/internal/cholesky"
	"graphspar/internal/core"
	"graphspar/internal/eig"
	"graphspar/internal/graph"
	"graphspar/internal/pcg"
)

// Method selects the Fiedler-solver backend.
type Method int

// Backends.
const (
	// Direct factors L_G (grounded) with sparse Cholesky — the CHOLMOD
	// stand-in, Table 3's T_D / M_D column.
	Direct Method = iota
	// Iterative solves with PCG preconditioned by a σ²-sparsifier —
	// Table 3's T_I / M_I column.
	Iterative
	// SparsifierOnly computes the Fiedler vector of the sparsifier itself
	// and uses it to cut the original graph (the shortcut §4.3 mentions
	// when the sparsifier approximates G well).
	SparsifierOnly
	// BFS is the solver-free level-set heuristic: split at the median of
	// the BFS order from a pseudo-peripheral vertex (the Cuthill–McKee
	// level-structure idea). Cuts are rougher than spectral ones but cost
	// O(n + m) total, which is what the sharding engine needs — there the
	// partitioner must be far cheaper than the sparsifications it feeds.
	BFS
)

// String names the backend for flags and logs.
func (m Method) String() string {
	switch m {
	case Direct:
		return "direct"
	case Iterative:
		return "iterative"
	case SparsifierOnly:
		return "sparsifier-only"
	case BFS:
		return "bfs"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// ParseMethod is the inverse of Method.String, for flags and wire formats.
// The empty string maps to Direct.
func ParseMethod(name string) (Method, error) {
	switch name {
	case "", "direct":
		return Direct, nil
	case "iterative":
		return Iterative, nil
	case "sparsifier-only":
		return SparsifierOnly, nil
	case "bfs":
		return BFS, nil
	default:
		return 0, fmt.Errorf("partition: unknown method %q", name)
	}
}

// Options configures SpectralBisect.
type Options struct {
	Method  Method
	SigmaSq float64 // sparsifier target for Iterative/SparsifierOnly (default 200)
	MaxIter int     // inverse power iterations (default 50)
	Tol     float64 // Fiedler Rayleigh-quotient tolerance (default 1e-8)
	PCGTol  float64 // inner PCG tolerance for Iterative (default 1e-8)
	Seed    uint64
}

func (o *Options) defaults() {
	if o.SigmaSq <= 1 {
		o.SigmaSq = 200
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 50
	}
	if o.Tol <= 0 {
		o.Tol = 1e-8
	}
	if o.PCGTol <= 0 {
		o.PCGTol = 1e-8
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// Result reports a bipartition.
type Result struct {
	// Signs holds +1/-1 per vertex from the sign cut of the Fiedler vector.
	Signs []int8
	// Fiedler is the computed eigenvector; Lambda2 its Rayleigh quotient.
	Fiedler []float64
	Lambda2 float64
	// Positive and Negative count the two sides.
	Positive, Negative int
	// SetupTime covers factorization/sparsification; SolveTime the
	// inverse power iterations (matching the paper's T_D/T_I split, which
	// excludes sparsification time from T_I — we report both).
	SetupTime, SolveTime time.Duration
	// MemProxyBytes approximates solver memory: Cholesky factor entries
	// (direct) or sparsifier + factor entries (iterative), at 16 bytes per
	// stored nonzero (index + value).
	MemProxyBytes uint64
	// SparsifierEdges is 0 for Direct.
	SparsifierEdges int
}

// Balance returns |V₊|/|V₋| (∞-safe: returns 0 when V₋ is empty).
func (r *Result) Balance() float64 {
	if r.Negative == 0 {
		return 0
	}
	return float64(r.Positive) / float64(r.Negative)
}

// SpectralBisect computes an approximate Fiedler vector with the selected
// backend and splits g by sign.
func SpectralBisect(g *graph.Graph, opt Options) (*Result, error) {
	if err := g.RequireConnected(); err != nil {
		return nil, err
	}
	if g.N() < 2 {
		return nil, errors.New("partition: need at least 2 vertices")
	}
	opt.defaults()

	if opt.Method == BFS {
		return bfsBisect(g), nil
	}

	var (
		solver   eig.LapSolver
		fiedlerG *graph.Graph = g
		res      Result
	)
	setupStart := time.Now()
	switch opt.Method {
	case Direct:
		ls, err := cholesky.NewLapSolver(g)
		if err != nil {
			return nil, fmt.Errorf("partition: direct setup: %w", err)
		}
		solver = ls
		res.MemProxyBytes = uint64(ls.FactorNNZ()) * 16
	case Iterative, SparsifierOnly:
		sp, err := core.Sparsify(g, core.Options{SigmaSq: opt.SigmaSq, Seed: opt.Seed})
		if err != nil && !errors.Is(err, core.ErrNoTarget) {
			return nil, fmt.Errorf("partition: sparsification: %w", err)
		}
		res.SparsifierEdges = sp.Sparsifier.M()
		chol, err := pcg.NewCholPrecond(sp.Sparsifier)
		if err != nil {
			return nil, fmt.Errorf("partition: sparsifier factor: %w", err)
		}
		res.MemProxyBytes = uint64(sp.Sparsifier.M())*16 + uint64(chol.S.FactorNNZ())*16
		if opt.Method == Iterative {
			solver = &eig.PCGSolver{G: g, M: chol, Tol: opt.PCGTol, MaxIter: 4 * g.N()}
		} else {
			solver = chol.S // L_P⁺ directly: Fiedler vector of the sparsifier
			fiedlerG = sp.Sparsifier
		}
	default:
		return nil, fmt.Errorf("partition: unknown method %v", opt.Method)
	}
	res.SetupTime = time.Since(setupStart)

	solveStart := time.Now()
	fr, err := eig.Fiedler(fiedlerG, solver, opt.MaxIter, opt.Tol, opt.Seed)
	if err != nil {
		return nil, fmt.Errorf("partition: Fiedler iteration: %w", err)
	}
	res.SolveTime = time.Since(solveStart)
	res.Fiedler = fr.Vector
	res.Lambda2 = fr.Value

	res.Signs = make([]int8, g.N())
	for i, v := range fr.Vector {
		if v >= 0 {
			res.Signs[i] = 1
			res.Positive++
		} else {
			res.Signs[i] = -1
			res.Negative++
		}
	}
	return &res, nil
}

// bfsBisect splits g at the median of its BFS order from a
// pseudo-peripheral vertex (two BFS sweeps pick the start, the standard
// level-structure trick). The positive side is a connected BFS prefix of
// exactly ⌈n/2⌉ vertices, so the split is perfectly balanced and the cut
// runs along a level set.
func bfsBisect(g *graph.Graph) *Result {
	start := time.Now()
	order, _ := g.BFSOrder(0)
	far := order[len(order)-1]
	order, _ = g.BFSOrder(far)

	n := g.N()
	res := &Result{Signs: make([]int8, n)}
	half := (n + 1) / 2
	for i, v := range order {
		if i < half {
			res.Signs[v] = 1
			res.Positive++
		} else {
			res.Signs[v] = -1
			res.Negative++
		}
	}
	res.SolveTime = time.Since(start)
	return res
}

// SignError returns |V_dif|/|V| between two sign vectors, minimized over
// the global sign flip (eigenvectors are defined up to sign) — the
// Rel.Err. column of Table 3.
func SignError(a, b []int8) (float64, error) {
	if len(a) != len(b) {
		return 0, errors.New("partition: sign vectors differ in length")
	}
	if len(a) == 0 {
		return 0, nil
	}
	diff := 0
	for i := range a {
		if a[i] != b[i] {
			diff++
		}
	}
	n := len(a)
	err1 := float64(diff) / float64(n)
	err2 := float64(n-diff) / float64(n)
	if err2 < err1 {
		return err2, nil
	}
	return err1, nil
}

// CutWeight returns the total weight of edges crossing the partition.
func CutWeight(g *graph.Graph, signs []int8) (float64, error) {
	if len(signs) != g.N() {
		return 0, errors.New("partition: sign vector length mismatch")
	}
	var w float64
	for _, e := range g.Edges() {
		if signs[e.U] != signs[e.V] {
			w += e.W
		}
	}
	return w, nil
}

// Conductance returns cut(S)/min(vol(S), vol(V\S)) for the positive side.
func Conductance(g *graph.Graph, signs []int8) (float64, error) {
	cut, err := CutWeight(g, signs)
	if err != nil {
		return 0, err
	}
	var volPos, volNeg float64
	deg := g.WeightedDegrees()
	for i, s := range signs {
		if s > 0 {
			volPos += deg[i]
		} else {
			volNeg += deg[i]
		}
	}
	vol := volPos
	if volNeg < vol {
		vol = volNeg
	}
	if vol == 0 {
		return 0, errors.New("partition: one side has zero volume")
	}
	return cut / vol, nil
}
