// Package cli holds the helpers shared by the graphspar command-line
// tools: parsing graph specifications (either a MatrixMarket file path or
// a generator spec such as "grid:200x200:uniform") and writing results.
package cli

import (
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"

	"graphspar/internal/gen"
	"graphspar/internal/graph"
	"graphspar/internal/mm"
)

// ErrSpec reports an unparseable graph specification.
var ErrSpec = errors.New("cli: bad graph spec")

// SpecHelp describes the accepted -graph syntax for tool usage strings.
const SpecHelp = `graph spec: a MatrixMarket file path (*.mtx), or a generator:
  grid:ROWSxCOLS[:unit|uniform|log]      2D lattice
  grid3d:XxYxZ[:unit|uniform|log]        3D lattice
  trimesh:ROWSxCOLS[:unit|uniform|log]   triangulated mesh
  annulus:RINGSxPER                      airfoil-like ring mesh
  knn:N,K,DIM                            random geometric kNN graph
  ba:N,M                                 Barabási–Albert
  barbell:K,PATH[:unit|uniform|log]      two K_K cliques joined by a path
  coauth:N,M,CLOSURE                     BA + triangle closure
  ws:N,K,BETA                            Watts–Strogatz
  dense:N,AVGDEG                         dense random graph
  regular:N,D                            random regular`

func weightMode(s string) (gen.WeightMode, error) {
	switch s {
	case "", "uniform":
		return gen.UniformWeights, nil
	case "unit":
		return gen.UnitWeights, nil
	case "log":
		return gen.LogUniform, nil
	default:
		return 0, fmt.Errorf("%w: weight mode %q", ErrSpec, s)
	}
}

func dims(s string, want int) ([]int, error) {
	parts := strings.Split(s, "x")
	if len(parts) != want {
		return nil, fmt.Errorf("%w: need %d dimensions in %q", ErrSpec, want, s)
	}
	out := make([]int, want)
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrSpec, err)
		}
		out[i] = v
	}
	return out, nil
}

func nums(s string, want int) ([]float64, error) {
	parts := strings.Split(s, ",")
	if len(parts) != want {
		return nil, fmt.Errorf("%w: need %d values in %q", ErrSpec, want, s)
	}
	out := make([]float64, want)
	for i, p := range parts {
		v, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrSpec, err)
		}
		out[i] = v
	}
	return out, nil
}

// LoadGraph resolves a graph spec: a path to a .mtx file or a generator
// expression (see SpecHelp).
func LoadGraph(spec string, seed uint64) (*graph.Graph, error) {
	if spec == "" {
		return nil, fmt.Errorf("%w: empty", ErrSpec)
	}
	if strings.HasSuffix(spec, ".mtx") {
		f, err := os.Open(spec)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		m, err := mm.Read(f)
		if err != nil {
			return nil, err
		}
		return m.ToGraph()
	}
	kind, rest, _ := strings.Cut(spec, ":")
	switch kind {
	case "grid":
		shape, mode, _ := strings.Cut(rest, ":")
		d, err := dims(shape, 2)
		if err != nil {
			return nil, err
		}
		wm, err := weightMode(mode)
		if err != nil {
			return nil, err
		}
		return gen.Grid2D(d[0], d[1], wm, seed)
	case "grid3d":
		shape, mode, _ := strings.Cut(rest, ":")
		d, err := dims(shape, 3)
		if err != nil {
			return nil, err
		}
		wm, err := weightMode(mode)
		if err != nil {
			return nil, err
		}
		return gen.Grid3D(d[0], d[1], d[2], wm, seed)
	case "trimesh":
		shape, mode, _ := strings.Cut(rest, ":")
		d, err := dims(shape, 2)
		if err != nil {
			return nil, err
		}
		wm, err := weightMode(mode)
		if err != nil {
			return nil, err
		}
		return gen.TriMesh(d[0], d[1], wm, seed)
	case "annulus":
		d, err := dims(rest, 2)
		if err != nil {
			return nil, err
		}
		g, _, err := gen.Annulus(d[0], d[1], gen.UnitWeights, seed)
		return g, err
	case "knn":
		v, err := nums(rest, 3)
		if err != nil {
			return nil, err
		}
		return gen.KNN(int(v[0]), int(v[1]), int(v[2]), seed)
	case "ba":
		v, err := nums(rest, 2)
		if err != nil {
			return nil, err
		}
		return gen.BarabasiAlbert(int(v[0]), int(v[1]), seed)
	case "barbell":
		shape, mode, _ := strings.Cut(rest, ":")
		v, err := nums(shape, 2)
		if err != nil {
			return nil, err
		}
		wm, err := weightMode(mode)
		if err != nil {
			return nil, err
		}
		return gen.Barbell(int(v[0]), int(v[1]), wm, seed)
	case "coauth":
		v, err := nums(rest, 3)
		if err != nil {
			return nil, err
		}
		return gen.Coauthorship(int(v[0]), int(v[1]), v[2], seed)
	case "ws":
		v, err := nums(rest, 3)
		if err != nil {
			return nil, err
		}
		return gen.WattsStrogatz(int(v[0]), int(v[1]), v[2], seed)
	case "dense":
		v, err := nums(rest, 2)
		if err != nil {
			return nil, err
		}
		return gen.DenseRandom(int(v[0]), int(v[1]), seed)
	case "regular":
		v, err := nums(rest, 2)
		if err != nil {
			return nil, err
		}
		return gen.RandomRegular(int(v[0]), int(v[1]), seed)
	default:
		return nil, fmt.Errorf("%w: unknown generator %q", ErrSpec, kind)
	}
}

// SaveGraph writes g as a symmetric Laplacian MatrixMarket file.
func SaveGraph(path string, g *graph.Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return mm.WriteGraph(f, g)
}
