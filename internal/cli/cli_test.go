package cli

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestLoadGraphGenerators(t *testing.T) {
	cases := []struct {
		spec string
		n    int
	}{
		{"grid:5x6", 30},
		{"grid:5x6:unit", 30},
		{"grid:5x6:log", 30},
		{"grid3d:3x3x3", 27},
		{"trimesh:4x4:uniform", 16},
		{"annulus:4x8", 32},
		{"knn:100,4,2", 100},
		{"ba:50,2", 50},
		{"barbell:6,4", 15},
		{"barbell:6,4:unit", 15},
		{"coauth:50,2,0.3", 50},
		{"ws:40,4,0.1", 40},
		{"dense:40,6", 40},
		{"regular:40,4", 40},
	}
	for _, c := range cases {
		t.Run(c.spec, func(t *testing.T) {
			g, err := LoadGraph(c.spec, 1)
			if err != nil {
				t.Fatal(err)
			}
			if g.N() != c.n {
				t.Fatalf("N = %d, want %d", g.N(), c.n)
			}
			if !g.IsConnected() {
				t.Fatal("generated graph must be connected")
			}
		})
	}
}

func TestLoadGraphErrors(t *testing.T) {
	for _, spec := range []string{
		"", "nope:1", "grid:5", "grid:axb", "grid:5x5:bogus",
		"knn:1,2", "missing-file.mtx", "barbell:2,1", "barbell:6,4:bogus",
	} {
		if _, err := LoadGraph(spec, 1); err == nil {
			t.Fatalf("spec %q should fail", spec)
		}
	}
	if _, err := LoadGraph("zzz:1,2", 1); !errors.Is(err, ErrSpec) {
		t.Fatal("unknown generator should wrap ErrSpec")
	}
}

func TestSaveAndLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.mtx")
	g, err := LoadGraph("grid:4x5:uniform", 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := SaveGraph(path, g); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadGraph(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != g.N() || g2.M() != g.M() {
		t.Fatalf("round trip changed shape: %d/%d vs %d/%d", g2.N(), g2.M(), g.N(), g.M())
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
}
