package lsst

import (
	"errors"

	"graphspar/internal/graph"
)

// ErrNoReplacement is returned by FindReplacement when no edge of g
// reconnects the two sides of the broken tree — i.e. the removed tree edge
// is a bridge of the full graph.
var ErrNoReplacement = errors.New("lsst: removed tree edge is a bridge, no replacement exists")

// FindReplacement repairs a spanning tree after one tree edge is removed:
// given the surviving tree edges (as endpoint pairs, any orientation) and
// the removed edge's endpoints, it 2-colors the vertices by the forest
// component they fall in and returns the id of the maximum-weight edge of
// g crossing the two components. Choosing the heaviest crossing edge
// mirrors the max-weight backbone rule: high conductance keeps the repair
// path's resistance (and hence the stretch of rerouted edges) low.
//
// skip may be nil; when set, edges whose id maps to true are not eligible
// (the caller uses it to exclude edges being deleted in the same batch).
// Runs in O(n + m).
func FindReplacement(g *graph.Graph, treeEdges [][2]int, removedU, removedV int, skip map[int]bool) (int, error) {
	n := g.N()
	uf := NewUnionFind(n)
	for _, e := range treeEdges {
		uf.Union(e[0], e[1])
	}
	sideU, sideV := uf.Find(removedU), uf.Find(removedV)
	if sideU == sideV {
		// The forest already reconnects the endpoints: nothing to repair.
		return -1, nil
	}
	best, bestW := -1, 0.0
	for id, e := range g.Edges() {
		if skip != nil && skip[id] {
			continue
		}
		ru, rv := uf.Find(e.U), uf.Find(e.V)
		// The forest may hold more than two components when a batch removes
		// several tree edges, so the repair edge must join the two specific
		// components the removed edge used to bridge.
		if (ru == sideU && rv == sideV) || (ru == sideV && rv == sideU) {
			if e.W > bestW {
				best, bestW = id, e.W
			}
		}
	}
	if best < 0 {
		return -1, ErrNoReplacement
	}
	return best, nil
}
