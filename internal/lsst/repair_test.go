package lsst

import (
	"errors"
	"testing"

	"graphspar/internal/gen"
	"graphspar/internal/graph"
)

// treePairs converts tree edge ids into the endpoint-pair form
// FindReplacement consumes.
func treePairs(g *graph.Graph, ids []int) [][2]int {
	out := make([][2]int, len(ids))
	for i, id := range ids {
		e := g.Edge(id)
		out[i] = [2]int{e.U, e.V}
	}
	return out
}

func TestFindReplacementPicksHeaviestCrossingEdge(t *testing.T) {
	// Square with both diagonals; tree = three sides. Removing the side
	// (0,1) leaves {0,3} | {1,2} when the surviving tree is 1-2, 2-3... so
	// build explicitly: tree edges (0,1),(1,2),(2,3); remove (1,2): the
	// components are {0,1} and {2,3}; crossing edges are (1,2) itself
	// (excluded via skip), (0,2) w=5 and (1,3) w=9.
	g := graph.MustNew(4, []graph.Edge{
		{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 1}, {U: 2, V: 3, W: 1},
		{U: 0, V: 2, W: 5}, {U: 1, V: 3, W: 9},
	})
	surviving := [][2]int{{0, 1}, {2, 3}}
	removed := g.EdgeIndex()[[2]int{1, 2}]
	id, err := FindReplacement(g, surviving, 1, 2, map[int]bool{removed: true})
	if err != nil {
		t.Fatal(err)
	}
	if e := g.Edge(id); e.U != 1 || e.V != 3 || e.W != 9 {
		t.Fatalf("replacement = %+v, want the w=9 edge (1,3)", e)
	}
}

func TestFindReplacementBridgeFails(t *testing.T) {
	// Barbell: deleting the single path edge disconnects the graph, so no
	// replacement can exist.
	g, err := gen.Barbell(3, 1, gen.UnitWeights, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Locate the bridge (2,3): clique 0-2, clique 3-5.
	bridge := g.EdgeIndex()[[2]int{2, 3}]
	tree, err := MaxWeightSpanningTree(g)
	if err != nil {
		t.Fatal(err)
	}
	var surviving [][2]int
	for _, id := range tree {
		if id == bridge {
			continue
		}
		e := g.Edge(id)
		surviving = append(surviving, [2]int{e.U, e.V})
	}
	_, err = FindReplacement(g, surviving, 2, 3, map[int]bool{bridge: true})
	if !errors.Is(err, ErrNoReplacement) {
		t.Fatalf("err = %v, want ErrNoReplacement", err)
	}
}

func TestFindReplacementAlreadyConnected(t *testing.T) {
	// Forest that still spans both endpoints: nothing to repair.
	g := graph.MustNew(3, []graph.Edge{
		{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 1}, {U: 0, V: 2, W: 1},
	})
	id, err := FindReplacement(g, [][2]int{{0, 1}, {1, 2}}, 0, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if id != -1 {
		t.Fatalf("id = %d, want -1 (no repair needed)", id)
	}
}
