package lsst

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"graphspar/internal/gen"
	"graphspar/internal/graph"
	"graphspar/internal/tree"
	"graphspar/internal/vecmath"
)

func TestUnionFind(t *testing.T) {
	u := NewUnionFind(5)
	if u.Count() != 5 {
		t.Fatalf("Count = %d", u.Count())
	}
	if !u.Union(0, 1) || !u.Union(1, 2) {
		t.Fatal("unions should succeed")
	}
	if u.Union(0, 2) {
		t.Fatal("redundant union should fail")
	}
	if u.Count() != 3 {
		t.Fatalf("Count = %d, want 3", u.Count())
	}
	if u.Find(0) != u.Find(2) || u.Find(3) == u.Find(4) && false {
		t.Fatal("find wrong")
	}
	if u.Find(3) == u.Find(0) {
		t.Fatal("3 should be separate")
	}
}

func TestMaxWeightSpanningTreeTriangle(t *testing.T) {
	g, _ := graph.New(3, []graph.Edge{{U: 0, V: 1, W: 3}, {U: 1, V: 2, W: 2}, {U: 0, V: 2, W: 1}})
	ids, err := MaxWeightSpanningTree(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 {
		t.Fatalf("tree size %d", len(ids))
	}
	// Must pick the two heaviest edges (weights 3 and 2).
	var wsum float64
	for _, id := range ids {
		wsum += g.Edge(id).W
	}
	if wsum != 5 {
		t.Fatalf("total tree weight %v, want 5", wsum)
	}
}

func TestMaxWeightDisconnected(t *testing.T) {
	g, _ := graph.New(4, []graph.Edge{{U: 0, V: 1, W: 1}, {U: 2, V: 3, W: 1}})
	if _, err := MaxWeightSpanningTree(g); !errors.Is(err, ErrNotConnected) {
		t.Fatalf("err = %v, want ErrNotConnected", err)
	}
}

func TestDijkstraTreePicksShortPaths(t *testing.T) {
	// Square 0-1-2-3-0 with a heavy (short) diagonal 0-2.
	g, _ := graph.New(4, []graph.Edge{
		{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 1}, {U: 2, V: 3, W: 1}, {U: 0, V: 3, W: 1}, {U: 0, V: 2, W: 10},
	})
	ids, err := DijkstraTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	hasDiag := false
	for _, id := range ids {
		e := g.Edge(id)
		if e.U == 0 && e.V == 2 {
			hasDiag = true
		}
	}
	if !hasDiag {
		t.Fatal("Dijkstra should route 2 through the low-resistance diagonal")
	}
	if _, err := DijkstraTree(g, 99); err == nil {
		t.Fatal("bad source should fail")
	}
}

func TestAKPWTreeSpans(t *testing.T) {
	g, err := gen.Grid2D(12, 12, gen.LogUniform, 7)
	if err != nil {
		t.Fatal(err)
	}
	ids, err := AKPWTree(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != g.N()-1 {
		t.Fatalf("tree edges %d, want %d", len(ids), g.N()-1)
	}
	// Verify it is actually a spanning tree by building it.
	if _, err := tree.FromGraph(g, ids, 0); err != nil {
		t.Fatalf("AKPW output is not a spanning tree: %v", err)
	}
}

func TestAKPWSingleVertex(t *testing.T) {
	g, _ := graph.New(1, nil)
	ids, err := AKPWTree(g, 1)
	if err != nil || len(ids) != 0 {
		t.Fatalf("single vertex: ids=%v err=%v", ids, err)
	}
}

func TestExtractAllAlgorithms(t *testing.T) {
	g, err := gen.Grid2D(10, 10, gen.UniformWeights, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []Algorithm{MaxWeight, Dijkstra, AKPW} {
		t.Run(alg.String(), func(t *testing.T) {
			tr, treeIDs, offIDs, err := Extract(g, alg, 42)
			if err != nil {
				t.Fatal(err)
			}
			if tr.N() != g.N() {
				t.Fatalf("tree N = %d", tr.N())
			}
			if len(treeIDs) != g.N()-1 {
				t.Fatalf("tree ids %d", len(treeIDs))
			}
			if len(treeIDs)+len(offIDs) != g.M() {
				t.Fatalf("ids don't partition edges: %d + %d != %d", len(treeIDs), len(offIDs), g.M())
			}
			seen := map[int]bool{}
			for _, id := range append(append([]int{}, treeIDs...), offIDs...) {
				if seen[id] {
					t.Fatalf("id %d duplicated", id)
				}
				seen[id] = true
			}
		})
	}
}

func TestExtractUnknownAlgorithm(t *testing.T) {
	g, _ := gen.Path(4)
	if _, _, _, err := Extract(g, Algorithm(99), 1); err == nil {
		t.Fatal("unknown algorithm should fail")
	}
}

func TestAlgorithmString(t *testing.T) {
	if MaxWeight.String() != "maxweight" || Dijkstra.String() != "dijkstra" || AKPW.String() != "akpw" {
		t.Fatal("String() names wrong")
	}
	if Algorithm(12).String() == "" {
		t.Fatal("unknown algorithm should still print")
	}
}

func TestStretchStatsOnCycle(t *testing.T) {
	// Unit cycle of n=4: tree = path (3 edges), off-tree edge closes the
	// cycle with stretch 1·(1+1+1) = 3. Total = 3·1 + 3 = 6.
	g, _ := gen.Cycle(4)
	tr, _, _, err := Extract(g, MaxWeight, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := StretchStats(g, tr)
	if math.Abs(s.Total-6) > 1e-12 {
		t.Fatalf("Total = %v, want 6", s.Total)
	}
	if math.Abs(s.Max-3) > 1e-12 {
		t.Fatalf("Max = %v, want 3", s.Max)
	}
	if s.Count != 4 {
		t.Fatalf("Count = %d", s.Count)
	}
	if math.Abs(s.Mean-1.5) > 1e-12 {
		t.Fatalf("Mean = %v", s.Mean)
	}
}

// Property: every algorithm yields a spanning tree whose tree edges have
// stretch exactly 1, and total stretch >= m (every stretch >= ... tree
// edges are 1; off-tree can be below 1 only if the tree path beats the
// edge, impossible for max-weight trees on unit graphs but possible in
// general - so we only check >= n-1).
func TestQuickExtractInvariants(t *testing.T) {
	f := func(seed uint64) bool {
		rng := vecmath.NewRNG(seed)
		rows, cols := 3+rng.Intn(6), 3+rng.Intn(6)
		g, err := gen.Grid2D(rows, cols, gen.UniformWeights, seed)
		if err != nil {
			return false
		}
		for _, alg := range []Algorithm{MaxWeight, Dijkstra, AKPW} {
			tr, treeIDs, _, err := Extract(g, alg, seed)
			if err != nil {
				return false
			}
			for _, id := range treeIDs {
				if math.Abs(tr.Stretch(g.Edge(id))-1) > 1e-9 {
					return false
				}
			}
			if s := StretchStats(g, tr); s.Total < float64(g.N()-1)-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// AKPW should produce competitive stretch on heavy-tailed weights: not
// astronomically worse than MaxWeight (a sanity guard rather than a
// theorem check).
func TestAKPWStretchReasonable(t *testing.T) {
	g, err := gen.Grid2D(30, 30, gen.LogUniform, 11)
	if err != nil {
		t.Fatal(err)
	}
	trA, _, _, err := Extract(g, AKPW, 5)
	if err != nil {
		t.Fatal(err)
	}
	trM, _, _, err := Extract(g, MaxWeight, 5)
	if err != nil {
		t.Fatal(err)
	}
	sa, sm := StretchStats(g, trA), StretchStats(g, trM)
	if sa.Total > 50*sm.Total {
		t.Fatalf("AKPW stretch %v wildly worse than MaxWeight %v", sa.Total, sm.Total)
	}
}

func BenchmarkAKPWGrid(b *testing.B) {
	g, err := gen.Grid2D(100, 100, gen.UniformWeights, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := AKPWTree(g, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMaxWeightGrid(b *testing.B) {
	g, err := gen.Grid2D(100, 100, gen.UniformWeights, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MaxWeightSpanningTree(g); err != nil {
			b.Fatal(err)
		}
	}
}
