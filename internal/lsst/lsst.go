// Package lsst extracts the spanning-tree backbones of §3.1(a): a
// max-weight (Kruskal) tree, a shortest-path (Dijkstra) tree, and an
// AKPW-style low-stretch spanning tree built by weight-class ball-growing
// decomposition [Abraham–Neiman STOC'12, Elkin et al. SICOMP'08 lineage].
// It also computes exact per-edge and total stretch (eq. 4) through the
// LCA machinery of package tree.
package lsst

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"sort"

	"graphspar/internal/graph"
	"graphspar/internal/tree"
	"graphspar/internal/vecmath"
)

// ErrNotConnected is returned when the input graph cannot span a tree.
var ErrNotConnected = errors.New("lsst: graph is not connected")

// Algorithm selects the spanning-tree construction.
type Algorithm int

// Supported algorithms.
const (
	// MaxWeight picks the maximum-weight spanning tree: high-conductance
	// edges have low resistance, so this greedily minimizes path
	// resistances. The classic practical backbone.
	MaxWeight Algorithm = iota
	// Dijkstra grows a shortest-path tree (lengths 1/w) from a
	// high-degree center.
	Dijkstra
	// AKPW runs the weight-class ball-growing decomposition, the
	// low-stretch construction the paper cites [1, 8].
	AKPW
)

// String names the algorithm for flags and logs.
func (a Algorithm) String() string {
	switch a {
	case MaxWeight:
		return "maxweight"
	case Dijkstra:
		return "dijkstra"
	case AKPW:
		return "akpw"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Parse is the inverse of String, for flags and wire formats. The empty
// string maps to the MaxWeight default.
func Parse(name string) (Algorithm, error) {
	switch name {
	case "", "maxweight":
		return MaxWeight, nil
	case "dijkstra":
		return Dijkstra, nil
	case "akpw":
		return AKPW, nil
	default:
		return 0, fmt.Errorf("lsst: unknown tree algorithm %q", name)
	}
}

// UnionFind is a classic disjoint-set forest with path halving and union
// by rank.
type UnionFind struct {
	parent []int
	rank   []byte
	count  int
}

// NewUnionFind returns n singleton sets.
func NewUnionFind(n int) *UnionFind {
	u := &UnionFind{parent: make([]int, n), rank: make([]byte, n), count: n}
	for i := range u.parent {
		u.parent[i] = i
	}
	return u
}

// Find returns the representative of x's set.
func (u *UnionFind) Find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

// Union merges the sets of a and b, reporting whether a merge happened.
func (u *UnionFind) Union(a, b int) bool {
	ra, rb := u.Find(a), u.Find(b)
	if ra == rb {
		return false
	}
	if u.rank[ra] < u.rank[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	if u.rank[ra] == u.rank[rb] {
		u.rank[ra]++
	}
	u.count--
	return true
}

// Count returns the number of disjoint sets.
func (u *UnionFind) Count() int { return u.count }

// MaxWeightSpanningTree returns the edge ids of a maximum-weight spanning
// tree (Kruskal on descending weight).
func MaxWeightSpanningTree(g *graph.Graph) ([]int, error) {
	if err := g.RequireConnected(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNotConnected, err)
	}
	ids := make([]int, g.M())
	for i := range ids {
		ids[i] = i
	}
	sort.Slice(ids, func(a, b int) bool { return g.Edge(ids[a]).W > g.Edge(ids[b]).W })
	uf := NewUnionFind(g.N())
	treeIDs := make([]int, 0, g.N()-1)
	for _, id := range ids {
		e := g.Edge(id)
		if uf.Union(e.U, e.V) {
			treeIDs = append(treeIDs, id)
			if len(treeIDs) == g.N()-1 {
				break
			}
		}
	}
	return treeIDs, nil
}

type dijkItem struct {
	v    int
	dist float64
}

type dijkHeap []dijkItem

func (h dijkHeap) Len() int            { return len(h) }
func (h dijkHeap) Less(i, j int) bool  { return h[i].dist < h[j].dist }
func (h dijkHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *dijkHeap) Push(x interface{}) { *h = append(*h, x.(dijkItem)) }
func (h *dijkHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// DijkstraTree returns the edge ids of a shortest-path tree from source,
// with edge lengths 1/w.
func DijkstraTree(g *graph.Graph, source int) ([]int, error) {
	if err := g.RequireConnected(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNotConnected, err)
	}
	if source < 0 || source >= g.N() {
		return nil, fmt.Errorf("lsst: source %d out of range", source)
	}
	n := g.N()
	dist := make([]float64, n)
	parentEdge := make([]int, n)
	done := make([]bool, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		parentEdge[i] = -1
	}
	dist[source] = 0
	h := &dijkHeap{{source, 0}}
	for h.Len() > 0 {
		it := heap.Pop(h).(dijkItem)
		if done[it.v] {
			continue
		}
		done[it.v] = true
		g.Neighbors(it.v, func(u int, w float64, id int) bool {
			nd := it.dist + 1/w
			if nd < dist[u] {
				dist[u] = nd
				parentEdge[u] = id
				heap.Push(h, dijkItem{u, nd})
			}
			return true
		})
	}
	treeIDs := make([]int, 0, n-1)
	for v := 0; v < n; v++ {
		if v != source {
			if parentEdge[v] == -1 {
				return nil, ErrNotConnected
			}
			treeIDs = append(treeIDs, parentEdge[v])
		}
	}
	return treeIDs, nil
}

// AKPWTree returns the edge ids of an AKPW-style low-stretch spanning tree.
//
// Edges are bucketed into geometric length classes (length = 1/w, factor
// mu). Classes are processed from strongest to weakest; within each class
// the algorithm grows BFS balls over the current *cluster graph* (vertices
// contracted by a union–find), stopping a ball when its boundary has at
// most boundary/volume ratio 1/2, then adds the BFS tree edges to the
// forest and contracts. Remaining inter-cluster edges stay active for
// later classes; a final Kruskal sweep guarantees a spanning tree.
func AKPWTree(g *graph.Graph, seed uint64) ([]int, error) {
	if err := g.RequireConnected(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNotConnected, err)
	}
	n, m := g.N(), g.M()
	if n == 1 {
		return []int{}, nil
	}
	const mu = 8.0
	rng := vecmath.NewRNG(seed)

	// Classify edges by length.
	minLen := math.Inf(1)
	for _, e := range g.Edges() {
		if l := 1 / e.W; l < minLen {
			minLen = l
		}
	}
	class := make([]int, m)
	maxClass := 0
	for i, e := range g.Edges() {
		c := 0
		if l := (1 / e.W) / minLen; l > 1 {
			c = int(math.Log(l) / math.Log(mu))
		}
		class[i] = c
		if c > maxClass {
			maxClass = c
		}
	}
	byClass := make([][]int, maxClass+1)
	for i, c := range class {
		byClass[c] = append(byClass[c], i)
	}

	uf := NewUnionFind(n)
	treeIDs := make([]int, 0, n-1)
	active := make([]int, 0, m) // inter-cluster edges from processed classes

	// Scratch for cluster-graph BFS.
	clusterIdx := make(map[int]int) // union-find root -> compact id

	for c := 0; c <= maxClass && uf.Count() > 1; c++ {
		active = append(active, byClass[c]...)
		// Compact: drop intra-cluster edges.
		kept := active[:0]
		for _, id := range active {
			e := g.Edge(id)
			if uf.Find(e.U) != uf.Find(e.V) {
				kept = append(kept, id)
			}
		}
		active = kept
		if len(active) == 0 {
			continue
		}

		// Build the cluster graph for this round.
		for k := range clusterIdx {
			delete(clusterIdx, k)
		}
		cid := func(v int) int {
			r := uf.Find(v)
			if i, ok := clusterIdx[r]; ok {
				return i
			}
			i := len(clusterIdx)
			clusterIdx[r] = i
			return i
		}
		type cedge struct{ to, origID, next int }
		head := map[int]int{}
		cedges := make([]cedge, 0, 2*len(active))
		addC := func(a, b, id int) {
			h, ok := head[a]
			if !ok {
				h = -1
			}
			cedges = append(cedges, cedge{b, id, h})
			head[a] = len(cedges) - 1
		}
		for _, id := range active {
			e := g.Edge(id)
			a, b := cid(e.U), cid(e.V)
			addC(a, b, id)
			addC(b, a, id)
		}
		nc := len(clusterIdx)

		// Ball growing over the cluster graph. Within a layer, parallel
		// cluster edges are resolved to the heaviest original edge so the
		// tree path through the contraction stays low-resistance.
		visited := make([]int8, nc)
		queued := make([]int8, nc)
		parentOrig := make([]int, nc)
		order := rng.Perm(nc)
		maxRadius := 1 + int(math.Log2(float64(nc)+1))
		var frontier, nextFrontier []int
		for _, s := range order {
			if visited[s] != 0 {
				continue
			}
			visited[s] = 1
			frontier = frontier[:0]
			frontier = append(frontier, s)
			ballEdges := 0
			for radius := 0; radius < maxRadius && len(frontier) > 0; radius++ {
				nextFrontier = nextFrontier[:0]
				boundary := 0
				for _, u := range frontier {
					h, ok := head[u]
					if !ok {
						continue
					}
					for k := h; k != -1; k = cedges[k].next {
						v := cedges[k].to
						if visited[v] != 0 {
							continue
						}
						if queued[v] == 0 {
							queued[v] = 1
							parentOrig[v] = cedges[k].origID
							nextFrontier = append(nextFrontier, v)
							boundary++
						} else if g.Edge(cedges[k].origID).W > g.Edge(parentOrig[v]).W {
							parentOrig[v] = cedges[k].origID
						}
					}
				}
				for _, v := range nextFrontier {
					visited[v] = 1
					queued[v] = 0
					e := g.Edge(parentOrig[v])
					if uf.Union(e.U, e.V) {
						treeIDs = append(treeIDs, parentOrig[v])
					}
				}
				ballEdges += boundary
				frontier, nextFrontier = nextFrontier, frontier
				// Region-growing stop: boundary small relative to volume.
				if boundary*2 <= ballEdges && radius >= 1 {
					break
				}
			}
		}
	}

	// Guarantee spanning: Kruskal sweep over the remaining edges by weight.
	if uf.Count() > 1 {
		ids := make([]int, m)
		for i := range ids {
			ids[i] = i
		}
		sort.Slice(ids, func(a, b int) bool { return g.Edge(ids[a]).W > g.Edge(ids[b]).W })
		for _, id := range ids {
			e := g.Edge(id)
			if uf.Union(e.U, e.V) {
				treeIDs = append(treeIDs, id)
				if uf.Count() == 1 {
					break
				}
			}
		}
	}
	if len(treeIDs) != n-1 {
		return nil, fmt.Errorf("lsst: internal error, %d tree edges for n=%d", len(treeIDs), n)
	}
	return treeIDs, nil
}

// Extract builds a spanning tree with the chosen algorithm and returns the
// rooted tree, its edge ids in g, and the off-tree edge ids. The root is
// the maximum-degree vertex (shallow trees help the O(n) solver's
// numerics and the Dijkstra backbone).
func Extract(g *graph.Graph, alg Algorithm, seed uint64) (*tree.Tree, []int, []int, error) {
	root := 0
	best := -1
	for v := 0; v < g.N(); v++ {
		if d := g.Degree(v); d > best {
			best, root = d, v
		}
	}
	var (
		ids []int
		err error
	)
	switch alg {
	case MaxWeight:
		ids, err = MaxWeightSpanningTree(g)
	case Dijkstra:
		ids, err = DijkstraTree(g, root)
	case AKPW:
		ids, err = AKPWTree(g, seed)
	default:
		return nil, nil, nil, fmt.Errorf("lsst: unknown algorithm %v", alg)
	}
	if err != nil {
		return nil, nil, nil, err
	}
	t, err := tree.FromGraph(g, ids, root)
	if err != nil {
		return nil, nil, nil, err
	}
	inTree := make([]bool, g.M())
	for _, id := range ids {
		inTree[id] = true
	}
	off := make([]int, 0, g.M()-len(ids))
	for i := 0; i < g.M(); i++ {
		if !inTree[i] {
			off = append(off, i)
		}
	}
	return t, ids, off, nil
}

// Stats summarizes the stretch of a spanning tree with respect to g.
type Stats struct {
	Total float64 // st_P(G) = Trace(L_P⁺ L_G), eq. 4
	Max   float64 // largest single-edge stretch
	Mean  float64 // Total / m
	Count int     // number of edges measured (all of g)
}

// StretchStats computes exact stretch statistics of t with respect to g.
func StretchStats(g *graph.Graph, t *tree.Tree) Stats {
	var s Stats
	s.Count = g.M()
	for _, e := range g.Edges() {
		st := t.Stretch(e)
		s.Total += st
		if st > s.Max {
			s.Max = st
		}
	}
	if s.Count > 0 {
		s.Mean = s.Total / float64(s.Count)
	}
	return s
}
