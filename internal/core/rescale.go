package core

import (
	"errors"
	"fmt"
	"math"

	"graphspar/internal/graph"
)

// RescaleResult reports the outcome of off-tree edge re-scaling.
type RescaleResult struct {
	// Sparsifier is the re-weighted sparsifier (no longer a strict
	// subgraph: off-tree edge weights are scaled by Gamma).
	Sparsifier *graph.Graph
	// Gamma is the chosen off-tree scaling factor.
	Gamma float64
	// LambdaMax/LambdaMin/SigmaSq are the post-rescale estimates.
	LambdaMax, LambdaMin, SigmaSq float64
}

// RescaleOffTree implements the edge re-scaling extension the paper points
// to in §3.1 ([19]): each recovered off-tree edge stands in for the
// filtered-out edges spectrally similar to it, so scaling those weights up
// by a factor γ > 1 can further reduce κ(L_G, L_P) without adding edges.
//
// The routine line-searches γ over a geometric grid, estimating
// λmax (generalized power iterations) and λmin (node coloring — still an
// upper bound since scaling only off-tree edges keeps deg_P ≤ deg_G for
// γ ≤ γ_safe; beyond that the true λmin is tracked by Lanczos-free
// Rayleigh probing) and returns the best re-weighted sparsifier.
//
// Scaling is applied only to the off-tree edges recovered by Sparsify;
// tree edges keep original weights so the backbone solver stays exact.
func RescaleOffTree(g *graph.Graph, res *Result, gammas []float64, seed uint64) (*RescaleResult, error) {
	if res == nil || res.Sparsifier == nil {
		return nil, errors.New("core: RescaleOffTree needs a completed Sparsify result")
	}
	if len(res.OffTreeAddedIDs) == 0 {
		// Nothing to scale; return the sparsifier unchanged.
		return &RescaleResult{
			Sparsifier: res.Sparsifier, Gamma: 1,
			LambdaMax: res.LambdaMax, LambdaMin: res.LambdaMin, SigmaSq: res.SigmaSqAchieved,
		}, nil
	}
	if len(gammas) == 0 {
		gammas = []float64{1, 1.25, 1.5, 2, 3, 4}
	}
	best := &RescaleResult{Gamma: 1, LambdaMax: res.LambdaMax, LambdaMin: res.LambdaMin,
		SigmaSq: res.SigmaSqAchieved, Sparsifier: res.Sparsifier}

	offSet := make(map[[2]int]bool, len(res.OffTreeAddedIDs))
	for _, id := range res.OffTreeAddedIDs {
		e := g.Edge(id)
		offSet[[2]int{e.U, e.V}] = true
	}

	for _, gamma := range gammas {
		if gamma <= 0 {
			return nil, fmt.Errorf("core: non-positive gamma %v", gamma)
		}
		if gamma == 1 {
			continue // baseline already recorded
		}
		scaled := make([]graph.Edge, 0, res.Sparsifier.M())
		for _, e := range res.Sparsifier.Edges() {
			w := e.W
			if offSet[[2]int{e.U, e.V}] {
				w *= gamma
			}
			scaled = append(scaled, graph.Edge{U: e.U, V: e.V, W: w})
		}
		p, err := graph.New(g.N(), scaled)
		if err != nil {
			return nil, err
		}
		solver, err := newInnerSolver(p, res.Tree, Direct, 1e-8, nil)
		if err != nil {
			return nil, err
		}
		lmax, err := EstimateLambdaMax(g, p, solver, 20, seed)
		if err != nil {
			return nil, err
		}
		// With γ > 1 the sparsifier is no longer dominated by G, so λmin
		// can drop below 1; the degree-ratio bound still applies (it never
		// assumed domination).
		lmin := EstimateLambdaMin(g, p)
		if lmin <= 0 || math.IsInf(lmin, 0) {
			continue
		}
		if lmax < lmin {
			lmax = lmin
		}
		s2 := lmax / lmin
		if s2 < best.SigmaSq {
			best = &RescaleResult{Sparsifier: p, Gamma: gamma, LambdaMax: lmax, LambdaMin: lmin, SigmaSq: s2}
		}
	}
	return best, nil
}
