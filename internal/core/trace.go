package core

import (
	"errors"
	"sort"

	"graphspar/internal/graph"
	"graphspar/internal/vecmath"
)

// EstimateTrace computes a Hutchinson estimate of Trace(L_P⁺ L_G) with the
// given number of Rademacher probes: trace ≈ mean_j zⱼᵀ L_P⁺ L_G zⱼ.
// By eq. 4 this equals the total stretch st_P(G) when P is a spanning
// tree, which the tests exploit as an exact cross-check against the
// LCA-based stretch computation.
func EstimateTrace(g *graph.Graph, solver Solver, probes int, seed uint64) (float64, error) {
	if probes < 1 {
		return 0, errors.New("core: need at least one probe")
	}
	n := g.N()
	rng := vecmath.NewRNG(seed)
	z := make([]float64, n)
	y := make([]float64, n)
	w := make([]float64, n)
	var sum float64
	for j := 0; j < probes; j++ {
		rng.FillRademacher(z)
		vecmath.Deflate(z)
		g.LapMulVec(y, z)  // y = L_G z
		solver.Solve(w, y) // w = L_P⁺ L_G z
		sum += vecmath.Dot(z, w)
	}
	return sum / float64(probes), nil
}

// RefineLambdaMin improves the single-node coloring bound of eq. 18 by
// greedy local search over the 0/1 coloring of eq. 17: starting from the
// best single vertex, it repeatedly adds the neighbor that most decreases
// the cut-ratio Σ_{cut(G)} w / Σ_{cut(P)} w, for up to `sweeps` growth
// steps. The result is never worse than EstimateLambdaMin and remains an
// upper bound on λmin by Courant–Fischer.
func RefineLambdaMin(g, p *graph.Graph, sweeps int) float64 {
	base := EstimateLambdaMin(g, p)
	if sweeps <= 0 {
		return base
	}
	n := g.N()
	dg := g.WeightedDegrees()
	dp := p.WeightedDegrees()
	// Seed: the arg-min vertex of the single-node bound.
	seedV, bestRatio := -1, base
	for v := 0; v < n; v++ {
		if dp[v] > 0 {
			if r := dg[v] / dp[v]; r <= bestRatio {
				bestRatio, seedV = r, v
			}
		}
	}
	if seedV < 0 {
		return base
	}
	inSet := make([]bool, n)
	inSet[seedV] = true
	// Track cut weights for the current set S.
	cutG, cutP := dg[seedV], dp[seedV]
	best := bestRatio

	// deltaOf computes the cut changes from adding v to S.
	deltaOf := func(v int, gr *graph.Graph) float64 {
		var inside float64
		gr.Neighbors(v, func(u int, w float64, _ int) bool {
			if inSet[u] {
				inside += w
			}
			return true
		})
		// New cut = old cut + deg(v) - 2*inside.
		deg := gr.WeightedDegree(v)
		return deg - 2*inside
	}

	for step := 0; step < sweeps; step++ {
		// Candidates: frontier vertices (neighbors of S in G), visited
		// in ascending id order so equal-ratio ties resolve to the same
		// vertex every run (map iteration here used to leak map order
		// into the refined bound).
		cand := map[int]bool{}
		for v := 0; v < n; v++ {
			if !inSet[v] {
				continue
			}
			g.Neighbors(v, func(u int, _ float64, _ int) bool {
				if !inSet[u] {
					cand[u] = true
				}
				return true
			})
		}
		candList := make([]int, 0, len(cand))
		for v := range cand {
			candList = append(candList, v)
		}
		sort.Ints(candList)
		bestV, bestNew := -1, best
		for _, v := range candList {
			ng := cutG + deltaOf(v, g)
			np := cutP + deltaOf(v, p)
			if np <= 1e-300 {
				continue
			}
			if r := ng / np; r < bestNew {
				bestNew, bestV = r, v
			}
		}
		if bestV < 0 {
			break
		}
		cutG += deltaOf(bestV, g)
		cutP += deltaOf(bestV, p)
		inSet[bestV] = true
		best = bestNew
	}
	if best < base {
		return best
	}
	return base
}
