package core

import (
	"math"
	"testing"

	"graphspar/internal/cholesky"
	"graphspar/internal/gen"
	"graphspar/internal/graph"
)

// prune returns a connected subgraph of g with roughly every third edge
// removed (skipping removals that would disconnect), plus the pruned graph's
// solver — a stand-in for a sparsifier.
func prune(t *testing.T, g *graph.Graph) (*graph.Graph, *cholesky.LapSolver) {
	t.Helper()
	edges := append([]graph.Edge(nil), g.Edges()...)
	kept := edges
	for i := len(edges) - 1; i >= 0; i -= 3 {
		trial := append([]graph.Edge(nil), kept[:i]...)
		trial = append(trial, kept[i+1:]...)
		cand, err := graph.New(g.N(), trial)
		if err != nil {
			continue
		}
		if cand.RequireConnected() != nil {
			continue
		}
		kept = trial
	}
	p, err := graph.New(g.N(), kept)
	if err != nil {
		t.Fatal(err)
	}
	solver, err := cholesky.NewLapSolver(p)
	if err != nil {
		t.Fatal(err)
	}
	return p, solver
}

func cloneScorer(s *EdgeScorer) *EdgeScorer {
	c := &EdgeScorer{T: s.T, R: s.R, Probes: make([][]float64, len(s.Probes))}
	for i, h := range s.Probes {
		c.Probes[i] = append([]float64(nil), h...)
	}
	return c
}

// With p == g the power step is the identity on zero-mean probes, and the
// Gauss–Seidel relaxation of StepLocal has the current probes as an exact
// fixed point: a local refresh must leave them bit-identical.
func TestStepLocalFixedPoint(t *testing.T) {
	g, err := gen.Grid2D(8, 8, gen.UniformWeights, 5)
	if err != nil {
		t.Fatal(err)
	}
	solver, err := cholesky.NewLapSolver(g)
	if err != nil {
		t.Fatal(err)
	}
	sc := NewEdgeScorer(g, solver, 2, 4, 11)
	want := cloneScorer(sc)
	if n := sc.StepLocal(g, g, []int{27, 28}, 3, 4, 0); n <= 0 {
		t.Fatalf("StepLocal returned %d, want a positive ball size", n)
	}
	for j := range sc.Probes {
		for i := range sc.Probes[j] {
			if d := math.Abs(sc.Probes[j][i] - want.Probes[j][i]); d > 1e-12 {
				t.Fatalf("probe %d[%d] moved off the fixed point: %v -> %v",
					j, i, want.Probes[j][i], sc.Probes[j][i])
			}
		}
	}
}

// StepLocal's contract is a Dirichlet solve: with enough sweeps the
// refreshed probes must satisfy L_P h′ = L_G h_old on every ball row, with
// h′ = h_old frozen outside. (A full Step is not the reference — it deepens
// the power iteration and rescales all heats by ~λmax, which the local
// refresh deliberately does not do.)
func TestStepLocalSolvesDirichletSystem(t *testing.T) {
	g, err := gen.Grid2D(8, 8, gen.UniformWeights, 5)
	if err != nil {
		t.Fatal(err)
	}
	p, solver := prune(t, g)
	sc := NewEdgeScorer(g, solver, 2, 6, 17)

	// Reweight one edge of g.
	edges := append([]graph.Edge(nil), g.Edges()...)
	target := edges[len(edges)/2]
	for i := range edges {
		if edges[i] == target {
			edges[i].W *= 3
		}
	}
	g2, err := graph.New(g.N(), edges)
	if err != nil {
		t.Fatal(err)
	}

	old := cloneScorer(sc)
	const radius = 3
	touched := []int{target.U, target.V}
	if n := sc.StepLocal(g2, p, touched, radius, 400, 0); n <= 0 {
		t.Fatalf("StepLocal returned %d", n)
	}

	// Recompute the ball independently: radius hops over g2 from touched.
	inBall := map[int]bool{}
	frontier := append([]int(nil), touched...)
	for _, v := range frontier {
		inBall[v] = true
	}
	for hop := 0; hop < radius; hop++ {
		var next []int
		for _, u := range frontier {
			g2.Neighbors(u, func(v int, _ float64, _ int) bool {
				if !inBall[v] {
					inBall[v] = true
					next = append(next, v)
				}
				return true
			})
		}
		frontier = next
	}

	moved := false
	for j, h := range sc.Probes {
		hOld := old.Probes[j]
		rhs := map[int]float64{}
		scale := 1.0
		for v := range inBall {
			// rhs from the pre-step iterate, over g2.
			var acc float64
			g2.Neighbors(v, func(u int, w float64, _ int) bool {
				acc += w * (hOld[v] - hOld[u])
				return true
			})
			rhs[v] = acc
			if a := math.Abs(acc); a > scale {
				scale = a
			}
		}
		for v := range inBall {
			// lhs from the refreshed iterate, over p.
			var lhs float64
			p.Neighbors(v, func(u int, w float64, _ int) bool {
				lhs += w * (h[v] - h[u])
				return true
			})
			if d := math.Abs(lhs - rhs[v]); d > 1e-6*scale {
				t.Fatalf("probe %d: Dirichlet residual %g (scale %g) at ball vertex %d", j, d, scale, v)
			}
			if h[v] != hOld[v] {
				moved = true
			}
		}
	}
	if !moved {
		t.Fatal("perturbation did not move any ball probe value")
	}
}

// Probes outside the ball must not move, and a ball larger than maxBall
// must refuse without touching anything.
func TestStepLocalLocalityAndCap(t *testing.T) {
	g, err := gen.Grid2D(8, 8, gen.UniformWeights, 5)
	if err != nil {
		t.Fatal(err)
	}
	p, solver := prune(t, g)
	sc := NewEdgeScorer(g, solver, 2, 4, 23)
	before := cloneScorer(sc)

	if n := sc.StepLocal(g, p, []int{0}, 2, 3, 1); n != -1 {
		t.Fatalf("ball over cap: got %d, want -1", n)
	}
	for j := range sc.Probes {
		for i := range sc.Probes[j] {
			if sc.Probes[j][i] != before.Probes[j][i] {
				t.Fatalf("refused StepLocal still moved probe %d[%d]", j, i)
			}
		}
	}

	// Radius-1 ball around vertex 0 of the grid: only 0 and its g-neighbors
	// may move.
	inBall := map[int]bool{0: true}
	g.Neighbors(0, func(v int, _ float64, _ int) bool {
		inBall[v] = true
		return true
	})
	if n := sc.StepLocal(g, p, []int{0}, 1, 3, 0); n != len(inBall) {
		t.Fatalf("ball size: got %d, want %d", n, len(inBall))
	}
	for j := range sc.Probes {
		for i := range sc.Probes[j] {
			if !inBall[i] && sc.Probes[j][i] != before.Probes[j][i] {
				t.Fatalf("probe %d[%d] outside the ball moved", j, i)
			}
		}
	}
}
