package core

import (
	"graphspar/internal/graph"
	"graphspar/internal/vecmath"
)

// EdgeScorer is the exported per-edge score path of the embedding (§3.2):
// it retains the r probe vectors h_t,j produced by t-step generalized
// power iterations so that individual edges can be (re-)scored long after
// the embedding ran. Sparsify uses the heats in bulk and discards the
// vectors; the dynamic maintainer keeps an EdgeScorer alive across edge
// updates, scoring new candidates against the thresholds of the last full
// filter pass and refreshing the vectors with warm-started power steps
// after a perturbation instead of re-embedding from scratch.
//
// A scorer built with the same (t, r, seed) as EmbedOffTree produces
// bit-identical heats: both seed probe j through the same derivation and
// accumulate per-probe contributions in probe order.
type EdgeScorer struct {
	// T and R echo the embedding depth and probe count the scorer was
	// built with.
	T, R int
	// Probes are the final iterates h_t,j, one zero-mean vector of length
	// n per probe.
	Probes [][]float64

	// StepLocal scratch, reused across calls so a local refresh costs
	// O(ball volume), not O(n).
	mark  []int // mark[v] == stamp: v is in the current ball
	pos   []int // ball position of v, valid where mark[v] == stamp
	stamp int
	ball  []int
	rhs   []float64
}

// NewEdgeScorer runs the embedding iteration of EmbedOffTree — r
// independent t-step generalized power iterations from Rademacher starts —
// against graph g and the L_P⁺ applier solver, and keeps the resulting
// probe vectors.
func NewEdgeScorer(g *graph.Graph, solver Solver, t, r int, seed uint64) *EdgeScorer {
	n := g.N()
	s := &EdgeScorer{T: t, R: r, Probes: make([][]float64, r)}
	y := make([]float64, n)
	for j := 0; j < r; j++ {
		h := make([]float64, n)
		rng := vecmath.NewRNG(probeSeed(seed, j))
		rng.FillRademacher(h)
		vecmath.Deflate(h)
		for step := 0; step < t; step++ {
			g.LapMulVec(y, h)
			solver.Solve(h, y)
			vecmath.Deflate(h)
		}
		s.Probes[j] = h
	}
	return s
}

// Heat returns the Joule heat of one edge under the stored embedding:
// Σ_j w·(h_j(u) − h_j(v))² (eq. 6 summed per eq. 12).
func (s *EdgeScorer) Heat(e graph.Edge) float64 {
	var heat float64
	for _, h := range s.Probes {
		d := h[e.U] - h[e.V]
		heat += e.W * d * d
	}
	return heat
}

// Score computes the heats of the listed edge ids of g plus the maximum,
// in the same (id-parallel, probe-ordered) form EmbedOffTree returns.
func (s *EdgeScorer) Score(g *graph.Graph, offIDs []int) ([]float64, float64) {
	heats := make([]float64, len(offIDs))
	var maxHeat float64
	for i, id := range offIDs {
		e := g.Edge(id)
		for _, h := range s.Probes {
			d := h[e.U] - h[e.V]
			heats[i] += e.W * d * d
		}
		if heats[i] > maxHeat {
			maxHeat = heats[i]
		}
	}
	return heats, maxHeat
}

// Step advances every probe vector by one warm-started generalized power
// step h ← L_P⁺ L_G h against the *current* graph and solver. After an
// edge perturbation, ΔL_G (and ΔL_P) have support only on the touched
// vertices, so the input residual of this step differs from the converged
// pre-update iteration exactly on the perturbed region; one step folds
// the perturbation back into the embedding at the cost of r solves
// instead of a full r·t re-embedding from fresh random starts. Higher
// powers also sharpen the spectral weighting toward λmax, so heats stay
// comparable against the thresholds of the last full pass.
func (s *EdgeScorer) Step(g *graph.Graph, solver Solver) {
	y := make([]float64, g.N())
	for _, h := range s.Probes {
		g.LapMulVec(y, h)
		solver.Solve(h, y)
		vecmath.Deflate(h)
	}
}

// StepLocal is the ball-local form of Step: after a batch whose support is
// the touched vertices, the residual of the power iteration h ← L_P⁺ L_G h
// differs from its converged value only near the perturbation, so the step
// is solved as a Dirichlet problem — L_P h′ = L_G h restricted to the
// radius-hop ball around touched in g's adjacency, with h frozen on the
// boundary — by a fixed number of Gauss–Seidel sweeps in BFS order. Cost is
// O(r · sweeps · vol(ball)) instead of O(r · (m + fill)): flat in graph
// size for bounded-degree graphs and batch sizes.
//
// No deflation is applied: heats consume only probe differences
// h(u) − h(v), which are invariant under the constant shifts deflation
// removes, and the fixed boundary pins the component mean.
//
// If the ball would exceed maxBall vertices (maxBall <= 0: no cap),
// StepLocal refuses, leaves every probe untouched and returns -1 so the
// caller can fall back to a full Step. Otherwise it returns the number of
// ball vertices refreshed.
func (s *EdgeScorer) StepLocal(g, p *graph.Graph, touched []int, radius, sweeps, maxBall int) int {
	n := g.N()
	if len(s.mark) != n {
		s.mark = make([]int, n)
		s.pos = make([]int, n)
		s.stamp = 0
	}
	s.stamp++
	stamp := s.stamp
	ball := s.ball[:0]
	for _, v := range touched {
		if v >= 0 && v < n && s.mark[v] != stamp {
			s.mark[v] = stamp
			ball = append(ball, v)
		}
	}
	frontier := len(ball)
	for hop := 0; hop < radius; hop++ {
		start := len(ball) - frontier
		for _, u := range ball[start:] {
			g.Neighbors(u, func(v int, _ float64, _ int) bool {
				if s.mark[v] != stamp {
					s.mark[v] = stamp
					ball = append(ball, v)
				}
				return true
			})
		}
		frontier = len(ball) - start - frontier
		if maxBall > 0 && len(ball) > maxBall {
			s.ball = ball
			return -1
		}
	}
	s.ball = ball
	if len(ball) == 0 {
		return 0
	}
	for i, v := range ball {
		s.pos[v] = i
	}
	if cap(s.rhs) < len(ball) {
		s.rhs = make([]float64, len(ball))
	}
	b := s.rhs[:len(ball)]
	for _, h := range s.Probes {
		// b = (L_G h)|ball, from the pre-step iterate.
		for i, u := range ball {
			var acc float64
			g.Neighbors(u, func(v int, w float64, _ int) bool {
				acc += w * (h[u] - h[v])
				return true
			})
			b[i] = acc
		}
		// Gauss–Seidel on L_P h′ = b inside the ball, h′ = h outside.
		for sweep := 0; sweep < sweeps; sweep++ {
			for i, u := range ball {
				var num, deg float64
				p.Neighbors(u, func(v int, w float64, _ int) bool {
					num += w * h[v]
					deg += w
					return true
				})
				if deg > 0 {
					h[u] = (b[i] + num) / deg
				}
			}
		}
	}
	return len(ball)
}
