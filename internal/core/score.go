package core

import (
	"graphspar/internal/graph"
	"graphspar/internal/vecmath"
)

// EdgeScorer is the exported per-edge score path of the embedding (§3.2):
// it retains the r probe vectors h_t,j produced by t-step generalized
// power iterations so that individual edges can be (re-)scored long after
// the embedding ran. Sparsify uses the heats in bulk and discards the
// vectors; the dynamic maintainer keeps an EdgeScorer alive across edge
// updates, scoring new candidates against the thresholds of the last full
// filter pass and refreshing the vectors with warm-started power steps
// after a perturbation instead of re-embedding from scratch.
//
// A scorer built with the same (t, r, seed) as EmbedOffTree produces
// bit-identical heats: both seed probe j through the same derivation and
// accumulate per-probe contributions in probe order.
type EdgeScorer struct {
	// T and R echo the embedding depth and probe count the scorer was
	// built with.
	T, R int
	// Probes are the final iterates h_t,j, one zero-mean vector of length
	// n per probe.
	Probes [][]float64
}

// NewEdgeScorer runs the embedding iteration of EmbedOffTree — r
// independent t-step generalized power iterations from Rademacher starts —
// against graph g and the L_P⁺ applier solver, and keeps the resulting
// probe vectors.
func NewEdgeScorer(g *graph.Graph, solver Solver, t, r int, seed uint64) *EdgeScorer {
	n := g.N()
	s := &EdgeScorer{T: t, R: r, Probes: make([][]float64, r)}
	y := make([]float64, n)
	for j := 0; j < r; j++ {
		h := make([]float64, n)
		rng := vecmath.NewRNG(probeSeed(seed, j))
		rng.FillRademacher(h)
		vecmath.Deflate(h)
		for step := 0; step < t; step++ {
			g.LapMulVec(y, h)
			solver.Solve(h, y)
			vecmath.Deflate(h)
		}
		s.Probes[j] = h
	}
	return s
}

// Heat returns the Joule heat of one edge under the stored embedding:
// Σ_j w·(h_j(u) − h_j(v))² (eq. 6 summed per eq. 12).
func (s *EdgeScorer) Heat(e graph.Edge) float64 {
	var heat float64
	for _, h := range s.Probes {
		d := h[e.U] - h[e.V]
		heat += e.W * d * d
	}
	return heat
}

// Score computes the heats of the listed edge ids of g plus the maximum,
// in the same (id-parallel, probe-ordered) form EmbedOffTree returns.
func (s *EdgeScorer) Score(g *graph.Graph, offIDs []int) ([]float64, float64) {
	heats := make([]float64, len(offIDs))
	var maxHeat float64
	for i, id := range offIDs {
		e := g.Edge(id)
		for _, h := range s.Probes {
			d := h[e.U] - h[e.V]
			heats[i] += e.W * d * d
		}
		if heats[i] > maxHeat {
			maxHeat = heats[i]
		}
	}
	return heats, maxHeat
}

// Step advances every probe vector by one warm-started generalized power
// step h ← L_P⁺ L_G h against the *current* graph and solver. After an
// edge perturbation, ΔL_G (and ΔL_P) have support only on the touched
// vertices, so the input residual of this step differs from the converged
// pre-update iteration exactly on the perturbed region; one step folds
// the perturbation back into the embedding at the cost of r solves
// instead of a full r·t re-embedding from fresh random starts. Higher
// powers also sharpen the spectral weighting toward λmax, so heats stay
// comparable against the thresholds of the last full pass.
func (s *EdgeScorer) Step(g *graph.Graph, solver Solver) {
	y := make([]float64, g.N())
	for _, h := range s.Probes {
		g.LapMulVec(y, h)
		solver.Solve(h, y)
		vecmath.Deflate(h)
	}
}
