package core

import (
	"context"
	"fmt"
	"math"
	"sort"

	"graphspar/internal/cholesky"
	"graphspar/internal/graph"
	"graphspar/internal/vecmath"
)

// Refilter runs bounded global embedding passes over a partial edge
// selection: starting from the subgraph spanned by keptIDs, it estimates
// the extreme generalized eigenvalues of (L_G, L_P), and while the σ²
// target is unmet it recovers the candidate edges whose normalized Joule
// heat beats the similarity-aware threshold (eq. 15) — exactly the
// per-round filter of Sparsify, applied at full size to an externally
// chosen candidate set. The sharded engine uses it to re-admit partition
// cut edges after stitching; the multilevel engine uses it to re-filter
// each finer level after interpolating a coarse selection.
//
// Each pass adds one heat-ranked, BatchFraction-capped batch of
// candidates and costs one full-size factorization; passes stop early
// once the estimated σ² meets the target. keptIDs must span a connected
// subgraph of g. The returned kept slice is the final edge-id selection
// (the input slices are not modified), recovered counts the admitted
// candidates, and lmax/lmin are the estimates of the last pass.
func Refilter(ctx context.Context, g *graph.Graph, keptIDs, candIDs []int, opt Options, rounds, workers int, seed uint64) (p *graph.Graph, kept []int, recovered int, lmax, lmin float64, err error) {
	t, r, powerIters, batchFraction := opt.EffectiveEmbed(g.N())
	sigma := opt.SigmaSq
	rng := vecmath.NewRNG(seed)

	kept = append([]int(nil), keptIDs...)
	cands := append([]int(nil), candIDs...)
	p, err = g.SubgraphEdges(kept)
	if err != nil {
		return nil, nil, 0, 0, 0, fmt.Errorf("refilter: kept subgraph: %w", err)
	}
	for pass := 0; pass < rounds; pass++ {
		if err := ctx.Err(); err != nil {
			return nil, nil, 0, 0, 0, err
		}
		solver, err := cholesky.NewLapSolverWS(p, opt.Workspace.Chol())
		if err != nil {
			return nil, nil, 0, 0, 0, fmt.Errorf("refilter: solver: %w", err)
		}
		lmax, err = EstimateLambdaMax(g, p, solver, powerIters, rng.Uint64())
		if err != nil {
			return nil, nil, 0, 0, 0, fmt.Errorf("refilter: λmax estimation: %w", err)
		}
		lmin = EstimateLambdaMin(g, p)
		if lmax < lmin {
			lmax = lmin
		}
		if lmin <= 0 || lmax/lmin <= sigma || len(cands) == 0 {
			break
		}

		heats, maxHeat := embedOffTree(g, solver, cands, t, r, rng.Uint64(), workers, opt.Workspace)
		theta := Threshold(sigma, lmin, lmax, t)

		// Rank the passing candidates by heat and add them in capped
		// batches — §3.7's small-portions discipline at full size. A loose
		// estimate (think a badly cut SBM, or a deep coarse selection) can
		// make θσ admit nearly every candidate; accepting them all at once
		// would densify far past what the target needs.
		type cand struct {
			pos  int
			heat float64
		}
		var passing []cand
		if maxHeat > 0 {
			for i, h := range heats {
				if h/maxHeat >= theta {
					passing = append(passing, cand{i, h})
				}
			}
		}
		sort.Slice(passing, func(a, b int) bool {
			if passing[a].heat != passing[b].heat {
				return passing[a].heat > passing[b].heat
			}
			return passing[a].pos < passing[b].pos
		})
		limit := int(math.Ceil(batchFraction * float64(len(passing))))
		if limit < 1 {
			limit = 1
		}
		if len(passing) == 0 {
			// Estimates say the target is unmet but no candidate beats the
			// threshold: force the hottest candidate in to keep moving.
			best, bestHeat := -1, -1.0
			for i, h := range heats {
				if h > bestHeat {
					best, bestHeat = i, h
				}
			}
			if best < 0 {
				break
			}
			passing = []cand{{best, bestHeat}}
		}
		if limit > len(passing) {
			limit = len(passing)
		}
		taken := make(map[int]bool, limit)
		for _, c := range passing[:limit] {
			taken[c.pos] = true
			kept = append(kept, cands[c.pos])
		}
		recovered += limit
		rest := cands[:0:0]
		for i, id := range cands {
			if !taken[i] {
				rest = append(rest, id)
			}
		}
		cands = rest
		p, err = g.SubgraphEdges(kept)
		if err != nil {
			return nil, nil, 0, 0, 0, fmt.Errorf("refilter: densified subgraph: %w", err)
		}
	}
	return p, kept, recovered, lmax, lmin, nil
}
