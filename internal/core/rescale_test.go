package core

import (
	"testing"

	"graphspar/internal/gen"
)

func TestRescaleOffTreeImprovesOrKeeps(t *testing.T) {
	g, err := gen.Grid2D(16, 16, gen.UniformWeights, 61)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Sparsify(g, Options{SigmaSq: 60, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	rr, err := RescaleOffTree(g, res, nil, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Re-scaling must never hurt the estimated condition number (γ=1 is
	// in the grid).
	if rr.SigmaSq > res.SigmaSqAchieved+1e-9 {
		t.Fatalf("rescale worsened σ²: %v > %v", rr.SigmaSq, res.SigmaSqAchieved)
	}
	if rr.Gamma < 1 {
		t.Fatalf("gamma %v < 1", rr.Gamma)
	}
	if rr.Sparsifier.M() != res.Sparsifier.M() {
		t.Fatal("rescaling must not change edge count")
	}
}

func TestRescaleOffTreeNoOffTreeEdges(t *testing.T) {
	// A tree input has no off-tree edges: rescale is a no-op.
	g, _ := gen.Path(12)
	res, err := Sparsify(g, Options{SigmaSq: 10})
	if err != nil {
		t.Fatal(err)
	}
	rr, err := RescaleOffTree(g, res, []float64{2, 3}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rr.Gamma != 1 || rr.Sparsifier != res.Sparsifier {
		t.Fatal("tree rescale should be identity")
	}
}

func TestRescaleOffTreeValidation(t *testing.T) {
	g, _ := gen.Grid2D(6, 6, gen.UniformWeights, 1)
	if _, err := RescaleOffTree(g, nil, nil, 1); err == nil {
		t.Fatal("nil result should fail")
	}
	res, err := Sparsify(g, Options{SigmaSq: 30, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.OffTreeAddedIDs) > 0 {
		if _, err := RescaleOffTree(g, res, []float64{-2}, 1); err == nil {
			t.Fatal("negative gamma should fail")
		}
	}
}
