package core_test

import (
	"fmt"

	"graphspar/internal/core"
	"graphspar/internal/gen"
)

// ExampleSparsify demonstrates the basic similarity-aware sparsification
// flow: pick a σ² target and receive a sparsifier whose relative condition
// number is bounded by it.
func ExampleSparsify() {
	g, err := gen.Grid2D(40, 40, gen.UniformWeights, 42)
	if err != nil {
		panic(err)
	}
	res, err := core.Sparsify(g, core.Options{SigmaSq: 100, Seed: 42})
	if err != nil {
		panic(err)
	}
	fmt.Println("spanning subgraph:", res.Sparsifier.N() == g.N())
	fmt.Println("connected:", res.Sparsifier.IsConnected())
	fmt.Println("guarantee met:", res.SigmaSqAchieved <= 100)
	fmt.Println("ultra-sparse:", res.Sparsifier.M() < g.M())
	// Output:
	// spanning subgraph: true
	// connected: true
	// guarantee met: true
	// ultra-sparse: true
}

// ExampleThreshold shows the σ-aware filtering threshold of eq. 15: the
// larger the similarity target, the higher the bar an off-tree edge must
// clear.
func ExampleThreshold() {
	lmin, lmax := 1.0, 1000.0
	t := 2
	fmt.Printf("θ(σ²=100) = %.3e\n", core.Threshold(100, lmin, lmax, t))
	fmt.Printf("θ(σ²=500) = %.3e\n", core.Threshold(500, lmin, lmax, t))
	// Output:
	// θ(σ²=100) = 1.000e-05
	// θ(σ²=500) = 3.125e-02
}

// ExampleEstimateLambdaMin computes the node-coloring bound of eq. 18 for
// a triangle versus its spanning path.
func ExampleEstimateLambdaMin() {
	g, _ := gen.Complete(3)
	p, _ := gen.Path(3)
	fmt.Printf("λ̃min = %.2f\n", core.EstimateLambdaMin(g, p))
	// Output:
	// λ̃min = 1.00
}
