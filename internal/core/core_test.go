package core

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"graphspar/internal/gen"
	"graphspar/internal/graph"
	"graphspar/internal/lsst"
	"graphspar/internal/vecmath"
)

func TestOptionsValidation(t *testing.T) {
	g, _ := gen.Grid2D(4, 4, gen.UnitWeights, 1)
	if _, err := Sparsify(g, Options{SigmaSq: 0.5}); !errors.Is(err, ErrBadSigma) {
		t.Fatalf("err = %v, want ErrBadSigma", err)
	}
	if _, err := Sparsify(g, Options{SigmaSq: 1}); !errors.Is(err, ErrBadSigma) {
		t.Fatalf("σ²=1 must be rejected: %v", err)
	}
}

func TestSparsifyRejectsDisconnected(t *testing.T) {
	g, _ := graph.New(4, []graph.Edge{{U: 0, V: 1, W: 1}, {U: 2, V: 3, W: 1}})
	if _, err := Sparsify(g, Options{SigmaSq: 100}); err == nil {
		t.Fatal("expected connectivity error")
	}
}

func TestSparsifyTreeInput(t *testing.T) {
	// A tree sparsifies to itself with κ = 1.
	g, _ := gen.Path(20)
	res, err := Sparsify(g, Options{SigmaSq: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sparsifier.M() != g.M() {
		t.Fatalf("tree should keep all %d edges, got %d", g.M(), res.Sparsifier.M())
	}
	if math.Abs(res.SigmaSqAchieved-1) > 1e-6 {
		t.Fatalf("κ = %v, want 1", res.SigmaSqAchieved)
	}
}

func TestSparsifyGridMeetsTarget(t *testing.T) {
	g, err := gen.Grid2D(20, 20, gen.UniformWeights, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Sparsify(g, Options{SigmaSq: 30, Seed: 7})
	if err != nil {
		t.Fatalf("Sparsify: %v (achieved %v)", err, res)
	}
	if res.SigmaSqAchieved > 30 {
		t.Fatalf("σ² achieved %v > target 30", res.SigmaSqAchieved)
	}
	// Sparsifier must be a connected spanning subgraph.
	if !res.Sparsifier.IsConnected() {
		t.Fatal("sparsifier must be connected")
	}
	if res.Sparsifier.N() != g.N() {
		t.Fatal("vertex set must be preserved")
	}
	// Subgraph property: every sparsifier edge exists in G with the same
	// weight.
	gIdx := g.EdgeIndex()
	for _, e := range res.Sparsifier.Edges() {
		id, ok := gIdx[[2]int{e.U, e.V}]
		if !ok {
			t.Fatalf("edge %+v not in G", e)
		}
		if g.Edge(id).W != e.W {
			t.Fatalf("edge weight changed: %v vs %v", e.W, g.Edge(id).W)
		}
	}
	// Ultra-sparse: far fewer edges than G.
	if res.Sparsifier.M() >= g.M() {
		t.Fatal("sparsifier did not drop any edges")
	}
}

func TestSparsifyTighterTargetKeepsMoreEdges(t *testing.T) {
	g, err := gen.Grid2D(18, 18, gen.UniformWeights, 5)
	if err != nil {
		t.Fatal(err)
	}
	loose, err := Sparsify(g, Options{SigmaSq: 200, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	tight, err := Sparsify(g, Options{SigmaSq: 10, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if tight.Sparsifier.M() < loose.Sparsifier.M() {
		t.Fatalf("tighter σ² must keep at least as many edges: %d vs %d",
			tight.Sparsifier.M(), loose.Sparsifier.M())
	}
	if tight.SigmaSqAchieved > 10 || loose.SigmaSqAchieved > 200 {
		t.Fatalf("targets missed: %v / %v", tight.SigmaSqAchieved, loose.SigmaSqAchieved)
	}
}

func TestSparsifyRoundsRecorded(t *testing.T) {
	g, err := gen.Grid2D(15, 15, gen.UniformWeights, 9)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Sparsify(g, Options{SigmaSq: 20, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) == 0 {
		t.Fatal("no round statistics recorded")
	}
	for i, r := range res.Rounds {
		if r.Round != i+1 {
			t.Fatalf("round numbering broken at %d", i)
		}
		if r.LambdaMin < 1-1e-9 {
			t.Fatalf("λmin estimate %v < 1 violates interlacing", r.LambdaMin)
		}
		if r.LambdaMax < r.LambdaMin-1e-9 {
			t.Fatalf("λmax %v < λmin %v", r.LambdaMax, r.LambdaMin)
		}
	}
	if res.Density() < 1.0-1e-12 {
		t.Fatalf("density %v below tree density", res.Density())
	}
}

func TestEstimateLambdaMinExactOnKnownCase(t *testing.T) {
	// G = triangle with unit weights, P = path 0-1-2. Degrees: G all 2;
	// P: deg(0)=1, deg(1)=2, deg(2)=1. Bound = min(2/1, 2/2, 2/1) = 1...
	// wait deg ratios: 2/1=2, 2/2=1, 2/1=2 → estimate 1. True λmin of
	// L_P⁺L_G on 1⊥ is also ≥ 1; estimate returns 1.
	g, _ := graph.New(3, []graph.Edge{{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 1}, {U: 0, V: 2, W: 1}})
	p, _ := graph.New(3, []graph.Edge{{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 1}})
	got := EstimateLambdaMin(g, p)
	if math.Abs(got-1) > 1e-12 {
		t.Fatalf("λ̃min = %v, want 1", got)
	}
}

func TestEstimateLambdaMinIdenticalGraphs(t *testing.T) {
	g, _ := gen.Grid2D(5, 5, gen.UniformWeights, 1)
	if got := EstimateLambdaMin(g, g); math.Abs(got-1) > 1e-12 {
		t.Fatalf("λ̃min(G,G) = %v, want 1", got)
	}
}

func TestThresholdBehaviour(t *testing.T) {
	// θσ = (σ²λmin/λmax)^(2t+1).
	if got := Threshold(100, 1, 1000, 2); math.Abs(got-math.Pow(0.1, 5)) > 1e-15 {
		t.Fatalf("θ = %v", got)
	}
	// Saturates at 1 when the target is already met.
	if got := Threshold(100, 1, 50, 2); got != 1 {
		t.Fatalf("θ should cap at 1, got %v", got)
	}
	// Degenerate λmax.
	if got := Threshold(100, 1, 0, 2); got != 1 {
		t.Fatalf("θ(λmax=0) = %v, want 1", got)
	}
	// Larger t sharpens the filter (smaller θ for base < 1).
	if Threshold(10, 1, 1000, 3) >= Threshold(10, 1, 1000, 1) {
		t.Fatal("threshold should shrink with t")
	}
}

func TestEmbedOffTreeHeatIdentity(t *testing.T) {
	// With t=0 the heats are just w(h0 diffs); with t>=1, per-vector heat
	// sums must equal hᵀ(L_G − L_P)h. We verify the identity for one
	// vector by reimplementing the iteration here.
	g, err := gen.Grid2D(6, 6, gen.UniformWeights, 11)
	if err != nil {
		t.Fatal(err)
	}
	backbone, _, offIDs, err := lsst.Extract(g, lsst.MaxWeight, 1)
	if err != nil {
		t.Fatal(err)
	}
	n := g.N()
	seed := uint64(99)
	rng := vecmath.NewRNG(seed)
	h := make([]float64, n)
	rng.FillRademacher(h)
	vecmath.Deflate(h)
	y := make([]float64, n)
	tSteps := 2
	for s := 0; s < tSteps; s++ {
		g.LapMulVec(y, h)
		backbone.Solve(h, y)
		vecmath.Deflate(h)
	}
	// Total heat over off-tree edges must equal hᵀL_G h − hᵀL_P h.
	p := backbone.Graph()
	want := g.LapQuadForm(h) - p.LapQuadForm(h)
	heats, _ := EmbedOffTree(g, backbone, offIDs, tSteps, 1, seed)
	var got float64
	for _, v := range heats {
		got += v
	}
	if math.Abs(got-want) > 1e-8*(1+math.Abs(want)) {
		t.Fatalf("heat total %v != quadratic-form difference %v", got, want)
	}
}

func TestEmbedOffTreeMoreVectorsMoreHeat(t *testing.T) {
	g, err := gen.Grid2D(8, 8, gen.UniformWeights, 13)
	if err != nil {
		t.Fatal(err)
	}
	backbone, _, offIDs, err := lsst.Extract(g, lsst.MaxWeight, 1)
	if err != nil {
		t.Fatal(err)
	}
	h1, m1 := EmbedOffTree(g, backbone, offIDs, 2, 1, 5)
	h4, m4 := EmbedOffTree(g, backbone, offIDs, 2, 4, 5)
	if m1 <= 0 || m4 <= 0 {
		t.Fatal("zero max heat")
	}
	var s1, s4 float64
	for i := range h1 {
		s1 += h1[i]
		s4 += h4[i]
	}
	if s4 <= s1 {
		t.Fatalf("4-vector heat sum %v should exceed 1-vector %v", s4, s1)
	}
}

func TestSparsifyWithAKPWBackbone(t *testing.T) {
	g, err := gen.Grid2D(14, 14, gen.LogUniform, 21)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Sparsify(g, Options{SigmaSq: 50, TreeAlg: lsst.AKPW, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.SigmaSqAchieved > 50 {
		t.Fatalf("σ² achieved %v", res.SigmaSqAchieved)
	}
}

func TestSparsifyWithAMGSolver(t *testing.T) {
	g, err := gen.Grid2D(12, 12, gen.UniformWeights, 23)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Sparsify(g, Options{SigmaSq: 40, Solver: AMG, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.SigmaSqAchieved > 40 {
		t.Fatalf("σ² achieved %v with AMG", res.SigmaSqAchieved)
	}
}

func TestSparsifySimilarityCheckReducesEdges(t *testing.T) {
	g, err := gen.Grid2D(16, 16, gen.UniformWeights, 31)
	if err != nil {
		t.Fatal(err)
	}
	with, err := Sparsify(g, Options{SigmaSq: 25, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	without, err := Sparsify(g, Options{SigmaSq: 25, Seed: 4, DisableSimilarity: true})
	if err != nil {
		t.Fatal(err)
	}
	// Both must hit the target; the similarity check typically needs no
	// more edges (it spreads the additions).
	if with.SigmaSqAchieved > 25 || without.SigmaSqAchieved > 25 {
		t.Fatalf("targets missed: %v / %v", with.SigmaSqAchieved, without.SigmaSqAchieved)
	}
}

func TestVerifySimilarityAgreesWithEstimates(t *testing.T) {
	g, err := gen.Grid2D(12, 12, gen.UniformWeights, 41)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Sparsify(g, Options{SigmaSq: 30, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	solver, err := newInnerSolver(res.Sparsifier, res.Tree, TreePCG, 1e-10, nil)
	if err != nil {
		t.Fatal(err)
	}
	lmax, lmin, cond, err := VerifySimilarity(g, res.Sparsifier, solver, 60, 9)
	if err != nil {
		t.Fatal(err)
	}
	if cond > 30*1.5 {
		t.Fatalf("independent κ = %v far above target 30", cond)
	}
	if lmin < 1-1e-9 || lmax < lmin {
		t.Fatalf("Lanczos extremes inconsistent: %v %v", lmin, lmax)
	}
	// Power-iteration estimate should be within a factor ~1.5 of Lanczos.
	if res.LambdaMax > lmax*1.5+1 || lmax > res.LambdaMax*1.5+1 {
		t.Fatalf("λmax estimates diverge: power %v vs lanczos %v", res.LambdaMax, lmax)
	}
}

func TestHeatSpectrum(t *testing.T) {
	g, err := gen.Grid2D(15, 15, gen.UniformWeights, 51)
	if err != nil {
		t.Fatal(err)
	}
	norm, ths, err := HeatSpectrum(g, 1, 4, []float64{100, 500}, lsst.MaxWeight, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(norm) == 0 || len(ths) != 2 {
		t.Fatalf("spectrum sizes: %d heats, %d thresholds", len(norm), len(ths))
	}
	// Sorted descending, normalized to max 1.
	if math.Abs(norm[0]-1) > 1e-12 {
		t.Fatalf("top normalized heat %v, want 1", norm[0])
	}
	for i := 0; i+1 < len(norm); i++ {
		if norm[i] < norm[i+1] {
			t.Fatal("heats not sorted descending")
		}
	}
	// Looser σ² (500) keeps fewer edges → higher threshold.
	if ths[1] <= ths[0] {
		t.Fatalf("θ(500)=%v should exceed θ(100)=%v", ths[1], ths[0])
	}
}

func TestHeatSpectrumOnTreeFails(t *testing.T) {
	g, _ := gen.Path(10)
	if _, _, err := HeatSpectrum(g, 1, 2, []float64{100}, lsst.MaxWeight, 1); err == nil {
		t.Fatal("tree has no off-tree edges; expected error")
	}
}

func TestSolverKindString(t *testing.T) {
	if Direct.String() != "direct" || TreePCG.String() != "treepcg" || AMG.String() != "amg" {
		t.Fatal("SolverKind names wrong")
	}
	if SolverKind(9).String() == "" {
		t.Fatal("unknown kind should print something")
	}
}

func TestSparsifyMaxEdgesBudget(t *testing.T) {
	g, err := gen.Grid2D(16, 16, gen.UniformWeights, 77)
	if err != nil {
		t.Fatal(err)
	}
	budget := g.N() + 20 // tree (n-1) plus ~21 off-tree edges
	res, err := Sparsify(g, Options{SigmaSq: 2, MaxEdges: budget, Seed: 3})
	// σ²=2 is unreachable within the budget; expect ErrNoTarget with the
	// budget respected.
	if !errors.Is(err, ErrNoTarget) {
		t.Fatalf("err = %v, want ErrNoTarget", err)
	}
	if res.Sparsifier.M() > budget {
		t.Fatalf("budget violated: %d > %d", res.Sparsifier.M(), budget)
	}
	if res.Sparsifier.M() < g.N()-1 {
		t.Fatal("sparsifier lost tree edges")
	}
	if !res.Sparsifier.IsConnected() {
		t.Fatal("budgeted sparsifier must stay connected")
	}
}

func TestSparsifyAllInnerSolversAgree(t *testing.T) {
	g, err := gen.Grid2D(12, 12, gen.UniformWeights, 55)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []SolverKind{Direct, TreePCG, AMG} {
		res, err := Sparsify(g, Options{SigmaSq: 40, Solver: kind, Seed: 5})
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if res.SigmaSqAchieved > 40 {
			t.Fatalf("%v: σ² achieved %v", kind, res.SigmaSqAchieved)
		}
		if !res.Sparsifier.IsConnected() {
			t.Fatalf("%v: disconnected sparsifier", kind)
		}
	}
}

// Property: the sparsifier is always a connected spanning subgraph and the
// quadratic-form bound x'L_P x <= x'L_G x holds (P ⊆ G with same weights).
func TestQuickSparsifierDominatedQuadForm(t *testing.T) {
	f := func(seed uint64) bool {
		rng := vecmath.NewRNG(seed)
		g, err := gen.Grid2D(6+rng.Intn(5), 6+rng.Intn(5), gen.UniformWeights, seed)
		if err != nil {
			return false
		}
		res, err := Sparsify(g, Options{SigmaSq: 40, Seed: seed})
		if err != nil {
			return false
		}
		if !res.Sparsifier.IsConnected() {
			return false
		}
		x := make([]float64, g.N())
		for trial := 0; trial < 5; trial++ {
			rng.FillNormal(x)
			if res.Sparsifier.LapQuadForm(x) > g.LapQuadForm(x)+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

// Property: achieved σ² estimate respects the requested target across
// random seeds and sizes.
func TestQuickSigmaTargetsMet(t *testing.T) {
	f := func(seed uint64) bool {
		g, err := gen.Grid2D(10, 11, gen.UniformWeights, seed)
		if err != nil {
			return false
		}
		for _, s2 := range []float64{15, 60} {
			res, err := Sparsify(g, Options{SigmaSq: s2, Seed: seed})
			if err != nil || res.SigmaSqAchieved > s2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 6}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSparsifyGrid(b *testing.B) {
	g, err := gen.Grid2D(40, 40, gen.UniformWeights, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Sparsify(g, Options{SigmaSq: 100, Seed: uint64(i + 1)}); err != nil {
			b.Fatal(err)
		}
	}
}
