package core

import (
	"sync"

	"graphspar/internal/cholesky"
	"graphspar/internal/graph"
	"graphspar/internal/tree"
	"graphspar/internal/vecmath"
)

// DeriveSeed deterministically derives the i-th child seed from a master
// seed (golden-ratio stride; NewRNG's splitmix64 expansion decorrelates
// the streams; child 0 keeps the master seed itself). The embedding's
// probe vectors and the engine's per-shard seeds both derive through
// this one helper.
func DeriveSeed(seed uint64, i int) uint64 {
	return seed + uint64(i)*0x9e3779b97f4a7c15
}

// probeSeed seeds probe vector j. Sequential and parallel embedding both
// seed every vector through this, which is what makes their outputs
// bit-identical.
func probeSeed(seed uint64, j int) uint64 {
	return DeriveSeed(seed, j)
}

// sessionSolver returns a view of s that can run concurrently with it, or
// nil when s has no concurrency-safe session. Tree solvers write only to
// caller buffers and are shared outright; Cholesky solvers share their
// factorization through per-session scratch buffers. The iterative
// adapters (PCG, AMG) keep per-call state inside shared preconditioners,
// so they embed sequentially.
func sessionSolver(s Solver) Solver {
	switch v := s.(type) {
	case *tree.Tree:
		return v
	case *cholesky.LapSolver:
		return v.Session()
	default:
		return nil
	}
}

// probeHeats runs one t-step generalized power iteration from a fresh
// Rademacher vector and writes the per-edge heat contribution of that
// single probe into out. h and y are caller-owned length-n scratch
// buffers.
func probeHeats(g *graph.Graph, solver Solver, offIDs []int, t int, seed uint64, h, y, out []float64) {
	rng := vecmath.NewRNG(seed)
	rng.FillRademacher(h)
	vecmath.Deflate(h)
	for step := 0; step < t; step++ {
		g.LapMulVec(y, h)  // y = L_G h
		solver.Solve(h, y) // h = L_P⁺ y
		vecmath.Deflate(h)
	}
	for i, id := range offIDs {
		e := g.Edge(id)
		d := h[e.U] - h[e.V]
		out[i] = e.W * d * d
	}
}

// EmbedOffTreeParallel computes the same heats as EmbedOffTree with the r
// independent probe-vector solves spread over up to `workers` goroutines.
// Every vector gets a deterministic seed (probeSeed) and the per-vector
// contributions are reduced in vector order, so the result is
// bit-identical to the sequential path for every worker count. Solvers
// without a concurrency-safe session (see sessionSolver) fall back to one
// worker; the output is still identical.
func EmbedOffTreeParallel(g *graph.Graph, solver Solver, offIDs []int, t, r int, seed uint64, workers int) ([]float64, float64) {
	return embedOffTree(g, solver, offIDs, t, r, seed, workers, nil)
}

// embedOffTree is the embedding behind EmbedOffTree(Parallel), with the
// scratch vectors (h, y, per-probe contributions) drawn from ws. The
// returned heats slice is always freshly allocated — it escapes to the
// caller and is never pooled. Pooled buffers are fully overwritten by
// probeHeats before being read, so the result stays bit-identical to the
// un-pooled path for every worker count.
func embedOffTree(g *graph.Graph, solver Solver, offIDs []int, t, r int, seed uint64, workers int, ws *Workspace) ([]float64, float64) {
	n := g.N()
	if workers > r {
		workers = r
	}
	if workers < 1 {
		workers = 1
	}
	solvers := []Solver{solver}
	for len(solvers) < workers {
		s := sessionSolver(solver)
		if s == nil {
			solvers = solvers[:1]
			break
		}
		solvers = append(solvers, s)
	}
	workers = len(solvers)

	heats := make([]float64, len(offIDs))
	if workers == 1 {
		// Accumulate each probe in place, in vector order — O(|offIDs|)
		// memory, and the same summation order as the parallel reduction
		// below, so the two paths stay bit-identical.
		h := ws.vec(n)
		y := ws.vec(n)
		out := ws.vec(len(offIDs))
		for j := 0; j < r; j++ {
			probeHeats(g, solver, offIDs, t, probeSeed(seed, j), h, y, out)
			for i, v := range out {
				heats[i] += v
			}
		}
		ws.putVec(h)
		ws.putVec(y)
		ws.putVec(out)
	} else {
		contrib := make([][]float64, r)
		jobs := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(sv Solver) {
				defer wg.Done()
				h := ws.vec(n)
				y := ws.vec(n)
				for j := range jobs {
					out := ws.vec(len(offIDs))
					probeHeats(g, sv, offIDs, t, probeSeed(seed, j), h, y, out)
					contrib[j] = out
				}
				ws.putVec(h)
				ws.putVec(y)
			}(solvers[w])
		}
		for j := 0; j < r; j++ {
			jobs <- j
		}
		close(jobs)
		wg.Wait()
		// Fixed-order reduction: summation order must not depend on
		// worker scheduling or float rounding would break run-to-run
		// determinism. Slices are returned to the workspace as they are
		// folded in.
		for j := 0; j < r; j++ {
			for i, v := range contrib[j] {
				heats[i] += v
			}
			ws.putVec(contrib[j])
			contrib[j] = nil
		}
	}
	var maxHeat float64
	for _, v := range heats {
		if v > maxHeat {
			maxHeat = v
		}
	}
	return heats, maxHeat
}
