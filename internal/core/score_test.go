package core

import (
	"testing"

	"graphspar/internal/gen"
	"graphspar/internal/lsst"
)

// The exported scorer must reproduce EmbedOffTree's heats bit-for-bit when
// built with the same embedding parameters: the dynamic maintainer relies
// on scoring new edges against thresholds computed from EmbedOffTree-style
// heats.
func TestEdgeScorerMatchesEmbedOffTree(t *testing.T) {
	g, err := gen.Grid2D(12, 12, gen.UniformWeights, 7)
	if err != nil {
		t.Fatal(err)
	}
	backbone, _, offIDs, err := lsst.Extract(g, lsst.MaxWeight, 7)
	if err != nil {
		t.Fatal(err)
	}
	const tt, r, seed = 2, 6, 99
	want, wantMax := EmbedOffTree(g, backbone, offIDs, tt, r, seed)

	sc := NewEdgeScorer(g, backbone, tt, r, seed)
	got, gotMax := sc.Score(g, offIDs)
	if gotMax != wantMax {
		t.Fatalf("max heat: got %v want %v", gotMax, wantMax)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("heat[%d]: got %v want %v", i, got[i], want[i])
		}
		if h := sc.Heat(g.Edge(offIDs[i])); h != want[i] {
			t.Fatalf("Heat(edge %d): got %v want %v", offIDs[i], h, want[i])
		}
	}
}

// One warm-started Step must keep probe vectors zero-mean and must match a
// from-scratch embedding of depth t+1 (same seeds, one extra step).
func TestEdgeScorerStepDeepensEmbedding(t *testing.T) {
	g, err := gen.Grid2D(10, 10, gen.UniformWeights, 3)
	if err != nil {
		t.Fatal(err)
	}
	backbone, _, offIDs, err := lsst.Extract(g, lsst.MaxWeight, 3)
	if err != nil {
		t.Fatal(err)
	}
	const r, seed = 5, 42
	sc := NewEdgeScorer(g, backbone, 1, r, seed)
	sc.Step(g, backbone)
	deeper := NewEdgeScorer(g, backbone, 2, r, seed)

	got, _ := sc.Score(g, offIDs)
	want, _ := deeper.Score(g, offIDs)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("stepped heat[%d]: got %v want %v", i, got[i], want[i])
		}
	}
	for j, h := range sc.Probes {
		var mean float64
		for _, v := range h {
			mean += v
		}
		mean /= float64(len(h))
		if mean > 1e-12 || mean < -1e-12 {
			t.Fatalf("probe %d mean %v after Step, want 0", j, mean)
		}
	}
}
