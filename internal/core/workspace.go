package core

import (
	"sync"

	"graphspar/internal/cholesky"
)

// Workspace pools the sparsifier's per-call scratch so repeated runs over
// same-sized graphs — the serving daemon's job loop, the dynamic
// maintainer's rebuild path — stop churning the allocator: the embedding's
// probe and propagation vectors (h, y and the per-probe heat
// contributions) come from a float pool, and the inner direct solver's
// factorization scratch comes from an embedded cholesky.Workspace.
//
// Thread one through Options.Workspace; there are deliberately no package
// globals. A Workspace is safe for concurrent use, so one per Sparsifier
// (shared by however many goroutines call it) is the intended shape. A
// nil *Workspace is valid everywhere and falls back to fresh allocations,
// reproducing the un-pooled behavior exactly.
//
// Pooling never changes results: every pooled buffer is fully overwritten
// before it is read (probeHeats writes h, y and out end to end), so the
// fixed-order reductions that keep the embedding bit-identical across
// worker counts see exactly the values they would have seen with fresh
// zeroed slices.
type Workspace struct {
	vecs sync.Pool // *[]float64
	chol *cholesky.Workspace
}

// NewWorkspace returns an empty workspace with an embedded solver
// workspace.
func NewWorkspace() *Workspace {
	return &Workspace{chol: cholesky.NewWorkspace()}
}

// vec returns a length-n float64 slice with arbitrary contents.
func (ws *Workspace) vec(n int) []float64 {
	if ws != nil {
		if p, _ := ws.vecs.Get().(*[]float64); p != nil && cap(*p) >= n {
			return (*p)[:n]
		}
	}
	return make([]float64, n)
}

// putVec returns a slice obtained from vec to the pool.
func (ws *Workspace) putVec(s []float64) {
	if ws == nil || cap(s) == 0 {
		return
	}
	ws.vecs.Put(&s)
}

// Chol returns the embedded factorization workspace; nil for a nil
// receiver or a zero-value Workspace, which the cholesky package accepts.
// The dynamic maintainer pulls this out of Options.Workspace so its
// incremental refactorizations share the sparsifier's solver scratch.
func (ws *Workspace) Chol() *cholesky.Workspace {
	if ws == nil {
		return nil
	}
	return ws.chol
}
