// Package core implements the paper's contribution: similarity-aware
// spectral graph sparsification by edge filtering (Feng, DAC 2018).
//
// Given a weighted undirected connected graph G and a target spectral
// similarity σ² (an upper bound on the relative condition number
// κ(L_G, L_P)), Sparsify returns an ultra-sparse subgraph P built from a
// spanning-tree backbone plus the off-tree edges whose *Joule heat* —
// computed by t-step generalized power iterations with r random vectors
// (eq. 6/12) — exceeds the similarity-aware threshold θσ (eq. 15). An
// iterative densification loop (§3.7) re-estimates the extreme
// generalized eigenvalues (λmax by power iterations §3.6.1, λmin by node
// coloring §3.6.2) after each batch of edges until the target is met.
package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"graphspar/internal/cholesky"
	"graphspar/internal/eig"
	"graphspar/internal/graph"
	"graphspar/internal/lsst"
	"graphspar/internal/multigrid"
	"graphspar/internal/obs"
	"graphspar/internal/params"
	"graphspar/internal/pcg"
	"graphspar/internal/tree"
	"graphspar/internal/vecmath"
)

// Errors surfaced by the sparsifier. ErrBadSigma is the shared typed
// sentinel from internal/params (errors.Is also matches params.ErrInvalid),
// so every pipeline rejects a bad target with the same error.
var (
	ErrBadSigma = params.ErrBadSigma2
	ErrNoTarget = errors.New("core: similarity target not reached within MaxRounds")
)

// SolverKind selects how L_P⁺ is applied once the sparsifier has off-tree
// edges (the pure tree is always solved exactly in O(n)).
type SolverKind int

// Inner solver choices (§3.7 step 1 calls for a fast L_P solver, using
// graph-theoretic AMG in the paper; sparsifiers are ultra-sparse, so a
// direct factorization is the fastest robust default here — ablation A6
// compares all three).
const (
	// Direct refactors the current sparsifier with sparse Cholesky each
	// densification round; solves are then exact and O(nnz(L)).
	Direct SolverKind = iota
	// TreePCG runs PCG preconditioned by the backbone tree.
	TreePCG
	// AMG runs aggregation-multigrid-preconditioned PCG.
	AMG
)

// String names the solver kind for flags and logs.
func (s SolverKind) String() string {
	switch s {
	case Direct:
		return "direct"
	case TreePCG:
		return "treepcg"
	case AMG:
		return "amg"
	default:
		return fmt.Sprintf("SolverKind(%d)", int(s))
	}
}

// Options configures Sparsify.
type Options struct {
	// SigmaSq is the target σ² ≥ κ(L_G, L_P) (e.g. 50, 100, 200). Required.
	SigmaSq float64
	// T is the number of generalized power-iteration steps for the edge
	// embedding (paper: t = 2 suffices; Fig. 2 uses t = 1). Default 2.
	T int
	// NumVectors is r, the number of random probe vectors (paper:
	// O(log |V|)). Default ceil(log2 n).
	NumVectors int
	// TreeAlg picks the backbone construction. Default lsst.MaxWeight.
	TreeAlg lsst.Algorithm
	// MaxRounds caps densification iterations. Default 30.
	MaxRounds int
	// BatchFraction caps how many passing candidates are added per round,
	// as a fraction of the candidate list (small portions per §3.7).
	// Default 0.25.
	BatchFraction float64
	// SimilarityCheck enables the per-round dissimilarity rule (§3.7 step
	// 6): accept a candidate only if neither endpoint was claimed by an
	// accepted edge this round. Default true (set DisableSimilarity to
	// turn off).
	DisableSimilarity bool
	// Solver selects the inner L_P⁺ application. Default Direct.
	Solver SolverKind
	// SolverTol is the inner-solver relative tolerance for the iterative
	// kinds (heat ranking tolerates loose solves). Default 1e-6.
	SolverTol float64
	// PowerIters caps λmax power iterations (paper: < 10). Default 10.
	PowerIters int
	// MaxEdges optionally caps the sparsifier size (tree edges included).
	// When the budget is hit, densification stops even if the σ² target
	// is unmet (Result is returned with ErrNoTarget in that case). Zero
	// means unlimited. Useful for equal-budget baseline comparisons (A5).
	MaxEdges int
	// EmbedWorkers caps the goroutines used for the r independent
	// probe-vector solves of each embedding pass (≤ 1 = sequential).
	// Results are bit-identical for every worker count, so this is purely
	// a wall-clock knob; see EmbedOffTreeParallel.
	EmbedWorkers int
	// Workspace, when non-nil, supplies pooled scratch for the embedding
	// vectors and the Direct solver's factorization temporaries, making
	// repeated Sparsify calls over same-sized graphs nearly allocation-free
	// on those paths. Pooling never changes results (every pooled buffer
	// is fully overwritten before use); nil keeps the un-pooled behavior.
	// One Workspace per long-lived Sparsifier is the intended shape.
	Workspace *Workspace
	// Seed drives every random choice. Default 1.
	Seed uint64
}

// EffectiveEmbed reports the embedding knobs Sparsify will actually use
// on an n-vertex graph — T, NumVectors (r = O(log n) when unset),
// PowerIters and BatchFraction with defaults applied. The sharding
// engine's global re-filter pass calls this so its full-size embedding
// can never drift from the per-shard parameters.
func (o Options) EffectiveEmbed(n int) (t, r, powerIters int, batchFraction float64) {
	t = o.T
	if t <= 0 {
		t = 2
	}
	r = o.NumVectors
	if r <= 0 {
		r = int(math.Ceil(math.Log2(float64(n + 1))))
		if r < 1 {
			r = 1
		}
	}
	powerIters = o.PowerIters
	if powerIters <= 0 {
		powerIters = 10
	}
	batchFraction = o.BatchFraction
	if batchFraction <= 0 || batchFraction > 1 {
		batchFraction = 0.25
	}
	return t, r, powerIters, batchFraction
}

func (o *Options) defaults(n int) error {
	if err := params.Sigma2(o.SigmaSq); err != nil {
		return err
	}
	o.T, o.NumVectors, o.PowerIters, o.BatchFraction = o.EffectiveEmbed(n)
	if o.MaxRounds <= 0 {
		o.MaxRounds = 30
	}
	if o.SolverTol <= 0 {
		o.SolverTol = 1e-6
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return nil
}

// RoundStats records one densification iteration.
type RoundStats struct {
	Round      int
	LambdaMax  float64 // power-iteration estimate before this round's additions
	LambdaMin  float64 // node-coloring estimate
	SigmaSqEst float64 // λmax/λmin
	Threshold  float64 // θσ for this round
	Candidates int     // off-tree edges passing the heat filter
	Added      int     // edges actually added after the similarity check
	EdgesTotal int     // sparsifier size after the round
}

// Result is the output of Sparsify.
type Result struct {
	// Sparsifier is P: the backbone tree plus recovered off-tree edges,
	// with original edge weights.
	Sparsifier *graph.Graph
	// Tree is the rooted backbone.
	Tree *tree.Tree
	// TreeEdgeIDs and OffTreeAddedIDs index into g.Edges().
	TreeEdgeIDs     []int
	OffTreeAddedIDs []int
	// LambdaMax/LambdaMin are the final extreme-eigenvalue estimates of
	// L_P⁺L_G; SigmaSqAchieved = LambdaMax/LambdaMin ≤ Options.SigmaSq on
	// success.
	LambdaMax, LambdaMin float64
	SigmaSqAchieved      float64
	// TotalStretch is st_P(G) of the backbone tree (eq. 4).
	TotalStretch float64
	Rounds       []RoundStats
}

// Density returns |E_P| / |V|, the sparsifier density the paper reports
// (Table 2's |Eσ²|/|V| column).
func (r *Result) Density() float64 {
	return float64(r.Sparsifier.M()) / float64(r.Sparsifier.N())
}

// Solver applies x = L_P⁺ b (a Laplacian pseudoinverse, or an iterative
// approximation of one). tree.Tree, cholesky.LapSolver and eig.PCGSolver
// all satisfy it; internal/engine supplies its own for the stitched graph.
type Solver interface {
	Solve(x, b []float64)
}

// newInnerSolver returns an L_P⁺ applier for the current sparsifier. ws
// (nil allowed) pools the Direct factorization's scratch across rounds.
func newInnerSolver(p *graph.Graph, backbone *tree.Tree, kind SolverKind, tol float64, ws *Workspace) (Solver, error) {
	switch kind {
	case Direct:
		return cholesky.NewLapSolverWS(p, ws.Chol())
	case TreePCG:
		return &eig.PCGSolver{G: p, M: pcg.TreePrecond{T: backbone}, Tol: tol, MaxIter: 4 * p.N()}, nil
	case AMG:
		h, err := multigrid.New(p, multigrid.Options{})
		if err != nil {
			return nil, err
		}
		return &amgSolver{g: p, h: h, tol: tol}, nil
	default:
		return nil, fmt.Errorf("core: unknown solver kind %v", kind)
	}
}

// amgSolver adapts multigrid cycles (wrapped in PCG for robustness) to the
// lapSolver interface.
type amgSolver struct {
	g   *graph.Graph
	h   *multigrid.Hierarchy
	tol float64
}

func (s *amgSolver) Solve(x, b []float64) {
	vecmath.Zero(x)
	bb := append([]float64(nil), b...)
	_, _ = pcg.SolveLaplacian(s.g, s.h, x, bb, s.tol, 200)
}

// EstimateLambdaMin implements the node-coloring bound of §3.6.2 (eq. 18):
// λ̃min = min_p L_G(p,p) / L_P(p,p), the single-node restriction of the
// Courant–Fischer quotient. It upper-bounds λmin and is exact when the
// minimizing coloring isolates one vertex. Runs in O(n + m).
func EstimateLambdaMin(g, p *graph.Graph) float64 {
	dg := g.WeightedDegrees()
	dp := p.WeightedDegrees()
	best := math.Inf(1)
	for i := range dg {
		if dp[i] <= 0 {
			continue
		}
		if r := dg[i] / dp[i]; r < best {
			best = r
		}
	}
	if math.IsInf(best, 1) {
		return 1
	}
	return best
}

// EstimateLambdaMax runs generalized power iterations (§3.6.1) for
// λmax(L_P⁺L_G) with the supplied L_P⁺ applier.
func EstimateLambdaMax(g, p *graph.Graph, solver Solver, iters int, seed uint64) (float64, error) {
	res, err := eig.GeneralizedPowerMax(g, p, solver, iters, 1e-4, seed)
	if err != nil {
		return 0, err
	}
	return res.Value, nil
}

// Threshold computes θσ per eq. 15: off-tree edges whose normalized Joule
// heat exceeds (σ²·λmin/λmax)^(2t+1) are recovered. Values ≥ 1 mean the
// current sparsifier already meets the target.
func Threshold(sigmaSq, lambdaMin, lambdaMax float64, t int) float64 {
	if lambdaMax <= 0 {
		return 1
	}
	base := sigmaSq * lambdaMin / lambdaMax
	if base >= 1 {
		return 1
	}
	return math.Pow(base, float64(2*t+1))
}

// EmbedOffTree computes the Joule heat of every off-tree edge by r
// independent t-step generalized power iterations (eq. 6 summed per
// eq. 12): heat(p,q) = Σ_j w_pq (h_t,j(p) − h_t,j(q))². The returned slice
// is parallel to offIDs. The second return is heat_max. Each probe vector
// is seeded independently (see probeSeed), so EmbedOffTreeParallel
// produces bit-identical output with any worker count.
func EmbedOffTree(g *graph.Graph, solver Solver, offIDs []int, t, r int, seed uint64) ([]float64, float64) {
	return EmbedOffTreeParallel(g, solver, offIDs, t, r, seed, 1)
}

// Sparsify runs the full similarity-aware pipeline of §3: backbone
// extraction, iterative embed → filter → densify rounds, and extreme
// eigenvalue tracking. On success Result.SigmaSqAchieved ≤ opt.SigmaSq.
// If MaxRounds is exhausted first, the best sparsifier found is returned
// together with ErrNoTarget.
func Sparsify(g *graph.Graph, opt Options) (*Result, error) {
	return SparsifyCtx(context.Background(), g, opt)
}

// SparsifyCtx is Sparsify with cooperative cancellation: the context is
// checked before every densification round, and ctx.Err() is returned as
// soon as it fires, so a canceled job stops computing instead of running
// its remaining rounds to completion.
func SparsifyCtx(ctx context.Context, g *graph.Graph, opt Options) (*Result, error) {
	if err := g.RequireConnected(); err != nil {
		return nil, err
	}
	if err := opt.defaults(g.N()); err != nil {
		return nil, err
	}

	backbone, treeIDs, offIDs, err := lsst.Extract(g, opt.TreeAlg, opt.Seed)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Tree:         backbone,
		TreeEdgeIDs:  treeIDs,
		TotalStretch: backbone.TotalStretch(g),
	}

	p := backbone.Graph()
	var solver Solver = backbone // exact O(n) while P is the bare tree

	remaining := append([]int(nil), offIDs...)
	rng := vecmath.NewRNG(opt.Seed ^ 0x5eed)

	for round := 1; round <= opt.MaxRounds; round++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		lmax, err := EstimateLambdaMax(g, p, solver, opt.PowerIters, rng.Uint64())
		if err != nil {
			return nil, fmt.Errorf("core: λmax estimation failed in round %d: %w", round, err)
		}
		lmin := EstimateLambdaMin(g, p)
		if lmax < lmin { // estimator noise on nearly-identical graphs
			lmax = lmin
		}
		stats := RoundStats{
			Round:      round,
			LambdaMax:  lmax,
			LambdaMin:  lmin,
			SigmaSqEst: lmax / lmin,
			EdgesTotal: p.M(),
		}
		res.LambdaMax, res.LambdaMin = lmax, lmin
		res.SigmaSqAchieved = lmax / lmin

		if res.SigmaSqAchieved <= opt.SigmaSq || len(remaining) == 0 {
			res.Rounds = append(res.Rounds, stats)
			res.Sparsifier = p
			return res, nil
		}
		if opt.MaxEdges > 0 && p.M() >= opt.MaxEdges {
			res.Rounds = append(res.Rounds, stats)
			res.Sparsifier = p
			return res, ErrNoTarget
		}

		// Embed and filter.
		embedSpan := obs.StartSpan(ctx, "embed")
		heats, maxHeat := embedOffTree(g, solver, remaining, opt.T, opt.NumVectors, rng.Uint64(), opt.EmbedWorkers, opt.Workspace)
		embedSpan.End()
		theta := Threshold(opt.SigmaSq, lmin, lmax, opt.T)
		stats.Threshold = theta

		type cand struct {
			pos  int // index into remaining
			heat float64
		}
		var cands []cand
		if maxHeat > 0 {
			for i, h := range heats {
				if h/maxHeat >= theta {
					cands = append(cands, cand{i, h})
				}
			}
		}
		stats.Candidates = len(cands)
		sort.Slice(cands, func(a, b int) bool { return cands[a].heat > cands[b].heat })

		// Cap the batch (small portions per round, §3.7), respecting any
		// edge budget.
		limit := int(math.Ceil(opt.BatchFraction * float64(len(cands))))
		if limit < 1 {
			limit = 1
		}
		if opt.MaxEdges > 0 {
			if room := opt.MaxEdges - p.M(); room < limit {
				limit = room
			}
		}

		// Similarity check: greedy endpoint coverage.
		claimed := make(map[int]bool)
		var chosen []int // indices into remaining
		for _, c := range cands {
			if len(chosen) >= limit {
				break
			}
			e := g.Edge(remaining[c.pos])
			if !opt.DisableSimilarity && (claimed[e.U] || claimed[e.V]) {
				continue
			}
			claimed[e.U], claimed[e.V] = true, true
			chosen = append(chosen, c.pos)
		}
		// Guarantee progress: if the filter+similarity pass selected
		// nothing but the target is unmet, force the hottest edge in.
		if len(chosen) == 0 && len(cands) > 0 {
			chosen = append(chosen, cands[0].pos)
		}
		if len(chosen) == 0 {
			// No candidate passed the filter at all: σ² estimates say the
			// target is unmet but heats disagree. Add the globally hottest
			// edge to keep moving (estimator noise guard).
			best, bestHeat := -1, -1.0
			for i, h := range heats {
				if h > bestHeat {
					best, bestHeat = i, h
				}
			}
			if best >= 0 {
				chosen = append(chosen, best)
			}
		}

		var newEdges []graph.Edge
		chosenSet := make(map[int]bool, len(chosen))
		for _, pos := range chosen {
			id := remaining[pos]
			chosenSet[pos] = true
			res.OffTreeAddedIDs = append(res.OffTreeAddedIDs, id)
			newEdges = append(newEdges, g.Edge(id))
		}
		stats.Added = len(newEdges)
		// Compact remaining.
		kept := remaining[:0]
		for i, id := range remaining {
			if !chosenSet[i] {
				kept = append(kept, id)
			}
		}
		remaining = kept

		p, err = p.AddEdges(newEdges)
		if err != nil {
			return nil, fmt.Errorf("core: densification failed: %w", err)
		}
		stats.EdgesTotal = p.M()
		res.Rounds = append(res.Rounds, stats)

		solver, err = newInnerSolver(p, backbone, opt.Solver, opt.SolverTol, opt.Workspace)
		if err != nil {
			return nil, fmt.Errorf("core: inner solver setup: %w", err)
		}
	}

	// Final estimate after the last round's additions.
	lmax, lerr := EstimateLambdaMax(g, p, solver, opt.PowerIters, rng.Uint64())
	if lerr == nil {
		lmin := EstimateLambdaMin(g, p)
		if lmax < lmin {
			lmax = lmin
		}
		res.LambdaMax, res.LambdaMin = lmax, lmin
		res.SigmaSqAchieved = lmax / lmin
	}
	res.Sparsifier = p
	if res.SigmaSqAchieved <= opt.SigmaSq {
		return res, nil
	}
	return res, ErrNoTarget
}

// HeatSpectrum supports the Fig. 2 reproduction: it extracts a backbone
// tree, runs a single embedding round (t steps, r vectors) on it, and
// returns all off-tree heats normalized by the max, sorted descending,
// together with the θσ thresholds for the requested σ² values.
func HeatSpectrum(g *graph.Graph, t, r int, sigmaSqs []float64, treeAlg lsst.Algorithm, seed uint64) (norm []float64, thresholds []float64, err error) {
	if err := g.RequireConnected(); err != nil {
		return nil, nil, err
	}
	if t <= 0 {
		t = 1
	}
	if r <= 0 {
		r = int(math.Ceil(math.Log2(float64(g.N() + 1))))
	}
	backbone, _, offIDs, err := lsst.Extract(g, treeAlg, seed)
	if err != nil {
		return nil, nil, err
	}
	heats, maxHeat := EmbedOffTree(g, backbone, offIDs, t, r, seed)
	if maxHeat == 0 {
		return nil, nil, errors.New("core: graph has no off-tree heat (already a tree?)")
	}
	norm = make([]float64, len(heats))
	for i, h := range heats {
		norm[i] = h / maxHeat
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(norm)))

	p := backbone.Graph()
	lmax, err := EstimateLambdaMax(g, p, backbone, 10, seed)
	if err != nil {
		return nil, nil, err
	}
	lmin := EstimateLambdaMin(g, p)
	thresholds = make([]float64, len(sigmaSqs))
	for i, s2 := range sigmaSqs {
		thresholds[i] = Threshold(s2, lmin, lmax, t)
	}
	return norm, thresholds, nil
}

// VerifySimilarity independently estimates κ(L_G, L_P) with a k-step
// generalized Lanczos (the "eigs" reference) and reports
// (λmax, λmin, κ). Used by the harness to check the guarantee.
func VerifySimilarity(g, p *graph.Graph, solver Solver, k int, seed uint64) (lmax, lmin, cond float64, err error) {
	vals, err := eig.GeneralizedLanczos(g, p, solver, k, seed)
	if err != nil {
		return 0, 0, 0, err
	}
	if len(vals) == 0 {
		return 0, 0, 0, errors.New("core: Lanczos returned no Ritz values")
	}
	lmin, lmax = vals[0], vals[len(vals)-1]
	if lmin < 1 {
		lmin = 1 // interlacing guarantees λmin ≥ 1 for subgraphs
	}
	return lmax, lmin, lmax / lmin, nil
}
