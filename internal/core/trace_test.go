package core

import (
	"math"
	"testing"
	"testing/quick"

	"graphspar/internal/gen"
	"graphspar/internal/lsst"
	"graphspar/internal/vecmath"
)

func TestEstimateTraceMatchesStretchOnTree(t *testing.T) {
	// Eq. 4: Trace(L_P⁺L_G) = st_P(G) for a spanning tree P. Hutchinson
	// with many probes must land close to the exact LCA-based stretch.
	g, err := gen.Grid2D(10, 10, gen.UniformWeights, 91)
	if err != nil {
		t.Fatal(err)
	}
	tr, _, _, err := lsst.Extract(g, lsst.MaxWeight, 1)
	if err != nil {
		t.Fatal(err)
	}
	exact := tr.TotalStretch(g)
	est, err := EstimateTrace(g, tr, 400, 7)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(est-exact) / exact; rel > 0.15 {
		t.Fatalf("Hutchinson trace %v vs exact stretch %v (rel %v)", est, exact, rel)
	}
}

func TestEstimateTraceIdentityOperator(t *testing.T) {
	// P = G makes L_P⁺L_G a projector with trace n-1.
	g, err := gen.Grid2D(7, 7, gen.UniformWeights, 3)
	if err != nil {
		t.Fatal(err)
	}
	solver, err := newInnerSolver(g, nil, Direct, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	est, err := EstimateTrace(g, solver, 300, 5)
	if err != nil {
		t.Fatal(err)
	}
	want := float64(g.N() - 1)
	if math.Abs(est-want)/want > 0.1 {
		t.Fatalf("trace of projector = %v, want ≈ %v", est, want)
	}
}

func TestEstimateTraceValidation(t *testing.T) {
	g, _ := gen.Path(5)
	tr, _, _, err := lsst.Extract(g, lsst.MaxWeight, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := EstimateTrace(g, tr, 0, 1); err == nil {
		t.Fatal("zero probes should fail")
	}
}

func TestRefineLambdaMinNeverWorse(t *testing.T) {
	g, err := gen.Grid2D(9, 9, gen.UniformWeights, 13)
	if err != nil {
		t.Fatal(err)
	}
	tr, _, _, err := lsst.Extract(g, lsst.MaxWeight, 1)
	if err != nil {
		t.Fatal(err)
	}
	p := tr.Graph()
	base := EstimateLambdaMin(g, p)
	refined := RefineLambdaMin(g, p, 20)
	if refined > base+1e-12 {
		t.Fatalf("refinement made the bound worse: %v > %v", refined, base)
	}
	// Still a valid upper bound on λmin ≥ 1 territory: must stay ≥ 1
	// because P ⊆ G (any coloring ratio is ≥ 1).
	if refined < 1-1e-9 {
		t.Fatalf("refined bound %v dropped below 1 for a subgraph", refined)
	}
	if got := RefineLambdaMin(g, p, 0); got != base {
		t.Fatalf("sweeps=0 must return the base bound")
	}
}

// Property: the refined coloring bound stays an upper bound of the true
// λmin (estimated by a long generalized Lanczos from below).
func TestQuickRefineLambdaMinUpperBound(t *testing.T) {
	f := func(seed uint64) bool {
		g, err := gen.Grid2D(5, 6, gen.UniformWeights, seed)
		if err != nil {
			return false
		}
		tr, _, _, err := lsst.Extract(g, lsst.MaxWeight, seed)
		if err != nil {
			return false
		}
		p := tr.Graph()
		refined := RefineLambdaMin(g, p, 10)
		// For subgraph sparsifiers the exact λmin ≥ 1; any coloring ratio
		// is an upper bound. Verify ≥ 1 and finite.
		return refined >= 1-1e-9 && !math.IsInf(refined, 0) && !math.IsNaN(refined)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: Hutchinson trace is within noise of the exact value across
// random trees (tree solver is exact, so the only error is stochastic).
func TestQuickTraceVsStretch(t *testing.T) {
	f := func(seed uint64) bool {
		rng := vecmath.NewRNG(seed)
		rows, cols := 4+rng.Intn(4), 4+rng.Intn(4)
		g, err := gen.Grid2D(rows, cols, gen.UniformWeights, seed)
		if err != nil {
			return false
		}
		tr, _, _, err := lsst.Extract(g, lsst.MaxWeight, seed)
		if err != nil {
			return false
		}
		exact := tr.TotalStretch(g)
		est, err := EstimateTrace(g, tr, 300, seed+1)
		if err != nil {
			return false
		}
		return math.Abs(est-exact)/exact < 0.35
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
