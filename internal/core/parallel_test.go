package core

import (
	"context"
	"errors"
	"testing"

	"graphspar/internal/cholesky"
	"graphspar/internal/gen"
	"graphspar/internal/lsst"
)

// TestEmbedParallelBitIdentical: the parallel embedding must reproduce the
// sequential path bit for bit, for every worker count, with both a tree
// solver and a Cholesky solver.
func TestEmbedParallelBitIdentical(t *testing.T) {
	g, err := gen.Grid2D(14, 14, gen.UniformWeights, 3)
	if err != nil {
		t.Fatal(err)
	}
	backbone, _, offIDs, err := lsst.Extract(g, lsst.MaxWeight, 1)
	if err != nil {
		t.Fatal(err)
	}
	chol, err := cholesky.NewLapSolver(backbone.Graph())
	if err != nil {
		t.Fatal(err)
	}
	for _, solver := range []Solver{backbone, chol} {
		want, wantMax := EmbedOffTree(g, solver, offIDs, 2, 6, 42)
		for workers := 1; workers <= 5; workers++ {
			got, gotMax := EmbedOffTreeParallel(g, solver, offIDs, 2, 6, 42, workers)
			if gotMax != wantMax {
				t.Fatalf("workers=%d solver=%T: maxHeat %v != %v", workers, solver, gotMax, wantMax)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("workers=%d solver=%T: heat[%d] = %v != %v", workers, solver, i, got[i], want[i])
				}
			}
		}
	}
}

// TestEmbedParallelUnsafeSolverFallsBack: a solver without a concurrent
// session must still produce identical results (sequential fallback).
type opaqueSolver struct{ s Solver }

func (o opaqueSolver) Solve(x, b []float64) { o.s.Solve(x, b) }

func TestEmbedParallelUnsafeSolverFallsBack(t *testing.T) {
	g, err := gen.Grid2D(10, 10, gen.UniformWeights, 5)
	if err != nil {
		t.Fatal(err)
	}
	backbone, _, offIDs, err := lsst.Extract(g, lsst.MaxWeight, 1)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := EmbedOffTree(g, backbone, offIDs, 1, 4, 7)
	got, _ := EmbedOffTreeParallel(g, opaqueSolver{backbone}, offIDs, 1, 4, 7, 4)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("heat[%d] = %v != %v", i, got[i], want[i])
		}
	}
}

// TestSparsifyEmbedWorkersBitIdentical: the EmbedWorkers knob must never
// change which edges the sparsifier keeps.
func TestSparsifyEmbedWorkersBitIdentical(t *testing.T) {
	g, err := gen.Grid2D(20, 20, gen.UniformWeights, 2)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := Sparsify(g, Options{SigmaSq: 60, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Sparsify(g, Options{SigmaSq: 60, Seed: 4, EmbedWorkers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Sparsifier.M() != par.Sparsifier.M() {
		t.Fatalf("edge counts differ: %d vs %d", seq.Sparsifier.M(), par.Sparsifier.M())
	}
	idx := seq.Sparsifier.EdgeIndex()
	for _, e := range par.Sparsifier.Edges() {
		if _, ok := idx[[2]int{e.U, e.V}]; !ok {
			t.Fatalf("edge (%d,%d) kept only with EmbedWorkers", e.U, e.V)
		}
	}
	if seq.SigmaSqAchieved != par.SigmaSqAchieved {
		t.Fatalf("achieved σ² differ: %v vs %v", seq.SigmaSqAchieved, par.SigmaSqAchieved)
	}
}

// TestSparsifyCtxCancellation: a canceled context stops the densification
// loop and surfaces ctx.Err().
func TestSparsifyCtxCancellation(t *testing.T) {
	g, err := gen.Grid2D(16, 16, gen.UniformWeights, 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := SparsifyCtx(ctx, g, Options{SigmaSq: 50, Seed: 1}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The plain entry point is unaffected.
	if _, err := Sparsify(g, Options{SigmaSq: 50, Seed: 1}); err != nil {
		t.Fatalf("Sparsify after cancel test: %v", err)
	}
}
