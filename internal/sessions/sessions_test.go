package sessions

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"graphspar/internal/core"
	"graphspar/internal/dynamic"
	"graphspar/internal/gen"
	"graphspar/internal/graph"
)

// fakeMaintainer implements Maintainer without the numeric machinery, so
// the manager's bookkeeping can be tested in microseconds. Apply really
// mutates the graph (through dynamic.ApplyToGraph) so hash tracking is
// exercised for real.
type fakeMaintainer struct {
	g       *graph.Graph
	bytes   int64
	applies int
	updates int
	// busy flips to 1 while any method runs; concurrent entry trips raced.
	busy  atomic.Int32
	raced atomic.Bool
	delay time.Duration
}

func (f *fakeMaintainer) enter() func() {
	if !f.busy.CompareAndSwap(0, 1) {
		f.raced.Store(true)
	}
	if f.delay > 0 {
		time.Sleep(f.delay)
	}
	return func() { f.busy.Store(0) }
}

func (f *fakeMaintainer) Apply(ctx context.Context, batch []dynamic.Update) error {
	defer f.enter()()
	g2, err := dynamic.ApplyToGraph(f.g, batch)
	if err != nil {
		return err
	}
	f.g = g2
	f.applies++
	f.updates += len(batch)
	return nil
}

func (f *fakeMaintainer) Rebuild(ctx context.Context) error { defer f.enter()(); return nil }
func (f *fakeMaintainer) Graph() *graph.Graph               { return f.g }
func (f *fakeMaintainer) Sparsifier() *graph.Graph          { return f.g }
func (f *fakeMaintainer) Cond() float64                     { return 1 }
func (f *fakeMaintainer) TargetMet() bool                   { return true }
func (f *fakeMaintainer) ResidentBytes() int64              { return f.bytes }
func (f *fakeMaintainer) Stats() dynamic.Stats {
	return dynamic.Stats{Applies: f.applies, Updates: f.updates, Cond: 1, TargetMet: true}
}

func testGraph(t *testing.T, seed uint64) *graph.Graph {
	t.Helper()
	g, err := gen.Grid2D(4, 4, gen.UniformWeights, seed)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestInstallGetApplyTracksHash(t *testing.T) {
	mgr := NewManager(Options{})
	g := testGraph(t, 1)
	h0 := g.ContentHash()
	sess := mgr.Install("g", "k1", &fakeMaintainer{g: g, bytes: 100})
	if sess == nil {
		t.Fatal("install returned nil")
	}
	if got := mgr.Get("g", h0, "k1"); got != sess {
		t.Fatal("matching Get must hit")
	}
	if got := mgr.Get("g", h0, "other-params"); got != nil {
		t.Fatal("key mismatch must miss")
	}
	if mgr.Len() != 1 {
		t.Fatalf("key mismatch must keep the session, have %d", mgr.Len())
	}

	batch := []dynamic.Update{dynamic.Insert(0, 15, 2)}
	if err := sess.DoMutate(context.Background(), func(m Maintainer) (string, error) {
		return "", m.Apply(context.Background(), batch)
	}); err != nil {
		t.Fatal(err)
	}
	if sess.Hash() == h0 {
		t.Fatal("hash must advance after a mutating request")
	}
	// A caller holding the pre-apply hash (stale registry snapshot)
	// misses — but must NOT destroy the session, which is healthy; the
	// caller simply re-reads and retries.
	if got := mgr.Get("g", h0, "k1"); got != nil {
		t.Fatal("stale caller hash must miss")
	}
	if mgr.Len() != 1 {
		t.Fatal("a stale caller snapshot must not destroy a healthy session")
	}
	if got := mgr.Get("g", sess.Hash(), "k1"); got != sess {
		t.Fatal("current hash must hit again")
	}

	// InvalidateStale with the session's own hash is a no-op; with a
	// different (authoritative) hash it reaps the session.
	if mgr.InvalidateStale("g", sess.Hash()) {
		t.Fatal("InvalidateStale must keep an in-lockstep session")
	}
	if !mgr.InvalidateStale("g", "authoritative-new-hash") {
		t.Fatal("InvalidateStale must reap a session behind the registry")
	}
	if err := sess.Do(context.Background(), func(Maintainer) error { return nil }); !errors.Is(err, ErrSessionGone) {
		t.Fatalf("Do on invalidated session = %v, want ErrSessionGone", err)
	}
	st := mgr.Stats()
	if st.Hits != 2 || st.Invalidations != 1 || st.Installs != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSessionInvalidateIsIdentityChecked(t *testing.T) {
	mgr := NewManager(Options{})
	old := mgr.Install("g", "k", &fakeMaintainer{g: testGraph(t, 1), bytes: 10})
	// A replacement install under the same name supersedes old.
	repl := mgr.Install("g", "k", &fakeMaintainer{g: testGraph(t, 2), bytes: 10})
	// Invalidating through the superseded session must not touch the
	// replacement (the failure it reports belongs to the old state).
	old.Invalidate()
	if err := repl.Do(context.Background(), func(Maintainer) error { return nil }); err != nil {
		t.Fatalf("replacement session must survive the old session's Invalidate: %v", err)
	}
	// Invalidating the registered session itself works.
	repl.Invalidate()
	if err := repl.Do(context.Background(), func(Maintainer) error { return nil }); !errors.Is(err, ErrSessionGone) {
		t.Fatalf("Do = %v, want ErrSessionGone", err)
	}
}

func TestLRUCapEviction(t *testing.T) {
	mgr := NewManager(Options{MaxSessions: 2})
	var sessions []*Session
	for i, name := range []string{"a", "b", "c"} {
		sessions = append(sessions, mgr.Install(name, "k", &fakeMaintainer{g: testGraph(t, uint64(i+1)), bytes: 10}))
	}
	if mgr.Len() != 2 {
		t.Fatalf("len = %d, want 2", mgr.Len())
	}
	if err := sessions[0].Do(context.Background(), func(Maintainer) error { return nil }); !errors.Is(err, ErrSessionGone) {
		t.Fatalf("oldest session must be evicted, Do = %v", err)
	}
	if err := sessions[2].Do(context.Background(), func(Maintainer) error { return nil }); err != nil {
		t.Fatalf("newest session must survive: %v", err)
	}
	if mgr.Stats().Evictions != 1 {
		t.Fatalf("stats = %+v", mgr.Stats())
	}
}

func TestMemoryBudgetEviction(t *testing.T) {
	mgr := NewManager(Options{MaxResidentBytes: 1000})
	a := mgr.Install("a", "k", &fakeMaintainer{g: testGraph(t, 1), bytes: 600})
	b := mgr.Install("b", "k", &fakeMaintainer{g: testGraph(t, 2), bytes: 600})
	if err := a.Do(context.Background(), func(Maintainer) error { return nil }); !errors.Is(err, ErrSessionGone) {
		t.Fatalf("over-budget install must evict the LRU session, Do = %v", err)
	}
	if err := b.Do(context.Background(), func(Maintainer) error { return nil }); err != nil {
		t.Fatalf("most recent session survives the budget: %v", err)
	}
	// A single session over the whole budget stays resident (no thrash).
	mgr2 := NewManager(Options{MaxResidentBytes: 10})
	huge := mgr2.Install("big", "k", &fakeMaintainer{g: testGraph(t, 3), bytes: 1 << 20})
	if err := huge.Do(context.Background(), func(Maintainer) error { return nil }); err != nil {
		t.Fatalf("oversized sole session must stay: %v", err)
	}
}

func TestIdleTTLExpires(t *testing.T) {
	mgr := NewManager(Options{IdleTTL: 30 * time.Millisecond})
	sess := mgr.Install("g", "k", &fakeMaintainer{g: testGraph(t, 1), bytes: 10})
	deadline := time.Now().Add(5 * time.Second)
	for mgr.Len() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("session never expired")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := sess.Do(context.Background(), func(Maintainer) error { return nil }); !errors.Is(err, ErrSessionGone) {
		t.Fatalf("Do after expiry = %v, want ErrSessionGone", err)
	}
	if mgr.Stats().Expirations != 1 {
		t.Fatalf("stats = %+v", mgr.Stats())
	}
}

func TestDisabledManagerDropsEverything(t *testing.T) {
	mgr := NewManager(Options{MaxSessions: -1})
	if sess := mgr.Install("g", "k", &fakeMaintainer{g: testGraph(t, 1)}); sess != nil {
		t.Fatal("disabled manager must drop installs")
	}
	if got := mgr.Get("g", "h", "k"); got != nil {
		t.Fatal("disabled manager must miss")
	}
}

func TestCloseDrainsAcceptedWork(t *testing.T) {
	mgr := NewManager(Options{})
	fm := &fakeMaintainer{g: testGraph(t, 1), bytes: 10, delay: 20 * time.Millisecond}
	sess := mgr.Install("g", "k", fm)

	var wg sync.WaitGroup
	var done atomic.Int32
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := sess.Do(context.Background(), func(m Maintainer) error { return m.Rebuild(context.Background()) })
			if err == nil {
				done.Add(1)
			} else if !errors.Is(err, ErrSessionGone) {
				t.Errorf("Do = %v", err)
			}
		}()
	}
	// Guarantee at least one request was accepted before the drain: this
	// synchronous call only returns once the actor has executed it.
	if err := sess.Do(context.Background(), func(m Maintainer) error { return m.Rebuild(context.Background()) }); err == nil {
		done.Add(1)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := mgr.Close(ctx); err != nil {
		t.Fatalf("close: %v", err)
	}
	wg.Wait()
	if done.Load() == 0 {
		t.Fatal("accepted work must complete during drain")
	}
	if fm.raced.Load() {
		t.Fatal("maintainer accessed concurrently")
	}
	if sess := mgr.Install("late", "k", &fakeMaintainer{g: testGraph(t, 2)}); sess != nil {
		t.Fatal("closed manager must reject installs")
	}
}

// TestSerializedUnderContention hammers one session from many goroutines;
// the fake maintainer trips `raced` if two requests ever overlap. Run
// with -race in CI.
func TestSerializedUnderContention(t *testing.T) {
	mgr := NewManager(Options{})
	fm := &fakeMaintainer{g: testGraph(t, 1), bytes: 10}
	sess := mgr.Install("g", "k", fm)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				_ = sess.Do(context.Background(), func(m Maintainer) error {
					if j%2 == 0 {
						return m.Rebuild(context.Background())
					}
					_ = Snapshot(m)
					return nil
				})
			}
		}(i)
	}
	wg.Wait()
	if fm.raced.Load() {
		t.Fatal("maintainer accessed concurrently through the actor loop")
	}
	if st, err := sess.Stats(context.Background()); err != nil || !st.TargetMet {
		t.Fatalf("stats after contention: %+v err=%v", st, err)
	}
}

// TestRealMaintainerRoundTrip wires an actual dynamic.Maintainer through
// a session: apply a batch, check the certificate survived and the
// telemetry mirrors the maintainer's counters.
func TestRealMaintainerRoundTrip(t *testing.T) {
	g, err := gen.Grid2D(10, 10, gen.UniformWeights, 7)
	if err != nil {
		t.Fatal(err)
	}
	const sigmaSq = 50
	m, err := dynamic.New(context.Background(), g, dynamic.Options{
		Sparsify: core.Options{SigmaSq: sigmaSq, Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	mgr := NewManager(Options{})
	sess := mgr.Install("grid", "s2=50", m)
	if sess.Hash() != g.ContentHash() {
		t.Fatal("installed hash mismatch")
	}
	if err := sess.DoMutate(context.Background(), func(mm Maintainer) (string, error) {
		return "", mm.Apply(context.Background(), []dynamic.Update{dynamic.Insert(0, 99, 1.5)})
	}); err != nil {
		t.Fatal(err)
	}
	st, err := sess.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.BatchesApplied != 1 || st.UpdatesApplied != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if !st.TargetMet || st.Cond <= 0 || st.Cond > sigmaSq {
		t.Fatalf("certificate after session apply: %+v", st)
	}
	if st.ResidentBytes <= 0 {
		t.Fatalf("resident bytes estimate missing: %+v", st)
	}
}
