package sessions_test

import (
	"context"
	"encoding/json"
	"os"
	"sync"
	"testing"
	"time"

	"graphspar/internal/core"
	"graphspar/internal/dynamic"
	"graphspar/internal/gen"
	"graphspar/internal/graph"
	"graphspar/internal/sessions"
	"graphspar/internal/testkit"
	"graphspar/internal/vecmath"
)

// BenchmarkStreamReplay replays a recorded temporal switching sequence —
// edges toggling between their base weight and a collapsed weight, the
// power-grid breaker workload of John & Safro (arXiv:1601.05527) — two
// ways:
//
//   - resident: through one session-held maintainer, the way the service
//     serves a stream or a PATCH against a warm session (per batch: one
//     incremental Apply);
//   - resume: through per-request dynamic.Resume from the previous
//     result's sparsifier — the cold path every incremental job paid
//     before persistent sessions (per batch: full reconcile + re-embed).
//
// The acceptance bar for the session subsystem is resident ≥ 3× faster
// per batch. Metrics are published to BENCH_stream.json when
// BENCH_STREAM_JSON names a path (the CI bench step does).
func BenchmarkStreamReplay(b *testing.B) {
	const (
		sigmaSq  = 100
		nBatches = 8
		size     = 16
		factor   = 1e-3
	)
	graphs := []struct {
		name  string
		build func() (*graph.Graph, error)
	}{
		{"grid48", func() (*graph.Graph, error) { return gen.Grid2D(48, 48, gen.UniformWeights, 11) }},
		// Two dense "substations" joined by a long corridor: the shape of
		// a switching-sequence power-grid study, with enough vertices that
		// the cold path's fresh ordering/embedding actually bites.
		{"barbell", func() (*graph.Graph, error) { return gen.Barbell(24, 1500, gen.UniformWeights, 11) }},
	}
	for _, tc := range graphs {
		b.Run(tc.name, func(b *testing.B) {
			g, err := tc.build()
			if err != nil {
				b.Fatal(err)
			}
			opt := dynamic.Options{Sparsify: core.Options{SigmaSq: sigmaSq, Seed: 1}}
			ctx := context.Background()

			// Switching happens on redundant lines: toggle edges outside
			// the sparsifier, the regime where the resident maintainer
			// re-verifies without refactoring (deleting a breaker-opened
			// line never tears the backbone).
			probe, err := dynamic.New(ctx, g, opt)
			if err != nil {
				b.Fatal(err)
			}
			inSpars := make(map[[2]int]bool, probe.Sparsifier().M())
			for _, e := range probe.Sparsifier().Edges() {
				inSpars[[2]int{e.U, e.V}] = true
			}
			var eligible []int
			for id, e := range g.Edges() {
				if !inSpars[[2]int{e.U, e.V}] {
					eligible = append(eligible, id)
				}
			}
			batches := testkit.SwitchingSequence(g, vecmath.NewRNG(97), nBatches, size, factor, eligible)

			var residentTot, resumeTot time.Duration
			var finalCond float64
			for i := 0; i < b.N; i++ {
				// Resident session: one maintainer build, then incremental
				// applies through the session's actor loop.
				m, err := dynamic.New(ctx, g, opt)
				if err != nil {
					b.Fatal(err)
				}
				mgr := sessions.NewManager(sessions.Options{})
				sess := mgr.Install(tc.name, "bench", m)
				t0 := time.Now()
				for _, batch := range batches {
					batch := batch
					if err := sess.DoMutate(ctx, func(mm sessions.Maintainer) (string, error) {
						return "", mm.Apply(ctx, batch)
					}); err != nil {
						b.Fatal(err)
					}
				}
				residentTot += time.Since(t0)
				st, err := sess.Stats(ctx)
				if err != nil {
					b.Fatal(err)
				}
				if !st.TargetMet {
					b.Fatalf("resident replay lost the certificate: %+v", st)
				}
				finalCond = st.Cond

				// Per-request Resume: what each incremental job cost before
				// sessions — reconcile the previous sparsifier against the
				// mutated graph and re-establish the certificate, per batch.
				prev, err := dynamic.New(ctx, g, opt)
				if err != nil {
					b.Fatal(err)
				}
				warm := prev.Sparsifier()
				cur := g
				t1 := time.Now()
				for _, batch := range batches {
					cur, err = dynamic.ApplyToGraph(cur, batch)
					if err != nil {
						b.Fatal(err)
					}
					m2, err := dynamic.Resume(ctx, cur, warm, opt)
					if err != nil {
						b.Fatal(err)
					}
					warm = m2.Sparsifier()
					if !m2.TargetMet() {
						b.Fatalf("resume replay lost the certificate: κ=%v", m2.Cond())
					}
				}
				resumeTot += time.Since(t1)
			}

			residentMs := float64(residentTot.Microseconds()) / 1000 / float64(b.N*nBatches)
			resumeMs := float64(resumeTot.Microseconds()) / 1000 / float64(b.N*nBatches)
			speedup := resumeMs / residentMs
			b.ReportMetric(residentMs, "resident-ms/batch")
			b.ReportMetric(resumeMs, "resume-ms/batch")
			b.ReportMetric(speedup, "speedup")
			b.ReportMetric(finalCond, "κ")
			if speedup < 3 {
				b.Errorf("session-resident replay only %.2fx faster than per-request Resume (want >= 3x)", speedup)
			}
			publishStreamBench(b, tc.name, map[string]float64{
				"batches":           float64(nBatches),
				"batch_size":        float64(size),
				"sigma2":            sigmaSq,
				"resident_ms_batch": residentMs,
				"resume_ms_batch":   resumeMs,
				"speedup":           speedup,
				"cond":              finalCond,
			})
		})
	}
}

var (
	streamBenchMu      sync.Mutex
	streamBenchResults = map[string]any{}
)

func publishStreamBench(b *testing.B, name string, metrics map[string]float64) {
	b.Helper()
	streamBenchMu.Lock()
	defer streamBenchMu.Unlock()
	streamBenchResults[name] = metrics
	path := os.Getenv("BENCH_STREAM_JSON")
	if path == "" {
		return
	}
	out := map[string]any{
		"benchmark": "BenchmarkStreamReplay",
		"workload":  "temporal switching sequence (reweight toggles)",
		"results":   streamBenchResults,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		b.Fatal(err)
	}
}
