// Package sessions keeps live dynamic maintainers resident between
// requests, turning the service's incremental path into true streaming:
// a PATCH or an incremental job against a hot graph mutates the stored
// graph and its maintained sparsifier in one step, instead of paying
// dynamic.Resume's full reconcile/re-embed per request.
//
// The Manager is keyed by graph name. Each session owns one Maintainer
// behind a single-writer actor loop — a goroutine that executes queued
// requests strictly in order — so concurrent PATCH, stream and job
// traffic against the same graph serializes on the maintainer without
// the maintainer itself needing to be concurrency-safe. Sessions are
// bounded three ways: an LRU cap on the session count, a memory budget
// over the maintainers' estimated resident bytes (graphs, Cholesky
// factor, probe embedding), and an idle TTL. Eviction, expiry and
// invalidation all close the session; callers observing ErrSessionGone
// fall back to the cold path (dynamic.Resume or a from-scratch build),
// which is also the crash-safety story — a session whose maintainer hit
// an internal error is simply dropped and rebuilt cold on next use.
package sessions

import (
	"container/list"
	"context"
	"errors"
	"sync"
	"time"

	"graphspar/internal/dynamic"
	"graphspar/internal/graph"
)

// ErrSessionGone reports that a session was evicted, expired or
// invalidated between lookup and use. Callers fall back to the cold path
// (and may re-acquire a fresh session afterwards).
var ErrSessionGone = errors.New("sessions: session is gone")

// Maintainer is the live-sparsifier surface a session drives. It is
// satisfied both by *dynamic.Maintainer and by the public facade's
// *Stream (whose methods alias the same types), so cmd/serve can inject
// facade-built maintainers without this package — or internal/service —
// importing the root package.
type Maintainer interface {
	Apply(ctx context.Context, batch []dynamic.Update) error
	Rebuild(ctx context.Context) error
	Graph() *graph.Graph
	Sparsifier() *graph.Graph
	Cond() float64
	TargetMet() bool
	Stats() dynamic.Stats
	ResidentBytes() int64
}

// Stats is the per-session telemetry surfaced by the HTTP service and by
// the facade's Stream.SessionStats, so library and service users read
// the same numbers.
type Stats struct {
	ResidentBytes  int64   `json:"resident_bytes"`
	BatchesApplied int     `json:"batches_applied"`
	UpdatesApplied int     `json:"updates_applied"`
	RebuildsForced int     `json:"rebuilds_forced"`
	Refilters      int     `json:"refilter_rounds"`
	Verifies       int     `json:"verifies"`
	Cond           float64 `json:"condition_number"`
	TargetMet      bool    `json:"target_met"`
}

// Snapshot derives session telemetry from a maintainer's own counters.
func Snapshot(m Maintainer) Stats {
	s := m.Stats()
	return Stats{
		ResidentBytes:  m.ResidentBytes(),
		BatchesApplied: s.Applies,
		UpdatesApplied: s.Updates,
		RebuildsForced: s.Rebuilds,
		Refilters:      s.Refilters,
		Verifies:       s.Verifies,
		Cond:           s.Cond,
		TargetMet:      s.TargetMet,
	}
}

// ManagerStats snapshots the manager's bookkeeping.
type ManagerStats struct {
	Sessions      int   `json:"sessions"`
	ResidentBytes int64 `json:"resident_bytes"`
	BudgetBytes   int64 `json:"budget_bytes"`
	Hits          int64 `json:"hits"`
	Misses        int64 `json:"misses"`
	Installs      int64 `json:"installs"`
	Evictions     int64 `json:"evictions"`
	Expirations   int64 `json:"expirations"`
	Invalidations int64 `json:"invalidations"`
}

// Options sizes a Manager. Zero values take the defaults; a negative
// MaxSessions disables the manager outright (every Get misses, every
// Install is dropped), which lets callers thread one code path whether
// sessions are on or off.
type Options struct {
	// MaxSessions caps resident maintainers; least-recently-used sessions
	// are evicted beyond it. Default 32.
	MaxSessions int
	// MaxResidentBytes budgets the summed ResidentBytes estimates. The
	// most recently used session is never evicted for budget, so a single
	// oversized graph still gets exactly one resident session instead of
	// thrashing. Default 1 GiB.
	MaxResidentBytes int64
	// IdleTTL expires sessions untouched for this long (checked by each
	// session's own actor loop, so expiry needs no background sweeper).
	// Default 15 minutes; negative disables expiry.
	IdleTTL time.Duration
	// Hash fingerprints a graph. Sessions track the hash of their
	// maintainer's current graph so callers can check registry/session
	// consistency; it must be the same function the caller keys graphs
	// with. Nil defaults to graph.ContentHash — the same canonical
	// encoding the service registry uses.
	Hash func(*graph.Graph) string
}

// Manager owns the resident sessions. Safe for concurrent use.
type Manager struct {
	opt Options
	now func() time.Time // test hook

	mu       sync.Mutex
	sessions map[string]*Session
	lru      *list.List // front = most recently used; values are *Session
	resident int64
	closed   bool
	stats    ManagerStats
}

// NewManager builds a Manager from the options.
func NewManager(opt Options) *Manager {
	if opt.MaxSessions == 0 {
		opt.MaxSessions = 32
	}
	if opt.MaxResidentBytes == 0 {
		opt.MaxResidentBytes = 1 << 30
	}
	if opt.IdleTTL == 0 {
		opt.IdleTTL = 15 * time.Minute
	}
	if opt.Hash == nil {
		opt.Hash = (*graph.Graph).ContentHash
	}
	return &Manager{
		opt:      opt,
		now:      time.Now,
		sessions: make(map[string]*Session),
		lru:      list.New(),
	}
}

// Get returns the live session for name whose current graph hash equals
// hash, touching its LRU slot. Any mismatch — hash or (when key is
// non-empty) parameter fingerprint — is a plain miss that leaves the
// session alone: the caller's hash may be a stale registry snapshot
// while the session itself is perfectly in lockstep, so Get must never
// destroy on its own authority. Genuinely stale sessions are reaped by
// the callers that know (InvalidateStale after an authoritative registry
// swap, Session.Invalidate from a failed in-actor consistency check) or
// age out via TTL/LRU.
func (mgr *Manager) Get(name, hash, key string) *Session {
	mgr.mu.Lock()
	defer mgr.mu.Unlock()
	if mgr.closed {
		return nil
	}
	s, ok := mgr.sessions[name]
	if !ok || s.hash != hash || (key != "" && s.key != key) {
		mgr.stats.Misses++
		return nil
	}
	mgr.stats.Hits++
	s.lastUsed = mgr.now()
	mgr.lru.MoveToFront(s.el)
	return s
}

// Install registers a freshly built maintainer as the live session for
// name, replacing any existing session for that name (the newer state
// wins). The maintainer must not be used directly afterwards — the
// session's actor loop owns it. Returns nil when the manager is disabled
// or closed (the maintainer is then simply dropped).
func (mgr *Manager) Install(name, key string, m Maintainer) *Session {
	if mgr == nil || mgr.opt.MaxSessions < 0 {
		return nil
	}
	// Estimate and fingerprint outside the lock: both walk the graph.
	bytes := m.ResidentBytes()
	hash := mgr.opt.Hash(m.Graph())

	mgr.mu.Lock()
	if mgr.closed {
		mgr.mu.Unlock()
		return nil
	}
	if old, ok := mgr.sessions[name]; ok {
		mgr.removeLocked(old)
		mgr.stats.Invalidations++
	}
	s := &Session{
		name: name,
		key:  key,
		mgr:  mgr,
		m:    m,
		reqs: make(chan *request), // unbuffered: accepted work always runs
		gone: make(chan struct{}),
		dead: make(chan struct{}),
	}
	s.hash, s.bytes, s.lastUsed = hash, bytes, mgr.now()
	s.el = mgr.lru.PushFront(s)
	mgr.sessions[name] = s
	mgr.resident += bytes
	mgr.stats.Installs++
	mgr.enforceLocked(s)
	ttl := mgr.opt.IdleTTL
	mgr.mu.Unlock()

	go s.loop(ttl)
	return s
}

// Invalidate closes any session for name, whatever its state. Only for
// callers with absolute knowledge that no session for the name can be
// valid — the graph was deleted. Reports whether one existed.
func (mgr *Manager) Invalidate(name string) bool {
	mgr.mu.Lock()
	defer mgr.mu.Unlock()
	s, ok := mgr.sessions[name]
	if !ok {
		return false
	}
	mgr.removeLocked(s)
	mgr.stats.Invalidations++
	return true
}

// InvalidateStale closes the session for name unless its graph hash is
// hash. Callers who just advanced the registry authoritatively (the
// winner of a cold PATCH swap) use it to reap a session left behind on
// the old graph without any risk to a healthy in-lockstep one.
func (mgr *Manager) InvalidateStale(name, hash string) bool {
	mgr.mu.Lock()
	defer mgr.mu.Unlock()
	s, ok := mgr.sessions[name]
	if !ok || s.hash == hash {
		return false
	}
	mgr.removeLocked(s)
	mgr.stats.Invalidations++
	return true
}

// Stats snapshots the manager counters.
func (mgr *Manager) Stats() ManagerStats {
	mgr.mu.Lock()
	defer mgr.mu.Unlock()
	st := mgr.stats
	st.Sessions = len(mgr.sessions)
	st.ResidentBytes = mgr.resident
	st.BudgetBytes = mgr.opt.MaxResidentBytes
	return st
}

// Len reports the number of resident sessions.
func (mgr *Manager) Len() int {
	mgr.mu.Lock()
	defer mgr.mu.Unlock()
	return len(mgr.sessions)
}

// Close drains the manager: no new sessions or hits, every session
// finishes the work already accepted by its actor loop, and the call
// returns once all loops have exited (or ctx expires). Used for graceful
// daemon shutdown.
func (mgr *Manager) Close(ctx context.Context) error {
	mgr.mu.Lock()
	mgr.closed = true
	closing := make([]*Session, 0, len(mgr.sessions))
	for _, s := range mgr.sessions {
		closing = append(closing, s)
	}
	for _, s := range closing {
		mgr.removeLocked(s)
	}
	mgr.mu.Unlock()
	for _, s := range closing {
		select {
		case <-s.dead:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return nil
}

// removeLocked unregisters a session and signals its actor to drain.
// Idempotent; callers hold mgr.mu.
func (mgr *Manager) removeLocked(s *Session) {
	if s.removed {
		return
	}
	s.removed = true
	delete(mgr.sessions, s.name)
	mgr.lru.Remove(s.el)
	mgr.resident -= s.bytes
	close(s.gone)
}

// enforceLocked evicts least-recently-used sessions while the count cap
// or the memory budget is exceeded, never evicting keep (the session
// that was just installed or touched — evicting it would thrash).
func (mgr *Manager) enforceLocked(keep *Session) {
	for len(mgr.sessions) > mgr.opt.MaxSessions || mgr.resident > mgr.opt.MaxResidentBytes {
		victim := mgr.oldestLocked(keep)
		if victim == nil {
			return
		}
		mgr.removeLocked(victim)
		mgr.stats.Evictions++
	}
}

func (mgr *Manager) oldestLocked(skip *Session) *Session {
	for el := mgr.lru.Back(); el != nil; el = el.Prev() {
		if s := el.Value.(*Session); s != skip {
			return s
		}
	}
	return nil
}

// touched is called by a session's actor after each executed request:
// bump the LRU slot and, after a mutating request, re-estimate resident
// bytes, refresh the graph fingerprint (reusing newHash when the caller
// already computed it — e.g. from a registry swap — instead of a second
// O(m) hash pass) and re-enforce the budget.
func (mgr *Manager) touched(s *Session, mutated bool, newHash string) {
	var bytes int64
	var hash string
	if mutated {
		bytes = s.m.ResidentBytes()
		hash = newHash
		if hash == "" {
			hash = mgr.opt.Hash(s.m.Graph())
		}
	}
	mgr.mu.Lock()
	defer mgr.mu.Unlock()
	if s.removed {
		return
	}
	s.lastUsed = mgr.now()
	mgr.lru.MoveToFront(s.el)
	if !mutated {
		return
	}
	mgr.resident += bytes - s.bytes
	s.bytes, s.hash = bytes, hash
	mgr.enforceLocked(s)
}

// expire removes s if it is still registered and has sat idle past the
// TTL. Reports whether the session was removed.
func (mgr *Manager) expire(s *Session, ttl time.Duration) bool {
	mgr.mu.Lock()
	defer mgr.mu.Unlock()
	if s.removed {
		return true
	}
	if mgr.now().Sub(s.lastUsed) < ttl {
		return false
	}
	mgr.removeLocked(s)
	mgr.stats.Expirations++
	return true
}

// ---------------------------------------------------------------- session

type request struct {
	fn     func(m Maintainer)
	done   chan struct{}
	mutate bool
	hash   string // set by a mutating fn; "" = manager recomputes
}

// Session is one resident maintainer behind its single-writer actor
// loop. Obtain via Manager.Get or Manager.Install; all access to the
// maintainer goes through Do.
type Session struct {
	name string
	key  string
	mgr  *Manager

	reqs chan *request
	gone chan struct{} // closed when the session stops accepting work
	dead chan struct{} // closed when the actor loop has fully exited

	m Maintainer // owned by the actor goroutine

	// Guarded by mgr.mu:
	el       *list.Element
	hash     string
	bytes    int64
	lastUsed time.Time
	removed  bool
}

// Name returns the graph name the session serves.
func (s *Session) Name() string { return s.name }

// Key returns the parameter fingerprint the session was installed under.
func (s *Session) Key() string { return s.key }

// Hash returns the content hash of the maintainer's current graph (as of
// the last completed request).
func (s *Session) Hash() string {
	s.mgr.mu.Lock()
	defer s.mgr.mu.Unlock()
	return s.hash
}

// Invalidate closes this specific session if it is still the registered
// one for its name; a newer replacement session under the same name is
// left untouched. Used when a request executed inside this session
// discovered it diverged from the caller's source of truth.
func (s *Session) Invalidate() {
	mgr := s.mgr
	mgr.mu.Lock()
	defer mgr.mu.Unlock()
	if cur, ok := mgr.sessions[s.name]; ok && cur == s {
		mgr.removeLocked(s)
		mgr.stats.Invalidations++
	}
}

// Do runs fn inside the session's single-writer loop, serialized against
// every other request. fn receives the live maintainer, must not retain
// it, and must not mutate it — use DoMutate for that, so the manager's
// hash and memory accounting stay truthful. Do returns fn's error,
// ErrSessionGone if the session was closed before the request was
// accepted, or ctx's error while waiting for a slot. Once accepted, a
// request always runs — even during drain — so state transitions fn
// makes are never half-applied by cancellation.
func (s *Session) Do(ctx context.Context, fn func(m Maintainer) error) error {
	return s.do(ctx, false, func(m Maintainer) (string, error) { return "", fn(m) })
}

// DoMutate is Do for requests that change the maintainer's state: after
// fn returns the session re-estimates its resident bytes and refreshes
// its graph fingerprint. fn may return the new content hash when its own
// bookkeeping already computed it (the service returns the registry
// swap's hash), avoiding a second O(m) hash pass; return "" to have the
// manager recompute. When fn errors after mutating past a commit point,
// the caller must invalidate the session — accounting is only refreshed
// on success.
func (s *Session) DoMutate(ctx context.Context, fn func(m Maintainer) (newHash string, err error)) error {
	return s.do(ctx, true, fn)
}

func (s *Session) do(ctx context.Context, mutate bool, fn func(m Maintainer) (string, error)) error {
	var err error
	req := &request{mutate: mutate, done: make(chan struct{})}
	req.fn = func(m Maintainer) {
		var h string
		h, err = fn(m)
		if err == nil {
			req.hash = h
		} else {
			req.mutate = false // failed request: leave accounting untouched
		}
	}
	select {
	case s.reqs <- req:
	case <-s.gone:
		return ErrSessionGone
	case <-ctx.Done():
		return ctx.Err()
	}
	<-req.done
	return err
}

// Stats snapshots the session's telemetry through the actor loop.
func (s *Session) Stats(ctx context.Context) (Stats, error) {
	var st Stats
	err := s.Do(ctx, func(m Maintainer) error {
		st = Snapshot(m)
		return nil
	})
	return st, err
}

// loop is the single-writer actor: it owns the maintainer, executes
// requests in arrival order, arms the idle TTL, and on close drains the
// requests that were already accepted before exiting.
func (s *Session) loop(ttl time.Duration) {
	defer close(s.dead)
	var idle *time.Timer
	var idleC <-chan time.Time
	if ttl > 0 {
		idle = time.NewTimer(ttl)
		defer idle.Stop()
		idleC = idle.C
	}
	for {
		select {
		case req := <-s.reqs:
			req.fn(s.m)
			close(req.done)
			s.mgr.touched(s, req.mutate, req.hash)
			if idle != nil {
				if !idle.Stop() {
					select {
					case <-idle.C:
					default:
					}
				}
				idle.Reset(ttl)
			}
		case <-idleC:
			if !s.mgr.expire(s, ttl) {
				idle.Reset(ttl) // touched since the timer was armed
			}
			// When expired, keep looping: gone is now closed and the next
			// iteration drains any request that won the acceptance race.
		case <-s.gone:
			// Drain: the reqs channel is unbuffered, so only a sender
			// currently blocked in Do can still hand over work; serve
			// those, then exit (senders that lose the race observe gone).
			for {
				select {
				case req := <-s.reqs:
					req.fn(s.m)
					close(req.done)
				default:
					return
				}
			}
		}
	}
}
