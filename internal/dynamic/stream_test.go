package dynamic

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func TestParseEventsRoundTrip(t *testing.T) {
	in := `# warm-up batch
+ 0 5 1.5
= 1 2 0.25
commit

- 3 4
commit
+ 7 9 2
`
	batches, err := ParseEvents(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := [][]Update{
		{Insert(0, 5, 1.5), Reweight(1, 2, 0.25)},
		{Delete(3, 4)},
		{Insert(7, 9, 2)},
	}
	if len(batches) != len(want) {
		t.Fatalf("batches = %d, want %d", len(batches), len(want))
	}
	for i := range want {
		if len(batches[i]) != len(want[i]) {
			t.Fatalf("batch %d has %d updates, want %d", i, len(batches[i]), len(want[i]))
		}
		for j := range want[i] {
			if batches[i][j] != want[i][j] {
				t.Fatalf("batch %d update %d = %+v, want %+v", i, j, batches[i][j], want[i][j])
			}
		}
	}

	var buf bytes.Buffer
	if err := WriteEvents(&buf, batches); err != nil {
		t.Fatal(err)
	}
	again, err := ParseEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != len(batches) {
		t.Fatalf("round trip changed batch count: %d vs %d", len(again), len(batches))
	}
	for i := range batches {
		for j := range batches[i] {
			if again[i][j] != batches[i][j] {
				t.Fatalf("round trip changed update %d/%d", i, j)
			}
		}
	}
}

func TestParseEventsNamedOpsAndEmptyBatches(t *testing.T) {
	in := "commit\ninsert 1 2 3\ncommit\ncommit\ndelete 1 2\nreweight 3 4 5\n"
	batches, err := ParseEvents(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(batches) != 2 {
		t.Fatalf("batches = %d, want 2 (empty batches dropped)", len(batches))
	}
}

func TestParseEventsErrors(t *testing.T) {
	for _, in := range []string{
		"~ 1 2 3\n",   // unknown op
		"+ 1 2\n",     // insert missing weight
		"- 1\n",       // delete missing endpoint
		"+ a 2 3\n",   // bad vertex
		"+ 1 2 x\n",   // bad weight
		"- 1 2 3 4\n", // too many fields
	} {
		if _, err := ParseEvents(strings.NewReader(in)); !errors.Is(err, ErrBadUpdate) {
			t.Fatalf("input %q: err = %v, want ErrBadUpdate", in, err)
		}
	}
}
