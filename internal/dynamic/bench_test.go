package dynamic_test

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"os"
	"sync"
	"testing"
	"time"

	"graphspar/internal/cholesky"
	"graphspar/internal/core"
	"graphspar/internal/dynamic"
	"graphspar/internal/gen"
	"graphspar/internal/graph"
	"graphspar/internal/lsst"
	"graphspar/internal/testkit"
	"graphspar/internal/vecmath"
)

// benchState shares the expensive setup (one full sparsify of grid256 and
// one maintainer build) across the batch-size sub-benchmarks.
type benchState struct {
	once     sync.Once
	g        *graph.Graph
	m        *dynamic.Maintainer
	fullDur  time.Duration // one from-scratch core.Sparsify of the graph
	buildErr error
}

var incBench benchState

const benchSigmaSq = 100

func (s *benchState) setup() {
	s.once.Do(func() {
		g, err := gen.Grid2D(256, 256, gen.UniformWeights, 1)
		if err != nil {
			s.buildErr = err
			return
		}
		s.g = g
		t0 := time.Now()
		if _, err := core.Sparsify(g, core.Options{SigmaSq: benchSigmaSq, Seed: 1}); err != nil &&
			!errors.Is(err, core.ErrNoTarget) {
			s.buildErr = err
			return
		}
		s.fullDur = time.Since(t0)
		s.m, s.buildErr = dynamic.New(context.Background(), g, dynamic.Options{
			Sparsify: core.Options{SigmaSq: benchSigmaSq, Seed: 1},
		})
	})
}

// benchResults accumulates the per-batch-size metrics for the
// BENCH_dynamic.json artifact (written when BENCH_DYNAMIC_JSON names a
// path, e.g. by the CI bench step).
var (
	benchResultsMu sync.Mutex
	benchResults   = map[string]any{}
)

func publishBenchResult(b *testing.B, name string, metrics map[string]float64) {
	b.Helper()
	benchResultsMu.Lock()
	defer benchResultsMu.Unlock()
	benchResults[name] = metrics
	path := os.Getenv("BENCH_DYNAMIC_JSON")
	if path == "" {
		return
	}
	out := map[string]any{
		"benchmark": "dynamic",
		"sigma2":    benchSigmaSq,
		"results":   benchResults,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		b.Fatal(err)
	}
}

// localState is one prepared BenchmarkLocalUpdate instance: a graph, a
// synthetic sparsifier (backbone plus every 4th off-tree edge), its
// ND-ordered factor, an embedding scorer, and the edges the toggle loop
// perturbs.
type localState struct {
	g, p        *graph.Graph
	ls          *cholesky.LapSolver
	sc          *core.EdgeScorer
	toggles     []graph.Edge
	perUpdateUs float64 // fixed 1000-pair measurement, stable at any -benchtime
	err         error
}

var (
	localStates = map[string]*localState{}
	localPerUs  = map[string]float64{} // per-update µs by case, for the flatness gate
)

func localSetup(name string, keep int, build func() (*graph.Graph, error)) *localState {
	if s, ok := localStates[name]; ok {
		return s
	}
	s := &localState{}
	localStates[name] = s
	s.g, s.err = build()
	if s.err != nil {
		return s
	}
	_, treeIDs, offIDs, err := lsst.Extract(s.g, lsst.MaxWeight, 1)
	if err != nil {
		s.err = err
		return s
	}
	// Backbone plus `keep` off-tree edges. The quantity the flat-cost claim
	// is about is the fill crossing the top of the centroid hierarchy — the
	// etree spine every update path traverses — so the cases hold that
	// crossing load comparable rather than the raw off-tree count: grid
	// chords are local (their fill dies out low in the hierarchy; probing
	// grids 256→1024 at fixed keep shows path fill flat-to-decreasing),
	// while every SBM chord is global and lands on the spine, so the SBM
	// case keeps proportionally fewer. Scaling off-tree edges with n would
	// measure the synthetic sparsifier's density, not the factor locality.
	div := 1
	if keep > 0 && len(offIDs) > keep {
		div = len(offIDs) / keep
	}
	edges := make([]graph.Edge, 0, len(treeIDs)+len(offIDs)/div+1)
	for _, id := range treeIDs {
		edges = append(edges, s.g.Edge(id))
	}
	for i, id := range offIDs {
		if i%div == 0 {
			edges = append(edges, s.g.Edge(id))
		}
	}
	s.p, s.err = graph.New(s.g.N(), edges)
	if s.err != nil {
		return s
	}
	s.ls, s.err = cholesky.NewLapSolverND(s.p)
	if s.err != nil {
		return s
	}
	s.sc = core.NewEdgeScorer(s.g, s.ls, 2, 2, 1)
	rng := vecmath.NewRNG(7)
	pe := s.p.Edges()
	for len(s.toggles) < 1024 {
		s.toggles = append(s.toggles, pe[rng.Intn(len(pe))])
	}

	// Untimed solve-consistency check: after 100 net-zero toggle pairs the
	// updated factor must still match a from-scratch factorization to 1e-10.
	for i := 0; i < 100; i++ {
		e := s.toggles[i]
		if err := s.ls.ApplyEdge(e.U, e.V, 0.5*e.W); err != nil {
			s.err = err
			return s
		}
		if err := s.ls.ApplyEdge(e.U, e.V, -0.5*e.W); err != nil {
			s.err = err
			return s
		}
	}
	fresh, err := cholesky.NewLapSolverND(s.p)
	if err != nil {
		s.err = err
		return s
	}
	n := s.p.N()
	rhs := make([]float64, n)
	for i := range rhs {
		rhs[i] = rng.NormFloat64()
	}
	x, y := make([]float64, n), make([]float64, n)
	s.ls.Solve(x, rhs)
	fresh.Solve(y, rhs)
	var diff, scale float64
	for i := range x {
		if d := math.Abs(x[i] - y[i]); d > diff {
			diff = d
		}
		if a := math.Abs(x[i]); a > scale {
			scale = a
		}
	}
	if scale < 1 {
		scale = 1
	}
	if diff/scale > 1e-10 {
		s.err = errors.New("updated factor drifted past 1e-10 from from-scratch solve")
		return s
	}

	// The flat-cost metric comes from a fixed 1000-pair window so it is
	// stable regardless of -benchtime (CI runs 3x).
	const pairs = 1000
	t0 := time.Now()
	for i := 0; i < pairs; i++ {
		e := s.toggles[i%len(s.toggles)]
		if err := s.ls.ApplyEdge(e.U, e.V, 0.5*e.W); err != nil {
			s.err = err
			return s
		}
		if err := s.ls.ApplyEdge(e.U, e.V, -0.5*e.W); err != nil {
			s.err = err
			return s
		}
	}
	s.perUpdateUs = float64(time.Since(t0).Microseconds()) / (2 * pairs)
	return s
}

// BenchmarkLocalUpdate is the flat-cost proof of the incremental path:
// per-edge ApplyEdge (a rank-1 update/downdate along the ND elimination
// tree) and per-call StepLocal (a ball-local embedding refresh) are timed
// on graphs 16–64× the grid256 baseline. The headline metric is
// per-update-µs; with the centroid nested-dissection order the etree path
// an update walks grows like log n, so the cost must stay within 2× from
// grid256 to grid1024 — asserted when BENCH_ASSERT_FLAT is set (the CI
// bench step), alongside the per-batch numbers of
// BenchmarkIncrementalUpdate in BENCH_dynamic.json.
func BenchmarkLocalUpdate(b *testing.B) {
	cases := []struct {
		name  string
		keep  int
		build func() (*graph.Graph, error)
	}{
		{"grid256", 1024, func() (*graph.Graph, error) { return gen.Grid2D(256, 256, gen.UniformWeights, 1) }},
		{"sbm4x8192", 128, func() (*graph.Graph, error) {
			g, _, err := gen.SBM(4, 8192, 0.002, 0.0001, 1)
			return g, err
		}},
		{"grid1024", 1024, func() (*graph.Graph, error) { return gen.Grid2D(1024, 1024, gen.UniformWeights, 1) }},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			s := localSetup(c.name, c.keep, c.build)
			if s.err != nil {
				b.Fatal(s.err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e := s.toggles[i%len(s.toggles)]
				if err := s.ls.ApplyEdge(e.U, e.V, 0.5*e.W); err != nil {
					b.Fatal(err)
				}
				if err := s.ls.ApplyEdge(e.U, e.V, -0.5*e.W); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			perUpdateUs := s.perUpdateUs
			localPerUs[c.name] = perUpdateUs

			// StepLocal cost, measured separately from the factor updates.
			const localReps = 50
			t0 := time.Now()
			for i := 0; i < localReps; i++ {
				e := s.toggles[i%len(s.toggles)]
				s.sc.StepLocal(s.g, s.p, []int{e.U, e.V}, 2, 3, s.g.N()/4)
			}
			localStepUs := float64(time.Since(t0).Microseconds()) / localReps

			b.ReportMetric(perUpdateUs, "per-update-µs")
			b.ReportMetric(localStepUs, "local-step-µs")
			publishBenchResult(b, "local:"+c.name, map[string]float64{
				"n":             float64(s.g.N()),
				"m":             float64(s.g.M()),
				"sparsifier_m":  float64(s.p.M()),
				"per_update_us": perUpdateUs,
				"local_step_us": localStepUs,
			})

			if c.name != "grid256" && os.Getenv("BENCH_ASSERT_FLAT") != "" {
				base, ok := localPerUs["grid256"]
				if !ok {
					b.Fatal("BENCH_ASSERT_FLAT set but grid256 did not run first")
				}
				if perUpdateUs > 2*base {
					b.Fatalf("per-update cost is not flat: %s %.2fµs > 2 × grid256 %.2fµs",
						c.name, perUpdateUs, base)
				}
			}
		})
	}
}

// BenchmarkIncrementalUpdate measures maintaining a grid256 sparsifier
// under update batches of size 1, 16 and 256 against the cost of a full
// re-sparsification (the pre-dynamic answer to any mutation). Reported
// metrics: batch-ms is the mean Apply wall time, speedup-vs-full is
// T(core.Sparsify) / T(Apply) — the acceptance bar is ≥ 5 for size-1
// batches — and κ confirms the certificate held. Batches that a random
// stream would reject (bridge deletes) are skipped and regenerated, so
// every measured Apply does real maintenance work.
func BenchmarkIncrementalUpdate(b *testing.B) {
	for _, size := range []int{1, 16, 256} {
		name := map[int]string{1: "batch=1", 16: "batch=16", 256: "batch=256"}[size]
		b.Run(name, func(b *testing.B) {
			incBench.setup()
			if incBench.buildErr != nil {
				b.Fatal(incBench.buildErr)
			}
			m := incBench.m
			rng := vecmath.NewRNG(uint64(size) * 977)
			b.ResetTimer()
			var applied int
			var total time.Duration
			for i := 0; i < b.N; i++ {
				batch := testkit.RandomBatch(m.Graph(), rng, size)
				t0 := time.Now()
				err := m.Apply(context.Background(), batch)
				if errors.Is(err, dynamic.ErrWouldDisconnect) {
					continue
				}
				if err != nil {
					b.Fatal(err)
				}
				total += time.Since(t0)
				applied++
			}
			b.StopTimer()
			if applied == 0 {
				b.Skip("no batch applied in this run")
			}
			perApply := total / time.Duration(applied)
			speedup := float64(incBench.fullDur) / float64(perApply)
			b.ReportMetric(float64(perApply.Milliseconds()), "batch-ms")
			b.ReportMetric(speedup, "speedup-vs-full")
			b.ReportMetric(m.Cond(), "κ")
			b.ReportMetric(float64(m.Stats().Rebuilds), "rebuilds")
			// Batch=256 runs settle in batched-verify mode (one Lanczos
			// check per pass instead of one per re-filter round); the
			// verifies/batched_settles metrics track how much certificate
			// work that saves at large batch sizes.
			publishBenchResult(b, name, map[string]float64{
				"batch_size":       float64(size),
				"apply_ms":         float64(perApply.Milliseconds()),
				"full_ms":          float64(incBench.fullDur.Milliseconds()),
				"speedup_vs_full":  speedup,
				"cond":             m.Cond(),
				"rebuilds":         float64(m.Stats().Rebuilds),
				"verifies":         float64(m.Stats().Verifies),
				"batched_settles":  float64(m.Stats().BatchedSettles),
				"factor_updates":   float64(m.Stats().FactorUpdates),
				"factor_downdates": float64(m.Stats().FactorDowndates),
				"factor_rebuilds":  float64(m.Stats().FactorRebuilds),
				"local_steps":      float64(m.Stats().LocalSteps),
			})
		})
	}
}
