package dynamic_test

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"sync"
	"testing"
	"time"

	"graphspar/internal/core"
	"graphspar/internal/dynamic"
	"graphspar/internal/gen"
	"graphspar/internal/graph"
	"graphspar/internal/testkit"
	"graphspar/internal/vecmath"
)

// benchState shares the expensive setup (one full sparsify of grid256 and
// one maintainer build) across the batch-size sub-benchmarks.
type benchState struct {
	once     sync.Once
	g        *graph.Graph
	m        *dynamic.Maintainer
	fullDur  time.Duration // one from-scratch core.Sparsify of the graph
	buildErr error
}

var incBench benchState

const benchSigmaSq = 100

func (s *benchState) setup() {
	s.once.Do(func() {
		g, err := gen.Grid2D(256, 256, gen.UniformWeights, 1)
		if err != nil {
			s.buildErr = err
			return
		}
		s.g = g
		t0 := time.Now()
		if _, err := core.Sparsify(g, core.Options{SigmaSq: benchSigmaSq, Seed: 1}); err != nil &&
			!errors.Is(err, core.ErrNoTarget) {
			s.buildErr = err
			return
		}
		s.fullDur = time.Since(t0)
		s.m, s.buildErr = dynamic.New(context.Background(), g, dynamic.Options{
			Sparsify: core.Options{SigmaSq: benchSigmaSq, Seed: 1},
		})
	})
}

// benchResults accumulates the per-batch-size metrics for the
// BENCH_dynamic.json artifact (written when BENCH_DYNAMIC_JSON names a
// path, e.g. by the CI bench step).
var (
	benchResultsMu sync.Mutex
	benchResults   = map[string]any{}
)

func publishBenchResult(b *testing.B, name string, metrics map[string]float64) {
	b.Helper()
	benchResultsMu.Lock()
	defer benchResultsMu.Unlock()
	benchResults[name] = metrics
	path := os.Getenv("BENCH_DYNAMIC_JSON")
	if path == "" {
		return
	}
	out := map[string]any{
		"benchmark": "BenchmarkIncrementalUpdate",
		"graph":     "grid256",
		"sigma2":    benchSigmaSq,
		"results":   benchResults,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkIncrementalUpdate measures maintaining a grid256 sparsifier
// under update batches of size 1, 16 and 256 against the cost of a full
// re-sparsification (the pre-dynamic answer to any mutation). Reported
// metrics: batch-ms is the mean Apply wall time, speedup-vs-full is
// T(core.Sparsify) / T(Apply) — the acceptance bar is ≥ 5 for size-1
// batches — and κ confirms the certificate held. Batches that a random
// stream would reject (bridge deletes) are skipped and regenerated, so
// every measured Apply does real maintenance work.
func BenchmarkIncrementalUpdate(b *testing.B) {
	for _, size := range []int{1, 16, 256} {
		name := map[int]string{1: "batch=1", 16: "batch=16", 256: "batch=256"}[size]
		b.Run(name, func(b *testing.B) {
			incBench.setup()
			if incBench.buildErr != nil {
				b.Fatal(incBench.buildErr)
			}
			m := incBench.m
			rng := vecmath.NewRNG(uint64(size) * 977)
			b.ResetTimer()
			var applied int
			var total time.Duration
			for i := 0; i < b.N; i++ {
				batch := testkit.RandomBatch(m.Graph(), rng, size)
				t0 := time.Now()
				err := m.Apply(context.Background(), batch)
				if errors.Is(err, dynamic.ErrWouldDisconnect) {
					continue
				}
				if err != nil {
					b.Fatal(err)
				}
				total += time.Since(t0)
				applied++
			}
			b.StopTimer()
			if applied == 0 {
				b.Skip("no batch applied in this run")
			}
			perApply := total / time.Duration(applied)
			speedup := float64(incBench.fullDur) / float64(perApply)
			b.ReportMetric(float64(perApply.Milliseconds()), "batch-ms")
			b.ReportMetric(speedup, "speedup-vs-full")
			b.ReportMetric(m.Cond(), "κ")
			b.ReportMetric(float64(m.Stats().Rebuilds), "rebuilds")
			// Batch=256 runs settle in batched-verify mode (one Lanczos
			// check per pass instead of one per re-filter round); the
			// verifies/batched_settles metrics track how much certificate
			// work that saves at large batch sizes.
			publishBenchResult(b, name, map[string]float64{
				"batch_size":      float64(size),
				"apply_ms":        float64(perApply.Milliseconds()),
				"full_ms":         float64(incBench.fullDur.Milliseconds()),
				"speedup_vs_full": speedup,
				"cond":            m.Cond(),
				"rebuilds":        float64(m.Stats().Rebuilds),
				"verifies":        float64(m.Stats().Verifies),
				"batched_settles": float64(m.Stats().BatchedSettles),
			})
		})
	}
}
