package dynamic_test

import (
	"context"
	"errors"
	"testing"

	"graphspar/internal/core"
	"graphspar/internal/dynamic"
	"graphspar/internal/gen"
	"graphspar/internal/graph"
	"graphspar/internal/testkit"
)

// checkInvariant is the shared testkit invariant: connected subgraph,
// weights mirrored, verified κ within the σ² target.
func checkInvariant(t *testing.T, m *dynamic.Maintainer, sigmaSq float64) {
	t.Helper()
	testkit.AssertInvariant(t, m, sigmaSq)
}

func newMaintainer(t *testing.T, g *graph.Graph, sigmaSq float64) *dynamic.Maintainer {
	t.Helper()
	m, err := dynamic.New(context.Background(), g, dynamic.Options{
		Sparsify: core.Options{SigmaSq: sigmaSq, Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestApplyMixedBatchKeepsCertificate(t *testing.T) {
	g, err := gen.Grid2D(14, 14, gen.UniformWeights, 5)
	if err != nil {
		t.Fatal(err)
	}
	const sigmaSq = 50
	m := newMaintainer(t, g, sigmaSq)
	checkInvariant(t, m, sigmaSq)

	// Insert a long-range edge, reweight an existing one, delete another.
	victim := g.Edge(g.M() - 1)
	rew := g.Edge(0)
	batch := []dynamic.Update{
		dynamic.Insert(0, g.N()-1, 1.0),
		dynamic.Reweight(rew.U, rew.V, rew.W*3),
		dynamic.Delete(victim.U, victim.V),
	}
	if err := m.Apply(context.Background(), batch); err != nil {
		t.Fatal(err)
	}
	checkInvariant(t, m, sigmaSq)

	if !m.Graph().HasEdge(0, g.N()-1) {
		t.Fatal("inserted edge missing from graph")
	}
	if m.Graph().HasEdge(victim.U, victim.V) {
		t.Fatal("deleted edge still present")
	}
	st := m.Stats()
	if st.Applies != 1 || st.Updates != 3 {
		t.Fatalf("stats = %+v, want 1 apply / 3 updates", st)
	}
}

func TestDeleteTreeEdgeTriggersRepair(t *testing.T) {
	g, err := gen.Grid2D(10, 10, gen.UniformWeights, 3)
	if err != nil {
		t.Fatal(err)
	}
	const sigmaSq = 80
	m := newMaintainer(t, g, sigmaSq)
	te := m.Backbone().Edges()[0]
	if err := m.Apply(context.Background(), []dynamic.Update{dynamic.Delete(te.U, te.V)}); err != nil {
		t.Fatal(err)
	}
	if m.Stats().TreeRepairs != 1 {
		t.Fatalf("TreeRepairs = %d, want 1", m.Stats().TreeRepairs)
	}
	checkInvariant(t, m, sigmaSq)
}

func TestBridgeDeleteRejectedAtomically(t *testing.T) {
	g, err := gen.Barbell(6, 3, gen.UniformWeights, 2)
	if err != nil {
		t.Fatal(err)
	}
	const sigmaSq = 30
	m := newMaintainer(t, g, sigmaSq)
	before := m.Graph().M()
	condBefore := m.Cond()

	// Path edges of Barbell(6,3) are bridges; (5,6) is the first one. The
	// insert shortcuts the later path segment, so (5,6) stays a bridge
	// within the batch and the whole batch must be rejected.
	err = m.Apply(context.Background(), []dynamic.Update{
		dynamic.Insert(6, 8, 1), // valid part of the batch
		dynamic.Delete(5, 6),    // bridge: must reject everything
	})
	if !errors.Is(err, dynamic.ErrWouldDisconnect) {
		t.Fatalf("err = %v, want ErrWouldDisconnect", err)
	}
	if m.Graph().M() != before || m.Cond() != condBefore {
		t.Fatal("failed batch must leave the maintainer unchanged")
	}
	if m.Graph().HasEdge(6, 8) {
		t.Fatal("batch must be atomic: insert from the failed batch applied")
	}
}

func TestBatchValidationErrors(t *testing.T) {
	g, err := gen.Grid2D(6, 6, gen.UnitWeights, 1)
	if err != nil {
		t.Fatal(err)
	}
	m := newMaintainer(t, g, 100)
	ctx := context.Background()
	e0 := g.Edge(0)

	cases := []struct {
		name  string
		batch []dynamic.Update
		want  error
	}{
		{"insert existing", []dynamic.Update{dynamic.Insert(e0.U, e0.V, 1)}, dynamic.ErrEdgeExists},
		{"delete missing", []dynamic.Update{dynamic.Delete(0, 35)}, dynamic.ErrEdgeMissing},
		{"reweight missing", []dynamic.Update{dynamic.Reweight(0, 35, 2)}, dynamic.ErrEdgeMissing},
		{"self loop", []dynamic.Update{dynamic.Insert(3, 3, 1)}, dynamic.ErrBadUpdate},
		{"range", []dynamic.Update{dynamic.Insert(0, 99, 1)}, dynamic.ErrBadUpdate},
		{"bad weight", []dynamic.Update{dynamic.Insert(0, 35, -1)}, dynamic.ErrBadUpdate},
		{"duplicate edge in batch", []dynamic.Update{
			dynamic.Insert(0, 35, 1), dynamic.Reweight(0, 35, 2),
		}, dynamic.ErrBadUpdate},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if err := m.Apply(ctx, c.batch); !errors.Is(err, c.want) {
				t.Fatalf("err = %v, want %v", err, c.want)
			}
		})
	}
	if st := m.Stats(); st.Applies != 0 {
		t.Fatalf("failed batches must not count as applies, got %+v", st)
	}
}

func TestDriftBudgetForcesRebuild(t *testing.T) {
	g, err := gen.Grid2D(8, 8, gen.UniformWeights, 4)
	if err != nil {
		t.Fatal(err)
	}
	m, err := dynamic.New(context.Background(), g, dynamic.Options{
		Sparsify:      core.Options{SigmaSq: 60, Seed: 1},
		DriftFraction: 1e-12, // any perturbation mass exceeds the budget
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Apply(context.Background(), []dynamic.Update{dynamic.Insert(0, 63, 2)}); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.Rebuilds != 1 {
		t.Fatalf("Rebuilds = %d, want exactly 1 (deterministic forced rebuild)", st.Rebuilds)
	}
	if st.Drift != 0 {
		t.Fatalf("drift must reset after a rebuild, got %v", st.Drift)
	}
	checkInvariant(t, m, 60)
}

func TestExplicitRebuild(t *testing.T) {
	g, err := gen.Grid2D(8, 8, gen.UniformWeights, 9)
	if err != nil {
		t.Fatal(err)
	}
	m := newMaintainer(t, g, 60)
	if err := m.Rebuild(context.Background()); err != nil {
		t.Fatal(err)
	}
	if m.Stats().Rebuilds != 1 {
		t.Fatalf("Rebuilds = %d, want 1", m.Stats().Rebuilds)
	}
	checkInvariant(t, m, 60)
}

func TestResumeWarmStart(t *testing.T) {
	g1, err := gen.Grid2D(12, 12, gen.UniformWeights, 6)
	if err != nil {
		t.Fatal(err)
	}
	const sigmaSq = 50
	m1 := newMaintainer(t, g1, sigmaSq)
	warm := m1.Sparsifier()

	// Perturb the graph: drop a corner edge, add two chords, bump weights.
	e := g1.Edge(5)
	g2, err := dynamic.ApplyToGraph(g1, []dynamic.Update{
		dynamic.Delete(e.U, e.V),
		dynamic.Insert(0, g1.N()-1, 1.5),
		dynamic.Insert(3, g1.N()-7, 0.7),
	})
	if err != nil {
		t.Fatal(err)
	}

	m2, err := dynamic.Resume(context.Background(), g2, warm, dynamic.Options{
		Sparsify: core.Options{SigmaSq: sigmaSq, Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !m2.Stats().WarmStart {
		t.Fatal("WarmStart flag must be set")
	}
	checkInvariant(t, m2, sigmaSq)
}

func TestResumeRejectsMismatchedVertexSet(t *testing.T) {
	g, err := gen.Grid2D(6, 6, gen.UnitWeights, 1)
	if err != nil {
		t.Fatal(err)
	}
	small, err := gen.Path(5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dynamic.Resume(context.Background(), g, small, dynamic.Options{
		Sparsify: core.Options{SigmaSq: 50},
	}); err == nil {
		t.Fatal("mismatched warm sparsifier must fail")
	}
}

func TestShardedRebuildPath(t *testing.T) {
	g, err := gen.Grid2D(16, 16, gen.UniformWeights, 8)
	if err != nil {
		t.Fatal(err)
	}
	const sigmaSq = 60
	m, err := dynamic.New(context.Background(), g, dynamic.Options{
		Sparsify:      core.Options{SigmaSq: sigmaSq, Seed: 1},
		RebuildShards: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	checkInvariant(t, m, sigmaSq)
	if err := m.Apply(context.Background(), []dynamic.Update{dynamic.Insert(0, g.N()-1, 1)}); err != nil {
		t.Fatal(err)
	}
	checkInvariant(t, m, sigmaSq)
}

func TestDisconnectedInputRejected(t *testing.T) {
	two := graph.MustNew(4, []graph.Edge{{U: 0, V: 1, W: 1}, {U: 2, V: 3, W: 1}})
	if _, err := dynamic.New(context.Background(), two, dynamic.Options{
		Sparsify: core.Options{SigmaSq: 50},
	}); !errors.Is(err, graph.ErrDisconnected) {
		t.Fatalf("err = %v, want graph.ErrDisconnected", err)
	}
}

func TestApplyToGraphEmptyBatch(t *testing.T) {
	g, err := gen.Path(4)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := dynamic.ApplyToGraph(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if g2 != g {
		t.Fatal("empty batch must return the graph unchanged")
	}
}

// TestBatchedVerifyEquivalence runs the same large update batch through a
// maintainer with batched certificate verification (one Lanczos check per
// settle pass) and one with per-round verification, asserting both end
// within the σ² target and that batching actually reduced the number of
// Lanczos verifications (the batch=256 regime's dominant cost).
func TestBatchedVerifyEquivalence(t *testing.T) {
	const sigmaSq = 50
	build := func(threshold int) (*dynamic.Maintainer, *graph.Graph) {
		g, err := gen.Grid2D(16, 16, gen.UniformWeights, 3)
		if err != nil {
			t.Fatal(err)
		}
		m, err := dynamic.New(context.Background(), g, dynamic.Options{
			Sparsify:             core.Options{SigmaSq: sigmaSq, Seed: 1},
			BatchVerifyThreshold: threshold,
		})
		if err != nil {
			t.Fatal(err)
		}
		return m, g
	}
	batched, g := build(1)   // every Apply settles in batched mode
	perRound, _ := build(-1) // batching disabled: one verify per round

	// Delete a swath of off-tree sparsifier edges: no backbone repairs
	// fire, the sparsifier thins out, the certificate drifts past the
	// safety margin, and the settle pass runs real re-filter rounds in
	// both maintainers.
	tree := make(map[[2]int]bool)
	for _, e := range batched.Backbone().Edges() {
		if e.U > e.V {
			e.U, e.V = e.V, e.U
		}
		tree[[2]int{e.U, e.V}] = true
	}
	var batch []dynamic.Update
	for _, e := range batched.Sparsifier().Edges() {
		if len(batch) >= 40 {
			break
		}
		if tree[[2]int{e.U, e.V}] {
			continue
		}
		// Keep the graph connected (off-tree edges of a grid are never
		// bridges, but check via a trial application to stay robust).
		trial := append(append([]dynamic.Update(nil), batch...), dynamic.Delete(e.U, e.V))
		if _, err := dynamic.ApplyToGraph(g, trial); err != nil {
			continue
		}
		batch = append(batch, dynamic.Delete(e.U, e.V))
	}
	if len(batch) < 8 {
		t.Fatalf("only %d deletable off-tree sparsifier edges found", len(batch))
	}

	if err := batched.Apply(context.Background(), batch); err != nil {
		t.Fatal(err)
	}
	if err := perRound.Apply(context.Background(), batch); err != nil {
		t.Fatal(err)
	}
	checkInvariant(t, batched, sigmaSq)
	checkInvariant(t, perRound, sigmaSq)

	bs, ps := batched.Stats(), perRound.Stats()
	if bs.BatchedSettles == 0 {
		t.Fatalf("batched maintainer never entered batched settle: %+v", bs)
	}
	if ps.BatchedSettles != 0 {
		t.Fatalf("per-round maintainer entered batched settle: %+v", ps)
	}
	// Both re-filtered; the batched maintainer must have paid fewer
	// verifications for at least as many admission rounds.
	if bs.Refilters == 0 || ps.Refilters == 0 {
		t.Skipf("no refilter rounds ran (batched=%d per-round=%d); batch too gentle", bs.Refilters, ps.Refilters)
	}
	if ps.Refilters > 1 && bs.Verifies >= ps.Verifies {
		t.Errorf("batched verifies = %d, want fewer than per-round %d (refilters %d vs %d)",
			bs.Verifies, ps.Verifies, bs.Refilters, ps.Refilters)
	}
}
