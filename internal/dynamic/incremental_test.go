package dynamic_test

import (
	"context"
	"errors"
	"testing"

	"graphspar/internal/core"
	"graphspar/internal/dynamic"
	"graphspar/internal/testkit"
	"graphspar/internal/vecmath"
)

// runStream pushes batches through m until applied batches were accepted,
// asserting the σ² invariant after each one.
func runStream(t *testing.T, m *dynamic.Maintainer, sigmaSq float64, seed uint64, batches int) {
	t.Helper()
	rng := vecmath.NewRNG(seed)
	applied := 0
	for i := 0; applied < batches && i < 4*batches; i++ {
		batch := testkit.RandomBatch(m.Graph(), rng, 1+rng.Intn(4))
		if len(batch) == 0 {
			continue
		}
		err := m.Apply(context.Background(), batch)
		if errors.Is(err, dynamic.ErrWouldDisconnect) {
			continue
		}
		if err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		applied++
		testkit.AssertInvariant(t, m, sigmaSq)
	}
	if applied < batches {
		t.Fatalf("only %d/%d batches applied", applied, batches)
	}
}

// TestIncrementalFactorUpdatesUsed checks that with the default update
// budget the maintainer folds sparsifier deltas into the factor via rank-1
// update/downdates instead of refactoring per batch, while the verified
// certificate keeps holding.
func TestIncrementalFactorUpdatesUsed(t *testing.T) {
	const sigmaSq = 60
	for _, c := range testkit.Cases() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			g, err := c.Build(9)
			if err != nil {
				t.Fatal(err)
			}
			m, err := dynamic.New(context.Background(), g, dynamic.Options{
				Sparsify: core.Options{SigmaSq: sigmaSq, Seed: 9},
			})
			if err != nil {
				t.Fatal(err)
			}
			runStream(t, m, sigmaSq, 4242, 8)
			st := m.Stats()
			if st.FactorUpdates+st.FactorDowndates == 0 {
				t.Fatalf("no incremental factor updates over 8 batches: %+v", st)
			}
			t.Logf("%s: updates=%d downdates=%d rebuilds=%d",
				c.Name, st.FactorUpdates, st.FactorDowndates, st.FactorRebuilds)
		})
	}
}

// TestFactorUpdateBudgetDisabled pins the knob contract: a negative budget
// must force a full refactorization on every materialization and never
// take the rank-1 path.
func TestFactorUpdateBudgetDisabled(t *testing.T) {
	const sigmaSq = 60
	g, err := testkit.Cases()[0].Build(9)
	if err != nil {
		t.Fatal(err)
	}
	m, err := dynamic.New(context.Background(), g, dynamic.Options{
		Sparsify:           core.Options{SigmaSq: sigmaSq, Seed: 9},
		FactorUpdateBudget: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	runStream(t, m, sigmaSq, 4242, 6)
	st := m.Stats()
	if st.FactorUpdates+st.FactorDowndates != 0 {
		t.Fatalf("disabled budget still produced %d updates/%d downdates",
			st.FactorUpdates, st.FactorDowndates)
	}
	if st.FactorRebuilds == 0 {
		t.Fatal("disabled budget produced no rebuilds either")
	}
}

// TestLocalRefreshKeepsInvariant runs the stream with ball-local embedding
// refreshes enabled and checks both that the local path actually fires and
// that the independently verified certificate never slips past σ².
func TestLocalRefreshKeepsInvariant(t *testing.T) {
	const sigmaSq = 60
	for _, c := range testkit.Cases() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			g, err := c.Build(9)
			if err != nil {
				t.Fatal(err)
			}
			m, err := dynamic.New(context.Background(), g, dynamic.Options{
				Sparsify:           core.Options{SigmaSq: sigmaSq, Seed: 9},
				LocalRefreshRadius: 2,
			})
			if err != nil {
				t.Fatal(err)
			}
			runStream(t, m, sigmaSq, 777, 8)
			st := m.Stats()
			if st.LocalSteps == 0 {
				t.Logf("%s: no local steps fired (balls past cap on a small graph); stats=%+v", c.Name, st)
			} else {
				t.Logf("%s: local_steps=%d refreshes=%d", c.Name, st.LocalSteps, st.EmbedRefreshes)
			}
		})
	}
}

// TestLocalRefreshFiresOnLargeGraph uses a graph big enough that a radius-2
// ball stays under the n/4 cap, so the local path must actually be taken.
func TestLocalRefreshFiresOnLargeGraph(t *testing.T) {
	const sigmaSq = 60
	g, err := testkit.Cases()[0].Build(21) // grid
	if err != nil {
		t.Fatal(err)
	}
	m, err := dynamic.New(context.Background(), g, dynamic.Options{
		Sparsify:           core.Options{SigmaSq: sigmaSq, Seed: 21},
		LocalRefreshRadius: 1,
		LocalRefreshSweeps: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	runStream(t, m, sigmaSq, 31337, 8)
	if st := m.Stats(); st.LocalSteps == 0 {
		t.Fatalf("radius-1 balls on a %d-vertex grid never took the local path: %+v", g.N(), st)
	}
}
