package dynamic

import (
	"errors"
	"fmt"

	"graphspar/internal/graph"
)

// Typed errors surfaced by batch validation and application. The service
// layer maps ErrWouldDisconnect to 422 so clients can distinguish "your
// delete severs a bridge" from a malformed request.
var (
	ErrWouldDisconnect = errors.New("dynamic: update batch would disconnect the graph")
	ErrEdgeExists      = errors.New("dynamic: insert of an existing edge")
	ErrEdgeMissing     = errors.New("dynamic: update references a missing edge")
	ErrBadUpdate       = errors.New("dynamic: invalid update")
)

// Op is the kind of one edge mutation.
type Op int

// Supported mutations.
const (
	OpInsert Op = iota
	OpDelete
	OpReweight
)

// String names the op for logs and wire formats.
func (o Op) String() string {
	switch o {
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	case OpReweight:
		return "reweight"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// ParseOp is the inverse of String.
func ParseOp(s string) (Op, error) {
	switch s {
	case "insert", "+":
		return OpInsert, nil
	case "delete", "-":
		return OpDelete, nil
	case "reweight", "=":
		return OpReweight, nil
	default:
		return 0, fmt.Errorf("%w: unknown op %q", ErrBadUpdate, s)
	}
}

// Update is one edge mutation. W is ignored for deletes. Endpoints may be
// given in either orientation.
type Update struct {
	Op   Op
	U, V int
	W    float64
}

// key returns the normalized (min, max) endpoint pair.
func (u Update) key() [2]int {
	if u.U < u.V {
		return [2]int{u.U, u.V}
	}
	return [2]int{u.V, u.U}
}

// Insert builds an insert update.
func Insert(u, v int, w float64) Update { return Update{Op: OpInsert, U: u, V: v, W: w} }

// Delete builds a delete update.
func Delete(u, v int) Update { return Update{Op: OpDelete, U: u, V: v} }

// Reweight builds a reweight update.
func Reweight(u, v int, w float64) Update { return Update{Op: OpReweight, U: u, V: v, W: w} }

// validate checks one update against the vertex range and weight rules
// (mirroring graph.New's constraints so failures surface before any state
// is staged).
func (u Update) validate(n int) error {
	if u.U == u.V {
		return fmt.Errorf("%w: self loop (%d,%d)", ErrBadUpdate, u.U, u.V)
	}
	if u.U < 0 || u.U >= n || u.V < 0 || u.V >= n {
		return fmt.Errorf("%w: vertex out of range (%d,%d) with n=%d", ErrBadUpdate, u.U, u.V, n)
	}
	if u.Op != OpDelete && (!(u.W > 0) || u.W > 1e300) {
		return fmt.Errorf("%w: weight %v on (%d,%d)", ErrBadUpdate, u.W, u.U, u.V)
	}
	return nil
}

// ApplyToGraph validates a batch against g and returns the mutated graph.
// The batch is atomic: the first violation (unknown edge, duplicate
// insert, self loop, bad weight, or a result that is no longer connected)
// rejects the whole batch and g is returned unchanged. Within one batch
// each edge may appear at most once. Existence checks go through the
// adjacency index and the edge list is copied in one pass, so the cost is
// O(m + b·deg) rather than a full edge-map materialization — this is the
// per-batch hot path of the dynamic maintainer.
func ApplyToGraph(g *graph.Graph, batch []Update) (*graph.Graph, error) {
	if len(batch) == 0 {
		return g, nil
	}
	touched := make(map[[2]int]*Update, len(batch))
	hasDelete := false
	for i := range batch {
		u := &batch[i]
		if err := u.validate(g.N()); err != nil {
			return nil, fmt.Errorf("update %d: %w", i, err)
		}
		k := u.key()
		if _, dup := touched[k]; dup {
			return nil, fmt.Errorf("update %d: %w: edge (%d,%d) appears twice in batch", i, ErrBadUpdate, k[0], k[1])
		}
		touched[k] = u
		exists := g.HasEdge(k[0], k[1])
		switch u.Op {
		case OpInsert:
			if exists {
				return nil, fmt.Errorf("update %d: %w: (%d,%d)", i, ErrEdgeExists, k[0], k[1])
			}
		case OpDelete:
			if !exists {
				return nil, fmt.Errorf("update %d: %w: delete (%d,%d)", i, ErrEdgeMissing, k[0], k[1])
			}
			hasDelete = true
		case OpReweight:
			if !exists {
				return nil, fmt.Errorf("update %d: %w: reweight (%d,%d)", i, ErrEdgeMissing, k[0], k[1])
			}
		default:
			return nil, fmt.Errorf("update %d: %w: op %v", i, ErrBadUpdate, u.Op)
		}
	}
	edges := make([]graph.Edge, 0, g.M()+len(batch))
	for _, e := range g.Edges() {
		if u, ok := touched[[2]int{e.U, e.V}]; ok {
			switch u.Op {
			case OpDelete:
				continue
			case OpReweight:
				e.W = u.W
			}
		}
		edges = append(edges, e)
	}
	//graphspar:nondeterministic-ok graph.New sorts and merges the edge list, erasing append order; touched has unique keys so merge sums cannot differ
	for k, u := range touched {
		if u.Op == OpInsert {
			edges = append(edges, graph.Edge{U: k[0], V: k[1], W: u.W})
		}
	}
	out, err := graph.New(g.N(), edges)
	if err != nil {
		return nil, err
	}
	// Only deletes can disconnect; skip the BFS for pure insert/reweight
	// batches.
	if hasDelete && !out.IsConnected() {
		return nil, ErrWouldDisconnect
	}
	return out, nil
}

// edgesFromMap materializes a graph from an edge-weight map.
func edgesFromMap(n int, weights map[[2]int]float64) (*graph.Graph, error) {
	edges := make([]graph.Edge, 0, len(weights))
	//graphspar:nondeterministic-ok graph.New sorts and merges the edge list, erasing append order; weights has unique keys so merge sums cannot differ
	for k, w := range weights {
		edges = append(edges, graph.Edge{U: k[0], V: k[1], W: w})
	}
	return graph.New(n, edges)
}
