package dynamic

import (
	"bytes"
	"errors"
	"io"
	"math"
	"reflect"
	"strings"
	"testing"
)

func TestBinaryRoundTrip(t *testing.T) {
	batches := [][]Update{
		{
			{Op: OpInsert, U: 0, V: 1, W: 1.5},
			{Op: OpInsert, U: 12345, V: 678901, W: 1e-12},
			{Op: OpDelete, U: 3, V: 4},
		},
		{
			{Op: OpReweight, U: 7, V: 8, W: math.Nextafter(1, 2)},
		},
		{
			{Op: OpInsert, U: 0, V: math.MaxInt32, W: 1e300},
		},
	}
	var buf bytes.Buffer
	if err := WriteBinaryEvents(&buf, batches); err != nil {
		t.Fatalf("WriteBinaryEvents: %v", err)
	}
	got, err := ReadBinaryEvents(&buf)
	if err != nil {
		t.Fatalf("ReadBinaryEvents: %v", err)
	}
	if !reflect.DeepEqual(got, batches) {
		t.Fatalf("round trip mismatch:\n got %v\nwant %v", got, batches)
	}
}

// TestBinaryMatchesText parses the same logical stream through both wire
// formats and requires identical batches: the two decoders must stay
// drop-in peers of each other.
func TestBinaryMatchesText(t *testing.T) {
	text := strings.Join([]string{
		"+ 1 2 0.5",
		"= 2 3 1.25",
		"commit",
		"- 1 2",
		"commit",
		"+ 9 10 42",
	}, "\n")
	want, err := ParseEvents(strings.NewReader(text))
	if err != nil {
		t.Fatalf("ParseEvents: %v", err)
	}
	var buf bytes.Buffer
	if err := WriteBinaryEvents(&buf, want); err != nil {
		t.Fatalf("WriteBinaryEvents: %v", err)
	}
	got, err := ReadBinaryEvents(&buf)
	if err != nil {
		t.Fatalf("ReadBinaryEvents: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("binary and text decode diverge:\n got %v\nwant %v", got, want)
	}
}

func TestBinaryEmptyBatchesDropped(t *testing.T) {
	// commit commit <insert> commit commit → one batch.
	buf := AppendBinaryCommit(nil)
	buf = AppendBinaryCommit(buf)
	buf, err := AppendBinaryUpdate(buf, Update{Op: OpInsert, U: 1, V: 2, W: 3})
	if err != nil {
		t.Fatalf("AppendBinaryUpdate: %v", err)
	}
	buf = AppendBinaryCommit(buf)
	buf = AppendBinaryCommit(buf)
	got, err := ReadBinaryEvents(bytes.NewReader(buf))
	if err != nil {
		t.Fatalf("ReadBinaryEvents: %v", err)
	}
	if len(got) != 1 || len(got[0]) != 1 {
		t.Fatalf("want a single one-update batch, got %v", got)
	}
}

func TestBinaryDecodeErrors(t *testing.T) {
	ins, err := AppendBinaryUpdate(nil, Update{Op: OpInsert, U: 5, V: 6, W: 7})
	if err != nil {
		t.Fatalf("AppendBinaryUpdate: %v", err)
	}
	cases := []struct {
		name string
		data []byte
	}{
		{"unknown op byte", []byte{0x7f}},
		{"truncated after op", ins[:1]},
		{"truncated mid weight", ins[:len(ins)-3]},
		{"oversized vertex", append([]byte{binOpDelete}, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadBinaryEvents(bytes.NewReader(tc.data))
			if !errors.Is(err, ErrBadUpdate) {
				t.Fatalf("want ErrBadUpdate, got %v", err)
			}
		})
	}
}

func TestBinaryEncodeRejects(t *testing.T) {
	if _, err := AppendBinaryUpdate(nil, Update{Op: Op(99), U: 1, V: 2}); !errors.Is(err, ErrBadUpdate) {
		t.Fatalf("bad op: want ErrBadUpdate, got %v", err)
	}
	if _, err := AppendBinaryUpdate(nil, Update{Op: OpDelete, U: -1, V: 2}); !errors.Is(err, ErrBadUpdate) {
		t.Fatalf("negative endpoint: want ErrBadUpdate, got %v", err)
	}
}

func TestBinaryReaderCleanEOF(t *testing.T) {
	d := NewBinaryReader(bytes.NewReader(nil))
	if _, _, err := d.Next(); err != io.EOF {
		t.Fatalf("empty stream: want io.EOF, got %v", err)
	}
}
