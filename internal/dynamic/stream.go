package dynamic

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParseEvents reads an edge-event stream into update batches. The format
// is line-oriented (cmd/sparsify's -update-stream mode replays it):
//
//	# comment — blank lines are skipped too
//	+ u v w      insert edge (u,v) with weight w
//	- u v        delete edge (u,v)
//	= u v w      reweight edge (u,v) to w
//	commit       close the current batch
//
// The named ops insert/delete/reweight are accepted in place of +/-/=.
// Updates after the last commit form a final implicit batch. Empty
// batches (consecutive commits) are dropped.
func ParseEvents(r io.Reader) ([][]Update, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	var (
		batches [][]Update
		cur     []Update
		lineNo  int
	)
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		u, commit, err := ParseEventLine(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		if commit {
			if len(cur) > 0 {
				batches = append(batches, cur)
				cur = nil
			}
			continue
		}
		cur = append(cur, u)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(cur) > 0 {
		batches = append(batches, cur)
	}
	return batches, nil
}

// ParseEventLine decodes one non-blank, non-comment line of the event
// wire format: "commit" reports a batch boundary, anything else is one
// update ("+ u v w", "- u v", "= u v w", or the named-op spellings).
// Incremental decoders (the service's NDJSON stream endpoint) share it
// with the batch-at-once ParseEvents.
func ParseEventLine(line string) (Update, bool, error) {
	if line == "commit" {
		return Update{}, true, nil
	}
	f := strings.Fields(line)
	if len(f) == 0 {
		return Update{}, false, fmt.Errorf("%w: empty event line", ErrBadUpdate)
	}
	op, err := ParseOp(f[0])
	if err != nil {
		return Update{}, false, err
	}
	want := 3
	if op == OpDelete {
		want = 2
	}
	if len(f) != want+1 {
		return Update{}, false, fmt.Errorf("%w: %q needs %d fields", ErrBadUpdate, f[0], want+1)
	}
	u, err := strconv.Atoi(f[1])
	if err != nil {
		return Update{}, false, fmt.Errorf("%w: %v", ErrBadUpdate, err)
	}
	v, err := strconv.Atoi(f[2])
	if err != nil {
		return Update{}, false, fmt.Errorf("%w: %v", ErrBadUpdate, err)
	}
	w := 0.0
	if op != OpDelete {
		w, err = strconv.ParseFloat(f[3], 64)
		if err != nil {
			return Update{}, false, fmt.Errorf("%w: %v", ErrBadUpdate, err)
		}
	}
	return Update{Op: op, U: u, V: v, W: w}, false, nil
}

// WriteEvents is the inverse of ParseEvents: it serializes batches with
// commit separators, so tools can round-trip recorded streams.
func WriteEvents(w io.Writer, batches [][]Update) error {
	bw := bufio.NewWriter(w)
	for i, batch := range batches {
		for _, u := range batch {
			var err error
			switch u.Op {
			case OpDelete:
				_, err = fmt.Fprintf(bw, "- %d %d\n", u.U, u.V)
			case OpInsert:
				_, err = fmt.Fprintf(bw, "+ %d %d %.17g\n", u.U, u.V, u.W)
			case OpReweight:
				_, err = fmt.Fprintf(bw, "= %d %d %.17g\n", u.U, u.V, u.W)
			default:
				err = fmt.Errorf("%w: op %v", ErrBadUpdate, u.Op)
			}
			if err != nil {
				return err
			}
		}
		if i < len(batches)-1 {
			if _, err := fmt.Fprintln(bw, "commit"); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}
