package dynamic_test

import (
	"context"
	"errors"
	"math"
	"testing"

	"graphspar/internal/core"
	"graphspar/internal/dynamic"
	"graphspar/internal/testkit"
	"graphspar/internal/vecmath"
)

// TestPropertyRandomStreamsKeepInvariant is the dynamic invariant suite:
// for every graph family and seed, a randomized stream of mixed update
// batches is pushed through the Maintainer, and after every accepted
// batch the independently verified condition number must stay within the
// requested σ². Batches that would disconnect the graph must be rejected
// with the typed error and leave the maintainer untouched.
func TestPropertyRandomStreamsKeepInvariant(t *testing.T) {
	const sigmaSq = 60
	for _, c := range testkit.Cases() {
		for _, seed := range []uint64{1, 2} {
			c, seed := c, seed
			t.Run(c.Name, func(t *testing.T) {
				g, err := c.Build(seed)
				if err != nil {
					t.Fatal(err)
				}
				m, err := dynamic.New(context.Background(), g, dynamic.Options{
					Sparsify: core.Options{SigmaSq: sigmaSq, Seed: seed},
				})
				if err != nil {
					t.Fatal(err)
				}
				testkit.AssertInvariant(t, m, sigmaSq)

				rng := vecmath.NewRNG(seed * 7919)
				var st testkit.StreamStats
				for i := 0; i < 8; i++ {
					size := 1 + rng.Intn(6)
					batch := testkit.RandomBatch(m.Graph(), rng, size)
					if len(batch) == 0 {
						continue
					}
					condBefore := m.Cond()
					err := m.Apply(context.Background(), batch)
					switch {
					case errors.Is(err, dynamic.ErrWouldDisconnect):
						st.Rejected++
						if m.Cond() != condBefore {
							t.Fatal("rejected batch must leave the maintainer unchanged")
						}
						continue
					case err != nil:
						t.Fatalf("batch %d: %v", i, err)
					}
					st.Applied++
					testkit.AssertInvariant(t, m, sigmaSq)
				}
				if st.Applied == 0 {
					t.Fatalf("stream applied nothing (%v); generator too hostile", st)
				}
				t.Logf("%s seed=%d: %v, stats=%+v", c.Name, seed, st, m.Stats())
			})
		}
	}
}

// TestPropertyTinyDriftBudgetStillKeepsInvariant forces the rebuild path
// to fire on (nearly) every batch and checks the invariant is maintained
// through rebuilds too — the deterministic forced-rebuild coverage on top
// of randomized streams.
func TestPropertyTinyDriftBudgetStillKeepsInvariant(t *testing.T) {
	const sigmaSq = 60
	c := testkit.Cases()[0] // grid
	g, err := c.Build(3)
	if err != nil {
		t.Fatal(err)
	}
	m, err := dynamic.New(context.Background(), g, dynamic.Options{
		Sparsify:      core.Options{SigmaSq: sigmaSq, Seed: 3},
		DriftFraction: 1e-12,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := vecmath.NewRNG(11)
	applied := 0
	for i := 0; i < 4; i++ {
		batch := testkit.RandomBatch(m.Graph(), rng, 2)
		err := m.Apply(context.Background(), batch)
		if errors.Is(err, dynamic.ErrWouldDisconnect) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		applied++
		testkit.AssertInvariant(t, m, sigmaSq)
	}
	if applied == 0 {
		t.Fatal("no batches applied")
	}
	if m.Stats().Rebuilds < applied {
		t.Fatalf("Rebuilds = %d, want ≥ %d (every perturbing batch must trip the tiny budget)",
			m.Stats().Rebuilds, applied)
	}
}

// TestEquivalenceWithFromScratchSparsify replays a long random stream and
// compares the maintained sparsifier against a from-scratch Sparsify of
// the final graph: both certificates must meet σ², and the incremental
// sparsifier must not be wildly denser than the scratch one (the
// incremental path trades a bounded amount of sparsity for speed).
func TestEquivalenceWithFromScratchSparsify(t *testing.T) {
	const sigmaSq = 60
	for _, c := range testkit.Cases() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			g, err := c.Build(5)
			if err != nil {
				t.Fatal(err)
			}
			m, err := dynamic.New(context.Background(), g, dynamic.Options{
				Sparsify: core.Options{SigmaSq: sigmaSq, Seed: 5},
			})
			if err != nil {
				t.Fatal(err)
			}
			rng := vecmath.NewRNG(1234)
			applied := 0
			for applied < 10 {
				batch := testkit.RandomBatch(m.Graph(), rng, 3)
				if len(batch) == 0 {
					break
				}
				err := m.Apply(context.Background(), batch)
				if errors.Is(err, dynamic.ErrWouldDisconnect) {
					continue
				}
				if err != nil {
					t.Fatal(err)
				}
				applied++
			}
			if applied < 10 {
				t.Fatalf("only %d batches applied", applied)
			}

			final := m.Graph()
			scratch, err := core.Sparsify(final, core.Options{SigmaSq: sigmaSq, Seed: 5})
			if err != nil && !errors.Is(err, core.ErrNoTarget) {
				t.Fatal(err)
			}

			condInc, err := testkit.VerifyCond(final, m.Sparsifier(), 777)
			if err != nil {
				t.Fatal(err)
			}
			condScratch, err := testkit.VerifyCond(final, scratch.Sparsifier, 777)
			if err != nil {
				t.Fatal(err)
			}
			if condInc > sigmaSq {
				t.Fatalf("incremental κ = %.2f exceeds σ² = %d", condInc, sigmaSq)
			}
			if condScratch > sigmaSq {
				t.Fatalf("scratch κ = %.2f exceeds σ² = %d (baseline broken)", condScratch, sigmaSq)
			}
			// Certificates agree up to estimator tolerance: both are ≤ σ²
			// and within a σ²-scale band of each other.
			if diff := math.Abs(condInc - condScratch); diff > sigmaSq {
				t.Fatalf("certificates diverge: incremental %.2f vs scratch %.2f", condInc, condScratch)
			}
			incM, scrM := m.Sparsifier().M(), scratch.Sparsifier.M()
			if float64(incM) > 2.5*float64(scrM) {
				t.Fatalf("incremental sparsifier too dense: %d edges vs scratch %d", incM, scrM)
			}
			t.Logf("%s: incremental κ=%.1f |E|=%d, scratch κ=%.1f |E|=%d",
				c.Name, condInc, incM, condScratch, scrM)
		})
	}
}
