package dynamic

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Binary event wire format (application/x-graphspar-events).
//
// A compact peer of the text wire in stream.go, negotiated by
// Content-Type on the service's stream endpoint. A stream is a flat
// sequence of records, each:
//
//	1 op byte   0x00 commit · 0x01 insert · 0x02 delete · 0x03 reweight
//	uvarint u   endpoint (absent for commit)
//	uvarint v   endpoint (absent for commit)
//	8 bytes     float64 weight, IEEE-754 bits little-endian
//	            (insert/reweight only; absent for delete)
//
// Varint endpoints keep typical records at 4–12 bytes versus ~20+ for
// the text spelling, and the fixed-width weight decodes without any
// float parsing. Semantics match the text format exactly: commit closes
// the current batch, updates after the last commit form a final
// implicit batch, and empty batches are dropped by consumers.
const BinaryContentType = "application/x-graphspar-events"

// Binary wire op bytes. Distinct from the Op enum so the wire encoding
// stays frozen even if the in-memory enum is ever reordered.
const (
	binOpCommit   = 0x00
	binOpInsert   = 0x01
	binOpDelete   = 0x02
	binOpReweight = 0x03
)

// binWireOp maps an in-memory Op to its wire byte.
func binWireOp(op Op) (byte, error) {
	switch op {
	case OpInsert:
		return binOpInsert, nil
	case OpDelete:
		return binOpDelete, nil
	case OpReweight:
		return binOpReweight, nil
	default:
		return 0, fmt.Errorf("%w: op %v", ErrBadUpdate, op)
	}
}

// AppendBinaryUpdate appends one update record to dst and returns the
// extended slice. It is allocation-free beyond dst growth, so encoders
// (loadgen, sparsify -remote) can reuse one buffer per batch. Negative
// endpoints cannot be represented and are rejected; they would be
// rejected by validation on apply anyway.
func AppendBinaryUpdate(dst []byte, u Update) ([]byte, error) {
	op, err := binWireOp(u.Op)
	if err != nil {
		return dst, err
	}
	if u.U < 0 || u.V < 0 {
		return dst, fmt.Errorf("%w: negative endpoint (%d,%d)", ErrBadUpdate, u.U, u.V)
	}
	dst = append(dst, op)
	dst = binary.AppendUvarint(dst, uint64(u.U))
	dst = binary.AppendUvarint(dst, uint64(u.V))
	if u.Op != OpDelete {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(u.W))
	}
	return dst, nil
}

// AppendBinaryCommit appends a batch-boundary record to dst.
func AppendBinaryCommit(dst []byte) []byte {
	return append(dst, binOpCommit)
}

// BinaryReader incrementally decodes a binary event stream. Next is
// allocation-free on the happy path: varints come off the bufio.Reader
// byte by byte and the weight through a fixed scratch array.
type BinaryReader struct {
	br      *bufio.Reader
	scratch [8]byte
	records int
}

// NewBinaryReader wraps r for record-at-a-time decoding.
func NewBinaryReader(r io.Reader) *BinaryReader {
	return &BinaryReader{br: bufio.NewReader(r)}
}

// Records reports how many records (updates and commits) have been
// decoded so far — the binary analogue of a line number for errors.
func (d *BinaryReader) Records() int { return d.records }

// Next decodes the next record. It returns (update, false, nil) for an
// update, (zero, true, nil) for a commit, and io.EOF exactly at a clean
// end of stream; a stream truncated mid-record is an ErrBadUpdate.
func (d *BinaryReader) Next() (Update, bool, error) {
	op, err := d.br.ReadByte()
	if err != nil {
		if err == io.EOF {
			return Update{}, false, io.EOF
		}
		return Update{}, false, err
	}
	d.records++
	if op == binOpCommit {
		return Update{}, true, nil
	}
	var u Update
	switch op {
	case binOpInsert:
		u.Op = OpInsert
	case binOpDelete:
		u.Op = OpDelete
	case binOpReweight:
		u.Op = OpReweight
	default:
		return Update{}, false, fmt.Errorf("%w: record %d: unknown op byte 0x%02x", ErrBadUpdate, d.records, op)
	}
	if u.U, err = d.readVertex(); err != nil {
		return Update{}, false, err
	}
	if u.V, err = d.readVertex(); err != nil {
		return Update{}, false, err
	}
	if u.Op != OpDelete {
		if _, err := io.ReadFull(d.br, d.scratch[:]); err != nil {
			return Update{}, false, d.truncated(err)
		}
		u.W = math.Float64frombits(binary.LittleEndian.Uint64(d.scratch[:]))
	}
	return u, false, nil
}

func (d *BinaryReader) readVertex() (int, error) {
	x, err := binary.ReadUvarint(d.br)
	if err != nil {
		return 0, d.truncated(err)
	}
	if x > uint64(math.MaxInt32) {
		return 0, fmt.Errorf("%w: record %d: vertex %d out of range", ErrBadUpdate, d.records, x)
	}
	return int(x), nil
}

// truncated converts an EOF inside a record into a diagnosable
// ErrBadUpdate; other reader errors pass through.
func (d *BinaryReader) truncated(err error) error {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return fmt.Errorf("%w: record %d: truncated record", ErrBadUpdate, d.records)
	}
	return err
}

// ReadBinaryEvents decodes a whole binary stream into update batches,
// the binary analogue of ParseEvents (same batching semantics).
func ReadBinaryEvents(r io.Reader) ([][]Update, error) {
	d := NewBinaryReader(r)
	var (
		batches [][]Update
		cur     []Update
	)
	for {
		u, commit, err := d.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if commit {
			if len(cur) > 0 {
				batches = append(batches, cur)
				cur = nil
			}
			continue
		}
		cur = append(cur, u)
	}
	if len(cur) > 0 {
		batches = append(batches, cur)
	}
	return batches, nil
}

// WriteBinaryEvents serializes batches in the binary wire format with
// commit separators, the inverse of ReadBinaryEvents. Like WriteEvents
// it leaves the final batch implicit (no trailing commit).
func WriteBinaryEvents(w io.Writer, batches [][]Update) error {
	var buf []byte
	for i, batch := range batches {
		buf = buf[:0]
		var err error
		for _, u := range batch {
			if buf, err = AppendBinaryUpdate(buf, u); err != nil {
				return err
			}
		}
		if i < len(batches)-1 {
			buf = AppendBinaryCommit(buf)
		}
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}
