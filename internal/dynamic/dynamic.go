// Package dynamic maintains a similarity-aware spectral sparsifier under
// edge insertions, deletions and reweights without re-running the full
// pipeline per mutation. The edge-filtering view of sparsification makes
// this natural: a small batch of updates perturbs only a few effective
// resistances, so the existing Joule-heat embedding stays approximately
// valid and candidates can be re-scored against the thresholds of the
// last full filter pass (spectral perturbation re-ranking in the spirit
// of GRASS, Feng arXiv:1911.04382). The Maintainer
//
//   - admits inserted edges by scoring them with the retained probe
//     vectors (core.EdgeScorer) against the last similarity threshold,
//   - repairs the spanning-tree backbone when a tree edge is deleted
//     (heaviest crossing edge, lsst.FindReplacement),
//   - refreshes the embedding with one warm-started power step instead
//     of a fresh r·t-solve embedding — run lazily, the moment an
//     admission decision next consults the heats, so delete/reweight-only
//     batches (the switching-sequence regime) skip the probe solves
//     entirely,
//   - refactors the sparsifier only when its edge set actually changed,
//     reusing the fill-reducing elimination order of the last full build
//     (ordering dominates factorization cost at sparsifier densities),
//   - re-verifies κ(L_G, L_P) after every batch and runs localized
//     re-filter rounds (re-score candidates, admit the hottest) when the
//     certificate drifts toward the target, and
//   - tracks a cumulative churn estimate that forces a full rebuild
//     (core.SparsifyCtx, or internal/engine when configured for
//     sharding) once the drift budget is spent and the stored embedding
//     can no longer be trusted to re-rank candidates.
//
// The invariant after every successful Apply: the sparsifier is a
// connected subgraph of the current graph whose independently verified
// condition number is at most the configured σ² (up to estimator noise;
// see Options.RefilterFraction for the safety margin).
package dynamic

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"graphspar/internal/cholesky"
	"graphspar/internal/core"
	"graphspar/internal/engine"
	"graphspar/internal/graph"
	"graphspar/internal/lsst"
	"graphspar/internal/obs"
	"graphspar/internal/params"
	"graphspar/internal/partition"
	"graphspar/internal/tree"
	"graphspar/internal/vecmath"
)

// Options configures a Maintainer.
type Options struct {
	// Sparsify carries the similarity target and embedding knobs; SigmaSq
	// is required, the rest default as in core.Sparsify.
	Sparsify core.Options
	// RefilterRounds caps the localized re-filter rounds run per Apply
	// when the verified κ exceeds RefilterFraction·σ². Default 4.
	RefilterRounds int
	// RefilterFraction sets the safety margin: re-filtering starts once
	// κ > RefilterFraction·σ², keeping headroom for estimator noise so
	// the true condition number stays under σ². Default 0.9.
	RefilterFraction float64
	// DriftFraction bounds embedding staleness: a full rebuild is forced
	// once the cumulative churn — inserted/deleted edges count 1 each,
	// reweights their relative weight change — exceeds DriftFraction of
	// the edge count at the last full build. Spectral emergencies are
	// caught separately (the certificate is re-verified every batch and
	// re-filtering falls back to a rebuild), so this only has to decide
	// when the retained probe vectors have seen too much change to keep
	// re-scoring against. Default 0.25.
	DriftFraction float64
	// VerifySteps is the generalized-Lanczos depth of the per-batch
	// certificate check. The extremes settle fast on sparsifier spectra,
	// so the per-batch check can be shallower than an offline audit; the
	// RefilterFraction safety margin absorbs the residual underestimate.
	// Default min(12, n).
	VerifySteps int
	// BatchVerifyThreshold batches certificate re-verification across the
	// re-filter rounds of large update batches: when one Apply carries at
	// least this many updates, the settle pass admits candidates for all
	// its re-filter rounds back-to-back and runs a single refactorization
	// plus Lanczos verify at the end, instead of one per round. The
	// similarity threshold θσ is frozen for the pass (λ estimates only
	// move on verification), so the admission order is identical — large
	// batches trade a slightly denser sparsifier (no early stop between
	// rounds) for roughly half the certificate-restoration cost. Default
	// 64; negative disables batching so every round re-verifies.
	BatchVerifyThreshold int
	// RebuildShards > 1 routes full rebuilds through the shard-parallel
	// engine (for large graphs); 0/1 uses single-shot core.SparsifyCtx.
	RebuildShards int
	// RebuildWorkers bounds engine concurrency during sharded rebuilds
	// (0 = all cores).
	RebuildWorkers int
	// RebuildPartition configures the engine's bisector for sharded
	// rebuilds (nil = the engine's BFS default). Ignored unless
	// RebuildShards > 1.
	RebuildPartition *partition.Options
	// FactorUpdateBudget caps how many rank-1 Cholesky update/downdates
	// may be folded into the sparsifier factor between full numeric
	// refactorizations. Each sparsifier edge change is a rank-1
	// perturbation of the reduced Laplacian, applied along one elimination-
	// tree path in O(path fill) instead of refactoring the whole matrix;
	// the budget bounds accumulated rounding before the next exact
	// factorization re-anchors the numerics. 0 picks the default (256);
	// negative disables incremental factor updates entirely, so every
	// materialization refactors as before.
	FactorUpdateBudget int
	// LocalRefreshRadius > 0 replaces the full O(r·m) warm power step of
	// the deferred embedding refresh with a ball-local Dirichlet relaxation
	// confined to the radius-hop neighborhood of the vertices touched since
	// the last refresh (heats far from a perturbation barely move — the
	// localized-perturbation view of GRASS). Staleness left outside the
	// ball is charged against the drift budget so the rebuild trigger stays
	// sound. 0 (the default) keeps the full warm step.
	LocalRefreshRadius int
	// LocalRefreshSweeps is the Gauss–Seidel sweep count of the ball-local
	// refresh. Default 3.
	LocalRefreshSweeps int
}

func (o *Options) defaults(n int) error {
	if err := params.Sigma2(o.Sparsify.SigmaSq); err != nil {
		return err
	}
	if o.RefilterRounds <= 0 {
		o.RefilterRounds = 4
	}
	if o.RefilterFraction <= 0 || o.RefilterFraction > 1 {
		o.RefilterFraction = 0.9
	}
	if o.DriftFraction <= 0 {
		o.DriftFraction = 0.25
	}
	if o.VerifySteps <= 0 {
		o.VerifySteps = 12
	}
	if o.VerifySteps > n {
		o.VerifySteps = n
	}
	if o.VerifySteps < 2 {
		o.VerifySteps = 2
	}
	if o.BatchVerifyThreshold == 0 {
		o.BatchVerifyThreshold = 64
	}
	if o.FactorUpdateBudget == 0 {
		o.FactorUpdateBudget = 256
	}
	if o.LocalRefreshSweeps <= 0 {
		o.LocalRefreshSweeps = 3
	}
	if o.Sparsify.Seed == 0 {
		o.Sparsify.Seed = 1
	}
	return nil
}

// Stats counts the maintainer's work since construction.
type Stats struct {
	Applies         int     `json:"applies"`
	Updates         int     `json:"updates"`
	InsertsAdmitted int     `json:"inserts_admitted"`
	TreeRepairs     int     `json:"tree_repairs"`
	Refilters       int     `json:"refilter_rounds"`
	Rebuilds        int     `json:"rebuilds"`
	Verifies        int     `json:"verifies"`
	BatchedSettles  int     `json:"batched_settles"`
	EmbedRefreshes  int     `json:"embed_refreshes"`
	FactorUpdates   int     `json:"factor_updates"`
	FactorDowndates int     `json:"factor_downdates"`
	FactorRebuilds  int     `json:"factor_rebuilds"`
	LocalSteps      int     `json:"local_steps"`
	WarmStart       bool    `json:"warm_start"`
	Cond            float64 `json:"condition_number"`
	Drift           float64 `json:"drift"`
	DriftBudget     float64 `json:"drift_budget"`
	TargetMet       bool    `json:"target_met"`
}

// Maintainer holds a graph together with its live sparsifier and applies
// batched edge updates incrementally. Not safe for concurrent use.
type Maintainer struct {
	opt Options

	g        *graph.Graph
	p        *graph.Graph       // materialized sparsifier, kept in sync with pW
	pW       map[[2]int]float64 // sparsifier edges; weights mirror g
	treeKey  map[[2]int]bool    // backbone subset of pW
	backbone *tree.Tree
	solver   *cholesky.LapSolver

	// perm/nnzAtOrder cache the fill-reducing elimination order computed
	// at the last full ordering; incremental refactorizations reuse it
	// until fill creep (factor nnz past fillLimit× the original) forces a
	// fresh minimum-degree pass.
	perm       []int
	nnzAtOrder int

	// updatesSinceFactor counts rank-1 updates folded into the current
	// factor; refreshFactor refactors once it would pass FactorUpdateBudget.
	updatesSinceFactor int

	scorer *core.EdgeScorer
	// embedStale records committed batches not yet folded into the probe
	// vectors; freshenEmbedding runs the deferred warm power step right
	// before the embedding is next consulted.
	embedStale bool
	// touched/staleChurn describe the batches deferred since the last
	// embedding refresh: the vertices their updates perturbed (the seed set
	// of the ball-local refresh) and their accumulated churn (the drift
	// surcharge a local refresh pays for leaving the far field stale).
	touched    map[int]bool
	staleChurn float64
	maxHeat    float64 // heat normalizer of the last full filter pass
	theta      float64 // similarity threshold of the last full filter pass

	lmax, lmin, cond float64
	condAtBuild      float64
	drift            float64 // cumulative churn since the last full build
	mAtBuild         int     // edge count at the last full build
	targetMet        bool

	rng   *vecmath.RNG
	stats Stats
}

// fillLimit triggers a fresh elimination ordering once the reused order's
// factor grows past this multiple of the originally ordered factor.
const fillLimit = 4

// localDriftCarry is the fraction of the deferred churn a ball-local
// embedding refresh charges against the drift budget: the ball absorbs the
// near-field perturbation but the far field stays stale, so local refreshes
// must age the embedding faster than full steps (which charge nothing
// beyond the churn itself).
const localDriftCarry = 0.5

// edgeDelta is one sparsifier weight change staged for the factor: dw is
// the signed difference against the pre-commit weight (full weight for an
// insertion, negated weight for a deletion).
type edgeDelta struct {
	u, v int
	dw   float64
}

// New sparsifies g from scratch and returns a Maintainer tracking it.
func New(ctx context.Context, g *graph.Graph, opt Options) (*Maintainer, error) {
	if err := g.RequireConnected(); err != nil {
		return nil, err
	}
	if err := opt.defaults(g.N()); err != nil {
		return nil, err
	}
	m := &Maintainer{opt: opt, g: g, rng: vecmath.NewRNG(opt.Sparsify.Seed ^ 0xdf1a7)}
	if err := m.rebuild(ctx); err != nil {
		return nil, err
	}
	return m, nil
}

// Resume warm-starts a Maintainer from an existing sparsifier (typically a
// prior job's output for an earlier version of the graph). The warm edges
// are reconciled against g — edges g no longer has are dropped, weights
// are refreshed, and connectivity is restored heaviest-first — then the
// certificate is re-established with re-filter rounds, falling back to a
// full rebuild only if the warm start cannot reach the target. Much
// cheaper than New when warm is a sparsifier of a nearby graph.
func Resume(ctx context.Context, g *graph.Graph, warm *graph.Graph, opt Options) (*Maintainer, error) {
	if err := g.RequireConnected(); err != nil {
		return nil, err
	}
	if err := opt.defaults(g.N()); err != nil {
		return nil, err
	}
	if warm == nil || warm.N() != g.N() {
		return nil, fmt.Errorf("%w: warm sparsifier must cover the same vertex set", ErrBadUpdate)
	}
	m := &Maintainer{opt: opt, g: g, rng: vecmath.NewRNG(opt.Sparsify.Seed ^ 0xdf1a7)}

	// Reconcile: keep warm edges that still exist in g, at g's weights.
	cur := make(map[[2]int]float64, g.M())
	for _, e := range g.Edges() {
		cur[[2]int{e.U, e.V}] = e.W
	}
	m.pW = make(map[[2]int]float64, warm.M())
	for _, e := range warm.Edges() {
		k := [2]int{e.U, e.V}
		if w, ok := cur[k]; ok {
			m.pW[k] = w
		}
	}
	// Restore spanning connectivity heaviest-first from g's edges.
	uf := lsst.NewUnionFind(g.N())
	//graphspar:nondeterministic-ok union-find connectivity is a set property: the final components are the same whatever order the unions run in
	for k := range m.pW {
		uf.Union(k[0], k[1])
	}
	if !reconnectHeaviest(g, uf, func(e graph.Edge) {
		m.pW[[2]int{e.U, e.V}] = e.W
	}) {
		return nil, fmt.Errorf("dynamic: warm-start reconnect failed: %w", graph.ErrDisconnected)
	}
	if err := m.materialize(nil); err != nil {
		return nil, err
	}
	if err := m.adoptBackboneFromSparsifier(); err != nil {
		return nil, err
	}
	if err := m.refreshScorerAndCertificate(ctx, true); err != nil {
		return nil, err
	}
	m.stats.WarmStart = true
	if err := m.settle(ctx, false); err != nil {
		return nil, err
	}
	// Record filter thresholds so subsequent insert admissions score
	// against this warm pass rather than admitting unconditionally.
	m.recordThresholds(ctx)
	m.condAtBuild = m.cond
	m.drift = 0
	m.mAtBuild = g.M()
	return m, nil
}

// reconnectHeaviest grows the union-find to a single component by adding
// the heaviest available graph edges, invoking add for each one taken.
// Returns false if g itself cannot connect the components. Shared by the
// warm-start reconcile and the multi-removal backbone repair sweep.
func reconnectHeaviest(g *graph.Graph, uf *lsst.UnionFind, add func(graph.Edge)) bool {
	if uf.Count() == 1 {
		return true
	}
	ids := make([]int, g.M())
	for i := range ids {
		ids[i] = i
	}
	sort.Slice(ids, func(a, b int) bool { return g.Edge(ids[a]).W > g.Edge(ids[b]).W })
	for _, id := range ids {
		e := g.Edge(id)
		if uf.Union(e.U, e.V) {
			add(e)
			if uf.Count() == 1 {
				return true
			}
		}
	}
	return false
}

// recordThresholds captures the similarity threshold and heat normalizer
// of the current (just-settled) state for future insert admission.
func (m *Maintainer) recordThresholds(ctx context.Context) {
	m.freshenEmbedding(ctx) // the heat normalizer reads the embedding
	t, _, _, _ := m.opt.Sparsify.EffectiveEmbed(m.g.N())
	m.theta = core.Threshold(m.opt.Sparsify.SigmaSq, m.lmin, m.lmax, t)
	if cands := m.offTreeCandidates(); len(cands) > 0 {
		_, m.maxHeat = m.scorer.Score(m.g, cands)
	} else {
		m.maxHeat = 0
	}
}

// Graph returns the current graph.
func (m *Maintainer) Graph() *graph.Graph { return m.g }

// Sparsifier returns the current sparsifier. Callers must not mutate it;
// it stays live until the next Apply replaces it.
func (m *Maintainer) Sparsifier() *graph.Graph { return m.p }

// Backbone returns the current spanning-tree backbone.
func (m *Maintainer) Backbone() *tree.Tree { return m.backbone }

// Cond returns the latest independently verified condition number
// κ(L_G, L_P).
func (m *Maintainer) Cond() float64 { return m.cond }

// TargetMet reports whether the latest certificate meets σ².
func (m *Maintainer) TargetMet() bool { return m.targetMet }

// Stats snapshots the work counters.
func (m *Maintainer) Stats() Stats {
	s := m.stats
	s.Cond = m.cond
	s.Drift = m.drift
	s.DriftBudget = m.driftBudget()
	s.TargetMet = m.targetMet
	return s
}

// driftBudget is the churn the embedding may absorb before a rebuild:
// DriftFraction of the edge count at the last full build.
func (m *Maintainer) driftBudget() float64 {
	return m.opt.DriftFraction * float64(m.mAtBuild)
}

// ResidentBytes estimates the heap the maintainer keeps resident between
// applies: both graphs' edge lists and adjacency indexes, the sparsifier's
// edge-map mirror and tree bookkeeping, the Cholesky factor, and the
// retained probe embedding. It is an accounting estimate sized from
// n/m/probe counts — session managers budget memory with it — not a
// precise measurement.
func (m *Maintainer) ResidentBytes() int64 {
	graphBytes := func(g *graph.Graph) int64 {
		if g == nil {
			return 0
		}
		// Edge list (24 B/edge) plus the CSR adjacency (two int arrays per
		// directed arc, one pointer array).
		return int64(g.M())*(24+32) + int64(g.N()+1)*8
	}
	b := graphBytes(m.g) + graphBytes(m.p)
	b += int64(len(m.pW)) * 64 // map entry: key pair + weight + bucket overhead
	b += int64(len(m.treeKey)) * 48
	if m.solver != nil {
		b += int64(m.solver.FactorNNZ())*16 + int64(m.g.N())*24
	}
	if m.scorer != nil {
		b += int64(len(m.scorer.Probes)) * int64(m.g.N()) * 8
	}
	if m.backbone != nil {
		b += int64(m.g.N()) * 40 // parent/weight/order arrays of the rooted tree
	}
	return b
}

// Apply validates and applies one batch of updates atomically: a
// validation or connectivity error rejects the whole batch with the
// maintainer unchanged. On success the sparsifier has been maintained
// incrementally (or rebuilt, if the drift budget was spent or
// re-filtering could not restore the certificate) and the certificate
// has been re-verified; TargetMet reports false in the rare case where
// even a full rebuild cannot certify σ² (mirroring core.Sparsify's
// best-effort ErrNoTarget semantics). An internal failure after the
// commit point (factorization, Lanczos) can leave the maintainer with a
// mutated graph but stale solver state; call Rebuild to recover.
func (m *Maintainer) Apply(ctx context.Context, batch []Update) error {
	if len(batch) == 0 {
		return nil
	}
	g2, err := ApplyToGraph(m.g, batch)
	if err != nil {
		return err
	}

	// Stage sparsifier edits as deltas; nothing on m mutates until the
	// whole batch (including tree repair) is known to succeed.
	pSet := make(map[[2]int]float64, len(batch))
	pDel := make(map[[2]int]bool, len(batch))
	treeAdd := make(map[[2]int]bool, 2)
	churn := 0.0
	treeChanged := false
	var deletedTree [][2]int
	inserts := make([][2]int, 0, 4)
	for _, u := range batch {
		k := u.key()
		switch u.Op {
		case OpInsert:
			churn++
			inserts = append(inserts, k)
		case OpDelete:
			churn++
			if m.treeKey[k] {
				deletedTree = append(deletedTree, k)
				treeChanged = true
			}
			if _, ok := m.pW[k]; ok {
				pDel[k] = true
			}
		case OpReweight:
			// Reweights churn by their relative weight change, so trimming
			// a weight by 1% does not age the embedding like a topology
			// change would.
			if e, ok := lookupEdge(m.g, k); ok {
				den := math.Max(e.W, u.W)
				if den > 0 {
					churn += math.Min(1, math.Abs(u.W-e.W)/den)
				}
			}
			if _, ok := m.pW[k]; ok {
				pSet[k] = u.W
				if m.treeKey[k] {
					treeChanged = true // parent weights feed the O(n) solver
				}
			}
		}
	}

	// Repair the backbone for every deleted tree edge: reconnect the two
	// forest components with the heaviest crossing edge of the new graph.
	if len(deletedTree) > 0 {
		if err := m.repairTree(g2, deletedTree, pDel, pSet, treeAdd); err != nil {
			return err
		}
	}

	// Score inserts against the thresholds of the last full filter pass;
	// hot edges join the sparsifier immediately, cold ones stay out until
	// a re-filter or rebuild reconsiders them. Fold any deferred batches
	// into the embedding first — at this point the graph and solver are
	// still the post-previous-commit state, so the lazy step lands exactly
	// where the eager per-batch step used to.
	if len(inserts) > 0 {
		m.freshenEmbedding(ctx)
	}
	admitted := 0
	for _, k := range inserts {
		w := 0.0
		if e, ok := lookupEdge(g2, k); ok {
			w = e.W
		}
		heat := m.scorer.Heat(graph.Edge{U: k[0], V: k[1], W: w})
		if m.maxHeat <= 0 || heat/m.maxHeat >= m.theta {
			pSet[k] = w
			admitted++
		}
	}

	// Express the staged sparsifier edits as signed weight deltas against
	// the pre-commit state: these are exactly the rank-1 perturbations the
	// factor needs. Sorted so the update sequence — and with it the
	// floating-point state of the factor — is identical run to run.
	deltas := make([]edgeDelta, 0, len(pDel)+len(pSet))
	for k := range pDel {
		deltas = append(deltas, edgeDelta{k[0], k[1], -m.pW[k]})
	}
	for k, w := range pSet {
		if old := m.pW[k]; w != old {
			deltas = append(deltas, edgeDelta{k[0], k[1], w - old})
		}
	}
	sort.Slice(deltas, func(a, b int) bool {
		if deltas[a].u != deltas[b].u {
			return deltas[a].u < deltas[b].u
		}
		return deltas[a].v < deltas[b].v
	})

	// Commit. From here only internal failures (factorization, Lanczos)
	// can error, and those leave the maintainer in a state Rebuild fixes.
	m.g = g2
	for k := range pDel {
		delete(m.pW, k)
	}
	for k, w := range pSet {
		m.pW[k] = w
	}
	for _, k := range deletedTree {
		delete(m.treeKey, k)
	}
	for k := range treeAdd {
		m.treeKey[k] = true
	}
	m.drift += churn
	m.staleChurn += churn
	for _, u := range batch {
		m.touch(u.U, u.V)
	}
	for _, d := range deltas {
		m.touch(d.u, d.v)
	}
	m.stats.Applies++
	m.stats.Updates += len(batch)
	m.stats.InsertsAdmitted += admitted
	m.stats.TreeRepairs += len(deletedTree)

	// Spent drift budget means the stored embedding is stale beyond
	// trust: rebuild from scratch rather than refreshing solver, scorer
	// and certificate only for the rebuild to redo all three.
	if m.drift > m.driftBudget() {
		return m.forceRebuild(ctx)
	}

	if treeChanged {
		if err := m.rebuildBackbone(); err != nil {
			return err
		}
	}
	if len(pDel) > 0 || len(pSet) > 0 {
		// Re-materialize; the factor absorbs the deltas as rank-1
		// update/downdates when it can, refactors otherwise.
		if err := m.materialize(deltas); err != nil {
			return err
		}
	}
	if err := m.refreshScorerAndCertificate(ctx, false); err != nil {
		return err
	}
	batched := m.opt.BatchVerifyThreshold > 0 && len(batch) >= m.opt.BatchVerifyThreshold
	return m.settle(ctx, batched)
}

// Rebuild discards all incremental state and re-sparsifies from scratch.
func (m *Maintainer) Rebuild(ctx context.Context) error {
	return m.forceRebuild(ctx)
}

func (m *Maintainer) forceRebuild(ctx context.Context) error {
	if err := m.rebuild(ctx); err != nil {
		return err
	}
	m.stats.Rebuilds++
	return nil
}

// settle re-filters while the verified certificate exceeds the safety
// margin, and falls back to a full rebuild when the rounds are exhausted
// with the target still unmet. batched selects the one-verify-per-pass
// re-filter mode for large update batches.
func (m *Maintainer) settle(ctx context.Context, batched bool) error {
	defer obs.StartSpan(ctx, "settle").End()
	if err := m.refilter(ctx, batched); err != nil {
		return err
	}
	if m.cond > m.opt.Sparsify.SigmaSq {
		return m.forceRebuild(ctx)
	}
	return nil
}

// refilter runs localized re-filter rounds: re-score the current off-tree
// candidates with the retained embedding, admit the hottest ones past the
// similarity threshold, re-verify, repeat while κ exceeds the safety
// margin (up to RefilterRounds). In batched mode the refactorization and
// Lanczos re-verification are deferred until all admission rounds have
// run, so one certificate check covers the whole pass (the large-batch
// regime: verification dominates the per-round cost, and θσ would not
// move between rounds anyway without fresh λ estimates).
func (m *Maintainer) refilter(ctx context.Context, batched bool) error {
	defer obs.StartSpan(ctx, "refilter").End()
	safety := m.opt.RefilterFraction * m.opt.Sparsify.SigmaSq
	if m.cond <= safety {
		return nil
	}
	if batched {
		m.stats.BatchedSettles++
	}
	// Re-filter scoring consults the embedding: fold deferred batches in.
	m.freshenEmbedding(ctx)
	dirty := false // admissions not yet folded into the solver + certificate
	var pending []edgeDelta
	t, _, _, batchFraction := m.opt.Sparsify.EffectiveEmbed(m.g.N())
	for round := 0; round < m.opt.RefilterRounds && m.cond > safety; round++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		candIDs := m.offTreeCandidates()
		if len(candIDs) == 0 {
			break
		}
		heats, maxHeat := m.scorer.Score(m.g, candIDs)
		if maxHeat <= 0 {
			break
		}
		theta := core.Threshold(m.opt.Sparsify.SigmaSq, m.lmin, m.lmax, t)
		type cand struct {
			id   int
			heat float64
		}
		var passing []cand
		for i, h := range heats {
			if h/maxHeat >= theta {
				passing = append(passing, cand{candIDs[i], h})
			}
		}
		sort.Slice(passing, func(a, b int) bool { return passing[a].heat > passing[b].heat })
		limit := int(math.Ceil(batchFraction * float64(len(passing))))
		if limit < 1 {
			limit = 1
		}
		claimed := make(map[int]bool)
		added := 0
		for _, c := range passing {
			if added >= limit {
				break
			}
			e := m.g.Edge(c.id)
			if claimed[e.U] || claimed[e.V] {
				continue
			}
			claimed[e.U], claimed[e.V] = true, true
			m.pW[[2]int{e.U, e.V}] = e.W
			pending = append(pending, edgeDelta{e.U, e.V, e.W})
			m.touch(e.U, e.V)
			added++
		}
		if added == 0 {
			// Nothing passed the filter (passing is empty — a non-empty
			// list always admits its hottest entry): fall through to the
			// hottest edge overall to guarantee progress (estimator noise
			// guard).
			best, bestHeat := -1, -1.0
			for i, h := range heats {
				if h > bestHeat {
					best, bestHeat = candIDs[i], h
				}
			}
			if best < 0 {
				break
			}
			e := m.g.Edge(best)
			m.pW[[2]int{e.U, e.V}] = e.W
			pending = append(pending, edgeDelta{e.U, e.V, e.W})
			m.touch(e.U, e.V)
		}
		// Remember the pass's thresholds for future insert admission.
		m.theta, m.maxHeat = theta, maxHeat
		m.stats.Refilters++
		if batched && round < m.opt.RefilterRounds-1 {
			// Defer the refactorization and the Lanczos check: one
			// certificate verification covers the whole admission pass.
			dirty = true
			continue
		}
		if err := m.materialize(pending); err != nil {
			return err
		}
		pending = pending[:0]
		if err := m.verifyCertificate(ctx); err != nil {
			return err
		}
		dirty = false
	}
	if dirty {
		// Batched pass ended on a deferred round (candidates ran out, or
		// the final round was skipped by the loop bound): fold the staged
		// admissions in and verify once.
		if err := m.materialize(pending); err != nil {
			return err
		}
		if err := m.verifyCertificate(ctx); err != nil {
			return err
		}
	}
	return nil
}

// offTreeCandidates lists the edge ids of m.g that are not yet in the
// sparsifier.
func (m *Maintainer) offTreeCandidates() []int {
	out := make([]int, 0, m.g.M()-len(m.pW))
	for id, e := range m.g.Edges() {
		if _, ok := m.pW[[2]int{e.U, e.V}]; !ok {
			out = append(out, id)
		}
	}
	return out
}

// rebuildBackbone reconstructs the rooted tree object from the current
// treeKey set, keeping the previous root.
func (m *Maintainer) rebuildBackbone() error {
	edges := make([]graph.Edge, 0, len(m.treeKey))
	//graphspar:nondeterministic-ok tree.Build canonicalizes through graph.New, which sorts and merges the edge list before any traversal
	for k := range m.treeKey {
		w, ok := m.pW[k]
		if !ok {
			return fmt.Errorf("dynamic: tree edge (%d,%d) missing from sparsifier", k[0], k[1])
		}
		edges = append(edges, graph.Edge{U: k[0], V: k[1], W: w})
	}
	root := 0
	if m.backbone != nil {
		root = m.backbone.Root()
	}
	t, err := tree.Build(m.g.N(), edges, root)
	if err != nil {
		return fmt.Errorf("dynamic: backbone rebuild: %w", err)
	}
	m.backbone = t
	return nil
}

// adoptBackboneFromSparsifier derives a fresh max-weight backbone from the
// current sparsifier (used by Resume and engine-sharded rebuilds, where no
// tree comes with the sparsifier).
func (m *Maintainer) adoptBackboneFromSparsifier() error {
	backbone, treeIDs, _, err := lsst.Extract(m.p, lsst.MaxWeight, m.opt.Sparsify.Seed)
	if err != nil {
		return err
	}
	m.backbone = backbone
	m.treeKey = make(map[[2]int]bool, len(treeIDs))
	for _, id := range treeIDs {
		e := m.p.Edge(id)
		m.treeKey[[2]int{e.U, e.V}] = true
	}
	return nil
}

// materialize rebuilds m.p from the edge-weight map and brings the solver
// in sync: deltas describing the change are folded into the factor as
// rank-1 update/downdates when possible, with a full refactorization as
// the fallback. Passing nil deltas (unknown change) always refactors.
func (m *Maintainer) materialize(deltas []edgeDelta) error {
	p, err := edgesFromMap(m.g.N(), m.pW)
	if err != nil {
		return err
	}
	m.p = p
	return m.refreshFactor(deltas)
}

// refreshFactor folds the staged sparsifier deltas into the existing
// factor via O(path fill) rank-1 update/downdates. It falls back to a full
// refactorization when incremental updates are disabled or budget-
// exhausted, when an inserted edge's endpoints fall outside the factor
// pattern (fill would be needed), or when a downdate turns numerically
// singular — in every fallback the factor is rebuilt from m.p, so a
// partially applied delta list is harmless.
func (m *Maintainer) refreshFactor(deltas []edgeDelta) error {
	if m.solver == nil || m.opt.FactorUpdateBudget < 0 || deltas == nil {
		return m.refactor()
	}
	if len(deltas) == 0 {
		return nil // weights identical; the factor already matches
	}
	if m.updatesSinceFactor+len(deltas) > m.opt.FactorUpdateBudget {
		return m.refactor()
	}
	for _, d := range deltas {
		if err := m.solver.ApplyEdge(d.u, d.v, d.dw); err != nil {
			return m.refactor()
		}
		m.updatesSinceFactor++
		if d.dw > 0 {
			m.stats.FactorUpdates++
		} else {
			m.stats.FactorDowndates++
		}
	}
	return nil
}

// refactor numerically factors the current sparsifier exactly once: the
// cached elimination order is first checked symbolically (etree column
// counts only), so a stale order whose fill crept past fillLimit costs one
// numeric factorization under a fresh order — not the old
// factor-then-discard-then-refactor double pass. Fresh orders are picked
// by sparsifier shape: near-tree sparsifiers get centroid nested
// dissection, whose O(log n)-height elimination trees keep ApplyEdge's
// update walks short; denser ones get minimum degree — with many off-tree
// edges the ND fill (and with it both factorization and update-path cost)
// explodes, while min-degree stays near-optimal and its deeper etree
// paths remain cheap because the columns stay short.
func (m *Maintainer) refactor() error {
	m.updatesSinceFactor = 0
	m.stats.FactorRebuilds++
	ws := m.opt.Sparsify.Workspace.Chol()
	if m.perm != nil && len(m.perm) == m.p.N()-1 && m.nnzAtOrder > 0 {
		if nnz, err := cholesky.SymbolicFactorNNZ(m.p, m.perm); err == nil && nnz <= fillLimit*m.nnzAtOrder {
			solver, err := cholesky.NewLapSolverOrderedWS(m.p, m.perm, ws)
			if err == nil {
				m.solver = solver
				return nil
			}
		}
	}
	var (
		solver *cholesky.LapSolver
		err    error
	)
	if offTree := m.p.M() - (m.p.N() - 1); offTree*32 <= m.p.N() {
		solver, err = cholesky.NewLapSolverND(m.p)
	} else {
		solver, err = cholesky.NewLapSolverWS(m.p, ws)
	}
	if err != nil {
		return fmt.Errorf("dynamic: sparsifier factorization: %w", err)
	}
	m.solver = solver
	m.perm = solver.Ordering()
	m.nnzAtOrder = solver.FactorNNZ()
	return nil
}

// touch records batch-perturbed vertices for the next ball-local refresh.
func (m *Maintainer) touch(u, v int) {
	if m.touched == nil {
		m.touched = make(map[int]bool)
	}
	m.touched[u] = true
	m.touched[v] = true
}

// refreshScorerAndCertificate rebuilds the probe embedding (fresh) or
// marks it stale for a deferred warm-start step, then re-verifies the
// certificate. The solver must already match m.p. The certificate check
// itself never consults the embedding — it is exact Lanczos against the
// current factorization — so deferring the power step is invisible to
// the per-batch invariant; the step runs lazily in freshenEmbedding the
// moment an admission decision actually needs heats. Update streams that
// only delete/reweight (the switching-sequence regime) therefore skip
// the r probe solves per batch entirely.
func (m *Maintainer) refreshScorerAndCertificate(ctx context.Context, fresh bool) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	t, r, _, _ := m.opt.Sparsify.EffectiveEmbed(m.g.N())
	if fresh || m.scorer == nil {
		m.scorer = core.NewEdgeScorer(m.g, m.solver, t, r, core.DeriveSeed(m.opt.Sparsify.Seed, int(m.rng.Uint64()%1024)))
		m.embedStale = false
		m.staleChurn = 0
		clear(m.touched)
	} else {
		m.embedStale = true
	}
	return m.verifyCertificate(ctx)
}

// freshenEmbedding folds every batch committed since the last refresh
// into the retained probe vectors with one warm-started power step
// against the current graph and solver. Callers invoke it right before
// the embedding is consulted (insert admission, re-filter scoring); the
// drift budget separately bounds how much deferred churn the embedding
// may absorb before a rebuild.
// With LocalRefreshRadius set, the refresh is attempted as a ball-local
// Dirichlet relaxation seeded at the touched vertices; the far field stays
// stale, so localDriftCarry of the deferred churn is charged to the drift
// budget. A ball past n/4 vertices (locality buys nothing) falls back to
// the full warm step.
func (m *Maintainer) freshenEmbedding(ctx context.Context) {
	if !m.embedStale || m.scorer == nil {
		return
	}
	defer obs.StartSpan(ctx, "embed").End()
	if m.opt.LocalRefreshRadius > 0 && len(m.touched) > 0 {
		touched := make([]int, 0, len(m.touched))
		for v := range m.touched {
			touched = append(touched, v)
		}
		sort.Ints(touched) // deterministic ball construction
		maxBall := m.g.N() / 4
		if n := m.scorer.StepLocal(m.g, m.p, touched, m.opt.LocalRefreshRadius, m.opt.LocalRefreshSweeps, maxBall); n >= 0 {
			m.drift += localDriftCarry * m.staleChurn
			m.stats.LocalSteps++
			m.finishRefresh()
			return
		}
	}
	m.scorer.Step(m.g, m.solver)
	m.finishRefresh()
}

func (m *Maintainer) finishRefresh() {
	m.embedStale = false
	m.staleChurn = 0
	clear(m.touched)
	m.stats.EmbedRefreshes++
}

// verifyCertificate re-estimates κ(L_G, L_P) by generalized Lanczos with
// the current exact factorization.
func (m *Maintainer) verifyCertificate(ctx context.Context) error {
	defer obs.StartSpan(ctx, "verify").End()
	m.stats.Verifies++
	lmax, lmin, cond, err := core.VerifySimilarity(m.g, m.p, m.solver, m.opt.VerifySteps, m.rng.Uint64())
	if err != nil {
		return fmt.Errorf("dynamic: similarity verification: %w", err)
	}
	m.lmax, m.lmin, m.cond = lmax, lmin, cond
	m.targetMet = cond <= m.opt.Sparsify.SigmaSq
	return nil
}

// rebuild re-sparsifies the current graph from scratch (single-shot, or
// via the shard-parallel engine when RebuildShards > 1), resets the drift
// accounting, recomputes the elimination order and rebuilds the probe
// embedding.
func (m *Maintainer) rebuild(ctx context.Context) error {
	var sparsifier *graph.Graph
	adoptTree := true
	if m.opt.RebuildShards > 1 {
		res, err := engine.Run(ctx, m.g, engine.Options{
			Shards:    m.opt.RebuildShards,
			Workers:   m.opt.RebuildWorkers,
			Sparsify:  m.opt.Sparsify,
			Partition: m.opt.RebuildPartition,
			Seed:      m.opt.Sparsify.Seed,
		})
		if err != nil {
			return err
		}
		sparsifier = res.Sparsifier
	} else {
		res, err := core.SparsifyCtx(ctx, m.g, m.opt.Sparsify)
		if err != nil && !errors.Is(err, core.ErrNoTarget) {
			return err
		}
		sparsifier = res.Sparsifier
		m.backbone = res.Tree
		m.treeKey = make(map[[2]int]bool, len(res.TreeEdgeIDs))
		for _, id := range res.TreeEdgeIDs {
			e := m.g.Edge(id)
			m.treeKey[[2]int{e.U, e.V}] = true
		}
		adoptTree = false
	}
	m.pW = make(map[[2]int]float64, sparsifier.M())
	for _, e := range sparsifier.Edges() {
		m.pW[[2]int{e.U, e.V}] = e.W
	}
	m.p = sparsifier
	m.perm = nil // force a fresh elimination order for the new pattern
	if err := m.refactor(); err != nil {
		return err
	}
	if adoptTree {
		if err := m.adoptBackboneFromSparsifier(); err != nil {
			return err
		}
	}
	if err := m.refreshScorerAndCertificate(ctx, true); err != nil {
		return err
	}
	// Record the thresholds of this full pass for future insert scoring.
	m.recordThresholds(ctx)
	// The pipeline's own estimates can land the *verified* κ slightly
	// above target (deeper Lanczos, different seed, or the engine's
	// stitched certificate); close any residual gap with re-filter rounds
	// before trusting this build as the drift baseline.
	if err := m.refilter(ctx, false); err != nil {
		return err
	}
	m.condAtBuild = m.cond
	m.drift = 0
	m.mAtBuild = m.g.M()
	return nil
}

// repairTree stages the reconnection of the backbone forest after
// tree-edge deletions: the surviving forest is m.treeKey minus the
// removed edges, repairs prefer the heaviest crossing edge per removed
// edge (lsst.FindReplacement), and a heaviest-first sweep covers the case
// of several simultaneous removals fragmenting the forest beyond pairwise
// repair. Repair edges are staged into both the tree set and the
// sparsifier deltas.
func (m *Maintainer) repairTree(g *graph.Graph, removed [][2]int, pDel map[[2]int]bool, pSet map[[2]int]float64, treeAdd map[[2]int]bool) error {
	removedSet := make(map[[2]int]bool, len(removed))
	for _, k := range removed {
		removedSet[k] = true
	}
	pairs := make([][2]int, 0, len(m.treeKey))
	//graphspar:nondeterministic-ok pairs only seed union-find connectivity; FindReplacement then selects by weight over the deterministic g.Edges() order
	for k := range m.treeKey {
		if !removedSet[k] {
			pairs = append(pairs, k)
		}
	}
	stage := func(e graph.Edge) {
		k := [2]int{e.U, e.V}
		treeAdd[k] = true
		pSet[k] = e.W
		delete(pDel, k)
		pairs = append(pairs, k)
	}
	if len(removed) == 1 {
		id, err := lsst.FindReplacement(g, pairs, removed[0][0], removed[0][1], nil)
		if err == nil && id >= 0 {
			stage(g.Edge(id))
			return nil
		}
		if err != nil && !errors.Is(err, lsst.ErrNoReplacement) {
			return err
		}
		// ErrNoReplacement cannot happen for a connected g with a single
		// removal, but fall through to the sweep as a belt-and-braces path.
	}
	uf := lsst.NewUnionFind(g.N())
	for _, k := range pairs {
		uf.Union(k[0], k[1])
	}
	if !reconnectHeaviest(g, uf, stage) {
		return fmt.Errorf("dynamic: backbone repair failed: %w", graph.ErrDisconnected)
	}
	return nil
}

// lookupEdge finds the edge with the given normalized key in g.
func lookupEdge(g *graph.Graph, k [2]int) (graph.Edge, bool) {
	var out graph.Edge
	found := false
	g.Neighbors(k[0], func(v int, w float64, id int) bool {
		if v == k[1] {
			out = g.Edge(id)
			found = true
			return false
		}
		return true
	})
	return out, found
}
