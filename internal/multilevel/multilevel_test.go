package multilevel_test

import (
	"context"
	"testing"

	"graphspar/internal/core"
	"graphspar/internal/graph"
	"graphspar/internal/multilevel"
	"graphspar/internal/testkit"
)

const sigma = 50.0

// requireSubgraph fails unless p is a subgraph of g with original weights.
func requireSubgraph(t *testing.T, g, p *graph.Graph) {
	t.Helper()
	idx := g.EdgeIndex()
	for _, e := range p.Edges() {
		u, v := e.U, e.V
		if u > v {
			u, v = v, u
		}
		id, ok := idx[[2]int{u, v}]
		if !ok {
			t.Fatalf("sparsifier edge (%d,%d) not in input", u, v)
		}
		if g.Edge(id).W != e.W {
			t.Fatalf("sparsifier edge (%d,%d) weight %v != input %v", u, v, e.W, g.Edge(id).W)
		}
	}
}

// TestCertificateOnHarness is the property test of the issue: on every
// testkit family, a genuinely coarsened run must end with an
// independently verified κ(L_G, L_P) ≤ σ² on the original graph.
func TestCertificateOnHarness(t *testing.T) {
	for _, tc := range testkit.Cases() {
		tc := tc
		t.Run(tc.Name, func(t *testing.T) {
			g, err := tc.Build(7)
			if err != nil {
				t.Fatal(err)
			}
			opt := multilevel.Options{
				Sparsify:     core.Options{SigmaSq: sigma, Seed: 7},
				CoarsestSize: 16, // the harness graphs are small; force real hierarchies
			}
			res, err := multilevel.Run(context.Background(), g, opt)
			if err != nil {
				t.Fatal(err)
			}
			if res.Depth < 2 {
				t.Fatalf("expected a real hierarchy, got depth %d", res.Depth)
			}
			if len(res.Levels) != res.Depth {
				t.Fatalf("Levels has %d entries for depth %d", len(res.Levels), res.Depth)
			}
			if !res.TargetMet {
				t.Fatalf("target unmet: verified κ = %v > σ² = %v", res.VerifiedCond, sigma)
			}
			if res.VerifiedCond <= 0 || res.VerifiedCond > sigma {
				t.Fatalf("verified κ = %v outside (0, %v]", res.VerifiedCond, sigma)
			}
			if err := res.Sparsifier.RequireConnected(); err != nil {
				t.Fatalf("sparsifier disconnected: %v", err)
			}
			requireSubgraph(t, g, res.Sparsifier)

			cond, err := testkit.VerifyCond(g, res.Sparsifier, 99)
			if err != nil {
				t.Fatal(err)
			}
			if cond > sigma {
				t.Fatalf("independent κ = %v > σ² = %v", cond, sigma)
			}

			// Per-level bookkeeping: the finest entry is the final result.
			fin := res.Levels[0]
			if fin.Level != 0 || fin.Vertices != g.N() || fin.Edges != g.M() {
				t.Fatalf("finest level stats describe the wrong graph: %+v", fin)
			}
			if fin.Kept != res.Sparsifier.M() {
				t.Fatalf("finest Kept = %d, sparsifier has %d edges", fin.Kept, res.Sparsifier.M())
			}
			if fin.TreeEdges != g.N()-1 {
				t.Fatalf("finest backbone has %d edges, want %d", fin.TreeEdges, g.N()-1)
			}
		})
	}
}

// TestDegenerateBitIdenticalToSingleShot pins the equivalence the facade
// documents: one level, or a coarsen ratio of 1, disables the hierarchy
// and must reproduce the single-shot pipeline bit for bit.
func TestDegenerateBitIdenticalToSingleShot(t *testing.T) {
	for _, tc := range testkit.Cases() {
		tc := tc
		t.Run(tc.Name, func(t *testing.T) {
			g, err := tc.Build(3)
			if err != nil {
				t.Fatal(err)
			}
			copt := core.Options{SigmaSq: sigma, Seed: 11}
			want, err := core.Sparsify(g, copt)
			if err != nil {
				t.Fatal(err)
			}
			for name, opt := range map[string]multilevel.Options{
				"one-level": {Sparsify: copt, CoarsenLevels: 1},
				"ratio-1":   {Sparsify: copt, CoarsenRatio: 1},
			} {
				res, err := multilevel.Run(context.Background(), g, opt)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if res.Depth != 1 {
					t.Fatalf("%s: depth %d, want 1", name, res.Depth)
				}
				if res.Sparsifier.ContentHash() != want.Sparsifier.ContentHash() {
					t.Fatalf("%s: sparsifier differs from single-shot (%d vs %d edges)",
						name, res.Sparsifier.M(), want.Sparsifier.M())
				}
				if !res.TargetMet {
					t.Fatalf("%s: target unmet, verified κ = %v", name, res.VerifiedCond)
				}
			}
		})
	}
}

// TestDeterministicPerSeed: same seed, same graph → same sparsifier;
// different seed → independent run (usually different, never invalid).
func TestDeterministicPerSeed(t *testing.T) {
	g, err := testkit.Cases()[0].Build(5)
	if err != nil {
		t.Fatal(err)
	}
	opt := multilevel.Options{
		Sparsify:     core.Options{SigmaSq: sigma, Seed: 13},
		CoarsestSize: 16,
	}
	a, err := multilevel.Run(context.Background(), g, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := multilevel.Run(context.Background(), g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if a.Sparsifier.ContentHash() != b.Sparsifier.ContentHash() {
		t.Fatal("same seed produced different sparsifiers")
	}
	if a.Depth != b.Depth {
		t.Fatalf("same seed produced different depths: %d vs %d", a.Depth, b.Depth)
	}
}

// TestOptionValidation covers the typed rejections.
func TestOptionValidation(t *testing.T) {
	g, err := testkit.Cases()[0].Build(1)
	if err != nil {
		t.Fatal(err)
	}
	bad := []multilevel.Options{
		{},                                     // missing σ²
		{Sparsify: core.Options{SigmaSq: 0.5}}, // σ² ≤ 1
		{Sparsify: core.Options{SigmaSq: sigma}, CoarsenLevels: -1},   // negative depth
		{Sparsify: core.Options{SigmaSq: sigma}, CoarsenRatio: 1.5},   // ratio > 1
		{Sparsify: core.Options{SigmaSq: sigma}, CoarsenRatio: -0.25}, // ratio < 0
	}
	for i, opt := range bad {
		if _, err := multilevel.Run(context.Background(), g, opt); err == nil {
			t.Fatalf("case %d: invalid options accepted", i)
		}
	}
}

// TestCancellation: an already-cancelled context stops the run.
func TestCancellation(t *testing.T) {
	g, err := testkit.Cases()[0].Build(1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := multilevel.Run(ctx, g, multilevel.Options{
		Sparsify:     core.Options{SigmaSq: sigma},
		CoarsestSize: 16,
	}); err == nil {
		t.Fatal("cancelled context accepted")
	}
}
