// Package multilevel runs similarity-aware sparsification through a
// coarsening hierarchy — the multilevel scheme of John & Safro
// (arXiv 1601.05527) built on this repository's edge-filter core: the
// input is contracted level by level along heavy-edge aggregates (the
// same aggregation the multigrid solver coarsens with), the full
// edge-filter pipeline runs once on the coarsest graph, and the coarse
// selection is interpolated back level by level — each fine level keeps
// its own LSST backbone plus the representative fine edge of every
// admitted coarse edge, then re-filters the remaining fine edges with
// bounded global embedding passes and re-checks the certificate with a
// generalized-Lanczos pass. The final certificate is therefore on the
// original graph.
//
// Versus the flat sharded engine, the hierarchy never cuts the graph:
// cut-heavy topologies (dense blocks a balanced partition must slice
// through) collapse into single aggregates instead of degrading into
// global re-filter passes over huge cut sets, and the expensive
// full-pipeline densification loop runs only at coarse size.
package multilevel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"time"

	"graphspar/internal/cholesky"
	"graphspar/internal/core"
	"graphspar/internal/graph"
	"graphspar/internal/lsst"
	"graphspar/internal/obs"
	"graphspar/internal/params"
)

// Defaults of the hierarchy knobs.
const (
	// DefaultCoarsenRatio is the acceptance ceiling on nc/n per
	// coarsening step: a step that cannot shrink the vertex count below
	// this fraction has stalled and ends the hierarchy.
	DefaultCoarsenRatio = 0.7
	// DefaultCoarsestSize stops coarsening once a level has at most this
	// many vertices — small enough that the full densification loop is
	// cheap, large enough to keep the interpolation seed informative.
	DefaultCoarsestSize = 512
	// defaultMaxLevels caps the hierarchy depth when CoarsenLevels is 0.
	defaultMaxLevels = 16
	// maxCalibrations caps the per-level calibrated refilter retries
	// when the verified κ misses the target the estimates cleared.
	maxCalibrations = 3
)

// Options configures Run.
type Options struct {
	// Sparsify configures the coarsest-level edge filter (SigmaSq is
	// required, as in core.Sparsify) and supplies the embedding knobs of
	// every per-level re-filter pass.
	Sparsify core.Options
	// CoarsenLevels caps the hierarchy depth, counting the input graph:
	// 1 disables coarsening (Run is then bit-identical to the single-shot
	// pipeline), 0 picks the default cap.
	CoarsenLevels int
	// CoarsenRatio is the per-step acceptance ceiling on nc/n (see
	// DefaultCoarsenRatio); 1 disables coarsening, 0 the default.
	CoarsenRatio float64
	// CoarsestSize stops coarsening at or below this vertex count
	// (default DefaultCoarsestSize).
	CoarsestSize int
	// RefilterRounds caps the global embedding passes per finer level.
	// Default 4.
	RefilterRounds int
	// VerifySteps is the generalized-Lanczos depth of the per-level
	// similarity checks. Default min(30, n).
	VerifySteps int
	// SkipVerify drops the per-level Lanczos checks (pure-compute
	// benchmarking); the re-filter estimates still gate admission.
	SkipVerify bool
	// Workers caps the goroutines of the per-level embedding passes.
	// Default GOMAXPROCS; wall-clock only, never the result.
	Workers int
	// Seed drives every random choice (coarsest pipeline, per-level
	// backbones and probe vectors). Default Sparsify.Seed, then 1.
	Seed uint64
}

func (o *Options) defaults(n int) error {
	if err := params.Sigma2(o.Sparsify.SigmaSq); err != nil {
		return err
	}
	if err := params.Coarsen(o.CoarsenLevels, o.CoarsenRatio); err != nil {
		return err
	}
	if o.CoarsenLevels == 0 {
		o.CoarsenLevels = defaultMaxLevels
	}
	if o.CoarsenRatio == 0 {
		o.CoarsenRatio = DefaultCoarsenRatio
	}
	if o.CoarsestSize <= 0 {
		o.CoarsestSize = DefaultCoarsestSize
	}
	if o.RefilterRounds <= 0 {
		o.RefilterRounds = 4
	}
	if o.VerifySteps <= 0 {
		o.VerifySteps = 30
	}
	if o.VerifySteps > n {
		o.VerifySteps = n
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Seed == 0 {
		o.Seed = o.Sparsify.Seed
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return nil
}

// LevelStats reports one hierarchy level's work. Level 0 is the input
// graph; the highest level is the coarsest, where the full pipeline ran.
type LevelStats struct {
	Level    int
	Vertices int
	Edges    int
	// TreeEdges is the LSST backbone size at this level; Inherited
	// counts the non-backbone edges admitted by interpolation from the
	// coarse selection, Recovered the ones the level's own re-filter
	// passes added (at the coarsest level: the pipeline's off-tree
	// additions).
	TreeEdges int
	Inherited int
	Recovered int
	// Kept is the sparsifier size at this level.
	Kept int
	// SigmaSqEst is the level's own final κ estimate; VerifiedCond the
	// per-level Lanczos check (0 when SkipVerify).
	SigmaSqEst   float64
	VerifiedCond float64
	Duration     time.Duration
}

// Result is the output of Run.
type Result struct {
	// Sparsifier spans the input vertex set: the finest-level backbone,
	// the interpolated coarse selection, and everything the per-level
	// re-filter passes recovered.
	Sparsifier *graph.Graph
	// Depth is the hierarchy depth used (1 = no coarsening happened).
	Depth int
	// Levels holds per-level stats, indexed by level (0 = finest).
	Levels []LevelStats

	// LambdaMax/LambdaMin/SigmaSqEst are the finest level's own final
	// estimates; Verified* come from the finest-level Lanczos check
	// (zero when SkipVerify), and VerifiedCond is the authoritative
	// end-to-end κ on the original graph.
	LambdaMax, LambdaMin float64
	SigmaSqEst           float64
	VerifiedLambdaMax    float64
	VerifiedLambdaMin    float64
	VerifiedCond         float64
	TargetMet            bool

	// Phase timings; Interpolate/Refilter/Verify sum over levels.
	CoarsenTime     time.Duration
	SparsifyTime    time.Duration
	InterpolateTime time.Duration
	RefilterTime    time.Duration
	VerifyTime      time.Duration
	WallTime        time.Duration
}

// Density returns |E_P| / |V| of the final sparsifier.
func (r *Result) Density() float64 {
	return float64(r.Sparsifier.M()) / float64(r.Sparsifier.N())
}

// Run executes the multilevel pipeline: coarsen, sparsify the coarsest
// level, then interpolate + re-filter + verify level by level back to
// the input. TargetMet reports whether the finest certificate met σ²
// (callers decide how to surface a miss). Cancellation of ctx stops the
// densification and re-filter passes at their next checkpoint.
func Run(ctx context.Context, g *graph.Graph, opt Options) (*Result, error) {
	start := time.Now()
	if err := g.RequireConnected(); err != nil {
		return nil, err
	}
	if err := opt.defaults(g.N()); err != nil {
		return nil, err
	}
	sigma := opt.Sparsify.SigmaSq

	coarsenSpan := obs.StartSpan(ctx, "coarsen")
	levels, err := buildHierarchy(g, opt.CoarsenLevels, opt.CoarsenRatio, opt.CoarsestSize)
	coarsenDur := coarsenSpan.End()
	if err != nil {
		return nil, err
	}
	res := &Result{
		Depth:       len(levels),
		Levels:      make([]LevelStats, len(levels)),
		CoarsenTime: coarsenDur,
	}

	// Sparsify the coarsest level with the exact single-shot options, so
	// a depth-1 hierarchy stays bit-identical to core.Sparsify.
	coarsest := levels[len(levels)-1]
	sopt := opt.Sparsify
	if sopt.Seed == 0 {
		sopt.Seed = opt.Seed
	}
	spSpan := obs.StartSpan(ctx, "sparsify")
	sp, err := core.SparsifyCtx(ctx, coarsest.g, sopt)
	res.SparsifyTime = spSpan.End()
	if err != nil && !errors.Is(err, core.ErrNoTarget) {
		return nil, fmt.Errorf("multilevel: coarsest level: %w", err)
	}
	res.Levels[len(levels)-1] = LevelStats{
		Level:      len(levels) - 1,
		Vertices:   coarsest.g.N(),
		Edges:      coarsest.g.M(),
		TreeEdges:  len(sp.TreeEdgeIDs),
		Recovered:  len(sp.OffTreeAddedIDs),
		Kept:       sp.Sparsifier.M(),
		SigmaSqEst: sp.SigmaSqAchieved,
		Duration:   res.SparsifyTime,
	}
	p := sp.Sparsifier
	kept := append(append([]int(nil), sp.TreeEdgeIDs...), sp.OffTreeAddedIDs...)
	lmax, lmin := sp.LambdaMax, sp.LambdaMin
	targetMet := err == nil

	// Uncoarsen: interpolate the selection one level down, re-filter the
	// fine edges, verify, repeat until the input graph.
	for l := len(levels) - 2; l >= 0; l-- {
		fine := levels[l]
		lvlStart := time.Now()
		levelSeed := core.DeriveSeed(opt.Seed, l+1)

		iSpan := obs.StartSpan(ctx, "interpolate")
		keptF, candF, treeCount, err := interpolate(fine.g, fine.rep, kept, sopt.TreeAlg, levelSeed)
		res.InterpolateTime += iSpan.End()
		if err != nil {
			return nil, fmt.Errorf("multilevel: level %d: %w", l, err)
		}
		st := LevelStats{
			Level:     l,
			Vertices:  fine.g.N(),
			Edges:     fine.g.M(),
			TreeEdges: treeCount,
			Inherited: len(keptF) - treeCount,
		}

		rSpan := obs.StartSpan(ctx, "uncoarsen_refilter")
		pF, keptNew, recovered, lx, ln, err := core.Refilter(ctx, fine.g, keptF, candF, opt.Sparsify, opt.RefilterRounds, opt.Workers, levelSeed)
		res.RefilterTime += rSpan.End()
		if err != nil {
			if ctx.Err() == nil {
				err = fmt.Errorf("multilevel: level %d: %w", l, err)
			}
			return nil, err
		}
		st.Recovered = recovered
		targetMet = ln > 0 && lx/ln <= sigma

		if !opt.SkipVerify {
			vlx, vln, cond, vDur, err := verifyLevel(ctx, fine.g, pF, opt.VerifySteps, levelSeed)
			res.VerifyTime += vDur
			if err != nil {
				return nil, fmt.Errorf("multilevel: level %d: %w", l, err)
			}
			// Calibrated retries: the power/coloring estimates can clear σ²
			// while the Lanczos check does not (the estimate under-reports
			// κ by cond·ln/lx). Re-run the bounded re-filter against a
			// proportionally tighter estimated target so it actually admits
			// edges, then re-verify — the verified certificate is the one
			// each level converges on. The retry count is capped, so the
			// per-level cost stays bounded.
			for attempt := 1; cond > sigma && len(keptNew) < fine.g.M() && ln > 0 && attempt <= maxCalibrations; attempt++ {
				calibrated := sigma * (lx / ln) / cond
				if !(calibrated > 1) {
					calibrated = (1 + sigma) / 2
				}
				copt := opt.Sparsify
				copt.SigmaSq = calibrated
				cands := remaining(fine.g.M(), keptNew)
				rSpan := obs.StartSpan(ctx, "uncoarsen_refilter")
				pF2, kept2, rec2, lx2, ln2, err := core.Refilter(ctx, fine.g, keptNew, cands, copt, opt.RefilterRounds, opt.Workers, core.DeriveSeed(levelSeed, 2*attempt-1))
				res.RefilterTime += rSpan.End()
				if err != nil {
					if ctx.Err() == nil {
						err = fmt.Errorf("multilevel: level %d: %w", l, err)
					}
					return nil, err
				}
				pF, keptNew, lx, ln = pF2, kept2, lx2, ln2
				st.Recovered += rec2
				vlx, vln, cond, vDur, err = verifyLevel(ctx, fine.g, pF, opt.VerifySteps, core.DeriveSeed(levelSeed, 2*attempt))
				res.VerifyTime += vDur
				if err != nil {
					return nil, fmt.Errorf("multilevel: level %d: %w", l, err)
				}
			}
			st.VerifiedCond = cond
			targetMet = cond <= sigma
			if l == 0 {
				res.VerifiedLambdaMax, res.VerifiedLambdaMin, res.VerifiedCond = vlx, vln, cond
			}
		}
		p, kept, lmax, lmin = pF, keptNew, lx, ln
		st.Kept = p.M()
		if lmin > 0 {
			st.SigmaSqEst = lmax / lmin
		}
		st.Duration = time.Since(lvlStart)
		res.Levels[l] = st
	}

	if len(levels) == 1 && !opt.SkipVerify {
		// Degenerate depth: the coarsest level IS the input, so the
		// certificate check runs here instead of in the uncoarsen loop.
		vlx, vln, cond, vDur, err := verifyLevel(ctx, g, p, opt.VerifySteps, opt.Seed)
		res.VerifyTime += vDur
		if err != nil {
			return nil, fmt.Errorf("multilevel: %w", err)
		}
		res.VerifiedLambdaMax, res.VerifiedLambdaMin, res.VerifiedCond = vlx, vln, cond
		res.Levels[0].VerifiedCond = cond
		targetMet = cond <= sigma
	}

	res.Sparsifier = p
	res.LambdaMax, res.LambdaMin = lmax, lmin
	if lmin > 0 {
		res.SigmaSqEst = lmax / lmin
	}
	res.TargetMet = targetMet
	res.WallTime = time.Since(start)
	return res, nil
}

// interpolate seeds a fine level's selection: the fine LSST backbone for
// connectivity plus the representative fine edge of every admitted
// coarse edge; every other fine edge becomes a re-filter candidate.
func interpolate(fine *graph.Graph, rep []int, coarseKept []int, alg lsst.Algorithm, seed uint64) (keptIDs, candIDs []int, treeCount int, err error) {
	_, treeIDs, _, err := lsst.Extract(fine, alg, seed)
	if err != nil {
		return nil, nil, 0, err
	}
	in := make([]bool, fine.M())
	for _, id := range treeIDs {
		in[id] = true
	}
	keptIDs = append([]int(nil), treeIDs...)
	treeCount = len(treeIDs)
	for _, cid := range coarseKept {
		if cid < 0 || cid >= len(rep) {
			return nil, nil, 0, fmt.Errorf("interpolate: coarse edge %d out of range", cid)
		}
		if id := rep[cid]; id >= 0 && !in[id] {
			in[id] = true
			keptIDs = append(keptIDs, id)
		}
	}
	for id := 0; id < fine.M(); id++ {
		if !in[id] {
			candIDs = append(candIDs, id)
		}
	}
	return keptIDs, candIDs, treeCount, nil
}

// remaining lists the edge ids of a graph with m edges not in kept.
func remaining(m int, kept []int) []int {
	in := make([]bool, m)
	for _, id := range kept {
		in[id] = true
	}
	out := make([]int, 0, m-len(kept))
	for id := 0; id < m; id++ {
		if !in[id] {
			out = append(out, id)
		}
	}
	return out
}

// verifyLevel runs the independent generalized-Lanczos similarity check
// of p against g under a "verify" span.
func verifyLevel(ctx context.Context, g, p *graph.Graph, steps int, seed uint64) (lmax, lmin, cond float64, dur time.Duration, err error) {
	if err := ctx.Err(); err != nil {
		return 0, 0, 0, 0, err
	}
	vSpan := obs.StartSpan(ctx, "verify")
	defer func() { dur = vSpan.End() }()
	solver, err := cholesky.NewLapSolver(p)
	if err != nil {
		return 0, 0, 0, 0, fmt.Errorf("verification solver: %w", err)
	}
	if steps > g.N() {
		steps = g.N()
	}
	lmax, lmin, cond, err = core.VerifySimilarity(g, p, solver, steps, seed)
	if err != nil {
		return 0, 0, 0, 0, fmt.Errorf("similarity verification: %w", err)
	}
	return lmax, lmin, cond, dur, nil
}
