package multilevel

import (
	"fmt"

	"graphspar/internal/graph"
	"graphspar/internal/multigrid"
)

// levelData is one rung of the coarsening hierarchy. levels[0].g is the
// input graph; agg and rep describe the contraction to the next coarser
// level and are nil at the coarsest.
type levelData struct {
	g *graph.Graph
	// agg maps each vertex of g to its aggregate id in the next coarser
	// graph.
	agg []int
	// rep maps each edge id of the next coarser graph to the heaviest
	// fine edge of g it aggregates (smallest id on weight ties) — the
	// representative a coarse admission is interpolated back through.
	rep []int
}

// buildHierarchy coarsens g by repeated heavy-edge aggregation until the
// level cap, the coarsest-size floor, or a stalled aggregation (a step
// that cannot shrink the vertex count below ratio·n) stops it. The
// returned stack always has the input at index 0 and is never empty;
// maxLevels 1 or ratio 1 yield exactly that degenerate stack.
func buildHierarchy(g *graph.Graph, maxLevels int, ratio float64, coarsestSize int) ([]*levelData, error) {
	levels := []*levelData{{g: g}}
	if ratio >= 1 {
		return levels, nil
	}
	for len(levels) < maxLevels {
		cur := levels[len(levels)-1]
		n := cur.g.N()
		if n <= coarsestSize {
			break
		}
		agg, nc := multigrid.AggregateGraph(cur.g)
		if nc < 2 || float64(nc) > ratio*float64(n) {
			break
		}
		coarse, rep, err := contract(cur.g, agg, nc)
		if err != nil {
			return nil, err
		}
		cur.agg, cur.rep = agg, rep
		levels = append(levels, &levelData{g: coarse})
	}
	return levels, nil
}

// contract builds the coarse graph induced by the aggregate mapping:
// inter-aggregate fine edges collapse onto coarse edges with summed
// weights (intra-aggregate edges vanish — they become refilter
// candidates when the selection is interpolated back). The second return
// is the representative mapping for interpolation.
func contract(fine *graph.Graph, agg []int, nc int) (*graph.Graph, []int, error) {
	es := make([]graph.Edge, 0, fine.M())
	for _, e := range fine.Edges() {
		cu, cv := agg[e.U], agg[e.V]
		if cu != cv {
			es = append(es, graph.Edge{U: cu, V: cv, W: e.W})
		}
	}
	coarse, err := graph.New(nc, es)
	if err != nil {
		return nil, nil, fmt.Errorf("multilevel: contract: %w", err)
	}
	idx := coarse.EdgeIndex()
	rep := make([]int, coarse.M())
	best := make([]float64, coarse.M())
	for i := range rep {
		rep[i] = -1
	}
	for id, e := range fine.Edges() {
		cu, cv := agg[e.U], agg[e.V]
		if cu == cv {
			continue
		}
		if cu > cv {
			cu, cv = cv, cu
		}
		cid, ok := idx[[2]int{cu, cv}]
		if !ok {
			return nil, nil, fmt.Errorf("multilevel: contract: fine edge %d lost its coarse image", id)
		}
		if rep[cid] == -1 || e.W > best[cid] {
			rep[cid], best[cid] = id, e.W
		}
	}
	return coarse, rep, nil
}
