package cholesky

import (
	"container/heap"
	"sort"

	"graphspar/internal/sparse"
)

// MinDegree computes a greedy minimum-degree elimination ordering of the
// symmetric matrix's graph — the classic fill-reducing heuristic behind
// AMD/CHOLMOD. Ultra-sparse near-tree matrices (spanning tree + few
// off-tree edges, exactly what similarity-aware sparsifiers look like)
// factor with almost no fill under this ordering, where bandwidth
// orderings like RCM pay a large penalty.
//
// The implementation maintains explicit elimination-graph adjacency sets
// and a lazy min-heap keyed by degree; the cost is O(Σ |clique|²) over
// eliminated vertices, which is proportional to the produced fill — cheap
// whenever the ordering is good, which is the regime we use it in.
// Returns perm with perm[new] = old.
func MinDegree(a *sparse.CSR) []int {
	n := a.Rows
	adj := make([]map[int]struct{}, n)
	for i := 0; i < n; i++ {
		adj[i] = make(map[int]struct{})
	}
	for i := 0; i < n; i++ {
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			j := a.ColIdx[p]
			if j != i {
				adj[i][j] = struct{}{}
				adj[j][i] = struct{}{}
			}
		}
	}

	h := &degHeap{}
	heap.Init(h)
	for v := 0; v < n; v++ {
		heap.Push(h, degItem{v, len(adj[v])})
	}
	eliminated := make([]bool, n)
	order := make([]int, 0, n)
	nbrs := make([]int, 0, 64)
	for h.Len() > 0 {
		it := heap.Pop(h).(degItem)
		v := it.v
		if eliminated[v] {
			continue
		}
		if it.deg != len(adj[v]) {
			// Stale entry: reinsert with the current degree.
			heap.Push(h, degItem{v, len(adj[v])})
			continue
		}
		eliminated[v] = true
		order = append(order, v)
		nbrs = nbrs[:0]
		for u := range adj[v] {
			nbrs = append(nbrs, u)
		}
		// Map iteration order is randomized; sort so the produced ordering
		// (and with it every downstream factor rounding) is identical
		// run-to-run — the whole pipeline promises reproducibility.
		sort.Ints(nbrs)
		// Form the elimination clique and detach v.
		for _, u := range nbrs {
			delete(adj[u], v)
		}
		for i := 0; i < len(nbrs); i++ {
			for j := i + 1; j < len(nbrs); j++ {
				a, b := nbrs[i], nbrs[j]
				if _, ok := adj[a][b]; !ok {
					adj[a][b] = struct{}{}
					adj[b][a] = struct{}{}
				}
			}
		}
		for _, u := range nbrs {
			heap.Push(h, degItem{u, len(adj[u])})
		}
		adj[v] = nil
	}
	return order
}

type degItem struct {
	v, deg int
}

type degHeap []degItem

func (h degHeap) Len() int            { return len(h) }
func (h degHeap) Less(i, j int) bool  { return h[i].deg < h[j].deg }
func (h degHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *degHeap) Push(x interface{}) { *h = append(*h, x.(degItem)) }
func (h *degHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
