package cholesky

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrUpdatePattern is returned when a rank-1 update vector has nonzeros
// outside the pattern of the factor column it first touches: folding it in
// would create new fill, which Update cannot do in place. Callers fall back
// to a full refactorization.
var ErrUpdatePattern = errors.New("cholesky: rank-1 update pattern exceeds factor structure")

// Update applies the rank-1 modification A ← A + sign·v·vᵀ (sign = +1
// update, −1 downdate) to the factorization in place, using the
// Carlson/Gill–Golub–Murray sparse row algorithm: hyperbolic (downdate) or
// Givens-like (update) rotations applied only along the elimination-tree
// path from the first nonzero of P·v to the root, so the cost is the fill
// of that path — O(polylog n) under a nested-dissection order on
// sparsifier-shaped matrices — rather than a full refactorization.
//
// v is in the matrix's original (pre-permutation) index space. The update
// is exact (no fill is created) iff the pattern of P·v is contained in the
// pattern of the factor column of its minimum permuted index; otherwise
// ErrUpdatePattern is returned and the factor is unchanged. A downdate that
// would make the matrix numerically semidefinite returns ErrNotSPD; the
// factor is then partially modified and must be rebuilt.
//
// Update mutates the shared numeric values: it must not run concurrently
// with Solve on the receiver or on any Session sharing this factor.
func (f *Factor) Update(v []float64, sign int) error {
	if len(v) != f.n {
		panic(fmt.Sprintf("cholesky: Update dimension %d, want %d", len(v), f.n))
	}
	var idx []int
	var val []float64
	for i, x := range v {
		if x != 0 {
			idx = append(idx, i)
			val = append(val, x)
		}
	}
	return f.UpdateSparse(idx, val, sign)
}

// UpdateSparse is Update for a sparse vector given as parallel index/value
// slices (indices in original space, no duplicates). It is the allocation-
// light path the Laplacian solver's edge updates go through: cost is the
// etree path walk only, never O(n).
func (f *Factor) UpdateSparse(idx []int, val []float64, sign int) error {
	if sign != 1 && sign != -1 {
		panic(fmt.Sprintf("cholesky: Update sign %d, want +1 or -1", sign))
	}
	if len(idx) != len(val) {
		panic("cholesky: UpdateSparse index/value length mismatch")
	}
	if len(idx) == 0 {
		return nil
	}
	// Map to permuted row indices and find the path start f0.
	f0 := f.n
	for _, i := range idx {
		if i < 0 || i >= f.n {
			return fmt.Errorf("cholesky: update index %d out of range [0,%d)", i, f.n)
		}
		if p := f.inv[i]; p < f0 {
			f0 = p
		}
	}
	// No-fill precondition (Davis–Hager): pattern(P·v) ⊆ pattern(L(:,f0)).
	// Column patterns are stored ascending with the diagonal first, so each
	// remaining index is a binary search away.
	lo, hi := f.colPtr[f0], f.colPtr[f0+1]
	for _, i := range idx {
		p := f.inv[i]
		if p == f0 {
			continue
		}
		rows := f.rowIdx[lo:hi]
		at := sort.SearchInts(rows, p)
		if at == len(rows) || rows[at] != p {
			return ErrUpdatePattern
		}
	}
	if f.upWork == nil {
		f.upWork = make([]float64, f.n)
	}
	w := f.upWork
	for k, i := range idx {
		w[f.inv[i]] += val[k]
	}
	if err := f.updown(w, f0, sign); err != nil {
		// The walk aborted mid-path; w is dirty along the visited prefix.
		clear(w)
		return err
	}
	return nil
}

// updown performs the factor modification for L·Lᵀ + sigma·w·wᵀ along the
// etree path from f0 to the root (CSparse cs_updown). w is a dense
// workspace whose nonzeros are confined to the path's column patterns; on
// success it is zero again on exit.
func (f *Factor) updown(w []float64, f0 int, sigma int) error {
	beta := 1.0
	sgn := float64(sigma)
	for j := f0; j != -1; j = f.parent[j] {
		p0 := f.colPtr[j]
		alpha := w[j] / f.val[p0]
		beta2 := beta*beta + sgn*alpha*alpha
		if beta2 <= 0 || math.IsNaN(beta2) {
			return fmt.Errorf("%w: rank-1 downdate annihilates pivot %d", ErrNotSPD, j)
		}
		beta2 = math.Sqrt(beta2)
		var delta, gamma float64
		if sigma > 0 {
			delta = beta / beta2
			gamma = alpha / (beta2 * beta)
			f.val[p0] = delta*f.val[p0] + gamma*w[j]
		} else {
			delta = beta2 / beta
			gamma = -alpha / (beta2 * beta)
			f.val[p0] = delta * f.val[p0]
		}
		w[j] = 0
		if sigma > 0 {
			for p := p0 + 1; p < f.colPtr[j+1]; p++ {
				i := f.rowIdx[p]
				w1 := w[i]
				w[i] = w1 - alpha*f.val[p]
				f.val[p] = delta*f.val[p] + gamma*w1
			}
		} else {
			for p := p0 + 1; p < f.colPtr[j+1]; p++ {
				i := f.rowIdx[p]
				w2 := w[i] - alpha*f.val[p]
				w[i] = w2
				f.val[p] = delta*f.val[p] + gamma*w2
			}
		}
		beta = beta2
	}
	return nil
}

// ApplyEdge folds a sparsifier edge change into the factored reduced
// Laplacian: adding dw to the weight of edge (u,v) is the rank-1 change
// ±√|dw|·(e_u−e_v)(e_u−e_v)ᵀ of L_P, restricted to the grounded system
// (a term incident to the ground vertex keeps only the other endpoint).
// An insertion whose endpoints the factor pattern cannot absorb returns
// ErrUpdatePattern, and a deletion/downweight that would disconnect the
// sparsifier surfaces as ErrNotSPD — in both cases the caller refactors.
func (ls *LapSolver) ApplyEdge(u, v int, dw float64) error {
	if u == v || u < 0 || v < 0 || u >= ls.n || v >= ls.n {
		return fmt.Errorf("cholesky: ApplyEdge invalid edge (%d,%d) on %d vertices", u, v, ls.n)
	}
	if dw == 0 || ls.n == 1 {
		return nil
	}
	sign := 1
	if dw < 0 {
		sign = -1
	}
	s := math.Sqrt(math.Abs(dw))
	ls.upIdx = ls.upIdx[:0]
	ls.upVal = ls.upVal[:0]
	switch {
	case u == ls.ground:
		ls.upIdx = append(ls.upIdx, v)
		ls.upVal = append(ls.upVal, s)
	case v == ls.ground:
		ls.upIdx = append(ls.upIdx, u)
		ls.upVal = append(ls.upVal, s)
	default:
		ls.upIdx = append(ls.upIdx, u, v)
		ls.upVal = append(ls.upVal, s, -s)
	}
	return ls.factor.UpdateSparse(ls.upIdx, ls.upVal, sign)
}
