package cholesky_test

// External test package so the update property suite can reuse the graph
// families of internal/testkit (which itself imports cholesky).

import (
	"errors"
	"math"
	"testing"

	"graphspar/internal/cholesky"
	"graphspar/internal/gen"
	"graphspar/internal/graph"
	"graphspar/internal/sparse"
	"graphspar/internal/testkit"
	"graphspar/internal/vecmath"
)

func buildSPD(entries [][3]float64, n int) *sparse.CSR {
	b := sparse.NewBuilder(n, n)
	for _, e := range entries {
		b.Add(int(e[0]), int(e[1]), e[2])
	}
	return b.Build()
}

// relDiff returns max_i |x-y| / max(1, max_i |x|).
func relDiff(x, y []float64) float64 {
	var diff, scale float64
	for i := range x {
		if d := math.Abs(x[i] - y[i]); d > diff {
			diff = d
		}
		if a := math.Abs(x[i]); a > scale {
			scale = a
		}
	}
	if scale < 1 {
		scale = 1
	}
	return diff / scale
}

// TestFactorUpdateMatchesRefactor checks the dense Update entry point: an
// update followed by solves must match factoring A + v·vᵀ from scratch,
// and the matching downdate must restore the original factor.
func TestFactorUpdateMatchesRefactor(t *testing.T) {
	a := buildSPD([][3]float64{
		{0, 0, 4}, {0, 1, -1}, {1, 0, -1}, {1, 1, 4}, {1, 2, -2}, {2, 1, -2}, {2, 2, 5},
	}, 3)
	f, err := cholesky.FactorCSR(a, nil)
	if err != nil {
		t.Fatal(err)
	}
	v := []float64{0.4, 0.2, 0} // pattern {0,1} ⊆ pattern(L(:,0))
	if err := f.Update(v, 1); err != nil {
		t.Fatalf("update: %v", err)
	}
	// A + v vᵀ factored fresh.
	up := buildSPD([][3]float64{
		{0, 0, 4 + 0.16}, {0, 1, -1 + 0.08}, {1, 0, -1 + 0.08},
		{1, 1, 4 + 0.04}, {1, 2, -2}, {2, 1, -2}, {2, 2, 5},
	}, 3)
	fRef, err := cholesky.FactorCSR(up, nil)
	if err != nil {
		t.Fatal(err)
	}
	b := []float64{1, -2, 3}
	x, y := make([]float64, 3), make([]float64, 3)
	f.Solve(x, b)
	fRef.Solve(y, b)
	if d := relDiff(x, y); d > 1e-12 {
		t.Fatalf("updated solve differs from refactored solve by %g", d)
	}
	// Downdate back and compare against the original matrix.
	if err := f.Update(v, -1); err != nil {
		t.Fatalf("downdate: %v", err)
	}
	fOrig, err := cholesky.FactorCSR(a, nil)
	if err != nil {
		t.Fatal(err)
	}
	f.Solve(x, b)
	fOrig.Solve(y, b)
	if d := relDiff(x, y); d > 1e-12 {
		t.Fatalf("downdated solve differs from original solve by %g", d)
	}
}

func TestFactorUpdateRejectsFill(t *testing.T) {
	g, err := gen.Path(5)
	if err != nil {
		t.Fatal(err)
	}
	ls, err := cholesky.NewLapSolver(g)
	if err != nil {
		t.Fatal(err)
	}
	// (0,3) is no tree edge: a zero-fill path factor cannot absorb it.
	if err := ls.ApplyEdge(0, 3, 1.0); !errors.Is(err, cholesky.ErrUpdatePattern) {
		t.Fatalf("ApplyEdge on out-of-pattern edge: got %v, want ErrUpdatePattern", err)
	}
	// The factor must be untouched after the rejection.
	fresh, err := cholesky.NewLapSolver(g)
	if err != nil {
		t.Fatal(err)
	}
	b := []float64{1, 0, -1, 2, -2}
	x, y := make([]float64, 5), make([]float64, 5)
	ls.Solve(x, b)
	fresh.Solve(y, b)
	if d := relDiff(x, y); d > 1e-14 {
		t.Fatalf("rejected update perturbed the factor by %g", d)
	}
}

func TestDowndateToSingularRejected(t *testing.T) {
	g, err := gen.Path(3)
	if err != nil {
		t.Fatal(err)
	}
	ls, err := cholesky.NewLapSolver(g)
	if err != nil {
		t.Fatal(err)
	}
	// Removing (0,1) disconnects vertex 0: the reduced system goes
	// singular and the downdate must refuse rather than emit NaNs.
	if err := ls.ApplyEdge(0, 1, -1.0); !errors.Is(err, cholesky.ErrNotSPD) {
		t.Fatalf("disconnecting downdate: got %v, want ErrNotSPD", err)
	}
}

func TestApplyEdgeGroundIncident(t *testing.T) {
	g, err := gen.Grid2D(4, 4, gen.UniformWeights, 7)
	if err != nil {
		t.Fatal(err)
	}
	n := g.N()
	for _, nd := range []bool{false, true} {
		ls := newSolver(t, g, nd)
		// Reweight an edge incident to the ground vertex n-1.
		var gu, gv int
		var gw float64
		found := false
		for _, e := range g.Edges() {
			if e.U == n-1 || e.V == n-1 {
				gu, gv, gw = e.U, e.V, e.W
				found = true
				break
			}
		}
		if !found {
			t.Fatal("no ground-incident edge")
		}
		if err := ls.ApplyEdge(gu, gv, 0.75*gw); err != nil {
			t.Fatalf("ground-incident update: %v", err)
		}
		edges := append([]graph.Edge(nil), g.Edges()...)
		for i := range edges {
			if edges[i].U == gu && edges[i].V == gv {
				edges[i].W += 0.75 * gw
			}
		}
		g2, err := graph.New(n, edges)
		if err != nil {
			t.Fatal(err)
		}
		assertSolversMatch(t, ls, g2, 1e-10)
	}
}

func newSolver(t *testing.T, g *graph.Graph, nd bool) *cholesky.LapSolver {
	t.Helper()
	var ls *cholesky.LapSolver
	var err error
	if nd {
		ls, err = cholesky.NewLapSolverND(g)
	} else {
		ls, err = cholesky.NewLapSolver(g)
	}
	if err != nil {
		t.Fatal(err)
	}
	return ls
}

// assertSolversMatch solves a fixed right-hand side through ls and through
// a from-scratch factorization of g and requires agreement to tol.
func assertSolversMatch(t *testing.T, ls *cholesky.LapSolver, g *graph.Graph, tol float64) {
	t.Helper()
	fresh, err := cholesky.NewLapSolver(g)
	if err != nil {
		t.Fatal(err)
	}
	n := g.N()
	b := make([]float64, n)
	rng := vecmath.NewRNG(99)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x, y := make([]float64, n), make([]float64, n)
	ls.Solve(x, b)
	fresh.Solve(y, b)
	if d := relDiff(x, y); d > tol {
		t.Fatalf("updated solver differs from from-scratch by %g (tol %g)", d, tol)
	}
}

// TestApplyEdgeStreamMatchesFromScratch is the randomized property suite of
// the issue: across the grid/SBM/barbell families, streams of reweights,
// deletions and re-insertions folded into the factor via ApplyEdge must
// keep solves within 1e-10 of a from-scratch NewLapSolver of the evolved
// graph — for both the min-degree and the nested-dissection ordering.
func TestApplyEdgeStreamMatchesFromScratch(t *testing.T) {
	for _, tc := range testkit.Cases() {
		for _, nd := range []bool{false, true} {
			name := tc.Name + "/mindeg"
			if nd {
				name = tc.Name + "/nd"
			}
			t.Run(name, func(t *testing.T) {
				g, err := tc.Build(42)
				if err != nil {
					t.Fatal(err)
				}
				ls := newSolver(t, g, nd)
				rng := vecmath.NewRNG(1234)
				// Live edge weights; 0 marks a structurally-present edge
				// whose weight was downdated away (deleted).
				w := make(map[[2]int]float64, g.M())
				var keys [][2]int
				for _, e := range g.Edges() {
					k := [2]int{e.U, e.V}
					w[k] = e.W
					keys = append(keys, k)
				}
				orig := make(map[[2]int]float64, len(w))
				for k, v := range w {
					orig[k] = v
				}
				currentGraph := func() (*graph.Graph, error) {
					var edges []graph.Edge
					for _, k := range keys {
						if w[k] > 0 {
							edges = append(edges, graph.Edge{U: k[0], V: k[1], W: w[k]})
						}
					}
					return graph.New(g.N(), edges)
				}
				applied := 0
				for batch := 0; batch < 12; batch++ {
					for op := 0; op < 8; op++ {
						k := keys[rng.Intn(len(keys))]
						cur := w[k]
						var dw float64
						if cur == 0 {
							dw = orig[k] // re-insert a deleted edge
						} else {
							switch rng.Intn(4) {
							case 0:
								dw = -cur // delete
							case 1:
								dw = -0.5 * cur
							default:
								dw = (0.25 + rng.Float64()) * cur
							}
						}
						// Keep the evolved graph connected so the
						// from-scratch reference exists; a disconnecting
						// delete is covered by the singular-rejection test.
						if cur+dw <= 0 {
							w[k] = 0
							g2, err := currentGraph()
							w[k] = cur
							if err != nil {
								continue
							}
							if g2.RequireConnected() != nil {
								continue
							}
						}
						if err := ls.ApplyEdge(k[0], k[1], dw); err != nil {
							t.Fatalf("batch %d op %d ApplyEdge(%v, %g): %v", batch, op, k, dw, err)
						}
						w[k] = cur + dw
						applied++
					}
					g2, err := currentGraph()
					if err != nil {
						t.Fatal(err)
					}
					assertSolversMatch(t, ls, g2, 1e-10)
				}
				if applied < 50 {
					t.Fatalf("stream too short: only %d updates applied", applied)
				}
			})
		}
	}
}

// TestNDOrderIsPermutation sanity-checks the nested-dissection order and
// that ND-ordered solves agree with min-degree solves.
func TestNDOrderIsPermutation(t *testing.T) {
	for _, tc := range testkit.Cases() {
		t.Run(tc.Name, func(t *testing.T) {
			g, err := tc.Build(7)
			if err != nil {
				t.Fatal(err)
			}
			perm := cholesky.NDOrder(g)
			if len(perm) != g.N()-1 {
				t.Fatalf("NDOrder length %d, want %d", len(perm), g.N()-1)
			}
			seen := make([]bool, len(perm))
			for _, v := range perm {
				if v < 0 || v >= len(perm) || seen[v] {
					t.Fatalf("NDOrder is not a permutation at %d", v)
				}
				seen[v] = true
			}
			nd := newSolver(t, g, true)
			assertSolversMatch(t, nd, g, 1e-10)
		})
	}
}
