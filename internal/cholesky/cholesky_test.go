package cholesky

import (
	"errors"
	"math"
	"sync"
	"testing"
	"testing/quick"

	"graphspar/internal/gen"
	"graphspar/internal/graph"
	"graphspar/internal/sparse"
	"graphspar/internal/vecmath"
)

// spd3 returns a small SPD matrix.
func spd3() *sparse.CSR {
	b := sparse.NewBuilder(3, 3)
	b.Add(0, 0, 4)
	b.Add(0, 1, -1)
	b.Add(1, 0, -1)
	b.Add(1, 1, 4)
	b.Add(1, 2, -2)
	b.Add(2, 1, -2)
	b.Add(2, 2, 5)
	return b.Build()
}

// randSPD builds a random symmetric diagonally dominant matrix (hence SPD).
func randSPD(n int, rng *vecmath.RNG) *sparse.CSR {
	b := sparse.NewBuilder(n, n)
	diag := make([]float64, n)
	for e := 0; e < 3*n; e++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i == j {
			continue
		}
		v := -rng.Float64()
		b.Add(i, j, v)
		b.Add(j, i, v)
		diag[i] -= v
		diag[j] -= v
	}
	for i := 0; i < n; i++ {
		b.Add(i, i, diag[i]+1) // +1 keeps it strictly dominant
	}
	return b.Build()
}

func TestFactorSolveKnown(t *testing.T) {
	a := spd3()
	f, err := FactorCSR(a, nil)
	if err != nil {
		t.Fatal(err)
	}
	b := []float64{1, 2, 3}
	x := make([]float64, 3)
	f.Solve(x, b)
	// Verify A x = b.
	y := make([]float64, 3)
	a.MulVec(y, x)
	for i := range b {
		if math.Abs(y[i]-b[i]) > 1e-10 {
			t.Fatalf("Ax != b at %d: %v vs %v", i, y[i], b[i])
		}
	}
}

func TestFactorRejectsNonSquare(t *testing.T) {
	b := sparse.NewBuilder(2, 3)
	b.Add(0, 0, 1)
	if _, err := FactorCSR(b.Build(), nil); !errors.Is(err, ErrNotSquare) {
		t.Fatalf("err = %v, want ErrNotSquare", err)
	}
}

func TestFactorRejectsIndefinite(t *testing.T) {
	b := sparse.NewBuilder(2, 2)
	b.Add(0, 0, 1)
	b.Add(0, 1, 5)
	b.Add(1, 0, 5)
	b.Add(1, 1, 1) // eigenvalues 6 and -4
	if _, err := FactorCSR(b.Build(), nil); !errors.Is(err, ErrNotSPD) {
		t.Fatalf("err = %v, want ErrNotSPD", err)
	}
}

func TestFactorSingularLaplacianFails(t *testing.T) {
	g, _ := gen.Path(4)
	if _, err := FactorCSR(g.Laplacian(), nil); !errors.Is(err, ErrNotSPD) {
		t.Fatalf("singular Laplacian must fail: %v", err)
	}
}

func TestFactorWithPermutation(t *testing.T) {
	a := spd3()
	perm := []int{2, 0, 1}
	f, err := FactorCSR(a, perm)
	if err != nil {
		t.Fatal(err)
	}
	b := []float64{-1, 0.5, 2}
	x := make([]float64, 3)
	f.Solve(x, b)
	y := make([]float64, 3)
	a.MulVec(y, x)
	for i := range b {
		if math.Abs(y[i]-b[i]) > 1e-10 {
			t.Fatalf("permuted solve wrong at %d", i)
		}
	}
}

func TestLLTEqualsPAP(t *testing.T) {
	rng := vecmath.NewRNG(5)
	a := randSPD(12, rng)
	perm := RCM(a)
	f, err := FactorCSR(a, perm)
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild L as CSR and compute L·Lᵀ.
	lb := sparse.NewBuilder(f.n, f.n)
	for j := 0; j < f.n; j++ {
		for p := f.colPtr[j]; p < f.colPtr[j+1]; p++ {
			lb.Add(f.rowIdx[p], j, f.val[p])
		}
	}
	l := lb.Build()
	llt, err := sparse.Mul(l, l.Transpose())
	if err != nil {
		t.Fatal(err)
	}
	pap, err := a.Permute(perm)
	if err != nil {
		t.Fatal(err)
	}
	d, err := sparse.FrobeniusDiff(llt, pap)
	if err != nil {
		t.Fatal(err)
	}
	if d > 1e-9 {
		t.Fatalf("||LLᵀ - PAPᵀ||_F = %v", d)
	}
}

func TestRCMReducesBandwidth(t *testing.T) {
	// A "arrow" pattern has terrible natural ordering; RCM should do at
	// least as well as natural on a grid.
	g, _ := gen.Grid2D(15, 15, gen.UnitWeights, 1)
	lap := g.Laplacian()
	perm := RCM(lap)
	if len(perm) != lap.Rows {
		t.Fatalf("perm length %d", len(perm))
	}
	seen := make([]bool, len(perm))
	for _, v := range perm {
		if v < 0 || v >= len(perm) || seen[v] {
			t.Fatalf("perm is not a permutation at %d", v)
		}
		seen[v] = true
	}
	bw := func(m *sparse.CSR) int {
		maxBW := 0
		for i := 0; i < m.Rows; i++ {
			for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
				if d := i - m.ColIdx[p]; d > maxBW {
					maxBW = d
				}
				if d := m.ColIdx[p] - i; d > maxBW {
					maxBW = d
				}
			}
		}
		return maxBW
	}
	pm, err := lap.Permute(perm)
	if err != nil {
		t.Fatal(err)
	}
	if bw(pm) > bw(lap) {
		t.Fatalf("RCM bandwidth %d worse than natural %d", bw(pm), bw(lap))
	}
}

func TestRCMOrderingShrinksFill(t *testing.T) {
	g, _ := gen.Grid2D(20, 20, gen.UnitWeights, 1)
	ls, err := NewLapSolver(g)
	if err != nil {
		t.Fatal(err)
	}
	// Natural-order factor of the same reduced matrix for comparison.
	n := g.N()
	b := sparse.NewBuilder(n-1, n-1)
	deg := g.WeightedDegrees()
	for i := 0; i < n-1; i++ {
		b.Add(i, i, deg[i])
	}
	for _, e := range g.Edges() {
		if e.U != n-1 && e.V != n-1 {
			b.Add(e.U, e.V, -e.W)
			b.Add(e.V, e.U, -e.W)
		}
	}
	f, err := FactorCSR(b.Build(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Grid natural order is already banded, so just require RCM not to
	// blow up fill by more than 2x.
	if ls.FactorNNZ() > 2*f.NNZ() {
		t.Fatalf("RCM fill %d vs natural %d", ls.FactorNNZ(), f.NNZ())
	}
}

func TestLapSolverSolvesPseudoinverse(t *testing.T) {
	g, err := gen.Grid2D(8, 9, gen.UniformWeights, 3)
	if err != nil {
		t.Fatal(err)
	}
	ls, err := NewLapSolver(g)
	if err != nil {
		t.Fatal(err)
	}
	n := g.N()
	rng := vecmath.NewRNG(4)
	b := make([]float64, n)
	rng.FillNormal(b)
	vecmath.Deflate(b)
	x := make([]float64, n)
	ls.Solve(x, b)
	// L x = b and mean(x) = 0.
	y := make([]float64, n)
	g.LapMulVec(y, x)
	for i := range b {
		if math.Abs(y[i]-b[i]) > 1e-8 {
			t.Fatalf("Lx != b at %d: %v vs %v", i, y[i], b[i])
		}
	}
	if m := vecmath.Mean(x); math.Abs(m) > 1e-10 {
		t.Fatalf("mean(x) = %v", m)
	}
}

func TestLapSolverProjectsRHS(t *testing.T) {
	g, _ := gen.Path(5)
	ls, err := NewLapSolver(g)
	if err != nil {
		t.Fatal(err)
	}
	b := []float64{1, 1, 1, 1, 1} // pure null-space component
	x := make([]float64, 5)
	ls.Solve(x, b)
	for i, v := range x {
		if math.Abs(v) > 1e-12 {
			t.Fatalf("L⁺(1) should be 0, got x[%d]=%v", i, v)
		}
	}
}

func TestLapSolverRejectsDisconnected(t *testing.T) {
	g, _ := graph.New(4, []graph.Edge{{U: 0, V: 1, W: 1}, {U: 2, V: 3, W: 1}})
	if _, err := NewLapSolver(g); err == nil {
		t.Fatal("expected error for disconnected graph")
	}
}

func TestLapSolverSingleVertex(t *testing.T) {
	g, _ := graph.New(1, nil)
	ls, err := NewLapSolver(g)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{99}
	ls.Solve(x, []float64{5})
	if x[0] != 0 {
		t.Fatalf("single-vertex solve = %v, want 0", x[0])
	}
	if ls.FactorNNZ() != 0 {
		t.Fatal("single vertex has no factor")
	}
}

// Property: Solve inverts random SDD matrices.
func TestQuickFactorSolve(t *testing.T) {
	f := func(seed uint64) bool {
		rng := vecmath.NewRNG(seed)
		n := 2 + rng.Intn(30)
		a := randSPD(n, rng)
		fac, err := FactorCSR(a, RCM(a))
		if err != nil {
			return false
		}
		b := make([]float64, n)
		rng.FillNormal(b)
		x := make([]float64, n)
		fac.Solve(x, b)
		y := make([]float64, n)
		a.MulVec(y, x)
		for i := range b {
			if math.Abs(y[i]-b[i]) > 1e-7*(1+math.Abs(b[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: LapSolver agrees with the tree solver on spanning trees.
func TestQuickLapSolverVsTreeSolve(t *testing.T) {
	f := func(seed uint64) bool {
		rng := vecmath.NewRNG(seed)
		n := 2 + rng.Intn(30)
		edges := make([]graph.Edge, 0, n-1)
		for v := 1; v < n; v++ {
			edges = append(edges, graph.Edge{U: rng.Intn(v), V: v, W: 0.5 + rng.Float64()})
		}
		g, err := graph.New(n, edges)
		if err != nil {
			return false
		}
		ls, err := NewLapSolver(g)
		if err != nil {
			return false
		}
		b := make([]float64, n)
		rng.FillNormal(b)
		vecmath.Deflate(b)
		x := make([]float64, n)
		ls.Solve(x, b)
		y := make([]float64, n)
		g.LapMulVec(y, x)
		for i := range b {
			if math.Abs(y[i]-b[i]) > 1e-7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkLapSolverFactorGrid(b *testing.B) {
	g, err := gen.Grid2D(60, 60, gen.UniformWeights, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewLapSolver(g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLapSolverSolveGrid(b *testing.B) {
	g, err := gen.Grid2D(60, 60, gen.UniformWeights, 1)
	if err != nil {
		b.Fatal(err)
	}
	ls, err := NewLapSolver(g)
	if err != nil {
		b.Fatal(err)
	}
	rng := vecmath.NewRNG(2)
	rhs := make([]float64, g.N())
	rng.FillNormal(rhs)
	vecmath.Deflate(rhs)
	x := make([]float64, g.N())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ls.Solve(x, rhs)
	}
}

// TestLapSolverSessions: sessions share the factorization but solve
// independently — concurrent sessions must reproduce the sequential
// solutions exactly.
func TestLapSolverSessions(t *testing.T) {
	g, err := gen.Grid2D(6, 4, gen.UniformWeights, 9)
	if err != nil {
		t.Fatal(err)
	}
	ls, err := NewLapSolver(g)
	if err != nil {
		t.Fatal(err)
	}
	n := g.N()
	rhs := make([][]float64, 8)
	want := make([][]float64, len(rhs))
	for k := range rhs {
		rhs[k] = make([]float64, n)
		for i := range rhs[k] {
			rhs[k][i] = float64((i+k)%5) - 2
		}
		want[k] = make([]float64, n)
		ls.Solve(want[k], rhs[k])
	}
	var wg sync.WaitGroup
	got := make([][]float64, len(rhs))
	for k := range rhs {
		wg.Add(1)
		go func(k int, s *LapSolver) {
			defer wg.Done()
			got[k] = make([]float64, n)
			s.Solve(got[k], rhs[k])
		}(k, ls.Session())
	}
	wg.Wait()
	for k := range rhs {
		for i := range got[k] {
			if got[k][i] != want[k][i] {
				t.Fatalf("session solve %d differs at %d: %v != %v", k, i, got[k][i], want[k][i])
			}
		}
	}
}
