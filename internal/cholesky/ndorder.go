package cholesky

import (
	"graphspar/internal/graph"
)

// NDOrder computes a nested-dissection elimination order for g's reduced
// (grounded) system: a BFS spanning forest of the n-1 reduced vertices is
// decomposed recursively at centroids, each centroid eliminated after the
// components its removal leaves. Every recursion level at least halves the
// component, so the decomposition — and with it the elimination tree of a
// near-tree matrix factored in this order — has O(log n) height. That
// height is the path every rank-1 Update walks: minimum degree would give
// less fill on sparsifier Laplacians but elimination trees as deep as the
// backbone diameter, turning O(fill)-local updates into O(√n) walks on
// grids. Returns perm with perm[new] = old over the reduced indices.
func NDOrder(g *graph.Graph) []int {
	n := g.N() - 1 // ground = vertex n is dropped from the reduced system
	if n <= 0 {
		return nil
	}

	// BFS spanning forest of the reduced vertex set. Off-tree edges are
	// ignored here; they only add fill on top of whatever the tree order
	// produces, and sparsifiers carry few of them by construction.
	treeParent := make([]int, n)
	for i := range treeParent {
		treeParent[i] = -2 // unvisited
	}
	var roots []int
	q := make([]int, 0, n)
	for s := 0; s < n; s++ {
		if treeParent[s] != -2 {
			continue
		}
		treeParent[s] = -1
		roots = append(roots, s)
		q = append(q[:0], s)
		for qi := 0; qi < len(q); qi++ {
			u := q[qi]
			g.Neighbors(u, func(v int, _ float64, _ int) bool {
				if v < n && treeParent[v] == -2 {
					treeParent[v] = u
					q = append(q, v)
				}
				return true
			})
		}
	}

	// Forest adjacency in CSR form.
	deg := make([]int, n)
	for v := 0; v < n; v++ {
		if p := treeParent[v]; p >= 0 {
			deg[v]++
			deg[p]++
		}
	}
	ptr := make([]int, n+1)
	for i := 0; i < n; i++ {
		ptr[i+1] = ptr[i] + deg[i]
	}
	adj := make([]int, ptr[n])
	next := append([]int(nil), ptr[:n]...)
	for v := 0; v < n; v++ {
		if p := treeParent[v]; p >= 0 {
			adj[next[v]] = p
			next[v]++
			adj[next[p]] = v
			next[p]++
		}
	}

	removed := make([]bool, n)
	size := make([]int, n)
	par := make([]int, n)
	seq := make([]int, 0, n)
	order := make([]int, 0, n)

	// compSize fills size/par for the live component containing root via an
	// iterative DFS and returns the component's vertex count.
	compSize := func(root int) int {
		seq = append(seq[:0], root)
		par[root] = -1
		for qi := 0; qi < len(seq); qi++ {
			v := seq[qi]
			size[v] = 1
			for k := ptr[v]; k < ptr[v+1]; k++ {
				u := adj[k]
				if u != par[v] && !removed[u] {
					par[u] = v
					seq = append(seq, u)
				}
			}
		}
		for i := len(seq) - 1; i > 0; i-- {
			size[par[seq[i]]] += size[seq[i]]
		}
		return len(seq)
	}

	var decompose func(root int)
	decompose = func(root int) {
		total := compSize(root)
		// Walk toward the heavy side until no component past c exceeds half.
		c := root
		for {
			heavy := -1
			for k := ptr[c]; k < ptr[c+1]; k++ {
				u := adj[k]
				if u != par[c] && !removed[u] && size[u]*2 > total {
					heavy = u
					break
				}
			}
			if heavy == -1 {
				break
			}
			c = heavy
		}
		removed[c] = true
		for k := ptr[c]; k < ptr[c+1]; k++ {
			if u := adj[k]; !removed[u] {
				decompose(u)
			}
		}
		order = append(order, c)
	}
	for _, r := range roots {
		decompose(r)
	}
	return order
}

// NewLapSolverND grounds the last vertex of g and factors with the
// nested-dissection order of NDOrder instead of minimum degree. The
// dynamic maintainer builds its solvers this way so that the etree paths
// ApplyEdge walks stay logarithmic in n; one-shot callers that never
// update the factor keep the lower-fill MinDegree of NewLapSolver.
func NewLapSolverND(g *graph.Graph) (*LapSolver, error) {
	if err := g.RequireConnected(); err != nil {
		return nil, err
	}
	if g.N() == 1 {
		return &LapSolver{n: 1, ground: 0}, nil
	}
	return newLapSolverWS(g, NDOrder(g), nil)
}
