package cholesky

import "sync"

// Workspace pools the per-factorization scratch FactorCSR otherwise
// allocates fresh on every call: the ereach marker/stack arrays, the
// symbolic column counts, and the dense row accumulator. The dynamic
// maintainer and the sparsifier's inner solver refactor the same-sized
// reduced Laplacian over and over; drawing scratch from a Workspace
// makes those rebuilds allocation-free apart from the factor itself.
//
// A Workspace is safe for concurrent use (it is a pair of sync.Pools)
// and a nil *Workspace is valid everywhere one is accepted — every
// getter falls back to a fresh allocation, reproducing the un-pooled
// behavior exactly. Pooled slices come back with stale contents;
// callers must initialize whatever they read before writing (FactorCSRWS
// zeroes the accumulator and column counts explicitly, and fills the
// marker array with -1 as the algorithm already required).
type Workspace struct {
	ints sync.Pool // *[]int
	vecs sync.Pool // *[]float64
}

// NewWorkspace returns an empty workspace. The zero value is also ready
// to use; the constructor exists so callers outside the package can hold
// one behind a pointer without importing sync themselves.
func NewWorkspace() *Workspace { return &Workspace{} }

// getInts returns a length-n int slice with arbitrary contents.
func (ws *Workspace) getInts(n int) []int {
	if ws != nil {
		if p, _ := ws.ints.Get().(*[]int); p != nil && cap(*p) >= n {
			return (*p)[:n]
		}
	}
	return make([]int, n)
}

// putInts returns a slice obtained from getInts to the pool.
func (ws *Workspace) putInts(s []int) {
	if ws == nil || cap(s) == 0 {
		return
	}
	ws.ints.Put(&s)
}

// getVec returns a length-n float64 slice with arbitrary contents.
func (ws *Workspace) getVec(n int) []float64 {
	if ws != nil {
		if p, _ := ws.vecs.Get().(*[]float64); p != nil && cap(*p) >= n {
			return (*p)[:n]
		}
	}
	return make([]float64, n)
}

// putVec returns a slice obtained from getVec to the pool.
func (ws *Workspace) putVec(s []float64) {
	if ws == nil || cap(s) == 0 {
		return
	}
	ws.vecs.Put(&s)
}
