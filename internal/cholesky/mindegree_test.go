package cholesky

import (
	"math"
	"testing"
	"testing/quick"

	"graphspar/internal/gen"
	"graphspar/internal/lsst"
	"graphspar/internal/sparse"
	"graphspar/internal/vecmath"
)

func TestMinDegreeIsPermutation(t *testing.T) {
	g, _ := gen.Grid2D(9, 9, gen.UniformWeights, 1)
	lap := g.Laplacian()
	perm := MinDegree(lap)
	if len(perm) != lap.Rows {
		t.Fatalf("perm length %d", len(perm))
	}
	seen := make([]bool, len(perm))
	for _, v := range perm {
		if v < 0 || v >= len(perm) || seen[v] {
			t.Fatalf("not a permutation at %d", v)
		}
		seen[v] = true
	}
}

func TestMinDegreeTreeZeroFill(t *testing.T) {
	// A tree factors with zero fill under minimum degree: factor NNZ =
	// n (diagonal) + n-1 (one entry per edge).
	g, _ := gen.Path(64)
	tr, _, _, err := lsst.Extract(g, lsst.MaxWeight, 1)
	if err != nil {
		t.Fatal(err)
	}
	ls, err := NewLapSolver(tr.Graph())
	if err != nil {
		t.Fatal(err)
	}
	n := g.N() - 1 // grounded dimension
	maxNNZ := n + (n - 1)
	if ls.FactorNNZ() > maxNNZ {
		t.Fatalf("tree factor has fill: %d > %d", ls.FactorNNZ(), maxNNZ)
	}
}

func TestMinDegreeBeatsRCMOnNearTree(t *testing.T) {
	// Spanning tree + a few random off-tree edges: MD fill ≪ RCM fill.
	g, err := gen.Grid2D(24, 24, gen.UniformWeights, 3)
	if err != nil {
		t.Fatal(err)
	}
	tr, treeIDs, offIDs, err := lsst.Extract(g, lsst.MaxWeight, 1)
	if err != nil {
		t.Fatal(err)
	}
	_ = tr
	keep := append([]int(nil), treeIDs...)
	keep = append(keep, offIDs[:20]...)
	p, err := g.SubgraphEdges(keep)
	if err != nil {
		t.Fatal(err)
	}
	// Build the grounded reduced matrix both ways.
	n := p.N()
	b := sparse.NewBuilder(n-1, n-1)
	deg := p.WeightedDegrees()
	for i := 0; i < n-1; i++ {
		b.Add(i, i, deg[i])
	}
	for _, e := range p.Edges() {
		if e.U != n-1 && e.V != n-1 {
			b.Add(e.U, e.V, -e.W)
			b.Add(e.V, e.U, -e.W)
		}
	}
	red := b.Build()
	fMD, err := FactorCSR(red, MinDegree(red))
	if err != nil {
		t.Fatal(err)
	}
	fRCM, err := FactorCSR(red, RCM(red))
	if err != nil {
		t.Fatal(err)
	}
	if fMD.NNZ() >= fRCM.NNZ() {
		t.Fatalf("MD fill %d should beat RCM fill %d on near-trees", fMD.NNZ(), fRCM.NNZ())
	}
}

// Property: factorization with MinDegree ordering still solves correctly.
func TestQuickMinDegreeSolves(t *testing.T) {
	f := func(seed uint64) bool {
		rng := vecmath.NewRNG(seed)
		n := 2 + rng.Intn(25)
		a := randSPD(n, rng)
		fac, err := FactorCSR(a, MinDegree(a))
		if err != nil {
			return false
		}
		b := make([]float64, n)
		rng.FillNormal(b)
		x := make([]float64, n)
		fac.Solve(x, b)
		y := make([]float64, n)
		a.MulVec(y, x)
		for i := range b {
			if math.Abs(y[i]-b[i]) > 1e-7*(1+math.Abs(b[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestFactorSolveNoAllocSteadyState(t *testing.T) {
	// After the first call warms the work buffer, Solve must not allocate.
	rng := vecmath.NewRNG(9)
	a := randSPD(50, rng)
	f, err := FactorCSR(a, MinDegree(a))
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, 50)
	x := make([]float64, 50)
	rng.FillNormal(b)
	f.Solve(x, b) // warm-up
	allocs := testing.AllocsPerRun(20, func() { f.Solve(x, b) })
	if allocs > 0 {
		t.Fatalf("Solve allocates %v times per call", allocs)
	}
}
