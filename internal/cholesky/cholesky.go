// Package cholesky implements a sparse Cholesky (LLᵀ) factorization in the
// CSparse style — elimination tree, two-pass symbolic analysis via ereach,
// up-looking numeric factorization — plus reverse Cuthill–McKee ordering
// and a grounded-Laplacian solver. It stands in for the CHOLMOD direct
// solver the paper uses as the Table 3 baseline, and factors ultra-sparse
// sparsifier Laplacians as PCG preconditioners (Table 2).
package cholesky

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"graphspar/internal/graph"
	"graphspar/internal/sparse"
	"graphspar/internal/vecmath"
)

// Errors returned by the factorization.
var (
	ErrNotSPD    = errors.New("cholesky: matrix is not positive definite")
	ErrNotSquare = errors.New("cholesky: matrix is not square")
)

// Factor is a sparse lower-triangular Cholesky factor stored in CSC
// (column-major) form, together with the symmetric permutation applied
// before factorization: P A Pᵀ = L Lᵀ.
type Factor struct {
	n      int
	colPtr []int
	rowIdx []int
	val    []float64
	perm   []int // perm[new] = old
	inv    []int // inv[old] = new
	parent []int // elimination tree of the permuted matrix
	work   []float64
	upWork []float64 // dense scatter workspace for rank-1 updates
}

// NNZ returns the number of stored entries in L (the factor's memory
// footprint, reported as M_D in the Table 3 reproduction).
func (f *Factor) NNZ() int { return len(f.val) }

// Session returns a view of the factor that shares the (immutable)
// numeric factorization but owns a private work buffer, so concurrent
// goroutines can Solve through separate sessions without copying L.
func (f *Factor) Session() *Factor {
	s := *f
	s.work = nil
	s.upWork = nil
	return &s
}

// N returns the dimension.
func (f *Factor) N() int { return f.n }

// etree computes the elimination tree of the (full, symmetric) CSR matrix.
func etree(a *sparse.CSR) []int {
	n := a.Rows
	parent := make([]int, n)
	ancestor := make([]int, n)
	for k := 0; k < n; k++ {
		parent[k] = -1
		ancestor[k] = -1
		for p := a.RowPtr[k]; p < a.RowPtr[k+1]; p++ {
			i := a.ColIdx[p]
			for i != -1 && i < k {
				next := ancestor[i]
				ancestor[i] = k
				if next == -1 {
					parent[i] = k
					break
				}
				i = next
			}
		}
	}
	return parent
}

// ereach computes the nonzero pattern of row k of L as the union of etree
// paths from the below-diagonal entries of row k of A up to (excluding) k.
// The pattern is written to s[top:n] in topological (ascending-depth)
// order and top is returned. w is a marker workspace with w[k] set by the
// caller convention used here (w[v] == k means visited for row k).
func ereach(a *sparse.CSR, k int, parent, s, w, stack []int) int {
	n := a.Rows
	top := n
	w[k] = k
	for p := a.RowPtr[k]; p < a.RowPtr[k+1]; p++ {
		i := a.ColIdx[p]
		if i >= k {
			continue
		}
		depth := 0
		for ; w[i] != k; i = parent[i] {
			stack[depth] = i
			depth++
			w[i] = k
		}
		for depth > 0 {
			depth--
			top--
			s[top] = stack[depth]
		}
	}
	return top
}

// FactorCSR factors the symmetric positive definite matrix A (full
// symmetric CSR storage, both triangles present) with the given symmetric
// permutation (perm[new] = old). Passing nil perm uses the identity.
func FactorCSR(a *sparse.CSR, perm []int) (*Factor, error) {
	return FactorCSRWS(a, perm, nil)
}

// FactorCSRWS is FactorCSR with the per-factorization scratch — the
// ereach marker, pattern and stack arrays, the symbolic column counts,
// the dense row accumulator and the column write cursors — drawn from ws
// instead of the heap. Only scratch is pooled; everything retained by
// the returned Factor (column pointers, indices, values, permutations,
// the elimination tree) is always freshly allocated. A nil ws behaves
// exactly like FactorCSR.
func FactorCSRWS(a *sparse.CSR, perm []int, ws *Workspace) (*Factor, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("%w: %dx%d", ErrNotSquare, a.Rows, a.Cols)
	}
	n := a.Rows
	if perm == nil {
		perm = make([]int, n)
		for i := range perm {
			perm[i] = i
		}
	}
	ap, err := a.Permute(perm)
	if err != nil {
		return nil, err
	}
	inv := make([]int, n)
	for newIdx, oldIdx := range perm {
		inv[oldIdx] = newIdx
	}

	parent := etree(ap)
	s := ws.getInts(n)
	defer ws.putInts(s)
	w := ws.getInts(n)
	defer ws.putInts(w)
	stack := ws.getInts(n)
	defer ws.putInts(stack)
	for i := range w {
		w[i] = -1
	}

	// Symbolic pass: count entries per column of L. Row k contributes one
	// entry to every column in its ereach pattern, plus its own diagonal.
	colCount := ws.getInts(n)
	defer ws.putInts(colCount)
	for i := range colCount {
		colCount[i] = 0
	}
	for k := 0; k < n; k++ {
		top := ereach(ap, k, parent, s, w, stack)
		for t := top; t < n; t++ {
			colCount[s[t]]++
		}
		colCount[k]++ // diagonal
	}
	colPtr := make([]int, n+1)
	for i := 0; i < n; i++ {
		colPtr[i+1] = colPtr[i] + colCount[i]
	}
	nnz := colPtr[n]
	f := &Factor{
		n:      n,
		colPtr: colPtr,
		rowIdx: make([]int, nnz),
		val:    make([]float64, nnz),
		perm:   append([]int(nil), perm...),
		inv:    inv,
		parent: parent,
	}

	// Numeric up-looking pass.
	for i := range w {
		w[i] = -1
	}
	// Dense accumulator for row k. The algorithm maintains the invariant
	// that every touched position is reset to zero as its pattern row is
	// consumed, but a pooled slice (or an earlier factorization that bailed
	// out mid-row on ErrNotSPD) starts dirty, so zero it explicitly.
	x := ws.getVec(n)
	defer ws.putVec(x)
	for i := range x {
		x[i] = 0
	}
	colNext := ws.getInts(n) // next free slot per column
	defer ws.putInts(colNext)
	// Diagonal entries go in first; colNext starts just past them.
	for j := 0; j < n; j++ {
		colNext[j] = colPtr[j] + 1
	}
	for k := 0; k < n; k++ {
		top := ereach(ap, k, parent, s, w, stack)
		// Scatter row k of A (entries with col <= k).
		var d float64
		for p := ap.RowPtr[k]; p < ap.RowPtr[k+1]; p++ {
			j := ap.ColIdx[p]
			if j < k {
				x[j] = ap.Val[p]
			} else if j == k {
				d = ap.Val[p]
			}
		}
		for t := top; t < n; t++ {
			i := s[t]
			lii := f.val[f.colPtr[i]] // diagonal of column i
			lki := x[i] / lii
			x[i] = 0
			// Update the accumulator with column i's existing entries.
			for p := f.colPtr[i] + 1; p < colNext[i]; p++ {
				x[f.rowIdx[p]] -= f.val[p] * lki
			}
			d -= lki * lki
			f.rowIdx[colNext[i]] = k
			f.val[colNext[i]] = lki
			colNext[i]++
		}
		if d <= 0 || math.IsNaN(d) {
			return nil, fmt.Errorf("%w: pivot %d is %v", ErrNotSPD, k, d)
		}
		f.rowIdx[f.colPtr[k]] = k
		f.val[f.colPtr[k]] = math.Sqrt(d)
	}
	return f, nil
}

// Solve solves A x = b using the factorization (x and b may alias).
// Solve reuses an internal work buffer, so a Factor must not be shared by
// concurrent solves.
func (f *Factor) Solve(x, b []float64) {
	if len(x) != f.n || len(b) != f.n {
		panic("cholesky: Solve dimension mismatch")
	}
	if f.work == nil {
		f.work = make([]float64, f.n)
	}
	// y = P b
	y := f.work
	for newIdx, oldIdx := range f.perm {
		y[newIdx] = b[oldIdx]
	}
	// Forward solve L z = y (CSC columns, in place on y).
	for j := 0; j < f.n; j++ {
		p0 := f.colPtr[j]
		y[j] /= f.val[p0]
		yj := y[j]
		for p := p0 + 1; p < f.colPtr[j+1]; p++ {
			y[f.rowIdx[p]] -= f.val[p] * yj
		}
	}
	// Backward solve Lᵀ w = z.
	for j := f.n - 1; j >= 0; j-- {
		p0 := f.colPtr[j]
		s := y[j]
		for p := p0 + 1; p < f.colPtr[j+1]; p++ {
			s -= f.val[p] * y[f.rowIdx[p]]
		}
		y[j] = s / f.val[p0]
	}
	// x = Pᵀ w
	for newIdx, oldIdx := range f.perm {
		x[oldIdx] = y[newIdx]
	}
}

// RCM computes a reverse Cuthill–McKee ordering of the symmetric matrix's
// graph: BFS from a pseudo-peripheral vertex with degree-sorted neighbor
// expansion, reversed. Returns perm with perm[new] = old. Disconnected
// patterns are handled component by component.
func RCM(a *sparse.CSR) []int {
	n := a.Rows
	deg := make([]int, n)
	for i := 0; i < n; i++ {
		deg[i] = a.RowPtr[i+1] - a.RowPtr[i]
	}
	visited := make([]bool, n)
	order := make([]int, 0, n)
	var queue []int

	bfsLevels := func(start int, mark []int) (last int, depth int) {
		for i := range mark {
			mark[i] = -1
		}
		mark[start] = 0
		q := []int{start}
		last = start
		for len(q) > 0 {
			v := q[0]
			q = q[1:]
			last = v
			depth = mark[v]
			for p := a.RowPtr[v]; p < a.RowPtr[v+1]; p++ {
				u := a.ColIdx[p]
				if u != v && mark[u] == -1 && !visited[u] {
					mark[u] = mark[v] + 1
					q = append(q, u)
				}
			}
		}
		return last, depth
	}

	mark := make([]int, n)
	for s := 0; s < n; s++ {
		if visited[s] {
			continue
		}
		// Pseudo-peripheral start: double BFS.
		start := s
		last, d1 := bfsLevels(start, mark)
		if last2, d2 := bfsLevels(last, mark); d2 > d1 {
			start = last
			_ = last2
		}
		// Cuthill–McKee BFS with degree-sorted expansion.
		visited[start] = true
		queue = append(queue[:0], start)
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			order = append(order, v)
			var nbrs []int
			for p := a.RowPtr[v]; p < a.RowPtr[v+1]; p++ {
				u := a.ColIdx[p]
				if u != v && !visited[u] {
					visited[u] = true
					nbrs = append(nbrs, u)
				}
			}
			sort.Slice(nbrs, func(i, j int) bool { return deg[nbrs[i]] < deg[nbrs[j]] })
			queue = append(queue, nbrs...)
		}
	}
	// Reverse.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order
}

// LapSolver solves connected-graph Laplacian systems L_G x = b directly by
// grounding one vertex (deleting its row and column makes the matrix SPD),
// factoring the reduced matrix with RCM ordering, and restoring a
// zero-mean solution — the pseudoinverse action x = L_G⁺ b.
type LapSolver struct {
	n       int
	ground  int
	factor  *Factor
	perm    []int // elimination order of the reduced system
	reduced []int // reduced index -> original vertex
	rhs     []float64
	sol     []float64
	upIdx   []int     // ApplyEdge scratch
	upVal   []float64 // ApplyEdge scratch
}

// NewLapSolver grounds the last vertex of g, orders with minimum degree
// and factors.
func NewLapSolver(g *graph.Graph) (*LapSolver, error) {
	return newLapSolverWS(g, nil, nil)
}

// NewLapSolverWS is NewLapSolver with the factorization scratch drawn
// from ws. Repeated solver builds over same-sized graphs — the
// sparsifier's per-round inner solver, the dynamic maintainer's
// refactorizations — reuse the marker arrays and the dense accumulator
// instead of reallocating them each build. A nil ws behaves exactly like
// NewLapSolver.
func NewLapSolverWS(g *graph.Graph, ws *Workspace) (*LapSolver, error) {
	return newLapSolverWS(g, nil, ws)
}

// NewLapSolverOrdered factors with a caller-supplied elimination order of
// the reduced (n-1)-vertex system instead of recomputing minimum degree —
// ordering dominates factorization cost on sparsifier-sized graphs, and
// an order computed for a structurally similar graph stays near-optimal.
// The dynamic maintainer reuses the order of its last full build across
// incremental refactorizations. The permutation is validated; a wrong
// length or a non-permutation is an error.
func NewLapSolverOrdered(g *graph.Graph, perm []int) (*LapSolver, error) {
	if err := validatePerm(perm, g.N()-1); err != nil {
		return nil, err
	}
	return newLapSolverWS(g, perm, nil)
}

// NewLapSolverOrderedWS is NewLapSolverOrdered with factorization scratch
// drawn from ws — the dynamic maintainer's refactorization path, which
// rebuilds same-sized factors for the lifetime of a stream session.
func NewLapSolverOrderedWS(g *graph.Graph, perm []int, ws *Workspace) (*LapSolver, error) {
	if err := validatePerm(perm, g.N()-1); err != nil {
		return nil, err
	}
	return newLapSolverWS(g, perm, ws)
}

func validatePerm(perm []int, want int) error {
	if perm == nil {
		return errors.New("cholesky: nil permutation")
	}
	if len(perm) != want {
		return fmt.Errorf("cholesky: permutation length %d, want %d", len(perm), want)
	}
	seen := make([]bool, len(perm))
	for _, v := range perm {
		if v < 0 || v >= len(perm) || seen[v] {
			return errors.New("cholesky: invalid permutation")
		}
		seen[v] = true
	}
	return nil
}

// SymbolicFactorNNZ counts the factor entries the given elimination order
// would produce for g's reduced Laplacian — elimination tree plus ereach
// column counts, no numeric work. The dynamic maintainer calls this to
// test a cached order's fill before paying for (exactly one) numeric
// factorization, instead of factoring twice when the order has gone stale.
func SymbolicFactorNNZ(g *graph.Graph, perm []int) (int, error) {
	n := g.N()
	if n <= 1 {
		return 0, nil
	}
	if err := validatePerm(perm, n-1); err != nil {
		return 0, err
	}
	ap, err := reducedLaplacianCSR(g).Permute(perm)
	if err != nil {
		return 0, err
	}
	rows := n - 1
	parent := etree(ap)
	s := make([]int, rows)
	w := make([]int, rows)
	stack := make([]int, rows)
	for i := range w {
		w[i] = -1
	}
	nnz := 0
	for k := 0; k < rows; k++ {
		top := ereach(ap, k, parent, s, w, stack)
		nnz += rows - top + 1 // path entries plus the diagonal
	}
	return nnz, nil
}

func newLapSolverWS(g *graph.Graph, perm []int, ws *Workspace) (*LapSolver, error) {
	if err := g.RequireConnected(); err != nil {
		return nil, err
	}
	n := g.N()
	if n == 1 {
		return &LapSolver{n: 1, ground: 0}, nil
	}
	red := reducedLaplacianCSR(g)
	// Minimum degree keeps near-tree sparsifier factors nearly fill-free;
	// RCM remains available for callers factoring banded matrices
	// directly via FactorCSR.
	if perm == nil {
		perm = MinDegree(red)
	}
	f, err := FactorCSRWS(red, perm, ws)
	if err != nil {
		return nil, err
	}
	ls := &LapSolver{
		n:      n,
		ground: n - 1,
		factor: f,
		perm:   perm,
		rhs:    make([]float64, n-1),
		sol:    make([]float64, n-1),
	}
	return ls, nil
}

// Ordering returns the elimination order the reduced system was factored
// with (nil for n=1). Callers must not mutate it.
func (ls *LapSolver) Ordering() []int { return ls.perm }

// reducedLaplacianCSR assembles the grounded Laplacian (ground = n-1's
// row and column dropped, diagonals keep the full weighted degree)
// directly into row- and column-sorted CSR in O(n + m), with no triplet
// sort: the edge list is (U,V)-sorted, so each row receives its smaller
// neighbors in ascending order (edges where it is V), then the diagonal,
// then its larger neighbors in ascending order (edges where it is U).
// This is the per-refactorization hot path of the dynamic maintainer.
func reducedLaplacianCSR(g *graph.Graph) *sparse.CSR {
	n := g.N()
	ground := n - 1
	deg := g.WeightedDegrees()
	rows := n - 1
	// Per-row counts: smaller-neighbor entries and total off-diagonals.
	small := make([]int, rows)
	total := make([]int, rows)
	for _, e := range g.Edges() {
		if e.U == ground || e.V == ground {
			continue
		}
		small[e.V]++
		total[e.U]++
		total[e.V]++
	}
	ptr := make([]int, rows+1)
	for i := 0; i < rows; i++ {
		ptr[i+1] = ptr[i] + total[i] + 1 // +1 for the diagonal
	}
	nnz := ptr[rows]
	col := make([]int, nnz)
	val := make([]float64, nnz)
	nextSmall := make([]int, rows)
	nextLarge := make([]int, rows)
	for i := 0; i < rows; i++ {
		nextSmall[i] = ptr[i]
		nextLarge[i] = ptr[i] + small[i] + 1
		d := ptr[i] + small[i]
		col[d] = i
		val[d] = deg[i]
	}
	for _, e := range g.Edges() {
		if e.U == ground || e.V == ground {
			continue
		}
		k := nextSmall[e.V]
		col[k], val[k] = e.U, -e.W
		nextSmall[e.V]++
		k = nextLarge[e.U]
		col[k], val[k] = e.V, -e.W
		nextLarge[e.U]++
	}
	return &sparse.CSR{Rows: rows, Cols: rows, RowPtr: ptr, ColIdx: col, Val: val}
}

// Session returns a solver that shares the receiver's factorization but
// owns private scratch buffers. A LapSolver must not be used by two
// goroutines at once; give each goroutine its own session instead.
func (ls *LapSolver) Session() *LapSolver {
	s := *ls
	if s.factor != nil {
		s.factor = s.factor.Session()
	}
	if ls.n > 1 {
		s.rhs = make([]float64, ls.n-1)
		s.sol = make([]float64, ls.n-1)
	}
	s.upIdx = nil
	s.upVal = nil
	return &s
}

// FactorNNZ returns the number of stored factor entries (0 for n=1).
func (ls *LapSolver) FactorNNZ() int {
	if ls.factor == nil {
		return 0
	}
	return ls.factor.NNZ()
}

// Solve computes x = L_G⁺ b: the right-hand side is projected to zero mean,
// the grounded system is solved, and the result is shifted to zero mean.
// x and b must have length n and may not alias.
func (ls *LapSolver) Solve(x, b []float64) {
	if len(x) != ls.n || len(b) != ls.n {
		panic("cholesky: LapSolver dimension mismatch")
	}
	if ls.n == 1 {
		x[0] = 0
		return
	}
	mean := vecmath.Mean(b)
	for i := 0; i < ls.n-1; i++ {
		ls.rhs[i] = b[i] - mean
	}
	ls.factor.Solve(ls.sol, ls.rhs)
	copy(x[:ls.n-1], ls.sol)
	x[ls.ground] = 0
	vecmath.Deflate(x)
}
