package engine

import (
	"context"
	"fmt"
	"math"
	"sort"

	"graphspar/internal/cholesky"
	"graphspar/internal/core"
	"graphspar/internal/graph"
	"graphspar/internal/lsst"
	"graphspar/internal/obs"
	"graphspar/internal/vecmath"
)

// stitch merges the per-shard sparsifiers and splits the partition's cut
// edges into the connectivity backbone and the re-filter candidates: cut
// edges are scanned heaviest-first (Kruskal on the shard quotient,
// matching the max-weight backbone philosophy — heavy edges have low
// resistance) and the ones joining two components are kept outright; the
// rest go to the global heat filter. The returned kept set spans every
// vertex and is connected because the input is.
func stitch(g *graph.Graph, labels []int, outs []shardOut) (keptIDs, stitchedIDs, candIDs []int) {
	n := g.N()
	uf := lsst.NewUnionFind(n)
	seen := make([]bool, g.M())
	for _, out := range outs {
		for _, id := range out.stats.EdgeIDs {
			if seen[id] {
				continue
			}
			seen[id] = true
			e := g.Edge(id)
			uf.Union(e.U, e.V)
			keptIDs = append(keptIDs, id)
		}
	}
	var cut []int
	for id, e := range g.Edges() {
		if labels[e.U] != labels[e.V] {
			cut = append(cut, id)
		}
	}
	sort.Slice(cut, func(a, b int) bool {
		wa, wb := g.Edge(cut[a]).W, g.Edge(cut[b]).W
		if wa != wb {
			return wa > wb
		}
		return cut[a] < cut[b]
	})
	for _, id := range cut {
		e := g.Edge(id)
		if uf.Union(e.U, e.V) {
			stitchedIDs = append(stitchedIDs, id)
			keptIDs = append(keptIDs, id)
		} else {
			candIDs = append(candIDs, id)
		}
	}
	sort.Ints(candIDs)
	return keptIDs, stitchedIDs, candIDs
}

// refilter runs the global embedding pass(es): estimate the extreme
// generalized eigenvalues of (L_G, L_P) on the stitched graph, and if the
// σ² target is unmet, recover the cut edges whose normalized Joule heat
// beats the similarity-aware threshold (eq. 15) — exactly core's
// per-round filter, applied once at full size. Returns the final
// sparsifier, how many cut edges were recovered, and the λ estimates of
// the last pass.
func refilter(ctx context.Context, g *graph.Graph, keptIDs, candIDs []int, opt Options) (*graph.Graph, int, float64, float64, error) {
	defer obs.StartSpan(ctx, "refilter").End()
	t, r, powerIters, batchFraction := opt.Sparsify.EffectiveEmbed(g.N())
	sigma := opt.Sparsify.SigmaSq
	rng := vecmath.NewRNG(opt.Seed ^ 0x5717c4)

	p, err := g.SubgraphEdges(keptIDs)
	if err != nil {
		return nil, 0, 0, 0, fmt.Errorf("engine: stitched graph: %w", err)
	}
	recovered := 0
	var lmax, lmin float64
	for pass := 0; pass < opt.RefilterRounds; pass++ {
		if err := ctx.Err(); err != nil {
			return nil, 0, 0, 0, err
		}
		solver, err := cholesky.NewLapSolver(p)
		if err != nil {
			return nil, 0, 0, 0, fmt.Errorf("engine: stitched solver: %w", err)
		}
		lmax, err = core.EstimateLambdaMax(g, p, solver, powerIters, rng.Uint64())
		if err != nil {
			return nil, 0, 0, 0, fmt.Errorf("engine: global λmax estimation: %w", err)
		}
		lmin = core.EstimateLambdaMin(g, p)
		if lmax < lmin {
			lmax = lmin
		}
		if lmin <= 0 || lmax/lmin <= sigma || len(candIDs) == 0 {
			break
		}

		heats, maxHeat := core.EmbedOffTreeParallel(g, solver, candIDs, t, r, rng.Uint64(), opt.Workers)
		theta := core.Threshold(sigma, lmin, lmax, t)

		// Rank the passing candidates by heat and add them in capped
		// batches — §3.7's small-portions discipline at full size. A badly
		// cut graph (think SBM split through its blocks) makes the
		// stitched estimate so loose that θσ admits nearly every cut
		// edge; accepting them all at once would densify far past what
		// the target needs.
		type cand struct {
			pos  int
			heat float64
		}
		var passing []cand
		if maxHeat > 0 {
			for i, h := range heats {
				if h/maxHeat >= theta {
					passing = append(passing, cand{i, h})
				}
			}
		}
		sort.Slice(passing, func(a, b int) bool {
			if passing[a].heat != passing[b].heat {
				return passing[a].heat > passing[b].heat
			}
			return passing[a].pos < passing[b].pos
		})
		limit := int(math.Ceil(batchFraction * float64(len(passing))))
		if limit < 1 {
			limit = 1
		}
		if len(passing) == 0 {
			// Estimates say the target is unmet but no candidate beats the
			// threshold: force the hottest cut edge in to keep moving.
			best, bestHeat := -1, -1.0
			for i, h := range heats {
				if h > bestHeat {
					best, bestHeat = i, h
				}
			}
			if best < 0 {
				break
			}
			passing = []cand{{best, bestHeat}}
		}
		if limit > len(passing) {
			limit = len(passing)
		}
		taken := make(map[int]bool, limit)
		for _, c := range passing[:limit] {
			taken[c.pos] = true
			keptIDs = append(keptIDs, candIDs[c.pos])
		}
		recovered += limit
		rest := candIDs[:0:0]
		for i, id := range candIDs {
			if !taken[i] {
				rest = append(rest, id)
			}
		}
		candIDs = rest
		p, err = g.SubgraphEdges(keptIDs)
		if err != nil {
			return nil, 0, 0, 0, fmt.Errorf("engine: densified stitched graph: %w", err)
		}
	}
	return p, recovered, lmax, lmin, nil
}
