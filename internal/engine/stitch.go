package engine

import (
	"context"
	"fmt"
	"sort"

	"graphspar/internal/core"
	"graphspar/internal/graph"
	"graphspar/internal/lsst"
	"graphspar/internal/obs"
)

// stitch merges the per-shard sparsifiers and splits the partition's cut
// edges into the connectivity backbone and the re-filter candidates: cut
// edges are scanned heaviest-first (Kruskal on the shard quotient,
// matching the max-weight backbone philosophy — heavy edges have low
// resistance) and the ones joining two components are kept outright; the
// rest go to the global heat filter. The returned kept set spans every
// vertex and is connected because the input is.
func stitch(g *graph.Graph, labels []int, outs []shardOut) (keptIDs, stitchedIDs, candIDs []int) {
	n := g.N()
	uf := lsst.NewUnionFind(n)
	seen := make([]bool, g.M())
	for _, out := range outs {
		for _, id := range out.stats.EdgeIDs {
			if seen[id] {
				continue
			}
			seen[id] = true
			e := g.Edge(id)
			uf.Union(e.U, e.V)
			keptIDs = append(keptIDs, id)
		}
	}
	var cut []int
	for id, e := range g.Edges() {
		if labels[e.U] != labels[e.V] {
			cut = append(cut, id)
		}
	}
	sort.Slice(cut, func(a, b int) bool {
		wa, wb := g.Edge(cut[a]).W, g.Edge(cut[b]).W
		if wa != wb {
			return wa > wb
		}
		return cut[a] < cut[b]
	})
	for _, id := range cut {
		e := g.Edge(id)
		if uf.Union(e.U, e.V) {
			stitchedIDs = append(stitchedIDs, id)
			keptIDs = append(keptIDs, id)
		} else {
			candIDs = append(candIDs, id)
		}
	}
	sort.Ints(candIDs)
	return keptIDs, stitchedIDs, candIDs
}

// refilter runs the global embedding pass(es): estimate the extreme
// generalized eigenvalues of (L_G, L_P) on the stitched graph, and if the
// σ² target is unmet, recover the cut edges whose normalized Joule heat
// beats the similarity-aware threshold (eq. 15) — core.Refilter applied
// to the partition's cut edges. Returns the final sparsifier, how many
// cut edges were recovered, and the λ estimates of the last pass.
func refilter(ctx context.Context, g *graph.Graph, keptIDs, candIDs []int, opt Options) (*graph.Graph, int, float64, float64, error) {
	defer obs.StartSpan(ctx, "refilter").End()
	p, _, recovered, lmax, lmin, err := core.Refilter(ctx, g, keptIDs, candIDs, opt.Sparsify, opt.RefilterRounds, opt.Workers, opt.Seed^0x5717c4)
	if err != nil {
		if ctx.Err() == nil {
			err = fmt.Errorf("engine: global %w", err)
		}
		return nil, 0, 0, 0, err
	}
	return p, recovered, lmax, lmin, nil
}
