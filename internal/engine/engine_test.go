package engine

import (
	"context"
	"errors"
	"testing"

	"graphspar/internal/core"
	"graphspar/internal/gen"
	"graphspar/internal/graph"
	"graphspar/internal/partition"
)

func gridGraph(t *testing.T, rows, cols int, seed uint64) *graph.Graph {
	t.Helper()
	g, err := gen.Grid2D(rows, cols, gen.UniformWeights, seed)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func sbmGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, _, err := gen.SBM(4, 64, 0.15, 0.02, 7)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// checkStitchInvariants asserts the structural guarantees of a sharded
// result: the sparsifier spans the input, is connected, and contains
// every shard backbone edge.
func checkStitchInvariants(t *testing.T, g *graph.Graph, res *Result) {
	t.Helper()
	if res.Sparsifier.N() != g.N() {
		t.Fatalf("sparsifier has %d vertices, input %d", res.Sparsifier.N(), g.N())
	}
	if !res.Sparsifier.IsConnected() {
		t.Fatal("sharded sparsifier is disconnected")
	}
	if len(res.Labels) != g.N() {
		t.Fatalf("labels length %d != n %d", len(res.Labels), g.N())
	}
	idx := res.Sparsifier.EdgeIndex()
	for _, s := range res.Shards {
		for _, id := range s.EdgeIDs {
			e := g.Edge(id)
			if _, ok := idx[[2]int{e.U, e.V}]; !ok {
				t.Fatalf("shard %d edge %d (%d,%d) missing from stitched sparsifier", s.Shard, id, e.U, e.V)
			}
		}
	}
	// Every kept edge must come from the input with its original weight.
	gidx := g.EdgeIndex()
	for _, e := range res.Sparsifier.Edges() {
		id, ok := gidx[[2]int{e.U, e.V}]
		if !ok {
			t.Fatalf("sparsifier edge (%d,%d) not in input", e.U, e.V)
		}
		if g.Edge(id).W != e.W {
			t.Fatalf("edge (%d,%d) weight changed: %v != %v", e.U, e.V, e.W, g.Edge(id).W)
		}
	}
}

func TestShardedGridInvariants(t *testing.T) {
	g := gridGraph(t, 40, 40, 1)
	const sigma = 80

	single, err := Run(context.Background(), g, Options{
		Shards: 1, Sparsify: core.Options{SigmaSq: sigma}, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := Run(context.Background(), g, Options{
		Shards: 4, Sparsify: core.Options{SigmaSq: sigma}, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	checkStitchInvariants(t, g, sharded)
	if sharded.Parts != 4 {
		t.Errorf("parts = %d, want 4", sharded.Parts)
	}
	if sharded.CutEdges == 0 {
		t.Error("grid partition produced no cut edges")
	}
	if sharded.VerifiedCond <= 0 || single.VerifiedCond <= 0 {
		t.Fatalf("verification missing: sharded=%v single=%v", sharded.VerifiedCond, single.VerifiedCond)
	}
	// The acceptance bar: sharding must stay within a constant factor of
	// the single-shot condition number. Small grids overshoot single-shot
	// (κ ≪ σ²), so "within the requested target" also qualifies.
	if sharded.VerifiedCond > 2*single.VerifiedCond && sharded.VerifiedCond > sigma {
		t.Errorf("sharded κ=%.2f: neither within 2x single-shot κ=%.2f nor within target %v",
			sharded.VerifiedCond, single.VerifiedCond, float64(sigma))
	}
}

func TestShardedSBMInvariants(t *testing.T) {
	g := sbmGraph(t)
	single, err := Run(context.Background(), g, Options{
		Shards: 1, Sparsify: core.Options{SigmaSq: 100}, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := Run(context.Background(), g, Options{
		Shards: 4, Sparsify: core.Options{SigmaSq: 100}, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	checkStitchInvariants(t, g, sharded)
	// A community graph split by BFS has a big cut, which must exercise
	// the heat re-filter rather than the keep-all shortcut, and the
	// filter must actually thin it.
	if sharded.CutEdges == 0 {
		t.Fatal("SBM partition produced no cut edges")
	}
	if sharded.RecoveredCut >= sharded.CutEdges-sharded.StitchedCut {
		t.Errorf("re-filter kept the whole cut (%d of %d): the batched filter should thin it",
			sharded.RecoveredCut, sharded.CutEdges)
	}
	if sharded.VerifiedCond > 2*single.VerifiedCond && !sharded.TargetMet {
		t.Errorf("sharded κ=%.2f vs single κ=%.2f and target unmet", sharded.VerifiedCond, single.VerifiedCond)
	}
}

func TestSingleShotMatchesCore(t *testing.T) {
	g := gridGraph(t, 16, 16, 5)
	want, err := core.Sparsify(g, core.Options{SigmaSq: 100, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(context.Background(), g, Options{
		Shards: 1, Sparsify: core.Options{SigmaSq: 100}, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got.Sparsifier.M() != want.Sparsifier.M() {
		t.Fatalf("edge counts differ: engine %d vs core %d", got.Sparsifier.M(), want.Sparsifier.M())
	}
	idx := want.Sparsifier.EdgeIndex()
	for _, e := range got.Sparsifier.Edges() {
		if _, ok := idx[[2]int{e.U, e.V}]; !ok {
			t.Fatalf("engine kept (%d,%d), core did not", e.U, e.V)
		}
	}
	if got.Parts != 1 || len(got.Shards) != 1 {
		t.Errorf("single-shot shape: parts=%d shards=%d", got.Parts, len(got.Shards))
	}
}

func TestDeterministicAcrossWorkers(t *testing.T) {
	g := gridGraph(t, 24, 24, 2)
	opts := func(workers int) Options {
		return Options{Shards: 4, Workers: workers, Sparsify: core.Options{SigmaSq: 90}, Seed: 11}
	}
	a, err := Run(context.Background(), g, opts(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), g, opts(4))
	if err != nil {
		t.Fatal(err)
	}
	if a.Sparsifier.M() != b.Sparsifier.M() {
		t.Fatalf("worker count changed the result: %d vs %d edges", a.Sparsifier.M(), b.Sparsifier.M())
	}
	ai := a.Sparsifier.EdgeIndex()
	for _, e := range b.Sparsifier.Edges() {
		if _, ok := ai[[2]int{e.U, e.V}]; !ok {
			t.Fatalf("edge (%d,%d) differs between worker counts", e.U, e.V)
		}
	}
}

func TestCancellation(t *testing.T) {
	g := gridGraph(t, 32, 32, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Run(ctx, g, Options{Shards: 4, Sparsify: core.Options{SigmaSq: 50}, Seed: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled ctx: err = %v, want context.Canceled", err)
	}
}

func TestMoreShardsThanUsable(t *testing.T) {
	// A tiny path: most parts degenerate to singletons, which carry no
	// shard work; stitching must still span and connect everything.
	edges := make([]graph.Edge, 7)
	for i := range edges {
		edges[i] = graph.Edge{U: i, V: i + 1, W: 1}
	}
	g, err := graph.New(8, edges)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), g, Options{
		Shards: 8, Sparsify: core.Options{SigmaSq: 10}, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	checkStitchInvariants(t, g, res)
	if res.Sparsifier.M() != g.M() {
		t.Errorf("a tree input must be kept whole: %d of %d edges", res.Sparsifier.M(), g.M())
	}
}

func TestOptionsValidation(t *testing.T) {
	g := gridGraph(t, 8, 8, 1)
	if _, err := Run(context.Background(), g, Options{Shards: 2}); !errors.Is(err, core.ErrBadSigma) {
		t.Errorf("missing σ²: err = %v, want ErrBadSigma", err)
	}
	if _, err := Run(context.Background(), g, Options{Shards: -3, Sparsify: core.Options{SigmaSq: 50}}); !errors.Is(err, ErrBadShards) {
		t.Errorf("negative shards: err = %v, want ErrBadShards", err)
	}
}

func TestExplicitPartitionOptions(t *testing.T) {
	g := gridGraph(t, 20, 20, 4)
	res, err := Run(context.Background(), g, Options{
		Shards:    2,
		Sparsify:  core.Options{SigmaSq: 80},
		Partition: &partition.Options{Method: partition.Direct},
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	checkStitchInvariants(t, g, res)
	if res.Parts != 2 {
		t.Errorf("parts = %d, want 2", res.Parts)
	}
}

// TestRunRejectsDisconnectedGraph is the regression test for the
// connected-graph assumption: a dynamic workload can try to shard a graph
// right after a bridge deletion elsewhere in the stack, and the engine
// must answer with the typed connectivity error rather than panic or
// wedge in the partitioner.
func TestRunRejectsDisconnectedGraph(t *testing.T) {
	two := graph.MustNew(6, []graph.Edge{
		{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 1},
		{U: 3, V: 4, W: 1}, {U: 4, V: 5, W: 1},
	})
	for _, shards := range []int{1, 2} {
		_, err := Run(context.Background(), two, Options{
			Shards:   shards,
			Sparsify: core.Options{SigmaSq: 50},
		})
		if !errors.Is(err, graph.ErrDisconnected) {
			t.Fatalf("shards=%d: err = %v, want graph.ErrDisconnected", shards, err)
		}
	}
}
