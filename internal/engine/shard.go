package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"graphspar/internal/core"
	"graphspar/internal/graph"
)

// shardTask is one unit of shard work: a connected set of vertices (one
// connected component of one part — a part the cut disconnected yields
// several tasks, since core.Sparsify requires connected input). The
// induced subgraph is captured at build time so workers don't rescan the
// input edge list.
type shardTask struct {
	part    int
	sub     *graph.Graph
	mapping []int // sub vertex id → global vertex id
}

// shardOut is one finished task.
type shardOut struct {
	stats ShardStats
}

// buildTasks splits every part into its connected components. Singleton
// components carry no edges and are skipped; the stitching phase
// reconnects their vertices through cut edges.
func buildTasks(g *graph.Graph, labels []int, parts int) ([]shardTask, error) {
	byPart := make([][]int, parts)
	for v, l := range labels {
		byPart[l] = append(byPart[l], v)
	}
	var tasks []shardTask
	for part, verts := range byPart {
		if len(verts) < 2 {
			continue
		}
		sub, mapping, err := g.InducedSubgraph(verts)
		if err != nil {
			return nil, fmt.Errorf("engine: shard %d: %w", part, err)
		}
		comps, count := sub.Components()
		if count == 1 {
			tasks = append(tasks, shardTask{part: part, sub: sub, mapping: mapping})
			continue
		}
		groups := make([][]int, count)
		for i, c := range comps {
			groups[c] = append(groups[c], mapping[i])
		}
		for _, grp := range groups {
			if len(grp) < 2 {
				continue
			}
			csub, cmapping, err := g.InducedSubgraph(grp)
			if err != nil {
				return nil, fmt.Errorf("engine: shard %d component: %w", part, err)
			}
			tasks = append(tasks, shardTask{part: part, sub: csub, mapping: cmapping})
		}
	}
	return tasks, nil
}

// runShards sparsifies every task over a bounded worker pool. The first
// hard error cancels the remaining work; per-shard ErrNoTarget is
// recorded in the stats, not treated as failure.
func runShards(ctx context.Context, g *graph.Graph, tasks []shardTask, opt Options) ([]shardOut, error) {
	edgeIdx := g.EdgeIndex() // read-only, shared across workers

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	workers := opt.Workers
	if workers > len(tasks) {
		workers = len(tasks)
	}
	if workers < 1 {
		workers = 1
	}

	outs := make([]shardOut, len(tasks))
	jobs := make(chan int)
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
			cancel()
		}
		mu.Unlock()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ti := range jobs {
				if runCtx.Err() != nil {
					continue // drain; the pool is shutting down
				}
				out, err := runShard(runCtx, g, edgeIdx, tasks[ti], opt, ti)
				if err != nil {
					fail(err)
					continue
				}
				outs[ti] = out
			}
		}()
	}
	for i := range tasks {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return outs, nil
}

// runShard sparsifies one induced shard and maps the kept edges back to
// global edge ids.
func runShard(ctx context.Context, g *graph.Graph, edgeIdx map[[2]int]int, task shardTask, opt Options, idx int) (shardOut, error) {
	start := time.Now()
	sub, mapping := task.sub, task.mapping
	sopt := opt.Sparsify
	sopt.Seed = shardSeed(opt.Seed, idx)
	res, err := core.SparsifyCtx(ctx, sub, sopt)
	if err != nil && !errors.Is(err, core.ErrNoTarget) {
		return shardOut{}, fmt.Errorf("engine: shard %d (%d vertices): %w", task.part, sub.N(), err)
	}
	ids := make([]int, 0, res.Sparsifier.M())
	for _, e := range res.Sparsifier.Edges() {
		u, v := mapping[e.U], mapping[e.V]
		if u > v {
			u, v = v, u
		}
		id, ok := edgeIdx[[2]int{u, v}]
		if !ok {
			return shardOut{}, fmt.Errorf("engine: shard %d kept edge (%d,%d) that is not in the input", task.part, u, v)
		}
		ids = append(ids, id)
	}
	return shardOut{stats: ShardStats{
		Shard:           task.part,
		Vertices:        sub.N(),
		Edges:           sub.M(),
		Kept:            res.Sparsifier.M(),
		SigmaSqAchieved: res.SigmaSqAchieved,
		TargetMet:       err == nil,
		Rounds:          res.Rounds,
		Duration:        time.Since(start),
		EdgeIDs:         ids,
	}}, nil
}
