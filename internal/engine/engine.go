// Package engine runs similarity-aware sparsification shard-parallel: the
// input is k-way partitioned (partition.RecursiveBisect), each induced
// shard is sparsified concurrently over a bounded worker pool
// (core.SparsifyCtx with a per-shard seed), and the per-shard sparsifiers
// are stitched back together with the partition's cut edges — the few cut
// edges needed for connectivity join the backbone outright, the rest face
// one global Joule-heat embedding pass over the stitched graph so the σ²
// guarantee is re-established end-to-end. The result is independently
// checked with core.VerifySimilarity.
//
// Sharding pays twice: the per-round superlinear costs (fill-reducing
// ordering, factorization) drop to shard size, and shards run on separate
// cores. On small graphs the fixed costs (partitioning, the global
// re-filter pass, verification) dominate — see the README for guidance.
package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"time"

	"graphspar/internal/cholesky"
	"graphspar/internal/core"
	"graphspar/internal/graph"
	"graphspar/internal/obs"
	"graphspar/internal/params"
	"graphspar/internal/partition"
)

// Errors surfaced by the engine. ErrBadShards is the shared typed
// sentinel from internal/params (errors.Is also matches params.ErrInvalid).
var (
	ErrBadShards = params.ErrBadShards
)

// Options configures Run.
type Options struct {
	// Shards is the number of parts the input is cut into. 1 runs the
	// plain single-shot pipeline (plus verification). Default 4.
	Shards int
	// Workers bounds how many shards sparsify concurrently (and how many
	// goroutines the global embedding pass uses). Default GOMAXPROCS.
	// Workers only affects wall-clock time, never the result.
	Workers int
	// Sparsify is applied to every shard (SigmaSq is required, as in
	// core.Sparsify). Seed is overridden per shard; set Options.Seed to
	// steer it.
	Sparsify core.Options
	// Partition configures the recursive bisection. Nil picks the O(n+m)
	// BFS level-set bisector, which is the right default here: the
	// partitioner must cost far less than the sparsifications it feeds,
	// and spectral cuts would require factoring the full graph. (A
	// pointer, because partition.Options' zero value means the spectral
	// Direct method and could not be told apart from "unset".)
	Partition *partition.Options
	// RefilterRounds caps the global embedding passes that re-filter cut
	// edges over the stitched backbone. Each pass adds one heat-ranked,
	// BatchFraction-capped batch of cut edges and costs one full-size
	// factorization; passes stop early once the estimated σ² meets the
	// target. Default 4.
	RefilterRounds int
	// CutFilterFraction gates the global embedding pass: the re-filter
	// runs only when the partition's non-backbone cut exceeds this
	// fraction of the stitched edge set. A smaller cut is kept whole,
	// which certifies the end-to-end σ² *exactly* — with every cut edge
	// present, L_G − L_P is the direct sum of the per-shard remainders,
	// so the worst shard bound carries over (λmin ≥ 1 by interlacing) —
	// while skipping a full-size factorization that could not pay for
	// itself. Default 0.05; negative always runs the embedding pass.
	CutFilterFraction float64
	// VerifySteps is the generalized-Lanczos depth of the final
	// independent similarity check. Default min(30, n).
	VerifySteps int
	// SkipVerify drops the final check (pure-compute benchmarking).
	SkipVerify bool
	// Seed drives partitioning, per-shard seeds and the global pass.
	// Default Sparsify.Seed, then 1.
	Seed uint64
}

func (o *Options) defaults(n int) error {
	if o.Shards == 0 {
		o.Shards = 4
	}
	if err := params.Sharding(o.Shards, o.Workers, params.Limits{}); err != nil {
		return err
	}
	if err := params.Sigma2(o.Sparsify.SigmaSq); err != nil {
		return err
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.RefilterRounds <= 0 {
		o.RefilterRounds = 4
	}
	if o.CutFilterFraction == 0 {
		o.CutFilterFraction = 0.05
	}
	if o.VerifySteps <= 0 {
		o.VerifySteps = 30
	}
	if o.VerifySteps > n {
		o.VerifySteps = n
	}
	if o.Seed == 0 {
		o.Seed = o.Sparsify.Seed
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Partition == nil {
		o.Partition = &partition.Options{Method: partition.BFS, Seed: o.Seed}
	}
	return nil
}

// shardSeed derives the deterministic sparsification seed of shard i
// (offset by one so shard 0 does not reuse the master seed, which drives
// the partitioner and the global pass).
func shardSeed(seed uint64, i int) uint64 {
	return core.DeriveSeed(seed, i+1)
}

// ShardStats reports one shard's sparsification (per connected component
// of a part; a part disconnected by the cut yields one entry per piece).
type ShardStats struct {
	Shard    int // part label this piece belongs to
	Vertices int
	Edges    int // induced edges handed to the shard sparsifier
	Kept     int // edges the shard sparsifier retained
	// SigmaSqAchieved/TargetMet/Rounds mirror the shard's core.Result.
	SigmaSqAchieved float64
	TargetMet       bool
	Rounds          []core.RoundStats
	Duration        time.Duration
	// EdgeIDs are the kept edges as ids into the input graph's edge list;
	// the stitched sparsifier contains every one of them by construction.
	EdgeIDs []int
}

// Result is the output of Run.
type Result struct {
	// Sparsifier spans the full input vertex set: every shard sparsifier,
	// the cut edges stitched in for connectivity, and the cut edges
	// recovered by the global re-filter pass.
	Sparsifier *graph.Graph
	// Labels/Parts echo the k-way partition (Parts can fall short of
	// Options.Shards on small graphs).
	Labels []int
	Parts  int
	Shards []ShardStats

	// Cut bookkeeping: CutEdges input edges crossed the partition;
	// StitchedCut of them were added for connectivity, RecoveredCut more
	// passed the global heat filter.
	CutEdges     int
	StitchedCut  int
	RecoveredCut int

	// LambdaMax/LambdaMin/SigmaSqEst are the engine's own estimates from
	// the last global pass (before its final additions, like core's
	// per-round stats). VerifiedCond is the authoritative end-to-end
	// number.
	LambdaMax, LambdaMin float64
	SigmaSqEst           float64

	// Verified* come from the independent generalized-Lanczos check
	// (zero when Options.SkipVerify).
	VerifiedLambdaMax float64
	VerifiedLambdaMin float64
	VerifiedCond      float64
	TargetMet         bool

	// Phase timings. ShardCPU sums the per-shard durations; dividing it
	// by ShardWall gives the parallel speedup of the shard phase, and
	// WallTime-VerifyTime is the end-to-end compute cost excluding the
	// optional verification.
	PartitionTime time.Duration
	ShardWall     time.Duration
	ShardCPU      time.Duration
	StitchTime    time.Duration
	VerifyTime    time.Duration
	WallTime      time.Duration
}

// Density returns |E_P| / |V| of the stitched sparsifier.
func (r *Result) Density() float64 {
	return float64(r.Sparsifier.M()) / float64(r.Sparsifier.N())
}

// Speedup reports the parallel efficiency of the shard phase:
// ShardCPU / ShardWall (1.0 on a single core or a single shard).
func (r *Result) Speedup() float64 {
	if r.ShardWall <= 0 {
		return 1
	}
	return float64(r.ShardCPU) / float64(r.ShardWall)
}

// Run executes the shard-parallel pipeline. Cancellation of ctx stops the
// per-shard densification rounds and the global passes at their next
// checkpoint and returns ctx.Err().
func Run(ctx context.Context, g *graph.Graph, opt Options) (*Result, error) {
	start := time.Now()
	if err := g.RequireConnected(); err != nil {
		return nil, err
	}
	if err := opt.defaults(g.N()); err != nil {
		return nil, err
	}
	if opt.Shards == 1 {
		return runSingle(ctx, g, opt, start)
	}

	partSpan := obs.StartSpan(ctx, "partition")
	kw, err := partition.RecursiveBisect(g, opt.Shards, *opt.Partition)
	partDur := partSpan.End()
	if err != nil {
		return nil, fmt.Errorf("engine: partition: %w", err)
	}
	res := &Result{
		Labels:        kw.Labels,
		Parts:         kw.Parts,
		PartitionTime: partDur,
	}

	tasks, err := buildTasks(g, kw.Labels, kw.Parts)
	if err != nil {
		return nil, err
	}
	shardSpan := obs.StartSpan(ctx, "shard")
	outs, err := runShards(ctx, g, tasks, opt)
	res.ShardWall = shardSpan.End()
	if err != nil {
		return nil, err
	}
	for _, out := range outs {
		res.Shards = append(res.Shards, out.stats)
		res.ShardCPU += out.stats.Duration
	}

	stitchSpan := obs.StartSpan(ctx, "stitch")
	keptIDs, stitchedIDs, candIDs := stitch(g, kw.Labels, outs)
	res.CutEdges = len(stitchedIDs) + len(candIDs)
	res.StitchedCut = len(stitchedIDs)

	if float64(len(candIDs)) <= opt.CutFilterFraction*float64(len(keptIDs)) {
		// Small cut: keep it whole. The guarantee is exact (see
		// CutFilterFraction) and the certified bound is the worst shard's
		// achieved σ².
		keptIDs = append(keptIDs, candIDs...)
		p, err := g.SubgraphEdges(keptIDs)
		if err != nil {
			return nil, fmt.Errorf("engine: stitched graph: %w", err)
		}
		res.RecoveredCut = len(candIDs)
		res.Sparsifier = p
		worst := 1.0
		for _, s := range res.Shards {
			if s.SigmaSqAchieved > worst {
				worst = s.SigmaSqAchieved
			}
		}
		res.LambdaMax, res.LambdaMin = worst, 1
		res.SigmaSqEst = worst
	} else {
		p, recovered, lmax, lmin, err := refilter(ctx, g, keptIDs, candIDs, opt)
		if err != nil {
			return nil, err
		}
		res.RecoveredCut = recovered
		res.Sparsifier = p
		res.LambdaMax, res.LambdaMin = lmax, lmin
		if lmin > 0 {
			res.SigmaSqEst = lmax / lmin
		}
	}
	res.StitchTime = stitchSpan.End()
	res.TargetMet = res.SigmaSqEst > 0 && res.SigmaSqEst <= opt.Sparsify.SigmaSq

	if err := verify(ctx, g, res, opt); err != nil {
		return nil, err
	}
	res.WallTime = time.Since(start)
	return res, nil
}

// runSingle is the Shards=1 fallback: the plain pipeline plus the same
// verification, reported in engine terms so callers can compare.
func runSingle(ctx context.Context, g *graph.Graph, opt Options, start time.Time) (*Result, error) {
	sopt := opt.Sparsify
	if sopt.Seed == 0 {
		sopt.Seed = opt.Seed
	}
	spSpan := obs.StartSpan(ctx, "sparsify")
	sp, err := core.SparsifyCtx(ctx, g, sopt)
	dur := spSpan.End()
	if err != nil && !errors.Is(err, core.ErrNoTarget) {
		return nil, err
	}
	ids := append(append([]int(nil), sp.TreeEdgeIDs...), sp.OffTreeAddedIDs...)
	res := &Result{
		Sparsifier: sp.Sparsifier,
		Labels:     make([]int, g.N()),
		Parts:      1,
		Shards: []ShardStats{{
			Vertices:        g.N(),
			Edges:           g.M(),
			Kept:            sp.Sparsifier.M(),
			SigmaSqAchieved: sp.SigmaSqAchieved,
			TargetMet:       err == nil,
			Rounds:          sp.Rounds,
			Duration:        dur,
			EdgeIDs:         ids,
		}},
		LambdaMax:  sp.LambdaMax,
		LambdaMin:  sp.LambdaMin,
		SigmaSqEst: sp.SigmaSqAchieved,
		TargetMet:  err == nil,
		ShardWall:  dur,
		ShardCPU:   dur,
	}
	if err := verify(ctx, g, res, opt); err != nil {
		return nil, err
	}
	res.WallTime = time.Since(start)
	return res, nil
}

// verify runs the independent generalized-Lanczos similarity check and
// folds it into res (honoring SkipVerify).
func verify(ctx context.Context, g *graph.Graph, res *Result, opt Options) error {
	if opt.SkipVerify {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	vSpan := obs.StartSpan(ctx, "verify")
	solver, err := cholesky.NewLapSolver(res.Sparsifier)
	if err != nil {
		vSpan.End()
		return fmt.Errorf("engine: verification solver: %w", err)
	}
	lmax, lmin, cond, err := core.VerifySimilarity(g, res.Sparsifier, solver, opt.VerifySteps, opt.Seed)
	if err != nil {
		vSpan.End()
		return fmt.Errorf("engine: similarity verification: %w", err)
	}
	res.VerifiedLambdaMax, res.VerifiedLambdaMin, res.VerifiedCond = lmax, lmin, cond
	res.TargetMet = cond <= opt.Sparsify.SigmaSq
	res.VerifyTime = vSpan.End()
	return nil
}
