package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"graphspar/internal/cli"
	"graphspar/internal/dynamic"
	"graphspar/internal/graph"
	"graphspar/internal/mm"
	"graphspar/internal/obs"
	"graphspar/internal/params"
	"graphspar/internal/sessions"
)

// maxUploadBytes bounds MatrixMarket uploads (64 MiB).
const maxUploadBytes = 64 << 20

// Config sizes the server's components. Zero values take the defaults;
// pass a negative value to disable the backlog or the cache outright.
type Config struct {
	Workers    int // concurrent sparsifications (default 4)
	Backlog    int // queued jobs beyond the running ones (default 64; negative = none)
	CacheSize  int // LRU result-cache capacity (default 128; negative disables)
	RetainJobs int // terminal jobs kept for polling (default 512; negative = unbounded)
	// Sparsify runs from-scratch jobs and Incremental warm-started ones.
	// cmd/serve injects the production runners (built on the public
	// graphspar facade, which internal packages cannot import); tests
	// inject stubs. Jobs needing a nil runner fail with ErrNoRunner.
	Sparsify    SparsifyFunc
	Incremental IncrementalFunc
	// Maintain builds a live maintainer from scratch (the stream
	// endpoint's cold path) and Resume warm-starts one from a prior job's
	// sparsifier (incremental jobs). Facade-backed and injected like the
	// runners above. When both are nil, persistent sessions are off and
	// every request takes the legacy per-request path.
	Maintain MaintainFunc
	Resume   ResumeFunc
	// SessionMax caps resident maintainer sessions (0 = default 32;
	// negative disables sessions outright). SessionBudgetBytes bounds
	// their summed memory estimate (0 = 1 GiB) and SessionTTL their idle
	// lifetime (0 = 15 min; negative = never expire).
	SessionMax         int
	SessionBudgetBytes int64
	SessionTTL         time.Duration
	// Admission control (see admission.go). AdmissionQueueHigh sheds job
	// submissions that would enqueue with 429 + Retry-After once the
	// backlog holds this many jobs — a soft watermark below the hard
	// Backlog bound's 503, reached while there is still room to say no
	// politely. AdmissionStreamHigh caps concurrent stream requests the
	// same way. Zero or negative leaves the corresponding watermark off
	// (the library default; cmd/serve turns the queue watermark on).
	// AdmissionRetryAfter is the Retry-After hint in seconds (0 = 1).
	AdmissionQueueHigh  int
	AdmissionStreamHigh int
	AdmissionRetryAfter int
	// Metrics is the registry the server instruments itself into and
	// serves at GET /metrics (nil = obs.Default, which also carries the
	// pipeline phase histograms). A process embedding several servers
	// should give each its own registry: scrape-time func-backed series
	// bind to the first server that registers them.
	Metrics *obs.Registry
}

// MaintainFunc builds a live maintainer for a graph from scratch.
type MaintainFunc func(ctx context.Context, g *graph.Graph, p SparsifyParams) (sessions.Maintainer, error)

// ResumeFunc warm-starts a live maintainer from a prior sparsifier.
type ResumeFunc func(ctx context.Context, g, warm *graph.Graph, p SparsifyParams) (sessions.Maintainer, error)

func (c *Config) defaults() {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	switch {
	case c.Backlog == 0:
		c.Backlog = 64
	case c.Backlog < 0:
		c.Backlog = 0
	}
	switch {
	case c.CacheSize == 0:
		c.CacheSize = 128
	case c.CacheSize < 0:
		c.CacheSize = 0
	}
	switch {
	case c.RetainJobs == 0:
		c.RetainJobs = defaultRetainJobs
	case c.RetainJobs < 0:
		c.RetainJobs = 0 // pruneLocked treats 0 as unbounded
	}
}

// Server ties the registry, queue, cache and persistent sessions
// together behind an HTTP API.
type Server struct {
	registry *Registry
	cache    *ResultCache
	queue    *Queue
	sessions *sessions.Manager // nil when sessions are disabled
	maintain MaintainFunc
	// maintainSem bounds concurrent cold maintainer builds on the stream
	// endpoint to the same width as the job worker pool — a cold stream
	// is a full sparsification and must not dodge the -workers bound.
	maintainSem chan struct{}
	metrics     *serverMetrics
	admission   *admissionController // nil = admit everything
}

// NewServer builds a ready-to-serve sparsifyd instance.
func NewServer(cfg Config) *Server {
	cfg.defaults()
	cache := NewResultCache(cfg.CacheSize)
	queue := NewQueue(cfg.Workers, cfg.Backlog, cache, cfg.Sparsify, cfg.Incremental)
	queue.SetRetain(cfg.RetainJobs)
	registry := NewRegistry()
	queue.SetCacheGate(registry.HasHash)
	s := &Server{
		registry: registry,
		cache:    cache,
		queue:    queue,
		metrics:  newServerMetrics(cfg.Metrics),
	}
	queue.setMetrics(s.metrics)
	s.admission = newAdmissionController(cfg, s.metrics)
	queue.setAdmission(s.admission)
	if (cfg.Maintain != nil || cfg.Resume != nil) && cfg.SessionMax >= 0 {
		s.sessions = sessions.NewManager(sessions.Options{
			MaxSessions:      cfg.SessionMax,
			MaxResidentBytes: cfg.SessionBudgetBytes,
			IdleTTL:          cfg.SessionTTL,
			Hash:             HashGraph,
		})
		s.maintain = cfg.Maintain
		s.maintainSem = make(chan struct{}, cfg.Workers)
		queue.SetSessions(s.sessions, cfg.Resume, func(name string) (string, bool) {
			e, err := registry.Get(name)
			if err != nil {
				return "", false
			}
			return e.Hash, true
		})
	}
	s.registerStateMetrics()
	return s
}

// Registry exposes the graph store (for CLI-side preloading).
func (s *Server) Registry() *Registry { return s.registry }

// Queue exposes the job queue (for shutdown wiring).
func (s *Server) Queue() *Queue { return s.queue }

// Sessions exposes the persistent-session manager (nil when disabled);
// cmd/serve drains it on shutdown.
func (s *Server) Sessions() *sessions.Manager { return s.sessions }

// Handler returns the routed HTTP API:
//
//	POST   /v1/graphs                {name, spec, seed}   register from generator spec or .mtx path
//	PUT    /v1/graphs/{name}         body = MatrixMarket  register from upload
//	GET    /v1/graphs                                     list
//	GET    /v1/graphs/{name}                              metadata
//	GET    /v1/graphs/{name}/laplacian.mtx                Laplacian download
//	PATCH  /v1/graphs/{name}/edges   {updates: [...]}     atomic edge insert/delete/reweight batch
//	POST   /v1/graphs/{name}/stream  NDJSON/event lines   chunked update-batch ingestion via the persistent session
//	DELETE /v1/graphs/{name}                              remove
//	POST   /v1/jobs                  {graph, sigma2, ...} submit (cache-aware)
//	GET    /v1/jobs                                       list
//	GET    /v1/jobs/{id}                                  poll status + report
//	GET    /v1/jobs/{id}/sparsifier.mtx                   result Laplacian
//	GET    /v1/jobs/{id}/edges.mtx                        result adjacency edge list
//	GET    /v1/jobs/{id}/edges                            result edge list as JSON
//	GET    /v1/healthz                                    liveness + stats
//	GET    /metrics                                       Prometheus text exposition
//
// Every route is wrapped with request accounting (latency histogram and
// status counter per route pattern) feeding the same registry /metrics
// serves.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/graphs", s.handleRegisterSpec)
	mux.HandleFunc("PUT /v1/graphs/{name}", s.handleUpload)
	mux.HandleFunc("GET /v1/graphs", s.handleListGraphs)
	mux.HandleFunc("GET /v1/graphs/{name}", s.handleGetGraph)
	mux.HandleFunc("GET /v1/graphs/{name}/laplacian.mtx", s.handleGraphLaplacian)
	mux.HandleFunc("PATCH /v1/graphs/{name}/edges", s.handlePatchEdges)
	mux.HandleFunc("POST /v1/graphs/{name}/stream", s.handleStreamEvents)
	mux.HandleFunc("DELETE /v1/graphs/{name}", s.handleDeleteGraph)
	mux.HandleFunc("POST /v1/jobs", s.handleSubmitJob)
	mux.HandleFunc("GET /v1/jobs", s.handleListJobs)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGetJob)
	mux.HandleFunc("GET /v1/jobs/{id}/sparsifier.mtx", s.handleJobSparsifier)
	mux.HandleFunc("GET /v1/jobs/{id}/edges.mtx", s.handleJobEdgesMtx)
	mux.HandleFunc("GET /v1/jobs/{id}/edges", s.handleJobEdgesJSON)
	mux.HandleFunc("GET /v1/healthz", s.handleHealth)
	mux.Handle("GET /metrics", s.metrics.reg.Handler())
	return s.metrics.instrument(mux)
}

// ---------------------------------------------------------------- helpers

type apiError struct {
	Error string `json:"error"`
}

// jsonEnc pairs a reusable buffer with an encoder bound to it, so the
// per-response cost of writeJSON is the marshal alone — no new encoder
// or buffer on the request path.
type jsonEnc struct {
	buf bytes.Buffer
	enc *json.Encoder
}

var jsonEncPool = sync.Pool{New: func() any {
	e := &jsonEnc{}
	e.enc = json.NewEncoder(&e.buf)
	e.enc.SetIndent("", "  ")
	return e
}}

// maxPooledEncBytes keeps one giant response (a full job listing, say)
// from pinning its buffer in the pool forever.
const maxPooledEncBytes = 1 << 20

func writeJSON(w http.ResponseWriter, code int, v any) {
	e := jsonEncPool.Get().(*jsonEnc)
	e.buf.Reset()
	if err := e.enc.Encode(v); err != nil {
		// Marshal failures are programming errors (unsupported type); the
		// response is already committed to JSON, so emit a minimal error.
		e.buf.Reset()
		fmt.Fprintf(&e.buf, "{\"error\":%q}\n", err.Error())
		code = http.StatusInternalServerError
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(e.buf.Len()))
	w.WriteHeader(code)
	_, _ = w.Write(e.buf.Bytes())
	if e.buf.Cap() <= maxPooledEncBytes {
		jsonEncPool.Put(e)
	}
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, apiError{Error: err.Error()})
}

// errStatus maps service errors to HTTP codes.
func errStatus(err error) int {
	switch {
	case errors.Is(err, ErrGraphNotFound), errors.Is(err, ErrJobNotFound):
		return http.StatusNotFound
	case errors.Is(err, ErrGraphExists), errors.Is(err, ErrGraphChanged):
		return http.StatusConflict
	case errors.Is(err, ErrSaturated):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrQueueFull):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrQueueClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrJobUnfinished):
		return http.StatusConflict
	case errors.Is(err, ErrBadGraphName), errors.Is(err, cli.ErrSpec),
		errors.Is(err, mm.ErrFormat), errors.Is(err, mm.ErrUnsupported),
		errors.Is(err, dynamic.ErrBadUpdate), errors.Is(err, params.ErrInvalid):
		return http.StatusBadRequest
	case errors.Is(err, dynamic.ErrEdgeExists):
		return http.StatusConflict
	case errors.Is(err, dynamic.ErrEdgeMissing), errors.Is(err, dynamic.ErrWouldDisconnect):
		// Structurally valid requests the current graph cannot satisfy —
		// notably deleting a bridge, which would disconnect the graph.
		return http.StatusUnprocessableEntity
	default:
		return http.StatusInternalServerError
	}
}

type graphInfo struct {
	Name      string `json:"name"`
	Hash      string `json:"hash"`
	Source    string `json:"source"`
	N         int    `json:"n"`
	M         int    `json:"m"`
	CreatedAt string `json:"created_at"`
}

func toGraphInfo(e *GraphEntry) graphInfo {
	return graphInfo{
		Name:      e.Name,
		Hash:      e.Hash,
		Source:    e.Source,
		N:         e.N,
		M:         e.M,
		CreatedAt: e.CreatedAt.Format("2006-01-02T15:04:05Z"),
	}
}

// ----------------------------------------------------------------- graphs

type registerRequest struct {
	Name string `json:"name"`
	Spec string `json:"spec"`
	Seed uint64 `json:"seed,omitempty"`
}

// maxSpecWork bounds the generation cost a remote client may request:
// the product of the spec's size parameters roughly tracks both vertex
// count (grid dims multiply) and generation work (N·K style generators),
// and it is computable without running the generator.
const maxSpecWork = 50_000_000

// checkSpecBudget rejects generator specs whose size parameters multiply
// past the work budget, before any allocation happens. Parameters ≤ 1
// (probabilities such as ws beta or coauth closure) don't contribute.
// Handlers pass maxSpecWork; the fuzz harness passes a tiny budget so
// generator execution stays cheap per exec.
func checkSpecBudget(spec string, budget float64) error {
	work := 1.0
	_, rest, _ := strings.Cut(spec, ":")
	for _, part := range strings.FieldsFunc(rest, func(r rune) bool {
		return r == ':' || r == 'x' || r == ','
	}) {
		v, err := strconv.ParseFloat(part, 64)
		if err != nil {
			continue // weight-mode words etc.; LoadGraph validates properly
		}
		if v > 1 {
			work *= v
		}
		if work > budget {
			return fmt.Errorf("spec %q exceeds the size budget (~%d units); generate it offline and upload instead", spec, int64(budget))
		}
	}
	return nil
}

func (s *Server) handleRegisterSpec(w http.ResponseWriter, r *http.Request) {
	var req registerRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad JSON body: %w", err))
		return
	}
	if req.Spec == "" {
		writeErr(w, http.StatusBadRequest, errors.New("spec is required"))
		return
	}
	// Only generator specs are allowed over HTTP: a file path here would
	// make the server open arbitrary local files on behalf of remote
	// clients. Uploads are the way to bring graph files in; -preload
	// covers operator-side file loading.
	if strings.HasSuffix(req.Spec, ".mtx") || strings.ContainsAny(req.Spec, `/\`) {
		writeErr(w, http.StatusBadRequest,
			errors.New("file specs are not accepted over HTTP; upload the MatrixMarket file with PUT /v1/graphs/{name}"))
		return
	}
	if err := checkSpecBudget(req.Spec, maxSpecWork); err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	seed := req.Seed
	if seed == 0 {
		seed = 1
	}
	g, err := cli.LoadGraph(req.Spec, seed)
	if err != nil {
		writeErr(w, errStatus(err), err)
		return
	}
	if err := g.RequireConnected(); err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	entry, err := s.registry.Register(req.Name, req.Spec, g)
	if err != nil {
		writeErr(w, errStatus(err), err)
		return
	}
	writeJSON(w, http.StatusCreated, toGraphInfo(entry))
}

func (s *Server) handleUpload(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	m, err := mm.Read(io.LimitReader(r.Body, maxUploadBytes))
	if err != nil {
		writeErr(w, errStatus(err), err)
		return
	}
	// A connected graph on n vertices needs at least n-1 entries, so a
	// header declaring huge dimensions over a small entry list cannot be
	// usable — reject before the O(n) allocations in the connectivity
	// check can act on the hostile dimension.
	if m.Rows > len(m.Entries)+1 {
		writeErr(w, http.StatusUnprocessableEntity,
			fmt.Errorf("matrix declares %d vertices but only %d entries; it cannot be connected", m.Rows, len(m.Entries)))
		return
	}
	g, err := m.ToGraph()
	if err != nil {
		writeErr(w, errStatus(err), err)
		return
	}
	if err := g.RequireConnected(); err != nil {
		// Sparsification requires connectivity; reject early with a
		// semantic (not syntactic) error code.
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	entry, err := s.registry.Register(name, "upload", g)
	if err != nil {
		writeErr(w, errStatus(err), err)
		return
	}
	writeJSON(w, http.StatusCreated, toGraphInfo(entry))
}

func (s *Server) handleListGraphs(w http.ResponseWriter, r *http.Request) {
	entries := s.registry.List()
	out := make([]graphInfo, len(entries))
	for i, e := range entries {
		out[i] = toGraphInfo(e)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleGetGraph(w http.ResponseWriter, r *http.Request) {
	entry, err := s.registry.Get(r.PathValue("name"))
	if err != nil {
		writeErr(w, errStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, toGraphInfo(entry))
}

func (s *Server) handleGraphLaplacian(w http.ResponseWriter, r *http.Request) {
	entry, err := s.registry.Get(r.PathValue("name"))
	if err != nil {
		writeErr(w, errStatus(err), err)
		return
	}
	serveMtx(w, entry.Name+".mtx", entry.Graph, mm.WriteGraph)
}

func (s *Server) handleDeleteGraph(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if err := s.registry.Delete(name); err != nil {
		writeErr(w, errStatus(err), err)
		return
	}
	if s.sessions != nil {
		// The resident maintainer is for a graph that no longer exists.
		s.sessions.Invalidate(name)
	}
	w.WriteHeader(http.StatusNoContent)
}

func serveMtx(w http.ResponseWriter, filename string, g *graph.Graph, write func(io.Writer, *graph.Graph) error) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Header().Set("Content-Disposition", `attachment; filename="`+filename+`"`)
	if err := write(w, g); err != nil {
		// Headers are gone; the best we can do is drop the connection.
		panic(http.ErrAbortHandler)
	}
}

// ------------------------------------------------------------------- jobs

type submitRequest struct {
	Graph string `json:"graph"`
	SparsifyParams
}

func (s *Server) handleSubmitJob(w http.ResponseWriter, r *http.Request) {
	var req submitRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad JSON body: %w", err))
		return
	}
	if req.Graph == "" {
		writeErr(w, http.StatusBadRequest, errors.New("graph is required"))
		return
	}
	if err := req.SparsifyParams.Canon(); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	entry, err := s.registry.Get(req.Graph)
	if err != nil {
		writeErr(w, errStatus(err), err)
		return
	}
	job, err := s.queue.Submit(entry, req.SparsifyParams)
	if err != nil {
		if errors.Is(err, ErrSaturated) {
			s.admission.shed(w, false)
			return
		}
		writeErr(w, errStatus(err), err)
		return
	}
	code := http.StatusAccepted
	if job.Status == StatusDone {
		code = http.StatusOK // served from cache
	}
	writeJSON(w, code, job)
}

func (s *Server) handleListJobs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.queue.List())
}

func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	job, err := s.queue.Get(r.PathValue("id"))
	if err != nil {
		writeErr(w, errStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, job)
}

// finishedSparsifier fetches a job's result graph or the right error.
func (s *Server) finishedSparsifier(id string) (*graph.Graph, Job, error) {
	job, err := s.queue.Get(id)
	if err != nil {
		return nil, Job{}, err
	}
	if job.Status != StatusDone || job.Result == nil || job.Result.Sparsifier == nil {
		return nil, job, fmt.Errorf("%w: %s is %s", ErrJobUnfinished, id, job.Status)
	}
	return job.Result.Sparsifier, job, nil
}

func (s *Server) handleJobSparsifier(w http.ResponseWriter, r *http.Request) {
	g, job, err := s.finishedSparsifier(r.PathValue("id"))
	if err != nil {
		writeErr(w, errStatus(err), err)
		return
	}
	serveMtx(w, job.ID+"-sparsifier.mtx", g, mm.WriteGraph)
}

func (s *Server) handleJobEdgesMtx(w http.ResponseWriter, r *http.Request) {
	g, job, err := s.finishedSparsifier(r.PathValue("id"))
	if err != nil {
		writeErr(w, errStatus(err), err)
		return
	}
	serveMtx(w, job.ID+"-edges.mtx", g, mm.WriteEdgeList)
}

type edgeJSON struct {
	U int     `json:"u"`
	V int     `json:"v"`
	W float64 `json:"w"`
}

func (s *Server) handleJobEdgesJSON(w http.ResponseWriter, r *http.Request) {
	g, _, err := s.finishedSparsifier(r.PathValue("id"))
	if err != nil {
		writeErr(w, errStatus(err), err)
		return
	}
	edges := make([]edgeJSON, g.M())
	for i, e := range g.Edges() {
		edges[i] = edgeJSON{U: e.U, V: e.V, W: e.W}
	}
	writeJSON(w, http.StatusOK, struct {
		N     int        `json:"n"`
		M     int        `json:"m"`
		Edges []edgeJSON `json:"edges"`
	}{g.N(), g.M(), edges})
}

// ----------------------------------------------------------------- health

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	var sess *sessions.ManagerStats
	if s.sessions != nil {
		st := s.sessions.Stats()
		sess = &st
	}
	writeJSON(w, http.StatusOK, struct {
		Status   string                 `json:"status"`
		Graphs   int                    `json:"graphs"`
		Queued   int                    `json:"queued"`
		InFlight int                    `json:"in_flight"`
		Workers  int                    `json:"workers"`
		Cache    CacheStats             `json:"cache"`
		Sessions *sessions.ManagerStats `json:"sessions,omitempty"`
	}{"ok", s.registry.Len(), s.queue.Depth(), s.queue.InFlight(), s.queue.Workers(), s.cache.Stats(), sess})
}
