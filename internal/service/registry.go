// Package service implements the sparsifyd daemon: a long-running HTTP
// front end over the similarity-aware sparsifier. It is organized as
// three cooperating pieces — a named, content-hashed graph registry
// (registry.go), a bounded-concurrency async job queue (jobs.go), and an
// LRU result cache keyed by (graph hash, canonical request) (cache.go) —
// stitched together by the HTTP handlers (handlers.go). cmd/serve wires
// it to a net/http server.
package service

import (
	"errors"
	"fmt"
	"regexp"
	"sort"
	"strings"
	"sync"
	"time"

	"graphspar/internal/graph"
)

// Registry errors, mapped to HTTP status codes by the handlers.
var (
	ErrGraphExists   = errors.New("service: graph name already registered")
	ErrGraphNotFound = errors.New("service: graph not found")
	ErrBadGraphName  = errors.New("service: invalid graph name")
	ErrGraphChanged  = errors.New("service: graph was modified concurrently")
)

// nameRE restricts registry names to something safe for URL paths.
var nameRE = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]{0,127}$`)

// GraphEntry is one registered graph plus its immutable metadata. The
// Hash is a content address over the canonical edge list, so two uploads
// of the same graph under different names share cache entries.
type GraphEntry struct {
	Name      string
	Hash      string // hex sha256 of the canonical (n, sorted edges) encoding
	Source    string // generator spec or "upload"
	N, M      int
	CreatedAt time.Time
	Graph     *graph.Graph
}

// Registry is a concurrency-safe name → graph store.
type Registry struct {
	mu      sync.RWMutex
	entries map[string]*GraphEntry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*GraphEntry)}
}

// HashGraph content-addresses a graph via the one canonical encoding
// (graph.ContentHash) — the session manager compares these against
// registry hashes, so there must be exactly one implementation.
func HashGraph(g *graph.Graph) string { return g.ContentHash() }

// Register stores g under name. The name must be URL-safe and unused;
// re-registering the same name with an identical graph is an idempotent
// success, while a different graph under an existing name fails with
// ErrGraphExists.
func (r *Registry) Register(name, source string, g *graph.Graph) (*GraphEntry, error) {
	if !nameRE.MatchString(name) {
		return nil, fmt.Errorf("%w: %q", ErrBadGraphName, name)
	}
	e := &GraphEntry{
		Name:      name,
		Hash:      HashGraph(g),
		Source:    source,
		N:         g.N(),
		M:         g.M(),
		CreatedAt: time.Now().UTC(),
		Graph:     g,
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if prev, ok := r.entries[name]; ok {
		if prev.Hash == e.Hash {
			return prev, nil
		}
		return nil, fmt.Errorf("%w: %q", ErrGraphExists, name)
	}
	r.entries[name] = e
	return e, nil
}

// Get looks a graph up by name.
func (r *Registry) Get(name string) (*GraphEntry, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.entries[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrGraphNotFound, name)
	}
	return e, nil
}

// Update replaces the graph stored under name with a mutated version,
// re-hashing the content address. prevHash makes the swap a compare-and-
// set: the replacement only lands if the stored graph still has that
// content hash, so two concurrent PATCHes cannot silently overwrite each
// other — the loser gets ErrGraphChanged and re-applies its batch to the
// winner's graph. CreatedAt is preserved so the entry's age reflects the
// original registration, and Source records that the graph has been
// patched.
func (r *Registry) Update(name, prevHash string, g *graph.Graph) (*GraphEntry, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	prev, ok := r.entries[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrGraphNotFound, name)
	}
	if prev.Hash != prevHash {
		return nil, fmt.Errorf("%w: %q", ErrGraphChanged, name)
	}
	source := prev.Source
	if !strings.HasSuffix(source, "+patched") {
		source += "+patched"
	}
	e := &GraphEntry{
		Name:      name,
		Hash:      HashGraph(g),
		Source:    source,
		N:         g.N(),
		M:         g.M(),
		CreatedAt: prev.CreatedAt,
		Graph:     g,
	}
	r.entries[name] = e
	return e, nil
}

// Delete removes a graph by name.
func (r *Registry) Delete(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.entries[name]; !ok {
		return fmt.Errorf("%w: %q", ErrGraphNotFound, name)
	}
	delete(r.entries, name)
	return nil
}

// List returns all entries sorted by name.
func (r *Registry) List() []*GraphEntry {
	r.mu.RLock()
	out := make([]*GraphEntry, 0, len(r.entries))
	for _, e := range r.entries {
		out = append(out, e)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// HasHash reports whether any registered graph currently has this
// content hash. The job queue gates cache writes on it so a job that
// finishes after its graph was PATCHed (re-hashed) does not re-insert a
// result under the dead hash that InvalidateGraph already swept. O(n)
// over the registry, which holds few graphs relative to job volume.
func (r *Registry) HasHash(hash string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, e := range r.entries {
		if e.Hash == hash {
			return true
		}
	}
	return false
}

// Len reports the number of registered graphs.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.entries)
}
