package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"
	"time"
)

// This file pins the serving fast path's allocation budget. Each
// scenario is one steady-state request shape the daemon serves at rate —
// a job submission answered from the result cache, a PATCH routed
// through a warm session, and a full drain of each stream decoder — and
// each gets a hard AllocsPerRun ceiling. The ceilings carry headroom
// over the measured numbers (runtime/libc variance, map growth
// amortization) but sit far below what a per-event or per-entity
// allocation regression would produce. With BENCH_ALLOC_JSON set, the
// measured numbers are also published for CI artifacts, next to the
// loadgen's BENCH_serve.json.

// allocServer builds an in-process server (no TCP) with a registered
// grid graph, a warmed result cache for sigma2=60, and a resident
// session for the graph, then returns the routed handler.
func allocServer(t *testing.T) http.Handler {
	t.Helper()
	srv := NewServer(sessionTestConfig(nil, nil))
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Queue().Shutdown(ctx)
	})
	h := srv.Handler()

	do := func(method, path, contentType string, body []byte) *httptest.ResponseRecorder {
		req := httptest.NewRequest(method, path, bytes.NewReader(body))
		if contentType != "" {
			req.Header.Set("Content-Type", contentType)
		}
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		return rec
	}

	if rec := do(http.MethodPost, "/v1/graphs", "application/json",
		[]byte(`{"name":"g","spec":"grid:8x8","seed":1}`)); rec.Code != http.StatusCreated {
		t.Fatalf("register: %d %s", rec.Code, rec.Body)
	}
	// Warm the result cache: run one real (stubbed) job to completion.
	rec := do(http.MethodPost, "/v1/jobs", "application/json", []byte(`{"graph":"g","sigma2":60}`))
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", rec.Code, rec.Body)
	}
	var job Job
	if err := json.Unmarshal(rec.Body.Bytes(), &job); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		j, err := srv.Queue().Get(job.ID)
		if err != nil {
			t.Fatal(err)
		}
		if j.Status == StatusDone {
			break
		}
		if j.Status == StatusFailed || j.Status == StatusCanceled || time.Now().After(deadline) {
			t.Fatalf("warm job never completed: %+v", j)
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Make the graph's session resident so PATCH takes the hit path.
	entry, err := srv.registry.Get("g")
	if err != nil {
		t.Fatal(err)
	}
	if sess := srv.sessions.Install("g", "", &stubMaintainer{g: entry.Graph}); sess == nil {
		t.Fatal("session install rejected")
	}
	return h
}

// TestRequestAllocCeilings measures the allocations of one request on
// each serving fast path and holds them under their ceilings. Before the
// fast-path work (pooled response encoding, content-hash result reuse,
// workspace-pooled solver scratch) the cache-hit submit path alone sat
// well above twice its current ceiling.
func TestRequestAllocCeilings(t *testing.T) {
	h := allocServer(t)

	serve := func(method, path, contentType string, body []byte, wantCode int) func() {
		return func() {
			req := httptest.NewRequest(method, path, bytes.NewReader(body))
			if contentType != "" {
				req.Header.Set("Content-Type", contentType)
			}
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != wantCode {
				t.Fatalf("%s %s: %d %s", method, path, rec.Code, rec.Body)
			}
		}
	}

	const decodeEvents = 4096
	textBody := buildEventBody(decodeEvents, 64, false)
	binBody := buildBinaryEventBody(t, decodeEvents, 64)
	drain := func(f func([]byte) (int, error), body []byte) func() {
		return func() {
			if n, err := f(body); err != nil || n != decodeEvents {
				t.Fatalf("drain: %d events, err %v", n, err)
			}
		}
	}

	scenarios := []struct {
		name    string
		ceiling float64
		run     func()
	}{
		// Cache-hit job submission: JSON decode, registry + cache lookup,
		// job bookkeeping, pooled JSON encode. No sparsifier work.
		{"job_submit_cache_hit", 80,
			serve(http.MethodPost, "/v1/jobs", "application/json",
				[]byte(`{"graph":"g","sigma2":60}`), http.StatusOK)},
		// Session-hit PATCH: body decode, session apply (graph copy for a
		// 64-vertex grid), registry CAS, pooled JSON encode.
		{"patch_session_hit", 130,
			serve(http.MethodPatch, "/v1/graphs/g/edges", "application/json",
				[]byte(`{"updates":[{"op":"reweight","u":0,"v":1,"w":2.5}]}`), http.StatusOK)},
		// Full drains of both stream decoders; same ceilings as the
		// dedicated decoder tests, restated here so the published numbers
		// cover every fast path in one artifact.
		{"stream_decode_text_4096", 40, drain(drainDecoder, textBody)},
		{"stream_decode_binary_4096", 40, drain(drainBinaryDecoder, binBody)},
	}

	type measurement struct {
		Name        string  `json:"name"`
		AllocsPerOp float64 `json:"allocs_per_op"`
		Ceiling     float64 `json:"ceiling"`
	}
	var results []measurement
	for _, sc := range scenarios {
		sc.run() // warm: first request pays one-time pool/map setup
		per := testing.AllocsPerRun(50, sc.run)
		t.Logf("%s: %.1f allocs/op (ceiling %.0f)", sc.name, per, sc.ceiling)
		if per > sc.ceiling {
			t.Errorf("%s allocated %.1f times per op; ceiling is %.0f", sc.name, per, sc.ceiling)
		}
		results = append(results, measurement{sc.name, per, sc.ceiling})
	}

	if path := os.Getenv("BENCH_ALLOC_JSON"); path != "" && !t.Failed() {
		out, err := json.MarshalIndent(struct {
			Scenarios []measurement `json:"scenarios"`
		}{results}, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		fmt.Printf("wrote %s\n", path)
	}
}
