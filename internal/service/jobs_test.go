package service

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"graphspar/internal/graph"
)

func testEntry(t *testing.T) *GraphEntry {
	t.Helper()
	r := NewRegistry()
	e, err := r.Register("g", "test", testGraph(t))
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// waitJob polls until the job reaches a terminal state.
func waitJob(t *testing.T, q *Queue, id string) Job {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		job, err := q.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		switch job.Status {
		case StatusDone, StatusFailed, StatusCanceled:
			return job
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return Job{}
}

func TestQueueRunsJobs(t *testing.T) {
	entry := testEntry(t)
	var calls atomic.Int64
	q := newTestQueue(2, 8, nil, func(ctx context.Context, g *graph.Graph, p SparsifyParams) (*JobResult, error) {
		calls.Add(1)
		return &JobResult{SigmaSqAchieved: p.SigmaSq / 2, Sparsifier: g}, nil
	})
	defer q.Shutdown(context.Background())

	job, err := q.Submit(entry, testParams(100))
	if err != nil {
		t.Fatal(err)
	}
	if job.Status != StatusQueued {
		t.Errorf("submit status = %s", job.Status)
	}
	done := waitJob(t, q, job.ID)
	if done.Result == nil || done.Result.SigmaSqAchieved != 50 {
		t.Errorf("result = %+v", done.Result)
	}
	if done.Started.IsZero() || done.Finished.IsZero() {
		t.Error("timestamps not set")
	}
	if calls.Load() != 1 {
		t.Errorf("runner calls = %d", calls.Load())
	}
}

func TestQueueBoundedConcurrencyAndBacklog(t *testing.T) {
	entry := testEntry(t)
	const workers = 2
	var running, peak atomic.Int64
	block := make(chan struct{})
	q := newTestQueue(workers, 1, nil, func(ctx context.Context, g *graph.Graph, p SparsifyParams) (*JobResult, error) {
		cur := running.Add(1)
		for {
			old := peak.Load()
			if cur <= old || peak.CompareAndSwap(old, cur) {
				break
			}
		}
		<-block
		running.Add(-1)
		return &JobResult{}, nil
	})
	defer q.Shutdown(context.Background())

	// Occupy both workers, waiting for each pickup so the backlog channel
	// is empty before the next submit (Submit fails fast on a full
	// channel, so racing it against worker pickup would flake).
	var ids []string
	for i := 0; i < workers; i++ {
		job, err := q.Submit(entry, testParams(float64(10+i)))
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids = append(ids, job.ID)
		deadline := time.Now().Add(5 * time.Second)
		for running.Load() != int64(i+1) && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		if running.Load() != int64(i+1) {
			t.Fatalf("running = %d, want %d", running.Load(), i+1)
		}
	}
	// Fill the single backlog slot.
	job, err := q.Submit(entry, testParams(99))
	if err != nil {
		t.Fatalf("backlog submit: %v", err)
	}
	ids = append(ids, job.ID)

	// Now workers and backlog are saturated: the next submit must shed.
	if _, err := q.Submit(entry, testParams(100)); !errors.Is(err, ErrQueueFull) {
		t.Errorf("saturated submit: err = %v, want ErrQueueFull", err)
	}

	close(block)
	for _, id := range ids {
		if job := waitJob(t, q, id); job.Status != StatusDone {
			t.Errorf("job %s = %s", id, job.Status)
		}
	}
	if p := peak.Load(); p > workers {
		t.Errorf("peak concurrency %d exceeds worker bound %d", p, workers)
	}
}

func TestQueueCacheShortCircuit(t *testing.T) {
	entry := testEntry(t)
	cache := NewResultCache(4)
	var calls atomic.Int64
	q := newTestQueue(1, 4, cache, func(ctx context.Context, g *graph.Graph, p SparsifyParams) (*JobResult, error) {
		calls.Add(1)
		return &JobResult{SigmaSqAchieved: p.SigmaSq * 0.8, Sparsifier: g}, nil
	})
	defer q.Shutdown(context.Background())

	first, err := q.Submit(entry, testParams(100))
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, q, first.ID)

	// Identical resubmission: served instantly, runner not called again.
	second, err := q.Submit(entry, testParams(100))
	if err != nil {
		t.Fatal(err)
	}
	if second.Status != StatusDone || second.CacheHit != CacheExact {
		t.Errorf("resubmit = status %s cache %q, want done/exact", second.Status, second.CacheHit)
	}
	// Coarser target: also served from cache.
	third, err := q.Submit(entry, testParams(500))
	if err != nil {
		t.Fatal(err)
	}
	if third.Status != StatusDone || third.CacheHit != CacheCoarser {
		t.Errorf("coarser submit = status %s cache %q, want done/coarser", third.Status, third.CacheHit)
	}
	if calls.Load() != 1 {
		t.Errorf("runner calls = %d, want 1", calls.Load())
	}
}

func TestQueueFailedJob(t *testing.T) {
	entry := testEntry(t)
	boom := errors.New("boom")
	q := newTestQueue(1, 4, nil, func(ctx context.Context, g *graph.Graph, p SparsifyParams) (*JobResult, error) {
		return nil, boom
	})
	defer q.Shutdown(context.Background())

	job, err := q.Submit(entry, testParams(100))
	if err != nil {
		t.Fatal(err)
	}
	done := waitJob(t, q, job.ID)
	if done.Status != StatusFailed || done.Error != "boom" {
		t.Errorf("job = %s %q", done.Status, done.Error)
	}
}

func TestQueueShutdownCancelsPending(t *testing.T) {
	entry := testEntry(t)
	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	q := newTestQueue(1, 8, nil, func(ctx context.Context, g *graph.Graph, p SparsifyParams) (*JobResult, error) {
		once.Do(func() { close(started) })
		select {
		case <-release:
			return &JobResult{}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	})

	blocker, err := q.Submit(entry, testParams(10))
	if err != nil {
		t.Fatal(err)
	}
	queued, err := q.Submit(entry, testParams(20))
	if err != nil {
		t.Fatal(err)
	}
	<-started

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := q.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	close(release)

	if job, _ := q.Get(blocker.ID); job.Status != StatusCanceled {
		t.Errorf("in-flight job = %s, want canceled (ctx threaded into runner)", job.Status)
	}
	if job, _ := q.Get(queued.ID); job.Status != StatusCanceled {
		t.Errorf("queued job = %s, want canceled", job.Status)
	}
	// Submits after shutdown are refused.
	if _, err := q.Submit(entry, testParams(30)); !errors.Is(err, ErrQueueClosed) {
		t.Errorf("post-shutdown submit: err = %v, want ErrQueueClosed", err)
	}
}

func TestQueueRetentionPrunesTerminalJobs(t *testing.T) {
	entry := testEntry(t)
	q := newTestQueue(1, 8, nil, func(ctx context.Context, g *graph.Graph, p SparsifyParams) (*JobResult, error) {
		return &JobResult{}, nil
	})
	defer q.Shutdown(context.Background())
	q.SetRetain(3)

	var last string
	for i := 0; i < 10; i++ {
		job, err := q.Submit(entry, testParams(float64(10+i)))
		if err != nil {
			t.Fatal(err)
		}
		last = job.ID
		waitJob(t, q, job.ID)
	}
	if n := len(q.List()); n != 3 {
		t.Errorf("retained %d jobs, want 3", n)
	}
	// The most recent job survives pruning; the oldest are gone.
	if _, err := q.Get(last); err != nil {
		t.Errorf("latest job pruned: %v", err)
	}
	if _, err := q.Get("job-1"); !errors.Is(err, ErrJobNotFound) {
		t.Errorf("oldest job kept: err = %v", err)
	}
}

// TestQueueWithoutRunnerFailsJobs pins the injection contract: a queue
// constructed without runners must fail jobs with ErrNoRunner instead of
// panicking (the production runners live in cmd/serve, on top of the
// graphspar facade).
func TestQueueWithoutRunnerFailsJobs(t *testing.T) {
	entry := testEntry(t)
	q := NewQueue(1, 4, nil, nil, nil)
	defer q.Shutdown(context.Background())
	job, err := q.Submit(entry, testParams(50))
	if err != nil {
		t.Fatal(err)
	}
	done := waitJob(t, q, job.ID)
	if done.Status != StatusFailed || done.Error != ErrNoRunner.Error() {
		t.Fatalf("job = %s %q, want failed with ErrNoRunner", done.Status, done.Error)
	}
}

func TestQueueShardedAndSingleShotDoNotAlias(t *testing.T) {
	entry := testEntry(t)
	cache := NewResultCache(16)
	var calls atomic.Int64
	q := newTestQueue(1, 8, cache, func(ctx context.Context, g *graph.Graph, p SparsifyParams) (*JobResult, error) {
		calls.Add(1)
		return &JobResult{SigmaSqAchieved: 10, TargetMet: true, Sparsifier: g, Shards: p.Shards}, nil
	})
	defer q.Shutdown(context.Background())

	single := testParams(100)
	sharded := SparsifyParams{SigmaSq: 100, Shards: 4}
	if err := sharded.Canon(); err != nil {
		t.Fatal(err)
	}
	j1, err := q.Submit(entry, single)
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, q, j1.ID)
	// The sharded request must MISS despite the identical σ² and seed.
	j2, err := q.Submit(entry, sharded)
	if err != nil {
		t.Fatal(err)
	}
	done := waitJob(t, q, j2.ID)
	if done.CacheHit != "" {
		t.Errorf("sharded request served from single-shot cache: %+v", done)
	}
	if got := calls.Load(); got != 2 {
		t.Errorf("sparsify calls = %d, want 2", got)
	}
}

// newTestQueue builds a queue with a stub runner and no incremental
// backend (tests that need one call NewQueue directly).
func newTestQueue(workers, backlog int, cache *ResultCache, sparsify SparsifyFunc) *Queue {
	return NewQueue(workers, backlog, cache, sparsify, nil)
}
