package service

import (
	"fmt"
	"testing"
)

func testParams(sigma float64) SparsifyParams {
	p := SparsifyParams{SigmaSq: sigma}
	if err := p.Canon(); err != nil {
		panic(err)
	}
	return p
}

func result(achieved float64) *JobResult {
	return &JobResult{SigmaSqAchieved: achieved, TargetMet: true}
}

func TestParamsCanon(t *testing.T) {
	p := SparsifyParams{SigmaSq: 100}
	if err := p.Canon(); err != nil {
		t.Fatal(err)
	}
	if p.T != 2 || p.Seed != 1 || p.TreeAlg != "maxweight" {
		t.Errorf("defaults not applied: %+v", p)
	}
	// Spelled-out defaults key identically to omitted ones.
	q := SparsifyParams{SigmaSq: 100, T: 2, Seed: 1, TreeAlg: "maxweight"}
	if err := q.Canon(); err != nil {
		t.Fatal(err)
	}
	if p.key("h") != q.key("h") {
		t.Errorf("canonical keys differ: %q vs %q", p.key("h"), q.key("h"))
	}

	for _, bad := range []SparsifyParams{
		{SigmaSq: 0},
		{SigmaSq: 1},
		{SigmaSq: -5},
		{SigmaSq: 100, TreeAlg: "bogus"},
		{SigmaSq: 100, T: 2_000_000_000},
		{SigmaSq: 100, NumVectors: 2_000_000_000},
	} {
		if err := bad.Canon(); err == nil {
			t.Errorf("Canon(%+v): want error", bad)
		}
	}
}

func TestCacheExactHit(t *testing.T) {
	c := NewResultCache(4)
	p := testParams(100)
	if _, out := c.Get("h1", p); out != CacheMiss {
		t.Fatalf("empty cache: outcome %v", out)
	}
	c.Put("h1", p, result(80))
	res, out := c.Get("h1", p)
	if out != CacheExact || res.SigmaSqAchieved != 80 {
		t.Fatalf("Get = %v, %v; want exact hit", res, out)
	}
	// Different graph hash misses.
	if _, out := c.Get("h2", p); out != CacheMiss {
		t.Errorf("cross-graph lookup: outcome %v", out)
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 2 || s.Entries != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestCacheCoarserHit(t *testing.T) {
	c := NewResultCache(8)
	// A σ²=50 sparsifier (achieved 40) certifies any σ² ≥ 50 request.
	c.Put("h", testParams(50), result(40))

	res, out := c.Get("h", testParams(200))
	if out != CacheCoarser || res.SigmaSqAchieved != 40 {
		t.Fatalf("coarser lookup = %v, %v; want coarser hit", res, out)
	}
	// A tighter request must NOT reuse a looser sparsifier.
	if _, out := c.Get("h", testParams(10)); out != CacheMiss {
		t.Errorf("tighter request reused looser result: outcome %v", out)
	}
	// Among multiple qualifying entries, prefer the sparsest (largest σ²
	// at or below the request).
	c.Put("h", testParams(100), result(90))
	res, out = c.Get("h", testParams(300))
	if out != CacheCoarser || res.SigmaSqAchieved != 90 {
		t.Errorf("best coarser = %v, %v; want the σ²=100 entry", res, out)
	}
	// Different knobs (t) are a different family: no coarser reuse.
	p := SparsifyParams{SigmaSq: 200, T: 3}
	if err := p.Canon(); err != nil {
		t.Fatal(err)
	}
	if _, out := c.Get("h", p); out != CacheMiss {
		t.Errorf("cross-family coarser reuse: outcome %v", out)
	}
	// A coarser hit is memoized under the exact key: repeating the same
	// request upgrades to an exact hit.
	if _, out := c.Get("h", testParams(300)); out != CacheExact {
		t.Errorf("repeated coarser request not memoized: outcome %v", out)
	}
}

func TestCacheCoarserRespectsAchieved(t *testing.T) {
	c := NewResultCache(4)
	// Entry built for σ²=50 but only achieved 120 (ErrNoTarget path):
	// it cannot certify a σ²=100 request.
	c.Put("h", testParams(50), &JobResult{SigmaSqAchieved: 120})
	if _, out := c.Get("h", testParams(100)); out != CacheMiss {
		t.Errorf("unmet-target entry reused: outcome %v", out)
	}
	res, out := c.Get("h", testParams(150))
	if out != CacheCoarser {
		t.Errorf("σ²=150 should qualify (achieved 120): outcome %v", out)
	}
	// The served copy is re-judged against THIS request's target: the
	// stored result missed σ²=50 but satisfies σ²=150.
	if !res.TargetMet {
		t.Error("coarser hit kept the original request's TargetMet=false")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// Distinct graph hashes so family-level coarser matching cannot mask
	// the eviction under test.
	c := NewResultCache(2)
	c.Put("h1", testParams(10), result(5))
	c.Put("h2", testParams(20), result(15))
	// Touch h1 so h2 is the LRU victim.
	if _, out := c.Get("h1", testParams(10)); out != CacheExact {
		t.Fatal("expected hit")
	}
	c.Put("h3", testParams(30), result(25))
	if _, out := c.Get("h2", testParams(20)); out != CacheMiss {
		t.Errorf("LRU entry survived eviction: outcome %v", out)
	}
	if _, out := c.Get("h1", testParams(10)); out != CacheExact {
		t.Errorf("recently used entry evicted: outcome %v", out)
	}
	s := c.Stats()
	if s.Evictions != 1 || s.Entries != 2 {
		t.Errorf("stats = %+v", s)
	}
}

func TestCacheDisabled(t *testing.T) {
	c := NewResultCache(0)
	c.Put("h", testParams(10), result(5))
	if _, out := c.Get("h", testParams(10)); out != CacheMiss {
		t.Errorf("disabled cache returned a hit")
	}
	if c.Len() != 0 {
		t.Errorf("disabled cache stored entries: %d", c.Len())
	}
}

func TestCacheFamilyCleanupAfterEviction(t *testing.T) {
	// Evicting the last member of a family must not leak the family map
	// or corrupt later coarser lookups.
	c := NewResultCache(1)
	c.Put("h", testParams(50), result(40))
	c.Put("h2", testParams(50), result(40)) // evicts the first
	if _, out := c.Get("h", testParams(100)); out != CacheMiss {
		t.Errorf("evicted family still serving: outcome %v", out)
	}
	if _, out := c.Get("h2", testParams(100)); out != CacheCoarser {
		t.Errorf("surviving entry lost: outcome %v", out)
	}
}

func TestCacheConcurrentAccess(t *testing.T) {
	c := NewResultCache(16)
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func(i int) {
			defer func() { done <- struct{}{} }()
			for j := 0; j < 200; j++ {
				h := fmt.Sprintf("h%d", j%4)
				c.Put(h, testParams(float64(10+j%8*10)), result(5))
				c.Get(h, testParams(float64(10+(j+1)%8*10)))
			}
		}(i)
	}
	for i := 0; i < 8; i++ {
		<-done
	}
	if c.Len() > 16 {
		t.Errorf("cache over capacity: %d", c.Len())
	}
}

func TestCanonShardParams(t *testing.T) {
	// shards=1 canonicalizes to the single-shot form.
	p := SparsifyParams{SigmaSq: 100, Shards: 1, Workers: 8, Partition: "direct"}
	if err := p.Canon(); err != nil {
		t.Fatal(err)
	}
	if p.Shards != 0 || p.Workers != 0 || p.Partition != "" {
		t.Errorf("single-shot canonical form not applied: %+v", p)
	}
	// shards>1 defaults the bisector and keeps workers (off-key).
	q := SparsifyParams{SigmaSq: 100, Shards: 4, Workers: 2}
	if err := q.Canon(); err != nil {
		t.Fatal(err)
	}
	if q.Partition != "bfs" || q.Workers != 2 {
		t.Errorf("sharded canon: %+v", q)
	}

	for _, bad := range []SparsifyParams{
		{SigmaSq: 100, Shards: 1000},
		{SigmaSq: 100, Shards: 2, Workers: 1000},
		{SigmaSq: 100, Shards: 2, Partition: "bogus"},
		{SigmaSq: 100, Shards: 2, MaxEdges: 50},
	} {
		if err := bad.Canon(); err == nil {
			t.Errorf("Canon(%+v): want error", bad)
		}
	}
}

func TestShardParamsCacheKeys(t *testing.T) {
	single := testParams(100)
	sharded := SparsifyParams{SigmaSq: 100, Shards: 4}
	if err := sharded.Canon(); err != nil {
		t.Fatal(err)
	}
	// Sharded and single-shot results must never alias, in either the
	// exact key or the coarser-σ² family.
	if single.key("h") == sharded.key("h") {
		t.Error("sharded and single-shot share a cache key")
	}
	if single.family("h") == sharded.family("h") {
		t.Error("sharded and single-shot share a cache family")
	}
	// Workers cannot affect the result and must not fragment the cache.
	w1, w8 := sharded, sharded
	w1.Workers, w8.Workers = 1, 8
	if w1.key("h") != w8.key("h") {
		t.Error("worker count fragments the cache key")
	}
	// Different shard counts are different artifacts.
	s8 := sharded
	s8.Shards = 8
	if s8.key("h") == sharded.key("h") {
		t.Error("shard counts share a cache key")
	}
}

func TestCanonModeParams(t *testing.T) {
	// "single" and "sharded" are redundant with the shards field and
	// canonicalize away, so mode can never contradict shards in a stored
	// key; only "multilevel" survives.
	p := SparsifyParams{SigmaSq: 100, Mode: "single"}
	if err := p.Canon(); err != nil {
		t.Fatal(err)
	}
	if p.Mode != "" || p.key("h") != testParams(100).key("h") {
		t.Errorf("mode=single did not canonicalize to the single-shot form: %+v", p)
	}
	q := SparsifyParams{SigmaSq: 100, Mode: "sharded", Shards: 4}
	bare := SparsifyParams{SigmaSq: 100, Shards: 4}
	if err := q.Canon(); err != nil {
		t.Fatal(err)
	}
	if err := bare.Canon(); err != nil {
		t.Fatal(err)
	}
	if q.Mode != "" || q.key("h") != bare.key("h") {
		t.Errorf("mode=sharded did not canonicalize onto shards=4: %+v", q)
	}

	ml := SparsifyParams{SigmaSq: 100, Mode: "multilevel", Workers: 8}
	if err := ml.Canon(); err != nil {
		t.Fatal(err)
	}
	if ml.Mode != "multilevel" || ml.Shards != 0 || ml.Partition != "" {
		t.Errorf("multilevel canonical form: %+v", ml)
	}
	// Workers survives for multilevel (it bounds embedding concurrency)
	// but stays off-key.
	if ml.Workers != 8 {
		t.Errorf("multilevel canon dropped workers: %+v", ml)
	}
	w1 := ml
	w1.Workers = 1
	if w1.key("h") != ml.key("h") {
		t.Error("worker count fragments the multilevel cache key")
	}
	// Multilevel is a distinct artifact from both other paths.
	if ml.key("h") == testParams(100).key("h") || ml.family("h") == testParams(100).family("h") {
		t.Error("multilevel aliases the single-shot cache line")
	}
	if ml.key("h") == bare.key("h") {
		t.Error("multilevel aliases the sharded cache line")
	}
	// Coarsen knobs shape the hierarchy, hence the artifact and the key.
	tuned := SparsifyParams{SigmaSq: 100, Mode: "multilevel", CoarsenLevels: 3, CoarsenRatio: 0.5}
	if err := tuned.Canon(); err != nil {
		t.Fatal(err)
	}
	if tuned.key("h") == ml.key("h") {
		t.Error("coarsen knobs do not fragment the multilevel cache key")
	}

	for _, bad := range []SparsifyParams{
		{SigmaSq: 100, Mode: "auto"},
		{SigmaSq: 100, Mode: "bogus"},
		{SigmaSq: 100, Mode: "single", Shards: 4},
		{SigmaSq: 100, Mode: "sharded"},
		{SigmaSq: 100, Mode: "sharded", Shards: 1},
		{SigmaSq: 100, Mode: "multilevel", Shards: 2},
		{SigmaSq: 100, Mode: "multilevel", MaxEdges: 50},
		{SigmaSq: 100, Mode: "multilevel", Incremental: true},
		{SigmaSq: 100, Mode: "multilevel", Incremental: true, WarmJob: "job-1"},
		{SigmaSq: 100, CoarsenLevels: 2},
		{SigmaSq: 100, CoarsenRatio: 0.5},
		{SigmaSq: 100, Mode: "multilevel", CoarsenLevels: -1},
		{SigmaSq: 100, Mode: "multilevel", CoarsenRatio: 1.5},
	} {
		if err := bad.Canon(); err == nil {
			t.Errorf("Canon(%+v): want error", bad)
		}
	}
}
