package service

import (
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"
)

// Saturation-aware admission control. The queue's hard Backlog bound
// already rejects with 503 once nothing more fits, but by then every
// accepted job is condemned to a long job_wait_seconds — the daemon is
// saturated and still promising work. Admission control sheds earlier
// and deliberately: once the backlog depth or the number of in-flight
// stream requests crosses its watermark, new work is turned away with
// 429 + Retry-After so clients back off while the pool drains. Both
// watermarks are off unless configured (Config.Admission*); cmd/serve
// enables the queue watermark by default.

// ErrSaturated reports a submission shed by admission control; the
// handlers map it to 429 with a Retry-After hint.
var ErrSaturated = errors.New("service: saturated, retry later")

type admissionController struct {
	queueHigh  int   // shed job submissions at this backlog depth (<=0 off)
	streamHigh int64 // max concurrent stream requests (<=0 off)
	retryAfter int   // Retry-After hint, seconds
	streams    atomic.Int64
	metrics    *serverMetrics
}

// newAdmissionController builds the controller, or nil when both
// watermarks are disabled (a nil controller admits everything).
func newAdmissionController(cfg Config, m *serverMetrics) *admissionController {
	if cfg.AdmissionQueueHigh <= 0 && cfg.AdmissionStreamHigh <= 0 {
		return nil
	}
	retry := cfg.AdmissionRetryAfter
	if retry <= 0 {
		retry = 1
	}
	return &admissionController{
		queueHigh:  cfg.AdmissionQueueHigh,
		streamHigh: int64(cfg.AdmissionStreamHigh),
		retryAfter: retry,
		metrics:    m,
	}
}

// admitJob reports whether a job that would enqueue may proceed given
// the current backlog depth. Cache hits never reach this check — a
// request served from memory costs nothing and shedding it would only
// add retry traffic.
func (a *admissionController) admitJob(depth int) bool {
	if a == nil || a.queueHigh <= 0 {
		return true
	}
	return depth < a.queueHigh
}

// acquireStream reserves an in-flight stream slot. ok=false means the
// watermark is crossed and the request must be shed; otherwise release
// must be called when the stream ends.
func (a *admissionController) acquireStream() (release func(), ok bool) {
	if a == nil || a.streamHigh <= 0 {
		return func() {}, true
	}
	if n := a.streams.Add(1); n > a.streamHigh {
		a.streams.Add(-1)
		return nil, false
	}
	return func() { a.streams.Add(-1) }, true
}

// inFlightStreams reports the current stream count (for the gauge).
func (a *admissionController) inFlightStreams() int64 {
	if a == nil {
		return 0
	}
	return a.streams.Load()
}

// shed writes the 429 rejection: Retry-After header, rejection counter,
// JSON error body.
func (a *admissionController) shed(w http.ResponseWriter, stream bool) {
	w.Header().Set("Retry-After", strconv.Itoa(a.retryAfter))
	a.metrics.observeAdmissionRejection(stream)
	writeErr(w, http.StatusTooManyRequests,
		fmt.Errorf("%w: retry after %ds", ErrSaturated, a.retryAfter))
}
