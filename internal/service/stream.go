package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"
	"unicode"
	"unicode/utf8"

	"graphspar/internal/dynamic"
	"graphspar/internal/obs"
	"graphspar/internal/params"
	"graphspar/internal/sessions"
)

// This file is the service's true-streaming surface: POST
// /v1/graphs/{name}/stream accepts a chunked NDJSON/event-line body of
// update batches and applies each one through the graph's persistent
// session (creating it cold on first use), streaming one certificate
// result line back per batch. Unlike PATCH — whose per-request cost was
// the whole point of ROADMAP's "service-side persistent maintainers" —
// a stream of B batches pays one maintainer build and B incremental
// applies, never B reconciles.

// streamDecoder incrementally decodes the update-stream wire format: one
// event per line, either the text form of dynamic.ParseEvents ("+ u v w",
// "- u v", "= u v w", "commit") or its NDJSON equivalent
// ({"op":"insert","u":0,"v":1,"w":2.5}, with {"op":"commit"} as the batch
// separator). Blank lines and #-comments are skipped. Next returns one
// batch at a time, so multi-million-event streams never materialize in
// memory. The decoder sits on the hot path of those streams, so it works
// on the scanner's byte slices and reuses its batch buffer and JSON
// scratch across calls — steady-state decoding does not allocate per
// event (see TestStreamDecodeAllocs).
type streamDecoder struct {
	sc       *bufio.Scanner
	lineNo   int
	maxBatch int
	batch    []dynamic.Update // reused backing array; see Next
	scratch  updateJSON       // reused NDJSON decode target
}

// maxStreamLineBytes bounds one event line (a single JSON event is tiny;
// this leaves generous headroom without letting a hostile body allocate
// unbounded scanner buffers).
const maxStreamLineBytes = 1 << 20

func newStreamDecoder(r io.Reader, maxBatch int) *streamDecoder {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), maxStreamLineBytes)
	return &streamDecoder{sc: sc, maxBatch: maxBatch}
}

// batchDecoder is the wire-format seam of the stream endpoint: both the
// text/NDJSON decoder and the binary one yield reused batches with the
// same Next contract, so the apply loop is format-blind.
type batchDecoder interface {
	// Next returns the next non-empty batch, or io.EOF at a clean end of
	// stream. The returned slice is only valid until the next call.
	Next() ([]dynamic.Update, error)
}

// binaryStreamDecoder adapts dynamic.BinaryReader to the batchDecoder
// contract — the allocation-free peer of streamDecoder's text fast path
// (same reused batch backing array, same batch-size bound).
type binaryStreamDecoder struct {
	r        *dynamic.BinaryReader
	maxBatch int
	batch    []dynamic.Update // reused backing array, as in streamDecoder
}

func newBinaryStreamDecoder(r io.Reader, maxBatch int) *binaryStreamDecoder {
	return &binaryStreamDecoder{r: dynamic.NewBinaryReader(r), maxBatch: maxBatch}
}

func (d *binaryStreamDecoder) Next() ([]dynamic.Update, error) {
	cur := d.batch[:0]
	for {
		u, commit, err := d.r.Next()
		if err != nil {
			d.batch = cur
			if errors.Is(err, io.EOF) {
				if len(cur) > 0 {
					return cur, nil // final implicit batch
				}
				return nil, io.EOF
			}
			return nil, err
		}
		if commit {
			if len(cur) > 0 {
				d.batch = cur
				return cur, nil
			}
			continue // consecutive commits delimit nothing
		}
		cur = append(cur, u)
		if d.maxBatch > 0 && len(cur) > d.maxBatch {
			d.batch = cur
			return nil, fmt.Errorf("record %d: %w: batch exceeds %d updates; split it with commit records",
				d.r.Records(), dynamic.ErrBadUpdate, d.maxBatch)
		}
	}
}

// isBinaryStream reports whether the request negotiated the compact
// binary event format. Only the media type is compared (parameters such
// as charset are ignored); any other Content-Type — including none —
// falls back to the text/NDJSON decoder, which self-discriminates per
// line.
func isBinaryStream(contentType string) bool {
	mediaType, _, _ := strings.Cut(contentType, ";")
	return strings.TrimSpace(mediaType) == dynamic.BinaryContentType
}

// Next returns the next non-empty batch, or io.EOF at end of stream. A
// malformed line fails the whole stream (the decoder cannot resync).
// The returned slice shares the decoder's backing array and is only
// valid until the next call — callers must finish applying one batch
// before asking for the next, which the streaming protocol guarantees
// anyway (one result line per batch).
func (d *streamDecoder) Next() ([]dynamic.Update, error) {
	cur := d.batch[:0]
	for d.sc.Scan() {
		d.lineNo++
		line := bytes.TrimSpace(d.sc.Bytes())
		if len(line) == 0 || line[0] == '#' {
			continue
		}
		var (
			u      dynamic.Update
			commit bool
			err    error
		)
		if line[0] == '{' {
			u, commit, err = d.parseJSONEvent(line)
		} else {
			u, commit, err = parseTextEvent(line)
		}
		if err != nil {
			d.batch = cur
			return nil, fmt.Errorf("line %d: %w", d.lineNo, err)
		}
		if commit {
			if len(cur) > 0 {
				d.batch = cur
				return cur, nil
			}
			continue // consecutive commits delimit nothing
		}
		cur = append(cur, u)
		if d.maxBatch > 0 && len(cur) > d.maxBatch {
			d.batch = cur
			return nil, fmt.Errorf("line %d: %w: batch exceeds %d updates; split it with commit lines",
				d.lineNo, dynamic.ErrBadUpdate, d.maxBatch)
		}
	}
	d.batch = cur
	if err := d.sc.Err(); err != nil {
		return nil, err
	}
	if len(cur) > 0 {
		return cur, nil
	}
	return nil, io.EOF
}

// parseJSONEvent decodes one NDJSON event line — the same updateJSON
// wire struct the PATCH body uses, so the two surfaces cannot diverge —
// with {"op":"commit"} as the batch separator. The decode target is the
// decoder's scratch struct, reset each call, so the only per-event
// allocations are json-internal.
func (d *streamDecoder) parseJSONEvent(line []byte) (dynamic.Update, bool, error) {
	d.scratch = updateJSON{}
	if err := json.Unmarshal(line, &d.scratch); err != nil {
		return dynamic.Update{}, false, fmt.Errorf("%w: %v", dynamic.ErrBadUpdate, err)
	}
	ev := &d.scratch
	if ev.Op == "commit" {
		return dynamic.Update{}, true, nil
	}
	op, err := dynamic.ParseOp(ev.Op)
	if err != nil {
		return dynamic.Update{}, false, err
	}
	return dynamic.Update{Op: op, U: ev.U, V: ev.V, W: ev.W}, false, nil
}

// parseTextEvent mirrors dynamic.ParseEventLine on the scanner's byte
// slice, skipping the per-line string and field-slice allocations of the
// string form. Field splitting matches strings.Fields (any Unicode
// whitespace separates), so the two parsers accept the same lines.
func parseTextEvent(line []byte) (dynamic.Update, bool, error) {
	if string(line) == "commit" {
		return dynamic.Update{}, true, nil
	}
	var f [5][]byte
	n := 0
	for i := 0; i < len(line); {
		r, size := utf8.DecodeRune(line[i:])
		if unicode.IsSpace(r) {
			i += size
			continue
		}
		j := i
		for j < len(line) {
			r, size := utf8.DecodeRune(line[j:])
			if unicode.IsSpace(r) {
				break
			}
			j += size
		}
		if n == len(f) {
			// No event has 5 fields; fail like the field-count checks below.
			return dynamic.Update{}, false, fmt.Errorf("%w: too many fields", dynamic.ErrBadUpdate)
		}
		f[n] = line[i:j]
		n++
		i = j
	}
	if n == 0 {
		return dynamic.Update{}, false, fmt.Errorf("%w: empty event line", dynamic.ErrBadUpdate)
	}
	op, err := parseOpBytes(f[0])
	if err != nil {
		return dynamic.Update{}, false, err
	}
	want := 3
	if op == dynamic.OpDelete {
		want = 2
	}
	if n != want+1 {
		return dynamic.Update{}, false, fmt.Errorf("%w: %q needs %d fields", dynamic.ErrBadUpdate, f[0], want+1)
	}
	u, err := atoiBytes(f[1])
	if err != nil {
		return dynamic.Update{}, false, err
	}
	v, err := atoiBytes(f[2])
	if err != nil {
		return dynamic.Update{}, false, err
	}
	w := 0.0
	if op != dynamic.OpDelete {
		// The only remaining conversion allocation: ParseFloat wants a
		// string, and the number is a handful of bytes.
		w, err = strconv.ParseFloat(string(f[3]), 64)
		if err != nil {
			return dynamic.Update{}, false, fmt.Errorf("%w: %v", dynamic.ErrBadUpdate, err)
		}
	}
	return dynamic.Update{Op: op, U: u, V: v, W: w}, false, nil
}

// parseOpBytes is dynamic.ParseOp without the string conversion (a
// switch on string(b) compiles allocation-free).
func parseOpBytes(b []byte) (dynamic.Op, error) {
	switch string(b) {
	case "+", "insert":
		return dynamic.OpInsert, nil
	case "-", "delete":
		return dynamic.OpDelete, nil
	case "=", "reweight":
		return dynamic.OpReweight, nil
	}
	return 0, fmt.Errorf("%w: unknown op %q", dynamic.ErrBadUpdate, b)
}

// atoiBytes parses a (possibly signed) decimal integer from bytes
// without converting to string.
func atoiBytes(b []byte) (int, error) {
	i, neg := 0, false
	if len(b) > 0 && (b[0] == '+' || b[0] == '-') {
		neg = b[0] == '-'
		i = 1
	}
	if i == len(b) {
		return 0, fmt.Errorf("%w: bad integer %q", dynamic.ErrBadUpdate, b)
	}
	n := 0
	for ; i < len(b); i++ {
		d := b[i] - '0'
		if d > 9 {
			return 0, fmt.Errorf("%w: bad integer %q", dynamic.ErrBadUpdate, b)
		}
		n = n*10 + int(d)
		if n < 0 {
			return 0, fmt.Errorf("%w: integer %q overflows", dynamic.ErrBadUpdate, b)
		}
	}
	if neg {
		n = -n
	}
	return n, nil
}

// streamParams fills SparsifyParams from the stream endpoint's query
// string (the body carries events, so parameters travel in the URL).
func streamParams(q url.Values) (SparsifyParams, error) {
	var p SparsifyParams
	bad := func(name string, err error) (SparsifyParams, error) {
		return p, fmt.Errorf("%w: query parameter %q: %v", params.ErrInvalid, name, err)
	}
	if v := q.Get("sigma2"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return bad("sigma2", err)
		}
		p.SigmaSq = f
	}
	for _, it := range []struct {
		name string
		dst  *int
	}{{"t", &p.T}, {"r", &p.NumVectors}, {"shards", &p.Shards}, {"workers", &p.Workers}} {
		if v := q.Get(it.name); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil {
				return bad(it.name, err)
			}
			*it.dst = n
		}
	}
	if v := q.Get("seed"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			return bad("seed", err)
		}
		p.Seed = n
	}
	p.TreeAlg = q.Get("tree")
	p.Partition = q.Get("partition")
	if err := p.Canon(); err != nil {
		return p, err
	}
	return p, nil
}

// Session-consistency sentinels. Stale means the registry moved without
// the session (a cold PATCH won a race); corrupt means the maintainer
// mutated past its commit point but the registry swap failed, so the
// session can no longer be trusted. Both close the session; stale is
// retryable, corrupt surfaces as a 500.
var (
	errSessionStale   = errors.New("service: session is stale against the registry")
	errSessionCorrupt = errors.New("service: session diverged from the registry")
)

// isBatchRejection reports whether a maintainer Apply error rejected the
// batch atomically (maintainer unchanged, session still healthy) rather
// than failing mid-maintenance.
func isBatchRejection(err error) bool {
	return errors.Is(err, dynamic.ErrBadUpdate) || errors.Is(err, dynamic.ErrEdgeExists) ||
		errors.Is(err, dynamic.ErrEdgeMissing) || errors.Is(err, dynamic.ErrWouldDisconnect)
}

// sessionApply reports one batch routed through a session.
type sessionApply struct {
	info       graphInfo
	prevHash   string
	stats      sessions.Stats
	sparsEdges int
	evicted    int
}

// applySessionBatch routes one update batch through a live session,
// keeping the registry and the maintainer in lockstep: inside the
// session's single-writer loop the maintainer applies the batch (graph +
// sparsifier together, no reconcile), then the registry entry is
// compare-and-swapped to the maintainer's new graph. Any outcome that
// could leave the two diverged closes the session, so later requests
// fall back to the cold path instead of serving drifted state.
func (s *Server) applySessionBatch(ctx context.Context, sess *sessions.Session, name string, batch []dynamic.Update) (*sessionApply, error) {
	out := &sessionApply{}
	err := sess.DoMutate(ctx, func(m sessions.Maintainer) (string, error) {
		cur, err := s.registry.Get(name)
		if err != nil {
			return "", fmt.Errorf("%w: %v", errSessionCorrupt, err) // graph deleted under the session
		}
		prevHash := sess.Hash()
		if cur.Hash != prevHash {
			return "", errSessionStale
		}
		// The apply itself runs under Background: once the maintainer
		// passes its commit point a cancellation could strand it half
		// maintained, and batches are bounded so the work is too. The
		// caller's phase trace (if any) still rides along — spans are
		// observability, not cancellation.
		applyCtx := context.Background()
		if tr := obs.FromContext(ctx); tr != nil {
			applyCtx = obs.WithTrace(applyCtx, tr)
		}
		if err := m.Apply(applyCtx, batch); err != nil {
			if isBatchRejection(err) {
				return "", err
			}
			return "", fmt.Errorf("%w: %v", errSessionCorrupt, err)
		}
		updated, err := s.registry.Update(name, prevHash, m.Graph())
		if err != nil {
			return "", fmt.Errorf("%w: %v", errSessionCorrupt, err)
		}
		out.prevHash = prevHash
		out.info = toGraphInfo(updated)
		out.stats = sessions.Snapshot(m)
		out.sparsEdges = m.Sparsifier().M()
		// The registry swap already hashed the new graph; hand it to the
		// session so the manager skips its own O(m) pass.
		return updated.Hash, nil
	})
	if err != nil {
		if errors.Is(err, errSessionStale) || errors.Is(err, errSessionCorrupt) {
			// Close exactly the session that failed; a newer replacement
			// already registered under the name stays untouched.
			sess.Invalidate()
		}
		return nil, err
	}
	if s.cache != nil && out.info.Hash != out.prevHash {
		out.evicted = s.cache.InvalidateGraph(out.prevHash)
	}
	return out, nil
}

// streamLine is one NDJSON response line: a per-batch certificate result
// (Batch > 0) or the terminal summary (Done true).
type streamLine struct {
	Batch           int             `json:"batch,omitempty"`
	Updates         int             `json:"updates,omitempty"`
	Applied         bool            `json:"applied,omitempty"`
	Rejected        bool            `json:"rejected,omitempty"`
	Error           string          `json:"error,omitempty"`
	Hash            string          `json:"hash,omitempty"`
	GraphEdges      int             `json:"m,omitempty"`
	SparsifierEdges int             `json:"sparsifier_edges,omitempty"`
	Cond            float64         `json:"condition_number,omitempty"`
	TargetMet       bool            `json:"target_met,omitempty"`
	Session         string          `json:"session,omitempty"` // hit | cold
	DurationMs      float64         `json:"duration_ms,omitempty"`
	CacheEvicted    int             `json:"cache_entries_evicted,omitempty"`
	Done            bool            `json:"done,omitempty"`
	Batches         int             `json:"batches,omitempty"`
	AppliedTotal    int             `json:"applied_total,omitempty"`
	RejectedTotal   int             `json:"rejected_total,omitempty"`
	Graph           *graphInfo      `json:"graph,omitempty"`
	SessionStats    *sessions.Stats `json:"session_stats,omitempty"`
	// Phases is this batch's maintenance breakdown (settle, refilter,
	// embed, verify; plus the build phases on a cold first batch). Only
	// populated with ?trace=1.
	Phases []PhaseMs `json:"phases,omitempty"`

	fatal        bool // stop reading the request body after this line
	sessionStats sessions.Stats
}

// handleStreamEvents is POST /v1/graphs/{name}/stream: chunked ingestion
// of update batches through the graph's persistent session, one result
// line streamed back per batch plus a terminal summary. Parameters ride
// the query string (sigma2 required, plus t/r/tree/seed/shards/workers/
// partition as for jobs). Rejected batches (validation, bridge deletes)
// report and the stream continues; decode errors and internal failures
// terminate it.
func (s *Server) handleStreamEvents(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if s.sessions == nil || s.maintain == nil {
		writeErr(w, http.StatusNotImplemented,
			errors.New("streaming sessions are disabled on this server (no maintainer runner or -session-max 0)"))
		return
	}
	p, err := streamParams(r.URL.Query())
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if _, err := s.registry.Get(name); err != nil {
		writeErr(w, errStatus(err), err)
		return
	}
	// Admission: a stream holds a session (and possibly a cold maintainer
	// build) for its whole life, so the watermark counts whole requests.
	release, ok := s.admission.acquireStream()
	if !ok {
		s.admission.shed(w, true)
		return
	}
	defer release()

	// Result lines are flushed while the (possibly chunked) request body
	// is still streaming in; HTTP/1.x needs full duplex opted in or the
	// server aborts body reads after the first write.
	rc := http.NewResponseController(w)
	_ = rc.EnableFullDuplex() // best-effort: HTTP/2 is duplex already
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	flush := func() { _ = rc.Flush() }
	emit := func(line streamLine) {
		_ = enc.Encode(line)
		flush()
	}

	trace := r.URL.Query().Get("trace") == "1"
	key := p.sessionKey()
	// Content-Type picks the wire format; both decoders satisfy the same
	// batch contract.
	var dec batchDecoder
	if isBinaryStream(r.Header.Get("Content-Type")) {
		dec = newBinaryStreamDecoder(r.Body, maxPatchUpdates)
	} else {
		dec = newStreamDecoder(r.Body, maxPatchUpdates)
	}
	var batches, applied, rejected int
	var lastStats *sessions.Stats
	for {
		batch, err := dec.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			emit(streamLine{Error: err.Error()})
			break
		}
		batches++
		// Each batch gets its own trace, so the per-line Phases are that
		// batch's work alone.
		ctx := r.Context()
		var tr *obs.Trace
		if trace {
			tr = obs.NewTrace()
			ctx = obs.WithTrace(ctx, tr)
		}
		t0 := time.Now()
		line := s.streamApply(ctx, name, key, p, batch)
		line.Batch = batches
		line.Updates = len(batch)
		outcome := batchFailed
		switch {
		case line.Applied:
			outcome = batchApplied
			applied++
			st := line.sessionStats
			lastStats = &st
		case line.Rejected:
			outcome = batchRejected
			rejected++
		}
		s.metrics.observeStreamBatch(outcome, time.Since(t0))
		if tr != nil {
			line.Phases = toPhaseMs(tr.Phases())
		}
		emit(line)
		if line.fatal {
			break
		}
	}
	sum := streamLine{Done: true, Batches: batches, AppliedTotal: applied, RejectedTotal: rejected, SessionStats: lastStats}
	if entry, err := s.registry.Get(name); err == nil {
		gi := toGraphInfo(entry)
		sum.Graph = &gi
	}
	emit(sum)
}

// streamApply applies one decoded batch through the graph's session,
// acquiring or cold-building it as needed, with a bounded retry when the
// session raced a cold PATCH.
func (s *Server) streamApply(ctx context.Context, name, key string, p SparsifyParams, batch []dynamic.Update) streamLine {
	fatal := func(err error) streamLine {
		return streamLine{Error: err.Error(), fatal: true}
	}
	const retries = 3
	for attempt := 0; ; attempt++ {
		entry, err := s.registry.Get(name)
		if err != nil {
			return fatal(err)
		}
		state := "hit"
		sess := s.sessions.Get(name, entry.Hash, key)
		if sess == nil {
			// Cold path: build a live maintainer for the current graph and
			// make it resident. The build is a full sparsification, so it
			// takes a slot from the same bound the job workers share, and
			// the session is re-checked after the wait — a racing stream
			// request may have built it for us while we queued.
			select {
			case s.maintainSem <- struct{}{}:
			case <-ctx.Done():
				return fatal(ctx.Err())
			}
			if sess = s.sessions.Get(name, entry.Hash, key); sess == nil {
				m, err := s.maintain(ctx, entry.Graph, p)
				if err != nil {
					<-s.maintainSem
					return fatal(err)
				}
				sess = s.sessions.Install(name, key, m)
				if sess == nil {
					<-s.maintainSem
					return fatal(errors.New("session manager rejected the install (shutting down?)"))
				}
				state = "cold"
			}
			<-s.maintainSem
		}
		t0 := time.Now()
		res, err := s.applySessionBatch(ctx, sess, name, batch)
		switch {
		case err == nil:
			return streamLine{
				Applied:         true,
				Hash:            res.info.Hash,
				GraphEdges:      res.info.M,
				SparsifierEdges: res.sparsEdges,
				Cond:            res.stats.Cond,
				TargetMet:       res.stats.TargetMet,
				Session:         state,
				DurationMs:      float64(time.Since(t0).Microseconds()) / 1000,
				CacheEvicted:    res.evicted,
				sessionStats:    res.stats,
			}
		case errors.Is(err, sessions.ErrSessionGone), errors.Is(err, errSessionStale):
			if attempt < retries {
				continue
			}
			return fatal(err)
		case isBatchRejection(err):
			return streamLine{Rejected: true, Error: err.Error(), Session: state}
		default:
			return fatal(err)
		}
	}
}
