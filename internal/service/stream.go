package service

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"graphspar/internal/dynamic"
	"graphspar/internal/params"
	"graphspar/internal/sessions"
)

// This file is the service's true-streaming surface: POST
// /v1/graphs/{name}/stream accepts a chunked NDJSON/event-line body of
// update batches and applies each one through the graph's persistent
// session (creating it cold on first use), streaming one certificate
// result line back per batch. Unlike PATCH — whose per-request cost was
// the whole point of ROADMAP's "service-side persistent maintainers" —
// a stream of B batches pays one maintainer build and B incremental
// applies, never B reconciles.

// streamDecoder incrementally decodes the update-stream wire format: one
// event per line, either the text form of dynamic.ParseEvents ("+ u v w",
// "- u v", "= u v w", "commit") or its NDJSON equivalent
// ({"op":"insert","u":0,"v":1,"w":2.5}, with {"op":"commit"} as the batch
// separator). Blank lines and #-comments are skipped. Next returns one
// batch at a time, so multi-million-event streams never materialize in
// memory.
type streamDecoder struct {
	sc       *bufio.Scanner
	lineNo   int
	maxBatch int
}

// maxStreamLineBytes bounds one event line (a single JSON event is tiny;
// this leaves generous headroom without letting a hostile body allocate
// unbounded scanner buffers).
const maxStreamLineBytes = 1 << 20

func newStreamDecoder(r io.Reader, maxBatch int) *streamDecoder {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), maxStreamLineBytes)
	return &streamDecoder{sc: sc, maxBatch: maxBatch}
}

// Next returns the next non-empty batch, or io.EOF at end of stream. A
// malformed line fails the whole stream (the decoder cannot resync).
func (d *streamDecoder) Next() ([]dynamic.Update, error) {
	var cur []dynamic.Update
	for d.sc.Scan() {
		d.lineNo++
		line := strings.TrimSpace(d.sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		var (
			u      dynamic.Update
			commit bool
			err    error
		)
		if strings.HasPrefix(line, "{") {
			u, commit, err = parseJSONEvent(line)
		} else {
			u, commit, err = dynamic.ParseEventLine(line)
		}
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", d.lineNo, err)
		}
		if commit {
			if len(cur) > 0 {
				return cur, nil
			}
			continue // consecutive commits delimit nothing
		}
		cur = append(cur, u)
		if d.maxBatch > 0 && len(cur) > d.maxBatch {
			return nil, fmt.Errorf("line %d: %w: batch exceeds %d updates; split it with commit lines",
				d.lineNo, dynamic.ErrBadUpdate, d.maxBatch)
		}
	}
	if err := d.sc.Err(); err != nil {
		return nil, err
	}
	if len(cur) > 0 {
		return cur, nil
	}
	return nil, io.EOF
}

// parseJSONEvent decodes one NDJSON event line — the same updateJSON
// wire struct the PATCH body uses, so the two surfaces cannot diverge —
// with {"op":"commit"} as the batch separator.
func parseJSONEvent(line string) (dynamic.Update, bool, error) {
	var ev updateJSON
	if err := json.Unmarshal([]byte(line), &ev); err != nil {
		return dynamic.Update{}, false, fmt.Errorf("%w: %v", dynamic.ErrBadUpdate, err)
	}
	if ev.Op == "commit" {
		return dynamic.Update{}, true, nil
	}
	op, err := dynamic.ParseOp(ev.Op)
	if err != nil {
		return dynamic.Update{}, false, err
	}
	return dynamic.Update{Op: op, U: ev.U, V: ev.V, W: ev.W}, false, nil
}

// streamParams fills SparsifyParams from the stream endpoint's query
// string (the body carries events, so parameters travel in the URL).
func streamParams(q url.Values) (SparsifyParams, error) {
	var p SparsifyParams
	bad := func(name string, err error) (SparsifyParams, error) {
		return p, fmt.Errorf("%w: query parameter %q: %v", params.ErrInvalid, name, err)
	}
	if v := q.Get("sigma2"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return bad("sigma2", err)
		}
		p.SigmaSq = f
	}
	for _, it := range []struct {
		name string
		dst  *int
	}{{"t", &p.T}, {"r", &p.NumVectors}, {"shards", &p.Shards}, {"workers", &p.Workers}} {
		if v := q.Get(it.name); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil {
				return bad(it.name, err)
			}
			*it.dst = n
		}
	}
	if v := q.Get("seed"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			return bad("seed", err)
		}
		p.Seed = n
	}
	p.TreeAlg = q.Get("tree")
	p.Partition = q.Get("partition")
	if err := p.Canon(); err != nil {
		return p, err
	}
	return p, nil
}

// Session-consistency sentinels. Stale means the registry moved without
// the session (a cold PATCH won a race); corrupt means the maintainer
// mutated past its commit point but the registry swap failed, so the
// session can no longer be trusted. Both close the session; stale is
// retryable, corrupt surfaces as a 500.
var (
	errSessionStale   = errors.New("service: session is stale against the registry")
	errSessionCorrupt = errors.New("service: session diverged from the registry")
)

// isBatchRejection reports whether a maintainer Apply error rejected the
// batch atomically (maintainer unchanged, session still healthy) rather
// than failing mid-maintenance.
func isBatchRejection(err error) bool {
	return errors.Is(err, dynamic.ErrBadUpdate) || errors.Is(err, dynamic.ErrEdgeExists) ||
		errors.Is(err, dynamic.ErrEdgeMissing) || errors.Is(err, dynamic.ErrWouldDisconnect)
}

// sessionApply reports one batch routed through a session.
type sessionApply struct {
	info       graphInfo
	prevHash   string
	stats      sessions.Stats
	sparsEdges int
	evicted    int
}

// applySessionBatch routes one update batch through a live session,
// keeping the registry and the maintainer in lockstep: inside the
// session's single-writer loop the maintainer applies the batch (graph +
// sparsifier together, no reconcile), then the registry entry is
// compare-and-swapped to the maintainer's new graph. Any outcome that
// could leave the two diverged closes the session, so later requests
// fall back to the cold path instead of serving drifted state.
func (s *Server) applySessionBatch(ctx context.Context, sess *sessions.Session, name string, batch []dynamic.Update) (*sessionApply, error) {
	out := &sessionApply{}
	err := sess.DoMutate(ctx, func(m sessions.Maintainer) (string, error) {
		cur, err := s.registry.Get(name)
		if err != nil {
			return "", fmt.Errorf("%w: %v", errSessionCorrupt, err) // graph deleted under the session
		}
		prevHash := sess.Hash()
		if cur.Hash != prevHash {
			return "", errSessionStale
		}
		// The apply itself runs under Background: once the maintainer
		// passes its commit point a cancellation could strand it half
		// maintained, and batches are bounded so the work is too.
		if err := m.Apply(context.Background(), batch); err != nil {
			if isBatchRejection(err) {
				return "", err
			}
			return "", fmt.Errorf("%w: %v", errSessionCorrupt, err)
		}
		updated, err := s.registry.Update(name, prevHash, m.Graph())
		if err != nil {
			return "", fmt.Errorf("%w: %v", errSessionCorrupt, err)
		}
		out.prevHash = prevHash
		out.info = toGraphInfo(updated)
		out.stats = sessions.Snapshot(m)
		out.sparsEdges = m.Sparsifier().M()
		// The registry swap already hashed the new graph; hand it to the
		// session so the manager skips its own O(m) pass.
		return updated.Hash, nil
	})
	if err != nil {
		if errors.Is(err, errSessionStale) || errors.Is(err, errSessionCorrupt) {
			// Close exactly the session that failed; a newer replacement
			// already registered under the name stays untouched.
			sess.Invalidate()
		}
		return nil, err
	}
	if s.cache != nil && out.info.Hash != out.prevHash {
		out.evicted = s.cache.InvalidateGraph(out.prevHash)
	}
	return out, nil
}

// streamLine is one NDJSON response line: a per-batch certificate result
// (Batch > 0) or the terminal summary (Done true).
type streamLine struct {
	Batch           int             `json:"batch,omitempty"`
	Updates         int             `json:"updates,omitempty"`
	Applied         bool            `json:"applied,omitempty"`
	Rejected        bool            `json:"rejected,omitempty"`
	Error           string          `json:"error,omitempty"`
	Hash            string          `json:"hash,omitempty"`
	GraphEdges      int             `json:"m,omitempty"`
	SparsifierEdges int             `json:"sparsifier_edges,omitempty"`
	Cond            float64         `json:"condition_number,omitempty"`
	TargetMet       bool            `json:"target_met,omitempty"`
	Session         string          `json:"session,omitempty"` // hit | cold
	DurationMs      float64         `json:"duration_ms,omitempty"`
	CacheEvicted    int             `json:"cache_entries_evicted,omitempty"`
	Done            bool            `json:"done,omitempty"`
	Batches         int             `json:"batches,omitempty"`
	AppliedTotal    int             `json:"applied_total,omitempty"`
	RejectedTotal   int             `json:"rejected_total,omitempty"`
	Graph           *graphInfo      `json:"graph,omitempty"`
	SessionStats    *sessions.Stats `json:"session_stats,omitempty"`

	fatal        bool // stop reading the request body after this line
	sessionStats sessions.Stats
}

// handleStreamEvents is POST /v1/graphs/{name}/stream: chunked ingestion
// of update batches through the graph's persistent session, one result
// line streamed back per batch plus a terminal summary. Parameters ride
// the query string (sigma2 required, plus t/r/tree/seed/shards/workers/
// partition as for jobs). Rejected batches (validation, bridge deletes)
// report and the stream continues; decode errors and internal failures
// terminate it.
func (s *Server) handleStreamEvents(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if s.sessions == nil || s.maintain == nil {
		writeErr(w, http.StatusNotImplemented,
			errors.New("streaming sessions are disabled on this server (no maintainer runner or -session-max 0)"))
		return
	}
	p, err := streamParams(r.URL.Query())
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if _, err := s.registry.Get(name); err != nil {
		writeErr(w, errStatus(err), err)
		return
	}

	// Result lines are flushed while the (possibly chunked) request body
	// is still streaming in; HTTP/1.x needs full duplex opted in or the
	// server aborts body reads after the first write.
	rc := http.NewResponseController(w)
	_ = rc.EnableFullDuplex() // best-effort: HTTP/2 is duplex already
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	flush := func() { _ = rc.Flush() }
	emit := func(line streamLine) {
		_ = enc.Encode(line)
		flush()
	}

	key := p.sessionKey()
	dec := newStreamDecoder(r.Body, maxPatchUpdates)
	var batches, applied, rejected int
	var lastStats *sessions.Stats
	for {
		batch, err := dec.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			emit(streamLine{Error: err.Error()})
			break
		}
		batches++
		line := s.streamApply(r.Context(), name, key, p, batch)
		line.Batch = batches
		line.Updates = len(batch)
		switch {
		case line.Applied:
			applied++
			st := line.sessionStats
			lastStats = &st
		case line.Rejected:
			rejected++
		}
		emit(line)
		if line.fatal {
			break
		}
	}
	sum := streamLine{Done: true, Batches: batches, AppliedTotal: applied, RejectedTotal: rejected, SessionStats: lastStats}
	if entry, err := s.registry.Get(name); err == nil {
		gi := toGraphInfo(entry)
		sum.Graph = &gi
	}
	emit(sum)
}

// streamApply applies one decoded batch through the graph's session,
// acquiring or cold-building it as needed, with a bounded retry when the
// session raced a cold PATCH.
func (s *Server) streamApply(ctx context.Context, name, key string, p SparsifyParams, batch []dynamic.Update) streamLine {
	fatal := func(err error) streamLine {
		return streamLine{Error: err.Error(), fatal: true}
	}
	const retries = 3
	for attempt := 0; ; attempt++ {
		entry, err := s.registry.Get(name)
		if err != nil {
			return fatal(err)
		}
		state := "hit"
		sess := s.sessions.Get(name, entry.Hash, key)
		if sess == nil {
			// Cold path: build a live maintainer for the current graph and
			// make it resident. The build is a full sparsification, so it
			// takes a slot from the same bound the job workers share, and
			// the session is re-checked after the wait — a racing stream
			// request may have built it for us while we queued.
			select {
			case s.maintainSem <- struct{}{}:
			case <-ctx.Done():
				return fatal(ctx.Err())
			}
			if sess = s.sessions.Get(name, entry.Hash, key); sess == nil {
				m, err := s.maintain(ctx, entry.Graph, p)
				if err != nil {
					<-s.maintainSem
					return fatal(err)
				}
				sess = s.sessions.Install(name, key, m)
				if sess == nil {
					<-s.maintainSem
					return fatal(errors.New("session manager rejected the install (shutting down?)"))
				}
				state = "cold"
			}
			<-s.maintainSem
		}
		t0 := time.Now()
		res, err := s.applySessionBatch(ctx, sess, name, batch)
		switch {
		case err == nil:
			return streamLine{
				Applied:         true,
				Hash:            res.info.Hash,
				GraphEdges:      res.info.M,
				SparsifierEdges: res.sparsEdges,
				Cond:            res.stats.Cond,
				TargetMet:       res.stats.TargetMet,
				Session:         state,
				DurationMs:      float64(time.Since(t0).Microseconds()) / 1000,
				CacheEvicted:    res.evicted,
				sessionStats:    res.stats,
			}
		case errors.Is(err, sessions.ErrSessionGone), errors.Is(err, errSessionStale):
			if attempt < retries {
				continue
			}
			return fatal(err)
		case isBatchRejection(err):
			return streamLine{Rejected: true, Error: err.Error(), Session: state}
		default:
			return fatal(err)
		}
	}
}
