package service

import (
	"errors"
	"testing"

	"graphspar/internal/gen"
	"graphspar/internal/graph"
)

func testGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := gen.Grid2D(5, 5, gen.UniformWeights, 7)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestHashGraphCanonical(t *testing.T) {
	// Same structure supplied in different edge orders/orientations must
	// hash identically (graph.New normalizes).
	a := graph.MustNew(3, []graph.Edge{{U: 0, V: 1, W: 2}, {U: 1, V: 2, W: 3}})
	b := graph.MustNew(3, []graph.Edge{{U: 2, V: 1, W: 3}, {U: 1, V: 0, W: 2}})
	if HashGraph(a) != HashGraph(b) {
		t.Error("hash differs for structurally equal graphs")
	}
	c := graph.MustNew(3, []graph.Edge{{U: 0, V: 1, W: 2}, {U: 1, V: 2, W: 4}})
	if HashGraph(a) == HashGraph(c) {
		t.Error("hash collides across different weights")
	}
	d := graph.MustNew(4, []graph.Edge{{U: 0, V: 1, W: 2}, {U: 1, V: 2, W: 3}})
	if HashGraph(a) == HashGraph(d) {
		t.Error("hash collides across different vertex counts")
	}
}

func TestRegistryRegisterGetDelete(t *testing.T) {
	r := NewRegistry()
	g := testGraph(t)

	e, err := r.Register("grid5", "grid:5x5:uniform", g)
	if err != nil {
		t.Fatal(err)
	}
	if e.N != g.N() || e.M != g.M() || e.Hash == "" {
		t.Errorf("bad entry: %+v", e)
	}

	got, err := r.Get("grid5")
	if err != nil || got != e {
		t.Fatalf("Get = %v, %v", got, err)
	}
	if _, err := r.Get("nope"); !errors.Is(err, ErrGraphNotFound) {
		t.Errorf("missing graph: err = %v, want ErrGraphNotFound", err)
	}

	if r.Len() != 1 {
		t.Errorf("Len = %d, want 1", r.Len())
	}
	if err := r.Delete("grid5"); err != nil {
		t.Fatal(err)
	}
	if err := r.Delete("grid5"); !errors.Is(err, ErrGraphNotFound) {
		t.Errorf("double delete: err = %v, want ErrGraphNotFound", err)
	}
}

func TestRegistryNameConflict(t *testing.T) {
	r := NewRegistry()
	g := testGraph(t)
	if _, err := r.Register("g", "spec", g); err != nil {
		t.Fatal(err)
	}
	// Same name + same content is idempotent.
	if _, err := r.Register("g", "spec", g); err != nil {
		t.Errorf("idempotent re-register failed: %v", err)
	}
	// Same name + different content conflicts.
	other := graph.MustNew(2, []graph.Edge{{U: 0, V: 1, W: 1}})
	if _, err := r.Register("g", "spec2", other); !errors.Is(err, ErrGraphExists) {
		t.Errorf("conflicting register: err = %v, want ErrGraphExists", err)
	}
}

func TestRegistryBadNames(t *testing.T) {
	r := NewRegistry()
	g := testGraph(t)
	for _, name := range []string{"", "has space", "a/b", "-leading", string(make([]byte, 200))} {
		if _, err := r.Register(name, "spec", g); !errors.Is(err, ErrBadGraphName) {
			t.Errorf("Register(%q): err = %v, want ErrBadGraphName", name, err)
		}
	}
	for _, name := range []string{"g", "grid-40x40", "a.b_c-d", "X9"} {
		if _, err := r.Register(name, "spec", g); err != nil {
			t.Errorf("Register(%q): unexpected err %v", name, err)
		}
	}
}

func TestRegistryListSorted(t *testing.T) {
	r := NewRegistry()
	g := testGraph(t)
	for _, name := range []string{"zeta", "alpha", "mid"} {
		if _, err := r.Register(name, "spec", g); err != nil {
			t.Fatal(err)
		}
	}
	got := r.List()
	want := []string{"alpha", "mid", "zeta"}
	for i, e := range got {
		if e.Name != want[i] {
			t.Fatalf("List order = %v, want %v", got, want)
		}
	}
}
