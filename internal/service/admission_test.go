package service

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"graphspar/internal/graph"
)

// TestAdmissionWatermarkBoundaries pins the shed decision exactly at the
// watermark on both axes: a backlog depth of queueHigh-1 admits and
// queueHigh sheds; stream slot streamHigh is granted and streamHigh+1 is
// not. A nil controller (admission unconfigured) admits everything.
func TestAdmissionWatermarkBoundaries(t *testing.T) {
	jobCases := []struct {
		name      string
		queueHigh int
		depth     int
		admit     bool
	}{
		{"disabled admits any depth", 0, 1 << 20, true},
		{"below watermark", 4, 2, true},
		{"last slot below watermark", 4, 3, true},
		{"exactly at watermark sheds", 4, 4, false},
		{"above watermark sheds", 4, 5, false},
		{"watermark one sheds first queued", 1, 1, false},
		{"watermark one admits empty backlog", 1, 0, true},
	}
	for _, tc := range jobCases {
		a := newAdmissionController(Config{AdmissionQueueHigh: tc.queueHigh}, newServerMetrics(nil))
		if got := a.admitJob(tc.depth); got != tc.admit {
			t.Errorf("%s: admitJob(depth=%d) with queueHigh=%d = %v, want %v",
				tc.name, tc.depth, tc.queueHigh, got, tc.admit)
		}
	}

	var nilCtl *admissionController
	if !nilCtl.admitJob(1 << 30) {
		t.Error("nil controller must admit jobs")
	}
	if _, ok := nilCtl.acquireStream(); !ok {
		t.Error("nil controller must admit streams")
	}

	a := newAdmissionController(Config{AdmissionStreamHigh: 2}, newServerMetrics(nil))
	rel1, ok1 := a.acquireStream()
	rel2, ok2 := a.acquireStream()
	if !ok1 || !ok2 {
		t.Fatalf("first two streams must be admitted: %v %v", ok1, ok2)
	}
	if _, ok := a.acquireStream(); ok {
		t.Error("stream beyond the watermark must be shed")
	}
	if n := a.inFlightStreams(); n != 2 {
		t.Errorf("in-flight streams = %d, want 2 (rejected acquire must not leak a slot)", n)
	}
	rel1()
	if _, ok := a.acquireStream(); !ok {
		t.Error("released slot must be grantable again")
	}
	rel2()
}

// blockingConfig wires a Sparsify stub that blocks until release is
// closed, so tests can hold the worker pool busy deterministically.
func blockingConfig(workers, backlog, queueHigh, retryAfter int, release chan struct{}) Config {
	return Config{
		Workers:             workers,
		Backlog:             backlog,
		CacheSize:           -1, // a cache hit would bypass admission
		AdmissionQueueHigh:  queueHigh,
		AdmissionRetryAfter: retryAfter,
		Sparsify: func(ctx context.Context, g *graph.Graph, p SparsifyParams) (*JobResult, error) {
			select {
			case <-release:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			return &JobResult{SigmaSqAchieved: p.SigmaSq, TargetMet: true, Sparsifier: g}, nil
		},
	}
}

// TestAdmissionShedsWithRetryAfter drives the job-submit route past the
// queue watermark over real HTTP and checks the full 429 contract:
// status, Retry-After header, JSON error body, and the per-route
// rejection counter on /metrics.
func TestAdmissionShedsWithRetryAfter(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	ts := newTestServer(t, blockingConfig(1, 8, 1, 7, release), nil)
	registerSpec(t, ts.URL, "g", "grid:6x6")

	submit := func(sigma2 float64) (*http.Response, string) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
			strings.NewReader(fmt.Sprintf(`{"graph":"g","sigma2":%g}`, sigma2)))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp, string(body)
	}

	// First job occupies the single blocked worker. Wait until it leaves
	// the backlog so the depth the watermark sees is deterministic.
	if resp, body := submit(50); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("job 1: %d %s", resp.StatusCode, body)
	}
	deadline := time.Now().Add(10 * time.Second)
	for srvDepth(t, ts.URL) != 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never picked up job 1")
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Second job queues (depth 0 < watermark 1); third must shed.
	if resp, body := submit(51); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("job 2: %d %s", resp.StatusCode, body)
	}
	resp, body := submit(52)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("job 3: got %d %s, want 429", resp.StatusCode, body)
	}
	if got := resp.Header.Get("Retry-After"); got != "7" {
		t.Errorf("Retry-After = %q, want %q", got, "7")
	}
	if !strings.Contains(body, "saturated") {
		t.Errorf("429 body %q should carry the saturation error", body)
	}

	metrics, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer metrics.Body.Close()
	raw, _ := io.ReadAll(metrics.Body)
	if !strings.Contains(string(raw), `graphspar_admission_rejections_total{route="jobs"} 1`) {
		t.Errorf("metrics missing the jobs rejection count:\n%s", grepLines(string(raw), "admission"))
	}
}

// srvDepth reads the backlog depth from /v1/healthz.
func srvDepth(t *testing.T, base string) int {
	t.Helper()
	resp, err := http.Get(base + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h struct {
		Queued int `json:"queued"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	return h.Queued
}

// grepLines filters exposition text to lines containing needle, for
// compact failure messages.
func grepLines(text, needle string) string {
	var out []string
	for _, line := range strings.Split(text, "\n") {
		if strings.Contains(line, needle) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}

// TestAdmissionSoakNoServerErrors hammers the submit route at well over
// 2x the pool's drain rate and asserts the overload contract: every
// response is either an accept (202), a cache-less re-accept, or a
// deliberate 429 — never a 5xx. The watermark sits below the hard
// backlog bound, so ErrQueueFull's 503 must be unreachable.
func TestAdmissionSoakNoServerErrors(t *testing.T) {
	cfg := Config{
		Workers:            1,
		Backlog:            8,
		CacheSize:          -1,
		AdmissionQueueHigh: 4, // shed at half the backlog: 503 unreachable
		Sparsify: func(ctx context.Context, g *graph.Graph, p SparsifyParams) (*JobResult, error) {
			time.Sleep(2 * time.Millisecond) // ~500 jobs/s capacity
			return &JobResult{SigmaSqAchieved: p.SigmaSq, TargetMet: true, Sparsifier: g}, nil
		},
	}
	ts := newTestServer(t, cfg, nil)
	registerSpec(t, ts.URL, "g", "grid:6x6")

	const clients, perClient = 8, 40
	var accepted, rejected, serverErrs atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				body := fmt.Sprintf(`{"graph":"g","sigma2":%d}`, 40+c*perClient+i)
				resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
				if err != nil {
					serverErrs.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				switch {
				case resp.StatusCode == http.StatusAccepted || resp.StatusCode == http.StatusOK:
					accepted.Add(1)
				case resp.StatusCode == http.StatusTooManyRequests:
					rejected.Add(1)
				case resp.StatusCode >= 500:
					serverErrs.Add(1)
				default:
					t.Errorf("unexpected status %d", resp.StatusCode)
				}
			}
		}(c)
	}
	wg.Wait()
	t.Logf("soak: %d accepted, %d shed with 429, %d server errors",
		accepted.Load(), rejected.Load(), serverErrs.Load())
	if serverErrs.Load() != 0 {
		t.Errorf("%d responses were 5xx; overload must shed with 429, never fail with a server error", serverErrs.Load())
	}
	if rejected.Load() == 0 {
		t.Error("soak at 2x+ capacity never tripped admission control; watermark is not engaging")
	}
	if accepted.Load() == 0 {
		t.Error("soak accepted nothing; shedding must be partial, not total")
	}
}
