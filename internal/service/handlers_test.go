package service

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"graphspar/internal/gen"
	"graphspar/internal/graph"
	"graphspar/internal/mm"
)

// newTestServer spins up the full HTTP stack. Jobs run against the
// injected (stub) runner; tests of the production runners live in
// cmd/serve, where the graphspar-facade-backed implementations are wired
// in. A nil cfg.Sparsify with calls set installs a counting stub.
func newTestServer(t *testing.T, cfg Config, calls *atomic.Int64) *httptest.Server {
	t.Helper()
	if cfg.Sparsify == nil && calls != nil {
		cfg.Sparsify = func(ctx context.Context, g *graph.Graph, p SparsifyParams) (*JobResult, error) {
			calls.Add(1)
			return &JobResult{SigmaSqAchieved: p.SigmaSq, TargetMet: true, Sparsifier: g}, nil
		}
	}
	srv := NewServer(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Queue().Shutdown(ctx)
	})
	return ts
}

func doJSON(t *testing.T, method, url string, body any, out any) (int, string) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode < 300 {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("unmarshal %q: %v", raw, err)
		}
	}
	return resp.StatusCode, string(raw)
}

// pollJob polls the job endpoint until the job is terminal.
func pollJob(t *testing.T, base, id string) Job {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		var job Job
		code, raw := doJSON(t, http.MethodGet, base+"/v1/jobs/"+id, nil, &job)
		if code != http.StatusOK {
			t.Fatalf("GET job %s: %d %s", id, code, raw)
		}
		switch job.Status {
		case StatusDone, StatusFailed, StatusCanceled:
			return job
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return Job{}
}

// TestJobCacheShortCircuitOverHTTP drives the cache-aware submission path
// with a counting stub: identical and coarser-σ² resubmissions are served
// from cache without re-running the sparsifier. (The production-runner
// end-to-end scenario lives in cmd/serve, where the graphspar-backed
// runners are wired in.)
func TestJobCacheShortCircuitOverHTTP(t *testing.T) {
	var calls atomic.Int64
	ts := newTestServer(t, Config{Workers: 2, Backlog: 8, CacheSize: 16}, &calls)

	var info graphInfo
	code, raw := doJSON(t, http.MethodPost, ts.URL+"/v1/graphs",
		registerRequest{Name: "grid10", Spec: "grid:10x10:uniform", Seed: 7}, &info)
	if code != http.StatusCreated {
		t.Fatalf("register: %d %s", code, raw)
	}

	var job Job
	code, raw = doJSON(t, http.MethodPost, ts.URL+"/v1/jobs",
		submitRequest{Graph: "grid10", SparsifyParams: SparsifyParams{SigmaSq: 60}}, &job)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, raw)
	}
	if done := pollJob(t, ts.URL, job.ID); done.Status != StatusDone {
		t.Fatalf("job: %+v", done)
	}

	// Identical resubmission: served from cache, runner NOT re-run.
	var cached Job
	code, raw = doJSON(t, http.MethodPost, ts.URL+"/v1/jobs",
		submitRequest{Graph: "grid10", SparsifyParams: SparsifyParams{SigmaSq: 60}}, &cached)
	if code != http.StatusOK {
		t.Fatalf("cached submit: %d %s", code, raw)
	}
	if cached.Status != StatusDone || cached.CacheHit != CacheExact {
		t.Errorf("cached job = status %s cache %q, want done/exact", cached.Status, cached.CacheHit)
	}
	// A coarser target is also served from the σ²=60 certificate.
	var coarser Job
	code, raw = doJSON(t, http.MethodPost, ts.URL+"/v1/jobs",
		submitRequest{Graph: "grid10", SparsifyParams: SparsifyParams{SigmaSq: 5000}}, &coarser)
	if code != http.StatusOK {
		t.Fatalf("coarser submit: %d %s", code, raw)
	}
	if coarser.CacheHit != CacheCoarser {
		t.Errorf("coarser job cache = %q, want coarser", coarser.CacheHit)
	}
	if calls.Load() != 1 {
		t.Errorf("runner calls = %d, want 1", calls.Load())
	}
}

// TestUploadRoundTrip drives mm.Read → registry → mm.WriteGraph through
// the HTTP upload and download paths and checks the graph survives
// unchanged.
func TestUploadRoundTrip(t *testing.T) {
	ts := newTestServer(t, Config{Workers: 1, Backlog: 2, CacheSize: 4}, nil)

	orig, err := gen.TriMesh(6, 7, gen.UniformWeights, 42)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := mm.WriteGraph(&buf, orig); err != nil {
		t.Fatal(err)
	}

	req, err := http.NewRequest(http.MethodPut, ts.URL+"/v1/graphs/mesh", bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload: %d %s", resp.StatusCode, raw)
	}
	var info graphInfo
	if err := json.Unmarshal(raw, &info); err != nil {
		t.Fatal(err)
	}
	if info.N != orig.N() || info.M != orig.M() || info.Source != "upload" {
		t.Errorf("upload info = %+v, want n=%d m=%d", info, orig.N(), orig.M())
	}
	if info.Hash != HashGraph(orig) {
		t.Errorf("upload hash %s != local hash %s", info.Hash, HashGraph(orig))
	}

	// Download and compare edge by edge.
	dl, err := http.Get(ts.URL + "/v1/graphs/mesh/laplacian.mtx")
	if err != nil {
		t.Fatal(err)
	}
	defer dl.Body.Close()
	m, err := mm.Read(dl.Body)
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.ToGraph()
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != orig.N() || got.M() != orig.M() {
		t.Fatalf("round trip: n=%d m=%d, want n=%d m=%d", got.N(), got.M(), orig.N(), orig.M())
	}
	for i, e := range orig.Edges() {
		ge := got.Edge(i)
		if ge.U != e.U || ge.V != e.V {
			t.Fatalf("edge %d: (%d,%d) != (%d,%d)", i, ge.U, ge.V, e.U, e.V)
		}
		if diff := ge.W - e.W; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("edge %d weight: %v != %v", i, ge.W, e.W)
		}
	}
}

// TestUploadRejectsMalformed checks the upload path maps each failure
// mode to the right HTTP status.
func TestUploadRejectsMalformed(t *testing.T) {
	ts := newTestServer(t, Config{Workers: 1, Backlog: 2, CacheSize: 4}, nil)

	cases := []struct {
		name string
		path string
		body string
		want int
	}{
		{"empty body", "/v1/graphs/a", "", http.StatusBadRequest},
		{"garbage header", "/v1/graphs/b", "hello world\n1 1 1\n", http.StatusBadRequest},
		{"dense array format", "/v1/graphs/c",
			"%%MatrixMarket matrix array real general\n2 2\n1\n0\n0\n1\n", http.StatusBadRequest},
		{"truncated entries", "/v1/graphs/d",
			"%%MatrixMarket matrix coordinate real symmetric\n3 3 5\n1 1 1.0\n", http.StatusBadRequest},
		{"hostile nnz header", "/v1/graphs/dd",
			"%%MatrixMarket matrix coordinate real symmetric\n3 3 4000000000\n1 1 1.0\n", http.StatusBadRequest},
		{"hostile dimension header", "/v1/graphs/de",
			"%%MatrixMarket matrix coordinate real symmetric\n1000000000 1000000000 1\n2 1 -1.0\n", http.StatusUnprocessableEntity},
		{"index out of range", "/v1/graphs/e",
			"%%MatrixMarket matrix coordinate real symmetric\n2 2 1\n5 1 1.0\n", http.StatusBadRequest},
		{"rectangular matrix", "/v1/graphs/f",
			"%%MatrixMarket matrix coordinate real general\n2 3 1\n1 2 1.0\n", http.StatusBadRequest},
		{"disconnected graph", "/v1/graphs/g",
			"%%MatrixMarket matrix coordinate real symmetric\n4 4 2\n2 1 -1.0\n4 3 -1.0\n", http.StatusUnprocessableEntity},
		{"bad name", "/v1/graphs/bad%20name",
			"%%MatrixMarket matrix coordinate real symmetric\n2 2 1\n2 1 -1.0\n", http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(http.MethodPut, ts.URL+tc.path, strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			raw, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != tc.want {
				t.Errorf("status = %d, want %d (%s)", resp.StatusCode, tc.want, raw)
			}
			var apiErr apiError
			if err := json.Unmarshal(raw, &apiErr); err != nil || apiErr.Error == "" {
				t.Errorf("error body not JSON apiError: %s", raw)
			}
		})
	}
}

func TestGraphAPIErrors(t *testing.T) {
	ts := newTestServer(t, Config{Workers: 1, Backlog: 2, CacheSize: 4}, nil)

	// Unknown graph.
	if code, _ := doJSON(t, http.MethodGet, ts.URL+"/v1/graphs/nope", nil, nil); code != http.StatusNotFound {
		t.Errorf("get missing graph: %d", code)
	}
	if code, _ := doJSON(t, http.MethodDelete, ts.URL+"/v1/graphs/nope", nil, nil); code != http.StatusNotFound {
		t.Errorf("delete missing graph: %d", code)
	}
	// Bad generator spec.
	if code, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/graphs",
		registerRequest{Name: "x", Spec: "warp:9"}, nil); code != http.StatusBadRequest {
		t.Errorf("bad spec: %d", code)
	}
	// File-path specs are refused over HTTP (the server must not open
	// local files for remote clients).
	for _, spec := range []string{"/etc/passwd.mtx", "problem.mtx", "../x.mtx", `C:\graphs\a.mtx`} {
		if code, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/graphs",
			registerRequest{Name: "x", Spec: spec}, nil); code != http.StatusBadRequest {
			t.Errorf("file spec %q: %d, want 400", spec, code)
		}
	}
	// Oversized generator specs are refused before any allocation.
	for _, spec := range []string{"grid:100000x100000:uniform", "grid3d:1000x1000x1000", "dense:100000,10000"} {
		if code, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/graphs",
			registerRequest{Name: "x", Spec: spec}, nil); code != http.StatusUnprocessableEntity {
			t.Errorf("huge spec %q: %d, want 422", spec, code)
		}
	}
	// Missing spec.
	if code, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/graphs",
		registerRequest{Name: "x"}, nil); code != http.StatusBadRequest {
		t.Errorf("missing spec: %d", code)
	}
	// Name conflict with different content → 409.
	if code, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/graphs",
		registerRequest{Name: "dup", Spec: "grid:4x4:unit"}, nil); code != http.StatusCreated {
		t.Fatalf("register dup failed")
	}
	if code, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/graphs",
		registerRequest{Name: "dup", Spec: "grid:5x5:unit"}, nil); code != http.StatusConflict {
		t.Errorf("conflicting register: %d, want 409", code)
	}
	// Idempotent re-register → 201 again.
	if code, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/graphs",
		registerRequest{Name: "dup", Spec: "grid:4x4:unit"}, nil); code != http.StatusCreated {
		t.Errorf("idempotent re-register rejected")
	}
}

func TestJobAPIErrors(t *testing.T) {
	stub := func(ctx context.Context, g *graph.Graph, p SparsifyParams) (*JobResult, error) {
		return &JobResult{SigmaSqAchieved: p.SigmaSq, Sparsifier: g}, nil
	}
	ts := newTestServer(t, Config{Workers: 1, Backlog: 2, CacheSize: 4, Sparsify: stub}, nil)

	if code, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/graphs",
		registerRequest{Name: "g", Spec: "grid:4x4:unit"}, nil); code != http.StatusCreated {
		t.Fatal("register failed")
	}

	// Unknown graph → 404.
	if code, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs",
		submitRequest{Graph: "nope", SparsifyParams: SparsifyParams{SigmaSq: 50}}, nil); code != http.StatusNotFound {
		t.Errorf("job on missing graph: %d", code)
	}
	// Bad σ² → 400.
	if code, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs",
		submitRequest{Graph: "g", SparsifyParams: SparsifyParams{SigmaSq: 0.5}}, nil); code != http.StatusBadRequest {
		t.Errorf("bad sigma2: %d", code)
	}
	// Bad tree algorithm → 400.
	if code, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs",
		submitRequest{Graph: "g", SparsifyParams: SparsifyParams{SigmaSq: 50, TreeAlg: "quantum"}}, nil); code != http.StatusBadRequest {
		t.Errorf("bad tree: %d", code)
	}
	// Missing graph name → 400.
	if code, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs",
		submitRequest{SparsifyParams: SparsifyParams{SigmaSq: 50}}, nil); code != http.StatusBadRequest {
		t.Errorf("missing graph field: %d", code)
	}
	// Unknown job → 404.
	if code, _ := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/job-999", nil, nil); code != http.StatusNotFound {
		t.Errorf("missing job: %d", code)
	}
	// Result download of an unfinished job → 409.
	var job Job
	if code, raw := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs",
		submitRequest{Graph: "g", SparsifyParams: SparsifyParams{SigmaSq: 50}}, &job); code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, raw)
	}
	pollJob(t, ts.URL, job.ID)
	// Now finished — downloads work.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + job.ID + "/edges")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("edges of done job: %d", resp.StatusCode)
	}
}

func TestHealthEndpoint(t *testing.T) {
	ts := newTestServer(t, Config{Workers: 1, Backlog: 2, CacheSize: 4}, nil)
	var health struct {
		Status string     `json:"status"`
		Graphs int        `json:"graphs"`
		Cache  CacheStats `json:"cache"`
	}
	code, raw := doJSON(t, http.MethodGet, ts.URL+"/v1/healthz", nil, &health)
	if code != http.StatusOK || health.Status != "ok" {
		t.Fatalf("healthz: %d %s", code, raw)
	}
	if health.Cache.Capacity != 4 {
		t.Errorf("cache capacity = %d, want 4", health.Cache.Capacity)
	}
}

func TestBacklogSheds503(t *testing.T) {
	block := make(chan struct{})
	t.Cleanup(func() { close(block) })
	stub := func(ctx context.Context, g *graph.Graph, p SparsifyParams) (*JobResult, error) {
		select {
		case <-block:
		case <-ctx.Done():
		}
		return &JobResult{Sparsifier: g}, nil
	}
	ts := newTestServer(t, Config{Workers: 1, Backlog: 1, Sparsify: stub}, nil)

	if code, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/graphs",
		registerRequest{Name: "g", Spec: "grid:4x4:unit"}, nil); code != http.StatusCreated {
		t.Fatal("register failed")
	}
	// Saturate: 1 running + 1 queued, then expect 503.
	saw503 := false
	for i := 0; i < 6; i++ {
		code, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs",
			submitRequest{Graph: "g", SparsifyParams: SparsifyParams{SigmaSq: float64(10 + i)}}, nil)
		if code == http.StatusServiceUnavailable {
			saw503 = true
			break
		}
		if code != http.StatusAccepted {
			t.Fatalf("submit %d: %d", i, code)
		}
	}
	if !saw503 {
		t.Error("saturated queue never returned 503")
	}
}
