package service

import (
	"context"
	"io"
	"net/http"
	"strings"
	"testing"

	"graphspar/internal/dynamic"
	"graphspar/internal/graph"
	"graphspar/internal/obs"
	"graphspar/internal/sessions"
)

// tracingMaintainer is a stubMaintainer whose Apply records a phase
// span, standing in for the real maintainer's settle/refilter spans.
type tracingMaintainer struct{ stubMaintainer }

func (f *tracingMaintainer) Apply(ctx context.Context, batch []dynamic.Update) error {
	defer obs.StartSpan(ctx, "settle").End()
	return f.stubMaintainer.Apply(ctx, batch)
}

func scrape(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// TestMetricsEndToEnd drives the full request mix through the HTTP
// stack — register, job, cold stream install, PATCH session hit — and
// asserts the scrape reflects every instrument class: request counters,
// job completions, stream batch outcomes, session hits, and the
// scrape-time state gauges.
func TestMetricsEndToEnd(t *testing.T) {
	cfg := sessionTestConfig(nil, nil)
	cfg.Metrics = obs.NewRegistry()
	cfg.Maintain = func(ctx context.Context, g *graph.Graph, p SparsifyParams) (sessions.Maintainer, error) {
		return &tracingMaintainer{stubMaintainer{g: g}}, nil
	}
	ts := newTestServer(t, cfg, nil)

	registerSpec(t, ts.URL, "g", "grid:6x6")

	var job Job
	code, raw := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", map[string]any{"graph": "g", "sigma2": 50}, &job)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, raw)
	}
	if job = pollJob(t, ts.URL, job.ID); job.Status != StatusDone {
		t.Fatalf("job: %+v", job)
	}

	// Cold stream batch installs the session; the PATCH then hits it.
	code, lines := streamLines(t, ts.URL, "g", "?sigma2=50", `{"op":"insert","u":0,"v":7,"w":1}`+"\n")
	if code != http.StatusOK || len(lines) < 2 || lines[0]["applied"] != true {
		t.Fatalf("stream: %d %v", code, lines)
	}
	var pr patchResponse
	code, raw = doJSON(t, http.MethodPatch, ts.URL+"/v1/graphs/g/edges?trace=1",
		map[string]any{"updates": []map[string]any{{"op": "reweight", "u": 0, "v": 7, "w": 2}}}, &pr)
	if code != http.StatusOK || pr.Session != "hit" {
		t.Fatalf("patch: %d %s", code, raw)
	}
	// ?trace=1 through a session hit surfaces the maintainer's phases.
	if len(pr.Phases) == 0 || pr.Phases[0].Phase != "settle" {
		t.Errorf("patch phases = %+v, want a settle span", pr.Phases)
	}

	body := scrape(t, ts.URL)
	for _, want := range []string{
		`graphspar_jobs_completed_total{status="done"} 1`,
		`graphspar_http_requests_total{route="POST /v1/jobs",method="POST",code="202"} 1`,
		`graphspar_http_request_seconds_count{route="POST /v1/jobs"} 1`,
		`graphspar_stream_batches_total{outcome="applied"} 1`,
		`graphspar_session_hits_total 1`,
		`graphspar_session_installs_total 1`,
		`graphspar_graphs_registered 1`,
		`graphspar_job_queue_depth 0`,
		`graphspar_jobs_in_flight 0`,
		`graphspar_job_workers 1`,
		`graphspar_job_wait_seconds_count 1`,
		`graphspar_job_run_seconds_count 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
}

// TestHealthzQueueFields: healthz reports backlog depth, in-flight
// worker count and pool size.
func TestHealthzQueueFields(t *testing.T) {
	cfg := Config{Workers: 3}
	cfg.Metrics = obs.NewRegistry()
	ts := newTestServer(t, cfg, nil)
	var h struct {
		Status   string `json:"status"`
		Queued   int    `json:"queued"`
		InFlight int    `json:"in_flight"`
		Workers  int    `json:"workers"`
	}
	code, raw := doJSON(t, http.MethodGet, ts.URL+"/v1/healthz", nil, &h)
	if code != http.StatusOK {
		t.Fatalf("healthz: %d %s", code, raw)
	}
	if h.Status != "ok" || h.Workers != 3 || h.InFlight != 0 {
		t.Errorf("healthz = %+v", h)
	}
	if !strings.Contains(raw, `"in_flight"`) || !strings.Contains(raw, `"workers"`) {
		t.Errorf("healthz body missing queue fields: %s", raw)
	}
}
