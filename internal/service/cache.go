package service

import (
	"container/list"
	"fmt"
	"strconv"
	"strings"
	"sync"

	"graphspar/internal/lsst"
	"graphspar/internal/params"
	"graphspar/internal/partition"
)

// SparsifyParams is the canonical, fully-defaulted request that keys the
// result cache. Handlers fill it from the JSON body and call Canon before
// any lookup, so two requests that differ only in spelled-out defaults
// (e.g. t omitted vs. t=2) hit the same cache line.
type SparsifyParams struct {
	SigmaSq    float64 `json:"sigma2"`
	T          int     `json:"t,omitempty"`
	NumVectors int     `json:"r,omitempty"`
	TreeAlg    string  `json:"tree,omitempty"`
	Seed       uint64  `json:"seed,omitempty"`
	MaxEdges   int     `json:"max_edges,omitempty"`
	// Shards > 1 routes the job through the shard-parallel engine
	// (internal/engine); 0 or 1 is the single-shot pipeline. Shards is
	// part of the cache key: a sharded sparsifier and a single-shot one
	// for the same graph are different artifacts and never alias.
	Shards int `json:"shards,omitempty"`
	// Workers bounds the engine's concurrency (0 = all cores). It can
	// never change the result — engine output is deterministic for any
	// worker count — so it is deliberately NOT part of the cache key.
	Workers int `json:"workers,omitempty"`
	// Partition picks the engine's bisector: "bfs" (default), "direct",
	// "iterative" or "sparsifier-only". Only meaningful with shards > 1.
	Partition string `json:"partition,omitempty"`
	// Mode pins the execution path: "single", "sharded" or "multilevel".
	// The wire contract is explicit — "auto" (the facade's graph-size
	// policy) is rejected, because a cache key must not depend on which
	// path the policy would pick for a particular graph. "single" and
	// "sharded" are redundant with Shards and canonicalize to ""; only
	// "multilevel" survives canonicalization as a mode string.
	Mode string `json:"mode,omitempty"`
	// CoarsenLevels/CoarsenRatio tune the multilevel hierarchy (0 keeps
	// the library defaults: depth bounded by the coarsest-size floor,
	// ratio 0.7). Only meaningful — and only accepted — with
	// mode=multilevel.
	CoarsenLevels int     `json:"coarsen_levels,omitempty"`
	CoarsenRatio  float64 `json:"coarsen_ratio,omitempty"`
	// Incremental warm-starts the job from a prior job's sparsifier
	// (dynamic.Resume) instead of sparsifying from scratch — the fast path
	// after PATCHing a graph's edges. Incremental jobs bypass the result
	// cache entirely: their output depends on which warm start was
	// available, not only on (graph, params).
	Incremental bool `json:"incremental,omitempty"`
	// WarmJob optionally names the job whose sparsifier seeds the warm
	// start; empty picks the most recent finished job for the same graph
	// name. Only meaningful with Incremental.
	WarmJob string `json:"warm_job,omitempty"`
}

// wireLimits bounds remotely-submitted work: the paper uses t ≤ 3 and
// r = O(log n), so these ceilings are far above any useful setting while
// keeping a remote client from submitting unbounded (and uncancellable)
// per-job CPU work. The checks themselves live in internal/params, shared
// with the pipelines' own validation.
var wireLimits = params.Limits{
	MaxT:          16,
	MaxNumVectors: 1024,
	MaxShards:     256,
	MaxWorkers:    64,
}

// Canon applies the service-level defaults (matching core.Options'
// defaulting where the values are n-independent) and normalizes the tree
// algorithm name. Unusable values come back as the typed errors of
// internal/params (all matching params.ErrInvalid), which errStatus maps
// to HTTP 400.
func (p *SparsifyParams) Canon() error {
	if err := params.Sigma2(p.SigmaSq); err != nil {
		return err
	}
	if p.T <= 0 {
		p.T = 2
	}
	if p.NumVectors < 0 {
		p.NumVectors = 0 // 0 keeps core's O(log n) default
	}
	if err := params.Embed(p.T, p.NumVectors, wireLimits); err != nil {
		return err
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	if p.MaxEdges < 0 {
		p.MaxEdges = 0
	}
	alg, err := lsst.Parse(p.TreeAlg)
	if err != nil {
		return err
	}
	p.TreeAlg = alg.String()

	if p.Shards < 0 {
		p.Shards = 0
	}
	if p.Shards == 1 {
		p.Shards = 0 // canonical single-shot form
	}
	if p.Workers < 0 {
		p.Workers = 0
	}
	if err := params.Sharding(p.Shards, p.Workers, wireLimits); err != nil {
		return err
	}
	mode, err := p.canonMode()
	if err != nil {
		return err
	}
	if !p.Incremental && p.WarmJob != "" {
		return fmt.Errorf("%w: warm_job requires incremental=true", params.ErrBadCombination)
	}
	if p.Incremental && p.MaxEdges > 0 {
		// The maintainer has no edge budget: re-filter rounds admit
		// whatever the certificate needs. Reject rather than silently
		// returning an unbounded result.
		return fmt.Errorf("%w: max_edges does not compose with incremental", params.ErrBadCombination)
	}
	if mode == params.ModeMultilevel {
		// Partition is a sharded-engine knob. Workers survives: it bounds
		// the hierarchy's per-level embedding concurrency (and, like
		// everywhere else, never changes the result).
		p.Partition = ""
		return nil
	}
	if p.Shards == 0 {
		// Engine-only knobs are meaningless single-shot; zero them so the
		// cache key has one canonical spelling.
		p.Workers = 0
		p.Partition = ""
		return nil
	}
	if p.MaxEdges > 0 {
		return fmt.Errorf("%w: max_edges is a single-shot knob; it does not compose with shards", params.ErrBadCombination)
	}
	m, err := partition.ParseMethod(p.Partition)
	if err != nil {
		return err
	}
	if p.Partition == "" {
		m = partition.BFS // the engine's default bisector
	}
	p.Partition = m.String()
	return nil
}

// canonMode validates the execution-mode request and reduces it to its
// canonical wire spelling. Requires the shards field to be canonical
// already (negative and 1 folded to 0), so mode/shards contradictions
// are judged against what the key will actually store.
func (p *SparsifyParams) canonMode() (params.Mode, error) {
	if p.Mode == "auto" {
		// ParseMode accepts "auto", but on the wire it would make the cache
		// key depend on the facade's per-graph policy; the contract here is
		// an explicit path (or no mode field at all).
		return 0, fmt.Errorf("%w: mode \"auto\" is a client-side policy; omit mode or request single, sharded or multilevel", params.ErrBadMode)
	}
	mode, err := params.ParseMode(p.Mode)
	if err != nil {
		return 0, err
	}
	if err := params.Coarsen(p.CoarsenLevels, p.CoarsenRatio); err != nil {
		return 0, err
	}
	if mode != params.ModeMultilevel && (p.CoarsenLevels != 0 || p.CoarsenRatio != 0) {
		return 0, fmt.Errorf("%w: coarsen knobs require mode=multilevel", params.ErrBadCombination)
	}
	switch mode {
	case params.ModeSingleShot:
		if p.Shards > 1 {
			return 0, fmt.Errorf("%w: mode=single contradicts shards=%d", params.ErrBadCombination, p.Shards)
		}
		p.Mode = "" // shards=0 already spells single-shot
	case params.ModeSharded:
		if p.Shards <= 1 {
			return 0, fmt.Errorf("%w: mode=sharded requires shards > 1", params.ErrBadCombination)
		}
		p.Mode = "" // shards>1 already spells sharded
	case params.ModeMultilevel:
		if p.Shards != 0 {
			return 0, fmt.Errorf("%w: mode=multilevel does not compose with shards", params.ErrBadCombination)
		}
		if p.MaxEdges > 0 {
			return 0, fmt.Errorf("%w: max_edges is a single-shot knob; it does not compose with multilevel", params.ErrBadCombination)
		}
		if p.Incremental || p.WarmJob != "" {
			return 0, fmt.Errorf("%w: multilevel does not compose with incremental warm starts", params.ErrBadCombination)
		}
		p.Mode = params.ModeMultilevel.String()
	}
	return mode, nil
}

// The key builders below run on every job submission (key + family on
// each cache lookup), so they append with strconv into one sized buffer
// instead of going through fmt — the Sprintf spelling boxed every
// argument and dominated the submit path's allocation profile. Floats
// use the shortest round-trip form ('g', -1), which is injective on
// float64, so distinct parameters always produce distinct keys.

// appendKnobs appends the σ²-independent knob fields shared by key and
// family, in the canonical field order.
func (p SparsifyParams) appendKnobs(b []byte) []byte {
	b = append(b, "|t="...)
	b = strconv.AppendInt(b, int64(p.T), 10)
	b = append(b, "|r="...)
	b = strconv.AppendInt(b, int64(p.NumVectors), 10)
	b = append(b, "|tree="...)
	b = append(b, p.TreeAlg...)
	b = append(b, "|seed="...)
	b = strconv.AppendUint(b, p.Seed, 10)
	b = append(b, "|max="...)
	b = strconv.AppendInt(b, int64(p.MaxEdges), 10)
	b = append(b, "|sh="...)
	b = strconv.AppendInt(b, int64(p.Shards), 10)
	b = append(b, "|part="...)
	b = append(b, p.Partition...)
	b = append(b, "|mode="...)
	b = append(b, p.Mode...)
	b = append(b, "|cl="...)
	b = strconv.AppendInt(b, int64(p.CoarsenLevels), 10)
	b = append(b, "|cr="...)
	b = strconv.AppendFloat(b, p.CoarsenRatio, 'g', -1, 64)
	return b
}

// keyBufLen sizes the append buffer so a typical key builds in exactly
// one allocation (plus the final string conversion).
const keyBufLen = 96

// key returns the exact cache key for canonicalized params on a graph.
// Workers is absent on purpose: it cannot affect the result.
func (p SparsifyParams) key(graphHash string) string {
	b := make([]byte, 0, len(graphHash)+keyBufLen)
	b = append(b, graphHash...)
	b = append(b, "|s2="...)
	b = strconv.AppendFloat(b, p.SigmaSq, 'g', -1, 64)
	b = p.appendKnobs(b)
	return string(b)
}

// sessionKey fingerprints the parameters that shape a live maintainer —
// everything that changes the maintained sparsifier — so a persistent
// session is only reused by requests that would have configured it
// identically. Workers is excluded (wall-clock only, like the cache
// key), as are the warm-start selectors (they pick a session's seed
// state, not its behavior) and MaxEdges (it cannot compose with
// maintenance at all).
func (p SparsifyParams) sessionKey() string {
	b := make([]byte, 0, keyBufLen)
	b = append(b, "s2="...)
	b = strconv.AppendFloat(b, p.SigmaSq, 'g', -1, 64)
	b = append(b, "|t="...)
	b = strconv.AppendInt(b, int64(p.T), 10)
	b = append(b, "|r="...)
	b = strconv.AppendInt(b, int64(p.NumVectors), 10)
	b = append(b, "|tree="...)
	b = append(b, p.TreeAlg...)
	b = append(b, "|seed="...)
	b = strconv.AppendUint(b, p.Seed, 10)
	b = append(b, "|sh="...)
	b = strconv.AppendInt(b, int64(p.Shards), 10)
	b = append(b, "|part="...)
	b = append(b, p.Partition...)
	return string(b)
}

// family groups cache lines that differ only in σ², enabling the
// coarser-target lookup: a sparsifier built for σ²=50 also certifies any
// request for σ² ≥ 50 on the same graph with the same knobs. Sharded,
// single-shot and multilevel families are disjoint.
func (p SparsifyParams) family(graphHash string) string {
	b := make([]byte, 0, len(graphHash)+keyBufLen)
	b = append(b, graphHash...)
	b = p.appendKnobs(b)
	return string(b)
}

// CacheStats is a snapshot of cache effectiveness counters.
type CacheStats struct {
	Hits        int64 `json:"hits"`
	CoarserHits int64 `json:"coarser_hits"`
	Misses      int64 `json:"misses"`
	Evictions   int64 `json:"evictions"`
	Entries     int   `json:"entries"`
	Capacity    int   `json:"capacity"`
}

type cacheEntry struct {
	key     string
	family  string
	sigmaSq float64 // requested target this entry was built for
	result  *JobResult
}

// ResultCache is a bounded LRU of completed sparsification results.
// Lookup supports both exact matches and "coarser σ²" matches: among the
// cached entries for the same (graph, knobs) family, the one with the
// smallest requested σ² that still meets the asked target is reused.
type ResultCache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List               // front = most recently used
	byKey    map[string]*list.Element // exact key → element
	byFamily map[string]map[*list.Element]struct{}
	stats    CacheStats
}

// NewResultCache builds a cache holding up to capacity results
// (capacity <= 0 disables caching: every lookup misses, every put drops).
func NewResultCache(capacity int) *ResultCache {
	return &ResultCache{
		capacity: capacity,
		ll:       list.New(),
		byKey:    make(map[string]*list.Element),
		byFamily: make(map[string]map[*list.Element]struct{}),
	}
}

// Get returns a cached result for the request, trying the exact key
// first and then the best coarser-σ² entry in the same family. The
// second return distinguishes exact hits (CacheExact), coarser hits
// (CacheCoarser), and misses (CacheMiss).
func (c *ResultCache) Get(graphHash string, p SparsifyParams) (*JobResult, CacheOutcome) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[p.key(graphHash)]; ok {
		c.ll.MoveToFront(el)
		c.stats.Hits++
		return el.Value.(*cacheEntry).result, CacheExact
	}
	// Coarser lookup: any family entry built for a tighter or equal σ²
	// whose achieved condition number still meets this request.
	var best *list.Element
	for el := range c.byFamily[p.family(graphHash)] {
		ce := el.Value.(*cacheEntry)
		if ce.sigmaSq <= p.SigmaSq && ce.result.SigmaSqAchieved <= p.SigmaSq {
			if best == nil || ce.sigmaSq > best.Value.(*cacheEntry).sigmaSq {
				best = el // prefer the sparsest certificate that still qualifies
			}
		}
	}
	if best != nil {
		c.ll.MoveToFront(best)
		c.stats.CoarserHits++
		// Re-judge the target flag against THIS request: the stored result
		// may have missed its own (tighter) target while still certifying
		// the looser one asked for here.
		res := *best.Value.(*cacheEntry).result
		res.TargetMet = res.SigmaSqAchieved <= p.SigmaSq
		// Memoize under the exact key so repeats of this request take the
		// O(1) path instead of rescanning the family. The alias keeps the
		// source's build-σ² so certificate preference stays truthful.
		c.putLocked(graphHash, p, best.Value.(*cacheEntry).sigmaSq, &res)
		return &res, CacheCoarser
	}
	c.stats.Misses++
	return nil, CacheMiss
}

// CacheOutcome labels a cache lookup.
type CacheOutcome string

// Lookup outcomes.
const (
	CacheMiss    CacheOutcome = "miss"
	CacheExact   CacheOutcome = "exact"
	CacheCoarser CacheOutcome = "coarser"
)

// Put stores a completed result, evicting the least recently used entry
// when over capacity.
func (c *ResultCache) Put(graphHash string, p SparsifyParams, res *JobResult) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.putLocked(graphHash, p, p.SigmaSq, res)
}

// putLocked inserts under p's exact key; buildSigma records which target
// the result was actually built for (differs from p.SigmaSq for alias
// entries created on coarser hits).
func (c *ResultCache) putLocked(graphHash string, p SparsifyParams, buildSigma float64, res *JobResult) {
	if c.capacity <= 0 || res == nil {
		return
	}
	key := p.key(graphHash)
	if el, ok := c.byKey[key]; ok {
		el.Value.(*cacheEntry).result = res
		c.ll.MoveToFront(el)
		return
	}
	ce := &cacheEntry{key: key, family: p.family(graphHash), sigmaSq: buildSigma, result: res}
	el := c.ll.PushFront(ce)
	c.byKey[key] = el
	fam := c.byFamily[ce.family]
	if fam == nil {
		fam = make(map[*list.Element]struct{})
		c.byFamily[ce.family] = fam
	}
	fam[el] = struct{}{}
	for c.ll.Len() > c.capacity {
		c.evictOldest()
	}
}

func (c *ResultCache) evictOldest() {
	el := c.ll.Back()
	if el == nil {
		return
	}
	c.ll.Remove(el)
	ce := el.Value.(*cacheEntry)
	delete(c.byKey, ce.key)
	if fam := c.byFamily[ce.family]; fam != nil {
		delete(fam, el)
		if len(fam) == 0 {
			delete(c.byFamily, ce.family)
		}
	}
	c.stats.Evictions++
}

// InvalidateGraph drops every cached result for the given graph hash.
// The PATCH handler calls it after mutating a registered graph: the new
// content hash re-keys all future lookups, so the old hash's entries can
// never hit again and would only pin dead sparsifiers in memory.
func (c *ResultCache) InvalidateGraph(graphHash string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	prefix := graphHash + "|"
	removed := 0
	var next *list.Element
	for el := c.ll.Front(); el != nil; el = next {
		next = el.Next()
		ce := el.Value.(*cacheEntry)
		if !strings.HasPrefix(ce.key, prefix) {
			continue
		}
		c.ll.Remove(el)
		delete(c.byKey, ce.key)
		if fam := c.byFamily[ce.family]; fam != nil {
			delete(fam, el)
			if len(fam) == 0 {
				delete(c.byFamily, ce.family)
			}
		}
		removed++
	}
	return removed
}

// Stats snapshots the counters.
func (c *ResultCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = c.ll.Len()
	s.Capacity = c.capacity
	return s
}

// Len reports the number of cached results.
func (c *ResultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
