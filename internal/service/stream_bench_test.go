package service

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"strings"
	"testing"
	"time"

	"graphspar/internal/dynamic"
)

// buildEventBody renders n events (rotating insert/reweight/delete) with
// a commit line every batchEvery events, in the given wire format.
func buildEventBody(n, batchEvery int, jsonMode bool) []byte {
	var b bytes.Buffer
	for i := 0; i < n; i++ {
		switch {
		case jsonMode && i%3 == 2:
			fmt.Fprintf(&b, "{\"op\":\"delete\",\"u\":%d,\"v\":%d}\n", i, i+1)
		case jsonMode:
			fmt.Fprintf(&b, "{\"op\":\"insert\",\"u\":%d,\"v\":%d,\"w\":1.5}\n", i, i+1)
		case i%3 == 2:
			fmt.Fprintf(&b, "- %d %d\n", i, i+1)
		case i%3 == 1:
			fmt.Fprintf(&b, "= %d %d 2.25\n", i, i+1)
		default:
			fmt.Fprintf(&b, "+ %d %d 1.5\n", i, i+1)
		}
		if (i+1)%batchEvery == 0 {
			b.WriteString("commit\n")
		}
	}
	return b.Bytes()
}

// buildBinaryEventBody renders the same event sequence as
// buildEventBody's text form (rotating insert/reweight/delete, a commit
// every batchEvery events) in the binary wire, so throughput and
// allocation comparisons between the two decoders are apples to apples.
func buildBinaryEventBody(t testing.TB, n, batchEvery int) []byte {
	var buf []byte
	for i := 0; i < n; i++ {
		var u dynamic.Update
		switch i % 3 {
		case 2:
			u = dynamic.Delete(i, i+1)
		case 1:
			u = dynamic.Reweight(i, i+1, 2.25)
		default:
			u = dynamic.Insert(i, i+1, 1.5)
		}
		var err error
		if buf, err = dynamic.AppendBinaryUpdate(buf, u); err != nil {
			t.Fatalf("encode event %d: %v", i, err)
		}
		if (i+1)%batchEvery == 0 {
			buf = dynamic.AppendBinaryCommit(buf)
		}
	}
	return buf
}

// drainDecoder decodes an entire body, returning events seen.
func drainDecoder(body []byte) (int, error) {
	d := newStreamDecoder(bytes.NewReader(body), 0)
	return drainBatches(d)
}

// drainBinaryDecoder is drainDecoder for the binary wire.
func drainBinaryDecoder(body []byte) (int, error) {
	d := newBinaryStreamDecoder(bytes.NewReader(body), 0)
	return drainBatches(d)
}

func drainBatches(d batchDecoder) (int, error) {
	total := 0
	for {
		batch, err := d.Next()
		if errors.Is(err, io.EOF) {
			return total, nil
		}
		if err != nil {
			return total, err
		}
		total += len(batch)
	}
}

// TestStreamDecoderMatchesParseEventLine cross-checks the bytes-based
// text parser against dynamic.ParseEventLine on accept/reject and on the
// decoded values.
func TestStreamDecoderMatchesParseEventLine(t *testing.T) {
	lines := []string{
		"+ 0 1 1.5", "- 3 4", "= 5 6 0.25", "insert 1 2 3", "delete 7 8",
		"reweight 9 10 1e-3", "commit",
		"+ 0 1", "- 3", "= 1 2 x", "bogus 1 2 3", "+ a b 1", "+ 1 2 3 4",
		"+ 1 2 1.5", // unicode whitespace separators
		"- -1 2", "+ 1 2 +3.5", "commit extra",
	}
	for _, line := range lines {
		wantU, wantCommit, wantErr := dynamic.ParseEventLine(line)
		gotU, gotCommit, gotErr := parseTextEvent([]byte(line))
		if (wantErr == nil) != (gotErr == nil) {
			t.Errorf("%q: err mismatch: want %v, got %v", line, wantErr, gotErr)
			continue
		}
		if wantCommit != gotCommit || (wantErr == nil && gotU != wantU) {
			t.Errorf("%q: got (%+v, %v), want (%+v, %v)", line, gotU, gotCommit, wantU, wantCommit)
		}
	}
}

// TestStreamDecodeAllocs pins the decoder's steady-state allocation
// behavior: decoding thousands of text events must cost a small constant
// number of allocations (scanner buffer, batch-array growth), i.e. zero
// per event. A per-event allocation regression blows straight past the
// bound.
func TestStreamDecodeAllocs(t *testing.T) {
	const events = 4096
	body := buildEventBody(events, 64, false)
	// Warm once so text parsing paths are compiled/initialized.
	if n, err := drainDecoder(body); err != nil || n != events {
		t.Fatalf("drain: %d events, err %v", n, err)
	}
	per := testing.AllocsPerRun(10, func() {
		if _, err := drainDecoder(body); err != nil {
			t.Fatal(err)
		}
	})
	if per > 40 {
		t.Errorf("decoding %d events allocated %.0f times; want <= 40 (per-event allocations must be zero)", events, per)
	}
}

// TestBinaryStreamDecodeAllocs holds the binary decoder to the same
// constant-allocation ceiling as the text one: the ISSUE's fast-path
// contract is binary allocs/op <= text allocs/op, and both must be
// per-event zero. The ceiling matches TestStreamDecodeAllocs exactly so
// neither wire can quietly regress past the other.
func TestBinaryStreamDecodeAllocs(t *testing.T) {
	const events = 4096
	body := buildBinaryEventBody(t, events, 64)
	if n, err := drainBinaryDecoder(body); err != nil || n != events {
		t.Fatalf("drain: %d events, err %v", n, err)
	}
	per := testing.AllocsPerRun(10, func() {
		if _, err := drainBinaryDecoder(body); err != nil {
			t.Fatal(err)
		}
	})
	if per > 40 {
		t.Errorf("decoding %d binary events allocated %.0f times; want <= 40 (per-event allocations must be zero)", events, per)
	}
}

// TestBinaryDecodeThroughput asserts the acceptance bar from the serving
// fast-path work: the binary decoder must sustain at least 1.5x the text
// decoder's event throughput on identical event streams. Timing-based,
// so it only runs when CI opts in (BENCH_ASSERT_WIRE=1); local runs
// and -race builds skip it rather than flake.
func TestBinaryDecodeThroughput(t *testing.T) {
	if os.Getenv("BENCH_ASSERT_WIRE") == "" {
		t.Skip("timing-sensitive; set BENCH_ASSERT_WIRE=1 to enforce the 1.5x decode bar")
	}
	const events = 65536
	text := buildEventBody(events, 100, false)
	bin := buildBinaryEventBody(t, events, 100)
	measure := func(drain func([]byte) (int, error), body []byte) float64 {
		// Warm, then take the best of a few rounds to shed scheduler noise.
		if n, err := drain(body); err != nil || n != events {
			t.Fatalf("drain: %d events, err %v", n, err)
		}
		best := time.Duration(1<<63 - 1)
		for round := 0; round < 5; round++ {
			t0 := time.Now()
			if _, err := drain(body); err != nil {
				t.Fatal(err)
			}
			if d := time.Since(t0); d < best {
				best = d
			}
		}
		return float64(events) / best.Seconds()
	}
	textRate := measure(drainDecoder, text)
	binRate := measure(drainBinaryDecoder, bin)
	ratio := binRate / textRate
	t.Logf("text %.0f events/s, binary %.0f events/s (%.2fx)", textRate, binRate, ratio)
	if ratio < 1.5 {
		t.Errorf("binary decode is %.2fx text; want >= 1.5x", ratio)
	}
}

func BenchmarkStreamDecode(b *testing.B) {
	const events = 8192
	for _, mode := range []struct {
		name  string
		json  bool
		bin   bool
		drain func([]byte) (int, error)
	}{
		{name: "text", drain: drainDecoder},
		{name: "json", json: true, drain: drainDecoder},
		{name: "binary", bin: true, drain: drainBinaryDecoder},
	} {
		var body []byte
		if mode.bin {
			body = buildBinaryEventBody(b, events, 100)
		} else {
			body = buildEventBody(events, 100, mode.json)
		}
		b.Run(mode.name, func(b *testing.B) {
			b.SetBytes(int64(len(body)))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				n, err := mode.drain(body)
				if err != nil || n != events {
					b.Fatalf("%d events, err %v", n, err)
				}
			}
		})
	}
}

// TestStreamDecoderBatchReuse documents the contract that each batch is
// only valid until the next Next call: the second batch reuses the first
// one's backing array.
func TestStreamDecoderBatchReuse(t *testing.T) {
	d := newStreamDecoder(strings.NewReader("+ 0 1 1\ncommit\n+ 2 3 1\n"), 0)
	b1, err := d.Next()
	if err != nil || len(b1) != 1 {
		t.Fatalf("batch 1: %v %v", b1, err)
	}
	first := b1[0]
	b2, err := d.Next()
	if err != nil || len(b2) != 1 {
		t.Fatalf("batch 2: %v %v", b2, err)
	}
	if b1[0] == first {
		t.Error("second Next did not reuse the first batch's backing array (reuse contract untested)")
	}
}
