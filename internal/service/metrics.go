package service

import (
	"net/http"
	"strconv"
	"time"

	"graphspar/internal/obs"
)

// serverMetrics bundles the server's explicit instruments. Everything a
// subsystem already counts for itself (cache hits, session evictions,
// queue depth) is exported as scrape-time func-backed metrics instead —
// see registerStateMetrics — so nothing is tracked twice. A nil
// *serverMetrics disables instrumentation (observe methods no-op), which
// keeps the bare NewQueue constructor usable in tests.
type serverMetrics struct {
	reg *obs.Registry

	requests   *obs.CounterVec   // graphspar_http_requests_total{route,method,code}
	reqSeconds *obs.HistogramVec // graphspar_http_request_seconds{route}

	jobsCompleted *obs.CounterVec // graphspar_jobs_completed_total{status}
	jobWait       *obs.Histogram  // graphspar_job_wait_seconds
	jobRun        *obs.Histogram  // graphspar_job_run_seconds

	streamBatches *obs.CounterVec // graphspar_stream_batches_total{outcome}
	streamBatch   *obs.Histogram  // graphspar_stream_batch_seconds

	admissionRejections *obs.CounterVec // graphspar_admission_rejections_total{route}
}

func newServerMetrics(reg *obs.Registry) *serverMetrics {
	if reg == nil {
		reg = obs.Default
	}
	return &serverMetrics{
		reg: reg,
		requests: reg.CounterVec("graphspar_http_requests_total",
			"HTTP requests by route pattern, method and status code.",
			"route", "method", "code"),
		reqSeconds: reg.HistogramVec("graphspar_http_request_seconds",
			"HTTP request latency by route pattern.", nil, "route"),
		jobsCompleted: reg.CounterVec("graphspar_jobs_completed_total",
			"Jobs reaching a terminal state, by status (done | failed | canceled).",
			"status"),
		jobWait: reg.Histogram("graphspar_job_wait_seconds",
			"Time jobs spent queued before a worker picked them up.", nil),
		jobRun: reg.Histogram("graphspar_job_run_seconds",
			"Job execution time, from worker pickup to terminal state.", nil),
		streamBatches: reg.CounterVec("graphspar_stream_batches_total",
			"Stream update batches by outcome (applied | rejected | failed).",
			"outcome"),
		streamBatch: reg.Histogram("graphspar_stream_batch_seconds",
			"Stream batch apply latency (session acquire + maintain + registry swap).", nil),
		admissionRejections: reg.CounterVec("graphspar_admission_rejections_total",
			"Requests shed with 429 by admission control, by route (jobs | stream).",
			"route"),
	}
}

// registerStateMetrics exposes, at scrape time, the state other server
// components already track: queue depth and in-flight workers, the graph
// registry size, result-cache effectiveness, and the session manager's
// lifetime counters. Func-backed series bind to the first server that
// registers them on a given registry; a process embedding several
// servers should give each its own Config.Metrics registry.
func (s *Server) registerStateMetrics() {
	reg := s.metrics.reg
	reg.GaugeFunc("graphspar_job_queue_depth",
		"Jobs waiting in the backlog.",
		func() float64 { return float64(s.queue.Depth()) })
	reg.GaugeFunc("graphspar_jobs_in_flight",
		"Jobs currently executing on workers.",
		func() float64 { return float64(s.queue.InFlight()) })
	reg.GaugeFunc("graphspar_job_workers",
		"Size of the job worker pool.",
		func() float64 { return float64(s.queue.Workers()) })
	reg.GaugeFunc("graphspar_graphs_registered",
		"Graphs resident in the registry.",
		func() float64 { return float64(s.registry.Len()) })
	if s.admission != nil {
		reg.GaugeFunc("graphspar_streams_in_flight",
			"Stream requests currently held against the admission watermark.",
			func() float64 { return float64(s.admission.inFlightStreams()) })
	}

	reg.CounterFunc("graphspar_result_cache_hits_total",
		"Result-cache exact hits.",
		func() float64 { return float64(s.cache.Stats().Hits) })
	reg.CounterFunc("graphspar_result_cache_coarser_hits_total",
		"Result-cache coarser-sigma2 hits.",
		func() float64 { return float64(s.cache.Stats().CoarserHits) })
	reg.CounterFunc("graphspar_result_cache_misses_total",
		"Result-cache misses.",
		func() float64 { return float64(s.cache.Stats().Misses) })

	if s.sessions == nil {
		return
	}
	reg.GaugeFunc("graphspar_sessions_resident",
		"Resident maintainer sessions.",
		func() float64 { return float64(s.sessions.Stats().Sessions) })
	reg.GaugeFunc("graphspar_sessions_resident_bytes",
		"Summed memory estimate of resident sessions.",
		func() float64 { return float64(s.sessions.Stats().ResidentBytes) })
	reg.CounterFunc("graphspar_session_hits_total",
		"Session lookups served by a resident maintainer.",
		func() float64 { return float64(s.sessions.Stats().Hits) })
	reg.CounterFunc("graphspar_session_misses_total",
		"Session lookups that found no usable resident maintainer.",
		func() float64 { return float64(s.sessions.Stats().Misses) })
	reg.CounterFunc("graphspar_session_installs_total",
		"Maintainer sessions installed.",
		func() float64 { return float64(s.sessions.Stats().Installs) })
	reg.CounterFunc("graphspar_session_evictions_total",
		"Sessions evicted by the count or byte budget.",
		func() float64 { return float64(s.sessions.Stats().Evictions) })
	reg.CounterFunc("graphspar_session_expirations_total",
		"Sessions expired by the idle TTL.",
		func() float64 { return float64(s.sessions.Stats().Expirations) })
}

// instrument wraps the routed mux with per-request accounting. All three
// labels go through bounded helpers: the route is the matched ServeMux
// pattern, the method is clamped to the registered HTTP verbs, and the
// code to plausible HTTP statuses — so an attacker spraying garbage
// methods or a buggy handler writing status 12345 cannot mint series.
func (m *serverMetrics) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r)
		route := routeLabel(r)
		m.requests.With(route, methodLabel(r.Method), statusLabel(sw.status)).Inc()
		m.reqSeconds.With(route).Observe(time.Since(t0).Seconds())
	})
}

//graphspar:bounded the matched ServeMux pattern comes from the fixed route table; unmatched requests collapse to one value
func routeLabel(r *http.Request) string {
	if r.Pattern == "" {
		return "unmatched"
	}
	return r.Pattern
}

//graphspar:bounded collapses arbitrary request methods to the nine registered HTTP verbs plus "other"
func methodLabel(method string) string {
	switch method {
	case http.MethodGet, http.MethodHead, http.MethodPost, http.MethodPut,
		http.MethodPatch, http.MethodDelete, http.MethodConnect,
		http.MethodOptions, http.MethodTrace:
		return method
	}
	return "other"
}

//graphspar:bounded clamps status codes to the 100-599 HTTP range plus "other"; an unset status means the handler wrote 200
func statusLabel(code int) string {
	if code == 0 {
		code = http.StatusOK
	}
	if code < 100 || code > 599 {
		return "other"
	}
	return strconv.Itoa(code)
}

// observeJobDone records one terminal job.
func (m *serverMetrics) observeJobDone(status JobStatus, wait, run time.Duration) {
	if m == nil {
		return
	}
	m.jobsCompleted.With(string(status)).Inc()
	if wait >= 0 {
		m.jobWait.Observe(wait.Seconds())
	}
	if run >= 0 {
		m.jobRun.Observe(run.Seconds())
	}
}

// batchOutcome is the closed label set for stream batch accounting.
type batchOutcome string

const (
	batchApplied  batchOutcome = "applied"
	batchRejected batchOutcome = "rejected"
	batchFailed   batchOutcome = "failed"
)

// admissionRouteLabel names the shedding route for the rejection
// counter. Deliberately carries no //graphspar:bounded directive: every
// return is a string literal, which the metriclabel analyzer recognizes
// as bounded by construction.
func admissionRouteLabel(stream bool) string {
	if stream {
		return "stream"
	}
	return "jobs"
}

// observeAdmissionRejection counts one request shed by admission control.
func (m *serverMetrics) observeAdmissionRejection(stream bool) {
	if m == nil {
		return
	}
	m.admissionRejections.With(admissionRouteLabel(stream)).Inc()
}

// observeStreamBatch records one stream batch and its latency.
func (m *serverMetrics) observeStreamBatch(outcome batchOutcome, d time.Duration) {
	if m == nil {
		return
	}
	m.streamBatches.With(string(outcome)).Inc()
	m.streamBatch.Observe(d.Seconds())
}

// statusWriter captures the response status for the request counter.
// Unwrap keeps http.NewResponseController working through the wrapper —
// the stream endpoint needs EnableFullDuplex and Flush on the real
// writer.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// PhaseMs is the wire form of one pipeline phase span: the phase name,
// its offset from the start of the request's trace, and its duration,
// both in milliseconds.
type PhaseMs struct {
	Phase string  `json:"phase"`
	AtMs  float64 `json:"at_ms"`
	Ms    float64 `json:"ms"`
}

// toPhaseMs converts a collected trace to the wire form.
func toPhaseMs(ps []obs.Phase) []PhaseMs {
	if len(ps) == 0 {
		return nil
	}
	out := make([]PhaseMs, len(ps))
	for i, p := range ps {
		out[i] = PhaseMs{
			Phase: p.Name,
			AtMs:  float64(p.Start.Microseconds()) / 1000,
			Ms:    float64(p.Duration.Microseconds()) / 1000,
		}
	}
	return out
}
