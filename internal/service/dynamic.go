package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"graphspar/internal/dynamic"
	"graphspar/internal/obs"
	"graphspar/internal/sessions"
)

// updateJSON is the wire form of one edge mutation.
type updateJSON struct {
	Op string  `json:"op"` // insert | delete | reweight
	U  int     `json:"u"`
	V  int     `json:"v"`
	W  float64 `json:"w,omitempty"`
}

type patchRequest struct {
	Updates []updateJSON `json:"updates"`
}

type patchResponse struct {
	graphInfo
	Applied  int    `json:"applied"`
	PrevHash string `json:"prev_hash"`
	Evicted  int    `json:"cache_entries_evicted"`
	// Session reports how the batch was routed: "hit" went through the
	// graph's resident maintainer (graph and sparsifier mutated in one
	// step), "miss" took the cold graph-only path, "disabled" means the
	// server runs without persistent sessions. SessionStats carries the
	// session telemetry after a hit.
	Session      string          `json:"session"`
	SessionStats *sessions.Stats `json:"session_stats,omitempty"`
	// Phases is the maintainer's per-phase breakdown of this batch
	// (settle, refilter, embed, verify). Only populated on a session hit
	// with ?trace=1 — the cold path mutates the graph without running any
	// pipeline phase.
	Phases []PhaseMs `json:"phases,omitempty"`
}

// maxPatchUpdates bounds one PATCH body; larger reshapes should stream.
const maxPatchUpdates = 100_000

// handlePatchEdges applies a batch of edge mutations to a registered
// graph: PATCH /v1/graphs/{name}/edges. The batch is atomic — any invalid
// update, or a result that would be disconnected, rejects the whole batch
// and the stored graph is unchanged. When the graph has a live session
// (installed by a prior incremental job or stream request), the batch is
// routed through it: the maintainer applies the updates to graph and
// sparsifier together inside the session's single-writer loop, so the
// next incremental job needs no reconcile at all. Otherwise the graph is
// mutated cold, re-hashed under its name, and result-cache entries keyed
// by the old content hash are dropped. Jobs submitted afterwards see the
// mutated graph; pass {"incremental": true} to serve them from the
// session (or warm-start them from a prior job's sparsifier).
func (s *Server) handlePatchEdges(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var req patchRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 16<<20)).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad JSON body: %w", err))
		return
	}
	if len(req.Updates) == 0 {
		writeErr(w, http.StatusBadRequest, errors.New("updates is required and must be non-empty"))
		return
	}
	if len(req.Updates) > maxPatchUpdates {
		writeErr(w, http.StatusUnprocessableEntity,
			fmt.Errorf("batch of %d updates exceeds the %d limit; stream it in chunks through POST /v1/graphs/%s/stream instead",
				len(req.Updates), maxPatchUpdates, name))
		return
	}
	batch := make([]dynamic.Update, len(req.Updates))
	for i, u := range req.Updates {
		op, err := dynamic.ParseOp(u.Op)
		if err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("update %d: %w", i, err))
			return
		}
		batch[i] = dynamic.Update{Op: op, U: u.U, V: u.V, W: u.W}
	}
	// Apply-and-swap loop: the registry Update is a compare-and-set on the
	// content hash, so a concurrent PATCH to the same graph makes this one
	// re-read the winner's graph and re-apply its own batch rather than
	// silently clobbering the other's mutations. Persistent contention
	// (or a batch invalidated by the concurrent change, e.g. its delete
	// target is gone) surfaces as the batch-validation error against the
	// latest graph. A warm session, when present and in lockstep with the
	// registry, takes the batch instead — its actor loop serializes
	// writers, and a session gone stale mid-flight re-enters this loop as
	// a cold retry.
	// ?trace=1 opts into the per-batch phase breakdown; spans from every
	// retry attempt accumulate into the same trace, so a batch that raced
	// a session away still shows the work it caused.
	ctx := r.Context()
	var tr *obs.Trace
	if r.URL.Query().Get("trace") == "1" {
		tr = obs.NewTrace()
		ctx = obs.WithTrace(ctx, tr)
	}
	const patchRetries = 4
	for attempt := 0; ; attempt++ {
		entry, err := s.registry.Get(name)
		if err != nil {
			writeErr(w, errStatus(err), err)
			return
		}

		if s.sessions != nil {
			if sess := s.sessions.Get(name, entry.Hash, ""); sess != nil {
				res, err := s.applySessionBatch(ctx, sess, name, batch)
				switch {
				case err == nil:
					resp := patchResponse{
						graphInfo:    res.info,
						Applied:      len(batch),
						PrevHash:     res.prevHash,
						Evicted:      res.evicted,
						Session:      "hit",
						SessionStats: &res.stats,
					}
					if tr != nil {
						resp.Phases = toPhaseMs(tr.Phases())
					}
					writeJSON(w, http.StatusOK, resp)
					return
				case errors.Is(err, sessions.ErrSessionGone), errors.Is(err, errSessionStale):
					if attempt < patchRetries {
						continue // session raced away; retry (cold now)
					}
				case isBatchRejection(err):
					// The maintainer rejected the batch atomically; report
					// exactly like the cold path would have.
					writeErr(w, errStatus(err), err)
					return
				default:
					writeErr(w, errStatus(err), err)
					return
				}
			}
		}

		mutated, err := dynamic.ApplyToGraph(entry.Graph, batch)
		if err != nil {
			writeErr(w, errStatus(err), err)
			return
		}
		prevHash := entry.Hash
		updated, err := s.registry.Update(name, prevHash, mutated)
		if errors.Is(err, ErrGraphChanged) && attempt < patchRetries {
			continue
		}
		if err != nil {
			writeErr(w, errStatus(err), err)
			return
		}
		evicted := 0
		if s.cache != nil && updated.Hash != prevHash {
			evicted = s.cache.InvalidateGraph(prevHash)
		}
		session := "disabled"
		if s.sessions != nil {
			session = "miss"
			// This cold swap is now the registry truth: any resident
			// session not already at the new hash is definitively stale.
			s.sessions.InvalidateStale(name, updated.Hash)
		}
		writeJSON(w, http.StatusOK, patchResponse{
			graphInfo: toGraphInfo(updated),
			Applied:   len(batch),
			PrevHash:  prevHash,
			Evicted:   evicted,
			Session:   session,
		})
		return
	}
}
