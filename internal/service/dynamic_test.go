package service

import (
	"context"
	"errors"
	"net/http"
	"sync/atomic"
	"testing"

	"graphspar/internal/gen"
	"graphspar/internal/graph"
)

// registerSpec registers a generator graph and returns its info.
func registerSpec(t *testing.T, base, name, spec string) graphInfo {
	t.Helper()
	var info graphInfo
	code, raw := doJSON(t, http.MethodPost, base+"/v1/graphs", registerRequest{Name: name, Spec: spec}, &info)
	if code != http.StatusCreated {
		t.Fatalf("register %s: %d %s", spec, code, raw)
	}
	return info
}

func TestPatchEdgesMutatesAndRehashes(t *testing.T) {
	ts := newTestServer(t, Config{}, nil)
	info := registerSpec(t, ts.URL, "g", "grid:6x6")

	var resp patchResponse
	code, raw := doJSON(t, http.MethodPatch, ts.URL+"/v1/graphs/g/edges", patchRequest{
		Updates: []updateJSON{
			{Op: "insert", U: 0, V: 35, W: 1.5},
			{Op: "delete", U: 0, V: 1},
			{Op: "reweight", U: 1, V: 2, W: 4},
		},
	}, &resp)
	if code != http.StatusOK {
		t.Fatalf("PATCH: %d %s", code, raw)
	}
	if resp.Applied != 3 {
		t.Fatalf("applied = %d, want 3", resp.Applied)
	}
	if resp.Hash == info.Hash || resp.PrevHash != info.Hash {
		t.Fatalf("hash must change: prev=%s new=%s orig=%s", resp.PrevHash, resp.Hash, info.Hash)
	}
	if resp.M != info.M { // one insert, one delete
		t.Fatalf("M = %d, want %d", resp.M, info.M)
	}

	// The stored graph reflects the mutation.
	var got graphInfo
	code, raw = doJSON(t, http.MethodGet, ts.URL+"/v1/graphs/g", nil, &got)
	if code != http.StatusOK {
		t.Fatalf("GET: %d %s", code, raw)
	}
	if got.Hash != resp.Hash {
		t.Fatalf("stored hash %s, want %s", got.Hash, resp.Hash)
	}
	if got.Source != "grid:6x6+patched" {
		t.Fatalf("source = %q, want patched marker", got.Source)
	}
}

// TestPatchBridgeDeleteRejected is the regression test for the
// connected-graph assumption: deleting a bridge must come back as a typed
// 422, and the stored graph must be unchanged.
func TestPatchBridgeDeleteRejected(t *testing.T) {
	ts := newTestServer(t, Config{}, nil)
	info := registerSpec(t, ts.URL, "bb", "barbell:5,3")

	// Barbell(5,3): left clique 0..4, bridge (4,5).
	code, raw := doJSON(t, http.MethodPatch, ts.URL+"/v1/graphs/bb/edges", patchRequest{
		Updates: []updateJSON{{Op: "delete", U: 4, V: 5}},
	}, nil)
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("bridge delete: %d %s, want 422", code, raw)
	}
	var got graphInfo
	if code, _ := doJSON(t, http.MethodGet, ts.URL+"/v1/graphs/bb", nil, &got); code != http.StatusOK {
		t.Fatal("GET after failed PATCH")
	}
	if got.Hash != info.Hash || got.M != info.M {
		t.Fatal("failed PATCH must leave the graph unchanged")
	}
}

func TestPatchValidationStatusCodes(t *testing.T) {
	ts := newTestServer(t, Config{}, nil)
	registerSpec(t, ts.URL, "g", "grid:4x4")

	cases := []struct {
		name string
		req  any
		want int
	}{
		{"unknown graph", patchRequest{Updates: []updateJSON{{Op: "insert", U: 0, V: 5, W: 1}}}, http.StatusNotFound},
		{"empty updates", patchRequest{}, http.StatusBadRequest},
		{"bad op", patchRequest{Updates: []updateJSON{{Op: "upsert", U: 0, V: 5, W: 1}}}, http.StatusBadRequest},
		{"insert existing", patchRequest{Updates: []updateJSON{{Op: "insert", U: 0, V: 1, W: 1}}}, http.StatusConflict},
		{"delete missing", patchRequest{Updates: []updateJSON{{Op: "delete", U: 0, V: 15}}}, http.StatusUnprocessableEntity},
		{"self loop", patchRequest{Updates: []updateJSON{{Op: "insert", U: 2, V: 2, W: 1}}}, http.StatusBadRequest},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			url := ts.URL + "/v1/graphs/g/edges"
			if c.name == "unknown graph" {
				url = ts.URL + "/v1/graphs/nope/edges"
			}
			code, raw := doJSON(t, http.MethodPatch, url, c.req, nil)
			if code != c.want {
				t.Fatalf("%s: %d %s, want %d", c.name, code, raw, c.want)
			}
		})
	}
}

func TestCacheInvalidateGraph(t *testing.T) {
	cache := NewResultCache(8)
	p := SparsifyParams{SigmaSq: 50}
	if err := p.Canon(); err != nil {
		t.Fatal(err)
	}
	res := &JobResult{SigmaSqAchieved: 40}
	cache.Put("hashA", p, res)
	p2 := p
	p2.SigmaSq = 100
	cache.Put("hashA", p2, res)
	cache.Put("hashB", p, res)
	if cache.Len() != 3 {
		t.Fatalf("len = %d, want 3", cache.Len())
	}
	if removed := cache.InvalidateGraph("hashA"); removed != 2 {
		t.Fatalf("removed = %d, want 2", removed)
	}
	if cache.Len() != 1 {
		t.Fatalf("len = %d, want 1 (hashB survives)", cache.Len())
	}
	if _, outcome := cache.Get("hashB", p); outcome != CacheExact {
		t.Fatalf("hashB lookup = %v, want exact hit", outcome)
	}
	if _, outcome := cache.Get("hashA", p); outcome != CacheMiss {
		t.Fatalf("hashA lookup = %v, want miss", outcome)
	}
}

// TestIncrementalDispatchesToRunner pins the queue's routing contract
// with stubs: an incremental job with a usable warm start must invoke the
// injected IncrementalFunc (passing the prior sparsifier), never the
// from-scratch runner, and must bypass the result cache. (The production
// warm-start flow end to end lives in cmd/serve.)
func TestIncrementalDispatchesToRunner(t *testing.T) {
	g, err := gen.Grid2D(4, 4, gen.UnitWeights, 1)
	if err != nil {
		t.Fatal(err)
	}
	var fullCalls, incCalls atomic.Int64
	var warmSeen *graph.Graph
	q := NewQueue(1, 8, NewResultCache(8),
		func(ctx context.Context, g *graph.Graph, p SparsifyParams) (*JobResult, error) {
			fullCalls.Add(1)
			return &JobResult{TargetMet: true, Sparsifier: g}, nil
		},
		func(ctx context.Context, g, warm *graph.Graph, p SparsifyParams) (*JobResult, error) {
			incCalls.Add(1)
			warmSeen = warm
			return &JobResult{TargetMet: true, Sparsifier: g}, nil
		})
	defer func() { _ = q.Shutdown(context.Background()) }()
	entry := &GraphEntry{Name: "g", Hash: HashGraph(g), Graph: g, N: g.N(), M: g.M()}

	p := testParams(50)
	seed, err := q.Submit(entry, p)
	if err != nil {
		t.Fatal(err)
	}
	if done := waitJob(t, q, seed.ID); done.Status != StatusDone {
		t.Fatalf("seed job: %+v", done)
	}

	pInc := SparsifyParams{SigmaSq: 50, Incremental: true}
	if err := pInc.Canon(); err != nil {
		t.Fatal(err)
	}
	job, err := q.Submit(entry, pInc)
	if err != nil {
		t.Fatal(err)
	}
	done := waitJob(t, q, job.ID)
	if done.Status != StatusDone || !done.Result.Incremental || done.Result.WarmSource != seed.ID {
		t.Fatalf("incremental job = %+v, want warm start from %s", done, seed.ID)
	}
	if fullCalls.Load() != 1 || incCalls.Load() != 1 {
		t.Fatalf("runner calls: full=%d inc=%d, want 1/1", fullCalls.Load(), incCalls.Load())
	}
	if warmSeen == nil || warmSeen != g {
		t.Fatal("incremental runner did not receive the prior sparsifier")
	}
}

// TestIncrementalWithoutWarmStartFallsBack submits incremental as the very
// first job: no prior sparsifier exists, so the queue must fall back to
// the plain runner and still succeed.
func TestIncrementalWithoutWarmStartFallsBack(t *testing.T) {
	q := newTestQueue(1, 8, nil, func(ctx context.Context, g *graph.Graph, p SparsifyParams) (*JobResult, error) {
		return &JobResult{EdgesKept: g.M(), TargetMet: true}, nil
	})
	defer func() { _ = q.Shutdown(context.Background()) }()
	g, err := gen.Grid2D(4, 4, gen.UnitWeights, 1)
	if err != nil {
		t.Fatal(err)
	}
	entry := &GraphEntry{Name: "g", Hash: HashGraph(g), Graph: g, N: g.N(), M: g.M()}
	p := SparsifyParams{SigmaSq: 50, Incremental: true}
	if err := p.Canon(); err != nil {
		t.Fatal(err)
	}
	job, err := q.Submit(entry, p)
	if err != nil {
		t.Fatal(err)
	}
	done := waitJob(t, q, job.ID)
	if done.Status != StatusDone {
		t.Fatalf("job: %+v", done)
	}
	if !done.Result.Incremental || done.Result.WarmSource != "" {
		t.Fatalf("cold incremental result = %+v, want Incremental with empty WarmSource", done.Result)
	}
}

// TestIncrementalWarmJobValidation rejects unknown or unfinished warm_job
// references.
func TestIncrementalWarmJobValidation(t *testing.T) {
	q := newTestQueue(1, 8, nil, func(ctx context.Context, g *graph.Graph, p SparsifyParams) (*JobResult, error) {
		return &JobResult{TargetMet: true}, nil
	})
	defer func() { _ = q.Shutdown(context.Background()) }()
	g, err := gen.Grid2D(4, 4, gen.UnitWeights, 1)
	if err != nil {
		t.Fatal(err)
	}
	entry := &GraphEntry{Name: "g", Hash: HashGraph(g), Graph: g, N: g.N(), M: g.M()}
	p := SparsifyParams{SigmaSq: 50, Incremental: true, WarmJob: "job-999"}
	if err := p.Canon(); err != nil {
		t.Fatal(err)
	}
	job, err := q.Submit(entry, p)
	if err != nil {
		t.Fatal(err)
	}
	done := waitJob(t, q, job.ID)
	if done.Status != StatusFailed {
		t.Fatalf("job with bogus warm_job: %+v, want failed", done)
	}
}

// TestRegistryUpdateCAS covers the compare-and-set semantics concurrent
// PATCHes rely on: an Update against a stale hash must fail with
// ErrGraphChanged instead of clobbering the winner's graph.
func TestRegistryUpdateCAS(t *testing.T) {
	r := NewRegistry()
	g1, err := gen.Grid2D(3, 3, gen.UnitWeights, 1)
	if err != nil {
		t.Fatal(err)
	}
	entry, err := r.Register("g", "spec", g1)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := gen.Grid2D(3, 3, gen.UniformWeights, 2)
	if err != nil {
		t.Fatal(err)
	}
	updated, err := r.Update("g", entry.Hash, g2)
	if err != nil {
		t.Fatal(err)
	}
	// Second writer still holding the original hash must lose.
	g3, err := gen.Grid2D(3, 3, gen.UniformWeights, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Update("g", entry.Hash, g3); !errors.Is(err, ErrGraphChanged) {
		t.Fatalf("stale update: err = %v, want ErrGraphChanged", err)
	}
	// And wins when it re-reads the current hash.
	if _, err := r.Update("g", updated.Hash, g3); err != nil {
		t.Fatalf("fresh update: %v", err)
	}
}

// TestIncrementalWarmJobWrongGraph rejects a warm_job that sparsified a
// different graph, even with a matching vertex count.
func TestIncrementalWarmJobWrongGraph(t *testing.T) {
	q := newTestQueue(1, 8, nil, func(ctx context.Context, g *graph.Graph, p SparsifyParams) (*JobResult, error) {
		return &JobResult{TargetMet: true, Sparsifier: g}, nil
	})
	defer func() { _ = q.Shutdown(context.Background()) }()
	g, err := gen.Grid2D(4, 4, gen.UnitWeights, 1)
	if err != nil {
		t.Fatal(err)
	}
	entryA := &GraphEntry{Name: "a", Hash: HashGraph(g), Graph: g, N: g.N(), M: g.M()}
	entryB := &GraphEntry{Name: "b", Hash: HashGraph(g) + "x", Graph: g, N: g.N(), M: g.M()}
	p := SparsifyParams{SigmaSq: 50}
	if err := p.Canon(); err != nil {
		t.Fatal(err)
	}
	jobA, err := q.Submit(entryA, p)
	if err != nil {
		t.Fatal(err)
	}
	if done := waitJob(t, q, jobA.ID); done.Status != StatusDone {
		t.Fatalf("seed job: %+v", done)
	}
	pInc := SparsifyParams{SigmaSq: 50, Incremental: true, WarmJob: jobA.ID}
	if err := pInc.Canon(); err != nil {
		t.Fatal(err)
	}
	jobB, err := q.Submit(entryB, pInc)
	if err != nil {
		t.Fatal(err)
	}
	if done := waitJob(t, q, jobB.ID); done.Status != StatusFailed {
		t.Fatalf("cross-graph warm_job: %+v, want failed", done)
	}
}

func TestCanonRejectsWarmJobWithoutIncremental(t *testing.T) {
	p := SparsifyParams{SigmaSq: 50, WarmJob: "job-1"}
	if err := p.Canon(); err == nil {
		t.Fatal("warm_job without incremental must fail Canon")
	}
}
