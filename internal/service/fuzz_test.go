package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"graphspar/internal/cli"
	"graphspar/internal/graph"
)

// fuzzServer builds a handler whose sparsifier is stubbed out (fuzzing
// exercises the HTTP surface, not the numerics) and whose graphs come
// from tiny specs only.
func fuzzServer(t testing.TB) http.Handler {
	srv := NewServer(Config{
		Workers: 1,
		Sparsify: func(ctx context.Context, g *graph.Graph, p SparsifyParams) (*JobResult, error) {
			return &JobResult{EdgesKept: g.M(), TargetMet: true, Sparsifier: g}, nil
		},
	})
	t.Cleanup(func() { _ = srv.Queue().Shutdown(context.Background()) })
	return srv.Handler()
}

// FuzzUploadHandler throws arbitrary bytes at PUT /v1/graphs/{name}: the
// handler must always answer with a well-formed status — 201 for a valid
// connected MatrixMarket graph, 4xx otherwise — and must never panic or
// 500 on malformed input.
func FuzzUploadHandler(f *testing.F) {
	f.Add([]byte("%%MatrixMarket matrix coordinate real symmetric\n3 3 3\n2 1 1\n3 2 1\n3 1 1\n"))
	f.Add([]byte("%%MatrixMarket matrix coordinate pattern general\n2 2 1\n1 2\n"))
	f.Add([]byte("%%MatrixMarket matrix coordinate real general\n3 3 1\n1 2 1\n")) // disconnected
	f.Add([]byte("%%MatrixMarket matrix coordinate real general\n1000000000 1000000000 0\n"))
	f.Add([]byte("garbage"))
	f.Add([]byte(""))
	handler := fuzzServer(f)
	f.Fuzz(func(t *testing.T, body []byte) {
		req := httptest.NewRequest(http.MethodPut, "/v1/graphs/fz", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, req) // a panic fails the fuzz run
		code := rec.Code
		if code != http.StatusCreated && (code < 400 || code >= 500) {
			t.Fatalf("PUT upload returned %d (body %q)", code, rec.Body.String())
		}
		if code == http.StatusCreated {
			// Accepted graphs must round-trip through the download path.
			dl := httptest.NewRequest(http.MethodGet, "/v1/graphs/fz/laplacian.mtx", nil)
			drec := httptest.NewRecorder()
			handler.ServeHTTP(drec, dl)
			if drec.Code != http.StatusOK {
				t.Fatalf("download of accepted upload returned %d", drec.Code)
			}
			del := httptest.NewRequest(http.MethodDelete, "/v1/graphs/fz", nil)
			handler.ServeHTTP(httptest.NewRecorder(), del)
		}
	})
}

// FuzzGraphSpec exercises the registration path's spec validation plus
// the generator dispatch in cli.LoadGraph. Specs past a small work budget
// are only budget-checked (the real handler enforces the same shape of
// bound); cheap specs run the actual generator, which must error or
// produce a valid graph — never panic.
func FuzzGraphSpec(f *testing.F) {
	for _, s := range []string{
		"grid:4x4", "grid:4x4:log", "grid3d:2x2x2", "trimesh:3x3",
		"annulus:3x6", "knn:20,3,2", "ba:20,2", "barbell:4,2",
		"coauth:20,2,0.3", "ws:16,4,0.1", "dense:16,4", "regular:16,4",
		"grid:0x0", "grid:-1x-1", "knn:1e9,2,2", "nope:1,2", "", ":",
		"grid:4x4:bogus", "barbell:999999999,999999999",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		if len(spec) > 64 {
			return
		}
		// Mirror the handler's pre-checks: path specs are rejected before
		// any filesystem access, and the budget gates generator work. The
		// fuzz budget is tiny so each exec stays fast.
		if strings.HasSuffix(spec, ".mtx") || strings.ContainsAny(spec, `/\`) {
			return
		}
		if err := checkSpecBudget(spec, 20_000); err != nil {
			return
		}
		g, err := cli.LoadGraph(spec, 1)
		if err != nil {
			return
		}
		if g.N() < 0 || g.M() < 0 {
			t.Fatalf("spec %q produced invalid graph %v", spec, g)
		}
		_ = g.IsConnected()
	})
}

// FuzzPatchEdges feeds arbitrary JSON bodies to the PATCH endpoint over a
// real registered graph: every response must be a well-formed status and
// the stored graph must stay connected no matter what the body held.
func FuzzPatchEdges(f *testing.F) {
	valid, _ := json.Marshal(patchRequest{Updates: []updateJSON{{Op: "insert", U: 0, V: 5, W: 1}}})
	f.Add(string(valid))
	bridge, _ := json.Marshal(patchRequest{Updates: []updateJSON{{Op: "delete", U: 0, V: 1}}})
	f.Add(string(bridge))
	f.Add(`{"updates":[{"op":"reweight","u":1,"v":2,"w":1e308}]}`)
	f.Add(`{"updates":[{"op":"insert","u":-1,"v":2,"w":1}]}`)
	f.Add(`{"updates":[]}`)
	f.Add(`{`)
	f.Add(`null`)
	handler := fuzzServer(f)
	reg, _ := json.Marshal(registerRequest{Name: "g", Spec: "grid:3x3"})
	req := httptest.NewRequest(http.MethodPost, "/v1/graphs", bytes.NewReader(reg))
	rec := httptest.NewRecorder()
	handler.ServeHTTP(rec, req)
	if rec.Code != http.StatusCreated {
		f.Fatalf("seed graph registration failed: %d", rec.Code)
	}
	f.Fuzz(func(t *testing.T, body string) {
		req := httptest.NewRequest(http.MethodPatch, "/v1/graphs/g/edges", strings.NewReader(body))
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK && (rec.Code < 400 || rec.Code >= 500) {
			t.Fatalf("PATCH returned %d for body %q", rec.Code, body)
		}
		// Whatever happened, the stored graph must still be connected.
		get := httptest.NewRequest(http.MethodGet, "/v1/graphs/g", nil)
		grec := httptest.NewRecorder()
		handler.ServeHTTP(grec, get)
		if grec.Code != http.StatusOK {
			t.Fatalf("graph lost after PATCH body %q", body)
		}
	})
}

// FuzzStreamDecoder throws arbitrary bodies at the stream endpoint's
// incremental decoder: it must never panic, never hand back an empty
// batch, never exceed the batch cap, and always terminate (EOF or a
// decode error).
func FuzzStreamDecoder(f *testing.F) {
	f.Add("+ 0 1 1.5\ncommit\n- 0 1\n")
	f.Add("{\"op\":\"insert\",\"u\":0,\"v\":1,\"w\":1}\n{\"op\":\"commit\"}\n{\"op\":\"delete\",\"u\":0,\"v\":1}\n")
	f.Add("# comment\n\n= 3 4 2.25\ncommit\ncommit\n")
	f.Add("insert 1 2 0.5\nreweight 1 2 2\n")
	f.Add("+ 0\n")
	f.Add("{\n")
	f.Add("{\"op\":\"bogus\",\"u\":1,\"v\":2}\n")
	f.Add("= 1 2 1e999\n")
	f.Add("commit\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, body string) {
		const cap = 16
		d := newStreamDecoder(strings.NewReader(body), cap)
		for {
			batch, err := d.Next()
			if err != nil {
				return // io.EOF or a decode error both terminate the stream
			}
			if len(batch) == 0 {
				t.Fatal("decoder returned an empty batch")
			}
			if len(batch) > cap {
				t.Fatalf("batch of %d exceeds the %d cap", len(batch), cap)
			}
		}
	})
}
