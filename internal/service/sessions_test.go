package service

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"graphspar/internal/dynamic"
	"graphspar/internal/graph"
	"graphspar/internal/sessions"
)

// stubMaintainer satisfies sessions.Maintainer with real graph mutation
// (dynamic.ApplyToGraph) but stubbed numerics, so the service's session
// routing can be tested without sparsifying anything.
type stubMaintainer struct {
	g       *graph.Graph
	applies int
	updates int
}

func (f *stubMaintainer) Apply(ctx context.Context, batch []dynamic.Update) error {
	g2, err := dynamic.ApplyToGraph(f.g, batch)
	if err != nil {
		return err
	}
	f.g = g2
	f.applies++
	f.updates += len(batch)
	return nil
}

func (f *stubMaintainer) Rebuild(ctx context.Context) error { return nil }
func (f *stubMaintainer) Graph() *graph.Graph               { return f.g }
func (f *stubMaintainer) Sparsifier() *graph.Graph          { return f.g }
func (f *stubMaintainer) Cond() float64                     { return 2 }
func (f *stubMaintainer) TargetMet() bool                   { return true }
func (f *stubMaintainer) ResidentBytes() int64              { return 1 << 10 }
func (f *stubMaintainer) Stats() dynamic.Stats {
	return dynamic.Stats{Applies: f.applies, Updates: f.updates, Cond: 2, TargetMet: true}
}

// sessionTestConfig wires stub Maintain/Resume runners plus counters.
func sessionTestConfig(maintains, resumes *atomic.Int64) Config {
	return Config{
		Workers: 1,
		Sparsify: func(ctx context.Context, g *graph.Graph, p SparsifyParams) (*JobResult, error) {
			return &JobResult{SigmaSqAchieved: p.SigmaSq, TargetMet: true, Sparsifier: g}, nil
		},
		Maintain: func(ctx context.Context, g *graph.Graph, p SparsifyParams) (sessions.Maintainer, error) {
			if maintains != nil {
				maintains.Add(1)
			}
			return &stubMaintainer{g: g}, nil
		},
		Resume: func(ctx context.Context, g, warm *graph.Graph, p SparsifyParams) (sessions.Maintainer, error) {
			if resumes != nil {
				resumes.Add(1)
			}
			return &stubMaintainer{g: g}, nil
		},
	}
}

// streamLines POSTs an event body to the stream endpoint and decodes
// every NDJSON response line.
func streamLines(t *testing.T, base, name, query, body string) (int, []map[string]any) {
	t.Helper()
	resp, err := http.Post(base+"/v1/graphs/"+name+"/stream"+query, "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		// Error statuses carry one indented-JSON error object, not NDJSON.
		return resp.StatusCode, nil
	}
	var lines []map[string]any
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if strings.TrimSpace(sc.Text()) == "" {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		lines = append(lines, m)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, lines
}

func TestStreamEndpointAppliesBatches(t *testing.T) {
	var maintains atomic.Int64
	ts := newTestServer(t, sessionTestConfig(&maintains, nil), nil)
	info := registerSpec(t, ts.URL, "g", "grid:6x6")

	// Three batches: text insert, NDJSON reweight, and a bridge-free
	// delete of the edge just inserted. Mixed spellings on purpose.
	body := "+ 0 35 1.5\ncommit\n" +
		`{"op":"reweight","u":0,"v":1,"w":2.5}` + "\n" + `{"op":"commit"}` + "\n" +
		"- 0 35\n"
	code, lines := streamLines(t, ts.URL, "g", "?sigma2=50", body)
	if code != http.StatusOK {
		t.Fatalf("stream: %d", code)
	}
	if len(lines) != 4 { // 3 batch lines + summary
		t.Fatalf("got %d lines: %v", len(lines), lines)
	}
	for i, line := range lines[:3] {
		if line["applied"] != true {
			t.Fatalf("batch %d not applied: %v", i+1, line)
		}
		if line["condition_number"].(float64) != 2 || line["target_met"] != true {
			t.Fatalf("batch %d certificate missing: %v", i+1, line)
		}
	}
	if lines[0]["session"] != "cold" || lines[1]["session"] != "hit" || lines[2]["session"] != "hit" {
		t.Fatalf("session states: %v %v %v", lines[0]["session"], lines[1]["session"], lines[2]["session"])
	}
	sum := lines[3]
	if sum["done"] != true || sum["batches"].(float64) != 3 || sum["applied_total"].(float64) != 3 {
		t.Fatalf("summary: %v", sum)
	}
	if sum["session_stats"] == nil {
		t.Fatalf("summary lacks session stats: %v", sum)
	}
	if maintains.Load() != 1 {
		t.Fatalf("maintainer built %d times, want 1 (session reuse)", maintains.Load())
	}

	// The registry advanced in lockstep: net effect of the three batches
	// is a reweight only, so m is unchanged but the hash moved.
	var got graphInfo
	if code, raw := doJSON(t, http.MethodGet, ts.URL+"/v1/graphs/g", nil, &got); code != http.StatusOK {
		t.Fatalf("GET: %d %s", code, raw)
	}
	if got.Hash == info.Hash || got.M != info.M {
		t.Fatalf("registry after stream: %+v (was %+v)", got, info)
	}
	if h := sum["graph"].(map[string]any)["hash"]; h != got.Hash {
		t.Fatalf("summary hash %v != registry %v", h, got.Hash)
	}
}

func TestStreamRejectsBridgeDeleteAndContinues(t *testing.T) {
	ts := newTestServer(t, sessionTestConfig(nil, nil), nil)
	registerSpec(t, ts.URL, "g", "grid:3x3")

	// Batch 1 deletes a bridge-making pair (rejected atomically), batch 2
	// is a valid reweight: the stream must keep going.
	body := "- 0 1\n- 0 3\ncommit\n= 1 2 3.5\n"
	code, lines := streamLines(t, ts.URL, "g", "?sigma2=50", body)
	if code != http.StatusOK {
		t.Fatalf("stream: %d", code)
	}
	if len(lines) != 3 {
		t.Fatalf("got %d lines: %v", len(lines), lines)
	}
	if lines[0]["rejected"] != true || lines[0]["error"] == nil {
		t.Fatalf("bridge delete not rejected: %v", lines[0])
	}
	if lines[1]["applied"] != true {
		t.Fatalf("stream did not continue past rejection: %v", lines[1])
	}
	sum := lines[2]
	if sum["applied_total"].(float64) != 1 || sum["rejected_total"].(float64) != 1 {
		t.Fatalf("summary: %v", sum)
	}
}

func TestStreamDecodeErrorTerminates(t *testing.T) {
	ts := newTestServer(t, sessionTestConfig(nil, nil), nil)
	registerSpec(t, ts.URL, "g", "grid:3x3")
	code, lines := streamLines(t, ts.URL, "g", "?sigma2=50", "= 1 2 2.0\ncommit\nnot an event\n= 1 2 1.0\n")
	if code != http.StatusOK {
		t.Fatalf("stream: %d", code)
	}
	// One applied batch, one error line, then the summary.
	if len(lines) != 3 {
		t.Fatalf("got %d lines: %v", len(lines), lines)
	}
	if lines[1]["error"] == nil {
		t.Fatalf("decode error not reported: %v", lines[1])
	}
	if lines[2]["batches"].(float64) != 1 {
		t.Fatalf("summary: %v", lines[2])
	}
}

func TestStreamRequiresSigma2AndSessions(t *testing.T) {
	ts := newTestServer(t, sessionTestConfig(nil, nil), nil)
	registerSpec(t, ts.URL, "g", "grid:3x3")
	if code, _ := streamLines(t, ts.URL, "g", "", "= 1 2 2\n"); code != http.StatusBadRequest {
		t.Fatalf("missing sigma2: %d, want 400", code)
	}
	if code, _ := streamLines(t, ts.URL, "nope", "?sigma2=50", "= 1 2 2\n"); code != http.StatusNotFound {
		t.Fatalf("unknown graph: %d, want 404", code)
	}

	// A stub server without maintainer runners has sessions disabled.
	var calls atomic.Int64
	plain := newTestServer(t, Config{}, &calls)
	registerSpec(t, plain.URL, "g", "grid:3x3")
	if code, _ := streamLines(t, plain.URL, "g", "?sigma2=50", "= 1 2 2\n"); code != http.StatusNotImplemented {
		t.Fatalf("disabled sessions: %d, want 501", code)
	}
}

func TestPatchRoutesThroughSessionAndReportsState(t *testing.T) {
	ts := newTestServer(t, sessionTestConfig(nil, nil), nil)
	registerSpec(t, ts.URL, "g", "grid:6x6")

	// No session yet: PATCH reports a miss but still applies cold.
	var cold patchResponse
	code, raw := doJSON(t, http.MethodPatch, ts.URL+"/v1/graphs/g/edges", patchRequest{
		Updates: []updateJSON{{Op: "reweight", U: 0, V: 1, W: 2}},
	}, &cold)
	if code != http.StatusOK {
		t.Fatalf("cold PATCH: %d %s", code, raw)
	}
	if cold.Session != "miss" {
		t.Fatalf("session = %q, want miss", cold.Session)
	}
	if cold.SessionStats != nil {
		t.Fatalf("cold PATCH must not carry session stats: %+v", cold.SessionStats)
	}

	// A stream request installs the session; the next PATCH hits it.
	if code, _ := streamLines(t, ts.URL, "g", "?sigma2=50", "= 0 1 3\n"); code != http.StatusOK {
		t.Fatalf("stream install: %d", code)
	}
	var warm patchResponse
	code, raw = doJSON(t, http.MethodPatch, ts.URL+"/v1/graphs/g/edges", patchRequest{
		Updates: []updateJSON{{Op: "insert", U: 0, V: 35, W: 1.25}},
	}, &warm)
	if code != http.StatusOK {
		t.Fatalf("warm PATCH: %d %s", code, raw)
	}
	if warm.Session != "hit" {
		t.Fatalf("session = %q, want hit", warm.Session)
	}
	if warm.SessionStats == nil || warm.SessionStats.BatchesApplied != 2 {
		t.Fatalf("session stats after warm PATCH: %+v", warm.SessionStats)
	}
	if warm.M != 60+1 { // grid:6x6 has 60 edges; the insert added one
		t.Fatalf("M = %d", warm.M)
	}

	// A rejected batch through the session maps to the same status codes
	// as the cold path and leaves the session resident.
	code, raw = doJSON(t, http.MethodPatch, ts.URL+"/v1/graphs/g/edges", patchRequest{
		Updates: []updateJSON{{Op: "insert", U: 0, V: 35, W: 1}},
	}, nil)
	if code != http.StatusConflict {
		t.Fatalf("duplicate insert: %d %s", code, raw)
	}
	var again patchResponse
	code, _ = doJSON(t, http.MethodPatch, ts.URL+"/v1/graphs/g/edges", patchRequest{
		Updates: []updateJSON{{Op: "delete", U: 0, V: 35}},
	}, &again)
	if code != http.StatusOK || again.Session != "hit" {
		t.Fatalf("session must survive a rejected batch: %d %q", code, again.Session)
	}

	// Deleting the graph closes its session.
	if code, _ := doJSON(t, http.MethodDelete, ts.URL+"/v1/graphs/g", nil, nil); code != http.StatusNoContent {
		t.Fatalf("delete: %d", code)
	}
	var health struct {
		Sessions *sessions.ManagerStats `json:"sessions"`
	}
	if code, raw := doJSON(t, http.MethodGet, ts.URL+"/v1/healthz", nil, &health); code != http.StatusOK {
		t.Fatalf("healthz: %d %s", code, raw)
	}
	if health.Sessions == nil || health.Sessions.Sessions != 0 {
		t.Fatalf("sessions after graph delete: %+v", health.Sessions)
	}
}

func TestIncrementalJobServedFromSession(t *testing.T) {
	var resumes atomic.Int64
	ts := newTestServer(t, sessionTestConfig(nil, &resumes), nil)
	registerSpec(t, ts.URL, "g", "grid:6x6")

	// Full job gives the warm-start source.
	var job Job
	code, raw := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", struct {
		Graph string `json:"graph"`
		SparsifyParams
	}{"g", SparsifyParams{SigmaSq: 50}}, &job)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, raw)
	}
	full := waitJobHTTP(t, ts.URL, job.ID)

	// First incremental job: cold Resume installs the session.
	code, raw = doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", struct {
		Graph string `json:"graph"`
		SparsifyParams
	}{"g", SparsifyParams{SigmaSq: 50, Incremental: true}}, &job)
	if code != http.StatusAccepted {
		t.Fatalf("submit incremental: %d %s", code, raw)
	}
	inc1 := waitJobHTTP(t, ts.URL, job.ID)
	if inc1.Result == nil || !inc1.Result.Incremental || inc1.Result.SessionHit {
		t.Fatalf("first incremental: %+v", inc1.Result)
	}
	if inc1.Result.WarmSource != full.ID {
		t.Fatalf("warm source = %q, want %q", inc1.Result.WarmSource, full.ID)
	}
	if resumes.Load() != 1 {
		t.Fatalf("resume ran %d times, want 1", resumes.Load())
	}

	// Second incremental job: served from the resident session; the
	// Resume runner must NOT run again.
	code, raw = doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", struct {
		Graph string `json:"graph"`
		SparsifyParams
	}{"g", SparsifyParams{SigmaSq: 50, Incremental: true}}, &job)
	if code != http.StatusAccepted {
		t.Fatalf("submit incremental 2: %d %s", code, raw)
	}
	inc2 := waitJobHTTP(t, ts.URL, job.ID)
	if inc2.Result == nil || !inc2.Result.SessionHit {
		t.Fatalf("second incremental must be a session hit: %+v", inc2.Result)
	}
	if inc2.Result.Session == nil {
		t.Fatalf("session telemetry missing: %+v", inc2.Result)
	}
	if resumes.Load() != 1 {
		t.Fatalf("resume ran %d times after session hit, want 1", resumes.Load())
	}

	// Different parameters do not alias the session.
	code, raw = doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", struct {
		Graph string `json:"graph"`
		SparsifyParams
	}{"g", SparsifyParams{SigmaSq: 80, Incremental: true}}, &job)
	if code != http.StatusAccepted {
		t.Fatalf("submit incremental 3: %d %s", code, raw)
	}
	inc3 := waitJobHTTP(t, ts.URL, job.ID)
	if inc3.Result == nil || inc3.Result.SessionHit {
		t.Fatalf("different σ² must not hit the session: %+v", inc3.Result)
	}
	if resumes.Load() != 2 {
		t.Fatalf("resume ran %d times, want 2", resumes.Load())
	}
}

// waitJob polls a job until terminal.
func waitJobHTTP(t *testing.T, base, id string) Job {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		var job Job
		code, raw := doJSON(t, http.MethodGet, base+"/v1/jobs/"+id, nil, &job)
		if code != http.StatusOK {
			t.Fatalf("GET job: %d %s", code, raw)
		}
		switch job.Status {
		case StatusDone:
			return job
		case StatusFailed, StatusCanceled:
			t.Fatalf("job %s: %s (%s)", id, job.Status, job.Error)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return Job{}
}
