package service

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"graphspar/internal/graph"
	"graphspar/internal/obs"
	"graphspar/internal/sessions"
)

// Queue errors, mapped to HTTP status codes by the handlers.
var (
	ErrQueueFull     = errors.New("service: job queue is full")
	ErrQueueClosed   = errors.New("service: job queue is shut down")
	ErrJobNotFound   = errors.New("service: job not found")
	ErrJobUnfinished = errors.New("service: job has not finished")
	// ErrNoRunner reports a queue constructed without an execution
	// backend. The service is transport and scheduling only — the
	// production runners are built on the public graphspar facade and
	// injected by cmd/serve, because internal packages must not import
	// the root package (the facade sits on top of them).
	ErrNoRunner = errors.New("service: no sparsify runner configured")
)

// JobStatus is the lifecycle state of a job.
type JobStatus string

// Job lifecycle states. Terminal states are Done, Failed and Canceled.
const (
	StatusQueued   JobStatus = "queued"
	StatusRunning  JobStatus = "running"
	StatusDone     JobStatus = "done"
	StatusFailed   JobStatus = "failed"
	StatusCanceled JobStatus = "canceled"
)

// JobResult summarizes a completed sparsification plus its independent
// similarity verification (core.VerifySimilarity). The Sparsifier graph
// is retained for edge-list and MatrixMarket downloads.
type JobResult struct {
	EdgesKept       int     `json:"edges_kept"`
	EdgesInput      int     `json:"edges_input"`
	Density         float64 `json:"density"` // |E_P| / |V|
	Reduction       float64 `json:"edge_reduction"`
	SigmaSqAchieved float64 `json:"sigma2_achieved"`
	TargetMet       bool    `json:"target_met"`
	Rounds          int     `json:"rounds"`
	TotalStretch    float64 `json:"total_stretch"`
	Connected       bool    `json:"connected"`
	// Verified* come from the k-step generalized Lanczos check, an
	// estimate independent of the sparsifier's own tracking.
	VerifiedLambdaMax float64 `json:"verified_lambda_max"`
	VerifiedLambdaMin float64 `json:"verified_lambda_min"`
	VerifiedCond      float64 `json:"verified_condition_number"`

	// Sharded-engine metadata, zero for single-shot jobs. ShardSpeedup is
	// the shard phase's parallel efficiency (Σ per-shard CPU / wall).
	Shards       int     `json:"shards,omitempty"`
	CutEdges     int     `json:"cut_edges,omitempty"`
	RecoveredCut int     `json:"recovered_cut_edges,omitempty"`
	ShardSpeedup float64 `json:"shard_speedup,omitempty"`

	// Multilevel-engine metadata, zero for other jobs: the hierarchy depth
	// the run actually used (1 = the coarsening floor stopped it
	// immediately) and how many off-tree edges the per-level re-filters
	// recovered on the way back to the fine graph.
	Multilevel     bool `json:"multilevel,omitempty"`
	CoarsenDepth   int  `json:"coarsen_depth,omitempty"`
	LevelRecovered int  `json:"level_recovered_edges,omitempty"`

	// Incremental-job metadata. WarmSource names the job whose sparsifier
	// seeded the warm start ("" = no warm start was available and the job
	// fell back to a from-scratch run). Refilters/Rebuilds count the
	// maintainer's certificate-restoration work. SessionHit reports that
	// a resident session served the job directly — the per-job
	// dynamic.Resume reconcile/re-embed was skipped entirely — and
	// Session carries the session telemetry whenever a session served the
	// job or was installed by it.
	Incremental bool            `json:"incremental,omitempty"`
	WarmSource  string          `json:"warm_source,omitempty"`
	Refilters   int             `json:"refilter_rounds,omitempty"`
	Rebuilds    int             `json:"rebuilds,omitempty"`
	SessionHit  bool            `json:"session_hit,omitempty"`
	Session     *sessions.Stats `json:"session,omitempty"`

	// Phases is the per-phase trace of this job's pipeline run (partition,
	// shard, stitch, embed, verify, ...), in execution order. Empty for
	// cache hits and session hits — no pipeline ran.
	Phases []PhaseMs `json:"phases,omitempty"`

	Sparsifier *graph.Graph `json:"-"`
}

// Job is one sparsification request moving through the queue. Fields are
// guarded by the owning Queue's mutex; Snapshot returns a consistent copy.
type Job struct {
	ID         string         `json:"id"`
	GraphName  string         `json:"graph"`
	GraphHash  string         `json:"graph_hash"`
	Params     SparsifyParams `json:"params"`
	Status     JobStatus      `json:"status"`
	CacheHit   CacheOutcome   `json:"cache,omitempty"` // exact | coarser, when served from cache
	Error      string         `json:"error,omitempty"`
	Submitted  time.Time      `json:"submitted_at"`
	Started    time.Time      `json:"started_at,omitzero"`
	Finished   time.Time      `json:"finished_at,omitzero"`
	Result     *JobResult     `json:"result,omitempty"`
	graphEntry *GraphEntry
}

// SparsifyFunc runs one sparsification. cmd/serve injects the production
// implementation (built on the graphspar facade); tests inject counters
// or stubs.
type SparsifyFunc func(ctx context.Context, g *graph.Graph, p SparsifyParams) (*JobResult, error)

// IncrementalFunc runs one warm-started sparsification from a prior
// sparsifier. Injected alongside SparsifyFunc.
type IncrementalFunc func(ctx context.Context, g, warm *graph.Graph, p SparsifyParams) (*JobResult, error)

// defaultRetainJobs bounds how many terminal jobs the queue remembers
// (the daemon would otherwise leak one sparsifier graph per job ever
// submitted).
const defaultRetainJobs = 512

// Queue runs jobs through a bounded worker pool: at most `workers`
// sparsifications run concurrently and at most `backlog` jobs wait;
// Submit fails fast with ErrQueueFull beyond that, so the HTTP layer can
// shed load with 503 instead of stacking goroutines. Terminal jobs are
// pruned oldest-first beyond the retain bound, so a long-running daemon
// holds a bounded number of results (plus whatever the cache pins).
type Queue struct {
	mu      sync.Mutex
	jobs    map[string]*Job
	order   []string // submission order, for listing and pruning
	seq     int
	retain  int
	pending chan *Job
	ctx     context.Context
	cancel  context.CancelFunc
	wg      sync.WaitGroup
	closed  bool

	cache       *ResultCache
	cacheGate   func(hash string) bool // nil = always cache
	sparsify    SparsifyFunc
	incremental IncrementalFunc
	sessionMgr  *sessions.Manager
	resume      ResumeFunc
	currentHash func(name string) (string, bool)

	workers   int
	inFlight  atomic.Int64
	metrics   *serverMetrics       // nil = uninstrumented
	admission *admissionController // nil = admit everything
}

// SetSessions attaches the persistent-session manager, the runner that
// warm-starts live maintainers, and a lookup for a graph's *current*
// content hash. With all three set, incremental jobs are served straight
// from a matching resident session (skipping the per-job dynamic.Resume
// reconcile) and cold incremental jobs install the session they build,
// so the next PATCH/stream/job finds it warm. The hash lookup guards
// against stale job snapshots: a job that sat queued across a PATCH must
// neither be served from (nor overwrite) the newer graph's session.
func (q *Queue) SetSessions(mgr *sessions.Manager, resume ResumeFunc, currentHash func(name string) (string, bool)) {
	q.mu.Lock()
	q.sessionMgr, q.resume, q.currentHash = mgr, resume, currentHash
	q.mu.Unlock()
}

// setMetrics attaches the server's instruments; nil leaves the queue
// uninstrumented (the observe methods no-op on a nil receiver).
func (q *Queue) setMetrics(m *serverMetrics) {
	q.mu.Lock()
	q.metrics = m
	q.mu.Unlock()
}

// setAdmission attaches admission control. The gate sits after the
// cache lookup and before the enqueue, so cache hits are always served
// but saturating backlogs shed with ErrSaturated instead of filling to
// the hard ErrQueueFull bound.
func (q *Queue) setAdmission(a *admissionController) {
	q.mu.Lock()
	q.admission = a
	q.mu.Unlock()
}

// SetCacheGate installs a predicate consulted before caching a finished
// result under a graph hash; returning false drops the write. The server
// wires it to Registry.HasHash so results computed against a graph that
// was PATCHed mid-flight (and whose old-hash cache lines were already
// invalidated) don't re-occupy cache slots under a hash no lookup will
// ever ask for again. A PATCH landing between the gate check and the Put
// can still leak one such entry; it is unreachable but harmless and ages
// out via LRU.
func (q *Queue) SetCacheGate(gate func(hash string) bool) {
	q.mu.Lock()
	q.cacheGate = gate
	q.mu.Unlock()
}

// NewQueue starts a queue with the given concurrency and backlog bounds.
// sparsify executes from-scratch jobs and incremental executes
// warm-started ones; a nil runner fails the corresponding jobs with
// ErrNoRunner (incremental jobs without a usable warm start fall back to
// sparsify). cache may be nil to disable memoization.
func NewQueue(workers, backlog int, cache *ResultCache, sparsify SparsifyFunc, incremental IncrementalFunc) *Queue {
	if workers <= 0 {
		workers = 1
	}
	if backlog < 0 {
		backlog = 0
	}
	if sparsify == nil {
		sparsify = func(context.Context, *graph.Graph, SparsifyParams) (*JobResult, error) {
			return nil, ErrNoRunner
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	q := &Queue{
		jobs:        make(map[string]*Job),
		retain:      defaultRetainJobs,
		pending:     make(chan *Job, backlog),
		ctx:         ctx,
		cancel:      cancel,
		cache:       cache,
		sparsify:    sparsify,
		incremental: incremental,
		workers:     workers,
	}
	for i := 0; i < workers; i++ {
		q.wg.Add(1)
		go q.worker()
	}
	return q
}

// Submit registers a job for the graph entry and either serves it
// instantly from the result cache or enqueues it. The returned snapshot
// reflects the state at submission (already Done on a cache hit).
func (q *Queue) Submit(entry *GraphEntry, p SparsifyParams) (Job, error) {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return Job{}, ErrQueueClosed
	}
	q.seq++
	job := &Job{
		ID:         "job-" + strconv.Itoa(q.seq),
		GraphName:  entry.Name,
		GraphHash:  entry.Hash,
		Params:     p,
		Status:     StatusQueued,
		Submitted:  time.Now().UTC(),
		graphEntry: entry,
	}

	// Memoized path: completed result for the same (graph, params) — or a
	// tighter-σ² result that still certifies this target — short-circuits
	// the queue entirely. Incremental jobs bypass the cache: their result
	// depends on which warm start is available, not only on the request.
	if q.cache != nil && !p.Incremental {
		if res, outcome := q.cache.Get(entry.Hash, p); outcome != CacheMiss {
			now := time.Now().UTC()
			job.Status = StatusDone
			job.CacheHit = outcome
			job.Result = res
			job.Started, job.Finished = now, now
			q.jobs[job.ID] = job
			q.order = append(q.order, job.ID)
			q.pruneLocked()
			snap := *job
			q.mu.Unlock()
			return snap, nil
		}
	}

	if !q.admission.admitJob(len(q.pending)) {
		q.mu.Unlock()
		return Job{}, ErrSaturated
	}
	select {
	case q.pending <- job:
	default:
		q.mu.Unlock()
		return Job{}, ErrQueueFull
	}
	q.jobs[job.ID] = job
	q.order = append(q.order, job.ID)
	snap := *job
	q.mu.Unlock()
	return snap, nil
}

// worker drains the pending channel until shutdown.
func (q *Queue) worker() {
	defer q.wg.Done()
	for {
		select {
		case <-q.ctx.Done():
			// Drain what we can mark canceled; channel may still hold jobs.
			for {
				select {
				case job := <-q.pending:
					q.finish(job, nil, context.Canceled)
				default:
					return
				}
			}
		case job := <-q.pending:
			q.run(job)
		}
	}
}

// run executes one job, threading the queue's context into the runner so
// shutdown cancels queued and in-flight work.
func (q *Queue) run(job *Job) {
	q.mu.Lock()
	if q.ctx.Err() != nil {
		q.mu.Unlock()
		q.finish(job, nil, context.Canceled)
		return
	}
	job.Status = StatusRunning
	job.Started = time.Now().UTC()
	entry, p := job.graphEntry, job.Params
	q.mu.Unlock()
	q.inFlight.Add(1)
	defer q.inFlight.Add(-1)

	// Every job carries a phase trace: the spans the pipeline records
	// (partition, shard, stitch, embed, verify, settle, refilter) become
	// the job's Phases breakdown, and each span also lands in the
	// process-wide phase histograms.
	tr := obs.NewTrace()
	ctx := obs.WithTrace(q.ctx, tr)

	var (
		res *JobResult
		err error
	)
	if p.Incremental {
		res, err = q.runIncremental(ctx, entry, p)
		if res != nil {
			res.Phases = toPhaseMs(tr.Phases())
		}
		q.finish(job, res, err)
		return // never cached: result depends on the warm-start state
	}
	res, err = q.sparsify(ctx, entry.Graph, p)
	if res != nil {
		res.Phases = toPhaseMs(tr.Phases())
	}
	q.finish(job, res, err)
	if err == nil && q.cache != nil {
		q.mu.Lock()
		gate := q.cacheGate
		q.mu.Unlock()
		if gate == nil || gate(entry.Hash) {
			q.cache.Put(entry.Hash, p, res)
		}
	}
}

// runIncremental serves an incremental job the cheapest way available:
// a resident session that matches the graph's current content hash and
// the job's parameter fingerprint answers directly (no Resume, no
// reconcile — the maintained sparsifier is already certified for this
// exact graph); otherwise the warm-start sparsifier is resolved and the
// Resume runner builds a live maintainer that both answers the job and
// becomes the graph's session; with sessions off, the legacy
// IncrementalFunc runs; and with no warm start at all the job falls back
// to a from-scratch run.
func (q *Queue) runIncremental(ctx context.Context, entry *GraphEntry, p SparsifyParams) (*JobResult, error) {
	q.mu.Lock()
	mgr, resume, currentHash := q.sessionMgr, q.resume, q.currentHash
	q.mu.Unlock()

	// The session layer only engages while the job's submission-time
	// graph snapshot is still the registry's current graph. If a PATCH
	// or stream batch landed while this job sat queued, probing Get with
	// the stale hash would tear down the newer (healthy) session, and
	// installing a maintainer built on the snapshot would replace it with
	// stale state — so a superseded job runs the legacy cold path against
	// its snapshot and leaves the resident session alone.
	if mgr != nil && currentHash != nil {
		if h, ok := currentHash(entry.Name); !ok || h != entry.Hash {
			mgr = nil
		}
	}

	// A pinned warm_job names an explicit lineage; honor it over the
	// resident session.
	if mgr != nil && p.WarmJob == "" {
		if sess := mgr.Get(entry.Name, entry.Hash, p.sessionKey()); sess != nil {
			res, err := sessionJobResult(ctx, sess)
			if err == nil {
				res.Incremental = true
				res.SessionHit = true
				return res, nil
			}
			// ErrSessionGone (evicted between Get and Do) or cancellation:
			// fall through to the cold path.
			if errors.Is(err, context.Canceled) {
				return nil, err
			}
		}
	}

	warm, src, err := q.warmSparsifier(entry, p.WarmJob)
	if err != nil {
		return nil, err
	}
	if warm == nil {
		res, err := q.sparsify(ctx, entry.Graph, p)
		if res != nil {
			res.Incremental = true // requested, but cold: WarmSource stays ""
		}
		return res, err
	}
	if mgr != nil && resume != nil {
		m, err := resume(ctx, entry.Graph, warm, p)
		if err != nil {
			return nil, err
		}
		res := maintainerJobResult(m)
		res.Incremental = true
		res.WarmSource = src
		// Keep the maintainer resident: the next PATCH, stream batch or
		// incremental job for this graph skips the reconcile we just paid.
		// Re-check freshness right before installing — the Resume took
		// real time, and replacing a session that advanced meanwhile
		// would swap warm state for stale state. (The residual race is
		// harmless: a stale install only ever misses on Get and is reaped
		// by the next cold PATCH's InvalidateStale or the TTL.)
		if currentHash != nil {
			if h, ok := currentHash(entry.Name); !ok || h != entry.Hash {
				return res, nil
			}
		}
		mgr.Install(entry.Name, p.sessionKey(), m)
		return res, nil
	}
	if q.incremental == nil {
		return nil, ErrNoRunner
	}
	res, err := q.incremental(ctx, entry.Graph, warm, p)
	if res != nil {
		res.Incremental = true
		res.WarmSource = src
	}
	return res, err
}

// sessionJobResult snapshots a resident session into a job result
// through its single-writer loop. The maintainer's Refilters/Rebuilds
// are lifetime counters across every batch the session ever served, not
// this job's work — the job itself did none — so the per-job fields stay
// zero and the cumulative numbers ride in the Session telemetry.
func sessionJobResult(ctx context.Context, sess *sessions.Session) (*JobResult, error) {
	var res *JobResult
	err := sess.Do(ctx, func(m sessions.Maintainer) error {
		res = maintainerJobResult(m)
		res.Rounds, res.Refilters, res.Rebuilds = 0, 0, 0
		return nil
	})
	return res, err
}

// maintainerJobResult summarizes a live maintainer exactly the way the
// injected incremental runner summarizes a finished Resume: the
// maintainer's independently re-verified per-batch certificate is the
// job's verified κ. For a maintainer freshly built by this job's Resume
// the counters are per-job; session-hit snapshots zero them (see
// sessionJobResult).
func maintainerJobResult(m sessions.Maintainer) *JobResult {
	sp := m.Sparsifier()
	st := m.Stats()
	sst := sessions.Snapshot(m)
	return &JobResult{
		EdgesKept:       sp.M(),
		EdgesInput:      m.Graph().M(),
		Density:         float64(sp.M()) / float64(sp.N()),
		Reduction:       float64(m.Graph().M()) / float64(sp.M()),
		SigmaSqAchieved: m.Cond(),
		TargetMet:       m.TargetMet(),
		Rounds:          st.Refilters,
		Connected:       sp.IsConnected(),
		VerifiedCond:    m.Cond(),
		Refilters:       st.Refilters,
		Rebuilds:        st.Rebuilds,
		Session:         &sst,
		Sparsifier:      sp,
	}
}

// warmSparsifier picks the warm-start source: the named job when WarmJob
// is set (an error if it is unknown or unfinished), otherwise the most
// recently finished job for the same graph name that still holds a
// sparsifier of the right vertex count. Returns nil when nothing usable
// exists.
func (q *Queue) warmSparsifier(entry *GraphEntry, warmJob string) (*graph.Graph, string, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if warmJob != "" {
		j, ok := q.jobs[warmJob]
		if !ok {
			return nil, "", fmt.Errorf("%w: warm_job %q", ErrJobNotFound, warmJob)
		}
		if j.GraphName != entry.Name {
			// A sparsifier of an unrelated graph is not a warm start even
			// when the vertex counts coincide; the name is the lineage that
			// survives PATCH re-hashing.
			return nil, "", fmt.Errorf("warm_job %q sparsified graph %q, not %q", warmJob, j.GraphName, entry.Name)
		}
		if j.Status != StatusDone || j.Result == nil || j.Result.Sparsifier == nil {
			return nil, "", fmt.Errorf("%w: warm_job %q is %s", ErrJobUnfinished, warmJob, j.Status)
		}
		if j.Result.Sparsifier.N() != entry.Graph.N() {
			return nil, "", fmt.Errorf("warm_job %q sparsifier has %d vertices, graph has %d",
				warmJob, j.Result.Sparsifier.N(), entry.Graph.N())
		}
		return j.Result.Sparsifier, warmJob, nil
	}
	for i := len(q.order) - 1; i >= 0; i-- {
		j := q.jobs[q.order[i]]
		if j.GraphName != entry.Name || j.Status != StatusDone {
			continue
		}
		if j.Result == nil || j.Result.Sparsifier == nil || j.Result.Sparsifier.N() != entry.Graph.N() {
			continue
		}
		return j.Result.Sparsifier, j.ID, nil
	}
	return nil, "", nil
}

// finish moves a job to its terminal state and prunes old terminal jobs
// beyond the retain bound.
func (q *Queue) finish(job *Job, res *JobResult, err error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	job.Finished = time.Now().UTC()
	switch {
	case errors.Is(err, context.Canceled):
		job.Status = StatusCanceled
		job.Error = "canceled by shutdown"
	case err != nil:
		job.Status = StatusFailed
		job.Error = err.Error()
	default:
		job.Status = StatusDone
		job.Result = res
	}
	// Jobs canceled while still queued never started; their wait and run
	// durations are meaningless and stay unobserved.
	wait, run := time.Duration(-1), time.Duration(-1)
	if !job.Started.IsZero() {
		wait = job.Started.Sub(job.Submitted)
		run = job.Finished.Sub(job.Started)
	}
	q.metrics.observeJobDone(job.Status, wait, run)
	q.pruneLocked()
}

// pruneLocked drops the oldest terminal jobs while more than retain jobs
// are tracked. Queued/running jobs are never dropped, so the map can
// transiently exceed the bound under a huge in-flight load.
func (q *Queue) pruneLocked() {
	if q.retain <= 0 || len(q.jobs) <= q.retain {
		return
	}
	kept := q.order[:0]
	excess := len(q.jobs) - q.retain
	for _, id := range q.order {
		j := q.jobs[id]
		terminal := j.Status == StatusDone || j.Status == StatusFailed || j.Status == StatusCanceled
		if excess > 0 && terminal {
			delete(q.jobs, id)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	q.order = kept
}

// Get snapshots a job by id.
func (q *Queue) Get(id string) (Job, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	job, ok := q.jobs[id]
	if !ok {
		return Job{}, fmt.Errorf("%w: %q", ErrJobNotFound, id)
	}
	return *job, nil
}

// List snapshots all jobs in submission order.
func (q *Queue) List() []Job {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]Job, 0, len(q.order))
	for _, id := range q.order {
		out = append(out, *q.jobs[id])
	}
	return out
}

// Depth reports how many jobs are waiting in the backlog.
func (q *Queue) Depth() int { return len(q.pending) }

// InFlight reports how many jobs are currently executing on workers.
func (q *Queue) InFlight() int { return int(q.inFlight.Load()) }

// Workers reports the size of the worker pool.
func (q *Queue) Workers() int { return q.workers }

// SetRetain changes how many terminal jobs the queue remembers
// (0 = unbounded). Takes effect on the next job completion.
func (q *Queue) SetRetain(n int) {
	q.mu.Lock()
	q.retain = n
	q.mu.Unlock()
}

// Shutdown cancels the queue context (canceling queued jobs and
// signaling in-flight runners) and waits for workers to exit or the
// given context to expire.
func (q *Queue) Shutdown(ctx context.Context) error {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cancel()
	done := make(chan struct{})
	go func() {
		q.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
