package obs

import (
	"math"
	"math/rand"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestExpositionGolden locks the Prometheus text rendering: family
// ordering, HELP/TYPE lines, label escaping, histogram buckets with
// cumulative counts, _sum and _count.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_requests_total", "Total requests.").Add(3)
	cv := r.CounterVec("test_errors_total", "Errors by kind.", "kind")
	cv.With("bad\"quote").Inc()
	cv.With("timeout").Add(2)
	r.Gauge("test_depth", "Queue depth.").Set(7.5)
	r.GaugeFunc("test_resident", "Resident things.", func() float64 { return 42 })
	h := r.Histogram("test_latency_seconds", "Latency.", []float64{0.1, 1, 10})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(0.5)
	h.Observe(100)

	var b strings.Builder
	r.WritePrometheus(&b)
	got := b.String()
	want := `# HELP test_depth Queue depth.
# TYPE test_depth gauge
test_depth 7.5
# HELP test_errors_total Errors by kind.
# TYPE test_errors_total counter
test_errors_total{kind="bad\"quote"} 1
test_errors_total{kind="timeout"} 2
# HELP test_latency_seconds Latency.
# TYPE test_latency_seconds histogram
test_latency_seconds_bucket{le="0.1"} 1
test_latency_seconds_bucket{le="1"} 3
test_latency_seconds_bucket{le="10"} 3
test_latency_seconds_bucket{le="+Inf"} 4
test_latency_seconds_sum 101.05
test_latency_seconds_count 4
# HELP test_requests_total Total requests.
# TYPE test_requests_total counter
test_requests_total 3
# HELP test_resident Resident things.
# TYPE test_resident gauge
test_resident 42
`
	if got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestExpositionValidLines sanity-checks every non-comment line against
// the name{labels} value shape a scraper parses.
func TestExpositionValidLines(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("a_total", "a", "x", "y").With(`multi
line`, `back\slash`).Inc()
	hv := r.HistogramVec("b_seconds", "b", DefBuckets(), "route")
	hv.With("/v1/jobs").Observe(0.42)

	var b strings.Builder
	r.WritePrometheus(&b)
	for _, line := range strings.Split(strings.TrimSuffix(b.String(), "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if strings.ContainsAny(line, "\r") || strings.Count(line, " ") < 1 {
			t.Errorf("malformed exposition line: %q", line)
		}
		name, rest, _ := strings.Cut(line, "{")
		if !strings.Contains(line, "{") {
			name, rest, _ = strings.Cut(line, " ")
		}
		if name == "" || rest == "" {
			t.Errorf("malformed exposition line: %q", line)
		}
	}
}

func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("h_total", "h").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "h_total 1") {
		t.Errorf("body missing sample:\n%s", rec.Body.String())
	}
}

// TestLookupIdempotent: the same name yields the same handle; a
// conflicting re-registration panics.
func TestLookupIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("same_total", "x")
	b := r.Counter("same_total", "x")
	if a != b {
		t.Fatal("same counter name returned distinct handles")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("handles do not share state")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("conflicting re-registration did not panic")
		}
	}()
	r.Gauge("same_total", "x")
}

// TestHistogramQuantileAccuracy: with uniform samples, the interpolated
// quantile estimate must land within one bucket width of the truth.
func TestHistogramQuantileAccuracy(t *testing.T) {
	bounds := make([]float64, 20)
	for i := range bounds {
		bounds[i] = float64(i+1) / 20 // 0.05-wide buckets over [0, 1]
	}
	h := newHistogram(bounds)
	rng := rand.New(rand.NewSource(1))
	const n = 100_000
	for i := 0; i < n; i++ {
		h.Observe(rng.Float64())
	}
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99} {
		got := h.Quantile(q)
		if math.Abs(got-q) > 0.05 {
			t.Errorf("Quantile(%g) = %g, want within one bucket (0.05) of %g", q, got, q)
		}
	}
	if got := h.Count(); got != n {
		t.Errorf("Count = %d, want %d", got, n)
	}
}

func TestHistogramQuantileEdges(t *testing.T) {
	h := newHistogram([]float64{1, 2})
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Error("empty histogram Quantile should be NaN")
	}
	h.Observe(5) // lands in +Inf bucket
	if got := h.Quantile(0.5); !math.IsInf(got, 1) {
		t.Errorf("overflow-only Quantile = %g, want +Inf (the histogram cannot bound the tail)", got)
	}
	if got := h.Overflow(); got != 1 {
		t.Errorf("Overflow = %d, want 1", got)
	}
}

// TestHistogramQuantileOverflowTail pins the tail-latency bug: with 9 in-
// range samples and 1 overflow, p50 must interpolate normally but p99 —
// whose rank lands in the +Inf bucket — must report +Inf rather than
// silently clamping to the last finite bound and under-reporting the tail.
func TestHistogramQuantileOverflowTail(t *testing.T) {
	h := newHistogram([]float64{1, 2})
	for i := 0; i < 9; i++ {
		h.Observe(0.5)
	}
	h.Observe(100)
	if got := h.Quantile(0.5); math.IsInf(got, 1) || got > 1 {
		t.Errorf("p50 = %g, want a finite value within the first bucket", got)
	}
	if got := h.Quantile(0.99); !math.IsInf(got, 1) {
		t.Errorf("p99 = %g, want +Inf (rank 9.9 falls in the overflow bucket)", got)
	}
	if got := h.Overflow(); got != 1 {
		t.Errorf("Overflow = %d, want 1", got)
	}
}

// TestConcurrentUpdates exercises counters, gauges and histograms from
// many goroutines; run under -race this is the data-race check, and the
// final totals prove no increment was lost.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("cc_total", "c")
	cv := r.CounterVec("ccv_total", "c", "who")
	g := r.Gauge("cg", "g")
	h := r.Histogram("ch_seconds", "h", []float64{0.5})
	const workers, per = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			who := string(rune('a' + w%2))
			for i := 0; i < per; i++ {
				c.Inc()
				cv.With(who).Inc()
				g.Add(1)
				h.Observe(float64(i%2) * 0.9)
				// Render concurrently with writes to shake out races in
				// the exposition path too.
				if i == per/2 {
					var b strings.Builder
					r.WritePrometheus(&b)
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != workers*per {
		t.Errorf("counter = %d, want %d", c.Value(), workers*per)
	}
	if got := cv.With("a").Value() + cv.With("b").Value(); got != workers*per {
		t.Errorf("vec counters = %d, want %d", got, workers*per)
	}
	if g.Value() != workers*per {
		t.Errorf("gauge = %g, want %d", g.Value(), workers*per)
	}
	if h.Count() != workers*per {
		t.Errorf("histogram count = %d, want %d", h.Count(), workers*per)
	}
}
