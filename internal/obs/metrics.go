// Package obs is the repository's zero-dependency observability layer:
// a metrics registry (counters, gauges, fixed-bucket histograms, all
// safe for concurrent use) that renders the Prometheus text exposition
// format, and a span/trace API (StartSpan) the pipeline packages use to
// report per-phase wall time — both per request, via a Trace carried in
// the context, and in aggregate, via phase histograms on the Default
// registry.
//
// The package is dependency-free by design: the service exposes GET
// /metrics by writing the registry straight onto the response, and any
// Prometheus-compatible scraper can consume it. Metric handles are
// looked up by name (expvar-style), so independent packages can share
// one registry without init-order coupling; looking a name up twice
// returns the same handle, and registering the same name as two
// different kinds panics — that is a programming error, not input.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Default is the process-wide registry. Pipeline spans aggregate their
// phase histograms here, and cmd/serve exposes it at /metrics. Tests
// that need isolation build their own registry with NewRegistry.
var Default = NewRegistry()

// DefBuckets returns the default latency histogram upper bounds, in
// seconds: two-decade log-ish spacing from 100µs to 60s, sized for both
// sub-millisecond cache hits and multi-second cold sparsifications.
func DefBuckets() []float64 {
	return []float64{
		0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
		0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
	}
}

// Registry holds named metric families and renders them as Prometheus
// text exposition. The zero value is not usable; call NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	names    []string // sorted family names, rebuilt on registration
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// family is one metric name: its metadata plus every label combination
// seen so far.
type family struct {
	name      string
	help      string
	kind      string // counter | gauge | histogram
	labelKeys []string
	buckets   []float64 // histogram families only

	mu     sync.Mutex
	series map[string]any // joined label values -> *Counter | *Gauge | *Histogram | func() float64
	order  []string       // registration order of series keys; sorted at render
}

// lookup returns the family for name, creating it on first use, and
// panics if the name was already registered as a different kind or with
// different labels (a programming error: metric names are code, not
// input).
func (r *Registry) lookup(name, help, kind string, buckets []float64, labelKeys []string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{
			name:      name,
			help:      help,
			kind:      kind,
			labelKeys: append([]string(nil), labelKeys...),
			buckets:   append([]float64(nil), buckets...),
			series:    make(map[string]any),
		}
		r.families[name] = f
		r.names = append(r.names, name)
		sort.Strings(r.names)
		return f
	}
	if f.kind != kind || len(f.labelKeys) != len(labelKeys) {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s with %d labels (was %s with %d)",
			name, kind, len(labelKeys), f.kind, len(f.labelKeys)))
	}
	for i, k := range labelKeys {
		if f.labelKeys[i] != k {
			panic(fmt.Sprintf("obs: metric %q re-registered with label %q (was %q)", name, k, f.labelKeys[i]))
		}
	}
	return f
}

// series returns the metric value for one label combination, creating
// it with mk on first use.
func (f *family) seriesFor(labelValues []string, mk func() any) any {
	if len(labelValues) != len(f.labelKeys) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d", f.name, len(f.labelKeys), len(labelValues)))
	}
	key := strings.Join(labelValues, "\x00")
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.series[key]
	if !ok {
		s = mk()
		f.series[key] = s
		f.order = append(f.order, key)
	}
	return s
}

// ----------------------------------------------------------------- counter

// Counter is a monotonically increasing value.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (must be non-negative; counters only go up).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Counter returns the named unlabeled counter, creating it on first use.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.lookup(name, help, "counter", nil, nil)
	return f.seriesFor(nil, func() any { return &Counter{} }).(*Counter)
}

// CounterVec is a counter family partitioned by labels.
type CounterVec struct{ f *family }

// CounterVec returns the named labeled counter family.
func (r *Registry) CounterVec(name, help string, labelKeys ...string) *CounterVec {
	return &CounterVec{r.lookup(name, help, "counter", nil, labelKeys)}
}

// With returns the counter for one label-value combination.
func (v *CounterVec) With(labelValues ...string) *Counter {
	return v.f.seriesFor(labelValues, func() any { return &Counter{} }).(*Counter)
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time — for monotonic numbers another subsystem already tracks (cache
// hit totals, session evictions) that would be wasteful to double-count.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	f := r.lookup(name, help, "counter", nil, nil)
	f.seriesFor(nil, func() any { return fn })
}

// ------------------------------------------------------------------- gauge

// Gauge is a value that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds d (atomically, via CAS).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Gauge returns the named unlabeled gauge, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.lookup(name, help, "gauge", nil, nil)
	return f.seriesFor(nil, func() any { return &Gauge{} }).(*Gauge)
}

// GaugeFunc registers a gauge whose value is read from fn at scrape
// time (queue depth, resident sessions, registry size).
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.lookup(name, help, "gauge", nil, nil)
	f.seriesFor(nil, func() any { return fn })
}

// --------------------------------------------------------------- histogram

// Histogram counts observations into fixed buckets (cumulative at
// render, per-bucket internally) and tracks their sum. All methods are
// safe for concurrent use; Observe is two atomic adds plus a CAS loop
// for the sum.
type Histogram struct {
	bounds []float64 // sorted upper bounds, +Inf implicit
	counts []atomic.Int64
	inf    atomic.Int64
	sum    atomic.Uint64 // float64 bits
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds))}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	if i < len(h.bounds) {
		h.counts[i].Add(1)
	} else {
		h.inf.Add(1)
	}
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	n := h.inf.Load()
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Overflow returns how many observations exceeded the last finite bucket
// bound. A nonzero overflow means upper quantiles may report +Inf — the
// bucket layout is too coarse for the tail being measured.
func (h *Histogram) Overflow() int64 { return h.inf.Load() }

// Quantile estimates the q-quantile (0 < q < 1) by linear interpolation
// within the bucket where the cumulative count crosses q·total. The
// error is bounded by the width of that bucket. A rank that falls in the
// +Inf overflow bucket returns +Inf: the histogram genuinely does not
// know how large those observations were, and clamping to the last
// finite bound would silently under-report exactly the tail latencies
// the upper quantiles exist to expose. Returns NaN with no observations.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.Count()
	if total == 0 {
		return math.NaN()
	}
	rank := q * float64(total)
	cum := int64(0)
	lower := 0.0
	for i, ub := range h.bounds {
		c := h.counts[i].Load()
		if float64(cum)+float64(c) >= rank && c > 0 {
			frac := (rank - float64(cum)) / float64(c)
			if frac < 0 {
				frac = 0
			}
			return lower + frac*(ub-lower)
		}
		cum += c
		lower = ub
	}
	return math.Inf(1) // rank falls in the +Inf overflow bucket
}

// Histogram returns the named unlabeled histogram, creating it with the
// given upper bounds (nil = DefBuckets) on first use.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if buckets == nil {
		buckets = DefBuckets()
	}
	f := r.lookup(name, help, "histogram", buckets, nil)
	return f.seriesFor(nil, func() any { return newHistogram(f.buckets) }).(*Histogram)
}

// HistogramVec is a histogram family partitioned by labels.
type HistogramVec struct{ f *family }

// HistogramVec returns the named labeled histogram family (nil buckets
// = DefBuckets).
func (r *Registry) HistogramVec(name, help string, buckets []float64, labelKeys ...string) *HistogramVec {
	if buckets == nil {
		buckets = DefBuckets()
	}
	return &HistogramVec{r.lookup(name, help, "histogram", buckets, labelKeys)}
}

// With returns the histogram for one label-value combination.
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	return v.f.seriesFor(labelValues, func() any { return newHistogram(v.f.buckets) }).(*Histogram)
}

// -------------------------------------------------------------- exposition

// WritePrometheus renders every registered family in the Prometheus
// text exposition format (version 0.0.4), families sorted by name and
// series by label values, so output is deterministic given the same
// registered state.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	names := append([]string(nil), r.names...)
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = r.families[n]
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		f.write(&b)
	}
	_, _ = io.WriteString(w, b.String())
}

// Handler returns an http.Handler serving the exposition (the /metrics
// endpoint).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

func (f *family) write(b *strings.Builder) {
	f.mu.Lock()
	keys := append([]string(nil), f.order...)
	series := make([]any, len(keys))
	sort.Strings(keys)
	for i, k := range keys {
		series[i] = f.series[k]
	}
	f.mu.Unlock()
	if len(keys) == 0 {
		return
	}

	fmt.Fprintf(b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.kind)
	for i, key := range keys {
		var labelValues []string
		if key != "" || len(f.labelKeys) > 0 {
			labelValues = strings.Split(key, "\x00")
		}
		switch s := series[i].(type) {
		case *Counter:
			writeSample(b, f.name, f.labelKeys, labelValues, "", "", float64(s.Value()))
		case *Gauge:
			writeSample(b, f.name, f.labelKeys, labelValues, "", "", s.Value())
		case func() float64:
			writeSample(b, f.name, f.labelKeys, labelValues, "", "", s())
		case *Histogram:
			cum := int64(0)
			for j, ub := range s.bounds {
				cum += s.counts[j].Load()
				writeSample(b, f.name+"_bucket", f.labelKeys, labelValues, "le", formatFloat(ub), float64(cum))
			}
			cum += s.inf.Load()
			writeSample(b, f.name+"_bucket", f.labelKeys, labelValues, "le", "+Inf", float64(cum))
			writeSample(b, f.name+"_sum", f.labelKeys, labelValues, "", "", s.Sum())
			writeSample(b, f.name+"_count", f.labelKeys, labelValues, "", "", float64(cum))
		}
	}
}

// writeSample renders one exposition line; extraKey/extraValue append a
// synthetic label (the histogram "le").
func writeSample(b *strings.Builder, name string, labelKeys, labelValues []string, extraKey, extraValue string, v float64) {
	b.WriteString(name)
	if len(labelKeys) > 0 || extraKey != "" {
		b.WriteByte('{')
		sep := false
		for i, k := range labelKeys {
			if sep {
				b.WriteByte(',')
			}
			sep = true
			b.WriteString(k)
			b.WriteString(`="`)
			b.WriteString(escapeLabel(labelValues[i]))
			b.WriteByte('"')
		}
		if extraKey != "" {
			if sep {
				b.WriteByte(',')
			}
			b.WriteString(extraKey)
			b.WriteString(`="`)
			b.WriteString(extraValue)
			b.WriteByte('"')
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(formatFloat(v))
	b.WriteByte('\n')
}

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
