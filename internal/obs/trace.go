package obs

import (
	"context"
	"sync"
	"time"
)

// The span API gives every pipeline run a per-phase wall-time
// breakdown. Phases are flat, named spans (partition, shard, stitch,
// embed, verify, settle, refilter, ...) that a pipeline opens with
// StartSpan and closes with End. Each End does two things:
//
//   - it observes the duration into the Default registry's
//     graphspar_phase_seconds{phase=...} histogram, so a serving daemon
//     aggregates where wall time goes across every request, and
//   - if the context carries a Trace (WithTrace), it appends the span
//     to it, so one request's exact breakdown can be returned to the
//     caller (job results, ?trace=1 responses, Result.Phases).
//
// Spans may overlap: settle encloses the refilter and verify spans it
// drives, and a sharded run's shard span encloses per-shard work. A
// Trace is an observation log, not a tree.

// PhaseName names a pipeline phase. It is a distinct type so the
// compiler keeps arbitrary request-derived strings out of StartSpan:
// the phase set is the closed vocabulary of string literals in pipeline
// code, and it feeds a metric label, so it must stay low-cardinality.
type PhaseName string

// Phase is one completed span: its name, start offset from the trace's
// first span, and duration.
type Phase struct {
	Name     string        `json:"name"`
	Start    time.Duration `json:"start_ns"`
	Duration time.Duration `json:"duration_ns"`
}

// Trace collects the spans of one logical request. Safe for concurrent
// use (sharded runs end spans from worker goroutines).
type Trace struct {
	mu     sync.Mutex
	t0     time.Time
	phases []Phase
}

// NewTrace returns an empty trace; its clock starts at the first span.
func NewTrace() *Trace { return &Trace{} }

// Phases snapshots the spans recorded so far, in end order.
func (t *Trace) Phases() []Phase {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Phase(nil), t.phases...)
}

func (t *Trace) add(name string, start time.Time, d time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.t0.IsZero() {
		t.t0 = start
	}
	t.phases = append(t.phases, Phase{Name: name, Start: start.Sub(t.t0), Duration: d})
}

type traceKey struct{}

// WithTrace attaches a trace to the context; spans started under it are
// collected there in addition to the aggregate histograms.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, t)
}

// FromContext returns the context's trace, or nil.
func FromContext(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}

// Span is one in-flight phase measurement.
type Span struct {
	name  PhaseName
	start time.Time
	trace *Trace
	done  bool
}

// phaseSeconds aggregates every span ended anywhere in the process.
var phaseSeconds = Default.HistogramVec("graphspar_phase_seconds",
	"Wall time of pipeline phases (partition, shard, stitch, embed, verify, settle, refilter), by phase.",
	nil, "phase")

// StartSpan opens a phase span. End it exactly once; a second End is a
// no-op. StartSpan never fails and costs two map reads plus a clock
// read, so pipeline code can use it unconditionally.
func StartSpan(ctx context.Context, name PhaseName) *Span {
	return &Span{name: name, start: time.Now(), trace: FromContext(ctx)}
}

// End closes the span, records it, and returns its duration.
func (s *Span) End() time.Duration {
	if s.done {
		return 0
	}
	s.done = true
	d := time.Since(s.start)
	phaseSeconds.With(string(s.name)).Observe(d.Seconds())
	if s.trace != nil {
		s.trace.add(string(s.name), s.start, d)
	}
	return d
}
