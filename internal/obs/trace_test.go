package obs

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestSpanRecordsIntoTrace(t *testing.T) {
	tr := NewTrace()
	ctx := WithTrace(context.Background(), tr)

	s1 := StartSpan(ctx, "embed")
	time.Sleep(2 * time.Millisecond)
	d1 := s1.End()
	s2 := StartSpan(ctx, "verify")
	d2 := s2.End()

	phases := tr.Phases()
	if len(phases) != 2 {
		t.Fatalf("got %d phases, want 2", len(phases))
	}
	if phases[0].Name != "embed" || phases[1].Name != "verify" {
		t.Errorf("phase names = %q, %q", phases[0].Name, phases[1].Name)
	}
	if phases[0].Duration != d1 || phases[1].Duration != d2 {
		t.Error("phase durations do not match End() returns")
	}
	if phases[0].Duration < 2*time.Millisecond {
		t.Errorf("embed duration %v, want >= 2ms", phases[0].Duration)
	}
	if phases[0].Start != 0 {
		t.Errorf("first span start offset = %v, want 0", phases[0].Start)
	}
	if phases[1].Start < phases[0].Duration {
		t.Errorf("second span start %v before first span ended (%v)", phases[1].Start, phases[0].Duration)
	}
}

func TestSpanWithoutTraceIsNoopButAggregates(t *testing.T) {
	before := phaseSeconds.With("lonely").Count()
	s := StartSpan(context.Background(), "lonely")
	if got := s.End(); got < 0 {
		t.Errorf("duration = %v", got)
	}
	if s.End() != 0 {
		t.Error("second End should be a no-op")
	}
	if got := phaseSeconds.With("lonely").Count(); got != before+1 {
		t.Errorf("aggregate observations = %d, want %d", got, before+1)
	}
}

func TestTraceConcurrentSpans(t *testing.T) {
	tr := NewTrace()
	ctx := WithTrace(context.Background(), tr)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			StartSpan(ctx, "shard").End()
		}()
	}
	wg.Wait()
	if got := len(tr.Phases()); got != 16 {
		t.Errorf("got %d phases, want 16", got)
	}
}
