package sparse

import (
	"math"
	"testing"
	"testing/quick"

	"graphspar/internal/vecmath"
)

// small3 returns the symmetric matrix
//
//	[ 2 -1  0]
//	[-1  3 -1]
//	[ 0 -1  2]
func small3() *CSR {
	b := NewBuilder(3, 3)
	b.Add(0, 0, 2)
	b.Add(0, 1, -1)
	b.Add(1, 0, -1)
	b.Add(1, 1, 3)
	b.Add(1, 2, -1)
	b.Add(2, 1, -1)
	b.Add(2, 2, 2)
	return b.Build()
}

func TestBuilderSumsDuplicates(t *testing.T) {
	b := NewBuilder(2, 2)
	b.Add(0, 0, 1)
	b.Add(0, 0, 2.5)
	b.Add(1, 1, -4)
	m := b.Build()
	if m.NNZ() != 2 {
		t.Fatalf("NNZ = %d, want 2", m.NNZ())
	}
	if m.At(0, 0) != 3.5 || m.At(1, 1) != -4 {
		t.Fatalf("wrong values: %v %v", m.At(0, 0), m.At(1, 1))
	}
}

func TestBuilderDropsCancelledZeros(t *testing.T) {
	b := NewBuilder(1, 1)
	b.Add(0, 0, 5)
	b.Add(0, 0, -5)
	m := b.Build()
	if m.NNZ() != 0 {
		t.Fatalf("NNZ = %d, want 0 after cancellation", m.NNZ())
	}
}

func TestBuilderPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBuilder(2, 2).Add(2, 0, 1)
}

func TestAtAndMissing(t *testing.T) {
	m := small3()
	if m.At(0, 2) != 0 {
		t.Fatalf("missing entry should read 0")
	}
	if m.At(1, 1) != 3 {
		t.Fatalf("At(1,1) = %v, want 3", m.At(1, 1))
	}
}

func TestMulVec(t *testing.T) {
	m := small3()
	x := []float64{1, 2, 3}
	y := make([]float64, 3)
	m.MulVec(y, x)
	want := []float64{0, 2, 4}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("MulVec = %v, want %v", y, want)
		}
	}
}

func TestMulVecAdd(t *testing.T) {
	m := small3()
	x := []float64{1, 2, 3}
	y := []float64{10, 10, 10}
	m.MulVecAdd(y, 2, x)
	want := []float64{10, 14, 18}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("MulVecAdd = %v, want %v", y, want)
		}
	}
}

func TestQuadForm(t *testing.T) {
	m := small3()
	x := []float64{1, 2, 3}
	// xᵀMx = 1*0 + 2*2 + 3*4 = 16
	if got := m.QuadForm(x); got != 16 {
		t.Fatalf("QuadForm = %v, want 16", got)
	}
}

func TestDiag(t *testing.T) {
	d := small3().Diag()
	want := []float64{2, 3, 2}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("Diag = %v, want %v", d, want)
		}
	}
}

func TestTranspose(t *testing.T) {
	b := NewBuilder(2, 3)
	b.Add(0, 1, 5)
	b.Add(1, 2, 7)
	m := b.Build()
	tr := m.Transpose()
	if tr.Rows != 3 || tr.Cols != 2 {
		t.Fatalf("transpose shape %dx%d", tr.Rows, tr.Cols)
	}
	if tr.At(1, 0) != 5 || tr.At(2, 1) != 7 {
		t.Fatalf("transpose values wrong")
	}
}

func TestTransposeInvolution(t *testing.T) {
	m := small3()
	tt := m.Transpose().Transpose()
	d, err := FrobeniusDiff(m, tt)
	if err != nil || d != 0 {
		t.Fatalf("Mᵀᵀ != M (diff=%v, err=%v)", d, err)
	}
}

func TestIsSymmetric(t *testing.T) {
	if !small3().IsSymmetric(0) {
		t.Fatal("small3 should be symmetric")
	}
	b := NewBuilder(2, 2)
	b.Add(0, 1, 1)
	if b.Build().IsSymmetric(1e-15) {
		t.Fatal("upper-only matrix is not symmetric")
	}
}

func TestAddSub(t *testing.T) {
	m := small3()
	s, err := Add(m, m)
	if err != nil {
		t.Fatal(err)
	}
	if s.At(1, 1) != 6 {
		t.Fatalf("Add diag = %v, want 6", s.At(1, 1))
	}
	z, err := Sub(m, m)
	if err != nil {
		t.Fatal(err)
	}
	if z.NNZ() != 0 {
		t.Fatalf("M-M should be empty, NNZ=%d", z.NNZ())
	}
}

func TestAddShapeError(t *testing.T) {
	a := Identity(2)
	b := Identity(3)
	if _, err := Add(a, b); err == nil {
		t.Fatal("expected shape error")
	}
}

func TestMulIdentity(t *testing.T) {
	m := small3()
	p, err := Mul(m, Identity(3))
	if err != nil {
		t.Fatal(err)
	}
	d, _ := FrobeniusDiff(m, p)
	if d != 0 {
		t.Fatalf("M·I != M, diff %v", d)
	}
}

func TestMulKnown(t *testing.T) {
	// [1 2; 0 3] * [0 1; 4 0] = [8 1; 12 0]
	a := NewBuilder(2, 2)
	a.Add(0, 0, 1)
	a.Add(0, 1, 2)
	a.Add(1, 1, 3)
	b := NewBuilder(2, 2)
	b.Add(0, 1, 1)
	b.Add(1, 0, 4)
	p, err := Mul(a.Build(), b.Build())
	if err != nil {
		t.Fatal(err)
	}
	if p.At(0, 0) != 8 || p.At(0, 1) != 1 || p.At(1, 0) != 12 || p.At(1, 1) != 0 {
		t.Fatalf("Mul wrong: %v", p.Dense())
	}
}

func TestMulShapeError(t *testing.T) {
	if _, err := Mul(Identity(2), Identity(3)); err == nil {
		t.Fatal("expected shape error")
	}
}

func TestPermute(t *testing.T) {
	m := small3()
	perm := []int{2, 1, 0} // reverse
	p, err := m.Permute(perm)
	if err != nil {
		t.Fatal(err)
	}
	// Entry (0,0) of result = (2,2) of original = 2; (0,1) = (2,1) = -1.
	if p.At(0, 0) != 2 || p.At(0, 1) != -1 || p.At(1, 1) != 3 {
		t.Fatalf("Permute wrong: %v", p.Dense())
	}
	if !p.IsSymmetric(0) {
		t.Fatal("symmetric permutation should preserve symmetry")
	}
}

func TestPermuteBad(t *testing.T) {
	m := small3()
	if _, err := m.Permute([]int{0, 1}); err == nil {
		t.Fatal("expected error for short perm")
	}
	if _, err := m.Permute([]int{0, 1, 9}); err == nil {
		t.Fatal("expected error for out-of-range perm")
	}
}

func TestScaleClone(t *testing.T) {
	m := small3()
	s := m.Scale(2)
	if s.At(1, 1) != 6 || m.At(1, 1) != 3 {
		t.Fatal("Scale must not mutate the receiver")
	}
	c := m.Clone()
	c.Val[0] = 99
	if m.Val[0] == 99 {
		t.Fatal("Clone must deep-copy")
	}
}

func TestDense(t *testing.T) {
	d := small3().Dense()
	if d[0][0] != 2 || d[0][1] != -1 || d[0][2] != 0 {
		t.Fatalf("Dense row 0 = %v", d[0])
	}
}

// Property: for random symmetric M built from a graph-like pattern,
// QuadForm(x) == x·(Mx).
func TestQuickQuadFormConsistency(t *testing.T) {
	f := func(seed uint64) bool {
		rng := vecmath.NewRNG(seed)
		n := 2 + rng.Intn(20)
		b := NewBuilder(n, n)
		for e := 0; e < 3*n; e++ {
			i, j := rng.Intn(n), rng.Intn(n)
			v := rng.NormFloat64()
			b.Add(i, j, v)
			b.Add(j, i, v)
		}
		m := b.Build()
		x := make([]float64, n)
		rng.FillNormal(x)
		y := make([]float64, n)
		m.MulVec(y, x)
		direct := vecmath.Dot(x, y)
		qf := m.QuadForm(x)
		return math.Abs(direct-qf) <= 1e-9*(1+math.Abs(direct))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: (A+B)x == Ax + Bx for random sparse A, B.
func TestQuickAddLinear(t *testing.T) {
	f := func(seed uint64) bool {
		rng := vecmath.NewRNG(seed)
		n := 2 + rng.Intn(15)
		mk := func() *CSR {
			b := NewBuilder(n, n)
			for e := 0; e < 2*n; e++ {
				b.Add(rng.Intn(n), rng.Intn(n), rng.NormFloat64())
			}
			return b.Build()
		}
		a, bm := mk(), mk()
		s, err := Add(a, bm)
		if err != nil {
			return false
		}
		x := make([]float64, n)
		rng.FillNormal(x)
		y1 := make([]float64, n)
		y2 := make([]float64, n)
		tmp := make([]float64, n)
		s.MulVec(y1, x)
		a.MulVec(y2, x)
		bm.MulVec(tmp, x)
		vecmath.Axpy(1, tmp, y2)
		for i := range y1 {
			if math.Abs(y1[i]-y2[i]) > 1e-9*(1+math.Abs(y1[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Mul matches dense reference on small random matrices.
func TestQuickMulMatchesDense(t *testing.T) {
	f := func(seed uint64) bool {
		rng := vecmath.NewRNG(seed)
		n, m, p := 1+rng.Intn(8), 1+rng.Intn(8), 1+rng.Intn(8)
		mk := func(r, c int) *CSR {
			b := NewBuilder(r, c)
			for e := 0; e < r*c/2+1; e++ {
				b.Add(rng.Intn(r), rng.Intn(c), float64(rng.Intn(9))-4)
			}
			return b.Build()
		}
		a, bm := mk(n, m), mk(m, p)
		prod, err := Mul(a, bm)
		if err != nil {
			return false
		}
		ad, bd, pd := a.Dense(), bm.Dense(), prod.Dense()
		for i := 0; i < n; i++ {
			for j := 0; j < p; j++ {
				var s float64
				for k := 0; k < m; k++ {
					s += ad[i][k] * bd[k][j]
				}
				if math.Abs(s-pd[i][j]) > 1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMulVec(b *testing.B) {
	// Pentadiagonal matrix of dimension 1<<14.
	n := 1 << 14
	bb := NewBuilder(n, n)
	for i := 0; i < n; i++ {
		bb.Add(i, i, 4)
		if i+1 < n {
			bb.Add(i, i+1, -1)
			bb.Add(i+1, i, -1)
		}
		if i+128 < n {
			bb.Add(i, i+128, -1)
			bb.Add(i+128, i, -1)
		}
	}
	m := bb.Build()
	x := make([]float64, n)
	y := make([]float64, n)
	vecmath.NewRNG(7).FillNormal(x)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MulVec(y, x)
	}
}
