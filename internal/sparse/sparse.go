// Package sparse implements the compressed sparse row (CSR) matrices and
// coordinate (COO) builders that back every Laplacian operation in
// graphspar: symmetric matrix–vector products for power iterations and CG,
// Laplacian quadratic forms (eq. 6 of the paper), and structural
// transforms (transpose, permutation, extraction).
//
// Matrices are real and, for the graph-Laplacian use cases, symmetric; the
// package stores general CSR but provides symmetry-aware helpers.
package sparse

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrShape reports an operation on incompatible dimensions.
var ErrShape = errors.New("sparse: incompatible shape")

// Coord is a single (row, col, value) entry in a COO builder.
type Coord struct {
	Row, Col int
	Val      float64
}

// Builder accumulates COO entries and compiles them into a CSR matrix.
// Duplicate (row, col) entries are summed, matching MatrixMarket semantics.
type Builder struct {
	rows, cols int
	entries    []Coord
}

// NewBuilder returns a Builder for an rows×cols matrix.
func NewBuilder(rows, cols int) *Builder {
	if rows < 0 || cols < 0 {
		panic("sparse: negative dimension")
	}
	return &Builder{rows: rows, cols: cols}
}

// Add appends entry (i, j, v). Out-of-range indices panic: entries are
// produced by internal loops where a bad index is a bug.
func (b *Builder) Add(i, j int, v float64) {
	if i < 0 || i >= b.rows || j < 0 || j >= b.cols {
		panic(fmt.Sprintf("sparse: entry (%d,%d) outside %dx%d", i, j, b.rows, b.cols))
	}
	b.entries = append(b.entries, Coord{i, j, v})
}

// Len returns the number of accumulated (pre-deduplication) entries.
func (b *Builder) Len() int { return len(b.entries) }

// Build compiles the accumulated entries into a CSR matrix, summing
// duplicates and dropping exact zeros that result.
func (b *Builder) Build() *CSR {
	sort.Slice(b.entries, func(p, q int) bool {
		if b.entries[p].Row != b.entries[q].Row {
			return b.entries[p].Row < b.entries[q].Row
		}
		return b.entries[p].Col < b.entries[q].Col
	})
	// Sum duplicates in place.
	out := b.entries[:0]
	for _, e := range b.entries {
		n := len(out)
		if n > 0 && out[n-1].Row == e.Row && out[n-1].Col == e.Col {
			out[n-1].Val += e.Val
		} else {
			out = append(out, e)
		}
	}
	// Drop zeros produced by cancellation.
	kept := out[:0]
	for _, e := range out {
		if e.Val != 0 {
			kept = append(kept, e)
		}
	}
	m := &CSR{
		Rows:   b.rows,
		Cols:   b.cols,
		RowPtr: make([]int, b.rows+1),
		ColIdx: make([]int, len(kept)),
		Val:    make([]float64, len(kept)),
	}
	for i, e := range kept {
		m.RowPtr[e.Row+1]++
		m.ColIdx[i] = e.Col
		m.Val[i] = e.Val
	}
	for i := 0; i < b.rows; i++ {
		m.RowPtr[i+1] += m.RowPtr[i]
	}
	return m
}

// CSR is a compressed sparse row matrix. Column indices within each row are
// strictly increasing (guaranteed by Builder and by all package transforms).
type CSR struct {
	Rows, Cols int
	RowPtr     []int     // length Rows+1
	ColIdx     []int     // length NNZ
	Val        []float64 // length NNZ
}

// NNZ returns the number of stored entries.
func (m *CSR) NNZ() int { return len(m.Val) }

// At returns the (i, j) entry (0 if not stored). Binary search per row.
func (m *CSR) At(i, j int) float64 {
	if i < 0 || i >= m.Rows || j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("sparse: At(%d,%d) outside %dx%d", i, j, m.Rows, m.Cols))
	}
	lo, hi := m.RowPtr[i], m.RowPtr[i+1]
	k := lo + sort.SearchInts(m.ColIdx[lo:hi], j)
	if k < hi && m.ColIdx[k] == j {
		return m.Val[k]
	}
	return 0
}

// MulVec computes y = M x. y must have length Rows and x length Cols.
func (m *CSR) MulVec(y, x []float64) {
	if len(x) != m.Cols || len(y) != m.Rows {
		panic("sparse: MulVec dimension mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		var s float64
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			s += m.Val[k] * x[m.ColIdx[k]]
		}
		y[i] = s
	}
}

// MulVecAdd computes y += alpha * M x without an intermediate vector.
func (m *CSR) MulVecAdd(y []float64, alpha float64, x []float64) {
	if len(x) != m.Cols || len(y) != m.Rows {
		panic("sparse: MulVecAdd dimension mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		var s float64
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			s += m.Val[k] * x[m.ColIdx[k]]
		}
		y[i] += alpha * s
	}
}

// QuadForm returns xᵀ M x for square M.
func (m *CSR) QuadForm(x []float64) float64 {
	if m.Rows != m.Cols || len(x) != m.Rows {
		panic("sparse: QuadForm dimension mismatch")
	}
	var s float64
	for i := 0; i < m.Rows; i++ {
		var row float64
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			row += m.Val[k] * x[m.ColIdx[k]]
		}
		s += x[i] * row
	}
	return s
}

// Diag returns a copy of the main diagonal (length min(Rows, Cols)).
func (m *CSR) Diag() []float64 {
	n := m.Rows
	if m.Cols < n {
		n = m.Cols
	}
	d := make([]float64, n)
	for i := 0; i < n; i++ {
		lo, hi := m.RowPtr[i], m.RowPtr[i+1]
		k := lo + sort.SearchInts(m.ColIdx[lo:hi], i)
		if k < hi && m.ColIdx[k] == i {
			d[i] = m.Val[k]
		}
	}
	return d
}

// Transpose returns Mᵀ as a new CSR.
func (m *CSR) Transpose() *CSR {
	t := &CSR{
		Rows:   m.Cols,
		Cols:   m.Rows,
		RowPtr: make([]int, m.Cols+1),
		ColIdx: make([]int, m.NNZ()),
		Val:    make([]float64, m.NNZ()),
	}
	for _, j := range m.ColIdx {
		t.RowPtr[j+1]++
	}
	for j := 0; j < m.Cols; j++ {
		t.RowPtr[j+1] += t.RowPtr[j]
	}
	next := make([]int, m.Cols)
	copy(next, t.RowPtr[:m.Cols])
	for i := 0; i < m.Rows; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			j := m.ColIdx[k]
			p := next[j]
			t.ColIdx[p] = i
			t.Val[p] = m.Val[k]
			next[j]++
		}
	}
	return t
}

// IsSymmetric reports whether M equals Mᵀ within tol (absolute, entrywise).
func (m *CSR) IsSymmetric(tol float64) bool {
	if m.Rows != m.Cols {
		return false
	}
	t := m.Transpose()
	if t.NNZ() != m.NNZ() {
		// Pattern can still match with explicit zeros; fall through to
		// value comparison via At for the union pattern.
		return m.symEqualSlow(tol)
	}
	for i := range m.Val {
		if m.ColIdx[i] != t.ColIdx[i] || math.Abs(m.Val[i]-t.Val[i]) > tol {
			return m.symEqualSlow(tol)
		}
	}
	for i := 0; i <= m.Rows; i++ {
		if m.RowPtr[i] != t.RowPtr[i] {
			return m.symEqualSlow(tol)
		}
	}
	return true
}

func (m *CSR) symEqualSlow(tol float64) bool {
	for i := 0; i < m.Rows; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			j := m.ColIdx[k]
			if math.Abs(m.Val[k]-m.At(j, i)) > tol {
				return false
			}
		}
	}
	return true
}

// Scale returns alpha*M as a new matrix.
func (m *CSR) Scale(alpha float64) *CSR {
	out := m.Clone()
	for i := range out.Val {
		out.Val[i] *= alpha
	}
	return out
}

// Clone returns a deep copy of M.
func (m *CSR) Clone() *CSR {
	out := &CSR{
		Rows:   m.Rows,
		Cols:   m.Cols,
		RowPtr: append([]int(nil), m.RowPtr...),
		ColIdx: append([]int(nil), m.ColIdx...),
		Val:    append([]float64(nil), m.Val...),
	}
	return out
}

// Add returns A + B. Both must share dimensions.
func Add(a, b *CSR) (*CSR, error) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return nil, fmt.Errorf("%w: %dx%d + %dx%d", ErrShape, a.Rows, a.Cols, b.Rows, b.Cols)
	}
	bld := NewBuilder(a.Rows, a.Cols)
	for i := 0; i < a.Rows; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			bld.Add(i, a.ColIdx[k], a.Val[k])
		}
		for k := b.RowPtr[i]; k < b.RowPtr[i+1]; k++ {
			bld.Add(i, b.ColIdx[k], b.Val[k])
		}
	}
	return bld.Build(), nil
}

// Sub returns A - B.
func Sub(a, b *CSR) (*CSR, error) {
	nb := b.Scale(-1)
	return Add(a, nb)
}

// Mul returns the product A·B (classic row-by-row sparse GEMM with a dense
// accumulator per row). Used by the multigrid Galerkin triple product.
func Mul(a, b *CSR) (*CSR, error) {
	if a.Cols != b.Rows {
		return nil, fmt.Errorf("%w: %dx%d * %dx%d", ErrShape, a.Rows, a.Cols, b.Rows, b.Cols)
	}
	out := &CSR{Rows: a.Rows, Cols: b.Cols, RowPtr: make([]int, a.Rows+1)}
	acc := make([]float64, b.Cols)
	mark := make([]int, b.Cols)
	for i := range mark {
		mark[i] = -1
	}
	var cols []int
	for i := 0; i < a.Rows; i++ {
		cols = cols[:0]
		for ka := a.RowPtr[i]; ka < a.RowPtr[i+1]; ka++ {
			j := a.ColIdx[ka]
			av := a.Val[ka]
			for kb := b.RowPtr[j]; kb < b.RowPtr[j+1]; kb++ {
				c := b.ColIdx[kb]
				if mark[c] != i {
					mark[c] = i
					acc[c] = 0
					cols = append(cols, c)
				}
				acc[c] += av * b.Val[kb]
			}
		}
		sort.Ints(cols)
		for _, c := range cols {
			if acc[c] != 0 {
				out.ColIdx = append(out.ColIdx, c)
				out.Val = append(out.Val, acc[c])
			}
		}
		out.RowPtr[i+1] = len(out.ColIdx)
	}
	return out, nil
}

// Permute returns P·M·Pᵀ for the symmetric permutation given by perm, where
// perm[new] = old (i.e. row/col new of the result is row/col perm[new] of M).
func (m *CSR) Permute(perm []int) (*CSR, error) {
	if m.Rows != m.Cols || len(perm) != m.Rows {
		return nil, fmt.Errorf("%w: permute %dx%d with perm of length %d", ErrShape, m.Rows, m.Cols, len(perm))
	}
	inv := make([]int, len(perm))
	for newIdx, oldIdx := range perm {
		if oldIdx < 0 || oldIdx >= m.Rows {
			return nil, fmt.Errorf("sparse: permutation entry %d out of range", oldIdx)
		}
		inv[oldIdx] = newIdx
	}
	bld := NewBuilder(m.Rows, m.Cols)
	for newI, oldI := range perm {
		for k := m.RowPtr[oldI]; k < m.RowPtr[oldI+1]; k++ {
			bld.Add(newI, inv[m.ColIdx[k]], m.Val[k])
		}
	}
	return bld.Build(), nil
}

// Identity returns the n×n identity matrix.
func Identity(n int) *CSR {
	m := &CSR{Rows: n, Cols: n, RowPtr: make([]int, n+1), ColIdx: make([]int, n), Val: make([]float64, n)}
	for i := 0; i < n; i++ {
		m.RowPtr[i+1] = i + 1
		m.ColIdx[i] = i
		m.Val[i] = 1
	}
	return m
}

// Dense expands M into a dense row-major matrix; intended for tests and
// tiny reference computations only.
func (m *CSR) Dense() [][]float64 {
	d := make([][]float64, m.Rows)
	for i := range d {
		d[i] = make([]float64, m.Cols)
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			d[i][m.ColIdx[k]] = m.Val[k]
		}
	}
	return d
}

// FrobeniusDiff returns ||A - B||_F; shapes must match.
func FrobeniusDiff(a, b *CSR) (float64, error) {
	d, err := Sub(a, b)
	if err != nil {
		return 0, err
	}
	var s float64
	for _, v := range d.Val {
		s += v * v
	}
	return math.Sqrt(s), nil
}
