package mm

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"graphspar/internal/graph"
)

const symFile = `%%MatrixMarket matrix coordinate real symmetric
% comment line
3 3 4
1 1 2.0
2 1 -1.0
2 2 2.0
3 2 -0.5
`

func TestReadSymmetric(t *testing.T) {
	m, err := Read(strings.NewReader(symFile))
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows != 3 || m.Cols != 3 || len(m.Entries) != 4 {
		t.Fatalf("parsed %dx%d nnz=%d", m.Rows, m.Cols, len(m.Entries))
	}
	if m.Sym != Symmetric || m.Pattern {
		t.Fatalf("sym=%v pattern=%v", m.Sym, m.Pattern)
	}
	c := m.CSR()
	// Symmetry expansion: (1,2) mirrors (2,1).
	if c.At(0, 1) != -1 || c.At(1, 0) != -1 {
		t.Fatalf("symmetry not expanded: %v %v", c.At(0, 1), c.At(1, 0))
	}
}

func TestReadPattern(t *testing.T) {
	src := `%%MatrixMarket matrix coordinate pattern symmetric
2 2 1
2 1
`
	m, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if !m.Pattern || m.Entries[0].Val != 1 {
		t.Fatalf("pattern entry should default to 1, got %+v", m.Entries[0])
	}
	g, err := m.ToGraph()
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 1 || g.Edge(0).W != 1 {
		t.Fatalf("pattern graph edge %+v", g.Edge(0))
	}
}

func TestReadGeneral(t *testing.T) {
	src := `%%MatrixMarket matrix coordinate real general
2 2 3
1 1 4
1 2 -3
2 1 5
`
	m, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	g, err := m.ToGraph()
	if err != nil {
		t.Fatal(err)
	}
	// Both (1,2) and (2,1) map to the same undirected edge; dominant
	// magnitude wins: |5| > |-3|.
	if g.M() != 1 || g.Edge(0).W != 5 {
		t.Fatalf("general graph edge %+v", g.Edge(0))
	}
}

func TestReadSkewSymmetric(t *testing.T) {
	src := `%%MatrixMarket matrix coordinate real skew-symmetric
2 2 1
2 1 3
`
	m, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	c := m.CSR()
	if c.At(0, 1) != -3 || c.At(1, 0) != 3 {
		t.Fatalf("skew expansion wrong: %v %v", c.At(0, 1), c.At(1, 0))
	}
}

func TestReadErrors(t *testing.T) {
	cases := []struct {
		name, src string
		want      error
	}{
		{"empty", "", ErrFormat},
		{"badheader", "hello\n", ErrFormat},
		{"array", "%%MatrixMarket matrix array real general\n2 2 4\n", ErrUnsupported},
		{"complex", "%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 0\n", ErrUnsupported},
		{"hermitian", "%%MatrixMarket matrix coordinate real hermitian\n1 1 0\n", ErrUnsupported},
		{"missingsize", "%%MatrixMarket matrix coordinate real general\n", ErrFormat},
		{"badsize", "%%MatrixMarket matrix coordinate real general\n2 2\n", ErrFormat},
		{"shortentries", "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1\n", ErrFormat},
		{"oob", "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1\n", ErrFormat},
		{"badnum", "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 xyz\n", ErrFormat},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Read(strings.NewReader(c.src))
			if !errors.Is(err, c.want) {
				t.Fatalf("err = %v, want %v", err, c.want)
			}
		})
	}
}

func TestToGraphRequiresSquare(t *testing.T) {
	src := `%%MatrixMarket matrix coordinate real general
2 3 1
1 2 1
`
	m, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.ToGraph(); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("err = %v, want ErrUnsupported", err)
	}
}

func TestToGraphDropsDiagonalAndZeros(t *testing.T) {
	src := `%%MatrixMarket matrix coordinate real symmetric
3 3 4
1 1 10
2 1 -2
3 1 0
3 3 5
`
	m, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	g, err := m.ToGraph()
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 1 {
		t.Fatalf("M = %d, want 1 (diagonal and zero entries dropped)", g.M())
	}
	if e := g.Edge(0); e.U != 0 || e.V != 1 || e.W != 2 {
		t.Fatalf("edge = %+v, want {0 1 2} (abs value)", e)
	}
}

func TestWriteGraphRoundTrip(t *testing.T) {
	g, err := graph.New(4, []graph.Edge{{U: 0, V: 1, W: 2}, {U: 1, V: 2, W: 0.5}, {U: 2, V: 3, W: 3}, {U: 0, V: 3, W: 1}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteGraph(&buf, g); err != nil {
		t.Fatal(err)
	}
	m, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := m.ToGraph()
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != g.N() || g2.M() != g.M() {
		t.Fatalf("round trip changed shape: n=%d m=%d", g2.N(), g2.M())
	}
	for i := 0; i < g.M(); i++ {
		if g.Edge(i) != g2.Edge(i) {
			t.Fatalf("edge %d changed: %+v vs %+v", i, g.Edge(i), g2.Edge(i))
		}
	}
}

func TestWriteEdgeListRoundTrip(t *testing.T) {
	g, err := graph.New(3, []graph.Edge{{U: 0, V: 1, W: 1.25}, {U: 1, V: 2, W: 4}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	m, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := m.ToGraph()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < g.M(); i++ {
		if g.Edge(i) != g2.Edge(i) {
			t.Fatalf("edge %d changed: %+v vs %+v", i, g.Edge(i), g2.Edge(i))
		}
	}
}

func TestLaplacianExportIsLaplacian(t *testing.T) {
	g, err := graph.New(3, []graph.Edge{{U: 0, V: 1, W: 2}, {U: 1, V: 2, W: 3}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteGraph(&buf, g); err != nil {
		t.Fatal(err)
	}
	m, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	c := m.CSR()
	// Row sums must vanish for a Laplacian.
	d := c.Dense()
	for i := range d {
		var s float64
		for _, v := range d[i] {
			s += v
		}
		if s != 0 {
			t.Fatalf("row %d sum = %v, want 0", i, s)
		}
	}
}
