package mm

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead hardens the MatrixMarket parser against hostile input: any
// byte stream must either parse or fail with an error — never panic, and
// never trust header-declared sizes enough to allocate unboundedly. A
// successfully parsed matrix is pushed through the downstream conversions
// (CSR expansion, graph extraction, and a write/re-read round trip) under
// the same no-panic contract.
func FuzzRead(f *testing.F) {
	f.Add([]byte("%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n2 1 -3\n"))
	f.Add([]byte("%%MatrixMarket matrix coordinate real symmetric\n3 3 3\n1 1 2\n2 1 -1\n3 2 -1\n"))
	f.Add([]byte("%%MatrixMarket matrix coordinate pattern symmetric\n3 3 2\n2 1\n3 1\n"))
	f.Add([]byte("%%MatrixMarket matrix coordinate integer skew-symmetric\n2 2 1\n2 1 4\n"))
	f.Add([]byte("%%MatrixMarket matrix coordinate real general\n% comment\n\n2 2 1\n1 2 0.5\n"))
	f.Add([]byte("%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n"))
	f.Add([]byte("%%MatrixMarket matrix coordinate real general\n2 2 9999999999\n1 1 1\n"))
	f.Add([]byte("%%MatrixMarket matrix coordinate real general\n-1 2 1\n1 1 1\n"))
	f.Add([]byte("not a matrix market file"))
	f.Add([]byte(""))
	f.Add([]byte("%%MatrixMarket matrix coordinate real general\n1000000000 1000000000 0\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Read(bytes.NewReader(data))
		if err != nil {
			return // rejected inputs just need to reject cleanly
		}
		// Size sanity: the parser must never retain more entries than the
		// header declared, and every index must be in range.
		for _, e := range m.Entries {
			if e.Row < 0 || e.Row >= m.Rows || e.Col < 0 || e.Col >= m.Cols {
				t.Fatalf("entry (%d,%d) outside %dx%d", e.Row, e.Col, m.Rows, m.Cols)
			}
		}
		// Downstream conversions must not panic. Skip the dense-ish
		// expansions for hostile dimensions: a tiny file can declare huge
		// empty dimensions, and allocating O(rows) there is the caller's
		// decision to guard (as the service upload handler does).
		if m.Rows > 1<<16 || m.Cols > 1<<16 {
			return
		}
		_ = m.CSR()
		g, err := m.ToGraph()
		if err != nil {
			return // non-square etc.
		}
		if g.N() != m.Rows {
			t.Fatalf("graph has %d vertices, matrix %d rows", g.N(), m.Rows)
		}
		// Round trip: what we write must re-read.
		var buf bytes.Buffer
		if err := WriteGraph(&buf, g); err != nil {
			t.Fatalf("WriteGraph: %v", err)
		}
		m2, err := Read(&buf)
		if err != nil {
			t.Fatalf("re-read of written graph failed: %v", err)
		}
		g2, err := m2.ToGraph()
		if err != nil {
			t.Fatalf("re-converted graph failed: %v", err)
		}
		if g2.N() != g.N() || g2.M() != g.M() {
			t.Fatalf("round trip changed shape: %d/%d vs %d/%d", g2.N(), g2.M(), g.N(), g.M())
		}
	})
}

// FuzzReadString drives the same parser with string mutations of a valid
// seed, which tends to explore header and size-line variants faster than
// raw bytes.
func FuzzReadString(f *testing.F) {
	f.Add("%%MatrixMarket matrix coordinate real symmetric\n2 2 1\n2 1 -1.5\n")
	f.Add("%%matrixmarket matrix coordinate pattern general\n4 4 2\n1 2\n3 4\n")
	f.Fuzz(func(t *testing.T, s string) {
		m, err := Read(strings.NewReader(s))
		if err == nil && m.Rows <= 1<<16 && m.Cols <= 1<<16 {
			_, _ = m.ToGraph()
		}
	})
}
