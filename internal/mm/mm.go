// Package mm reads and writes MatrixMarket (.mtx) coordinate files and
// converts general sparse matrices into graph Laplacians using the rule
// stated in §4 of the paper: each edge weight is the absolute value of the
// corresponding nonzero in the lower triangular part, and pattern-only
// matrices get unit weights.
//
// Only the "coordinate" format is supported (the one the SuiteSparse
// collection uses for the paper's test cases); "array" (dense) files are
// rejected with a typed error.
package mm

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"graphspar/internal/graph"
	"graphspar/internal/sparse"
)

// Errors returned by the reader.
var (
	ErrFormat      = errors.New("mm: malformed MatrixMarket file")
	ErrUnsupported = errors.New("mm: unsupported MatrixMarket variant")
)

// Symmetry describes the symmetry declaration in the header.
type Symmetry int

// Supported symmetry kinds.
const (
	General Symmetry = iota
	Symmetric
	SkewSymmetric
)

// Matrix is a parsed MatrixMarket file, kept in COO form with 0-based
// indices and the symmetry declaration preserved (entries are stored as
// they appear in the file: for symmetric files only the lower triangle).
type Matrix struct {
	Rows, Cols int
	Entries    []sparse.Coord
	Sym        Symmetry
	Pattern    bool // pattern files carry no values; Val is set to 1
}

// Read parses a MatrixMarket coordinate file.
func Read(r io.Reader) (*Matrix, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)

	if !sc.Scan() {
		return nil, fmt.Errorf("%w: empty input", ErrFormat)
	}
	header := strings.Fields(strings.ToLower(sc.Text()))
	if len(header) < 5 || header[0] != "%%matrixmarket" || header[1] != "matrix" {
		return nil, fmt.Errorf("%w: bad header %q", ErrFormat, sc.Text())
	}
	if header[2] != "coordinate" {
		return nil, fmt.Errorf("%w: format %q (only coordinate)", ErrUnsupported, header[2])
	}
	field := header[3]
	switch field {
	case "real", "integer", "pattern":
	default:
		return nil, fmt.Errorf("%w: field %q", ErrUnsupported, field)
	}
	var sym Symmetry
	switch header[4] {
	case "general":
		sym = General
	case "symmetric":
		sym = Symmetric
	case "skew-symmetric":
		sym = SkewSymmetric
	default:
		return nil, fmt.Errorf("%w: symmetry %q", ErrUnsupported, header[4])
	}

	// Size line (skipping comments and blanks).
	var rows, cols, nnz int
	for {
		if !sc.Scan() {
			return nil, fmt.Errorf("%w: missing size line", ErrFormat)
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		f := strings.Fields(line)
		if len(f) != 3 {
			return nil, fmt.Errorf("%w: size line %q", ErrFormat, line)
		}
		var err error
		if rows, err = strconv.Atoi(f[0]); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrFormat, err)
		}
		if cols, err = strconv.Atoi(f[1]); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrFormat, err)
		}
		if nnz, err = strconv.Atoi(f[2]); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrFormat, err)
		}
		break
	}
	if rows < 0 || cols < 0 || nnz < 0 {
		return nil, fmt.Errorf("%w: negative size", ErrFormat)
	}

	m := &Matrix{Rows: rows, Cols: cols, Sym: sym, Pattern: field == "pattern"}
	// Clamp the pre-allocation: nnz comes from the (possibly hostile)
	// header, so a tiny input declaring nnz=4e9 must not allocate
	// gigabytes up front. Beyond the clamp append grows as entries
	// actually arrive, and a short file still fails the count check below.
	capHint := nnz
	if capHint > 1<<20 {
		capHint = 1 << 20
	}
	m.Entries = make([]sparse.Coord, 0, capHint)
	for len(m.Entries) < nnz {
		if !sc.Scan() {
			return nil, fmt.Errorf("%w: expected %d entries, got %d", ErrFormat, nnz, len(m.Entries))
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		f := strings.Fields(line)
		wantFields := 3
		if m.Pattern {
			wantFields = 2
		}
		if len(f) < wantFields {
			return nil, fmt.Errorf("%w: entry line %q", ErrFormat, line)
		}
		i, err := strconv.Atoi(f[0])
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrFormat, err)
		}
		j, err := strconv.Atoi(f[1])
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrFormat, err)
		}
		if i < 1 || i > rows || j < 1 || j > cols {
			return nil, fmt.Errorf("%w: index (%d,%d) outside %dx%d", ErrFormat, i, j, rows, cols)
		}
		v := 1.0
		if !m.Pattern {
			v, err = strconv.ParseFloat(f[2], 64)
			if err != nil {
				return nil, fmt.Errorf("%w: %v", ErrFormat, err)
			}
		}
		m.Entries = append(m.Entries, sparse.Coord{Row: i - 1, Col: j - 1, Val: v})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return m, nil
}

// CSR expands the parsed matrix (applying the declared symmetry) into CSR.
func (m *Matrix) CSR() *sparse.CSR {
	b := sparse.NewBuilder(m.Rows, m.Cols)
	for _, e := range m.Entries {
		b.Add(e.Row, e.Col, e.Val)
		if e.Row != e.Col {
			switch m.Sym {
			case Symmetric:
				b.Add(e.Col, e.Row, e.Val)
			case SkewSymmetric:
				b.Add(e.Col, e.Row, -e.Val)
			}
		}
	}
	return b.Build()
}

// ToGraph converts the matrix to an undirected weighted graph per the
// paper's rule: scan the strict lower triangle (after applying symmetry for
// general matrices this means every off-diagonal position (i,j), i>j, with
// a nonzero in either orientation), set w = |value| (or 1 for pattern
// files), and drop diagonal entries. Zero-valued entries are ignored.
func (m *Matrix) ToGraph() (*graph.Graph, error) {
	if m.Rows != m.Cols {
		return nil, fmt.Errorf("%w: %dx%d matrix is not square", ErrUnsupported, m.Rows, m.Cols)
	}
	type key struct{ u, v int }
	weights := make(map[key]float64)
	addEntry := func(r, c int, v float64) {
		if r == c || v == 0 {
			return
		}
		u, w := r, c
		if u < w {
			u, w = w, u
		}
		k := key{u, w} // u > w: strict lower triangle position
		a := math.Abs(v)
		if a > weights[k] {
			weights[k] = a // keep the dominant magnitude for duplicated positions
		}
	}
	for _, e := range m.Entries {
		addEntry(e.Row, e.Col, e.Val)
	}
	edges := make([]graph.Edge, 0, len(weights))
	for k, w := range weights {
		edges = append(edges, graph.Edge{U: k.v, V: k.u, W: w})
	}
	return graph.New(m.Rows, edges)
}

// WriteGraph writes a graph's Laplacian sparsity pattern as a symmetric
// real coordinate MatrixMarket file (strict lower triangle of -w entries
// plus the diagonal). The companion of ToGraph for round-tripping
// sparsifiers back to disk.
func WriteGraph(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriter(w)
	n := g.N()
	deg := g.WeightedDegrees()
	nnz := g.M() + n
	if _, err := fmt.Fprintf(bw, "%%%%MatrixMarket matrix coordinate real symmetric\n%% graphspar Laplacian export\n%d %d %d\n", n, n, nnz); err != nil {
		return err
	}
	// Diagonal first, then lower-triangle off-diagonals ordered by (U,V).
	for i := 0; i < n; i++ {
		if _, err := fmt.Fprintf(bw, "%d %d %.17g\n", i+1, i+1, deg[i]); err != nil {
			return err
		}
	}
	for _, e := range g.Edges() {
		// e.U < e.V so row e.V, col e.U is the lower triangle.
		if _, err := fmt.Fprintf(bw, "%d %d %.17g\n", e.V+1, e.U+1, -e.W); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteEdgeList writes the graph as a general coordinate file holding one
// entry per undirected edge (row>col, positive weight) — a compact
// adjacency export some tools prefer over Laplacians.
func WriteEdgeList(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%%%%MatrixMarket matrix coordinate real symmetric\n%% graphspar adjacency export\n%d %d %d\n", g.N(), g.N(), g.M()); err != nil {
		return err
	}
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(bw, "%d %d %.17g\n", e.V+1, e.U+1, e.W); err != nil {
			return err
		}
	}
	return bw.Flush()
}
