package tree

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"graphspar/internal/graph"
	"graphspar/internal/vecmath"
)

// pathTree builds the path 0-1-2-3 with weights 1, 2, 4 rooted at 0.
func pathTree(t *testing.T) *Tree {
	t.Helper()
	tr, err := Build(4, []graph.Edge{{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 2}, {U: 2, V: 3, W: 4}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// randomTree generates a random spanning tree on n vertices by attaching
// each vertex i>0 to a random earlier vertex.
func randomTree(n int, rng *vecmath.RNG) []graph.Edge {
	edges := make([]graph.Edge, 0, n-1)
	for v := 1; v < n; v++ {
		u := rng.Intn(v)
		edges = append(edges, graph.Edge{U: u, V: v, W: 0.1 + 3*rng.Float64()})
	}
	return edges
}

func TestBuildValidates(t *testing.T) {
	if _, err := Build(3, []graph.Edge{{U: 0, V: 1, W: 1}}, 0); !errors.Is(err, ErrNotTree) {
		t.Fatalf("too few edges: %v", err)
	}
	if _, err := Build(3, []graph.Edge{{U: 0, V: 1, W: 1}, {U: 0, V: 1, W: 1}}, 0); !errors.Is(err, ErrNotTree) {
		t.Fatalf("duplicate edge: %v", err)
	}
	// Cycle of 3 with an isolated vertex: right count, not spanning.
	if _, err := Build(4, []graph.Edge{{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 1}, {U: 2, V: 0, W: 1}}, 0); !errors.Is(err, ErrNotTree) {
		t.Fatalf("cycle: %v", err)
	}
	if _, err := Build(2, []graph.Edge{{U: 0, V: 1, W: 1}}, 5); err == nil {
		t.Fatal("bad root should fail")
	}
}

func TestParentsAndDepths(t *testing.T) {
	tr := pathTree(t)
	if tr.Root() != 0 || tr.Parent(0) != -1 {
		t.Fatal("root bookkeeping wrong")
	}
	if tr.Parent(3) != 2 || tr.ParentWeight(3) != 4 {
		t.Fatalf("parent(3)=%d pw=%v", tr.Parent(3), tr.ParentWeight(3))
	}
	if tr.Depth(3) != 3 || tr.Depth(0) != 0 {
		t.Fatalf("depths wrong: %d %d", tr.Depth(3), tr.Depth(0))
	}
}

func TestLCAPath(t *testing.T) {
	tr := pathTree(t)
	if got := tr.LCA(0, 3); got != 0 {
		t.Fatalf("LCA(0,3) = %d, want 0", got)
	}
	if got := tr.LCA(2, 3); got != 2 {
		t.Fatalf("LCA(2,3) = %d, want 2", got)
	}
	if got := tr.LCA(1, 1); got != 1 {
		t.Fatalf("LCA(1,1) = %d, want 1", got)
	}
}

func TestLCAStar(t *testing.T) {
	tr, err := Build(5, []graph.Edge{{U: 0, V: 1, W: 1}, {U: 0, V: 2, W: 1}, {U: 0, V: 3, W: 1}, {U: 0, V: 4, W: 1}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for a := 1; a < 5; a++ {
		for b := a + 1; b < 5; b++ {
			if got := tr.LCA(a, b); got != 0 {
				t.Fatalf("LCA(%d,%d) = %d, want 0", a, b, got)
			}
		}
	}
}

func TestPathResistance(t *testing.T) {
	tr := pathTree(t)
	// R(0,3) = 1/1 + 1/2 + 1/4 = 1.75
	if got := tr.PathResistance(0, 3); math.Abs(got-1.75) > 1e-15 {
		t.Fatalf("R(0,3) = %v, want 1.75", got)
	}
	if got := tr.PathResistance(2, 2); got != 0 {
		t.Fatalf("R(v,v) = %v, want 0", got)
	}
	if got := tr.PathResistance(1, 3); math.Abs(got-0.75) > 1e-15 {
		t.Fatalf("R(1,3) = %v, want 0.75", got)
	}
}

func TestStretchTreeEdgeIsOne(t *testing.T) {
	tr := pathTree(t)
	for _, e := range tr.Edges() {
		if s := tr.Stretch(e); math.Abs(s-1) > 1e-12 {
			t.Fatalf("tree edge stretch = %v, want 1", s)
		}
	}
}

func TestStretchOffTreeEdge(t *testing.T) {
	tr := pathTree(t)
	// Off-tree edge (0,3) with weight 2: stretch = 2 * 1.75 = 3.5.
	if s := tr.Stretch(graph.Edge{U: 0, V: 3, W: 2}); math.Abs(s-3.5) > 1e-12 {
		t.Fatalf("stretch = %v, want 3.5", s)
	}
}

func TestTotalStretchIdentity(t *testing.T) {
	// For G = tree + one off-tree edge, total stretch = (n-1) + st(off).
	g, err := graph.New(4, []graph.Edge{
		{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 2}, {U: 2, V: 3, W: 4}, {U: 0, V: 3, W: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := pathTree(t)
	got := tr.TotalStretch(g)
	want := 3 + 3.5
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("TotalStretch = %v, want %v", got, want)
	}
}

func TestSolveExactOnPath(t *testing.T) {
	tr := pathTree(t)
	g := tr.Graph()
	b := []float64{1, 0, 0, -1} // unit current in at 0, out at 3
	x := make([]float64, 4)
	tr.Solve(x, b)
	// Check L x = b (projected; b already sums to zero).
	y := make([]float64, 4)
	g.LapMulVec(y, x)
	for i := range b {
		if math.Abs(y[i]-b[i]) > 1e-12 {
			t.Fatalf("L x != b at %d: %v vs %v", i, y[i], b[i])
		}
	}
	// Potential drop 0→3 should equal R(0,3)·I = 1.75.
	if d := x[0] - x[3]; math.Abs(d-1.75) > 1e-12 {
		t.Fatalf("potential drop = %v, want 1.75", d)
	}
	// Zero mean.
	if m := vecmath.Mean(x); math.Abs(m) > 1e-12 {
		t.Fatalf("solution mean = %v, want 0", m)
	}
}

func TestSolveProjectsInconsistentRHS(t *testing.T) {
	tr := pathTree(t)
	g := tr.Graph()
	b := []float64{2, 1, 1, 0} // sum = 4, not in range(L)
	x := make([]float64, 4)
	tr.Solve(x, b)
	y := make([]float64, 4)
	g.LapMulVec(y, x)
	// Must solve for the projected RHS b - mean.
	for i := range b {
		want := b[i] - 1
		if math.Abs(y[i]-want) > 1e-12 {
			t.Fatalf("projected solve wrong at %d: %v vs %v", i, y[i], want)
		}
	}
}

func TestFromGraph(t *testing.T) {
	g, err := graph.New(4, []graph.Edge{
		{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 1}, {U: 2, V: 3, W: 1}, {U: 0, V: 3, W: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := FromGraph(g, []int{0, 1, 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tr.N() != 4 || len(tr.Edges()) != 3 {
		t.Fatalf("FromGraph shape wrong")
	}
	if _, err := FromGraph(g, []int{0, 1, 9}, 0); err == nil {
		t.Fatal("bad edge id should fail")
	}
}

func TestMaxStretchEdge(t *testing.T) {
	g, err := graph.New(4, []graph.Edge{
		{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 2}, {U: 2, V: 3, W: 4},
		{U: 0, V: 3, W: 2}, {U: 0, V: 2, W: 0.1},
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := pathTree(t)
	// graph.New sorts edges, so compute tree membership by endpoints: the
	// tree is the path (0,1),(1,2),(2,3).
	isTree := map[[2]int]bool{{0, 1}: true, {1, 2}: true, {2, 3}: true}
	inTree := func(i int) bool {
		e := g.Edge(i)
		return isTree[[2]int{e.U, e.V}]
	}
	e, s, ok := tr.MaxStretchEdge(g, inTree)
	if !ok {
		t.Fatal("expected an off-tree edge")
	}
	// Stretches of the two off-tree edges: st(0,3,w=2)=2·1.75=3.5 and
	// st(0,2,w=0.1)=0.1·1.5=0.15.
	if e.U != 0 || e.V != 3 {
		t.Fatalf("max stretch edge = %+v, want (0,3)", e)
	}
	if math.Abs(s-3.5) > 1e-12 {
		t.Fatalf("max stretch = %v, want 3.5", s)
	}
}

// Property: Solve inverts the tree Laplacian on mean-free vectors for
// random trees.
func TestQuickSolveInverts(t *testing.T) {
	f := func(seed uint64) bool {
		rng := vecmath.NewRNG(seed)
		n := 2 + rng.Intn(60)
		edges := randomTree(n, rng)
		tr, err := Build(n, edges, rng.Intn(n))
		if err != nil {
			return false
		}
		b := make([]float64, n)
		rng.FillNormal(b)
		vecmath.Deflate(b)
		x := make([]float64, n)
		tr.Solve(x, b)
		y := make([]float64, n)
		tr.Graph().LapMulVec(y, x)
		for i := range b {
			if math.Abs(y[i]-b[i]) > 1e-8*(1+math.Abs(b[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: LCA agrees with a naive parent-walk for random trees.
func TestQuickLCAMatchesNaive(t *testing.T) {
	f := func(seed uint64) bool {
		rng := vecmath.NewRNG(seed)
		n := 2 + rng.Intn(50)
		tr, err := Build(n, randomTree(n, rng), 0)
		if err != nil {
			return false
		}
		naive := func(u, v int) int {
			seen := map[int]bool{}
			for x := u; x != -1; x = tr.Parent(x) {
				seen[x] = true
			}
			for x := v; ; x = tr.Parent(x) {
				if seen[x] {
					return x
				}
			}
		}
		for trial := 0; trial < 20; trial++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if tr.LCA(u, v) != naive(u, v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: PathResistance is symmetric and satisfies the path metric
// triangle equality through the LCA.
func TestQuickPathResistanceMetric(t *testing.T) {
	f := func(seed uint64) bool {
		rng := vecmath.NewRNG(seed)
		n := 3 + rng.Intn(40)
		tr, err := Build(n, randomTree(n, rng), 0)
		if err != nil {
			return false
		}
		for trial := 0; trial < 10; trial++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if math.Abs(tr.PathResistance(u, v)-tr.PathResistance(v, u)) > 1e-12 {
				return false
			}
			l := tr.LCA(u, v)
			sum := tr.PathResistance(u, l) + tr.PathResistance(l, v)
			if math.Abs(tr.PathResistance(u, v)-sum) > 1e-10 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTreeSolve(b *testing.B) {
	rng := vecmath.NewRNG(1)
	n := 1 << 16
	tr, err := Build(n, randomTree(n, rng), 0)
	if err != nil {
		b.Fatal(err)
	}
	rhs := make([]float64, n)
	rng.FillNormal(rhs)
	vecmath.Deflate(rhs)
	x := make([]float64, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Solve(x, rhs)
	}
}
