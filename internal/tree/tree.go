// Package tree implements rooted spanning trees: construction from edge
// lists, Euler-tour LCA with O(1) queries, tree-path effective resistances
// (the ingredient of edge stretch, §3.3 of the paper), and the exact O(n)
// tree Laplacian solver that makes spanning-tree preconditioners and the
// generalized power iterations of §3.2 fast.
package tree

import (
	"errors"
	"fmt"
	"math"

	"graphspar/internal/graph"
)

// Errors returned by the constructor.
var (
	ErrNotTree = errors.New("tree: edge set is not a spanning tree")
)

// Tree is a rooted spanning tree on vertices 0..n-1.
type Tree struct {
	n      int
	root   int
	parent []int     // parent[v], -1 for root
	pw     []float64 // weight of edge (v, parent[v]); 0 for root
	order  []int     // vertices in BFS order from root (parents precede children)
	edges  []graph.Edge

	// LCA structures (built lazily by ensureLCA).
	eulerFirst []int // first occurrence of v in the Euler tour
	eulerDepth []int // depth at each tour position
	eulerVert  []int // vertex at each tour position
	sparse     [][]int32
	resToRoot  []float64 // Σ 1/w along root→v path
	depth      []int
}

// Build constructs a rooted tree from exactly n-1 edges spanning n
// vertices. The root is vertex `root`.
func Build(n int, edges []graph.Edge, root int) (*Tree, error) {
	if n < 1 {
		return nil, fmt.Errorf("%w: n=%d", ErrNotTree, n)
	}
	if len(edges) != n-1 {
		return nil, fmt.Errorf("%w: %d edges for %d vertices", ErrNotTree, len(edges), n)
	}
	if root < 0 || root >= n {
		return nil, fmt.Errorf("tree: root %d out of range", root)
	}
	g, err := graph.New(n, edges)
	if err != nil {
		return nil, err
	}
	if g.M() != n-1 {
		return nil, fmt.Errorf("%w: duplicate edges collapse to %d", ErrNotTree, g.M())
	}
	order, parent := g.BFSOrder(root)
	if len(order) != n {
		return nil, fmt.Errorf("%w: not connected", ErrNotTree)
	}
	t := &Tree{
		n:      n,
		root:   root,
		parent: parent,
		pw:     make([]float64, n),
		order:  order,
		edges:  append([]graph.Edge(nil), g.Edges()...),
		depth:  make([]int, n),
	}
	// Fill parent weights and depths in BFS order.
	wOf := g.EdgeIndex()
	for _, v := range order {
		p := parent[v]
		if p == -1 {
			continue
		}
		u, w := v, p
		if u > w {
			u, w = w, u
		}
		id, ok := wOf[[2]int{u, w}]
		if !ok {
			return nil, fmt.Errorf("%w: missing parent edge", ErrNotTree)
		}
		t.pw[v] = g.Edge(id).W
		t.depth[v] = t.depth[p] + 1
	}
	return t, nil
}

// FromGraph extracts the tree with the given edge ids from g, rooted at root.
func FromGraph(g *graph.Graph, edgeIDs []int, root int) (*Tree, error) {
	edges := make([]graph.Edge, len(edgeIDs))
	for i, id := range edgeIDs {
		if id < 0 || id >= g.M() {
			return nil, fmt.Errorf("tree: edge id %d out of range", id)
		}
		edges[i] = g.Edge(id)
	}
	return Build(g.N(), edges, root)
}

// N returns the vertex count.
func (t *Tree) N() int { return t.n }

// Root returns the root vertex.
func (t *Tree) Root() int { return t.root }

// Parent returns v's parent (-1 for the root).
func (t *Tree) Parent(v int) int { return t.parent[v] }

// ParentWeight returns the weight of the edge to v's parent (0 for root).
func (t *Tree) ParentWeight(v int) float64 { return t.pw[v] }

// Depth returns the number of edges between v and the root.
func (t *Tree) Depth(v int) int { return t.depth[v] }

// Edges returns the tree's edge list (normalized, U < V).
func (t *Tree) Edges() []graph.Edge { return t.edges }

// Graph returns the tree as a *graph.Graph on the same vertex set.
func (t *Tree) Graph() *graph.Graph {
	return graph.MustNew(t.n, t.edges)
}

// ensureLCA builds the Euler tour and sparse-table RMQ structures.
func (t *Tree) ensureLCA() {
	if t.eulerFirst != nil {
		return
	}
	// Children lists in BFS order.
	childPtr := make([]int, t.n+1)
	for _, v := range t.order {
		if p := t.parent[v]; p != -1 {
			childPtr[p+1]++
		}
	}
	for i := 0; i < t.n; i++ {
		childPtr[i+1] += childPtr[i]
	}
	children := make([]int, t.n-1+1)
	next := make([]int, t.n)
	copy(next, childPtr[:t.n])
	for _, v := range t.order {
		if p := t.parent[v]; p != -1 {
			children[next[p]] = v
			next[p]++
		}
	}

	tourLen := 2*t.n - 1
	t.eulerVert = make([]int, 0, tourLen)
	t.eulerDepth = make([]int, 0, tourLen)
	t.eulerFirst = make([]int, t.n)
	for i := range t.eulerFirst {
		t.eulerFirst[i] = -1
	}
	// Iterative Euler tour.
	type frame struct{ v, ci int }
	stack := []frame{{t.root, 0}}
	visit := func(v int) {
		if t.eulerFirst[v] == -1 {
			t.eulerFirst[v] = len(t.eulerVert)
		}
		t.eulerVert = append(t.eulerVert, v)
		t.eulerDepth = append(t.eulerDepth, t.depth[v])
	}
	visit(t.root)
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		lo, hi := childPtr[f.v], childPtr[f.v+1]
		if f.ci < hi-lo {
			c := children[lo+f.ci]
			f.ci++
			stack = append(stack, frame{c, 0})
			visit(c)
		} else {
			stack = stack[:len(stack)-1]
			if len(stack) > 0 {
				visit(stack[len(stack)-1].v)
			}
		}
	}

	// Sparse table over eulerDepth (argmin positions).
	m := len(t.eulerVert)
	levels := 1
	for 1<<levels <= m {
		levels++
	}
	t.sparse = make([][]int32, levels)
	t.sparse[0] = make([]int32, m)
	for i := 0; i < m; i++ {
		t.sparse[0][i] = int32(i)
	}
	for j := 1; j < levels; j++ {
		span := 1 << j
		t.sparse[j] = make([]int32, m-span+1)
		for i := 0; i+span <= m; i++ {
			a := t.sparse[j-1][i]
			b := t.sparse[j-1][i+span/2]
			if t.eulerDepth[a] <= t.eulerDepth[b] {
				t.sparse[j][i] = a
			} else {
				t.sparse[j][i] = b
			}
		}
	}

	// Root-to-vertex path resistances.
	t.resToRoot = make([]float64, t.n)
	for _, v := range t.order {
		if p := t.parent[v]; p != -1 {
			t.resToRoot[v] = t.resToRoot[p] + 1/t.pw[v]
		}
	}
}

// LCA returns the lowest common ancestor of u and v in O(1) after an
// O(n log n) build.
func (t *Tree) LCA(u, v int) int {
	t.ensureLCA()
	a, b := t.eulerFirst[u], t.eulerFirst[v]
	if a > b {
		a, b = b, a
	}
	span := b - a + 1
	j := 0
	for 1<<(j+1) <= span {
		j++
	}
	p := t.sparse[j][a]
	q := t.sparse[j][b-(1<<j)+1]
	if t.eulerDepth[p] <= t.eulerDepth[q] {
		return t.eulerVert[p]
	}
	return t.eulerVert[q]
}

// PathResistance returns Σ 1/w over the unique tree path between u and v —
// the tree effective resistance R_P(u,v) (eq. 9 in the tree case).
func (t *Tree) PathResistance(u, v int) float64 {
	t.ensureLCA()
	l := t.LCA(u, v)
	return t.resToRoot[u] + t.resToRoot[v] - 2*t.resToRoot[l]
}

// Stretch returns the stretch of an off-tree (or tree) edge per §3.3:
// st(e) = w_e · R_P(u,v). Tree edges have stretch exactly 1.
func (t *Tree) Stretch(e graph.Edge) float64 {
	return e.W * t.PathResistance(e.U, e.V)
}

// TotalStretch returns st_P(G) = Σ_{e∈G} st(e) over all edges of g,
// which equals Trace(L_P⁺ L_G) (eq. 4).
func (t *Tree) TotalStretch(g *graph.Graph) float64 {
	var s float64
	for _, e := range g.Edges() {
		s += t.Stretch(e)
	}
	return s
}

// Solve solves L_T x = b exactly in O(n), where L_T is the tree Laplacian.
// The right-hand side is first projected onto range(L_T) = 1⊥ (its mean is
// removed), and the returned potential vector has zero mean, making Solve
// a true pseudoinverse application x = L_T⁺ b.
//
// Mechanics: the net current into each subtree must flow through its root
// edge, so a post-order pass accumulates subtree sums (edge flows) and a
// pre-order pass integrates potential drops flow/w from the root down.
func (t *Tree) Solve(x, b []float64) {
	if len(x) != t.n || len(b) != t.n {
		panic("tree: Solve dimension mismatch")
	}
	// Projected RHS: subtract mean into flow accumulator (reuse x as scratch).
	var mean float64
	for _, v := range b {
		mean += v
	}
	mean /= float64(t.n)

	flow := x // alias: x doubles as the subtree-sum buffer
	for i, v := range b {
		flow[i] = v - mean
	}
	// Post-order: children before parents — reverse BFS order works.
	for i := t.n - 1; i >= 1; i-- {
		v := t.order[i]
		flow[t.parent[v]] += flow[v]
	}
	// Pre-order: potentials from root down. flow[v] now holds subtree sum.
	// x[v] = x[parent] + flow[v]/w(v,parent). Overwrite in BFS order; the
	// subtree sum of v is consumed exactly when v is visited.
	for i := 1; i < t.n; i++ {
		v := t.order[i]
		x[v] = x[t.parent[v]] + flow[v]/t.pw[v]
	}
	x[t.root] = 0
	// Shift to zero mean so Solve == pseudoinverse.
	var m2 float64
	for _, v := range x {
		m2 += v
	}
	m2 /= float64(t.n)
	for i := range x {
		x[i] -= m2
	}
}

// MaxStretchEdge returns the off-tree edge of g with the largest stretch
// and its value; utility for diagnostics. Returns ok=false when g has no
// off-tree edges.
func (t *Tree) MaxStretchEdge(g *graph.Graph, isTreeEdge func(i int) bool) (graph.Edge, float64, bool) {
	best := math.Inf(-1)
	var bestEdge graph.Edge
	found := false
	for i, e := range g.Edges() {
		if isTreeEdge(i) {
			continue
		}
		if s := t.Stretch(e); s > best {
			best, bestEdge, found = s, e, true
		}
	}
	return bestEdge, best, found
}
