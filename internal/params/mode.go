package params

import "fmt"

// Typed validation errors for the execution-mode and coarsening knobs.
// Each wraps ErrInvalid, like the sentinels in params.go.
var (
	// ErrBadMode rejects unknown execution-mode names.
	ErrBadMode = fmt.Errorf("%w: unknown execution mode", ErrInvalid)
	// ErrBadCoarsen rejects coarsening knobs outside their domain: a
	// negative level count, or a coarsening ratio outside (0, 1].
	ErrBadCoarsen = fmt.Errorf("%w: coarsening knobs out of range", ErrInvalid)
)

// Mode selects the execution path of a sparsification run. It lives here
// (not in the facade) so the HTTP service's wire layer — which cannot
// import the root package — shares the exact parse/validate semantics the
// facade re-exports.
type Mode int

const (
	// ModeAuto picks the path from the graph: single-shot for small
	// inputs, sharded beyond the auto-shard threshold, multilevel for
	// very large or ill-partitioned inputs.
	ModeAuto Mode = iota
	// ModeSingleShot pins the plain single-process edge-filter pipeline.
	ModeSingleShot
	// ModeSharded pins the shard-parallel engine.
	ModeSharded
	// ModeMultilevel pins the coarsen → sparsify-coarse → interpolate →
	// refilter hierarchy engine.
	ModeMultilevel
)

// String returns the canonical wire/flag name of the mode.
func (m Mode) String() string {
	switch m {
	case ModeAuto:
		return "auto"
	case ModeSingleShot:
		return "single"
	case ModeSharded:
		return "sharded"
	case ModeMultilevel:
		return "multilevel"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// ParseMode resolves an execution-mode name for flags and wire formats.
// The empty string means ModeAuto.
func ParseMode(name string) (Mode, error) {
	switch name {
	case "", "auto":
		return ModeAuto, nil
	case "single", "singleshot", "single-shot":
		return ModeSingleShot, nil
	case "sharded":
		return ModeSharded, nil
	case "multilevel":
		return ModeMultilevel, nil
	}
	return ModeAuto, fmt.Errorf("%w: %q (want auto, single, sharded or multilevel)", ErrBadMode, name)
}

// Coarsen validates the multilevel hierarchy knobs. Zero values mean
// "use the default" and always pass: levels must be non-negative, and a
// non-zero ratio must lie in (0, 1] (1 disables coarsening).
func Coarsen(levels int, ratio float64) error {
	if levels < 0 {
		return fmt.Errorf("%w: levels must be non-negative, got %d", ErrBadCoarsen, levels)
	}
	if ratio != 0 && !(ratio > 0 && ratio <= 1) {
		return fmt.Errorf("%w: ratio must be in (0, 1], got %v", ErrBadCoarsen, ratio)
	}
	return nil
}
