package params

import (
	"errors"
	"testing"
)

func TestSigma2(t *testing.T) {
	for _, bad := range []float64{-1, 0, 0.5, 1} {
		err := Sigma2(bad)
		if !errors.Is(err, ErrBadSigma2) {
			t.Errorf("Sigma2(%v) = %v, want ErrBadSigma2", bad, err)
		}
		if !errors.Is(err, ErrInvalid) {
			t.Errorf("Sigma2(%v) must match ErrInvalid", bad)
		}
	}
	for _, ok := range []float64{1.0001, 50, 1e9} {
		if err := Sigma2(ok); err != nil {
			t.Errorf("Sigma2(%v) = %v, want nil", ok, err)
		}
	}
}

func TestEmbedLimits(t *testing.T) {
	lim := Limits{MaxT: 4, MaxNumVectors: 8}
	// Non-positive values mean "use the default" and always pass.
	for _, c := range [][2]int{{0, 0}, {-3, -1}, {4, 8}, {1, 1}} {
		if err := Embed(c[0], c[1], lim); err != nil {
			t.Errorf("Embed(%d, %d) = %v, want nil", c[0], c[1], err)
		}
	}
	if err := Embed(5, 1, lim); !errors.Is(err, ErrBadT) {
		t.Errorf("t over limit: %v, want ErrBadT", err)
	}
	if err := Embed(1, 9, lim); !errors.Is(err, ErrBadNumVectors) {
		t.Errorf("r over limit: %v, want ErrBadNumVectors", err)
	}
	// The zero Limits is unlimited.
	if err := Embed(1<<20, 1<<20, Limits{}); err != nil {
		t.Errorf("unlimited Embed: %v", err)
	}
}

func TestShardingLimits(t *testing.T) {
	if err := Sharding(-1, 0, Limits{}); !errors.Is(err, ErrBadShards) {
		t.Errorf("negative shards: %v, want ErrBadShards", err)
	}
	lim := Limits{MaxShards: 16, MaxWorkers: 8}
	if err := Sharding(17, 1, lim); !errors.Is(err, ErrBadShards) {
		t.Errorf("shards over limit: %v, want ErrBadShards", err)
	}
	if err := Sharding(4, 9, lim); !errors.Is(err, ErrBadWorkers) {
		t.Errorf("workers over limit: %v, want ErrBadWorkers", err)
	}
	for _, c := range [][2]int{{0, 0}, {16, 8}, {1, -4}} {
		if err := Sharding(c[0], c[1], lim); err != nil {
			t.Errorf("Sharding(%d, %d) = %v, want nil", c[0], c[1], err)
		}
	}
}
