// Package params centralizes validation of the sparsification parameters
// shared by the single-shot pipeline (internal/core), the sharded engine
// (internal/engine), the incremental maintainer (internal/dynamic) and the
// HTTP service's wire format (internal/service). Each of those packages
// used to run its own copy of the same checks with its own error strings;
// keeping one validator here gives every layer the same semantics and
// gives callers typed errors they can branch on — the service maps
// ErrInvalid to HTTP 400 instead of string-matching, and the public
// facade re-exports the sentinels for library users.
//
// Validation is deliberately permissive about zero and negative knob
// values: throughout the codebase a non-positive t, r, rounds or worker
// count means "use the default", so the validators only reject values
// that can never be defaulted away (a σ² that breaks the similarity
// guarantee, a negative shard count, knobs beyond a caller-supplied
// ceiling).
package params

import (
	"errors"
	"fmt"
)

// ErrInvalid is the base class of every validation error in this package:
// errors.Is(err, ErrInvalid) holds for all of the sentinels below, so a
// transport layer can map the whole family to one status code while still
// distinguishing individual causes.
var ErrInvalid = errors.New("invalid sparsification parameters")

// Typed validation errors. Each wraps ErrInvalid.
var (
	// ErrBadSigma2 rejects similarity targets σ² ≤ 1: the relative
	// condition number κ(L_G, L_P) of a subgraph sparsifier is at least 1,
	// so no target at or below 1 is satisfiable.
	ErrBadSigma2 = fmt.Errorf("%w: similarity target σ² must be > 1", ErrInvalid)
	// ErrBadT rejects embedding step counts beyond a caller's ceiling.
	ErrBadT = fmt.Errorf("%w: embedding steps t out of range", ErrInvalid)
	// ErrBadNumVectors rejects probe-vector counts beyond a ceiling.
	ErrBadNumVectors = fmt.Errorf("%w: probe vector count r out of range", ErrInvalid)
	// ErrBadShards rejects negative shard counts (and counts beyond a
	// ceiling); zero means "pick the default".
	ErrBadShards = fmt.Errorf("%w: shard count out of range", ErrInvalid)
	// ErrBadWorkers rejects worker counts beyond a ceiling; zero and
	// negative mean "all cores".
	ErrBadWorkers = fmt.Errorf("%w: worker count out of range", ErrInvalid)
	// ErrBadCombination rejects structurally valid knobs that cannot be
	// used together (e.g. an edge budget on a sharded run).
	ErrBadCombination = fmt.Errorf("%w: incompatible options", ErrInvalid)
)

// Limits bounds remotely-submitted work. A zero field means unlimited;
// in-process callers (the CLIs, the library facade) validate with the
// zero Limits, while the HTTP service passes its wire ceilings so a
// remote client cannot submit unbounded per-job CPU work.
type Limits struct {
	MaxT          int
	MaxNumVectors int
	MaxShards     int
	MaxWorkers    int
}

// Sigma2 validates the similarity target shared by every pipeline.
func Sigma2(sigmaSq float64) error {
	if !(sigmaSq > 1) {
		return fmt.Errorf("%w: got %v", ErrBadSigma2, sigmaSq)
	}
	return nil
}

// Embed validates the embedding knobs (power-iteration steps t and probe
// vector count r). Non-positive values mean "use the default" and always
// pass; only values beyond the limits fail.
func Embed(t, numVectors int, lim Limits) error {
	if lim.MaxT > 0 && t > lim.MaxT {
		return fmt.Errorf("%w: t must be at most %d, got %d", ErrBadT, lim.MaxT, t)
	}
	if lim.MaxNumVectors > 0 && numVectors > lim.MaxNumVectors {
		return fmt.Errorf("%w: r must be at most %d, got %d", ErrBadNumVectors, lim.MaxNumVectors, numVectors)
	}
	return nil
}

// Sharding validates the engine fan-out knobs. Negative shard counts are
// invalid everywhere (zero means "default"); workers only fail beyond a
// ceiling since any non-positive value means "all cores".
func Sharding(shards, workers int, lim Limits) error {
	if shards < 0 {
		return fmt.Errorf("%w: got %d", ErrBadShards, shards)
	}
	if lim.MaxShards > 0 && shards > lim.MaxShards {
		return fmt.Errorf("%w: shards must be at most %d, got %d", ErrBadShards, lim.MaxShards, shards)
	}
	if lim.MaxWorkers > 0 && workers > lim.MaxWorkers {
		return fmt.Errorf("%w: workers must be at most %d, got %d", ErrBadWorkers, lim.MaxWorkers, workers)
	}
	return nil
}
