package sddm

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"graphspar/internal/gen"
	"graphspar/internal/sparse"
	"graphspar/internal/vecmath"
)

// randSDD builds a random connected SDD matrix with the given excess mass.
func randSDD(n int, excessScale float64, rng *vecmath.RNG) *sparse.CSR {
	b := sparse.NewBuilder(n, n)
	diag := make([]float64, n)
	// Ring for connectivity plus random couplings.
	add := func(i, j int, w float64) {
		b.Add(i, j, -w)
		b.Add(j, i, -w)
		diag[i] += w
		diag[j] += w
	}
	for i := 0; i < n; i++ {
		add(i, (i+1)%n, 0.5+rng.Float64())
	}
	for e := 0; e < 2*n; e++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i != j {
			add(i, j, 0.5+rng.Float64())
		}
	}
	for i := 0; i < n; i++ {
		b.Add(i, i, diag[i]+excessScale*rng.Float64())
	}
	return b.Build()
}

func TestDecomposePureLaplacian(t *testing.T) {
	g, _ := gen.Grid2D(5, 5, gen.UniformWeights, 1)
	dec, err := Decompose(g.Laplacian(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Grounded {
		t.Fatal("pure Laplacian should not be grounded")
	}
	if dec.G.M() != g.M() {
		t.Fatalf("graph changed: %d vs %d", dec.G.M(), g.M())
	}
	for i, e := range dec.Excess {
		if e > 1e-9 {
			t.Fatalf("excess[%d] = %v for a Laplacian", i, e)
		}
	}
}

func TestDecomposeWithExcess(t *testing.T) {
	rng := vecmath.NewRNG(3)
	a := randSDD(20, 2.0, rng)
	dec, err := Decompose(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Grounded {
		t.Fatal("matrix with excess diagonal must be grounded")
	}
	aug, ground, err := dec.AugmentedGraph()
	if err != nil {
		t.Fatal(err)
	}
	if aug.N() != 21 || ground != 20 {
		t.Fatalf("augmented shape: n=%d ground=%d", aug.N(), ground)
	}
	if !aug.IsConnected() {
		t.Fatal("augmented graph must be connected")
	}
}

func TestDecomposeRejects(t *testing.T) {
	// Non-square.
	b := sparse.NewBuilder(2, 3)
	b.Add(0, 0, 1)
	if _, err := Decompose(b.Build(), 0); !errors.Is(err, ErrNotSquare) {
		t.Fatalf("err = %v", err)
	}
	// Not diagonally dominant.
	b2 := sparse.NewBuilder(2, 2)
	b2.Add(0, 0, 1)
	b2.Add(0, 1, -5)
	b2.Add(1, 0, -5)
	b2.Add(1, 1, 1)
	if _, err := Decompose(b2.Build(), 0); !errors.Is(err, ErrNotSDD) {
		t.Fatalf("err = %v", err)
	}
	// Not symmetric.
	b3 := sparse.NewBuilder(2, 2)
	b3.Add(0, 0, 2)
	b3.Add(0, 1, -1)
	b3.Add(1, 1, 2)
	if _, err := Decompose(b3.Build(), 0); !errors.Is(err, ErrNotSDD) {
		t.Fatalf("err = %v", err)
	}
}

func TestSolverGroundedSystem(t *testing.T) {
	rng := vecmath.NewRNG(5)
	n := 60
	a := randSDD(n, 1.0, rng)
	s, err := NewSolver(a, Options{SigmaSq: 50, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, n)
	rng.FillNormal(b)
	x := make([]float64, n)
	res, err := s.Solve(x, b, 1e-9, 0)
	if err != nil {
		t.Fatalf("solve: %v (%+v)", err, res)
	}
	// True residual against A (not the Laplacian surrogate).
	y := make([]float64, n)
	a.MulVec(y, x)
	for i := range b {
		if math.Abs(y[i]-b[i]) > 1e-6*(1+math.Abs(b[i])) {
			t.Fatalf("Ax != b at %d: %v vs %v", i, y[i], b[i])
		}
	}
	if res.Residual > 1e-6 {
		t.Fatalf("reported residual %v", res.Residual)
	}
}

func TestSolverLaplacianPath(t *testing.T) {
	g, err := gen.Grid2D(10, 10, gen.UniformWeights, 7)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSolver(g.Laplacian(), Options{SigmaSq: 50, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	n := g.N()
	b := make([]float64, n)
	vecmath.NewRNG(9).FillNormal(b)
	vecmath.Deflate(b)
	x := make([]float64, n)
	res, err := s.Solve(x, b, 1e-9, 0)
	if err != nil || !res.Converged {
		t.Fatalf("solve: %v (%+v)", err, res)
	}
	y := make([]float64, n)
	g.LapMulVec(y, x)
	for i := range b {
		if math.Abs(y[i]-b[i]) > 1e-6 {
			t.Fatalf("Lx != b at %d", i)
		}
	}
}

func TestSolverSparReport(t *testing.T) {
	rng := vecmath.NewRNG(11)
	a := randSDD(80, 0.5, rng)
	s, err := NewSolver(a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Spar == nil || s.Spar.Sparsifier == nil {
		t.Fatal("sparsification result not exposed")
	}
	if s.Spar.SigmaSqAchieved <= 0 {
		t.Fatal("no similarity estimate")
	}
}

// Property: the solver inverts random SDD matrices of both kinds (with and
// without excess), verified against the true matrix residual.
func TestQuickSolveSDD(t *testing.T) {
	f := func(seed uint64) bool {
		rng := vecmath.NewRNG(seed)
		n := 10 + rng.Intn(40)
		excess := 0.0
		if seed%2 == 0 {
			excess = 1.5
		}
		a := randSDD(n, excess, rng)
		s, err := NewSolver(a, Options{SigmaSq: 30, Seed: seed})
		if err != nil {
			return false
		}
		b := make([]float64, n)
		rng.FillNormal(b)
		if excess == 0 {
			vecmath.Deflate(b)
		}
		x := make([]float64, n)
		if _, err := s.Solve(x, b, 1e-9, 0); err != nil {
			return false
		}
		y := make([]float64, n)
		a.MulVec(y, x)
		if excess == 0 {
			// Singular system: compare mean-free parts.
			vecmath.Deflate(y)
			vecmath.Deflate(b)
		}
		for i := range b {
			if math.Abs(y[i]-b[i]) > 1e-5*(1+math.Abs(b[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
