// Package sddm solves general symmetric diagonally dominant (SDD) systems
// with the similarity-aware sparsification machinery — the full scope of
// the paper's §4.2 "scalable sparse SDD matrix solver", which covers
// matrices that are not pure graph Laplacians (FEM stiffness matrices and
// circuit matrices have excess diagonal).
//
// The classic reduction: an SDD matrix with nonpositive off-diagonals
// decomposes as A = L_G + D_excess with L_G a graph Laplacian and
// D_excess ≥ 0 diagonal. Augmenting G with one ground vertex g connected
// to every vertex i that has D_excess[i] > 0 (edge weight D_excess[i])
// yields a Laplacian L_aug of size n+1 with
//
//	A x = b   ⇔   L_aug [x; x_g] = [b; −Σb],  x_g = 0 after de-grounding.
//
// Positive off-diagonals are handled by magnitude (the paper's own .mtx
// conversion rule |a_ij|), which preserves SDD structure for
// preconditioning purposes; Solve always verifies the true residual
// against the original matrix.
package sddm

import (
	"errors"
	"fmt"
	"math"

	"graphspar/internal/core"
	"graphspar/internal/graph"
	"graphspar/internal/pcg"
	"graphspar/internal/sparse"
	"graphspar/internal/vecmath"
)

// Errors from decomposition and solving.
var (
	ErrNotSDD    = errors.New("sddm: matrix is not symmetric diagonally dominant")
	ErrNotSquare = errors.New("sddm: matrix is not square")
)

// Decomposition splits an SDD matrix into Laplacian + excess diagonal.
type Decomposition struct {
	// G is the graph of off-diagonal couplings (|a_ij| weights).
	G *graph.Graph
	// Excess[i] = a_ii − Σ_j |a_ij| ≥ 0 (up to tolerance).
	Excess []float64
	// Grounded reports whether any excess is materially positive, i.e.
	// whether A is nonsingular and the augmented formulation is used.
	Grounded bool
}

// Decompose validates that a is SDD (within tol·rowscale slack) and
// splits it. Zero off-diagonal rows are allowed only when their diagonal
// is positive (they become pure ground connections).
func Decompose(a *sparse.CSR, tol float64) (*Decomposition, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("%w: %dx%d", ErrNotSquare, a.Rows, a.Cols)
	}
	if tol <= 0 {
		tol = 1e-12
	}
	if !a.IsSymmetric(tol) {
		return nil, fmt.Errorf("%w: not symmetric", ErrNotSDD)
	}
	n := a.Rows
	var edges []graph.Edge
	excess := make([]float64, n)
	for i := 0; i < n; i++ {
		var diag, offsum float64
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			j := a.ColIdx[p]
			v := a.Val[p]
			if j == i {
				diag = v
				continue
			}
			offsum += math.Abs(v)
			if j > i && v != 0 {
				edges = append(edges, graph.Edge{U: i, V: j, W: math.Abs(v)})
			}
		}
		slack := tol * (1 + math.Abs(diag) + offsum)
		if diag < offsum-slack {
			return nil, fmt.Errorf("%w: row %d has diagonal %v < off-diagonal sum %v", ErrNotSDD, i, diag, offsum)
		}
		e := diag - offsum
		if e < 0 {
			e = 0
		}
		excess[i] = e
	}
	g, err := graph.New(n, edges)
	if err != nil {
		return nil, err
	}
	grounded := false
	var maxDiag float64
	for i := 0; i < n; i++ {
		if d := g.WeightedDegree(i) + excess[i]; d > maxDiag {
			maxDiag = d
		}
	}
	for _, e := range excess {
		if e > 1e-10*maxDiag {
			grounded = true
			break
		}
	}
	return &Decomposition{G: g, Excess: excess, Grounded: grounded}, nil
}

// AugmentedGraph returns the ground-augmented graph: vertex n is the
// ground, connected to every vertex with positive excess. Returns the
// graph and the ground vertex index. Only valid when Grounded.
func (d *Decomposition) AugmentedGraph() (*graph.Graph, int, error) {
	n := d.G.N()
	if !d.Grounded {
		return nil, 0, errors.New("sddm: no excess diagonal to ground")
	}
	edges := append([]graph.Edge(nil), d.G.Edges()...)
	var maxDiag float64
	for i := 0; i < n; i++ {
		if dd := d.G.WeightedDegree(i) + d.Excess[i]; dd > maxDiag {
			maxDiag = dd
		}
	}
	for i, e := range d.Excess {
		if e > 1e-14*maxDiag {
			edges = append(edges, graph.Edge{U: i, V: n, W: e})
		}
	}
	aug, err := graph.New(n+1, edges)
	if err != nil {
		return nil, 0, err
	}
	return aug, n, nil
}

// Solver solves A x = b for a fixed SDD matrix by sparsifier-preconditioned
// PCG on the (possibly augmented) Laplacian.
type Solver struct {
	a      *sparse.CSR
	dec    *Decomposition
	aug    *graph.Graph // nil when not grounded
	ground int
	pre    pcg.Preconditioner
	// Result of the sparsification, exposed for reporting.
	Spar *core.Result
}

// Options configures NewSolver.
type Options struct {
	SigmaSq float64 // sparsifier similarity target (default 100)
	Seed    uint64
}

// NewSolver decomposes a, sparsifies the (augmented) graph at the given
// σ², and factors the sparsifier as a preconditioner.
func NewSolver(a *sparse.CSR, opt Options) (*Solver, error) {
	if opt.SigmaSq <= 1 {
		opt.SigmaSq = 100
	}
	if opt.Seed == 0 {
		opt.Seed = 1
	}
	dec, err := Decompose(a, 0)
	if err != nil {
		return nil, err
	}
	s := &Solver{a: a, dec: dec, ground: -1}
	target := dec.G
	if dec.Grounded {
		aug, ground, err := dec.AugmentedGraph()
		if err != nil {
			return nil, err
		}
		s.aug, s.ground = aug, ground
		target = aug
	}
	if err := target.RequireConnected(); err != nil {
		return nil, fmt.Errorf("sddm: coupling graph: %w", err)
	}
	spar, err := core.Sparsify(target, core.Options{SigmaSq: opt.SigmaSq, Seed: opt.Seed})
	if err != nil && !errors.Is(err, core.ErrNoTarget) {
		return nil, err
	}
	s.Spar = spar
	pre, err := pcg.NewCholPrecond(spar.Sparsifier)
	if err != nil {
		return nil, err
	}
	s.pre = pre
	return s, nil
}

// augOp applies the augmented Laplacian restricted back to A's action:
// for grounded systems we iterate on the (n+1)-dim Laplacian.
type augOp struct{ g *graph.Graph }

func (o augOp) Apply(y, x []float64) { o.g.LapMulVec(y, x) }
func (o augOp) Dim() int             { return o.g.N() }

// Solve solves A x = b to the given relative residual. For grounded
// systems the augmented Laplacian system [b; −Σb] is solved and the
// solution is shifted so the ground sits at potential 0, which recovers
// the unique solution of the nonsingular A.
func (s *Solver) Solve(x, b []float64, tol float64, maxIter int) (pcg.Result, error) {
	n := s.a.Rows
	if len(x) != n || len(b) != n {
		panic("sddm: Solve dimension mismatch")
	}
	if tol <= 0 {
		tol = 1e-10
	}
	if maxIter <= 0 {
		maxIter = 10 * (n + 1)
	}
	if !s.dec.Grounded {
		// Pure Laplacian: mean-free semantics.
		return pcg.SolveLaplacian(s.dec.G, s.pre, x, b, tol, maxIter)
	}
	ab := make([]float64, n+1)
	copy(ab, b)
	ab[s.ground] = -vecmath.Sum(b)
	ax := make([]float64, n+1)
	res, err := pcg.Solve(augOp{s.aug}, s.pre, ax, ab, pcg.Options{Tol: tol, MaxIter: maxIter, Deflate: true})
	if err != nil {
		return res, err
	}
	shift := ax[s.ground]
	for i := 0; i < n; i++ {
		x[i] = ax[i] - shift
	}
	// Report the true residual against A.
	r := make([]float64, n)
	s.a.MulVec(r, x)
	for i := range r {
		r[i] = b[i] - r[i]
	}
	res.Residual = vecmath.RelResidual(r, b)
	return res, nil
}
