package multigrid

import (
	"math"
	"testing"
	"testing/quick"

	"graphspar/internal/gen"
	"graphspar/internal/graph"
	"graphspar/internal/pcg"
	"graphspar/internal/vecmath"
)

func TestHierarchyBuilds(t *testing.T) {
	g, err := gen.Grid2D(40, 40, gen.UniformWeights, 1)
	if err != nil {
		t.Fatal(err)
	}
	h, err := New(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if h.Levels() < 2 {
		t.Fatalf("expected a multilevel hierarchy, got %d levels", h.Levels())
	}
}

func TestHierarchyRejectsDisconnected(t *testing.T) {
	g, _ := graph.New(4, []graph.Edge{{U: 0, V: 1, W: 1}, {U: 2, V: 3, W: 1}})
	if _, err := New(g, Options{}); err == nil {
		t.Fatal("expected setup error")
	}
}

func TestSolveGrid(t *testing.T) {
	g, err := gen.Grid2D(30, 30, gen.UniformWeights, 2)
	if err != nil {
		t.Fatal(err)
	}
	h, err := New(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	n := g.N()
	b := make([]float64, n)
	vecmath.NewRNG(3).FillNormal(b)
	vecmath.Deflate(b)
	x := make([]float64, n)
	res, err := h.Solve(x, b, 1e-8, 300)
	if err != nil {
		t.Fatalf("solve: %v (%+v)", err, res)
	}
	y := make([]float64, n)
	g.LapMulVec(y, x)
	for i := range b {
		if math.Abs(y[i]-b[i]) > 1e-6 {
			t.Fatalf("Lx != b at %d: %v vs %v", i, y[i], b[i])
		}
	}
}

func TestSolveZeroRHS(t *testing.T) {
	g, _ := gen.Grid2D(10, 10, gen.UnitWeights, 1)
	h, err := New(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, g.N())
	for i := range x {
		x[i] = 1
	}
	res, err := h.Solve(x, make([]float64, g.N()), 1e-10, 10)
	if err != nil || !res.Converged {
		t.Fatalf("zero RHS: %v %+v", err, res)
	}
	for _, v := range x {
		if v != 0 {
			t.Fatal("solution should be zeroed")
		}
	}
}

func TestSolveConstantRHSProjected(t *testing.T) {
	// RHS in the null space must yield x = 0 after projection.
	g, _ := gen.Grid2D(8, 8, gen.UnitWeights, 1)
	h, err := New(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	n := g.N()
	b := make([]float64, n)
	for i := range b {
		b[i] = 5
	}
	x := make([]float64, n)
	res, err := h.Solve(x, b, 1e-10, 10)
	if err != nil || !res.Converged {
		t.Fatalf("constant RHS: %v %+v", err, res)
	}
	if vecmath.Norm2(x) > 1e-9 {
		t.Fatalf("x should vanish, norm %v", vecmath.Norm2(x))
	}
}

func TestVCyclePreconditionsPCG(t *testing.T) {
	g, err := gen.Grid2D(32, 32, gen.UniformWeights, 4)
	if err != nil {
		t.Fatal(err)
	}
	h, err := New(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	n := g.N()
	b := make([]float64, n)
	vecmath.NewRNG(5).FillNormal(b)
	vecmath.Deflate(b)

	xPlain := make([]float64, n)
	resPlain, err := pcg.SolveLaplacian(g, nil, xPlain, append([]float64(nil), b...), 1e-8, 20*n)
	if err != nil {
		t.Fatal(err)
	}
	xMG := make([]float64, n)
	resMG, err := pcg.SolveLaplacian(g, h, xMG, append([]float64(nil), b...), 1e-8, 20*n)
	if err != nil {
		t.Fatal(err)
	}
	if resMG.Iterations >= resPlain.Iterations {
		t.Fatalf("AMG preconditioning not helping: %d vs %d", resMG.Iterations, resPlain.Iterations)
	}
}

func TestCoarsestOnlyHierarchy(t *testing.T) {
	// A graph smaller than CoarsestSize solves directly.
	g, _ := gen.Path(10)
	h, err := New(g, Options{CoarsestSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	if h.Levels() != 1 {
		t.Fatalf("levels = %d, want 1", h.Levels())
	}
	b := make([]float64, 10)
	vecmath.NewRNG(1).FillNormal(b)
	vecmath.Deflate(b)
	x := make([]float64, 10)
	if _, err := h.Solve(x, b, 1e-10, 5); err != nil {
		t.Fatal(err)
	}
	y := make([]float64, 10)
	g.LapMulVec(y, x)
	for i := range b {
		if math.Abs(y[i]-b[i]) > 1e-8 {
			t.Fatalf("direct coarse solve wrong at %d", i)
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	var o Options
	o.defaults()
	if o.CoarsestSize != 64 || o.MaxLevels != 30 || o.PreSmooth != 2 || o.PostSmooth != 2 {
		t.Fatalf("defaults wrong: %+v", o)
	}
	if math.Abs(o.Omega-2.0/3.0) > 1e-15 {
		t.Fatalf("omega default %v", o.Omega)
	}
}

// Property: V-cycle solve matches the answer from (deflated) PCG.
func TestQuickMatchesPCG(t *testing.T) {
	f := func(seed uint64) bool {
		rng := vecmath.NewRNG(seed)
		rows, cols := 4+rng.Intn(6), 4+rng.Intn(6)
		g, err := gen.Grid2D(rows, cols, gen.UniformWeights, seed)
		if err != nil {
			return false
		}
		n := g.N()
		b := make([]float64, n)
		rng.FillNormal(b)
		vecmath.Deflate(b)
		h, err := New(g, Options{CoarsestSize: 8})
		if err != nil {
			return false
		}
		x1 := make([]float64, n)
		if res, err := h.Solve(x1, append([]float64(nil), b...), 1e-10, 500); err != nil || !res.Converged {
			return false
		}
		x2 := make([]float64, n)
		if res, err := pcg.SolveLaplacian(g, nil, x2, append([]float64(nil), b...), 1e-12, 50*n); err != nil || !res.Converged {
			return false
		}
		for i := range x1 {
			if math.Abs(x1[i]-x2[i]) > 1e-6*(1+math.Abs(x2[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkVCycle(b *testing.B) {
	g, err := gen.Grid2D(60, 60, gen.UniformWeights, 1)
	if err != nil {
		b.Fatal(err)
	}
	h, err := New(g, Options{})
	if err != nil {
		b.Fatal(err)
	}
	n := g.N()
	r := make([]float64, n)
	z := make([]float64, n)
	vecmath.NewRNG(2).FillNormal(r)
	vecmath.Deflate(r)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Precondition(z, r)
	}
}
