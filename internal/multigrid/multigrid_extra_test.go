package multigrid

import (
	"math"
	"testing"

	"graphspar/internal/gen"
	"graphspar/internal/vecmath"
)

func TestHierarchyCoarsensGeometrically(t *testing.T) {
	g, err := gen.Grid2D(50, 50, gen.UnitWeights, 1)
	if err != nil {
		t.Fatal(err)
	}
	h, err := New(g, Options{CoarsestSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	// Each level should shrink substantially (aggregation merges
	// neighborhoods); 2500 vertices need only a handful of levels.
	if h.Levels() > 10 {
		t.Fatalf("too many levels: %d", h.Levels())
	}
	if h.Levels() < 3 {
		t.Fatalf("suspiciously shallow hierarchy: %d", h.Levels())
	}
}

func TestSolveHeavyTailedWeights(t *testing.T) {
	g, err := gen.Grid2D(20, 20, gen.LogUniform, 5)
	if err != nil {
		t.Fatal(err)
	}
	h, err := New(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	n := g.N()
	b := make([]float64, n)
	vecmath.NewRNG(7).FillNormal(b)
	vecmath.Deflate(b)
	x := make([]float64, n)
	res, err := h.Solve(x, b, 1e-6, 500)
	if err != nil {
		t.Fatalf("heavy-tailed solve: %v (%+v)", err, res)
	}
	y := make([]float64, n)
	g.LapMulVec(y, x)
	for i := range b {
		if math.Abs(y[i]-b[i]) > 1e-4*(1+math.Abs(b[i])) {
			t.Fatalf("residual too large at %d", i)
		}
	}
}

func TestSolveMaxCyclesError(t *testing.T) {
	g, err := gen.Grid2D(15, 15, gen.UniformWeights, 3)
	if err != nil {
		t.Fatal(err)
	}
	h, err := New(g, Options{PreSmooth: 1, PostSmooth: 1})
	if err != nil {
		t.Fatal(err)
	}
	n := g.N()
	b := make([]float64, n)
	vecmath.NewRNG(9).FillNormal(b)
	vecmath.Deflate(b)
	x := make([]float64, n)
	res, err := h.Solve(x, b, 1e-14, 1)
	if err == nil {
		t.Fatalf("one cycle to 1e-14 should fail, got %+v", res)
	}
	if res.Converged {
		t.Fatal("must not report convergence")
	}
}

func TestPreconditionDeterministic(t *testing.T) {
	g, err := gen.Grid2D(12, 12, gen.UniformWeights, 3)
	if err != nil {
		t.Fatal(err)
	}
	h, err := New(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	n := g.N()
	r := make([]float64, n)
	vecmath.NewRNG(11).FillNormal(r)
	vecmath.Deflate(r)
	z1 := make([]float64, n)
	z2 := make([]float64, n)
	h.Precondition(z1, r)
	h.Precondition(z2, r)
	for i := range z1 {
		if z1[i] != z2[i] {
			t.Fatal("V-cycle must be deterministic")
		}
	}
}
