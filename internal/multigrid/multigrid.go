// Package multigrid implements a lean aggregation-based algebraic
// multigrid for graph Laplacians — the stand-in for the LAMG/SAMG solvers
// the paper cites ([13, 24]) and calls for inside the densification loop
// (§3.7 step 1) and λmax power iterations (§3.6.1).
//
// Setup coarsens by heavy-edge aggregation (every vertex joins the
// aggregate of its strongest neighbor), builds piecewise-constant
// prolongation P and Galerkin coarse operators Pᵀ A P, and stops at a
// dense-solvable coarsest level. The cycle is a standard V-cycle with
// weighted-Jacobi smoothing; Solve wraps the cycle either as a stationary
// iteration or as a PCG preconditioner.
package multigrid

import (
	"errors"
	"fmt"
	"math"

	"graphspar/internal/graph"
	"graphspar/internal/sparse"
	"graphspar/internal/vecmath"
)

// ErrSetup reports a failed hierarchy construction.
var ErrSetup = errors.New("multigrid: setup failed")

// Options controls hierarchy construction and cycling.
type Options struct {
	CoarsestSize int     // switch to dense solve below this (default 64)
	MaxLevels    int     // hierarchy depth cap (default 30)
	Omega        float64 // Jacobi damping (default 2/3)
	PreSmooth    int     // smoothing sweeps before coarse correction (default 2)
	PostSmooth   int     // sweeps after (default 2)
}

func (o *Options) defaults() {
	if o.CoarsestSize <= 0 {
		o.CoarsestSize = 64
	}
	if o.MaxLevels <= 0 {
		o.MaxLevels = 30
	}
	if o.Omega <= 0 || o.Omega >= 1 {
		o.Omega = 2.0 / 3.0
	}
	if o.PreSmooth <= 0 {
		o.PreSmooth = 2
	}
	if o.PostSmooth <= 0 {
		o.PostSmooth = 2
	}
}

type level struct {
	a       *sparse.CSR // Laplacian at this level
	invDiag []float64
	agg     []int // fine vertex -> coarse aggregate (empty at coarsest)
	nc      int   // number of aggregates
	// Workspaces sized for this level.
	r, x2, tmp []float64
}

// Hierarchy is a built multigrid solver.
type Hierarchy struct {
	levels []*level
	opt    Options
	// Dense Cholesky of the grounded coarsest matrix.
	coarseL [][]float64
	coarseN int
}

// New builds a hierarchy for the Laplacian of g.
func New(g *graph.Graph, opt Options) (*Hierarchy, error) {
	if err := g.RequireConnected(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSetup, err)
	}
	opt.defaults()
	h := &Hierarchy{opt: opt}
	a := g.Laplacian()
	for lev := 0; lev < opt.MaxLevels; lev++ {
		l := &level{a: a}
		n := a.Rows
		l.invDiag = make([]float64, n)
		for i, d := range a.Diag() {
			if d > 0 {
				l.invDiag[i] = 1 / d
			}
		}
		l.r = make([]float64, n)
		l.x2 = make([]float64, n)
		l.tmp = make([]float64, n)
		h.levels = append(h.levels, l)
		if n <= opt.CoarsestSize {
			break
		}
		agg, nc := aggregate(a)
		if nc >= n || nc < 1 {
			break // coarsening stalled; treat this level as coarsest
		}
		l.agg, l.nc = agg, nc
		coarse, err := galerkin(a, agg, nc)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrSetup, err)
		}
		a = coarse
	}
	if err := h.factorCoarsest(); err != nil {
		return nil, err
	}
	return h, nil
}

// Levels returns the number of levels in the hierarchy.
func (h *Hierarchy) Levels() int { return len(h.levels) }

// AggregateGraph runs one heavy-edge aggregation pass on the Laplacian
// of g and returns the vertex → aggregate mapping together with the
// aggregate count. This is the exact coarsening step the multigrid
// hierarchy uses between levels, exposed for the multilevel
// sparsification engine, which contracts the graph along the same
// aggregates. Deterministic: depends only on the graph.
func AggregateGraph(g *graph.Graph) ([]int, int) {
	return aggregate(g.Laplacian())
}

// aggregate performs heavy-edge aggregation: unaggregated vertices seed
// aggregates and absorb their unaggregated neighbors; leftovers join the
// aggregate of their strongest neighbor.
func aggregate(a *sparse.CSR) ([]int, int) {
	n := a.Rows
	agg := make([]int, n)
	for i := range agg {
		agg[i] = -1
	}
	nc := 0
	// Pass 1: seed aggregates from vertices with no aggregated neighbor.
	for v := 0; v < n; v++ {
		if agg[v] != -1 {
			continue
		}
		hasAggNbr := false
		for p := a.RowPtr[v]; p < a.RowPtr[v+1]; p++ {
			j := a.ColIdx[p]
			if j != v && agg[j] != -1 {
				hasAggNbr = true
				break
			}
		}
		if hasAggNbr {
			continue
		}
		agg[v] = nc
		for p := a.RowPtr[v]; p < a.RowPtr[v+1]; p++ {
			j := a.ColIdx[p]
			if j != v && agg[j] == -1 {
				agg[j] = nc
			}
		}
		nc++
	}
	// Pass 2: attach leftovers to the strongest aggregated neighbor.
	for v := 0; v < n; v++ {
		if agg[v] != -1 {
			continue
		}
		best, bestW := -1, 0.0
		for p := a.RowPtr[v]; p < a.RowPtr[v+1]; p++ {
			j := a.ColIdx[p]
			if j == v || agg[j] == -1 {
				continue
			}
			if w := -a.Val[p]; w > bestW {
				bestW, best = w, agg[j]
			}
		}
		if best == -1 {
			agg[v] = nc
			nc++
		} else {
			agg[v] = best
		}
	}
	return agg, nc
}

// galerkin computes Pᵀ A P for piecewise-constant P given by agg.
func galerkin(a *sparse.CSR, agg []int, nc int) (*sparse.CSR, error) {
	b := sparse.NewBuilder(nc, nc)
	for i := 0; i < a.Rows; i++ {
		ci := agg[i]
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			b.Add(ci, agg[a.ColIdx[p]], a.Val[p])
		}
	}
	return b.Build(), nil
}

// factorCoarsest densely factors the grounded coarsest Laplacian.
func (h *Hierarchy) factorCoarsest() error {
	a := h.levels[len(h.levels)-1].a
	n := a.Rows
	h.coarseN = n
	if n == 1 {
		return nil
	}
	m := n - 1 // grounded dimension
	dense := make([][]float64, m)
	for i := range dense {
		dense[i] = make([]float64, m)
	}
	for i := 0; i < m; i++ {
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			if j := a.ColIdx[p]; j < m {
				dense[i][j] = a.Val[p]
			}
		}
	}
	// In-place dense Cholesky.
	for k := 0; k < m; k++ {
		d := dense[k][k]
		for j := 0; j < k; j++ {
			d -= dense[k][j] * dense[k][j]
		}
		if d <= 0 || math.IsNaN(d) {
			return fmt.Errorf("%w: coarsest matrix not SPD (pivot %v)", ErrSetup, d)
		}
		dense[k][k] = math.Sqrt(d)
		for i := k + 1; i < m; i++ {
			s := dense[i][k]
			for j := 0; j < k; j++ {
				s -= dense[i][j] * dense[k][j]
			}
			dense[i][k] = s / dense[k][k]
		}
	}
	h.coarseL = dense
	return nil
}

// coarseSolve solves the grounded coarsest system, returning a zero-mean x.
func (h *Hierarchy) coarseSolve(x, b []float64) {
	n := h.coarseN
	if n == 1 {
		x[0] = 0
		return
	}
	m := n - 1
	mean := vecmath.Mean(b)
	y := make([]float64, m)
	for i := 0; i < m; i++ {
		y[i] = b[i] - mean
	}
	// Forward, then backward substitution.
	for i := 0; i < m; i++ {
		s := y[i]
		for j := 0; j < i; j++ {
			s -= h.coarseL[i][j] * y[j]
		}
		y[i] = s / h.coarseL[i][i]
	}
	for i := m - 1; i >= 0; i-- {
		s := y[i]
		for j := i + 1; j < m; j++ {
			s -= h.coarseL[j][i] * y[j]
		}
		y[i] = s / h.coarseL[i][i]
	}
	copy(x[:m], y)
	x[m] = 0
	vecmath.Deflate(x[:n])
}

// smooth runs `sweeps` damped-Jacobi iterations on A x = b at level l.
func (h *Hierarchy) smooth(l *level, x, b []float64, sweeps int) {
	for s := 0; s < sweeps; s++ {
		l.a.MulVec(l.tmp, x)
		for i := range x {
			x[i] += h.opt.Omega * l.invDiag[i] * (b[i] - l.tmp[i])
		}
	}
}

// Cycle runs one V-cycle at level idx for A x = b (x updated in place).
func (h *Hierarchy) cycle(idx int, x, b []float64) {
	l := h.levels[idx]
	if idx == len(h.levels)-1 {
		h.coarseSolve(x, b)
		return
	}
	h.smooth(l, x, b, h.opt.PreSmooth)
	// Residual restriction: rc = Pᵀ (b - A x).
	l.a.MulVec(l.r, x)
	for i := range l.r {
		l.r[i] = b[i] - l.r[i]
	}
	next := h.levels[idx+1]
	rc := next.tmp[:next.a.Rows] // borrow workspace of the next level
	for i := range rc {
		rc[i] = 0
	}
	for i, c := range l.agg {
		rc[c] += l.r[i]
	}
	xc := make([]float64, next.a.Rows)
	rcCopy := append([]float64(nil), rc...)
	h.cycle(idx+1, xc, rcCopy)
	// Prolongate and correct.
	for i, c := range l.agg {
		x[i] += xc[c]
	}
	h.smooth(l, x, b, h.opt.PostSmooth)
	vecmath.Deflate(x)
}

// Precondition applies one V-cycle to r, making Hierarchy a pcg
// preconditioner.
func (h *Hierarchy) Precondition(z, r []float64) {
	vecmath.Zero(z)
	h.cycle(0, z, r)
}

// Result summarizes a stationary solve.
type Result struct {
	Iterations int
	Residual   float64
	Converged  bool
}

// Solve runs stationary V-cycles until the relative residual of
// L x = b drops below tol (b is projected to zero mean first).
func (h *Hierarchy) Solve(x, b []float64, tol float64, maxCycles int) (Result, error) {
	l0 := h.levels[0]
	n := l0.a.Rows
	if len(x) != n || len(b) != n {
		panic("multigrid: Solve dimension mismatch")
	}
	if tol <= 0 {
		tol = 1e-10
	}
	if maxCycles <= 0 {
		maxCycles = 200
	}
	bb := append([]float64(nil), b...)
	vecmath.Deflate(bb)
	nb := vecmath.Norm2(bb)
	if nb == 0 {
		vecmath.Zero(x)
		return Result{Converged: true}, nil
	}
	r := make([]float64, n)
	for it := 1; it <= maxCycles; it++ {
		h.cycle(0, x, bb)
		l0.a.MulVec(r, x)
		for i := range r {
			r[i] = bb[i] - r[i]
		}
		rel := vecmath.Norm2(r) / nb
		if rel <= tol {
			return Result{Iterations: it, Residual: rel, Converged: true}, nil
		}
		if it == maxCycles {
			return Result{Iterations: it, Residual: rel, Converged: false},
				errors.New("multigrid: max cycles reached")
		}
	}
	return Result{}, nil // unreachable
}
