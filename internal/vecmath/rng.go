package vecmath

import "math"

// RNG is a small, fast, deterministic pseudo-random generator
// (xorshift128+ with a splitmix64-seeded state). Every randomized routine
// in graphspar threads an explicit *RNG so experiments are reproducible
// run-to-run, as DESIGN.md requires. The zero value is not valid; use
// NewRNG.
type RNG struct {
	s0, s1 uint64
}

// NewRNG returns a generator seeded deterministically from seed.
func NewRNG(seed uint64) *RNG {
	// splitmix64 expansion of the seed into two nonzero state words.
	sm := func() uint64 {
		seed += 0x9e3779b97f4a7c15
		z := seed
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	r := &RNG{s0: sm(), s1: sm()}
	if r.s0 == 0 && r.s1 == 0 {
		r.s0 = 1
	}
	return r
}

// Uint64 returns the next raw 64-bit value.
func (r *RNG) Uint64() uint64 {
	x, y := r.s0, r.s1
	r.s0 = y
	x ^= x << 23
	x ^= x >> 17
	x ^= y ^ (y >> 26)
	r.s1 = x
	return x + y
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("vecmath: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// NormFloat64 returns a standard normal sample (Marsaglia polar method).
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// FillRademacher fills x with ±1 entries. Rademacher start vectors are the
// standard choice for stochastic trace/Joule-heat estimators (eq. 12 uses
// r of them).
func (r *RNG) FillRademacher(x []float64) {
	for i := range x {
		if r.Uint64()&1 == 0 {
			x[i] = 1
		} else {
			x[i] = -1
		}
	}
}

// FillNormal fills x with standard normal entries.
func (r *RNG) FillNormal(x []float64) {
	for i := range x {
		x[i] = r.NormFloat64()
	}
}

// FillUniform fills x with uniform entries in [lo, hi).
func (r *RNG) FillUniform(x []float64, lo, hi float64) {
	for i := range x {
		x[i] = lo + (hi-lo)*r.Float64()
	}
}

// Perm returns a random permutation of [0, n) (Fisher–Yates).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
