package vecmath

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestDot(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{4, -5, 6}
	if got := Dot(x, y); got != 12 {
		t.Fatalf("Dot = %v, want 12", got)
	}
}

func TestDotEmpty(t *testing.T) {
	if got := Dot(nil, nil); got != 0 {
		t.Fatalf("Dot(nil,nil) = %v, want 0", got)
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestNorm2(t *testing.T) {
	if got := Norm2([]float64{3, 4}); got != 5 {
		t.Fatalf("Norm2 = %v, want 5", got)
	}
}

func TestNorm2Extremes(t *testing.T) {
	// Values whose squares would overflow naive accumulation.
	big := 1e200
	got := Norm2([]float64{big, big})
	want := big * math.Sqrt(2)
	if !almostEqual(got, want, 1e-12) {
		t.Fatalf("Norm2 overflow-safe = %v, want %v", got, want)
	}
}

func TestNormInf(t *testing.T) {
	if got := NormInf([]float64{-7, 3, 5}); got != 7 {
		t.Fatalf("NormInf = %v, want 7", got)
	}
	if got := NormInf(nil); got != 0 {
		t.Fatalf("NormInf(nil) = %v, want 0", got)
	}
}

func TestAxpy(t *testing.T) {
	y := []float64{1, 1}
	Axpy(2, []float64{3, -4}, y)
	if y[0] != 7 || y[1] != -7 {
		t.Fatalf("Axpy = %v, want [7 -7]", y)
	}
}

func TestScaleZeroSum(t *testing.T) {
	x := []float64{1, 2, 3}
	Scale(2, x)
	if Sum(x) != 12 {
		t.Fatalf("Sum after Scale = %v, want 12", Sum(x))
	}
	Zero(x)
	if Sum(x) != 0 {
		t.Fatalf("Sum after Zero = %v, want 0", Sum(x))
	}
}

func TestMeanDeflate(t *testing.T) {
	x := []float64{1, 2, 3, 6}
	if got := Mean(x); got != 3 {
		t.Fatalf("Mean = %v, want 3", got)
	}
	Deflate(x)
	if !almostEqual(Sum(x), 0, 1e-15) {
		t.Fatalf("Sum after Deflate = %v, want 0", Sum(x))
	}
}

func TestMeanEmpty(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %v, want 0", got)
	}
}

func TestNormalize(t *testing.T) {
	x := []float64{0, 3, 4}
	n := Normalize(x)
	if n != 5 {
		t.Fatalf("Normalize returned %v, want 5", n)
	}
	if !almostEqual(Norm2(x), 1, 1e-15) {
		t.Fatalf("norm after Normalize = %v, want 1", Norm2(x))
	}
	z := []float64{0, 0}
	if got := Normalize(z); got != 0 {
		t.Fatalf("Normalize(zero) = %v, want 0", got)
	}
}

func TestSubAddHadamard(t *testing.T) {
	x := []float64{5, 6}
	y := []float64{2, 3}
	d := make([]float64, 2)
	Sub(d, x, y)
	if d[0] != 3 || d[1] != 3 {
		t.Fatalf("Sub = %v", d)
	}
	Add(d, x, y)
	if d[0] != 7 || d[1] != 9 {
		t.Fatalf("Add = %v", d)
	}
	Hadamard(d, x, y)
	if d[0] != 10 || d[1] != 18 {
		t.Fatalf("Hadamard = %v", d)
	}
}

func TestMaxAbsIndex(t *testing.T) {
	if got := MaxAbsIndex([]float64{1, -9, 3}); got != 1 {
		t.Fatalf("MaxAbsIndex = %v, want 1", got)
	}
	if got := MaxAbsIndex(nil); got != -1 {
		t.Fatalf("MaxAbsIndex(nil) = %v, want -1", got)
	}
}

func TestRelResidual(t *testing.T) {
	if got := RelResidual([]float64{3, 4}, []float64{0, 10}); got != 0.5 {
		t.Fatalf("RelResidual = %v, want 0.5", got)
	}
	// Zero b treated as norm 1.
	if got := RelResidual([]float64{2}, []float64{0}); got != 2 {
		t.Fatalf("RelResidual zero-b = %v, want 2", got)
	}
}

// Property: Cauchy–Schwarz |<x,y>| <= ||x||·||y||.
func TestQuickCauchySchwarz(t *testing.T) {
	f := func(a, b [8]float64) bool {
		x, y := a[:], b[:]
		for i := range x { // keep magnitudes sane
			x[i] = math.Mod(x[i], 1e6)
			y[i] = math.Mod(y[i], 1e6)
		}
		return math.Abs(Dot(x, y)) <= Norm2(x)*Norm2(y)*(1+1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Deflate is idempotent (up to scale-relative rounding) and
// leaves differences intact.
func TestQuickDeflateIdempotent(t *testing.T) {
	f := func(a [6]float64) bool {
		x := a[:]
		scale := 1.0
		for i := range x {
			if math.IsNaN(x[i]) || math.IsInf(x[i], 0) {
				x[i] = 0
			}
			x[i] = math.Mod(x[i], 1e9)
			if v := math.Abs(x[i]); v > scale {
				scale = v
			}
		}
		d0 := x[1] - x[0]
		Deflate(x)
		s1 := Sum(x)
		Deflate(x)
		// Both sums are pure rounding residue; bound them by the data
		// scale rather than comparing the two tiny numbers to each other.
		eps := 1e-12 * scale
		return math.Abs(Sum(x)) <= math.Abs(s1)+eps && almostEqual(x[1]-x[0], d0, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give same stream")
		}
	}
	c := NewRNG(43)
	same := true
	a = NewRNG(42)
	for i := 0; i < 10; i++ {
		if a.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds should give different streams")
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 1000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestRNGIntn(t *testing.T) {
	r := NewRNG(2)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %v", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) should hit every residue, got %d", len(seen))
	}
}

func TestRNGIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestFillRademacher(t *testing.T) {
	r := NewRNG(3)
	x := make([]float64, 4096)
	r.FillRademacher(x)
	var plus int
	for _, v := range x {
		if v != 1 && v != -1 {
			t.Fatalf("non-Rademacher entry %v", v)
		}
		if v == 1 {
			plus++
		}
	}
	// Crude balance check: expect ~2048 ± 5 sigma (sigma = 32).
	if plus < 2048-160 || plus > 2048+160 {
		t.Fatalf("Rademacher imbalance: %d of %d positive", plus, len(x))
	}
}

func TestFillNormalMoments(t *testing.T) {
	r := NewRNG(4)
	x := make([]float64, 20000)
	r.FillNormal(x)
	m := Mean(x)
	var varsum float64
	for _, v := range x {
		varsum += (v - m) * (v - m)
	}
	variance := varsum / float64(len(x)-1)
	if math.Abs(m) > 0.05 {
		t.Fatalf("normal mean too far from 0: %v", m)
	}
	if math.Abs(variance-1) > 0.08 {
		t.Fatalf("normal variance too far from 1: %v", variance)
	}
}

func TestFillUniform(t *testing.T) {
	r := NewRNG(5)
	x := make([]float64, 1000)
	r.FillUniform(x, 2, 3)
	for _, v := range x {
		if v < 2 || v >= 3 {
			t.Fatalf("uniform out of range: %v", v)
		}
	}
}

func TestPerm(t *testing.T) {
	r := NewRNG(6)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("invalid permutation at %d", v)
		}
		seen[v] = true
	}
}

func BenchmarkDot(b *testing.B) {
	x := make([]float64, 1<<16)
	y := make([]float64, 1<<16)
	NewRNG(1).FillNormal(x)
	NewRNG(2).FillNormal(y)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Dot(x, y)
	}
}
