// Package vecmath provides the dense vector kernels used throughout
// graphspar: BLAS-1 style operations, norms, orthogonalization against the
// constant vector (the null space of connected-graph Laplacians), and
// deterministic random-vector generation for the randomized embedding and
// estimation routines of the paper.
//
// All functions are allocation-free unless documented otherwise, so the
// inner loops of power iterations and PCG can run without GC pressure.
package vecmath

import (
	"fmt"
	"math"
)

// Dot returns the inner product of x and y.
// It panics if the lengths differ; vector-length mismatches are programming
// errors, not runtime conditions.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("vecmath: Dot length mismatch %d != %d", len(x), len(y)))
	}
	var s float64
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	// Scaled accumulation avoids overflow for extreme magnitudes.
	var scale, ssq float64
	ssq = 1
	for _, v := range x {
		if v == 0 {
			continue
		}
		a := math.Abs(v)
		if scale < a {
			r := scale / a
			ssq = 1 + ssq*r*r
			scale = a
		} else {
			r := a / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}

// NormInf returns the maximum absolute entry of x (0 for empty x).
func NormInf(x []float64) float64 {
	var m float64
	for _, v := range x {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// Axpy computes y += alpha*x in place.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("vecmath: Axpy length mismatch %d != %d", len(x), len(y)))
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Scale multiplies every entry of x by alpha in place.
func Scale(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// Copy copies src into dst (lengths must match).
func Copy(dst, src []float64) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("vecmath: Copy length mismatch %d != %d", len(dst), len(src)))
	}
	copy(dst, src)
}

// Zero sets every entry of x to 0.
func Zero(x []float64) {
	for i := range x {
		x[i] = 0
	}
}

// Sum returns the sum of the entries of x.
func Sum(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean of x (0 for empty x).
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	return Sum(x) / float64(len(x))
}

// Deflate removes the component of x along the all-ones vector in place:
// x <- x - mean(x)·1. Laplacians of connected graphs have null space
// span{1}, so every solver and eigen routine in graphspar deflates iterates
// with this function.
func Deflate(x []float64) {
	m := Mean(x)
	for i := range x {
		x[i] -= m
	}
}

// Normalize scales x to unit Euclidean norm in place and returns the
// original norm. If x is (numerically) zero it is left unchanged and 0 is
// returned.
func Normalize(x []float64) float64 {
	n := Norm2(x)
	if n == 0 {
		return 0
	}
	Scale(1/n, x)
	return n
}

// Sub computes dst = x - y.
func Sub(dst, x, y []float64) {
	if len(dst) != len(x) || len(x) != len(y) {
		panic("vecmath: Sub length mismatch")
	}
	for i := range dst {
		dst[i] = x[i] - y[i]
	}
}

// Add computes dst = x + y.
func Add(dst, x, y []float64) {
	if len(dst) != len(x) || len(x) != len(y) {
		panic("vecmath: Add length mismatch")
	}
	for i := range dst {
		dst[i] = x[i] + y[i]
	}
}

// Hadamard computes dst = x .* y (entrywise product).
func Hadamard(dst, x, y []float64) {
	if len(dst) != len(x) || len(x) != len(y) {
		panic("vecmath: Hadamard length mismatch")
	}
	for i := range dst {
		dst[i] = x[i] * y[i]
	}
}

// MaxAbsIndex returns the index of the entry with the largest absolute
// value, or -1 for an empty slice.
func MaxAbsIndex(x []float64) int {
	best, idx := -1.0, -1
	for i, v := range x {
		if a := math.Abs(v); a > best {
			best, idx = a, i
		}
	}
	return idx
}

// RelResidual returns ||r|| / ||b||, treating a zero b as having norm 1 so
// the caller can still interpret the result as an absolute residual.
func RelResidual(r, b []float64) float64 {
	nb := Norm2(b)
	if nb == 0 {
		nb = 1
	}
	return Norm2(r) / nb
}
