package eig

import (
	"errors"
	"math"
)

// ErrNoConverge is returned when an eigenvalue iteration stalls.
var ErrNoConverge = errors.New("eig: eigenvalue iteration did not converge")

// TQL2 computes all eigenvalues (and, if z != nil, accumulates the
// corresponding transformations into z's columns) of a symmetric
// tridiagonal matrix with diagonal d and subdiagonal e (e[0] unused is NOT
// the convention here: e[i] couples d[i] and d[i+1], so len(e) == len(d)-1).
// It is the classic implicit-QL algorithm with Wilkinson shifts (EISPACK
// tql2 lineage). On return d holds the eigenvalues in ascending order.
//
// z, when non-nil, must be an n×n matrix (rows) initialized to the basis in
// which the tridiagonal is expressed (identity for raw tridiagonals, the
// Lanczos basis for Ritz vectors); its columns are rotated in place.
func TQL2(d, e []float64, z [][]float64) error {
	n := len(d)
	if n == 0 {
		return nil
	}
	if len(e) != n-1 {
		return errors.New("eig: TQL2 needs len(e) == len(d)-1")
	}
	// Work on a padded copy of e.
	ee := make([]float64, n)
	copy(ee, e)

	for l := 0; l < n; l++ {
		iter := 0
		for {
			// Find a small subdiagonal element.
			m := l
			for ; m < n-1; m++ {
				dd := math.Abs(d[m]) + math.Abs(d[m+1])
				if math.Abs(ee[m]) <= 1e-300+2.3e-16*dd {
					break
				}
			}
			if m == l {
				break
			}
			iter++
			if iter > 50 {
				return ErrNoConverge
			}
			// Wilkinson shift.
			g := (d[l+1] - d[l]) / (2 * ee[l])
			r := math.Hypot(g, 1)
			sg := r
			if g < 0 {
				sg = -r
			}
			g = d[m] - d[l] + ee[l]/(g+sg)
			s, c := 1.0, 1.0
			p := 0.0
			for i := m - 1; i >= l; i-- {
				f := s * ee[i]
				b := c * ee[i]
				r = math.Hypot(f, g)
				ee[i+1] = r
				if r == 0 {
					d[i+1] -= p
					ee[m] = 0
					break
				}
				s = f / r
				c = g / r
				g = d[i+1] - p
				r = (d[i]-g)*s + 2*c*b
				p = s * r
				d[i+1] = g + p
				g = c*r - b
				if z != nil {
					for k := 0; k < len(z); k++ {
						f := z[k][i+1]
						z[k][i+1] = s*z[k][i] + c*f
						z[k][i] = c*z[k][i] - s*f
					}
				}
			}
			if r == 0 && m-1 >= l {
				continue
			}
			d[l] -= p
			ee[l] = g
			ee[m] = 0
		}
	}
	// Sort ascending (insertion sort, rotating z columns).
	for i := 1; i < n; i++ {
		dv := d[i]
		var col []float64
		if z != nil {
			col = make([]float64, len(z))
			for k := range z {
				col[k] = z[k][i]
			}
		}
		j := i - 1
		for j >= 0 && d[j] > dv {
			d[j+1] = d[j]
			if z != nil {
				for k := range z {
					z[k][j+1] = z[k][j]
				}
			}
			j--
		}
		d[j+1] = dv
		if z != nil {
			for k := range z {
				z[k][j+1] = col[k]
			}
		}
	}
	return nil
}

// JacobiEigen computes all eigenvalues and eigenvectors of a small dense
// symmetric matrix by cyclic Jacobi rotations. a is overwritten. Returns
// eigenvalues ascending and the matrix of eigenvectors (columns). Intended
// for reference computations in tests and for tiny spectral drawings.
func JacobiEigen(a [][]float64) ([]float64, [][]float64, error) {
	n := len(a)
	v := make([][]float64, n)
	for i := range v {
		v[i] = make([]float64, n)
		v[i][i] = 1
	}
	for sweep := 0; sweep < 100; sweep++ {
		var off float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += a[i][j] * a[i][j]
			}
		}
		if off < 1e-24 {
			vals := make([]float64, n)
			for i := range vals {
				vals[i] = a[i][i]
			}
			// Sort ascending with eigenvector columns.
			idx := make([]int, n)
			for i := range idx {
				idx[i] = i
			}
			for i := 1; i < n; i++ {
				for j := i; j > 0 && vals[idx[j-1]] > vals[idx[j]]; j-- {
					idx[j-1], idx[j] = idx[j], idx[j-1]
				}
			}
			sortedVals := make([]float64, n)
			sortedVecs := make([][]float64, n)
			for i := range sortedVecs {
				sortedVecs[i] = make([]float64, n)
			}
			for newJ, oldJ := range idx {
				sortedVals[newJ] = vals[oldJ]
				for i := 0; i < n; i++ {
					sortedVecs[i][newJ] = v[i][oldJ]
				}
			}
			return sortedVals, sortedVecs, nil
		}
		for p := 0; p < n; p++ {
			for q := p + 1; q < n; q++ {
				if math.Abs(a[p][q]) < 1e-300 {
					continue
				}
				theta := (a[q][q] - a[p][p]) / (2 * a[p][q])
				t := 1 / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				if theta < 0 {
					t = -t
				}
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				for k := 0; k < n; k++ {
					akp, akq := a[k][p], a[k][q]
					a[k][p] = c*akp - s*akq
					a[k][q] = s*akp + c*akq
				}
				for k := 0; k < n; k++ {
					apk, aqk := a[p][k], a[q][k]
					a[p][k] = c*apk - s*aqk
					a[q][k] = s*apk + c*aqk
				}
				for k := 0; k < n; k++ {
					vkp, vkq := v[k][p], v[k][q]
					v[k][p] = c*vkp - s*vkq
					v[k][q] = s*vkp + c*vkq
				}
			}
		}
	}
	return nil, nil, ErrNoConverge
}
